// google-benchmark microbenchmarks of the NN substrate's hot kernels:
// layer forward/backward and the pruning/recovery pipeline. These set the
// wall-clock budget every FL experiment pays per round.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/task_zoo.h"
#include "nn/initializers.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/linear.h"
#include "nn/layers/lstm.h"
#include "nn/model_builder.h"
#include "nn/tensor_ops.h"
#include "pruning/recovery.h"
#include "pruning/structured_pruner.h"

namespace fedmp {
namespace {

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  nn::Tensor a({n, n}), b({n, n});
  nn::UniformInit(a, -1, 1, rng);
  nn::UniformInit(b, -1, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(1);
  nn::Conv2d conv(8, 16, 3, 1, 1, true, rng);
  nn::Tensor x({8, 8, 16, 16});
  nn::UniformInit(x, -1, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, true));
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(1);
  nn::Conv2d conv(8, 16, 3, 1, 1, true, rng);
  nn::Tensor x({8, 8, 16, 16});
  nn::UniformInit(x, -1, 1, rng);
  nn::Tensor y = conv.Forward(x, true);
  nn::Tensor grad(y.shape());
  nn::UniformInit(grad, -1, 1, rng);
  for (auto _ : state) {
    conv.Forward(x, true);
    benchmark::DoNotOptimize(conv.Backward(grad));
  }
}
BENCHMARK(BM_ConvBackward);

void BM_LstmForward(benchmark::State& state) {
  Rng rng(1);
  nn::Lstm lstm(16, 24, rng);
  nn::Tensor x({8, 16, 16});
  nn::UniformInit(x, -1, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Forward(x, true));
  }
}
BENCHMARK(BM_LstmForward);

void BM_PruneByRatio(benchmark::State& state) {
  const data::FlTask task =
      data::MakeTaskByName("vgg", data::TaskScale::kBench, 1);
  auto model = nn::BuildModelOrDie(task.model, 2);
  const nn::TensorList weights = model->GetWeights();
  const double ratio = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto sub = pruning::PruneByRatio(task.model, weights, ratio);
    benchmark::DoNotOptimize(sub);
  }
}
BENCHMARK(BM_PruneByRatio)->Arg(20)->Arg(50)->Arg(80);

void BM_RecoverToFull(benchmark::State& state) {
  const data::FlTask task =
      data::MakeTaskByName("vgg", data::TaskScale::kBench, 1);
  auto model = nn::BuildModelOrDie(task.model, 2);
  const nn::TensorList weights = model->GetWeights();
  auto sub = pruning::PruneByRatio(task.model, weights, 0.5);
  FEDMP_CHECK(sub.ok());
  for (auto _ : state) {
    auto full =
        pruning::RecoverToFull(task.model, sub->weights, sub->mask);
    benchmark::DoNotOptimize(full);
  }
}
BENCHMARK(BM_RecoverToFull);

void BM_ModelForward(benchmark::State& state) {
  const data::FlTask task =
      data::MakeTaskByName("cnn", data::TaskScale::kBench, 1);
  auto model = nn::BuildModelOrDie(task.model, 2);
  Rng rng(1);
  nn::Tensor x({16, 1, 14, 14});
  nn::UniformInit(x, -1, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Forward(x, true));
  }
}
BENCHMARK(BM_ModelForward);

}  // namespace
}  // namespace fedmp

BENCHMARK_MAIN();
