// google-benchmark microbenchmarks of the NN substrate's hot kernels:
// layer forward/backward and the pruning/recovery pipeline. These set the
// wall-clock budget every FL experiment pays per round.
//
// The *Speedup benchmarks time each kernel serially (1-lane pool) and on
// the requested thread count, and report the ratio as the
// "speedup_vs_serial" counter so it lands in the JSON output
// (--benchmark_format=json / --benchmark_out=...).

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/task_zoo.h"
#include "nn/initializers.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/linear.h"
#include "nn/layers/lstm.h"
#include "nn/model_builder.h"
#include "nn/tensor_ops.h"
#include "pruning/recovery.h"
#include "pruning/structured_pruner.h"

namespace fedmp {
namespace {

// Best-of-`reps` wall-clock seconds of `fn` on a pool of `threads` lanes.
double TimeWithThreads(int threads, int reps,
                       const std::function<void()>& fn) {
  ThreadPool::SetGlobalThreads(threads);
  fn();  // warm-up (and pool spin-up)
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (s < best) best = s;
  }
  return best;
}

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  ThreadPool::SetGlobalThreads(threads);
  Rng rng(1);
  nn::Tensor a({n, n}), b({n, n});
  nn::UniformInit(a, -1, 1, rng);
  nn::UniformInit(b, -1, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_Matmul)
    ->ArgsProduct({{32, 64, 128, 256}, {1, 4}})
    ->ArgNames({"n", "threads"});

void BM_MatmulSparseA(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  nn::Tensor a({n, n}), b({n, n});
  nn::UniformInit(a, -1, 1, rng);
  nn::UniformInit(b, -1, 1, rng);
  // ~80% structural zeros in A, like a sparsified/masked operand.
  float* pa = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (rng.NextDouble() < 0.8) pa[i] = 0.0f;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatmulSparseA(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulSparseA)->Arg(128)->Arg(256);

// Serial-vs-parallel wall clock for the large dense cases (the acceptance
// metric for the parallel engine).
void BM_MatmulSpeedup(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  Rng rng(1);
  nn::Tensor a({n, n}), b({n, n});
  nn::UniformInit(a, -1, 1, rng);
  nn::UniformInit(b, -1, 1, rng);
  auto run = [&] { benchmark::DoNotOptimize(nn::Matmul(a, b)); };
  const double serial_s = TimeWithThreads(1, 3, run);
  const double parallel_s = TimeWithThreads(threads, 3, run);
  ThreadPool::SetGlobalThreads(threads);
  for (auto _ : state) run();
  state.counters["speedup_vs_serial"] = serial_s / parallel_s;
  state.counters["serial_ms"] = serial_s * 1e3;
  state.counters["parallel_ms"] = parallel_s * 1e3;
  ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_MatmulSpeedup)
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 4})
    ->ArgNames({"n", "threads"});

void BM_Conv2dSpeedup(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Conv2d conv(16, 32, 3, 1, 1, true, rng);
  nn::Tensor x({16, 16, 32, 32});
  nn::UniformInit(x, -1, 1, rng);
  auto run = [&] { benchmark::DoNotOptimize(conv.Forward(x, true)); };
  const double serial_s = TimeWithThreads(1, 3, run);
  const double parallel_s = TimeWithThreads(threads, 3, run);
  ThreadPool::SetGlobalThreads(threads);
  for (auto _ : state) run();
  state.counters["speedup_vs_serial"] = serial_s / parallel_s;
  state.counters["serial_ms"] = serial_s * 1e3;
  state.counters["parallel_ms"] = parallel_s * 1e3;
  ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_Conv2dSpeedup)->Arg(2)->Arg(4)->ArgNames({"threads"});

void BM_ConvForward(benchmark::State& state) {
  Rng rng(1);
  nn::Conv2d conv(8, 16, 3, 1, 1, true, rng);
  nn::Tensor x({8, 8, 16, 16});
  nn::UniformInit(x, -1, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, true));
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(1);
  nn::Conv2d conv(8, 16, 3, 1, 1, true, rng);
  nn::Tensor x({8, 8, 16, 16});
  nn::UniformInit(x, -1, 1, rng);
  nn::Tensor y = conv.Forward(x, true);
  nn::Tensor grad(y.shape());
  nn::UniformInit(grad, -1, 1, rng);
  for (auto _ : state) {
    conv.Forward(x, true);
    benchmark::DoNotOptimize(conv.Backward(grad));
  }
}
BENCHMARK(BM_ConvBackward);

void BM_LstmForward(benchmark::State& state) {
  Rng rng(1);
  nn::Lstm lstm(16, 24, rng);
  nn::Tensor x({8, 16, 16});
  nn::UniformInit(x, -1, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Forward(x, true));
  }
}
BENCHMARK(BM_LstmForward);

void BM_PruneByRatio(benchmark::State& state) {
  const data::FlTask task =
      data::MakeTaskByName("vgg", data::TaskScale::kBench, 1);
  auto model = nn::BuildModelOrDie(task.model, 2);
  const nn::TensorList weights = model->GetWeights();
  const double ratio = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto sub = pruning::PruneByRatio(task.model, weights, ratio);
    benchmark::DoNotOptimize(sub);
  }
}
BENCHMARK(BM_PruneByRatio)->Arg(20)->Arg(50)->Arg(80);

void BM_RecoverToFull(benchmark::State& state) {
  const data::FlTask task =
      data::MakeTaskByName("vgg", data::TaskScale::kBench, 1);
  auto model = nn::BuildModelOrDie(task.model, 2);
  const nn::TensorList weights = model->GetWeights();
  auto sub = pruning::PruneByRatio(task.model, weights, 0.5);
  FEDMP_CHECK(sub.ok());
  for (auto _ : state) {
    auto full =
        pruning::RecoverToFull(task.model, sub->weights, sub->mask);
    benchmark::DoNotOptimize(full);
  }
}
BENCHMARK(BM_RecoverToFull);

void BM_ModelForward(benchmark::State& state) {
  const data::FlTask task =
      data::MakeTaskByName("cnn", data::TaskScale::kBench, 1);
  auto model = nn::BuildModelOrDie(task.model, 2);
  Rng rng(1);
  nn::Tensor x({16, 1, 14, 14});
  nn::UniformInit(x, -1, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Forward(x, true));
  }
}
BENCHMARK(BM_ModelForward);

}  // namespace
}  // namespace fedmp

BENCHMARK_MAIN();
