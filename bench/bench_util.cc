#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace fedmp::bench {

int64_t ScaledRounds(int64_t rounds) {
  double scale = 1.0;
  if (const char* env = std::getenv("FEDMP_BENCH_SCALE")) {
    scale = std::atof(env);
    if (scale <= 0.0) scale = 1.0;
  }
  const int64_t scaled = static_cast<int64_t>(rounds * scale);
  return scaled < 4 ? 4 : scaled;
}

fl::TrainerOptions BenchTrainerOptions(int64_t max_rounds) {
  fl::TrainerOptions opt;
  opt.max_rounds = ScaledRounds(max_rounds);
  opt.eval_every = 3;
  opt.eval_batch_size = 50;
  opt.eval_max_batches = 5;  // cap evaluation cost on one core
  opt.seed = 1;
  return opt;
}

fl::RoundLog MustRun(const ExperimentConfig& config,
                     const data::FlTask& task) {
  auto log = RunExperimentOnTask(config, task);
  FEDMP_CHECK(log.ok()) << "experiment failed: " << log.status();
  return *std::move(log);
}

std::string FormatTime(double seconds) {
  if (seconds < 0.0) return "n/a";
  return StrFormat("%.0fs", seconds);
}

std::string FormatSpeedup(double base_time, double other_time) {
  if (base_time < 0.0 || other_time <= 0.0) return "n/a";
  return StrFormat("%.1fx", base_time / other_time);
}

bool WriteSpeedupJson(const std::string& path,
                      const std::vector<SpeedupRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const SpeedupRecord& r = records[i];
    const double speedup =
        r.parallel_seconds > 0.0 ? r.serial_seconds / r.parallel_seconds
                                 : 0.0;
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"threads\": %d, "
                 "\"serial_seconds\": %.6f, \"parallel_seconds\": %.6f, "
                 "\"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.threads, r.serial_seconds,
                 r.parallel_seconds, speedup,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

void PrintHeader(const std::string& artifact, const std::string& caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), caption.c_str());
  std::printf("(synthetic substrate; compare SHAPES with the paper, not\n");
  std::printf(" absolute numbers — see EXPERIMENTS.md)\n");
  std::printf("==============================================================\n");
}

}  // namespace fedmp::bench
