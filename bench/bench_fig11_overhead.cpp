// Fig. 11: PS-side per-round algorithm overhead (pruning-ratio decision +
// distributed model pruning) versus the number of workers — REAL measured
// milliseconds, not simulated time. Paper shape: grows ~linearly with N and
// stays orders of magnitude below round times (hundreds of seconds).

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "fl/strategies/fedmp_strategy.h"
#include "nn/model_builder.h"
#include "pruning/structured_pruner.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Fig. 11", "PS algorithm overhead vs worker count");
  CsvTable table({"task", "workers", "decision_ms", "pruning_ms",
                  "total_ms"});
  for (const std::string& name : data::VisionTaskNames()) {
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kBench, 42);
    auto model = nn::BuildModelOrDie(task.model, 7);
    const nn::TensorList weights = model->GetWeights();
    for (int workers : {10, 15, 20, 25, 30}) {
      fl::FedMpStrategy strategy;
      strategy.Initialize(workers, 3);
      std::vector<fl::WorkerRoundPlan> plans(
          static_cast<size_t>(workers));
      const int rounds = 20;
      double decision_ms = 0.0, pruning_ms = 0.0;
      for (int k = 0; k < rounds; ++k) {
        auto t0 = std::chrono::steady_clock::now();
        strategy.PlanRound(k, &plans);
        auto t1 = std::chrono::steady_clock::now();
        for (const auto& plan : plans) {
          auto sub = pruning::PruneByRatio(task.model, weights,
                                           plan.pruning_ratio);
          FEDMP_CHECK(sub.ok());
        }
        auto t2 = std::chrono::steady_clock::now();
        decision_ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        pruning_ms +=
            std::chrono::duration<double, std::milli>(t2 - t1).count();
        // Close the bandit loop with a synthetic observation.
        fl::RoundObservation obs;
        obs.completion_times.assign(static_cast<size_t>(workers), 1.0);
        obs.comp_times = obs.completion_times;
        obs.comm_times = obs.completion_times;
        obs.delta_losses.assign(static_cast<size_t>(workers), 0.1);
        obs.participated.assign(static_cast<size_t>(workers), true);
        obs.round_time = 1.0;
        strategy.ObserveRound(k, obs);
      }
      decision_ms /= rounds;
      pruning_ms /= rounds;
      FEDMP_CHECK(table
                      .AddRow({name, StrFormat("%d", workers),
                               StrFormat("%.3f", decision_ms),
                               StrFormat("%.3f", pruning_ms),
                               StrFormat("%.3f", decision_ms + pruning_ms)})
                      .ok());
      std::printf("  %s N=%-2d decision %.3fms pruning %.3fms\n",
                  name.c_str(), workers, decision_ms, pruning_ms);
      std::fflush(stdout);
    }
  }
  table.WritePretty(std::cout);
  return 0;
}
