// Ablation (DESIGN.md §5): the Eq. (8) reward (loss progress / time gap)
// versus the naive 1/T reward. The naive reward pushes every worker to the
// maximum pruning ratio regardless of accuracy cost.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Ablation", "Eq.(8) reward vs naive 1/T reward");
  CsvTable table({"reward", "time_to_0.85", "final_accuracy",
                  "mean_ratio"});
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kBench, 42);
  for (const char* method : {"fedmp", "fedmp_time_reward"}) {
    ExperimentConfig config;
    config.task = "cnn";
    config.method = method;
    config.trainer = bench::BenchTrainerOptions(80);
    const fl::RoundLog log = bench::MustRun(config, task);
    double mean_ratio = 0.0;
    for (const auto& r : log.records()) mean_ratio += r.mean_ratio;
    mean_ratio /= static_cast<double>(log.records().size());
    FEDMP_CHECK(table
                    .AddRow({std::string(method),
                             bench::FormatTime(log.TimeToAccuracy(0.85)),
                             StrFormat("%.4f", log.FinalAccuracy()),
                             StrFormat("%.3f", mean_ratio)})
                    .ok());
    std::printf("  %-18s t85=%s final=%.4f mean_ratio=%.3f\n", method,
                bench::FormatTime(log.TimeToAccuracy(0.85)).c_str(),
                log.FinalAccuracy(), mean_ratio);
    std::fflush(stdout);
  }
  table.WritePretty(std::cout);
  return 0;
}
