// Telemetry overhead budget check: the same FL workload runs with the
// telemetry subsystem disabled and enabled (in-memory recording, no file
// export), min-of-N wall clock each way. The run exits non-zero when the
// enabled/disabled ratio exceeds the 3% budget documented in DESIGN.md
// "Observability", so run_benches.sh can surface a regression.
//
// A second phase gates the resource ledger's instrumented MAC-count mode
// (the FEDMP_LEDGER_CHECK cross-check: a thread-local counter bump inside
// every matmul/conv/LSTM kernel) against a 1% budget. The analytic ledger
// itself is always-on O(workers) arithmetic per round and has no kernel
// footprint; the armed counter is the only per-MAC-visible cost.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "obs/ledger.h"
#include "obs/trace.h"

namespace fedmp::bench {
namespace {

double RunOnceSeconds(const data::FlTask& task) {
  ExperimentConfig config;
  config.task = "cnn";
  config.method = "fedmp";
  config.scale = data::TaskScale::kBench;
  config.trainer = BenchTrainerOptions(6);
  const auto start = std::chrono::steady_clock::now();
  MustRun(config, task);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double MinOfN(const data::FlTask& task, int n) {
  double best = RunOnceSeconds(task);
  for (int i = 1; i < n; ++i) {
    const double t = RunOnceSeconds(task);
    if (t < best) best = t;
  }
  return best;
}

int Main() {
  PrintHeader("telemetry overhead",
              "enabled-vs-disabled runtime of a traced FL workload");
  constexpr int kReps = 3;
  constexpr double kBudget = 0.03;  // 3%

  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kBench, 10);

  obs::Disable();
  obs::ResetForTest();
  MinOfN(task, 1);  // warm-up: page in the binary, build the task caches
  const double off = MinOfN(task, kReps);

  obs::ResetForTest();
  obs::Enable(obs::TraceOptions{});  // record in memory, no file export
  const double on = MinOfN(task, kReps);
  obs::Disable();
  obs::ResetForTest();

  const double overhead = on / off - 1.0;
  std::printf("telemetry off: %.3fs   on: %.3fs   overhead: %+.2f%%  "
              "(budget %.0f%%)\n",
              off, on, overhead * 100.0, kBudget * 100.0);
  if (overhead > kBudget) {
    std::fprintf(stderr,
                 "FAIL: telemetry overhead %.2f%% exceeds the %.0f%% budget\n",
                 overhead * 100.0, kBudget * 100.0);
    return 1;
  }
  std::printf("PASS: within budget\n");

  // Ledger instrumented-count mode, telemetry off both ways so only the
  // armed per-kernel counter is on the clock.
  constexpr double kLedgerBudget = 0.01;  // 1%
  obs::SetMacCountingEnabled(true);
  const double check_on = MinOfN(task, kReps);
  obs::SetMacCountingEnabled(false);

  const double ledger_overhead = check_on / off - 1.0;
  std::printf("ledger check off: %.3fs   on: %.3fs   overhead: %+.2f%%  "
              "(budget %.0f%%)\n",
              off, check_on, ledger_overhead * 100.0, kLedgerBudget * 100.0);
  if (ledger_overhead > kLedgerBudget) {
    std::fprintf(stderr,
                 "FAIL: ledger MAC-count overhead %.2f%% exceeds the %.0f%% "
                 "budget\n",
                 ledger_overhead * 100.0, kLedgerBudget * 100.0);
    return 1;
  }
  std::printf("PASS: within budget\n");
  return 0;
}

}  // namespace
}  // namespace fedmp::bench

int main() { return fedmp::bench::Main(); }
