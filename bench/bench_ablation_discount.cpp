// Ablation (DESIGN.md §5): sensitivity to the E-UCB discount factor lambda
// (Eqs. 9-10). The paper fixes lambda = 0.95 [40]; this repro defaults to
// 0.98 (short horizons need a longer memory window — see EXPERIMENTS.md).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Ablation", "E-UCB discount factor lambda");
  CsvTable table({"lambda", "time_to_0.85", "final_accuracy"});
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kBench, 42);
  for (double lambda : {0.90, 0.95, 0.98, 0.995}) {
    ExperimentConfig config;
    config.task = "cnn";
    config.method = "fedmp";
    config.lambda = lambda;
    config.trainer = bench::BenchTrainerOptions(80);
    const fl::RoundLog log = bench::MustRun(config, task);
    FEDMP_CHECK(table
                    .AddRow({StrFormat("%.3f", lambda),
                             bench::FormatTime(log.TimeToAccuracy(0.85)),
                             StrFormat("%.4f", log.FinalAccuracy())})
                    .ok());
    std::printf("  lambda %.3f t85=%s final=%.4f\n", lambda,
                bench::FormatTime(log.TimeToAccuracy(0.85)).c_str(),
                log.FinalAccuracy());
    std::fflush(stdout);
  }
  table.WritePretty(std::cout);
  return 0;
}
