// Table IV (§VI): the RNN extension. 2-layer LSTM language model with ISS
// structured pruning; perplexity within a time budget and speedup to a
// target perplexity for Syn-FL / UP-FL / FedMP. Paper shape: FedMP lowest
// perplexity and ~1.6x speedup; UP-FL can be SLOWER than Syn-FL (0.8x).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Table IV", "LSTM LM: perplexity and speedup");
  const data::FlTask task =
      data::MakeLstmPtbTask(data::TaskScale::kBench, 42);
  const double budget = 300.0;
  const double target_ppl = task.target_perplexity;
  CsvTable table({"method", "ppl_at_budget", "time_to_target",
                  "speedup_vs_synfl"});
  double synfl_time = -1.0;
  for (const char* method : {"syn_fl", "up_fl", "fedmp"}) {
    ExperimentConfig config;
    config.task = "lstm";
    config.method = method;
    config.trainer = bench::BenchTrainerOptions(90);
    config.trainer.time_budget_seconds = budget;
    config.trainer.stop_at_perplexity = -1.0;  // run the full budget
    const fl::RoundLog log = bench::MustRun(config, task);
    const double ppl = log.BestPerplexityWithin(budget);
    double t = log.TimeToPerplexity(target_ppl);
    if (t < 0.0) t = log.TotalSimTime() * 1.25;
    if (std::string(method) == "syn_fl") synfl_time = t;
    FEDMP_CHECK(table
                    .AddRow({std::string(method), StrFormat("%.2f", ppl),
                             StrFormat("%.1f", t),
                             bench::FormatSpeedup(synfl_time, t)})
                    .ok());
    std::printf("  %-7s ppl@%.0fs = %.2f, t(ppl<=%.0f)=%.1f\n", method,
                budget, ppl, target_ppl, t);
    std::fflush(stdout);
  }
  table.WritePretty(std::cout);
  return 0;
}
