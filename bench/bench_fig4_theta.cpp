// Fig. 4: normalized completion time (to the task's target accuracy) as a
// function of the E-UCB pruning granularity theta. Paper shape: flat for
// small theta, rising for large theta.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Fig. 4", "effect of pruning granularity theta");
  CsvTable table({"task", "theta", "time_to_target", "normalized"});
  struct Setup {
    const char* task;
    double target;
    int64_t rounds;
  };
  // Targets below the tasks' ceilings so every run crosses them.
  for (const Setup& setup :
       {Setup{"cnn", 0.85, 80}, Setup{"alexnet", 0.70, 60}}) {
    const data::FlTask task =
        data::MakeTaskByName(setup.task, data::TaskScale::kBench, 42);
    std::vector<double> times;
    const std::vector<double> thetas{0.01, 0.02, 0.05, 0.10, 0.15, 0.25};
    for (double theta : thetas) {
      ExperimentConfig config;
      config.task = setup.task;
      config.method = "fedmp";
      config.theta = theta;
      config.trainer = bench::BenchTrainerOptions(setup.rounds);
      config.trainer.stop_at_accuracy = setup.target;
      const fl::RoundLog log = bench::MustRun(config, task);
      double t = log.TimeToAccuracy(setup.target);
      if (t < 0.0) t = log.TotalSimTime() * 1.25;  // did not converge
      times.push_back(t);
      std::printf("  %s theta %.2f -> %s\n", setup.task, theta,
                  bench::FormatTime(t).c_str());
      std::fflush(stdout);
    }
    const double best = *std::min_element(times.begin(), times.end());
    for (size_t i = 0; i < thetas.size(); ++i) {
      FEDMP_CHECK(table
                      .AddRow({std::string(setup.task),
                               StrFormat("%.2f", thetas[i]),
                               StrFormat("%.1f", times[i]),
                               StrFormat("%.2f", times[i] / best)})
                      .ok());
    }
  }
  table.WritePretty(std::cout);
  return 0;
}
