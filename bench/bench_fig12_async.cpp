// Fig. 12: completion time to target accuracy under the asynchronous
// setting with m = 5 of 10 workers. Paper shape: Asyn-FedMP beats Asyn-FL;
// synchronous FedMP beats Asyn-FedMP (it aggregates information from all
// workers each round).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Fig. 12", "synchronous vs asynchronous FedMP (m=5)");
  CsvTable table({"method", "target_acc", "time_to_target"});
  const data::FlTask task =
      data::MakeAlexNetCifarTask(data::TaskScale::kBench, 42);
  struct Setup {
    const char* label;
    const char* method;
    bool async;
  };
  for (double target : {0.60, 0.70}) {
    for (const Setup& setup : {Setup{"Asyn-FL", "syn_fl", true},
                               Setup{"Asyn-FedMP", "fedmp", true},
                               Setup{"FedMP", "fedmp", false}}) {
      ExperimentConfig config;
      config.task = "alexnet";
      config.method = setup.method;
      config.async_mode = setup.async;
      config.async_m = 5;
      config.trainer = bench::BenchTrainerOptions(setup.async ? 120 : 60);
      config.trainer.stop_at_accuracy = target;
      const fl::RoundLog log = bench::MustRun(config, task);
      double t = log.TimeToAccuracy(target);
      if (t < 0.0) t = log.TotalSimTime() * 1.25;
      FEDMP_CHECK(table
                      .AddRow({std::string(setup.label),
                               StrFormat("%.2f", target),
                               StrFormat("%.1f", t)})
                      .ok());
      std::printf("  %-11s target %.2f -> t=%.1f\n", setup.label, target, t);
      std::fflush(stdout);
    }
  }
  table.WritePretty(std::cout);
  return 0;
}
