// Fig. 5: average per-round computation and communication time versus
// pruning ratio, from the cost model over the medium-heterogeneity fleet.
// Paper shape: both components decrease monotonically with the ratio.
//
// Additionally measures the real (host) wall-clock of one FedMP round with
// the hot-path optimizations (workspace pool, prune-plan cache, worker
// model reuse, fast matmul kernels) disabled vs enabled at num_threads
// 1, 2, and 4, and emits the speedups to fig5_hotpath.json. Run with
// FEDMP_TRACE_METRICS=<file> to also dump the pool / plan-cache /
// model-cache counters.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "fl/pipeline.h"
#include "fl/worker.h"
#include "nn/model_builder.h"
#include "nn/workspace.h"
#include "pruning/prune_cache.h"
#include "pruning/structured_pruner.h"

using namespace fedmp;

namespace {

double WallSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void SetHotPathEnabled(bool on) {
  nn::ws::SetEnabled(on);
  nn::SetFastKernelsEnabled(on);
  pruning::SetPlanCacheEnabled(on);
  fl::SetModelReuseEnabled(on);
  fl::SetPipelineEnabled(on);
  pruning::ClearPlanCache();
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 5", "per-round comp/comm time vs pruning ratio");
  CsvTable table({"task", "ratio", "comp_s", "comm_s", "total_s"});
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 42);
  for (const std::string& name : data::VisionTaskNames()) {
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kBench, 42);
    auto model = nn::BuildModelOrDie(task.model, 7);
    for (double ratio : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      auto sub =
          pruning::PruneByRatio(task.model, model->GetWeights(), ratio);
      FEDMP_CHECK(sub.ok()) << sub.status();
      double comp = 0.0, comm = 0.0;
      for (const auto& device : fleet) {
        const edge::RoundCost cost = edge::EstimateRoundCostNominal(
            sub->spec, task.local_iterations, task.batch_size, device);
        comp += cost.comp_seconds;
        comm += cost.comm_seconds;
      }
      comp /= static_cast<double>(fleet.size());
      comm /= static_cast<double>(fleet.size());
      FEDMP_CHECK(table
                      .AddRow({name, StrFormat("%.1f", ratio),
                               StrFormat("%.2f", comp),
                               StrFormat("%.2f", comm),
                               StrFormat("%.2f", comp + comm)})
                      .ok());
    }
  }
  table.WritePretty(std::cout);

  // --- Hot-path wall-clock: baseline vs optimized round time, at 1/2/4
  // execution lanes. Each thread count compares against its own baseline so
  // the speedup isolates the hot-path optimizations from pool parallelism.
  const int64_t rounds = bench::ScaledRounds(6);
  const data::FlTask bench_task =
      data::MakeCnnMnistTask(data::TaskScale::kBench, 42);
  ExperimentConfig config;
  config.task = "cnn";
  config.method = "fedmp";
  config.num_workers = 10;
  config.trainer = bench::BenchTrainerOptions(rounds);
  // Best-of-2: the min of repeated wall-clock runs is robust to scheduler
  // noise and cold-start effects, which on small 6-round measurements can
  // otherwise swing ratios enough to trip the regression gate.
  auto run_with = [&](bool optimized) {
    SetHotPathEnabled(optimized);
    double best = WallSeconds([&] { bench::MustRun(config, bench_task); });
    best = std::min(best,
                    WallSeconds([&] { bench::MustRun(config, bench_task); }));
    return best;
  };
  std::printf(
      "\nHot-path wall-clock (host time, fedmp/cnn, %d rounds):\n",
      static_cast<int>(rounds));
  const double per_round = static_cast<double>(rounds);
  std::vector<bench::SpeedupRecord> records;
  for (int threads : {1, 2, 4}) {
    config.trainer.num_threads = threads;
    bench::SpeedupRecord rec;
    rec.name = StrFormat("fedmp_hotpath_t%d", threads);
    rec.threads = threads;
    rec.serial_seconds = run_with(false);   // baseline: pool/caches off
    rec.parallel_seconds = run_with(true);  // optimized: pool/caches on
    std::printf(
        "  t%d: baseline=%.2fs (%.3fs/round) optimized=%.2fs (%.3fs/round) "
        "speedup=%.2fx\n",
        threads, rec.serial_seconds, rec.serial_seconds / per_round,
        rec.parallel_seconds, rec.parallel_seconds / per_round,
        rec.serial_seconds / rec.parallel_seconds);
    std::fflush(stdout);
    records.push_back(rec);
  }
  SetHotPathEnabled(true);
  // Thread scaling of the optimized (pipelined) path: how much faster the
  // same workload runs at 4 lanes than at 1. The gate compares this ratio
  // against the baseline (and against an absolute floor on >=4-core hosts).
  if (records.size() >= 3 && records[2].parallel_seconds > 0.0) {
    std::printf("  t4-vs-t1 optimized scaling: %.2fx\n",
                records[0].parallel_seconds / records[2].parallel_seconds);
  }
  if (!bench::WriteSpeedupJson("fig5_hotpath.json", records)) {
    std::fprintf(stderr, "warning: could not write fig5_hotpath.json\n");
  } else {
    std::printf("  wrote fig5_hotpath.json\n");
  }
  return 0;
}
