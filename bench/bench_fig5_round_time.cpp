// Fig. 5: average per-round computation and communication time versus
// pruning ratio, from the cost model over the medium-heterogeneity fleet.
// Paper shape: both components decrease monotonically with the ratio.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "nn/model_builder.h"
#include "pruning/structured_pruner.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Fig. 5", "per-round comp/comm time vs pruning ratio");
  CsvTable table({"task", "ratio", "comp_s", "comm_s", "total_s"});
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 42);
  for (const std::string& name : data::VisionTaskNames()) {
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kBench, 42);
    auto model = nn::BuildModelOrDie(task.model, 7);
    for (double ratio : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      auto sub =
          pruning::PruneByRatio(task.model, model->GetWeights(), ratio);
      FEDMP_CHECK(sub.ok()) << sub.status();
      double comp = 0.0, comm = 0.0;
      for (const auto& device : fleet) {
        const edge::RoundCost cost = edge::EstimateRoundCostNominal(
            sub->spec, task.local_iterations, task.batch_size, device);
        comp += cost.comp_seconds;
        comm += cost.comm_seconds;
      }
      comp /= static_cast<double>(fleet.size());
      comm /= static_cast<double>(fleet.size());
      FEDMP_CHECK(table
                      .AddRow({name, StrFormat("%.1f", ratio),
                               StrFormat("%.2f", comp),
                               StrFormat("%.2f", comm),
                               StrFormat("%.2f", comp + comm)})
                      .ok());
    }
  }
  table.WritePretty(std::cout);
  return 0;
}
