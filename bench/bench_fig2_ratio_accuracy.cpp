// Fig. 2: test accuracy reached within a fixed time budget as a function of
// a FIXED uniform pruning ratio. Paper shape: accuracy rises for moderate
// ratios (faster rounds, enough capacity) then falls for aggressive ones.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Fig. 2", "accuracy vs pruning ratio at a time budget");
  CsvTable table({"task", "ratio", "accuracy_at_budget"});
  struct Setup {
    const char* task;
    double budget;
    int64_t rounds;
  };
  // Round caps are generous so the TIME budget is what binds at every
  // ratio (pruned models run more, faster rounds inside the same budget).
  for (const Setup& setup : {Setup{"cnn", 220.0, 160},
                             Setup{"vgg", 500.0, 90}}) {
    const data::FlTask task = data::MakeTaskByName(
        setup.task, data::TaskScale::kBench, 42);
    const std::vector<double> ratios =
        std::string(setup.task) == "cnn"
            ? std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
            : std::vector<double>{0.0, 0.2, 0.4, 0.6};
    for (double ratio : ratios) {
      ExperimentConfig config;
      config.task = setup.task;
      config.method =
          ratio == 0.0 ? "syn_fl" : StrFormat("fixed:%.2f", ratio);
      config.trainer = bench::BenchTrainerOptions(setup.rounds);
      config.trainer.time_budget_seconds = setup.budget;
      const fl::RoundLog log = bench::MustRun(config, task);
      const double acc = log.BestAccuracyWithin(setup.budget);
      FEDMP_CHECK(table
                      .AddRow({std::string(setup.task),
                               StrFormat("%.1f", ratio),
                               StrFormat("%.4f", acc)})
                      .ok());
      std::printf("  %s ratio %.1f -> %.4f\n", setup.task, ratio, acc);
      std::fflush(stdout);
    }
  }
  table.WritePretty(std::cout);
  return 0;
}
