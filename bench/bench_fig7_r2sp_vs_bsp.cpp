// Fig. 7: test accuracy vs ROUND NUMBER for FedMP aggregated with R2SP
// versus plain BSP. Paper shape: R2SP reaches and holds higher accuracy;
// BSP degrades because pruned parameters are never recovered.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Fig. 7", "R2SP vs BSP synchronization");
  CsvTable table({"task", "scheme", "round", "accuracy"});
  CsvTable finals({"task", "r2sp_final", "bsp_final"});
  for (const std::string& name : data::VisionTaskNames()) {
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kBench, 42);
    double final_acc[2] = {0.0, 0.0};
    int idx = 0;
    for (const char* method : {"fedmp", "fedmp_bsp"}) {
      ExperimentConfig config;
      config.task = name;
      config.method = method;
      config.trainer = bench::BenchTrainerOptions(name == "cnn" ? 70 : 50);
      const fl::RoundLog log = bench::MustRun(config, task);
      for (const auto& r : log.records()) {
        if (r.test_accuracy < 0.0) continue;
        FEDMP_CHECK(table
                        .AddRow({name,
                                 std::string(idx == 0 ? "R2SP" : "BSP"),
                                 StrFormat("%lld", (long long)r.round),
                                 StrFormat("%.4f", r.test_accuracy)})
                        .ok());
      }
      final_acc[idx++] = log.FinalAccuracy();
      std::printf("  %s / %s final acc %.4f\n", name.c_str(), method,
                  log.FinalAccuracy());
      std::fflush(stdout);
    }
    FEDMP_CHECK(finals
                    .AddRow({name, StrFormat("%.4f", final_acc[0]),
                             StrFormat("%.4f", final_acc[1])})
                    .ok());
  }
  std::printf("\nFinal accuracy after the same number of rounds:\n");
  finals.WritePretty(std::cout);
  FEDMP_CHECK(table.WriteCsvFile("fig7_curves.csv").ok());
  std::printf("accuracy-vs-round series written to fig7_curves.csv\n");
  return 0;
}
