// Fig. 8: completion time to the target accuracy under Low / Medium / High
// heterogeneity for all five methods. Paper shape: everyone slows down as
// heterogeneity rises, FedMP the least; its speedup factor grows with the
// heterogeneity level.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Fig. 8", "completion time vs heterogeneity level");
  CsvTable table({"task", "level", "method", "time_to_target",
                  "speedup_vs_synfl"});
  struct Setup {
    const char* task;
    double target;
    int64_t rounds;
  };
  // AlexNet/VGG/ResNet rows are available by extending this list; the
  // default keeps the bench within a single-core time budget.
  for (const Setup& setup : {Setup{"cnn", 0.85, 90}}) {
    const data::FlTask task =
        data::MakeTaskByName(setup.task, data::TaskScale::kBench, 42);
    for (const auto level : {edge::HeterogeneityLevel::kLow,
                             edge::HeterogeneityLevel::kMedium,
                             edge::HeterogeneityLevel::kHigh}) {
      double synfl_time = -1.0;
      for (const std::string& method : PaperMethods()) {
        ExperimentConfig config;
        config.task = setup.task;
        config.method = method;
        config.heterogeneity = level;
        config.trainer = bench::BenchTrainerOptions(setup.rounds);
        config.trainer.stop_at_accuracy = setup.target;
        const fl::RoundLog log = bench::MustRun(config, task);
        double t = log.TimeToAccuracy(setup.target);
        if (t < 0.0) t = log.TotalSimTime() * 1.25;  // lower bound
        if (method == "syn_fl") synfl_time = t;
        FEDMP_CHECK(table
                        .AddRow({std::string(setup.task),
                                 edge::HeterogeneityName(level), method,
                                 StrFormat("%.1f", t),
                                 bench::FormatSpeedup(synfl_time, t)})
                        .ok());
        std::printf("  %s / %-6s / %-8s t=%.1f\n", setup.task,
                    edge::HeterogeneityName(level), method.c_str(), t);
        std::fflush(stdout);
      }
    }
  }
  table.WritePretty(std::cout);
  return 0;
}
