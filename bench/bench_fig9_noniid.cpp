// Fig. 9: completion time to the target accuracy under rising non-IID
// levels. Vision tasks use the label-skew partitioner (y% one label); the
// class-rich tasks use the missing-class partitioner, as in §V-F.
// Paper shape: time rises with the non-IID level for every method; FedMP
// stays fastest.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Fig. 9", "completion time vs non-IID level");
  CsvTable table({"task", "partition", "method", "time_to_target",
                  "speedup_vs_synfl"});
  struct Setup {
    const char* task;
    double target;
    int64_t rounds;
    std::vector<std::string> partitions;
  };
  const std::vector<Setup> setups{
      {"cnn", 0.82, 100, {"iid", "skew:10", "skew:20", "skew:30"}},
      {"vgg", 0.62, 50, {"iid", "missing:4"}},
  };
  for (const Setup& setup : setups) {
    const data::FlTask task =
        data::MakeTaskByName(setup.task, data::TaskScale::kBench, 42);
    for (const std::string& partition : setup.partitions) {
      double synfl_time = -1.0;
      for (const std::string& method : PaperMethods()) {
        ExperimentConfig config;
        config.task = setup.task;
        config.method = method;
        config.partition = partition;
        config.trainer = bench::BenchTrainerOptions(setup.rounds);
        config.trainer.stop_at_accuracy = setup.target;
        const fl::RoundLog log = bench::MustRun(config, task);
        double t = log.TimeToAccuracy(setup.target);
        if (t < 0.0) t = log.TotalSimTime() * 1.25;
        if (method == "syn_fl") synfl_time = t;
        FEDMP_CHECK(table
                        .AddRow({std::string(setup.task), partition, method,
                                 StrFormat("%.1f", t),
                                 bench::FormatSpeedup(synfl_time, t)})
                        .ok());
        std::printf("  %s / %-9s / %-8s t=%.1f\n", setup.task,
                    partition.c_str(), method.c_str(), t);
        std::fflush(stdout);
      }
    }
  }
  table.WritePretty(std::cout);
  return 0;
}
