#ifndef FEDMP_BENCH_BENCH_UTIL_H_
#define FEDMP_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/fedmp.h"

namespace fedmp::bench {

// Scales every bench's round budget by the env var FEDMP_BENCH_SCALE
// (default 1.0). Use e.g. FEDMP_BENCH_SCALE=0.3 for a quick smoke pass.
int64_t ScaledRounds(int64_t rounds);

// Baseline trainer options shared by the experiment benches.
fl::TrainerOptions BenchTrainerOptions(int64_t max_rounds);

// Runs one experiment, aborting the process on configuration errors (bench
// binaries treat those as programmer mistakes).
fl::RoundLog MustRun(const ExperimentConfig& config,
                     const data::FlTask& task);

// Formats a time-to-target (negative => "n/a").
std::string FormatTime(double seconds);

// speedup of `other` relative to `base` on time-to-target; n/a-safe.
std::string FormatSpeedup(double base_time, double other_time);

// Prints the standard bench header with the paper artifact it reproduces.
void PrintHeader(const std::string& artifact, const std::string& caption);

// One serial-vs-parallel wall-clock measurement of the execution engine.
struct SpeedupRecord {
  std::string name;
  int threads = 1;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
};

// Writes the records as a JSON array to `path` (the bench JSON consumed by
// plotting/CI): [{"name":..., "threads":..., "serial_seconds":...,
// "parallel_seconds":..., "speedup":...}, ...].
bool WriteSpeedupJson(const std::string& path,
                      const std::vector<SpeedupRecord>& records);

}  // namespace fedmp::bench

#endif  // FEDMP_BENCH_BENCH_UTIL_H_
