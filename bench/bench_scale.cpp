// Scale-out bench: one 10k-worker round through the windowed pipelined
// engine with fog aggregation, reporting wall-clock and the peak-RSS delta
// the round adds. The headline number is memory, not speed: a naive engine
// materializes every recovered sub-model at once (O(workers x model)); the
// bounded engine keeps the live set at O(max_inflight x model + fog
// partials). Emits bench_scale.json for run_benches.sh --scale, which
// stamps it into BENCH_scale.json and enforces the RSS ceiling.
//
// The live observability tier runs alongside: a bounded flight recorder and
// deterministic trace sampling are enabled for the round, so the gate also
// checks that recorder + sampling stay within the same RSS ceiling and that
// the dump is a bounded artifact (not O(workers x rounds)).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sys/stat.h>
#include <utility>

#include "bench_util.h"
#include "common/mem_info.h"
#include "common/thread_pool.h"
#include "data/task_zoo.h"
#include "fl/pipeline.h"
#include "fl/strategies/fedmp_strategy.h"
#include "fl/trainer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampling.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Scale-out", "10k-worker round: wall-clock + peak RSS");

  int64_t workers = 10000;
  if (const char* env = std::getenv("FEDMP_SCALE_WORKERS")) {
    const int64_t n = std::atoll(env);
    if (n > 0) workers = n;
  }

  obs::SetEnabled(true);
  fl::SetPipelineEnabled(true);

  // Live tier under load: last-4096-events ring, 256-worker/round sampling
  // budget. The trace buffer cap keeps the main buffer bounded too — at 10k
  // workers an uncapped buffer, not the ring, would be the memory story.
  obs::FlightRecorderOptions flight;
  flight.dump_path_prefix = "bench_scale_flight";
  flight.install_signal_handlers = false;  // benches exit normally
  obs::EnableFlightRecorder(flight);
  obs::SamplingOptions sampling;
  sampling.per_round_budget = 256;
  sampling.seed = 7;
  obs::EnableTraceSampling(sampling);

  const data::FlTask task =
      data::MakeScaleCnnTask(workers, /*seed=*/7);
  const auto fleet = edge::MakeHalfAHalfB(static_cast<int>(workers),
                                          /*seed=*/7);
  fl::TrainerOptions opt;
  opt.max_rounds = 1;
  opt.eval_every = 100;  // no eval: the axis under test is round memory
  opt.seed = 7;
  opt.num_threads = 4;
  opt.deadline.enabled = false;  // everyone arrives: worst-case live set
  opt.scale.fog_fan_out = 32;
  opt.scale.max_inflight = 64;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);

  // Per-model footprint for the naive estimate: bytes of one full weight
  // set, doubled for the recovered upload that rides along with it.
  const int64_t model_bytes =
      task.model.NumParams() * static_cast<int64_t>(sizeof(float));
  const int64_t naive_bytes = 2 * model_bytes * workers;

  const int64_t rss_before = PeakRssBytes();
  fl::Trainer trainer(&task, fleet, std::move(partition),
                      std::make_unique<fl::FedMpStrategy>(), opt);
  const auto start = std::chrono::steady_clock::now();
  const fl::RoundLog log = trainer.Run();
  const double round_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const int64_t rss_after = PeakRssBytes();
  const int64_t rss_delta = rss_after - rss_before;
  const int participants =
      log.records().empty() ? 0 : log.records().back().participants;

  // Dump the ring and measure the artifact: the events file must stay
  // O(ring capacity), independent of fleet size.
  const int64_t flight_events = obs::FlightRecorderEventCount();
  const int64_t flight_evicted = obs::FlightRecorderEvictedCount();
  obs::DumpFlightRecorder("bench_scale");
  int64_t flight_dump_bytes = 0;
  struct stat st;
  if (stat("bench_scale_flight_dump_events.jsonl", &st) == 0) {
    flight_dump_bytes = static_cast<int64_t>(st.st_size);
  }

  std::printf("  workers=%lld participants=%d round=%.2fs\n",
              static_cast<long long>(workers), participants, round_seconds);
  std::printf("  peak RSS delta: %.1f MiB (naive estimate %.1f MiB)\n",
              static_cast<double>(rss_delta) / (1 << 20),
              static_cast<double>(naive_bytes) / (1 << 20));
  std::printf("  flight recorder: %lld events held, %lld evicted, dump %.1f"
              " KiB\n",
              static_cast<long long>(flight_events),
              static_cast<long long>(flight_evicted),
              static_cast<double>(flight_dump_bytes) / 1024.0);

  FILE* f = std::fopen("bench_scale.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write bench_scale.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"workers\": %lld,\n"
               "  \"participants\": %d,\n"
               "  \"fog_fan_out\": %d,\n"
               "  \"max_inflight\": %d,\n"
               "  \"round_seconds\": %.3f,\n"
               "  \"rss_before_bytes\": %lld,\n"
               "  \"rss_after_bytes\": %lld,\n"
               "  \"rss_delta_bytes\": %lld,\n"
               "  \"naive_bytes_estimate\": %lld,\n"
               "  \"trace_sample_budget\": 256,\n"
               "  \"flight_recorder_events\": %lld,\n"
               "  \"flight_recorder_evicted\": %lld,\n"
               "  \"flight_dump_bytes\": %lld\n"
               "}\n",
               static_cast<long long>(workers), participants,
               opt.scale.fog_fan_out, opt.scale.max_inflight, round_seconds,
               static_cast<long long>(rss_before),
               static_cast<long long>(rss_after),
               static_cast<long long>(rss_delta),
               static_cast<long long>(naive_bytes),
               static_cast<long long>(flight_events),
               static_cast<long long>(flight_evicted),
               static_cast<long long>(flight_dump_bytes));
  std::fclose(f);
  std::printf("  wrote bench_scale.json\n");

  ThreadPool::SetGlobalThreads(1);
  return 0;
}
