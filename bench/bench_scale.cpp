// Scale-out bench: one streaming round through the windowed pipelined
// engine with fog aggregation and the sharded parameter server, reporting
// wall-clock and the peak-RSS delta the round adds. The headline number is
// memory, not speed: a naive engine materializes every recovered sub-model
// at once (O(workers x model)); the bounded engine keeps the live set at
// O(max_inflight x model + fog partials), and the streaming partition view
// kills the per-worker index-vector floor — which is what takes the fleet
// from 10k to the gated 100k round. Emits bench_scale.json for
// run_benches.sh --scale, which runs 10k and 100k as separate processes
// (VmHWM is process-lifetime monotonic), merges the entries into
// BENCH_scale.json, and enforces the per-scale gates.
//
// The live observability tier runs alongside: a bounded flight recorder and
// deterministic trace sampling are enabled for the round, so the gate also
// checks that recorder + sampling stay within the same RSS ceiling and that
// the dump is a bounded artifact (not O(workers x rounds)).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sys/stat.h>
#include <utility>

#include "bench_util.h"
#include "common/mem_info.h"
#include "common/thread_pool.h"
#include "data/task_zoo.h"
#include "fl/pipeline.h"
#include "fl/ps_shard.h"
#include "fl/strategies/fedmp_strategy.h"
#include "fl/trainer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampling.h"
#include "obs/trace.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Scale-out",
                     "streaming round: wall-clock + peak RSS + shard folds");

  int64_t workers = 10000;
  if (const char* env = std::getenv("FEDMP_SCALE_WORKERS")) {
    const int64_t n = std::atoll(env);
    if (n > 0) workers = n;
  }

  // Ring-only telemetry: metrics + spans are on, but the unbounded main
  // trace buffer is capped at zero — this bench only ever exports the
  // flight-recorder ring, and at fleet scale even a few logical events per
  // worker would otherwise pile up ~O(workers) of never-flushed strings.
  obs::TraceOptions trace;
  trace.max_events = 0;
  obs::Enable(trace);
  fl::SetPipelineEnabled(true);

  // Live tier under load: last-4096-events ring, 256-worker/round sampling
  // budget.
  obs::FlightRecorderOptions flight;
  flight.dump_path_prefix = "bench_scale_flight";
  flight.install_signal_handlers = false;  // benches exit normally
  obs::EnableFlightRecorder(flight);
  obs::SamplingOptions sampling;
  sampling.per_round_budget = 256;
  sampling.seed = 7;
  obs::EnableTraceSampling(sampling);

  const data::FlTask task =
      data::MakeScaleCnnTask(workers, /*seed=*/7);
  const auto fleet = edge::MakeHalfAHalfB(static_cast<int>(workers),
                                          /*seed=*/7);
  fl::TrainerOptions opt;
  opt.max_rounds = 1;
  opt.eval_every = 100;  // no eval: the axis under test is round memory
  opt.seed = 7;
  opt.num_threads = 4;
  opt.deadline.enabled = false;  // everyone arrives: worst-case live set
  opt.scale.fog_fan_out = 32;
  opt.scale.max_inflight = 64;
  opt.scale.ps_shards = 0;  // auto: pool lanes (FEDMP_PS_SHARDS overrides)
  // Streaming partition view: worker shards are a pure function of
  // (seed, worker), materialized per round and freed — the engine never
  // stores O(fleet) index vectors.
  auto view = std::make_shared<const data::StreamingIidPartition>(
      task.train.size(), workers, opt.seed ^ 0xBEEFULL);

  // Per-model footprint for the naive estimate: bytes of one full weight
  // set, doubled for the recovered upload that rides along with it.
  const int64_t model_bytes =
      task.model.NumParams() * static_cast<int64_t>(sizeof(float));
  const int64_t naive_bytes = 2 * model_bytes * workers;

  const int64_t rss_before = PeakRssBytes();
  fl::Trainer trainer(&task, fleet, std::move(view),
                      std::make_unique<fl::FedMpStrategy>(), opt);
  const auto start = std::chrono::steady_clock::now();
  const fl::RoundLog log = trainer.Run();
  const double round_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const int64_t rss_after = PeakRssBytes();
  const int64_t rss_delta = rss_after - rss_before;
  const int participants =
      log.records().empty() ? 0 : log.records().back().participants;
  // Resource-ledger rollups for the round: exact MACs and wire bytes, plus
  // the savings ratio vs the dense FedAvg baseline — the scale gate pins
  // that pruning still pays at fleet scale.
  const int64_t flops_total =
      log.records().empty() ? 0 : log.records().back().flops_total;
  const int64_t bytes_up =
      log.records().empty() ? 0 : log.records().back().bytes_up;
  const int64_t bytes_down =
      log.records().empty() ? 0 : log.records().back().bytes_down;
  const double bytes_saved_ratio =
      log.records().empty() ? 0.0 : log.records().back().bytes_saved_ratio;
  // The sharded-PS fold facts the gate pins: how many per-range owners the
  // slot range was split across, and how many distinct pool lanes executed
  // shard folds (>= 2 proves the Finish tail actually overlapped).
  const int ps_shards = static_cast<int>(
      obs::Registry::Get().GaugeValue("fl.ps.shards", 0.0));
  const int fold_lanes = static_cast<int>(
      obs::Registry::Get().GaugeValue("fl.ps.fold_lanes", 0.0));

  // Dump the ring and measure the artifact: the events file must stay
  // O(ring capacity), independent of fleet size.
  const int64_t flight_events = obs::FlightRecorderEventCount();
  const int64_t flight_evicted = obs::FlightRecorderEvictedCount();
  obs::DumpFlightRecorder("bench_scale");
  int64_t flight_dump_bytes = 0;
  struct stat st;
  if (stat("bench_scale_flight_dump_events.jsonl", &st) == 0) {
    flight_dump_bytes = static_cast<int64_t>(st.st_size);
  }

  std::printf("  workers=%lld participants=%d round=%.2fs\n",
              static_cast<long long>(workers), participants, round_seconds);
  std::printf("  ps shards=%d fold lanes=%d\n", ps_shards, fold_lanes);
  std::printf("  ledger: %lld MACs, %lld B up, %lld B down, "
              "%.1f%% bytes saved vs dense\n",
              static_cast<long long>(flops_total),
              static_cast<long long>(bytes_up),
              static_cast<long long>(bytes_down), bytes_saved_ratio * 100.0);
  std::printf("  peak RSS delta: %.1f MiB (naive estimate %.1f MiB)\n",
              static_cast<double>(rss_delta) / (1 << 20),
              static_cast<double>(naive_bytes) / (1 << 20));
  std::printf("  flight recorder: %lld events held, %lld evicted, dump %.1f"
              " KiB\n",
              static_cast<long long>(flight_events),
              static_cast<long long>(flight_evicted),
              static_cast<double>(flight_dump_bytes) / 1024.0);

  FILE* f = std::fopen("bench_scale.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write bench_scale.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"workers\": %lld,\n"
               "  \"participants\": %d,\n"
               "  \"fog_fan_out\": %d,\n"
               "  \"max_inflight\": %d,\n"
               "  \"ps_shards\": %d,\n"
               "  \"fold_lanes\": %d,\n"
               "  \"round_seconds\": %.3f,\n"
               "  \"rss_before_bytes\": %lld,\n"
               "  \"rss_after_bytes\": %lld,\n"
               "  \"rss_delta_bytes\": %lld,\n"
               "  \"naive_bytes_estimate\": %lld,\n"
               "  \"flops_total\": %lld,\n"
               "  \"bytes_up\": %lld,\n"
               "  \"bytes_down\": %lld,\n"
               "  \"bytes_saved_ratio\": %.6f,\n"
               "  \"trace_sample_budget\": 256,\n"
               "  \"flight_recorder_events\": %lld,\n"
               "  \"flight_recorder_evicted\": %lld,\n"
               "  \"flight_dump_bytes\": %lld\n"
               "}\n",
               static_cast<long long>(workers), participants,
               opt.scale.fog_fan_out, opt.scale.max_inflight, ps_shards,
               fold_lanes, round_seconds,
               static_cast<long long>(rss_before),
               static_cast<long long>(rss_after),
               static_cast<long long>(rss_delta),
               static_cast<long long>(naive_bytes),
               static_cast<long long>(flops_total),
               static_cast<long long>(bytes_up),
               static_cast<long long>(bytes_down), bytes_saved_ratio,
               static_cast<long long>(flight_events),
               static_cast<long long>(flight_evicted),
               static_cast<long long>(flight_dump_bytes));
  std::fclose(f);
  std::printf("  wrote bench_scale.json\n");

  ThreadPool::SetGlobalThreads(1);
  return 0;
}
