// Fig. 10: completion time to the target accuracy as the worker count grows
// 10 -> 30 (half cluster A, half B, as §V-G). Paper shape: mild growth for
// every method; FedMP keeps a constant-factor lead.
//
// Additionally measures the real (host) wall-clock of the FedMP engine at
// num_threads=1 vs num_threads=N per fleet size and emits the speedups to
// fig10_threads.json — the scalability of the simulation itself, not of
// the simulated round time.

#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

using namespace fedmp;

namespace {

double WallSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 10", "completion time vs number of workers");
  CsvTable table({"workers", "method", "time_to_target",
                  "speedup_vs_synfl"});
  const double target = 0.70;
  const data::FlTask task =
      data::MakeAlexNetCifarTask(data::TaskScale::kBench, 42);
  for (int workers : {10, 20, 30}) {
    double synfl_time = -1.0;
    for (const std::string& method : PaperMethods()) {
      ExperimentConfig config;
      config.task = "alexnet";
      config.method = method;
      config.num_workers = workers;
      config.trainer = bench::BenchTrainerOptions(45);
      config.trainer.stop_at_accuracy = target;
      const fl::RoundLog log = bench::MustRun(config, task);
      double t = log.TimeToAccuracy(target);
      if (t < 0.0) t = log.TotalSimTime() * 1.25;
      if (method == "syn_fl") synfl_time = t;
      FEDMP_CHECK(table
                      .AddRow({StrFormat("%d", workers), method,
                               StrFormat("%.1f", t),
                               bench::FormatSpeedup(synfl_time, t)})
                      .ok());
      std::printf("  N=%-2d / %-8s t=%.1f\n", workers, method.c_str(), t);
      std::fflush(stdout);
    }
  }
  table.WritePretty(std::cout);

  // --- Engine wall-clock: serial vs parallel worker rounds. ---
  const int par_threads = ThreadPool::ResolveThreads(0) > 1
                              ? ThreadPool::ResolveThreads(0)
                              : 4;
  std::printf("\nEngine wall-clock (host time, fedmp, %d rounds):\n",
              static_cast<int>(bench::ScaledRounds(8)));
  std::vector<bench::SpeedupRecord> speedups;
  for (int workers : {10, 30}) {
    ExperimentConfig config;
    config.task = "alexnet";
    config.method = "fedmp";
    config.num_workers = workers;
    config.trainer = bench::BenchTrainerOptions(8);
    auto run_with = [&](int threads) {
      config.trainer.num_threads = threads;
      return WallSeconds([&] { bench::MustRun(config, task); });
    };
    bench::SpeedupRecord rec;
    rec.name = StrFormat("fedmp_round_n%d", workers);
    rec.threads = par_threads;
    rec.serial_seconds = run_with(1);
    rec.parallel_seconds = run_with(par_threads);
    std::printf("  N=%-2d serial=%.2fs parallel(%d)=%.2fs speedup=%.2fx\n",
                workers, rec.serial_seconds, par_threads,
                rec.parallel_seconds,
                rec.serial_seconds / rec.parallel_seconds);
    std::fflush(stdout);
    speedups.push_back(rec);
  }
  if (!bench::WriteSpeedupJson("fig10_threads.json", speedups)) {
    std::fprintf(stderr, "warning: could not write fig10_threads.json\n");
  } else {
    std::printf("  wrote fig10_threads.json\n");
  }
  return 0;
}
