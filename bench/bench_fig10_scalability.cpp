// Fig. 10: completion time to the target accuracy as the worker count grows
// 10 -> 30 (half cluster A, half B, as §V-G). Paper shape: mild growth for
// every method; FedMP keeps a constant-factor lead.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Fig. 10", "completion time vs number of workers");
  CsvTable table({"workers", "method", "time_to_target",
                  "speedup_vs_synfl"});
  const double target = 0.70;
  const data::FlTask task =
      data::MakeAlexNetCifarTask(data::TaskScale::kBench, 42);
  for (int workers : {10, 20, 30}) {
    double synfl_time = -1.0;
    for (const std::string& method : PaperMethods()) {
      ExperimentConfig config;
      config.task = "alexnet";
      config.method = method;
      config.num_workers = workers;
      config.trainer = bench::BenchTrainerOptions(45);
      config.trainer.stop_at_accuracy = target;
      const fl::RoundLog log = bench::MustRun(config, task);
      double t = log.TimeToAccuracy(target);
      if (t < 0.0) t = log.TotalSimTime() * 1.25;
      if (method == "syn_fl") synfl_time = t;
      FEDMP_CHECK(table
                      .AddRow({StrFormat("%d", workers), method,
                               StrFormat("%.1f", t),
                               bench::FormatSpeedup(synfl_time, t)})
                      .ok());
      std::printf("  N=%-2d / %-8s t=%.1f\n", workers, method.c_str(), t);
      std::fflush(stdout);
    }
  }
  table.WritePretty(std::cout);
  return 0;
}
