// Table III + Fig. 6 from one sweep: all five methods on all four vision
// tasks under the default medium-heterogeneity fleet. Emits
//  - Table III rows: best accuracy within a fixed simulated-time budget,
//  - Fig. 6 series: (sim_time, accuracy) curves per method, as CSV.
// Paper shape: FedMP reaches any given accuracy earlier than the baselines
// and matches Syn-FL's final accuracy.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace fedmp;

int main() {
  bench::PrintHeader("Table III + Fig. 6",
                     "budget accuracy and accuracy-vs-time, 5 methods x 4 tasks");
  struct Setup {
    const char* task;
    double budget;   // simulated seconds (Table III column)
    double target;   // time-to-accuracy report (Fig. 6 summary)
    int64_t rounds;
  };
  const std::vector<Setup> setups{
      {"cnn", 260.0, 0.85, 80},
      {"alexnet", 420.0, 0.72, 60},
      {"vgg", 420.0, 0.72, 55},
      {"resnet", 500.0, 0.45, 50},
  };
  CsvTable table3({"task", "budget_s", "syn_fl", "up_fl", "fedprox",
                   "flexcom", "fedmp"});
  CsvTable fig6({"task", "method", "sim_time", "accuracy"});
  CsvTable summary({"task", "method", "time_to_target", "speedup_vs_synfl"});

  for (const Setup& setup : setups) {
    const data::FlTask task =
        data::MakeTaskByName(setup.task, data::TaskScale::kBench, 42);
    std::vector<std::string> row{std::string(setup.task),
                                 StrFormat("%.0f", setup.budget)};
    double synfl_time = -1.0;
    for (const std::string& method : PaperMethods()) {
      ExperimentConfig config;
      config.task = setup.task;
      config.method = method;
      config.trainer = bench::BenchTrainerOptions(setup.rounds);
      config.trainer.time_budget_seconds = setup.budget;
      const fl::RoundLog log = bench::MustRun(config, task);
      row.push_back(StrFormat("%.4f", log.BestAccuracyWithin(setup.budget)));
      for (const auto& r : log.records()) {
        if (r.test_accuracy < 0.0) continue;
        FEDMP_CHECK(fig6.AddRow({std::string(setup.task), method,
                                 StrFormat("%.1f", r.sim_time),
                                 StrFormat("%.4f", r.test_accuracy)})
                        .ok());
      }
      const double t = log.TimeToAccuracy(setup.target);
      if (method == "syn_fl") synfl_time = t;
      FEDMP_CHECK(summary
                      .AddRow({std::string(setup.task), method,
                               bench::FormatTime(t),
                               bench::FormatSpeedup(synfl_time, t)})
                      .ok());
      std::printf("  %s / %-8s budget-acc %.4f  t(%.0f%%)=%s\n", setup.task,
                  method.c_str(), log.BestAccuracyWithin(setup.budget),
                  setup.target * 100, bench::FormatTime(t).c_str());
      std::fflush(stdout);
    }
    FEDMP_CHECK(table3.AddRow(row).ok());
  }
  std::printf("\nTable III (best accuracy within the budget):\n");
  table3.WritePretty(std::cout);
  std::printf("\nFig. 6 summary (time to target accuracy):\n");
  summary.WritePretty(std::cout);
  FEDMP_CHECK(fig6.WriteCsvFile("fig6_curves.csv").ok());
  std::printf("\nFig. 6 full accuracy-vs-time series written to "
              "fig6_curves.csv (%zu points)\n", fig6.num_rows());
  return 0;
}
