file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_edge.dir/heterogeneous_edge.cpp.o"
  "CMakeFiles/heterogeneous_edge.dir/heterogeneous_edge.cpp.o.d"
  "heterogeneous_edge"
  "heterogeneous_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
