# Empty compiler generated dependencies file for heterogeneous_edge.
# This may be replaced when dependencies are built.
