# Empty dependencies file for async_federated.
# This may be replaced when dependencies are built.
