file(REMOVE_RECURSE
  "CMakeFiles/async_federated.dir/async_federated.cpp.o"
  "CMakeFiles/async_federated.dir/async_federated.cpp.o.d"
  "async_federated"
  "async_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
