file(REMOVE_RECURSE
  "libfedmp_pruning.a"
)
