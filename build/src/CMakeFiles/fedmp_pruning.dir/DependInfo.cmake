
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pruning/importance.cc" "src/CMakeFiles/fedmp_pruning.dir/pruning/importance.cc.o" "gcc" "src/CMakeFiles/fedmp_pruning.dir/pruning/importance.cc.o.d"
  "/root/repo/src/pruning/lstm_iss_pruner.cc" "src/CMakeFiles/fedmp_pruning.dir/pruning/lstm_iss_pruner.cc.o" "gcc" "src/CMakeFiles/fedmp_pruning.dir/pruning/lstm_iss_pruner.cc.o.d"
  "/root/repo/src/pruning/mask.cc" "src/CMakeFiles/fedmp_pruning.dir/pruning/mask.cc.o" "gcc" "src/CMakeFiles/fedmp_pruning.dir/pruning/mask.cc.o.d"
  "/root/repo/src/pruning/recovery.cc" "src/CMakeFiles/fedmp_pruning.dir/pruning/recovery.cc.o" "gcc" "src/CMakeFiles/fedmp_pruning.dir/pruning/recovery.cc.o.d"
  "/root/repo/src/pruning/sparsify.cc" "src/CMakeFiles/fedmp_pruning.dir/pruning/sparsify.cc.o" "gcc" "src/CMakeFiles/fedmp_pruning.dir/pruning/sparsify.cc.o.d"
  "/root/repo/src/pruning/structured_pruner.cc" "src/CMakeFiles/fedmp_pruning.dir/pruning/structured_pruner.cc.o" "gcc" "src/CMakeFiles/fedmp_pruning.dir/pruning/structured_pruner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedmp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
