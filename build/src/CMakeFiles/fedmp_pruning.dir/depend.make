# Empty dependencies file for fedmp_pruning.
# This may be replaced when dependencies are built.
