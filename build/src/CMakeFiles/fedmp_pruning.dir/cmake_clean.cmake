file(REMOVE_RECURSE
  "CMakeFiles/fedmp_pruning.dir/pruning/importance.cc.o"
  "CMakeFiles/fedmp_pruning.dir/pruning/importance.cc.o.d"
  "CMakeFiles/fedmp_pruning.dir/pruning/lstm_iss_pruner.cc.o"
  "CMakeFiles/fedmp_pruning.dir/pruning/lstm_iss_pruner.cc.o.d"
  "CMakeFiles/fedmp_pruning.dir/pruning/mask.cc.o"
  "CMakeFiles/fedmp_pruning.dir/pruning/mask.cc.o.d"
  "CMakeFiles/fedmp_pruning.dir/pruning/recovery.cc.o"
  "CMakeFiles/fedmp_pruning.dir/pruning/recovery.cc.o.d"
  "CMakeFiles/fedmp_pruning.dir/pruning/sparsify.cc.o"
  "CMakeFiles/fedmp_pruning.dir/pruning/sparsify.cc.o.d"
  "CMakeFiles/fedmp_pruning.dir/pruning/structured_pruner.cc.o"
  "CMakeFiles/fedmp_pruning.dir/pruning/structured_pruner.cc.o.d"
  "libfedmp_pruning.a"
  "libfedmp_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmp_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
