
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gradient_check.cc" "src/CMakeFiles/fedmp_nn.dir/nn/gradient_check.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/gradient_check.cc.o.d"
  "/root/repo/src/nn/initializers.cc" "src/CMakeFiles/fedmp_nn.dir/nn/initializers.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/initializers.cc.o.d"
  "/root/repo/src/nn/layers/activations.cc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/activations.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/activations.cc.o.d"
  "/root/repo/src/nn/layers/batchnorm.cc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/batchnorm.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/batchnorm.cc.o.d"
  "/root/repo/src/nn/layers/conv2d.cc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/conv2d.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/conv2d.cc.o.d"
  "/root/repo/src/nn/layers/dropout.cc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/dropout.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/dropout.cc.o.d"
  "/root/repo/src/nn/layers/embedding.cc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/embedding.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/embedding.cc.o.d"
  "/root/repo/src/nn/layers/flatten.cc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/flatten.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/flatten.cc.o.d"
  "/root/repo/src/nn/layers/linear.cc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/linear.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/linear.cc.o.d"
  "/root/repo/src/nn/layers/lstm.cc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/lstm.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/lstm.cc.o.d"
  "/root/repo/src/nn/layers/pool.cc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/pool.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/pool.cc.o.d"
  "/root/repo/src/nn/layers/residual_block.cc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/residual_block.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/residual_block.cc.o.d"
  "/root/repo/src/nn/layers/softmax_xent.cc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/softmax_xent.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/layers/softmax_xent.cc.o.d"
  "/root/repo/src/nn/metrics.cc" "src/CMakeFiles/fedmp_nn.dir/nn/metrics.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/metrics.cc.o.d"
  "/root/repo/src/nn/model_builder.cc" "src/CMakeFiles/fedmp_nn.dir/nn/model_builder.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/model_builder.cc.o.d"
  "/root/repo/src/nn/model_spec.cc" "src/CMakeFiles/fedmp_nn.dir/nn/model_spec.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/model_spec.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/CMakeFiles/fedmp_nn.dir/nn/sequential.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/sequential.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/fedmp_nn.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/serialize.cc.o.d"
  "/root/repo/src/nn/sgd.cc" "src/CMakeFiles/fedmp_nn.dir/nn/sgd.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/sgd.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/fedmp_nn.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/tensor.cc.o.d"
  "/root/repo/src/nn/tensor_ops.cc" "src/CMakeFiles/fedmp_nn.dir/nn/tensor_ops.cc.o" "gcc" "src/CMakeFiles/fedmp_nn.dir/nn/tensor_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
