file(REMOVE_RECURSE
  "libfedmp_nn.a"
)
