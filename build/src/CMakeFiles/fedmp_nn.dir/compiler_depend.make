# Empty compiler generated dependencies file for fedmp_nn.
# This may be replaced when dependencies are built.
