file(REMOVE_RECURSE
  "libfedmp_fl.a"
)
