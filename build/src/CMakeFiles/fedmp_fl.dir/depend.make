# Empty dependencies file for fedmp_fl.
# This may be replaced when dependencies are built.
