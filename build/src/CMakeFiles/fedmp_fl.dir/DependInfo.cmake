
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/aggregation.cc" "src/CMakeFiles/fedmp_fl.dir/fl/aggregation.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/aggregation.cc.o.d"
  "/root/repo/src/fl/async_trainer.cc" "src/CMakeFiles/fedmp_fl.dir/fl/async_trainer.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/async_trainer.cc.o.d"
  "/root/repo/src/fl/quantize.cc" "src/CMakeFiles/fedmp_fl.dir/fl/quantize.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/quantize.cc.o.d"
  "/root/repo/src/fl/round_log.cc" "src/CMakeFiles/fedmp_fl.dir/fl/round_log.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/round_log.cc.o.d"
  "/root/repo/src/fl/server.cc" "src/CMakeFiles/fedmp_fl.dir/fl/server.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/server.cc.o.d"
  "/root/repo/src/fl/strategies/fedmp_strategy.cc" "src/CMakeFiles/fedmp_fl.dir/fl/strategies/fedmp_strategy.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/strategies/fedmp_strategy.cc.o.d"
  "/root/repo/src/fl/strategies/fedprox.cc" "src/CMakeFiles/fedmp_fl.dir/fl/strategies/fedprox.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/strategies/fedprox.cc.o.d"
  "/root/repo/src/fl/strategies/flexcom.cc" "src/CMakeFiles/fedmp_fl.dir/fl/strategies/flexcom.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/strategies/flexcom.cc.o.d"
  "/root/repo/src/fl/strategies/syn_fl.cc" "src/CMakeFiles/fedmp_fl.dir/fl/strategies/syn_fl.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/strategies/syn_fl.cc.o.d"
  "/root/repo/src/fl/strategies/up_fl.cc" "src/CMakeFiles/fedmp_fl.dir/fl/strategies/up_fl.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/strategies/up_fl.cc.o.d"
  "/root/repo/src/fl/trainer.cc" "src/CMakeFiles/fedmp_fl.dir/fl/trainer.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/trainer.cc.o.d"
  "/root/repo/src/fl/worker.cc" "src/CMakeFiles/fedmp_fl.dir/fl/worker.cc.o" "gcc" "src/CMakeFiles/fedmp_fl.dir/fl/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedmp_pruning.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
