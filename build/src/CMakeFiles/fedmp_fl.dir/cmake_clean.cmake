file(REMOVE_RECURSE
  "CMakeFiles/fedmp_fl.dir/fl/aggregation.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/aggregation.cc.o.d"
  "CMakeFiles/fedmp_fl.dir/fl/async_trainer.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/async_trainer.cc.o.d"
  "CMakeFiles/fedmp_fl.dir/fl/quantize.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/quantize.cc.o.d"
  "CMakeFiles/fedmp_fl.dir/fl/round_log.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/round_log.cc.o.d"
  "CMakeFiles/fedmp_fl.dir/fl/server.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/server.cc.o.d"
  "CMakeFiles/fedmp_fl.dir/fl/strategies/fedmp_strategy.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/strategies/fedmp_strategy.cc.o.d"
  "CMakeFiles/fedmp_fl.dir/fl/strategies/fedprox.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/strategies/fedprox.cc.o.d"
  "CMakeFiles/fedmp_fl.dir/fl/strategies/flexcom.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/strategies/flexcom.cc.o.d"
  "CMakeFiles/fedmp_fl.dir/fl/strategies/syn_fl.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/strategies/syn_fl.cc.o.d"
  "CMakeFiles/fedmp_fl.dir/fl/strategies/up_fl.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/strategies/up_fl.cc.o.d"
  "CMakeFiles/fedmp_fl.dir/fl/trainer.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/trainer.cc.o.d"
  "CMakeFiles/fedmp_fl.dir/fl/worker.cc.o"
  "CMakeFiles/fedmp_fl.dir/fl/worker.cc.o.d"
  "libfedmp_fl.a"
  "libfedmp_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmp_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
