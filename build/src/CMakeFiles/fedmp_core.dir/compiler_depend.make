# Empty compiler generated dependencies file for fedmp_core.
# This may be replaced when dependencies are built.
