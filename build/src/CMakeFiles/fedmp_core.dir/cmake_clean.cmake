file(REMOVE_RECURSE
  "CMakeFiles/fedmp_core.dir/core/fedmp.cc.o"
  "CMakeFiles/fedmp_core.dir/core/fedmp.cc.o.d"
  "libfedmp_core.a"
  "libfedmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
