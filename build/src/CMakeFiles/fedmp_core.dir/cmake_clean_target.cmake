file(REMOVE_RECURSE
  "libfedmp_core.a"
)
