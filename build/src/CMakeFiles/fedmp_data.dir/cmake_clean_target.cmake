file(REMOVE_RECURSE
  "libfedmp_data.a"
)
