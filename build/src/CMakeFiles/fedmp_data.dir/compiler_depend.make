# Empty compiler generated dependencies file for fedmp_data.
# This may be replaced when dependencies are built.
