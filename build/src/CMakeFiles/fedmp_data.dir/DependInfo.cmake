
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataloader.cc" "src/CMakeFiles/fedmp_data.dir/data/dataloader.cc.o" "gcc" "src/CMakeFiles/fedmp_data.dir/data/dataloader.cc.o.d"
  "/root/repo/src/data/partition.cc" "src/CMakeFiles/fedmp_data.dir/data/partition.cc.o" "gcc" "src/CMakeFiles/fedmp_data.dir/data/partition.cc.o.d"
  "/root/repo/src/data/synthetic_image.cc" "src/CMakeFiles/fedmp_data.dir/data/synthetic_image.cc.o" "gcc" "src/CMakeFiles/fedmp_data.dir/data/synthetic_image.cc.o.d"
  "/root/repo/src/data/synthetic_text.cc" "src/CMakeFiles/fedmp_data.dir/data/synthetic_text.cc.o" "gcc" "src/CMakeFiles/fedmp_data.dir/data/synthetic_text.cc.o.d"
  "/root/repo/src/data/task_zoo.cc" "src/CMakeFiles/fedmp_data.dir/data/task_zoo.cc.o" "gcc" "src/CMakeFiles/fedmp_data.dir/data/task_zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedmp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
