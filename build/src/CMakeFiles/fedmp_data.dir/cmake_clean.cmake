file(REMOVE_RECURSE
  "CMakeFiles/fedmp_data.dir/data/dataloader.cc.o"
  "CMakeFiles/fedmp_data.dir/data/dataloader.cc.o.d"
  "CMakeFiles/fedmp_data.dir/data/partition.cc.o"
  "CMakeFiles/fedmp_data.dir/data/partition.cc.o.d"
  "CMakeFiles/fedmp_data.dir/data/synthetic_image.cc.o"
  "CMakeFiles/fedmp_data.dir/data/synthetic_image.cc.o.d"
  "CMakeFiles/fedmp_data.dir/data/synthetic_text.cc.o"
  "CMakeFiles/fedmp_data.dir/data/synthetic_text.cc.o.d"
  "CMakeFiles/fedmp_data.dir/data/task_zoo.cc.o"
  "CMakeFiles/fedmp_data.dir/data/task_zoo.cc.o.d"
  "libfedmp_data.a"
  "libfedmp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
