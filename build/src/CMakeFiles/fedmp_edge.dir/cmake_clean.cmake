file(REMOVE_RECURSE
  "CMakeFiles/fedmp_edge.dir/edge/cluster.cc.o"
  "CMakeFiles/fedmp_edge.dir/edge/cluster.cc.o.d"
  "CMakeFiles/fedmp_edge.dir/edge/cost_model.cc.o"
  "CMakeFiles/fedmp_edge.dir/edge/cost_model.cc.o.d"
  "CMakeFiles/fedmp_edge.dir/edge/device.cc.o"
  "CMakeFiles/fedmp_edge.dir/edge/device.cc.o.d"
  "CMakeFiles/fedmp_edge.dir/edge/event_queue.cc.o"
  "CMakeFiles/fedmp_edge.dir/edge/event_queue.cc.o.d"
  "CMakeFiles/fedmp_edge.dir/edge/fault.cc.o"
  "CMakeFiles/fedmp_edge.dir/edge/fault.cc.o.d"
  "CMakeFiles/fedmp_edge.dir/edge/network.cc.o"
  "CMakeFiles/fedmp_edge.dir/edge/network.cc.o.d"
  "libfedmp_edge.a"
  "libfedmp_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmp_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
