file(REMOVE_RECURSE
  "libfedmp_edge.a"
)
