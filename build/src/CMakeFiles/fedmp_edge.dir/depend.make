# Empty dependencies file for fedmp_edge.
# This may be replaced when dependencies are built.
