
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edge/cluster.cc" "src/CMakeFiles/fedmp_edge.dir/edge/cluster.cc.o" "gcc" "src/CMakeFiles/fedmp_edge.dir/edge/cluster.cc.o.d"
  "/root/repo/src/edge/cost_model.cc" "src/CMakeFiles/fedmp_edge.dir/edge/cost_model.cc.o" "gcc" "src/CMakeFiles/fedmp_edge.dir/edge/cost_model.cc.o.d"
  "/root/repo/src/edge/device.cc" "src/CMakeFiles/fedmp_edge.dir/edge/device.cc.o" "gcc" "src/CMakeFiles/fedmp_edge.dir/edge/device.cc.o.d"
  "/root/repo/src/edge/event_queue.cc" "src/CMakeFiles/fedmp_edge.dir/edge/event_queue.cc.o" "gcc" "src/CMakeFiles/fedmp_edge.dir/edge/event_queue.cc.o.d"
  "/root/repo/src/edge/fault.cc" "src/CMakeFiles/fedmp_edge.dir/edge/fault.cc.o" "gcc" "src/CMakeFiles/fedmp_edge.dir/edge/fault.cc.o.d"
  "/root/repo/src/edge/network.cc" "src/CMakeFiles/fedmp_edge.dir/edge/network.cc.o" "gcc" "src/CMakeFiles/fedmp_edge.dir/edge/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedmp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
