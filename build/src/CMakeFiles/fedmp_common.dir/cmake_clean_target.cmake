file(REMOVE_RECURSE
  "libfedmp_common.a"
)
