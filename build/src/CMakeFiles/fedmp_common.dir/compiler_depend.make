# Empty compiler generated dependencies file for fedmp_common.
# This may be replaced when dependencies are built.
