file(REMOVE_RECURSE
  "CMakeFiles/fedmp_common.dir/common/csv.cc.o"
  "CMakeFiles/fedmp_common.dir/common/csv.cc.o.d"
  "CMakeFiles/fedmp_common.dir/common/logging.cc.o"
  "CMakeFiles/fedmp_common.dir/common/logging.cc.o.d"
  "CMakeFiles/fedmp_common.dir/common/rng.cc.o"
  "CMakeFiles/fedmp_common.dir/common/rng.cc.o.d"
  "CMakeFiles/fedmp_common.dir/common/status.cc.o"
  "CMakeFiles/fedmp_common.dir/common/status.cc.o.d"
  "CMakeFiles/fedmp_common.dir/common/string_util.cc.o"
  "CMakeFiles/fedmp_common.dir/common/string_util.cc.o.d"
  "libfedmp_common.a"
  "libfedmp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
