# Empty dependencies file for fedmp_bandit.
# This may be replaced when dependencies are built.
