file(REMOVE_RECURSE
  "libfedmp_bandit.a"
)
