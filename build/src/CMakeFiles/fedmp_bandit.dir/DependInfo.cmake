
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bandit/discounted_ucb.cc" "src/CMakeFiles/fedmp_bandit.dir/bandit/discounted_ucb.cc.o" "gcc" "src/CMakeFiles/fedmp_bandit.dir/bandit/discounted_ucb.cc.o.d"
  "/root/repo/src/bandit/eucb.cc" "src/CMakeFiles/fedmp_bandit.dir/bandit/eucb.cc.o" "gcc" "src/CMakeFiles/fedmp_bandit.dir/bandit/eucb.cc.o.d"
  "/root/repo/src/bandit/partition_tree.cc" "src/CMakeFiles/fedmp_bandit.dir/bandit/partition_tree.cc.o" "gcc" "src/CMakeFiles/fedmp_bandit.dir/bandit/partition_tree.cc.o.d"
  "/root/repo/src/bandit/reward.cc" "src/CMakeFiles/fedmp_bandit.dir/bandit/reward.cc.o" "gcc" "src/CMakeFiles/fedmp_bandit.dir/bandit/reward.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
