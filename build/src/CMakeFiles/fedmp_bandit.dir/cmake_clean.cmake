file(REMOVE_RECURSE
  "CMakeFiles/fedmp_bandit.dir/bandit/discounted_ucb.cc.o"
  "CMakeFiles/fedmp_bandit.dir/bandit/discounted_ucb.cc.o.d"
  "CMakeFiles/fedmp_bandit.dir/bandit/eucb.cc.o"
  "CMakeFiles/fedmp_bandit.dir/bandit/eucb.cc.o.d"
  "CMakeFiles/fedmp_bandit.dir/bandit/partition_tree.cc.o"
  "CMakeFiles/fedmp_bandit.dir/bandit/partition_tree.cc.o.d"
  "CMakeFiles/fedmp_bandit.dir/bandit/reward.cc.o"
  "CMakeFiles/fedmp_bandit.dir/bandit/reward.cc.o.d"
  "libfedmp_bandit.a"
  "libfedmp_bandit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmp_bandit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
