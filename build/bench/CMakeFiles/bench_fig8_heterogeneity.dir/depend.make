# Empty dependencies file for bench_fig8_heterogeneity.
# This may be replaced when dependencies are built.
