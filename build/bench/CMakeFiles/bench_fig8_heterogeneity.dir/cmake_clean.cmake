file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_heterogeneity.dir/bench_fig8_heterogeneity.cpp.o"
  "CMakeFiles/bench_fig8_heterogeneity.dir/bench_fig8_heterogeneity.cpp.o.d"
  "bench_fig8_heterogeneity"
  "bench_fig8_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
