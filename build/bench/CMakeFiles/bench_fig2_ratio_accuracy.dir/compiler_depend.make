# Empty compiler generated dependencies file for bench_fig2_ratio_accuracy.
# This may be replaced when dependencies are built.
