file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fig6_methods.dir/bench_table3_fig6_methods.cpp.o"
  "CMakeFiles/bench_table3_fig6_methods.dir/bench_table3_fig6_methods.cpp.o.d"
  "bench_table3_fig6_methods"
  "bench_table3_fig6_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fig6_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
