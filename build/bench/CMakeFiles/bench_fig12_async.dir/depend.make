# Empty dependencies file for bench_fig12_async.
# This may be replaced when dependencies are built.
