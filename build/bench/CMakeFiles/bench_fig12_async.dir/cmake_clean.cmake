file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_async.dir/bench_fig12_async.cpp.o"
  "CMakeFiles/bench_fig12_async.dir/bench_fig12_async.cpp.o.d"
  "bench_fig12_async"
  "bench_fig12_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
