# Empty dependencies file for bench_table4_lstm.
# This may be replaced when dependencies are built.
