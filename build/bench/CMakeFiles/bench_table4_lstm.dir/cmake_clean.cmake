file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_lstm.dir/bench_table4_lstm.cpp.o"
  "CMakeFiles/bench_table4_lstm.dir/bench_table4_lstm.cpp.o.d"
  "bench_table4_lstm"
  "bench_table4_lstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
