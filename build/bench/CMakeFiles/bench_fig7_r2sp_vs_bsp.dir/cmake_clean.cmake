file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_r2sp_vs_bsp.dir/bench_fig7_r2sp_vs_bsp.cpp.o"
  "CMakeFiles/bench_fig7_r2sp_vs_bsp.dir/bench_fig7_r2sp_vs_bsp.cpp.o.d"
  "bench_fig7_r2sp_vs_bsp"
  "bench_fig7_r2sp_vs_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_r2sp_vs_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
