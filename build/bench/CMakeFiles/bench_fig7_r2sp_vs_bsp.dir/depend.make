# Empty dependencies file for bench_fig7_r2sp_vs_bsp.
# This may be replaced when dependencies are built.
