# Empty compiler generated dependencies file for bench_fig9_noniid.
# This may be replaced when dependencies are built.
