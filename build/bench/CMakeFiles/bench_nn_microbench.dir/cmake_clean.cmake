file(REMOVE_RECURSE
  "CMakeFiles/bench_nn_microbench.dir/bench_nn_microbench.cpp.o"
  "CMakeFiles/bench_nn_microbench.dir/bench_nn_microbench.cpp.o.d"
  "bench_nn_microbench"
  "bench_nn_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nn_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
