# Empty compiler generated dependencies file for bench_nn_microbench.
# This may be replaced when dependencies are built.
