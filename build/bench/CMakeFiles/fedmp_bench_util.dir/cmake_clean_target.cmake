file(REMOVE_RECURSE
  "libfedmp_bench_util.a"
)
