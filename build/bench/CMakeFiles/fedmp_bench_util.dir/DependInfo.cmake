
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cc" "bench/CMakeFiles/fedmp_bench_util.dir/bench_util.cc.o" "gcc" "bench/CMakeFiles/fedmp_bench_util.dir/bench_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_pruning.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
