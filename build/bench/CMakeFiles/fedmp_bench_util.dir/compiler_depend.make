# Empty compiler generated dependencies file for fedmp_bench_util.
# This may be replaced when dependencies are built.
