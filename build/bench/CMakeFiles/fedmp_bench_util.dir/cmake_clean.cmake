file(REMOVE_RECURSE
  "CMakeFiles/fedmp_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/fedmp_bench_util.dir/bench_util.cc.o.d"
  "libfedmp_bench_util.a"
  "libfedmp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedmp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
