file(REMOVE_RECURSE
  "CMakeFiles/fl_trainer_test.dir/fl/async_trainer_test.cc.o"
  "CMakeFiles/fl_trainer_test.dir/fl/async_trainer_test.cc.o.d"
  "CMakeFiles/fl_trainer_test.dir/fl/trainer_test.cc.o"
  "CMakeFiles/fl_trainer_test.dir/fl/trainer_test.cc.o.d"
  "fl_trainer_test"
  "fl_trainer_test.pdb"
  "fl_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
