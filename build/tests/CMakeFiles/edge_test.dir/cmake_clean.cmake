file(REMOVE_RECURSE
  "CMakeFiles/edge_test.dir/edge/cluster_test.cc.o"
  "CMakeFiles/edge_test.dir/edge/cluster_test.cc.o.d"
  "CMakeFiles/edge_test.dir/edge/cost_model_test.cc.o"
  "CMakeFiles/edge_test.dir/edge/cost_model_test.cc.o.d"
  "CMakeFiles/edge_test.dir/edge/device_test.cc.o"
  "CMakeFiles/edge_test.dir/edge/device_test.cc.o.d"
  "CMakeFiles/edge_test.dir/edge/event_queue_test.cc.o"
  "CMakeFiles/edge_test.dir/edge/event_queue_test.cc.o.d"
  "CMakeFiles/edge_test.dir/edge/fault_test.cc.o"
  "CMakeFiles/edge_test.dir/edge/fault_test.cc.o.d"
  "edge_test"
  "edge_test.pdb"
  "edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
