file(REMOVE_RECURSE
  "CMakeFiles/fl_test.dir/fl/aggregation_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/aggregation_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/quantize_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/quantize_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/round_log_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/round_log_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/server_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/server_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/strategies_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/strategies_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/worker_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/worker_test.cc.o.d"
  "fl_test"
  "fl_test.pdb"
  "fl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
