
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pruning/importance_test.cc" "tests/CMakeFiles/pruning_test.dir/pruning/importance_test.cc.o" "gcc" "tests/CMakeFiles/pruning_test.dir/pruning/importance_test.cc.o.d"
  "/root/repo/tests/pruning/lstm_iss_test.cc" "tests/CMakeFiles/pruning_test.dir/pruning/lstm_iss_test.cc.o" "gcc" "tests/CMakeFiles/pruning_test.dir/pruning/lstm_iss_test.cc.o.d"
  "/root/repo/tests/pruning/mask_test.cc" "tests/CMakeFiles/pruning_test.dir/pruning/mask_test.cc.o" "gcc" "tests/CMakeFiles/pruning_test.dir/pruning/mask_test.cc.o.d"
  "/root/repo/tests/pruning/pruner_test.cc" "tests/CMakeFiles/pruning_test.dir/pruning/pruner_test.cc.o" "gcc" "tests/CMakeFiles/pruning_test.dir/pruning/pruner_test.cc.o.d"
  "/root/repo/tests/pruning/recovery_test.cc" "tests/CMakeFiles/pruning_test.dir/pruning/recovery_test.cc.o" "gcc" "tests/CMakeFiles/pruning_test.dir/pruning/recovery_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_pruning.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
