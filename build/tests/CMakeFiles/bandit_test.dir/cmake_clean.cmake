file(REMOVE_RECURSE
  "CMakeFiles/bandit_test.dir/bandit/discounted_ucb_test.cc.o"
  "CMakeFiles/bandit_test.dir/bandit/discounted_ucb_test.cc.o.d"
  "CMakeFiles/bandit_test.dir/bandit/eucb_test.cc.o"
  "CMakeFiles/bandit_test.dir/bandit/eucb_test.cc.o.d"
  "CMakeFiles/bandit_test.dir/bandit/partition_tree_test.cc.o"
  "CMakeFiles/bandit_test.dir/bandit/partition_tree_test.cc.o.d"
  "CMakeFiles/bandit_test.dir/bandit/reward_test.cc.o"
  "CMakeFiles/bandit_test.dir/bandit/reward_test.cc.o.d"
  "bandit_test"
  "bandit_test.pdb"
  "bandit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
