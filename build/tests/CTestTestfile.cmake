# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nn_tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_layers_test[1]_include.cmake")
include("/root/repo/build/tests/nn_model_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/pruning_test[1]_include.cmake")
include("/root/repo/build/tests/bandit_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/fl_test[1]_include.cmake")
include("/root/repo/build/tests/fl_trainer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
