// End-to-end coverage of the public façade (core/fedmp.h): every method,
// partition mode and execution mode runs through RunExperiment on tiny
// tasks, and the headline qualitative claims hold directionally.

#include "core/fedmp.h"

#include <gtest/gtest.h>

namespace fedmp {
namespace {

ExperimentConfig TinyConfig(const std::string& method) {
  ExperimentConfig config;
  config.task = "cnn";
  config.scale = data::TaskScale::kTiny;
  config.method = method;
  config.trainer.max_rounds = 10;
  config.trainer.eval_every = 2;
  config.trainer.eval_batch_size = 16;
  return config;
}

class MethodSmokeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MethodSmokeTest, RunsToCompletion) {
  const auto log = RunExperiment(TinyConfig(GetParam()));
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(log->records().size(), 10u);
  EXPECT_GE(log->FinalAccuracy(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodSmokeTest,
    ::testing::Values("fedmp", "syn_fl", "up_fl", "fedprox", "flexcom",
                      "fedmp_bsp", "fedmp_time_reward", "fedmp_quant",
                      "fixed:0.4"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':' || c == '.') c = '_';
      }
      return name;
    });

TEST(FacadeTest, UnknownMethodRejected) {
  EXPECT_FALSE(RunExperiment(TinyConfig("nonsense")).ok());
  EXPECT_FALSE(RunExperiment(TinyConfig("fixed:1.5")).ok());
}

TEST(FacadeTest, PartitionModes) {
  for (const char* partition : {"iid", "skew:50", "missing:1"}) {
    ExperimentConfig config = TinyConfig("syn_fl");
    config.partition = partition;
    const auto log = RunExperiment(config);
    EXPECT_TRUE(log.ok()) << partition << ": " << log.status();
  }
  ExperimentConfig config = TinyConfig("syn_fl");
  config.partition = "skew:150";
  EXPECT_FALSE(RunExperiment(config).ok());
  config.partition = "bogus";
  EXPECT_FALSE(RunExperiment(config).ok());
}

TEST(FacadeTest, AsyncMode) {
  ExperimentConfig config = TinyConfig("fedmp");
  config.async_mode = true;
  config.async_m = 4;
  const auto log = RunExperiment(config);
  ASSERT_TRUE(log.ok()) << log.status();
  for (const auto& r : log->records()) EXPECT_EQ(r.participants, 4);
}

TEST(FacadeTest, ScalingFleet) {
  ExperimentConfig config = TinyConfig("syn_fl");
  config.num_workers = 14;
  EXPECT_EQ(MakeFleet(config).size(), 14u);
  const auto log = RunExperiment(config);
  EXPECT_TRUE(log.ok());
}

TEST(FacadeTest, PaperMethodsListsAllFive) {
  EXPECT_EQ(PaperMethods().size(), 5u);
  EXPECT_EQ(PaperMethods().back(), "fedmp");
}

TEST(FacadeTest, ReusingTaskMatchesRegeneratedTask) {
  const ExperimentConfig config = TinyConfig("syn_fl");
  const data::FlTask task =
      data::MakeTaskByName(config.task, config.scale, config.data_seed);
  const auto a = RunExperimentOnTask(config, task);
  const auto b = RunExperiment(config);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->records().size(), b->records().size());
  for (size_t i = 0; i < a->records().size(); ++i) {
    EXPECT_DOUBLE_EQ(a->records()[i].test_accuracy,
                     b->records()[i].test_accuracy);
  }
}

// Directional headline claim on a tiny-but-real run: FedMP's average round
// is cheaper than Syn-FL's under heterogeneity (the per-round time win that
// drives every speedup in §V).
TEST(HeadlineTest, FedMpRoundsCheaperThanSynFl) {
  ExperimentConfig config = TinyConfig("syn_fl");
  config.trainer.max_rounds = 30;
  const auto syn = RunExperiment(config);
  config.method = "fedmp";
  const auto fedmp_log = RunExperiment(config);
  ASSERT_TRUE(syn.ok() && fedmp_log.ok());
  const double syn_round =
      syn->TotalSimTime() / static_cast<double>(syn->records().size());
  const double fedmp_round =
      fedmp_log->TotalSimTime() /
      static_cast<double>(fedmp_log->records().size());
  EXPECT_LT(fedmp_round, syn_round);
}

// R2SP preserves more of the model than BSP (Fig. 7's direction) on the
// exact same schedule.
TEST(HeadlineTest, R2spBeatsBspOnFinalAccuracy) {
  ExperimentConfig config = TinyConfig("fixed:0.5");
  config.trainer.max_rounds = 30;
  const auto r2sp = RunExperiment(config);
  ASSERT_TRUE(r2sp.ok());
  // FixedRatioStrategy with BSP via fedmp_bsp uses adaptive ratios; to
  // isolate the scheme we compare fedmp vs fedmp_bsp on a longer horizon.
  config.method = "fedmp";
  const auto with_r2sp = RunExperiment(config);
  config.method = "fedmp_bsp";
  const auto with_bsp = RunExperiment(config);
  ASSERT_TRUE(with_r2sp.ok() && with_bsp.ok());
  EXPECT_GE(with_r2sp->FinalAccuracy() + 0.05, with_bsp->FinalAccuracy())
      << "R2SP should not lose to BSP by a margin";
}

}  // namespace
}  // namespace fedmp
