// The fog tier must be invisible in results: hierarchical aggregation over
// canonical range slices is bit-identical to the flat paths at any fan-out,
// thread count, and arrival order — including rounds with interior holes and
// fully-down regions. These are property tests in the pipeline_test oracle
// style: the serial AggregateSubModels fold is the single source of truth,
// and the concurrent suites double as TSAN coverage for the fog tier.

#include "fl/hierarchy.h"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "common/range_tree.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/task_zoo.h"
#include "fl/aggregation.h"
#include "fl/pipeline.h"
#include "fl/strategies/fedmp_strategy.h"
#include "fl/trainer.h"
#include "nn/model_builder.h"
#include "pruning/structured_pruner.h"

namespace fedmp::fl {
namespace {

// --- CanonicalRangeSlices / SliceOf properties ---

// A range is a node of the canonical tree over [0, n) iff a descent that
// splits at CanonicalSplit reaches it exactly.
bool IsCanonicalTreeNode(int64_t n, int64_t lo, int64_t hi) {
  int64_t clo = 0, chi = n;
  while (!(clo == lo && chi == hi)) {
    if (chi - clo < 2) return false;
    const int64_t mid = CanonicalSplit(clo, chi);
    if (hi <= mid) {
      chi = mid;
    } else if (lo >= mid) {
      clo = mid;
    } else {
      return false;  // straddles a split: not a subtree
    }
  }
  return true;
}

TEST(HierarchySlicesTest, SlicesPartitionTheRangeIntoTreeNodes) {
  for (int64_t n : {1, 2, 3, 5, 8, 37, 100, 10000}) {
    for (int64_t parts : {1, 2, 3, 4, 7, 32, 64}) {
      const auto slices = CanonicalRangeSlices(n, parts);
      ASSERT_EQ(static_cast<int64_t>(slices.size()), std::min(parts, n))
          << "n=" << n << " parts=" << parts;
      // Sorted, contiguous, covering [0, n).
      EXPECT_EQ(slices.front().first, 0);
      EXPECT_EQ(slices.back().second, n);
      for (size_t i = 0; i < slices.size(); ++i) {
        EXPECT_LT(slices[i].first, slices[i].second);
        if (i > 0) {
          EXPECT_EQ(slices[i - 1].second, slices[i].first);
        }
        EXPECT_TRUE(IsCanonicalTreeNode(n, slices[i].first, slices[i].second))
            << "n=" << n << " parts=" << parts << " slice [" << slices[i].first
            << ", " << slices[i].second << ")";
      }
      // SliceOf agrees with a linear scan at every index boundary and a
      // spread of interior points.
      for (int64_t idx = 0; idx < n; idx += std::max<int64_t>(1, n / 13)) {
        int want = -1;
        for (size_t s = 0; s < slices.size(); ++s) {
          if (slices[s].first <= idx && idx < slices[s].second) {
            want = static_cast<int>(s);
          }
        }
        EXPECT_EQ(SliceOf(slices, idx), want) << "n=" << n << " idx=" << idx;
      }
    }
  }
}

// --- HierarchicalAggregator vs the serial oracle ---

// Many distinct sub-model updates over the tiny CNN so that fan-out 32 still
// sees multi-slot fog slices and the fold order genuinely matters.
struct FogFixture {
  data::FlTask task;
  nn::TensorList global;
  std::vector<pruning::SubModel> subs;

  explicit FogFixture(int n)
      : task(data::MakeTaskByName("cnn", data::TaskScale::kTiny, 5)) {
    auto model = nn::BuildModelOrDie(task.model, 9);
    global = model->GetWeights();
    const double ratios[] = {0.2, 0.35, 0.5, 0.7};
    for (int i = 0; i < n; ++i) {
      auto sub = pruning::PruneByRatio(task.model, global, ratios[i % 4]);
      EXPECT_TRUE(sub.ok());
      subs.push_back(std::move(sub).value());
      // Per-slot perturbation so every update is distinct and any
      // re-association of the sum shows up in the bits.
      for (auto& t : subs.back().weights) {
        for (int64_t j = 0; j < t.numel(); ++j) {
          t.at(j) += 0.0007f * static_cast<float>((j + i) % 11);
        }
      }
    }
  }
};

nn::TensorList FlatOracle(const FogFixture& f,
                          const std::vector<bool>& admitted, bool quantize) {
  std::vector<SubModelUpdate> updates(f.subs.size());
  for (size_t i = 0; i < f.subs.size(); ++i) {
    if (admitted[i]) {
      updates[i] = SubModelUpdate{&f.subs[i].mask, &f.subs[i].weights};
    }
  }
  auto oracle = AggregateSubModels(f.task.model, f.global, updates,
                                   SyncScheme::kR2SP, quantize);
  EXPECT_TRUE(oracle.ok());
  return std::move(oracle).value();
}

// Drives the fog tier from `num_threads` concurrent producers feeding slots
// in a seeded shuffled order while the main thread races the decisions in
// slot order. Returns the scaled global update.
nn::TensorList RunFog(const FogFixture& f, const std::vector<bool>& admitted,
                      bool quantize, int fan_out, int num_threads,
                      uint64_t shuffle_seed, int* participants_out) {
  const int n = static_cast<int>(f.subs.size());
  HierarchicalAggregator agg(f.task.model, f.global, n, SyncScheme::kR2SP,
                             quantize, fan_out);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(shuffle_seed);
  rng.Shuffle(order);

  std::vector<std::thread> producers;
  producers.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    producers.emplace_back([&, t] {
      for (int k = t; k < n; k += num_threads) {
        const int slot = order[static_cast<size_t>(k)];
        if (admitted[static_cast<size_t>(slot)]) {
          agg.Accumulate(slot, f.subs[static_cast<size_t>(slot)].weights,
                         f.subs[static_cast<size_t>(slot)].mask);
        } else {
          agg.MarkUnavailable(slot);
        }
      }
    });
  }
  // Decisions race with the payloads (and may land first — the aggregator
  // must hold them until the slot is ready).
  for (int slot = 0; slot < n; ++slot) {
    if (admitted[static_cast<size_t>(slot)]) {
      agg.Admit(slot);
    } else {
      agg.Reject(slot);
    }
  }
  for (auto& t : producers) t.join();

  StreamingAggregator::Result result = agg.Finish();
  *participants_out = result.participants;
  nn::ScaleLists(result.sum, 1.0f / static_cast<float>(result.participants));
  return std::move(result.sum);
}

void ExpectListsBitIdentical(const nn::TensorList& got,
                             const nn::TensorList& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].SameShape(want[i]));
    EXPECT_EQ(nn::MaxAbsDiff(got[i], want[i]), 0.0) << "tensor " << i;
  }
}

class HierarchyAggregatorTest : public ::testing::TestWithParam<bool> {};

TEST_P(HierarchyAggregatorTest, BitIdenticalToFlatAcrossFanOutAndThreads) {
  const bool quantize = GetParam();
  const int n = 37;  // odd, non-power-of-two: every slice width appears
  FogFixture f(n);

  // Hole patterns: dense round, interior holes, one whole fog region down
  // ([8, 16) is exactly a fan-out-4 slice of 37 slots).
  std::vector<std::pair<const char*, std::vector<bool>>> patterns;
  patterns.emplace_back("dense", std::vector<bool>(n, true));
  {
    std::vector<bool> holes(static_cast<size_t>(n), true);
    holes[1] = holes[13] = holes[22] = holes[36] = false;
    patterns.emplace_back("interior-holes", holes);
  }
  {
    std::vector<bool> region(static_cast<size_t>(n), true);
    for (int i = 8; i < 16; ++i) region[static_cast<size_t>(i)] = false;
    patterns.emplace_back("region-down", region);
  }

  uint64_t combo = 0;
  for (const auto& [name, admitted] : patterns) {
    const nn::TensorList oracle = FlatOracle(f, admitted, quantize);
    const int want_participants = static_cast<int>(
        std::count(admitted.begin(), admitted.end(), true));
    for (int fan_out : {1, 4, 32}) {
      for (int threads : {1, 4}) {
        int participants = 0;
        const nn::TensorList got =
            RunFog(f, admitted, quantize, fan_out, threads,
                   /*shuffle_seed=*/0xFEDC0DE + combo++, &participants);
        EXPECT_EQ(participants, want_participants)
            << name << " fan_out=" << fan_out << " threads=" << threads;
        {
          SCOPED_TRACE(::testing::Message()
                       << name << " fan_out=" << fan_out
                       << " threads=" << threads << " quantize=" << quantize);
          ExpectListsBitIdentical(got, oracle);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(QuantizedResiduals, HierarchyAggregatorTest,
                         ::testing::Values(false, true));

TEST(HierarchyRoutingTest, FogOfMatchesCanonicalSlices) {
  FogFixture f(11);
  HierarchicalAggregator agg(f.task.model, f.global, 11, SyncScheme::kR2SP,
                             /*quantize_residuals=*/false, /*fan_out=*/4);
  const auto slices = CanonicalRangeSlices(11, 4);
  ASSERT_EQ(agg.num_fogs(), static_cast<int>(slices.size()));
  for (int fog = 0; fog < agg.num_fogs(); ++fog) {
    const auto [lo, hi] = agg.fog_range(fog);
    EXPECT_EQ(lo, slices[static_cast<size_t>(fog)].first);
    EXPECT_EQ(hi, slices[static_cast<size_t>(fog)].second);
  }
  for (int slot = 0; slot < 11; ++slot) {
    EXPECT_EQ(agg.fog_of(slot), SliceOf(slices, slot)) << "slot " << slot;
  }
  // Drain the protocol so the aggregator can be destroyed cleanly.
  for (int slot = 0; slot < 11; ++slot) {
    agg.Accumulate(slot, f.subs[static_cast<size_t>(slot)].weights,
                   f.subs[static_cast<size_t>(slot)].mask);
    agg.Admit(slot);
  }
  StreamingAggregator::Result result = agg.Finish();
  EXPECT_EQ(result.participants, 11);
}

TEST(HierarchyRoutingTest, FanOutBeyondSlotsClampsToOnePerSlot) {
  FogFixture f(3);
  HierarchicalAggregator agg(f.task.model, f.global, 3, SyncScheme::kR2SP,
                             /*quantize_residuals=*/false, /*fan_out=*/32);
  EXPECT_EQ(agg.num_fogs(), 3);
  for (int slot = 0; slot < 3; ++slot) {
    agg.Accumulate(slot, f.subs[static_cast<size_t>(slot)].weights,
                   f.subs[static_cast<size_t>(slot)].mask);
    agg.Admit(slot);
  }
  std::vector<bool> all(3, true);
  const nn::TensorList oracle = FlatOracle(f, all, /*quantize=*/false);
  StreamingAggregator::Result result = agg.Finish();
  EXPECT_EQ(result.participants, 3);
  nn::ScaleLists(result.sum, 1.0f / 3.0f);
  ExpectListsBitIdentical(result.sum, oracle);
}

// --- Full-run equivalence: flat vs fog vs bounded-window ---

struct RunResult {
  nn::TensorList weights;
  RoundLog log;
};

RunResult RunScaled(int num_threads, bool deadline_enabled, int fog_fan_out,
                    int max_inflight) {
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 5);
  TrainerOptions opt;
  opt.max_rounds = 4;
  opt.eval_every = 2;
  opt.eval_batch_size = 16;
  opt.seed = 3;
  opt.num_threads = num_threads;
  opt.deadline.enabled = deadline_enabled;
  opt.scale.fog_fan_out = fog_fan_out;
  opt.scale.max_inflight = max_inflight;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  Trainer trainer(&task, fleet, std::move(partition),
                  std::make_unique<FedMpStrategy>(), opt);
  RunResult out;
  out.log = trainer.Run();
  out.weights = trainer.server().weights();
  return out;
}

void ExpectIdentical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    ASSERT_TRUE(a.weights[i].SameShape(b.weights[i]));
    EXPECT_EQ(nn::MaxAbsDiff(a.weights[i], b.weights[i]), 0.0)
        << "global weight tensor " << i << " diverged";
  }
  ASSERT_EQ(a.log.records().size(), b.log.records().size());
  for (size_t i = 0; i < a.log.records().size(); ++i) {
    const auto& ra = a.log.records()[i];
    const auto& rb = b.log.records()[i];
    EXPECT_EQ(ra.train_loss, rb.train_loss) << "round " << ra.round;
    EXPECT_EQ(ra.test_loss, rb.test_loss) << "round " << ra.round;
    EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << "round " << ra.round;
    EXPECT_EQ(ra.participants, rb.participants) << "round " << ra.round;
    EXPECT_EQ(ra.sim_time, rb.sim_time) << "round " << ra.round;
  }
}

class HierarchyRunTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetPipelineEnabled(true);
    ThreadPool::SetGlobalThreads(1);
  }
};

TEST_F(HierarchyRunTest, SyncTrainerBitIdenticalAcrossFanOutAndWindow) {
  // The barrier loop with the pipeline disabled is the ground truth; every
  // scale-out shape must land on the same bits.
  SetPipelineEnabled(false);
  const RunResult barrier = RunScaled(1, /*deadline_enabled=*/true,
                                      /*fog_fan_out=*/1, /*max_inflight=*/0);
  SetPipelineEnabled(true);
  const RunResult flat = RunScaled(1, true, 1, 0);
  const RunResult fog4 = RunScaled(1, true, 4, 0);
  const RunResult fog4_mt = RunScaled(4, true, 4, 0);
  const RunResult fog32 = RunScaled(1, true, 32, 0);
  const RunResult fog4_window = RunScaled(4, true, 4, /*max_inflight=*/2);
  ExpectIdentical(barrier, flat);
  ExpectIdentical(barrier, fog4);
  ExpectIdentical(barrier, fog4_mt);
  ExpectIdentical(barrier, fog32);
  ExpectIdentical(barrier, fog4_window);
}

// Eager admission (no deadline) decides slots as workers finish — the other
// admission code path; a bounded window changes drain timing there too.
TEST_F(HierarchyRunTest, SyncTrainerEagerAdmissionBitIdenticalUnderWindow) {
  SetPipelineEnabled(false);
  const RunResult barrier = RunScaled(1, /*deadline_enabled=*/false, 1, 0);
  SetPipelineEnabled(true);
  const RunResult fog4 = RunScaled(1, false, 4, 0);
  const RunResult fog4_window_mt = RunScaled(4, false, 4, /*max_inflight=*/3);
  ExpectIdentical(barrier, fog4);
  ExpectIdentical(barrier, fog4_window_mt);
}

}  // namespace
}  // namespace fedmp::fl
