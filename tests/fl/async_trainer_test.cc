#include "fl/async_trainer.h"

#include <gtest/gtest.h>

#include "fl/strategies/fedmp_strategy.h"
#include "fl/strategies/syn_fl.h"
#include "fl/strategies/up_fl.h"

namespace fedmp::fl {
namespace {

AsyncTrainerOptions FastOptions(int m) {
  AsyncTrainerOptions opt;
  opt.base.max_rounds = 10;
  opt.base.eval_every = 2;
  opt.base.eval_batch_size = 16;
  opt.base.seed = 3;
  opt.m = m;
  return opt;
}

std::vector<edge::DeviceProfile> SmallFleet() {
  return edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium,
                                        5);
}

data::FlTask TinyTask() {
  return data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
}

TEST(AsyncTrainerTest, AggregatesMFirstArrivals) {
  const data::FlTask task = TinyTask();
  const RoundLog log = RunFederatedAsync(
      task, SmallFleet(), std::make_unique<SynFlStrategy>(),
      FastOptions(5));
  EXPECT_EQ(log.records().size(), 10u);
  for (const auto& r : log.records()) {
    EXPECT_EQ(r.participants, 5);
  }
}

TEST(AsyncTrainerTest, ClockAdvancesMonotonically) {
  const data::FlTask task = TinyTask();
  const RoundLog log = RunFederatedAsync(
      task, SmallFleet(), std::make_unique<SynFlStrategy>(),
      FastOptions(3));
  double prev = 0.0;
  for (const auto& r : log.records()) {
    EXPECT_GE(r.sim_time, prev);
    prev = r.sim_time;
  }
}

TEST(AsyncTrainerTest, AsynFedMpRunsAndPrunes) {
  const data::FlTask task = TinyTask();
  AsyncTrainerOptions opt = FastOptions(5);
  opt.base.max_rounds = 20;
  const RoundLog log = RunFederatedAsync(
      task, SmallFleet(), std::make_unique<FedMpStrategy>(), opt);
  double mean_ratio = 0.0;
  for (const auto& r : log.records()) mean_ratio += r.mean_ratio;
  mean_ratio /= static_cast<double>(log.records().size());
  EXPECT_GT(mean_ratio, 0.0);
  EXPECT_GE(log.FinalAccuracy(), 0.0);
}

TEST(AsyncTrainerTest, LearningProgresses) {
  const data::FlTask task = TinyTask();
  AsyncTrainerOptions opt = FastOptions(5);
  opt.base.max_rounds = 40;
  const RoundLog log = RunFederatedAsync(
      task, SmallFleet(), std::make_unique<SynFlStrategy>(), opt);
  const double first = log.records().front().test_accuracy;
  EXPECT_GT(log.FinalAccuracy(), first);
}

TEST(AsyncTrainerTest, SmallerMMeansShorterRounds) {
  const data::FlTask task = TinyTask();
  const RoundLog m2 = RunFederatedAsync(
      task, SmallFleet(), std::make_unique<SynFlStrategy>(),
      FastOptions(2));
  const RoundLog m8 = RunFederatedAsync(
      task, SmallFleet(), std::make_unique<SynFlStrategy>(),
      FastOptions(8));
  // Waiting for 2 arrivals is never slower (per aggregation) than 8.
  EXPECT_LT(m2.records().front().sim_time,
            m8.records().front().sim_time);
}

TEST(AsyncTrainerTest, DeterministicGivenSeed) {
  const data::FlTask task = TinyTask();
  const RoundLog a = RunFederatedAsync(
      task, SmallFleet(), std::make_unique<FedMpStrategy>(),
      FastOptions(4));
  const RoundLog b = RunFederatedAsync(
      task, SmallFleet(), std::make_unique<FedMpStrategy>(),
      FastOptions(4));
  ASSERT_EQ(a.records().size(), b.records().size());
  for (size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records()[i].sim_time, b.records()[i].sim_time);
  }
}

TEST(AsyncTrainerDeathTest, NonAsyncStrategyRejected) {
  const data::FlTask task = TinyTask();
  auto fleet = SmallFleet();
  Rng rng(1);
  auto partition =
      data::PartitionIid(task.train.size(), (int64_t)fleet.size(), rng);
  EXPECT_DEATH(AsyncTrainer(&task, fleet, partition,
                            std::make_unique<UpFlStrategy>(),
                            FastOptions(5)),
               "cannot run asynchronously");
}

TEST(AsyncTrainerDeathTest, BadMRejected) {
  const data::FlTask task = TinyTask();
  auto fleet = SmallFleet();
  Rng rng(1);
  auto partition =
      data::PartitionIid(task.train.size(), (int64_t)fleet.size(), rng);
  EXPECT_DEATH(AsyncTrainer(&task, fleet, partition,
                            std::make_unique<SynFlStrategy>(),
                            FastOptions(11)),
               "Check failed");
}

}  // namespace
}  // namespace fedmp::fl
