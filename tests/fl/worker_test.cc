#include "fl/worker.h"

#include <gtest/gtest.h>

#include "nn/tensor_ops.h"

namespace fedmp::fl {
namespace {

class WorkerTest : public ::testing::Test {
 protected:
  WorkerTest()
      : task_(data::MakeCnnMnistTask(data::TaskScale::kTiny, 5)) {}

  std::vector<int64_t> FullShard() const {
    std::vector<int64_t> shard(static_cast<size_t>(task_.train.size()));
    for (size_t i = 0; i < shard.size(); ++i) shard[i] = (int64_t)i;
    return shard;
  }

  LocalTrainOptions Options() const {
    LocalTrainOptions opt;
    opt.tau = 4;
    opt.batch_size = 8;
    opt.learning_rate = 0.05;
    opt.momentum = 0.9;
    return opt;
  }

  data::FlTask task_;
};

TEST_F(WorkerTest, LocalTrainReturnsTrainedWeights) {
  Worker worker(0, &task_.train, FullShard(),
                edge::JetsonTx2Mode(0), 7);
  auto model = nn::BuildModelOrDie(task_.model, 3);
  const nn::TensorList before = model->GetWeights();
  const LocalResult result =
      worker.LocalTrain(task_.model, before, Options());
  EXPECT_EQ(result.iterations, 4);
  ASSERT_TRUE(nn::SameShapes(result.weights, before));
  double moved = 0.0;
  for (size_t i = 0; i < before.size(); ++i) {
    moved += nn::MaxAbsDiff(result.weights[i], before[i]);
  }
  EXPECT_GT(moved, 0.0) << "SGD must change the weights";
}

TEST_F(WorkerTest, LossDecreasesOverManyRounds) {
  Worker worker(0, &task_.train, FullShard(),
                edge::JetsonTx2Mode(0), 7);
  auto model = nn::BuildModelOrDie(task_.model, 3);
  nn::TensorList weights = model->GetWeights();
  double first = 0.0, last = 0.0;
  for (int round = 0; round < 20; ++round) {
    const LocalResult r = worker.LocalTrain(task_.model, weights, Options());
    weights = r.weights;
    if (round == 0) first = r.initial_loss;
    last = r.final_loss;
  }
  EXPECT_LT(last, first * 0.7);
}

TEST_F(WorkerTest, ProximalTermLimitsDrift) {
  Worker a(0, &task_.train, FullShard(), edge::JetsonTx2Mode(0), 7);
  Worker b(1, &task_.train, FullShard(), edge::JetsonTx2Mode(0), 7);
  auto model = nn::BuildModelOrDie(task_.model, 3);
  const nn::TensorList anchor = model->GetWeights();
  LocalTrainOptions opt = Options();
  opt.tau = 10;
  const LocalResult plain = a.LocalTrain(task_.model, anchor, opt);
  opt.proximal_mu = 5.0;  // strong pull toward the anchor
  const LocalResult prox = b.LocalTrain(task_.model, anchor, opt);
  double drift_plain = 0.0, drift_prox = 0.0;
  for (size_t i = 0; i < anchor.size(); ++i) {
    drift_plain +=
        nn::SquaredNorm(nn::Sub(plain.weights[i], anchor[i]));
    drift_prox += nn::SquaredNorm(nn::Sub(prox.weights[i], anchor[i]));
  }
  EXPECT_LT(drift_prox, drift_plain);
}

TEST_F(WorkerTest, LanguageModelTraining) {
  const data::FlTask lm = data::MakeLstmPtbTask(data::TaskScale::kTiny, 5);
  std::vector<int64_t> shard(static_cast<size_t>(lm.train.size()));
  for (size_t i = 0; i < shard.size(); ++i) shard[i] = (int64_t)i;
  Worker worker(0, &lm.train, shard, edge::JetsonTx2Mode(0), 7);
  auto model = nn::BuildModelOrDie(lm.model, 3);
  LocalTrainOptions opt;
  opt.tau = 3;
  opt.batch_size = 8;
  opt.learning_rate = 0.3;
  opt.momentum = 0.0;
  opt.clip_norm = 5.0;
  opt.is_language_model = true;
  const LocalResult r = worker.LocalTrain(lm.model, model->GetWeights(), opt);
  EXPECT_GT(r.initial_loss, 0.0);
  EXPECT_GT(r.final_loss, 0.0);
}

TEST_F(WorkerTest, ShardSizeReported) {
  Worker worker(3, &task_.train, {0, 1, 2}, edge::JetsonTx2Mode(1), 7);
  EXPECT_EQ(worker.shard_size(), 3);
  EXPECT_EQ(worker.id(), 3);
}

TEST(WorkerDeathTest, EmptyShardAborts) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  // Explicit vector type: a bare `{}` would now resolve to the
  // PartitionView* overload (a null pointer) instead of an empty shard.
  EXPECT_DEATH(Worker(0, &task.train, std::vector<int64_t>{},
                      edge::JetsonTx2Mode(0), 7),
               "empty shard");
}

}  // namespace
}  // namespace fedmp::fl
