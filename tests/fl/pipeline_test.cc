// The pipelined execution engine must be invisible in results: streamed
// R2SP aggregation folds contributions in slot order no matter when they
// arrive, so a full federated run with the pipeline enabled must be
// bit-identical to the phase-barrier loop with it disabled, at any thread
// count, for both trainers. The StreamingAggregator tests below hammer the
// aggregator from concurrent std::threads on purpose — they are the TSAN
// coverage for the streaming path.

#include "fl/pipeline.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "data/task_zoo.h"
#include "fl/aggregation.h"
#include "fl/async_trainer.h"
#include "fl/strategies/fedmp_strategy.h"
#include "fl/trainer.h"
#include "nn/model_builder.h"
#include "pruning/structured_pruner.h"

namespace fedmp::fl {
namespace {

// --- StreamingAggregator vs the serial AggregateSubModels oracle ---

struct AggFixture {
  data::FlTask task;
  nn::TensorList global;
  std::vector<pruning::SubModel> subs;

  AggFixture() : task(data::MakeTaskByName("cnn", data::TaskScale::kTiny, 5)) {
    auto model = nn::BuildModelOrDie(task.model, 9);
    global = model->GetWeights();
    for (double ratio : {0.2, 0.4, 0.5, 0.7}) {
      auto sub = pruning::PruneByRatio(task.model, global, ratio);
      EXPECT_TRUE(sub.ok());
      subs.push_back(std::move(sub).value());
      // Deterministic per-slot perturbation so the updates differ and the
      // fold order actually matters.
      for (auto& t : subs.back().weights) {
        for (int64_t i = 0; i < t.numel(); ++i) {
          t.at(i) += 0.001f * static_cast<float>((i + subs.size()) % 7);
        }
      }
    }
  }
};

void ExpectListsBitIdentical(const nn::TensorList& got,
                             const nn::TensorList& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].SameShape(want[i]));
    EXPECT_EQ(nn::MaxAbsDiff(got[i], want[i]), 0.0) << "tensor " << i;
  }
}

class StreamingAggregatorTest : public ::testing::TestWithParam<bool> {};

TEST_P(StreamingAggregatorTest, MatchesSerialOracleUnderConcurrentArrival) {
  const bool quantize = GetParam();
  AggFixture f;
  const int n = static_cast<int>(f.subs.size());

  std::vector<SubModelUpdate> updates;
  for (const auto& sub : f.subs) {
    updates.push_back(SubModelUpdate{&sub.mask, &sub.weights});
  }
  auto oracle = AggregateSubModels(f.task.model, f.global, updates,
                                   SyncScheme::kR2SP, quantize);
  ASSERT_TRUE(oracle.ok());

  StreamingAggregator agg(f.task.model, f.global, n, SyncScheme::kR2SP,
                          quantize);
  // Contributions arrive from concurrent threads in whatever order the
  // scheduler picks; admissions race with them from the main thread. The
  // fold must still advance strictly in slot order.
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(n));
  for (int slot = n - 1; slot >= 0; --slot) {
    workers.emplace_back([&agg, &f, slot] {
      agg.Accumulate(slot, f.subs[static_cast<size_t>(slot)].weights,
                     f.subs[static_cast<size_t>(slot)].mask);
    });
  }
  for (int slot = 0; slot < n; ++slot) agg.Admit(slot);
  for (auto& t : workers) t.join();

  StreamingAggregator::Result result = agg.Finish();
  EXPECT_EQ(result.participants, n);
  nn::ScaleLists(result.sum, 1.0f / static_cast<float>(result.participants));
  ExpectListsBitIdentical(result.sum, *oracle);
}

INSTANTIATE_TEST_SUITE_P(QuantizedResiduals, StreamingAggregatorTest,
                         ::testing::Values(false, true));

TEST(StreamingAggregatorFoldTest, RejectedAndUnavailableSlotsAreSkipped) {
  AggFixture f;
  // Slot-aligned oracle: slots 1 and 3 are holes, exactly how the trainer's
  // barrier path presents non-participants to AggregateSubModels.
  std::vector<SubModelUpdate> updates(4);
  updates[0] = SubModelUpdate{&f.subs[0].mask, &f.subs[0].weights};
  updates[2] = SubModelUpdate{&f.subs[2].mask, &f.subs[2].weights};
  auto oracle = AggregateSubModels(f.task.model, f.global, updates,
                                   SyncScheme::kR2SP);
  ASSERT_TRUE(oracle.ok());

  StreamingAggregator agg(f.task.model, f.global, 4, SyncScheme::kR2SP,
                          /*quantize_residuals=*/false);
  agg.Accumulate(0, f.subs[0].weights, f.subs[0].mask);
  agg.Admit(0);
  agg.Accumulate(1, f.subs[1].weights, f.subs[1].mask);  // computed but
  agg.Reject(1);                                         // screened out
  agg.Accumulate(2, f.subs[2].weights, f.subs[2].mask);
  agg.Admit(2);
  agg.MarkUnavailable(3);  // crashed worker: no payload exists
  agg.Reject(3);

  StreamingAggregator::Result result = agg.Finish();
  EXPECT_EQ(result.participants, 2);
  nn::ScaleLists(result.sum, 1.0f / static_cast<float>(result.participants));
  ExpectListsBitIdentical(result.sum, *oracle);
}

// The pattern where slot-tree and compacted-list association actually
// diverge: {0, 2, 3} admitted out of 4 slots. The slot tree sums
// 0 + (2 + 3) (slot 1 is a hole in the left subtree); a fold over the
// compacted admitted list would sum (0 + 2) + 3. Which slots participate —
// not how many — must determine the bits, or fog slices (which are
// slot-based) could not reproduce the flat result under rejections.
TEST(StreamingAggregatorFoldTest, InteriorHoleMatchesSlotTreeAssociation) {
  AggFixture f;
  std::vector<SubModelUpdate> updates(4);
  updates[0] = SubModelUpdate{&f.subs[0].mask, &f.subs[0].weights};
  updates[2] = SubModelUpdate{&f.subs[2].mask, &f.subs[2].weights};
  updates[3] = SubModelUpdate{&f.subs[3].mask, &f.subs[3].weights};
  auto oracle = AggregateSubModels(f.task.model, f.global, updates,
                                   SyncScheme::kR2SP);
  ASSERT_TRUE(oracle.ok());

  StreamingAggregator agg(f.task.model, f.global, 4, SyncScheme::kR2SP,
                          /*quantize_residuals=*/false);
  agg.Accumulate(0, f.subs[0].weights, f.subs[0].mask);
  agg.Admit(0);
  agg.MarkUnavailable(1);
  agg.Reject(1);
  agg.Accumulate(2, f.subs[2].weights, f.subs[2].mask);
  agg.Admit(2);
  agg.Accumulate(3, f.subs[3].weights, f.subs[3].mask);
  agg.Admit(3);

  StreamingAggregator::Result result = agg.Finish();
  EXPECT_EQ(result.participants, 3);
  nn::ScaleLists(result.sum, 1.0f / static_cast<float>(result.participants));
  ExpectListsBitIdentical(result.sum, *oracle);
}

TEST(StreamingAggregatorFoldTest, DecisionsMayArriveBeforePayloads) {
  AggFixture f;
  std::vector<SubModelUpdate> updates;
  for (const auto& sub : f.subs) {
    updates.push_back(SubModelUpdate{&sub.mask, &sub.weights});
  }
  auto oracle = AggregateSubModels(f.task.model, f.global, updates,
                                   SyncScheme::kR2SP);
  ASSERT_TRUE(oracle.ok());

  const int n = static_cast<int>(f.subs.size());
  StreamingAggregator agg(f.task.model, f.global, n, SyncScheme::kR2SP,
                          /*quantize_residuals=*/false);
  for (int slot = 0; slot < n; ++slot) agg.Admit(slot);  // before payloads
  for (int slot = 0; slot < n; ++slot) {
    agg.Accumulate(slot, f.subs[static_cast<size_t>(slot)].weights,
                   f.subs[static_cast<size_t>(slot)].mask);
  }
  StreamingAggregator::Result result = agg.Finish();
  EXPECT_EQ(result.participants, n);
  nn::ScaleLists(result.sum, 1.0f / static_cast<float>(result.participants));
  ExpectListsBitIdentical(result.sum, *oracle);
}

// --- Full-run equivalence: pipeline ON vs OFF ---

struct RunResult {
  nn::TensorList weights;
  RoundLog log;
};

RunResult RunSync(int num_threads, bool deadline_enabled) {
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 5);
  TrainerOptions opt;
  opt.max_rounds = 4;
  opt.eval_every = 2;
  opt.eval_batch_size = 16;
  opt.seed = 3;
  opt.num_threads = num_threads;
  opt.deadline.enabled = deadline_enabled;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  Trainer trainer(&task, fleet, std::move(partition),
                  std::make_unique<FedMpStrategy>(), opt);
  RunResult out;
  out.log = trainer.Run();
  out.weights = trainer.server().weights();
  return out;
}

RunResult RunAsync(int num_threads) {
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 5);
  AsyncTrainerOptions opt;
  opt.base.max_rounds = 4;
  opt.base.eval_every = 2;
  opt.base.eval_batch_size = 16;
  opt.base.seed = 3;
  opt.base.num_threads = num_threads;
  opt.m = 2;
  Rng rng(opt.base.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  AsyncTrainer trainer(&task, fleet, std::move(partition),
                       std::make_unique<FedMpStrategy>(), opt);
  RunResult out;
  out.log = trainer.Run();
  out.weights = trainer.server().weights();
  return out;
}

void ExpectIdentical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    ASSERT_TRUE(a.weights[i].SameShape(b.weights[i]));
    EXPECT_EQ(nn::MaxAbsDiff(a.weights[i], b.weights[i]), 0.0)
        << "global weight tensor " << i << " diverged";
  }
  ASSERT_EQ(a.log.records().size(), b.log.records().size());
  for (size_t i = 0; i < a.log.records().size(); ++i) {
    const auto& ra = a.log.records()[i];
    const auto& rb = b.log.records()[i];
    EXPECT_EQ(ra.train_loss, rb.train_loss) << "round " << ra.round;
    EXPECT_EQ(ra.test_loss, rb.test_loss) << "round " << ra.round;
    EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << "round " << ra.round;
    EXPECT_EQ(ra.participants, rb.participants) << "round " << ra.round;
    EXPECT_EQ(ra.sim_time, rb.sim_time) << "round " << ra.round;
  }
}

class PipelineTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetPipelineEnabled(true);
    ThreadPool::SetGlobalThreads(1);
  }
};

TEST_F(PipelineTest, SyncTrainerBitIdenticalPipelineOnVsOff) {
  SetPipelineEnabled(false);
  const RunResult barrier = RunSync(1, /*deadline_enabled=*/true);
  SetPipelineEnabled(true);
  const RunResult pipelined_serial = RunSync(1, /*deadline_enabled=*/true);
  const RunResult pipelined_parallel = RunSync(4, /*deadline_enabled=*/true);
  ExpectIdentical(barrier, pipelined_serial);
  ExpectIdentical(barrier, pipelined_parallel);
}

// Without a deadline the pipelined round admits eagerly as workers finish
// (the fold streams); this is a different admission code path than the
// deferred-admission deadline round above.
TEST_F(PipelineTest, SyncTrainerEagerAdmissionBitIdentical) {
  SetPipelineEnabled(false);
  const RunResult barrier = RunSync(1, /*deadline_enabled=*/false);
  SetPipelineEnabled(true);
  const RunResult pipelined_serial = RunSync(1, /*deadline_enabled=*/false);
  const RunResult pipelined_parallel = RunSync(4, /*deadline_enabled=*/false);
  ExpectIdentical(barrier, pipelined_serial);
  ExpectIdentical(barrier, pipelined_parallel);
}

TEST_F(PipelineTest, AsyncTrainerBitIdenticalPipelineOnVsOff) {
  SetPipelineEnabled(false);
  const RunResult barrier = RunAsync(1);
  SetPipelineEnabled(true);
  const RunResult pipelined_serial = RunAsync(1);
  const RunResult pipelined_parallel = RunAsync(4);
  ExpectIdentical(barrier, pipelined_serial);
  ExpectIdentical(barrier, pipelined_parallel);
}

}  // namespace
}  // namespace fedmp::fl
