// The sharded parameter server must be invisible in results: per-shard
// locks and parallel shard folds change who holds which lock and which lane
// folds which range, never the aggregated bits. The serial flat fold is the
// single oracle; the grid suites double as TSAN coverage for the per-shard
// lock hand-off (producers -> Finish folds on pool lanes).

#include "fl/ps_shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "common/range_tree.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/task_zoo.h"
#include "fl/aggregation.h"
#include "fl/hierarchy.h"
#include "fl/pipeline.h"
#include "nn/model_builder.h"
#include "pruning/structured_pruner.h"

namespace fedmp::fl {
namespace {

// --- CanonicalRangeSlices / SliceOf degenerate inputs ---

TEST(PsShardSlicesTest, EmptyRangeYieldsNoSlices) {
  for (int64_t parts : {1, 2, 7, 64}) {
    EXPECT_TRUE(CanonicalRangeSlices(0, parts).empty()) << "parts=" << parts;
  }
}

TEST(PsShardSlicesTest, MorePartsThanSlotsClampsToSingletons) {
  for (int64_t n : {1, 2, 3, 5, 11}) {
    for (int64_t parts : {n + 1, 2 * n, int64_t{1000}}) {
      const auto slices = CanonicalRangeSlices(n, parts);
      ASSERT_EQ(static_cast<int64_t>(slices.size()), n)
          << "n=" << n << " parts=" << parts;
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(slices[static_cast<size_t>(i)].first, i);
        EXPECT_EQ(slices[static_cast<size_t>(i)].second, i + 1);
      }
    }
  }
}

TEST(PsShardSlicesTest, SingleSlotRange) {
  for (int64_t parts : {1, 2, 64}) {
    const auto slices = CanonicalRangeSlices(1, parts);
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_EQ(slices[0], std::make_pair(int64_t{0}, int64_t{1}));
    EXPECT_EQ(SliceOf(slices, 0), 0);
  }
}

// The refinement property the sharded hierarchy Finish() depends on: a
// coarser slicing's boundaries are a subset of a finer one's, so every fine
// slice (a fog) nests inside exactly one coarse slice (a shard).
TEST(PsShardSlicesTest, CoarserSlicingsNestFinerOnes) {
  const int64_t kParts[] = {1, 2, 3, 4, 7, 8, 32, 64};
  for (int64_t n : {1, 2, 3, 5, 37, 100, 1000}) {
    for (int64_t p : kParts) {
      const auto fine = CanonicalRangeSlices(n, p);
      for (int64_t q : kParts) {
        if (q > p) continue;
        const auto coarse = CanonicalRangeSlices(n, q);
        for (const auto& [lo, hi] : fine) {
          const int owner = SliceOf(coarse, lo);
          EXPECT_LE(coarse[static_cast<size_t>(owner)].first, lo);
          EXPECT_GE(coarse[static_cast<size_t>(owner)].second, hi)
              << "n=" << n << " fine=" << p << " coarse=" << q << " slice ["
              << lo << ", " << hi << ") straddles a coarse boundary";
        }
      }
    }
  }
}

// --- ResolvePsShards precedence and clamping ---

class PsShardResolveTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetPsShards(0);
    ThreadPool::SetGlobalThreads(1);
  }
};

TEST_F(PsShardResolveTest, RequestedWinsOverAuto) {
  SetPsShards(0);
  EXPECT_EQ(ResolvePsShards(3, 100), 3);
  EXPECT_EQ(ResolvePsShards(1, 100), 1);
}

TEST_F(PsShardResolveTest, AutoFollowsPoolLaneCount) {
  SetPsShards(0);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ResolvePsShards(0, 100), 1);
  ThreadPool::SetGlobalThreads(4);
  EXPECT_EQ(ResolvePsShards(0, 100), 4);
}

TEST_F(PsShardResolveTest, OverrideBeatsRequested) {
  SetPsShards(5);
  EXPECT_EQ(ResolvePsShards(2, 100), 5);
  SetPsShards(0);
  EXPECT_EQ(ResolvePsShards(2, 100), 2);
}

TEST_F(PsShardResolveTest, ClampsToSlotRange) {
  SetPsShards(0);
  EXPECT_EQ(ResolvePsShards(64, 5), 5);
  EXPECT_EQ(ResolvePsShards(64, 1), 1);
  EXPECT_EQ(ResolvePsShards(-3, 100), ResolvePsShards(0, 100));
  // A degenerate slot range still yields a usable count.
  EXPECT_EQ(ResolvePsShards(4, 0), 1);
}

// --- PsShardSet routing ---

TEST(PsShardSetTest, RoutingMatchesCanonicalSlices) {
  PsShardSet shards(37, 8);
  const auto slices = CanonicalRangeSlices(37, 8);
  ASSERT_EQ(shards.num_shards(), static_cast<int>(slices.size()));
  EXPECT_EQ(shards.num_slots(), 37);
  for (int s = 0; s < shards.num_shards(); ++s) {
    EXPECT_EQ(shards.shard_range(s), slices[static_cast<size_t>(s)]);
  }
  for (int64_t slot = 0; slot < 37; ++slot) {
    EXPECT_EQ(shards.shard_of(slot), SliceOf(slices, slot));
  }
}

TEST(PsShardSetTest, ShardCountClampsToSlots) {
  PsShardSet tiny(5, 100);
  EXPECT_EQ(tiny.num_shards(), 5);
  PsShardSet one(5, 0);
  EXPECT_EQ(one.num_shards(), 1);
  EXPECT_EQ(one.shard_range(0), std::make_pair(int64_t{0}, int64_t{5}));
}

// --- ParallelShardFold vs a serial canonical fold ---

// Per-slot contribution: a small tensor whose values depend on (slot, j) so
// any re-association shows up in the bits. Holes return an empty partial.
nn::TensorList SlotContribution(int64_t slot) {
  nn::Tensor t({16});
  for (int64_t j = 0; j < t.numel(); ++j) {
    t.at(j) = 0.001f * static_cast<float>((slot * 31 + j * 7) % 97) +
              1.0f / static_cast<float>(slot + 3);
  }
  nn::TensorList list;
  list.push_back(std::move(t));
  return list;
}

// The canonical fold over [lo, hi): exactly the association every tier pins.
ShardPartial CanonicalFold(int64_t lo, int64_t hi,
                           const std::vector<bool>& admitted) {
  if (hi - lo == 1) {
    ShardPartial p;
    if (admitted[static_cast<size_t>(lo)]) {
      p.sum = SlotContribution(lo);
      p.participants = 1;
    }
    return p;
  }
  const int64_t mid = CanonicalSplit(lo, hi);
  ShardPartial left = CanonicalFold(lo, mid, admitted);
  ShardPartial right = CanonicalFold(mid, hi, admitted);
  if (left.sum.empty()) {
    left.sum = std::move(right.sum);
  } else if (!right.sum.empty()) {
    nn::AxpyLists(left.sum, 1.0f, right.sum);
  }
  left.participants += right.participants;
  return left;
}

class ParallelShardFoldTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }
};

TEST_F(ParallelShardFoldTest, BitIdenticalAcrossShardAndThreadCounts) {
  const int64_t n = 37;
  // Dense, interior holes, and a fully-empty prefix region (its shards
  // return empty partials, which the top tree must pass through).
  std::vector<std::vector<bool>> patterns;
  patterns.emplace_back(n, true);
  {
    std::vector<bool> holes(static_cast<size_t>(n), true);
    holes[0] = holes[13] = holes[36] = false;
    patterns.push_back(holes);
  }
  {
    std::vector<bool> region(static_cast<size_t>(n), false);
    for (int64_t i = 32; i < n; ++i) region[static_cast<size_t>(i)] = true;
    patterns.push_back(region);
  }
  for (const auto& admitted : patterns) {
    const ShardPartial oracle = CanonicalFold(0, n, admitted);
    for (int threads : {1, 4}) {
      ThreadPool::SetGlobalThreads(threads);
      for (int S : {1, 2, 3, 8, 37}) {
        PsShardSet shards(static_cast<int>(n), S);
        ShardPartial got = ParallelShardFold(
            shards, [&](int, int64_t lo, int64_t hi) {
              return CanonicalFold(lo, hi, admitted);
            });
        EXPECT_EQ(got.participants, oracle.participants)
            << "S=" << S << " threads=" << threads;
        ASSERT_EQ(got.sum.size(), oracle.sum.size());
        for (size_t i = 0; i < got.sum.size(); ++i) {
          EXPECT_EQ(nn::MaxAbsDiff(got.sum[i], oracle.sum[i]), 0.0)
              << "S=" << S << " threads=" << threads;
        }
      }
    }
  }
}

TEST_F(ParallelShardFoldTest, AllHoleRangeYieldsEmptyPartial) {
  const std::vector<bool> none(16, false);
  for (int S : {1, 4}) {
    PsShardSet shards(16, S);
    ShardPartial got = ParallelShardFold(
        shards,
        [&](int, int64_t lo, int64_t hi) { return CanonicalFold(lo, hi, none); });
    EXPECT_TRUE(got.sum.empty()) << "S=" << S;
    EXPECT_EQ(got.participants, 0) << "S=" << S;
  }
}

// --- Sharded aggregators vs the serial AggregateSubModels oracle ---

// Same fixture idiom as hierarchy_test: many distinct sub-model updates over
// the tiny CNN so the fold order genuinely matters.
struct ShardFixture {
  data::FlTask task;
  nn::TensorList global;
  std::vector<pruning::SubModel> subs;

  explicit ShardFixture(int n)
      : task(data::MakeTaskByName("cnn", data::TaskScale::kTiny, 5)) {
    auto model = nn::BuildModelOrDie(task.model, 9);
    global = model->GetWeights();
    const double ratios[] = {0.2, 0.35, 0.5, 0.7};
    for (int i = 0; i < n; ++i) {
      auto sub = pruning::PruneByRatio(task.model, global, ratios[i % 4]);
      EXPECT_TRUE(sub.ok());
      subs.push_back(std::move(sub).value());
      for (auto& t : subs.back().weights) {
        for (int64_t j = 0; j < t.numel(); ++j) {
          t.at(j) += 0.0007f * static_cast<float>((j + i) % 11);
        }
      }
    }
  }
};

nn::TensorList FlatOracle(const ShardFixture& f,
                          const std::vector<bool>& admitted) {
  std::vector<SubModelUpdate> updates(f.subs.size());
  for (size_t i = 0; i < f.subs.size(); ++i) {
    if (admitted[i]) {
      updates[i] = SubModelUpdate{&f.subs[i].mask, &f.subs[i].weights};
    }
  }
  auto oracle = AggregateSubModels(f.task.model, f.global, updates,
                                   SyncScheme::kR2SP, /*quantize=*/false);
  EXPECT_TRUE(oracle.ok());
  return std::move(oracle).value();
}

// Drives a sharded hierarchical aggregator from `num_threads` producers
// feeding slots in a seeded shuffled order while the main thread races the
// decisions, then finishes on the current global pool (shard folds run on
// pool lanes when it has more than one).
nn::TensorList RunSharded(const ShardFixture& f,
                          const std::vector<bool>& admitted, int fan_out,
                          int ps_shards, int num_threads,
                          uint64_t shuffle_seed, int* participants_out) {
  const int n = static_cast<int>(f.subs.size());
  HierarchicalAggregator agg(f.task.model, f.global, n, SyncScheme::kR2SP,
                             /*quantize_residuals=*/false, fan_out, ps_shards);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(shuffle_seed);
  rng.Shuffle(order);

  std::vector<std::thread> producers;
  producers.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    producers.emplace_back([&, t] {
      for (int k = t; k < n; k += num_threads) {
        const int slot = order[static_cast<size_t>(k)];
        if (admitted[static_cast<size_t>(slot)]) {
          agg.Accumulate(slot, f.subs[static_cast<size_t>(slot)].weights,
                         f.subs[static_cast<size_t>(slot)].mask);
        } else {
          agg.MarkUnavailable(slot);
        }
      }
    });
  }
  for (int slot = 0; slot < n; ++slot) {
    if (admitted[static_cast<size_t>(slot)]) {
      agg.Admit(slot);
    } else {
      agg.Reject(slot);
    }
  }
  for (auto& t : producers) t.join();

  StreamingAggregator::Result result = agg.Finish();
  *participants_out = result.participants;
  nn::ScaleLists(result.sum, 1.0f / static_cast<float>(result.participants));
  return std::move(result.sum);
}

void ExpectListsBitIdentical(const nn::TensorList& got,
                             const nn::TensorList& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].SameShape(want[i]));
    EXPECT_EQ(nn::MaxAbsDiff(got[i], want[i]), 0.0) << "tensor " << i;
  }
}

class PsShardAggregatorTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetPsShards(0);
    ThreadPool::SetGlobalThreads(1);
  }
};

// The acceptance grid: shards {1, 2, 8} x fan-out {1, 32} x producer
// threads {1, 4} x shuffled arrivals, against the serial flat oracle, over
// a dense round and one with holes. Pool lanes stay at 4 so multi-shard
// Finish() folds genuinely run concurrently.
TEST_F(PsShardAggregatorTest, BitIdenticalToFlatAcrossShardGrid) {
  const int n = 37;
  ShardFixture f(n);
  ThreadPool::SetGlobalThreads(4);

  std::vector<std::vector<bool>> patterns;
  patterns.emplace_back(n, true);
  {
    std::vector<bool> holes(static_cast<size_t>(n), true);
    holes[2] = holes[16] = holes[31] = false;
    patterns.push_back(holes);
  }
  uint64_t combo = 0;
  for (const auto& admitted : patterns) {
    const nn::TensorList oracle = FlatOracle(f, admitted);
    const int want_participants = static_cast<int>(
        std::count(admitted.begin(), admitted.end(), true));
    for (int shards : {1, 2, 8}) {
      for (int fan_out : {1, 32}) {
        for (int threads : {1, 4}) {
          int participants = 0;
          const nn::TensorList got =
              RunSharded(f, admitted, fan_out, shards, threads,
                         /*shuffle_seed=*/0x54A6D + combo++, &participants);
          EXPECT_EQ(participants, want_participants)
              << "shards=" << shards << " fan_out=" << fan_out
              << " threads=" << threads;
          SCOPED_TRACE(::testing::Message()
                       << "shards=" << shards << " fan_out=" << fan_out
                       << " threads=" << threads);
          ExpectListsBitIdentical(got, oracle);
        }
      }
    }
  }
}

// A whole fog region down must survive sharding: the empty fog partials
// pass through shard folds and the top tree alike.
TEST_F(PsShardAggregatorTest, RegionDownBitIdenticalUnderShards) {
  const int n = 37;
  ShardFixture f(n);
  ThreadPool::SetGlobalThreads(4);
  std::vector<bool> region(static_cast<size_t>(n), true);
  for (int i = 8; i < 16; ++i) region[static_cast<size_t>(i)] = false;
  const nn::TensorList oracle = FlatOracle(f, region);
  for (int shards : {2, 8}) {
    int participants = 0;
    const nn::TensorList got = RunSharded(f, region, /*fan_out=*/32, shards,
                                          /*threads=*/4, 0xD0,
                                          &participants);
    EXPECT_EQ(participants, n - 8);
    SCOPED_TRACE(::testing::Message() << "shards=" << shards);
    ExpectListsBitIdentical(got, oracle);
  }
}

// The env-style override path: SetPsShards forces the count every aggregator
// resolves, the kill-switch contract (FEDMP_PS_SHARDS=1 must reproduce the
// unsharded path bit-for-bit).
TEST_F(PsShardAggregatorTest, ForcedShardCountStaysBitIdentical) {
  const int n = 21;
  ShardFixture f(n);
  ThreadPool::SetGlobalThreads(4);
  const std::vector<bool> all(static_cast<size_t>(n), true);
  const nn::TensorList oracle = FlatOracle(f, all);
  for (int forced : {1, 4}) {
    SetPsShards(forced);
    int participants = 0;
    const nn::TensorList got = RunSharded(f, all, /*fan_out=*/4,
                                          /*ps_shards=*/0, /*threads=*/4,
                                          0xF0 + static_cast<uint64_t>(forced),
                                          &participants);
    EXPECT_EQ(participants, n);
    SCOPED_TRACE(::testing::Message() << "forced=" << forced);
    ExpectListsBitIdentical(got, oracle);
  }
}

// TSAN stress: concurrent producers feed per-shard accumulation while the
// driver races decisions, immediately followed by multi-lane shard folds —
// the full lock hand-off (producer release -> Finish acquire) under racing
// late arrivals, repeated across seeds.
TEST_F(PsShardAggregatorTest, ConcurrentFoldsRaceLateArrivals) {
  const int n = 64;
  ShardFixture f(n);
  ThreadPool::SetGlobalThreads(4);
  std::vector<bool> admitted(static_cast<size_t>(n), true);
  admitted[7] = admitted[40] = false;
  const nn::TensorList oracle = FlatOracle(f, admitted);
  for (uint64_t seed = 0; seed < 3; ++seed) {
    int participants = 0;
    const nn::TensorList got =
        RunSharded(f, admitted, /*fan_out=*/32, /*ps_shards=*/8,
                   /*threads=*/4, 0xACE0 + seed, &participants);
    EXPECT_EQ(participants, n - 2);
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    ExpectListsBitIdentical(got, oracle);
  }
}

}  // namespace
}  // namespace fedmp::fl
