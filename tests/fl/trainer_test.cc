#include "fl/trainer.h"

#include <gtest/gtest.h>

#include "fl/strategies/fedmp_strategy.h"
#include "fl/strategies/syn_fl.h"

namespace fedmp::fl {
namespace {

TrainerOptions FastOptions() {
  TrainerOptions opt;
  opt.max_rounds = 8;
  opt.eval_every = 2;
  opt.eval_batch_size = 16;
  opt.seed = 3;
  return opt;
}

std::vector<edge::DeviceProfile> SmallFleet() {
  return edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium,
                                        5);
}

data::FlTask TinyTask() {
  return data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
}

TEST(TrainerTest, RunsAndLogsEveryRound) {
  const data::FlTask task = TinyTask();
  const RoundLog log = RunFederated(task, SmallFleet(),
                                    std::make_unique<SynFlStrategy>(),
                                    FastOptions());
  EXPECT_EQ(log.records().size(), 8u);
  double prev = 0.0;
  for (const auto& r : log.records()) {
    EXPECT_GT(r.sim_time, prev);  // clock strictly advances
    prev = r.sim_time;
    EXPECT_GE(r.participants, 1);
    EXPECT_LE(r.participants, 10);
  }
  // Evaluations on the configured cadence plus the final round.
  EXPECT_GE(log.FinalAccuracy(), 0.0);
}

TEST(TrainerTest, SynFlAccuracyImprovesOverTraining) {
  const data::FlTask task = TinyTask();
  TrainerOptions opt = FastOptions();
  opt.max_rounds = 25;
  const RoundLog log = RunFederated(task, SmallFleet(),
                                    std::make_unique<SynFlStrategy>(), opt);
  const double first = log.records().front().test_accuracy;
  EXPECT_GT(log.FinalAccuracy(), first + 0.1);
}

TEST(TrainerTest, FedMpPrunesAndStillLearns) {
  const data::FlTask task = TinyTask();
  TrainerOptions opt = FastOptions();
  opt.max_rounds = 25;
  const RoundLog log = RunFederated(
      task, SmallFleet(), std::make_unique<FedMpStrategy>(), opt);
  double mean_ratio = 0.0;
  for (const auto& r : log.records()) mean_ratio += r.mean_ratio;
  mean_ratio /= static_cast<double>(log.records().size());
  EXPECT_GT(mean_ratio, 0.0) << "FedMP must actually prune";
  EXPECT_GT(log.FinalAccuracy(), 0.4);
  // PS-side decision overhead is measured and small but nonzero.
  EXPECT_GT(log.MeanDecisionOverheadMs(), 0.0);
}

TEST(TrainerTest, DeterministicGivenSeed) {
  const data::FlTask task = TinyTask();
  const RoundLog a = RunFederated(task, SmallFleet(),
                                  std::make_unique<FedMpStrategy>(),
                                  FastOptions());
  const RoundLog b = RunFederated(task, SmallFleet(),
                                  std::make_unique<FedMpStrategy>(),
                                  FastOptions());
  ASSERT_EQ(a.records().size(), b.records().size());
  for (size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records()[i].sim_time, b.records()[i].sim_time);
    EXPECT_DOUBLE_EQ(a.records()[i].test_accuracy,
                     b.records()[i].test_accuracy);
    EXPECT_DOUBLE_EQ(a.records()[i].mean_ratio, b.records()[i].mean_ratio);
  }
}

TEST(TrainerTest, TimeBudgetStopsEarly) {
  const data::FlTask task = TinyTask();
  TrainerOptions opt = FastOptions();
  opt.max_rounds = 1000;
  opt.time_budget_seconds = 10.0;
  const RoundLog log = RunFederated(task, SmallFleet(),
                                    std::make_unique<SynFlStrategy>(), opt);
  EXPECT_LT(log.records().size(), 1000u);
  // Last round may overshoot the budget, but not by more than one round.
  EXPECT_LT(log.records()[log.records().size() - 2].sim_time, 10.0);
}

TEST(TrainerTest, TargetAccuracyStopsEarly) {
  const data::FlTask task = TinyTask();
  TrainerOptions opt = FastOptions();
  opt.max_rounds = 200;
  opt.stop_at_accuracy = 0.5;
  const RoundLog log = RunFederated(task, SmallFleet(),
                                    std::make_unique<SynFlStrategy>(), opt);
  EXPECT_LT(log.records().size(), 200u);
  EXPECT_GE(log.FinalAccuracy(), 0.5);
}

TEST(TrainerTest, SurvivesCrashInjection) {
  const data::FlTask task = TinyTask();
  TrainerOptions opt = FastOptions();
  opt.crash_prob = 0.1;
  opt.max_rounds = 10;
  const RoundLog log = RunFederated(task, SmallFleet(),
                                    std::make_unique<SynFlStrategy>(), opt);
  EXPECT_EQ(log.records().size(), 10u);
  int64_t min_participants = 10;
  for (const auto& r : log.records()) {
    min_participants = std::min(min_participants, r.participants);
  }
  EXPECT_LT(min_participants, 10) << "some round should have seen a crash";
}

TEST(TrainerTest, LanguageModelTaskTrains) {
  const data::FlTask task = data::MakeLstmPtbTask(data::TaskScale::kTiny, 5);
  TrainerOptions opt = FastOptions();
  opt.max_rounds = 15;
  const RoundLog log = RunFederated(task, SmallFleet(),
                                    std::make_unique<SynFlStrategy>(), opt);
  // Perplexity must drop below the uniform baseline (== vocab size).
  double best = 1e18;
  for (const auto& r : log.records()) {
    if (r.test_perplexity > 0) best = std::min(best, r.test_perplexity);
  }
  EXPECT_LT(best, static_cast<double>(task.model.num_classes));
}

TEST(TrainerDeathTest, MismatchedPartitionAborts) {
  const data::FlTask task = TinyTask();
  auto fleet = SmallFleet();
  data::Partition partition(3);  // 3 shards for 10 devices
  EXPECT_DEATH(Trainer(&task, fleet, partition,
                       std::make_unique<SynFlStrategy>(), FastOptions()),
               "one shard per device");
}

}  // namespace
}  // namespace fedmp::fl
