// The hot-path optimizations (workspace pool, prune-plan cache, worker
// model reuse, fast matmul kernels) must be invisible in results: a full
// federated run with all of them enabled must be bit-identical to the
// baseline with all of them disabled, at any thread count, for both
// trainers. The disabled run takes
// the fresh-build path in Worker::LocalTrain, so equality here is also the
// regression test that the cached path consumes the same rng_ draws.

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "fl/async_trainer.h"
#include "fl/pipeline.h"
#include "fl/strategies/fedmp_strategy.h"
#include "fl/trainer.h"
#include "nn/tensor_ops.h"
#include "nn/workspace.h"
#include "obs/metrics.h"
#include "pruning/prune_cache.h"

namespace fedmp::fl {
namespace {

struct RunResult {
  nn::TensorList weights;
  RoundLog log;
};

void SetHotPathEnabled(bool on) {
  nn::ws::SetEnabled(on);
  nn::SetFastKernelsEnabled(on);
  pruning::SetPlanCacheEnabled(on);
  SetModelReuseEnabled(on);
  pruning::ClearPlanCache();
}

RunResult RunSync(int num_threads) {
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 5);
  TrainerOptions opt;
  opt.max_rounds = 4;
  opt.eval_every = 2;
  opt.eval_batch_size = 16;
  opt.seed = 3;
  opt.num_threads = num_threads;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  Trainer trainer(&task, fleet, std::move(partition),
                  std::make_unique<FedMpStrategy>(), opt);
  RunResult out;
  out.log = trainer.Run();
  out.weights = trainer.server().weights();
  return out;
}

RunResult RunAsync(int num_threads) {
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 5);
  AsyncTrainerOptions opt;
  opt.base.max_rounds = 4;
  opt.base.eval_every = 2;
  opt.base.eval_batch_size = 16;
  opt.base.seed = 3;
  opt.base.num_threads = num_threads;
  opt.m = 2;
  Rng rng(opt.base.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  AsyncTrainer trainer(&task, fleet, std::move(partition),
                       std::make_unique<FedMpStrategy>(), opt);
  RunResult out;
  out.log = trainer.Run();
  out.weights = trainer.server().weights();
  return out;
}

void ExpectIdentical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    ASSERT_TRUE(a.weights[i].SameShape(b.weights[i]));
    EXPECT_EQ(nn::MaxAbsDiff(a.weights[i], b.weights[i]), 0.0)
        << "global weight tensor " << i << " diverged";
  }
  ASSERT_EQ(a.log.records().size(), b.log.records().size());
  for (size_t i = 0; i < a.log.records().size(); ++i) {
    const auto& ra = a.log.records()[i];
    const auto& rb = b.log.records()[i];
    EXPECT_EQ(ra.train_loss, rb.train_loss) << "round " << ra.round;
    EXPECT_EQ(ra.test_loss, rb.test_loss) << "round " << ra.round;
    EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << "round " << ra.round;
    EXPECT_EQ(ra.mean_ratio, rb.mean_ratio) << "round " << ra.round;
    EXPECT_EQ(ra.sim_time, rb.sim_time) << "round " << ra.round;
  }
}

class HotPathCacheTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetHotPathEnabled(true);
    ThreadPool::SetGlobalThreads(1);
  }
};

TEST_F(HotPathCacheTest, SyncTrainerBitIdenticalWithAndWithoutCaches) {
  SetHotPathEnabled(false);
  const RunResult baseline = RunSync(1);
  SetHotPathEnabled(true);
  const RunResult optimized_serial = RunSync(1);
  const RunResult optimized_parallel = RunSync(4);
  ExpectIdentical(baseline, optimized_serial);
  ExpectIdentical(baseline, optimized_parallel);
}

TEST_F(HotPathCacheTest, AsyncTrainerBitIdenticalWithAndWithoutCaches) {
  SetHotPathEnabled(false);
  const RunResult baseline = RunAsync(1);
  SetHotPathEnabled(true);
  const RunResult optimized_serial = RunAsync(1);
  const RunResult optimized_parallel = RunAsync(4);
  ExpectIdentical(baseline, optimized_serial);
  ExpectIdentical(baseline, optimized_parallel);
}

double MetricValue(const char* name) {
  for (const obs::MetricSnapshot& snap : obs::Registry::Get().Snapshot()) {
    if (snap.name == name) return snap.value;
  }
  return 0.0;
}

// Regression pin for model-reuse cache effectiveness: executed pruning
// ratios snap to the theta grid (FedMpOptions::ratio_quantum), cache keying
// ignores the spec's display name, and the cache is shared per execution
// lane rather than per worker, so a fixed cold-start 10-round run must land
// a deterministic, non-trivial number of cache hits. History of this pin:
// 2/38 before ratio snapping (continuous ratios defeated keying), 66/100
// with per-worker caches (every worker re-built the same few architectures
// — the cold-start hit-rate regression BENCH_pr5.json surfaced), 96/100
// with the lane-shared cache (misses = distinct architectures, not
// workers x architectures). Runs under the pipelined engine explicitly —
// the configuration the benches gate — with a cold cache so earlier tests
// in the process cannot skew the counts.
TEST_F(HotPathCacheTest, ModelCacheHitCountIsPinnedForFixedRun) {
  obs::SetEnabled(true);
  SetPipelineEnabled(true);
  ClearModelCache();
  const double hits0 = MetricValue("fl.worker.model_cache.hits");
  const double misses0 = MetricValue("fl.worker.model_cache.misses");

  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 5);
  TrainerOptions opt;
  opt.max_rounds = 10;
  opt.eval_every = 5;
  opt.eval_batch_size = 16;
  opt.seed = 3;
  opt.num_threads = 1;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  Trainer trainer(&task, fleet, std::move(partition),
                  std::make_unique<FedMpStrategy>(), opt);
  trainer.Run();

  const double hits = MetricValue("fl.worker.model_cache.hits") - hits0;
  const double misses = MetricValue("fl.worker.model_cache.misses") - misses0;
  // 10 rounds x 10 workers = 100 lookups, every one counted.
  EXPECT_EQ(hits + misses, 100.0);
  // Deterministic for the fixed seed/config at one lane: update this pin
  // deliberately if the bandit, snapping grid, or cache policy changes.
  EXPECT_EQ(hits, 96.0);
  const double rate = MetricValue("fl.worker.model_cache.hit_rate");
  EXPECT_GT(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  obs::SetEnabled(false);
}

}  // namespace
}  // namespace fedmp::fl
