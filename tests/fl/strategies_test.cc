#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "fl/strategies/fedmp_strategy.h"
#include "fl/strategies/fedprox.h"
#include "fl/strategies/flexcom.h"
#include "fl/strategies/syn_fl.h"
#include "fl/strategies/up_fl.h"

namespace fedmp::fl {
namespace {

RoundObservation MakeObservation(std::vector<double> times,
                                 std::vector<double> deltas) {
  RoundObservation obs;
  obs.completion_times = times;
  obs.comp_times = times;
  obs.comm_times = std::vector<double>(times.size(), 0.1);
  obs.delta_losses = std::move(deltas);
  obs.participated = std::vector<bool>(times.size(), true);
  obs.round_time =
      *std::max_element(times.begin(), times.end());
  obs.global_delta_loss = 0.1;
  return obs;
}

TEST(SynFlTest, NeverPrunes) {
  SynFlStrategy strategy;
  strategy.Initialize(4, 1);
  std::vector<WorkerRoundPlan> plans(4);
  for (int round = 0; round < 10; ++round) {
    strategy.PlanRound(round, &plans);
    for (const auto& plan : plans) {
      EXPECT_EQ(plan.pruning_ratio, 0.0);
      EXPECT_EQ(plan.compress_ratio, 0.0);
      EXPECT_EQ(plan.tau, 0);
    }
    strategy.ObserveRound(round, MakeObservation({1, 2, 3, 4}, {1, 1, 1, 1}));
  }
}

TEST(UpFlTest, UniformRatioAcrossWorkers) {
  UpFlStrategy strategy;
  strategy.Initialize(5, 1);
  std::vector<WorkerRoundPlan> plans(5);
  for (int round = 0; round < 15; ++round) {
    strategy.PlanRound(round, &plans);
    for (const auto& plan : plans) {
      EXPECT_EQ(plan.pruning_ratio, plans[0].pruning_ratio);
    }
    strategy.ObserveRound(round,
                          MakeObservation({1, 1, 1, 1, 1}, {1, 1, 1, 1, 1}));
  }
}

TEST(UpFlTest, RatiosComeFromGrid) {
  UpFlOptions options;
  options.ratio_grid = {0.0, 0.3, 0.6};
  UpFlStrategy strategy(options);
  strategy.Initialize(2, 1);
  std::vector<WorkerRoundPlan> plans(2);
  for (int round = 0; round < 10; ++round) {
    strategy.PlanRound(round, &plans);
    const double r = plans[0].pruning_ratio;
    EXPECT_TRUE(r == 0.0 || r == 0.3 || r == 0.6) << r;
    strategy.ObserveRound(round, MakeObservation({1, 1}, {1, 1}));
  }
}

TEST(FedProxTest, SlowWorkersGetFewerIterations) {
  FedProxOptions options;
  options.base_tau = 4;
  options.max_tau = 4;
  FedProxStrategy strategy(options);
  strategy.Initialize(3, 1);
  std::vector<WorkerRoundPlan> plans(3);
  strategy.PlanRound(0, &plans);
  for (const auto& plan : plans) {
    EXPECT_EQ(plan.tau, 4);  // no knowledge yet
    EXPECT_GT(plan.proximal_mu, 0.0);
  }
  // Worker 2 is 4x slower in compute.
  for (int round = 0; round < 6; ++round) {
    RoundObservation obs = MakeObservation({1.0, 1.0, 4.0}, {1, 1, 1});
    // comp_times drive the adaptation; scale by current taus.
    for (int n = 0; n < 3; ++n) {
      obs.comp_times[static_cast<size_t>(n)] =
          (n == 2 ? 4.0 : 1.0) *
          static_cast<double>(plans[static_cast<size_t>(n)].tau) / 4.0;
    }
    strategy.ObserveRound(round, obs);
    strategy.PlanRound(round + 1, &plans);
  }
  EXPECT_LT(plans[2].tau, plans[0].tau);
  EXPECT_GE(plans[2].tau, 1);
  EXPECT_LE(plans[0].tau, 4);  // fast workers never exceed base
}

TEST(FlexComTest, SlowLinksGetMoreCompression) {
  FlexComStrategy strategy;
  strategy.Initialize(3, 1);
  std::vector<WorkerRoundPlan> plans(3);
  strategy.PlanRound(0, &plans);
  for (const auto& plan : plans) EXPECT_EQ(plan.compress_ratio, 0.0);
  // Full (uncompressed) comm times 1 / 2 / 8; the observed times shrink
  // as compression is applied, exactly as the simulator would report.
  const double full_comm[3] = {1.0, 2.0, 8.0};
  for (int round = 0; round < 6; ++round) {
    RoundObservation obs = MakeObservation({1, 1, 1}, {1, 1, 1});
    for (int n = 0; n < 3; ++n) {
      obs.comm_times[static_cast<size_t>(n)] =
          full_comm[n] *
          (1.0 - plans[static_cast<size_t>(n)].compress_ratio);
    }
    strategy.ObserveRound(round, obs);
    strategy.PlanRound(round + 1, &plans);
  }
  EXPECT_GT(plans[2].compress_ratio, plans[1].compress_ratio);
  EXPECT_GT(plans[1].compress_ratio, plans[0].compress_ratio - 1e-9);
  EXPECT_LE(plans[2].compress_ratio, 0.9);
}

TEST(FedMpTest, PerWorkerRatiosIndependent) {
  FedMpStrategy strategy;
  strategy.Initialize(3, 1);
  std::vector<WorkerRoundPlan> plans(3);
  bool saw_difference = false;
  for (int round = 0; round < 10; ++round) {
    strategy.PlanRound(round, &plans);
    if (plans[0].pruning_ratio != plans[1].pruning_ratio) {
      saw_difference = true;
    }
    strategy.ObserveRound(round, MakeObservation({1, 2, 3}, {1, 1, 1}));
  }
  EXPECT_TRUE(saw_difference);
}

TEST(FedMpTest, CrashedWorkerGetsZeroRewardNotACrash) {
  FedMpStrategy strategy;
  strategy.Initialize(2, 1);
  std::vector<WorkerRoundPlan> plans(2);
  strategy.PlanRound(0, &plans);
  RoundObservation obs = MakeObservation({1.0, 1.0}, {1, 1});
  obs.completion_times[1] = std::numeric_limits<double>::infinity();
  strategy.ObserveRound(0, obs);  // must not abort
  strategy.PlanRound(1, &plans);  // agents stay in sync
}

TEST(FedMpTest, AsyncInterfaceSupported) {
  FedMpStrategy strategy;
  strategy.Initialize(2, 1);
  EXPECT_TRUE(strategy.SupportsAsync());
  const WorkerRoundPlan plan = strategy.PlanWorker(0, 1);
  EXPECT_GE(plan.pruning_ratio, 0.0);
  strategy.ObserveWorker(0, 1, 2.0, 2.5, 0.1);
}

TEST(FedMpTest, SyncSchemeConfigurable) {
  FedMpOptions options;
  options.sync = SyncScheme::kBSP;
  FedMpStrategy strategy(options);
  EXPECT_EQ(strategy.sync_scheme(), SyncScheme::kBSP);
  EXPECT_EQ(strategy.Name(), "FedMP-BSP");
}

TEST(FixedRatioTest, ConstantPlans) {
  FixedRatioStrategy strategy(0.35);
  strategy.Initialize(2, 1);
  std::vector<WorkerRoundPlan> plans(2);
  strategy.PlanRound(0, &plans);
  EXPECT_EQ(plans[0].pruning_ratio, 0.35);
  EXPECT_EQ(plans[1].pruning_ratio, 0.35);
}

TEST(StrategyDeathTest, SyncOnlyStrategiesRejectAsyncUse) {
  UpFlStrategy strategy;
  strategy.Initialize(2, 1);
  EXPECT_FALSE(strategy.SupportsAsync());
  EXPECT_DEATH(strategy.PlanWorker(0, 0), "asynchronous");
}

}  // namespace
}  // namespace fedmp::fl
