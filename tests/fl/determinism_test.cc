// Regression test for the determinism contract of the parallel execution
// engine (DESIGN.md "Threading model"): the same seed must produce
// bit-identical global weights and round logs at any thread count.

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "fl/async_trainer.h"
#include "fl/strategies/fedmp_strategy.h"
#include "fl/trainer.h"
#include "nn/tensor_ops.h"

namespace fedmp::fl {
namespace {

struct RunResult {
  nn::TensorList weights;
  RoundLog log;
};

RunResult RunSyncWithThreads(int num_threads) {
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 5);
  TrainerOptions opt;
  opt.max_rounds = 4;
  opt.eval_every = 2;
  opt.eval_batch_size = 16;
  opt.seed = 3;
  opt.num_threads = num_threads;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  Trainer trainer(&task, fleet, std::move(partition),
                  std::make_unique<FedMpStrategy>(), opt);
  RunResult out;
  out.log = trainer.Run();
  out.weights = trainer.server().weights();
  return out;
}

RunResult RunAsyncWithThreads(int num_threads) {
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 5);
  AsyncTrainerOptions opt;
  opt.base.max_rounds = 4;
  opt.base.eval_every = 2;
  opt.base.eval_batch_size = 16;
  opt.base.seed = 3;
  opt.base.num_threads = num_threads;
  opt.m = 2;
  Rng rng(opt.base.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  AsyncTrainer trainer(&task, fleet, std::move(partition),
                       std::make_unique<FedMpStrategy>(), opt);
  RunResult out;
  out.log = trainer.Run();
  out.weights = trainer.server().weights();
  return out;
}

void ExpectIdentical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    ASSERT_TRUE(a.weights[i].SameShape(b.weights[i]));
    EXPECT_EQ(nn::MaxAbsDiff(a.weights[i], b.weights[i]), 0.0)
        << "global weight tensor " << i << " diverged";
  }
  ASSERT_EQ(a.log.records().size(), b.log.records().size());
  for (size_t i = 0; i < a.log.records().size(); ++i) {
    const auto& ra = a.log.records()[i];
    const auto& rb = b.log.records()[i];
    EXPECT_EQ(ra.train_loss, rb.train_loss) << "round " << ra.round;
    EXPECT_EQ(ra.test_loss, rb.test_loss) << "round " << ra.round;
    EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << "round " << ra.round;
    EXPECT_EQ(ra.mean_ratio, rb.mean_ratio) << "round " << ra.round;
    EXPECT_EQ(ra.sim_time, rb.sim_time) << "round " << ra.round;
  }
}

TEST(DeterminismTest, SyncTrainerBitIdenticalAtOneAndFourThreads) {
  const RunResult serial = RunSyncWithThreads(1);
  const RunResult parallel = RunSyncWithThreads(4);
  ExpectIdentical(serial, parallel);
  ThreadPool::SetGlobalThreads(1);
}

TEST(DeterminismTest, AsyncTrainerBitIdenticalAtOneAndFourThreads) {
  const RunResult serial = RunAsyncWithThreads(1);
  const RunResult parallel = RunAsyncWithThreads(4);
  ExpectIdentical(serial, parallel);
  ThreadPool::SetGlobalThreads(1);
}

}  // namespace
}  // namespace fedmp::fl
