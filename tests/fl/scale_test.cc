// Bounded-memory scale-out: a 10k-worker round must complete with peak RSS
// growth far below the naive O(fleet x model) materialization. The scale
// task's model is ~34 KB of weights, so 10k workers each holding a sub-model
// plus an upload would need ~0.7 GB; the windowed pipelined engine with fog
// aggregation keeps the live set at O(max_inflight x model + fog partials).
// This test runs as its own process (gtest_discover_tests launches one
// process per TEST), so the VmHWM delta it measures is its own.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>

#include "common/mem_info.h"
#include "common/thread_pool.h"
#include "data/task_zoo.h"
#include "fl/pipeline.h"
#include "fl/strategies/fedmp_strategy.h"
#include "fl/trainer.h"
#include "obs/metrics.h"
#include "obs/sampling.h"
#include "obs/trace.h"

namespace fedmp::fl {
namespace {

constexpr int kWorkers = 10000;
// Naive per-worker materialization would be ~0.7 GB (see header comment);
// the bounded engine must stay an order of magnitude under that. The
// ceiling leaves headroom for the dataset, the partition, per-lane model
// caches, and allocator slack — it is a regression tripwire, not a tight
// bound.
constexpr int64_t kRssCeilingBytes = 200LL * 1024 * 1024;

TEST(ScaleTest, TenThousandWorkerRoundStaysUnderRssCeiling) {
  obs::SetEnabled(true);
  obs::Registry::Get().Reset();
  SetPipelineEnabled(true);

  const data::FlTask task = data::MakeScaleCnnTask(kWorkers, /*seed=*/7);
  const auto fleet = edge::MakeHalfAHalfB(kWorkers, /*seed=*/7);
  TrainerOptions opt;
  opt.max_rounds = 1;
  opt.eval_every = 100;  // no eval: the axis under test is round memory
  opt.seed = 7;
  opt.num_threads = 4;
  opt.deadline.enabled = false;  // everyone arrives: worst-case live set
  opt.scale.fog_fan_out = 32;
  opt.scale.max_inflight = 64;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);

  // Baseline AFTER task + fleet + partition construction: the delta below
  // is what the round itself adds.
  const int64_t rss_before = PeakRssBytes();
  ASSERT_GT(rss_before, 0);

  Trainer trainer(&task, fleet, std::move(partition),
                  std::make_unique<FedMpStrategy>(), opt);
  RoundLog log = trainer.Run();

  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].participants, kWorkers);

  const int64_t rss_after = PeakRssBytes();
  const int64_t delta = rss_after - rss_before;
  EXPECT_LE(delta, kRssCeilingBytes)
      << "10k-worker round grew peak RSS by " << (delta >> 20)
      << " MiB (ceiling " << (kRssCeilingBytes >> 20)
      << " MiB) — the bounded-memory scale path has regressed";

  // The trainer publishes its own view of peak RSS for bench/gate dumps.
  bool gauge_seen = false;
  for (const auto& m : obs::Registry::Get().Snapshot()) {
    if (m.name == "fl.scale.peak_rss_bytes") {
      gauge_seen = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kGauge);
      EXPECT_GE(m.value, static_cast<double>(rss_before));
    }
  }
  EXPECT_TRUE(gauge_seen) << "fl.scale.peak_rss_bytes gauge was not set";

  obs::SetEnabled(false);
  ThreadPool::SetGlobalThreads(1);
}

// The multiplexing knobs must not change results even at fleet sizes where
// running the unbounded engine is still cheap: 256 workers, windowed+fog vs
// flat unbounded, same bits. (The 10k test above cannot afford the flat
// reference run — that is the point of the feature.)
TEST(ScaleTest, WindowedFogRunMatchesUnboundedFlatRunBitForBit) {
  SetPipelineEnabled(true);
  const int workers = 256;
  auto run = [&](int fog_fan_out, int max_inflight, int num_threads) {
    const data::FlTask task = data::MakeScaleCnnTask(workers, /*seed=*/11);
    const auto fleet = edge::MakeHalfAHalfB(workers, /*seed=*/11);
    TrainerOptions opt;
    opt.max_rounds = 2;
    opt.eval_every = 100;
    opt.seed = 11;
    opt.num_threads = num_threads;
    opt.deadline.enabled = false;
    opt.scale.fog_fan_out = fog_fan_out;
    opt.scale.max_inflight = max_inflight;
    Rng rng(opt.seed ^ 0xBEEFULL);
    data::Partition partition = data::PartitionIid(
        task.train.size(), static_cast<int64_t>(fleet.size()), rng);
    Trainer trainer(&task, fleet, std::move(partition),
                    std::make_unique<FedMpStrategy>(), opt);
    RoundLog log = trainer.Run();
    return std::make_pair(trainer.server().weights(), std::move(log));
  };

  const auto [flat_weights, flat_log] = run(1, 0, 1);
  const auto [fog_weights, fog_log] = run(32, 16, 4);

  ASSERT_EQ(flat_weights.size(), fog_weights.size());
  for (size_t i = 0; i < flat_weights.size(); ++i) {
    ASSERT_TRUE(flat_weights[i].SameShape(fog_weights[i]));
    EXPECT_EQ(nn::MaxAbsDiff(flat_weights[i], fog_weights[i]), 0.0)
        << "global weight tensor " << i << " diverged";
  }
  ASSERT_EQ(flat_log.records().size(), fog_log.records().size());
  for (size_t i = 0; i < flat_log.records().size(); ++i) {
    EXPECT_EQ(flat_log.records()[i].train_loss,
              fog_log.records()[i].train_loss);
    EXPECT_EQ(flat_log.records()[i].participants,
              fog_log.records()[i].participants);
    EXPECT_EQ(flat_log.records()[i].sim_time, fog_log.records()[i].sim_time);
  }
  ThreadPool::SetGlobalThreads(1);
}

// Full-run bit-identity over the STREAMING partition view across PS shard
// counts and thread counts: the 100k configuration (lazy shards + sharded
// locks + parallel shard folds) must land on the same bits as the serial
// single-shard run over the same view. (The view itself is not
// bit-compatible with the eager-Partition path — per-round loaders draw a
// different rng stream — so the reference here is shards=1/threads=1 over
// the identical view.)
TEST(ScaleTest, StreamingViewShardedRunsBitIdentical) {
  SetPipelineEnabled(true);
  const int workers = 256;
  auto run = [&](int ps_shards, int num_threads) {
    const data::FlTask task = data::MakeScaleCnnTask(workers, /*seed=*/13);
    const auto fleet = edge::MakeHalfAHalfB(workers, /*seed=*/13);
    TrainerOptions opt;
    opt.max_rounds = 2;
    opt.eval_every = 100;
    opt.seed = 13;
    opt.num_threads = num_threads;
    opt.deadline.enabled = false;
    opt.scale.fog_fan_out = 32;
    opt.scale.max_inflight = 16;
    opt.scale.ps_shards = ps_shards;
    auto view = std::make_shared<const data::StreamingIidPartition>(
        task.train.size(), static_cast<int64_t>(fleet.size()),
        opt.seed ^ 0xBEEFULL);
    Trainer trainer(&task, fleet, std::move(view),
                    std::make_unique<FedMpStrategy>(), opt);
    RoundLog log = trainer.Run();
    return std::make_pair(trainer.server().weights(), std::move(log));
  };

  const auto [serial_weights, serial_log] = run(/*ps_shards=*/1, 1);
  const auto [sharded_weights, sharded_log] = run(/*ps_shards=*/4, 4);

  ASSERT_EQ(serial_weights.size(), sharded_weights.size());
  for (size_t i = 0; i < serial_weights.size(); ++i) {
    ASSERT_TRUE(serial_weights[i].SameShape(sharded_weights[i]));
    EXPECT_EQ(nn::MaxAbsDiff(serial_weights[i], sharded_weights[i]), 0.0)
        << "global weight tensor " << i << " diverged";
  }
  ASSERT_EQ(serial_log.records().size(), sharded_log.records().size());
  for (size_t i = 0; i < serial_log.records().size(); ++i) {
    EXPECT_EQ(serial_log.records()[i].train_loss,
              sharded_log.records()[i].train_loss);
    EXPECT_EQ(serial_log.records()[i].participants,
              sharded_log.records()[i].participants);
    EXPECT_EQ(serial_log.records()[i].sim_time,
              sharded_log.records()[i].sim_time);
  }
  ThreadPool::SetGlobalThreads(1);
}

// Trace sampling thins per-worker EMISSION only — the resource ledger folds
// every worker from the serial commit path, so the per-round FLOP/byte
// totals must be identical whether the 10k-worker round runs untraced or
// traced with a tight per-round sample budget.
TEST(ScaleTest, TraceSamplingDoesNotChangeLedgerTotalsAtTenThousandWorkers) {
  SetPipelineEnabled(true);
  auto run = [&](bool sampled) {
    obs::ResetForTest();
    if (sampled) {
      obs::Enable(obs::TraceOptions{});
      obs::EnableTraceSampling(obs::SamplingOptions{/*per_round_budget=*/64,
                                                    /*seed=*/7});
    }
    const data::FlTask task = data::MakeScaleCnnTask(kWorkers, /*seed=*/7);
    const auto fleet = edge::MakeHalfAHalfB(kWorkers, /*seed=*/7);
    TrainerOptions opt;
    opt.max_rounds = 1;
    opt.eval_every = 100;
    opt.seed = 7;
    opt.num_threads = 4;
    opt.deadline.enabled = false;
    opt.scale.fog_fan_out = 32;
    opt.scale.max_inflight = 64;
    Rng rng(opt.seed ^ 0xBEEFULL);
    data::Partition partition = data::PartitionIid(
        task.train.size(), static_cast<int64_t>(fleet.size()), rng);
    Trainer trainer(&task, fleet, std::move(partition),
                    std::make_unique<FedMpStrategy>(), opt);
    RoundLog log = trainer.Run();
    if (sampled) {
      obs::DisableTraceSampling();
      obs::Disable();
      obs::ResetForTest();
    }
    return log;
  };

  const RoundLog plain = run(/*sampled=*/false);
  const RoundLog sampled = run(/*sampled=*/true);
  ASSERT_EQ(plain.records().size(), sampled.records().size());
  for (size_t i = 0; i < plain.records().size(); ++i) {
    EXPECT_GT(plain.records()[i].flops_total, 0);
    EXPECT_EQ(plain.records()[i].flops_total,
              sampled.records()[i].flops_total);
    EXPECT_EQ(plain.records()[i].bytes_up, sampled.records()[i].bytes_up);
    EXPECT_EQ(plain.records()[i].bytes_down,
              sampled.records()[i].bytes_down);
    EXPECT_EQ(plain.records()[i].bytes_saved_ratio,
              sampled.records()[i].bytes_saved_ratio);
  }
  ThreadPool::SetGlobalThreads(1);
}

}  // namespace
}  // namespace fedmp::fl
