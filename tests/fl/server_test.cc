#include "fl/server.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/task_zoo.h"
#include "nn/tensor_ops.h"

namespace fedmp::fl {
namespace {

TEST(ServerTest, InitialWeightsDeterministic) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  ParameterServer a(task.model, 9), b(task.model, 9);
  const nn::TensorList& wa = a.weights();
  const nn::TensorList& wb = b.weights();
  for (size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(nn::MaxAbsDiff(wa[i], wb[i]), 0.0);
  }
}

TEST(ServerTest, SetWeightsReplaces) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  ParameterServer ps(task.model, 9);
  nn::TensorList zeros = ps.weights();
  for (auto& t : zeros) t.SetZero();
  ps.SetWeights(zeros);
  EXPECT_EQ(nn::SquaredNormList(ps.weights()), 0.0);
}

TEST(ServerTest, EvaluateReturnsChanceForRandomModel) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  ParameterServer ps(task.model, 9);
  const auto eval = ps.Evaluate(task.test, 8, false);
  // Untrained: near-chance accuracy (4 classes -> far from 1.0), finite
  // loss around ln(4).
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 0.8);
  EXPECT_GT(eval.loss, 0.5);
  EXPECT_LT(eval.loss, 5.0);
}

TEST(ServerTest, MaxBatchesLimitsWork) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  ParameterServer ps(task.model, 9);
  const auto full = ps.Evaluate(task.test, 4, false);
  const auto capped = ps.Evaluate(task.test, 4, false, /*max_batches=*/1);
  // Both are valid numbers; the capped one uses a subset.
  EXPECT_GE(capped.accuracy, 0.0);
  EXPECT_LE(capped.accuracy, 1.0);
  (void)full;
}

TEST(ServerTest, LanguageModelEvalReportsPerplexity) {
  const data::FlTask task =
      data::MakeLstmPtbTask(data::TaskScale::kTiny, 5);
  ParameterServer ps(task.model, 9);
  const auto eval = ps.Evaluate(task.test, 8, true);
  EXPECT_NEAR(eval.perplexity, std::exp(eval.loss), 1e-6);
  // Untrained LM is near uniform: perplexity close to vocab size.
  EXPECT_GT(eval.perplexity, task.model.num_classes * 0.5);
}

TEST(ServerDeathTest, SetWeightsShapeMismatchAborts) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  ParameterServer ps(task.model, 9);
  nn::TensorList wrong{nn::Tensor({3})};
  EXPECT_DEATH(ps.SetWeights(wrong), "mismatched");
}

}  // namespace
}  // namespace fedmp::fl
