#include "fl/quantize.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/task_zoo.h"
#include "fl/aggregation.h"
#include "nn/initializers.h"
#include "nn/model_builder.h"
#include "pruning/structured_pruner.h"

namespace fedmp::fl {
namespace {

TEST(QuantizeTest, RoundTripWithinHalfStep) {
  Rng rng(1);
  nn::Tensor t({7, 5});
  nn::UniformInit(t, -2.0, 3.0, rng);
  const QuantizedTensor q = Quantize8(t);
  const nn::Tensor back = Dequantize(q);
  EXPECT_EQ(back.shape(), t.shape());
  const double bound = QuantizationErrorBound(q) + 1e-6;
  EXPECT_LE(nn::MaxAbsDiff(back, t), bound);
  EXPECT_GT(bound, 0.0);
}

TEST(QuantizeTest, ConstantTensorExact) {
  nn::Tensor t = nn::Tensor::Full({10}, 3.25f);
  const QuantizedTensor q = Quantize8(t);
  EXPECT_EQ(q.scale, 0.0f);
  EXPECT_EQ(nn::MaxAbsDiff(Dequantize(q), t), 0.0);
}

TEST(QuantizeTest, ExtremesPreservedExactly) {
  nn::Tensor t = nn::Tensor::FromData({3}, {-1.0f, 0.4f, 2.0f});
  const nn::Tensor back = Dequantize(Quantize8(t));
  EXPECT_FLOAT_EQ(back.at(0), -1.0f);
  EXPECT_FLOAT_EQ(back.at(2), 2.0f);
}

TEST(QuantizeTest, ListRoundTrip) {
  Rng rng(2);
  nn::TensorList list{nn::Tensor({4, 4}), nn::Tensor({9})};
  for (auto& t : list) nn::UniformInit(t, -1, 1, rng);
  const nn::TensorList back = DequantizeList(Quantize8List(list));
  ASSERT_TRUE(nn::SameShapes(back, list));
  for (size_t i = 0; i < list.size(); ++i) {
    EXPECT_LT(nn::MaxAbsDiff(back[i], list[i]), 0.01);
  }
}

TEST(QuantizeTest, MemoryIsAboutAQuarter) {
  // §III-C claims 10-20% of the original for the residual model; plain
  // 8-bit affine quantization gives ~25% plus metadata.
  nn::TensorList list{nn::Tensor({100, 100})};
  const int64_t full = Float32ByteSize(list);
  const int64_t quant = QuantizedByteSize(Quantize8List(list));
  EXPECT_LT(quant, full / 3);
  EXPECT_GT(quant, full / 5);
}

TEST(QuantizeTest, R2spWithQuantizedResidualsStaysClose) {
  // The §III-C no-op invariant holds approximately under quantization:
  // unchanged sub-models + quantized residuals reproduce the global model
  // within the quantization error.
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 9);
  const nn::TensorList global = model->GetWeights();
  auto sub = pruning::PruneByRatio(task.model, global, 0.5);
  ASSERT_TRUE(sub.ok());
  std::vector<SubModelUpdate> updates{
      SubModelUpdate{&sub->mask, &sub->weights}};
  auto result = AggregateSubModels(task.model, global, updates,
                                   SyncScheme::kR2SP,
                                   /*quantize_residuals=*/true);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < global.size(); ++i) {
    EXPECT_LT(nn::MaxAbsDiff((*result)[i], global[i]), 0.02)
        << "tensor " << i;
  }
}

}  // namespace
}  // namespace fedmp::fl
