#include "fl/aggregation.h"

#include <gtest/gtest.h>

#include "data/task_zoo.h"
#include "nn/model_builder.h"
#include "pruning/structured_pruner.h"

namespace fedmp::fl {
namespace {

struct Fixture {
  data::FlTask task;
  nn::TensorList global;
  explicit Fixture(const char* name = "cnn")
      : task(data::MakeTaskByName(name, data::TaskScale::kTiny, 5)) {
    auto model = nn::BuildModelOrDie(task.model, 9);
    global = model->GetWeights();
  }
};

// If every worker returns its sub-model unchanged, R2SP must reproduce the
// global model EXACTLY — the central no-op invariant of §III-C.
TEST(R2spTest, UnchangedSubModelsLeaveGlobalFixed) {
  Fixture f;
  std::vector<pruning::SubModel> subs;
  for (double ratio : {0.2, 0.5, 0.7}) {
    auto sub = pruning::PruneByRatio(f.task.model, f.global, ratio);
    ASSERT_TRUE(sub.ok());
    subs.push_back(std::move(sub).value());
  }
  std::vector<SubModelUpdate> updates;
  for (const auto& sub : subs) {
    updates.push_back(SubModelUpdate{&sub.mask, &sub.weights});
  }
  auto result = AggregateSubModels(f.task.model, f.global, updates,
                                   SyncScheme::kR2SP);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < f.global.size(); ++i) {
    EXPECT_LT(nn::MaxAbsDiff((*result)[i], f.global[i]), 1e-6)
        << "tensor " << i;
  }
}

// The same no-op under BSP SHRINKS the pruned coordinates — the Fig. 7
// failure mode R2SP exists to prevent.
TEST(BspTest, UnchangedSubModelsDecayPrunedWeights) {
  Fixture f;
  auto sub = pruning::PruneByRatio(f.task.model, f.global, 0.5);
  ASSERT_TRUE(sub.ok());
  std::vector<SubModelUpdate> updates{
      SubModelUpdate{&sub->mask, &sub->weights}};
  auto result = AggregateSubModels(f.task.model, f.global, updates,
                                   SyncScheme::kBSP);
  ASSERT_TRUE(result.ok());
  // Kept coordinates intact, pruned coordinates zeroed => result equals
  // sparsify(global).
  auto sparse = pruning::Sparsify(f.task.model, f.global, sub->mask);
  ASSERT_TRUE(sparse.ok());
  double norm_result = 0.0, norm_global = 0.0;
  for (size_t i = 0; i < f.global.size(); ++i) {
    EXPECT_LT(nn::MaxAbsDiff((*result)[i], (*sparse)[i]), 1e-6);
    norm_result += nn::SquaredNorm((*result)[i]);
    norm_global += nn::SquaredNorm(f.global[i]);
  }
  EXPECT_LT(norm_result, norm_global);  // mass was lost
}

TEST(R2spTest, TrainedDeltaFlowsThroughAverage) {
  Fixture f;
  auto sub = pruning::PruneByRatio(f.task.model, f.global, 0.4);
  ASSERT_TRUE(sub.ok());
  // Worker adds +1 to every surviving weight.
  nn::TensorList trained = sub->weights;
  for (auto& t : trained) {
    for (int64_t i = 0; i < t.numel(); ++i) t.at(i) += 1.0f;
  }
  // Second worker: full model, unchanged.
  const pruning::PruneMask full_mask = pruning::FullMask(f.task.model);
  std::vector<SubModelUpdate> updates{
      SubModelUpdate{&sub->mask, &trained},
      SubModelUpdate{&full_mask, &f.global}};
  auto result = AggregateSubModels(f.task.model, f.global, updates,
                                   SyncScheme::kR2SP);
  ASSERT_TRUE(result.ok());
  // Coordinates kept by worker 0 moved by +0.5; pruned ones unchanged.
  // Keep-membership oracle: sparsify an all-ones model — kept coordinates
  // stay 1, pruned ones become 0.
  nn::TensorList ones = f.global;
  for (auto& t : ones) t.Fill(1.0f);
  auto keep_map = pruning::Sparsify(f.task.model, ones, sub->mask);
  ASSERT_TRUE(keep_map.ok());
  for (size_t t = 0; t < f.global.size(); ++t) {
    for (int64_t i = 0; i < f.global[t].numel(); ++i) {
      const bool kept = (*keep_map)[t].at(i) == 1.0f;
      const float expected =
          kept ? f.global[t].at(i) + 0.5f : f.global[t].at(i);
      EXPECT_NEAR((*result)[t].at(i), expected, 1e-5)
          << "tensor " << t << " index " << i;
    }
  }
}

TEST(AggregationTest, EmptyParticipantsRejected) {
  Fixture f;
  EXPECT_FALSE(
      AggregateSubModels(f.task.model, f.global, {}, SyncScheme::kR2SP)
          .ok());
}

// Holes are free: with a single participant, slot position cannot change
// association, so padding the updates vector with holes must reproduce the
// lone-participant aggregate bit for bit (and count one participant).
TEST(AggregationTest, HolesContributeNothingAroundLoneParticipant) {
  Fixture f;
  auto sub = pruning::PruneByRatio(f.task.model, f.global, 0.4);
  ASSERT_TRUE(sub.ok());
  nn::TensorList trained = sub->weights;
  for (auto& t : trained) {
    for (int64_t i = 0; i < t.numel(); ++i) t.at(i) += 0.25f;
  }
  auto lone = AggregateSubModels(
      f.task.model, f.global, {SubModelUpdate{&sub->mask, &trained}},
      SyncScheme::kR2SP);
  ASSERT_TRUE(lone.ok());

  std::vector<SubModelUpdate> holey(5);  // slots 0,1,3,4 are holes
  holey[2] = SubModelUpdate{&sub->mask, &trained};
  auto padded = AggregateSubModels(f.task.model, f.global, holey,
                                   SyncScheme::kR2SP);
  ASSERT_TRUE(padded.ok());
  ASSERT_EQ(lone->size(), padded->size());
  for (size_t i = 0; i < lone->size(); ++i) {
    EXPECT_EQ(nn::MaxAbsDiff((*lone)[i], (*padded)[i]), 0.0) << "tensor " << i;
  }
}

// A round where every slot is a hole has no participants — same error as an
// empty updates vector, not a zero model.
TEST(AggregationTest, AllHolesRejected) {
  Fixture f;
  std::vector<SubModelUpdate> holes(4);
  EXPECT_FALSE(
      AggregateSubModels(f.task.model, f.global, holes, SyncScheme::kR2SP)
          .ok());
}

// A hole carrying a mask is a caller bug (the slot claims to have pruned
// but not trained) — the aggregator refuses loudly instead of guessing.
TEST(AggregationTest, HoleWithMaskIsFatal) {
  Fixture f;
  auto sub = pruning::PruneByRatio(f.task.model, f.global, 0.4);
  ASSERT_TRUE(sub.ok());
  std::vector<SubModelUpdate> updates(2);
  updates[0] = SubModelUpdate{&sub->mask, &sub->weights};
  updates[1].mask = &sub->mask;  // weights stay null: malformed hole
  EXPECT_DEATH(
      {
        auto r = AggregateSubModels(f.task.model, f.global, updates,
                                    SyncScheme::kR2SP);
        (void)r;
      },
      "hole with a mask");
}

TEST(FedAvgTest, AveragesTensorwise) {
  nn::TensorList a{nn::Tensor::Full({2}, 1.0f)};
  nn::TensorList b{nn::Tensor::Full({2}, 3.0f)};
  const nn::TensorList avg = FedAvg({&a, &b});
  EXPECT_EQ(avg[0].at(0), 2.0f);
}

TEST(SparsifyUpdateTest, KeepsLargestEntries) {
  nn::TensorList ref{nn::Tensor::Full({4}, 0.0f)};
  nn::TensorList trained{
      nn::Tensor::FromData({4}, {0.1f, -2.0f, 0.2f, 1.0f})};
  const nn::TensorList out = SparsifyUpdate(ref, trained, 0.5);
  // Top-2 by |delta|: indices 1 and 3 survive.
  EXPECT_EQ(out[0].at(0), 0.0f);
  EXPECT_EQ(out[0].at(1), -2.0f);
  EXPECT_EQ(out[0].at(2), 0.0f);
  EXPECT_EQ(out[0].at(3), 1.0f);
}

TEST(SparsifyUpdateTest, ZeroCompressionIsIdentity) {
  nn::TensorList ref{nn::Tensor::Full({3}, 1.0f)};
  nn::TensorList trained{nn::Tensor::FromData({3}, {2.0f, 3.0f, 4.0f})};
  const nn::TensorList out = SparsifyUpdate(ref, trained, 0.0);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[0].at(i), trained[0].at(i));
  }
}

TEST(SparsifyUpdateTest, ExtremeCompressionKeepsAlmostNothing) {
  nn::TensorList ref{nn::Tensor({100})};
  nn::TensorList trained{nn::Tensor({100})};
  // Distinct magnitudes so the top-k threshold is unambiguous.
  for (int64_t i = 0; i < 100; ++i) {
    trained[0].at(i) = static_cast<float>(i + 1);
  }
  const nn::TensorList out = SparsifyUpdate(ref, trained, 0.99);
  int changed = 0;
  for (int64_t i = 0; i < 100; ++i) {
    if (out[0].at(i) != 0.0f) ++changed;
  }
  EXPECT_EQ(changed, 1);
  EXPECT_EQ(out[0].at(99), 100.0f);  // the largest delta survives
}

TEST(SyncSchemeNameTest, Names) {
  EXPECT_STREQ(SyncSchemeName(SyncScheme::kR2SP), "R2SP");
  EXPECT_STREQ(SyncSchemeName(SyncScheme::kBSP), "BSP");
}

}  // namespace
}  // namespace fedmp::fl
