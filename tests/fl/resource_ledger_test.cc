// Resource-accounting ledger: the analytic FLOP/byte attribution must match
// the instrumented kernel counts exactly (the analytic side is a pure
// function of the pruned sub-model spec, the instrumented side is what the
// matmul kernels actually executed), and the per-round rollups must be
// bit-identical across thread counts and PS shard counts.

#include "fl/resource_accounting.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/task_zoo.h"
#include "edge/cost_model.h"
#include "edge/device.h"
#include "fl/pipeline.h"
#include "fl/strategies/fedmp_strategy.h"
#include "fl/strategies/syn_fl.h"
#include "fl/trainer.h"
#include "fl/worker.h"
#include "nn/model_builder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pruning/structured_pruner.h"

namespace fedmp::fl {
namespace {

std::vector<int64_t> ShardOfSize(int64_t n) {
  std::vector<int64_t> shard(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) shard[static_cast<size_t>(i)] = i;
  return shard;
}

// Trains one worker on a (possibly pruned) sub-model with the kernel MAC
// counters armed and checks the analytic count — twice, so the second call
// also exercises the carried DataLoader cursor (partial tail batches).
void CheckAnalyticMacs(const data::FlTask& task, double ratio) {
  SCOPED_TRACE("task=" + task.model.name + " ratio=" + std::to_string(ratio));
  const nn::ModelSpec& spec = task.model;
  auto model = nn::BuildModelOrDie(spec, /*seed=*/11);
  const nn::TensorList weights = model->GetWeights();

  pruning::SubModel sub;
  if (ratio > 0.0) {
    const pruning::ImportanceRanking ranking =
        pruning::RankUnits(spec, weights);
    auto pruned = pruning::PruneByRatioRanked(spec, weights, ranking, ratio);
    ASSERT_TRUE(pruned.ok()) << pruned.status();
    sub = std::move(pruned).value();
  } else {
    sub.spec = spec;
    sub.weights = weights;
    sub.mask = pruning::FullMask(spec);
  }

  // A shard not divisible by the batch size forces partial tail batches.
  Worker worker(0, &task.train, ShardOfSize(37), edge::JetsonTx2Mode(0), 7);
  LocalTrainOptions local;
  local.tau = 3;
  local.batch_size = 16;
  local.learning_rate = 0.05;
  local.is_language_model = task.is_language_model;
  if (task.is_language_model) local.clip_norm = 5.0;

  const ResourceParams params = MakeResourceParams(spec, weights);
  obs::SetMacCountingEnabled(true);
  for (int call = 0; call < 2; ++call) {
    // PlannedRows must be read before LocalTrain advances the cursor.
    const obs::WorkerResources res = ComputeWorkerResources(
        params, sub.spec, sub.mask, worker.PlannedRows(local),
        /*compress_ratio=*/0.0, /*quantize_residuals=*/false);
    obs::ResetThreadMacCount();
    worker.LocalTrain(sub.spec, sub.weights, local);
    EXPECT_EQ(obs::ThreadMacCount(), res.flops()) << "call " << call;
    EXPECT_GT(res.flops(), 0);
    if (ratio > 0.0) {
      EXPECT_LT(res.flops(), res.dense_flops)
          << "pruning must reduce the MAC count";
    } else {
      EXPECT_EQ(res.flops(), res.dense_flops);
    }
  }
  obs::SetMacCountingEnabled(false);
}

TEST(ResourceLedgerTest, AnalyticMacsMatchInstrumentedKernelsAcrossZoo) {
  const uint64_t seed = 5;
  for (double ratio : {0.0, 0.25, 0.5}) {
    CheckAnalyticMacs(data::MakeCnnMnistTask(data::TaskScale::kTiny, seed),
                      ratio);
    CheckAnalyticMacs(
        data::MakeAlexNetCifarTask(data::TaskScale::kTiny, seed), ratio);
    CheckAnalyticMacs(data::MakeLstmPtbTask(data::TaskScale::kTiny, seed),
                      ratio);
  }
}

TEST(ResourceLedgerTest, MaskWireBytesChargesOnlyPrunableLayers) {
  pruning::PruneMask mask;
  pruning::LayerMask prunable;
  prunable.prunable = true;
  prunable.original_width = 10;  // 2-byte bitmap
  pruning::LayerMask implied;    // BatchNorm-style follower: free
  implied.prunable = false;
  implied.original_width = 10;
  pruning::LayerMask wide;
  wide.prunable = true;
  wide.original_width = 64;  // exact 8-byte bitmap
  mask.layers = {prunable, implied, wide};
  // Per prunable layer: 8-byte header + ceil(width/8) bitmap.
  EXPECT_EQ(MaskWireBytes(mask), (8 + 2) + (8 + 8));
}

TEST(ResourceLedgerTest, ByteAttributionForDenseAndPrunedWorkers) {
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 11);
  const nn::TensorList weights = model->GetWeights();
  const ResourceParams params = MakeResourceParams(task.model, weights);
  const int64_t dense_bytes = task.model.NumParams() * 4;

  // Dense worker (FedAvg): full payload both ways, no mask, no residual —
  // and therefore zero savings vs the dense baseline.
  pruning::SubModel full;
  full.spec = task.model;
  full.mask = pruning::FullMask(task.model);
  const obs::WorkerResources dense = ComputeWorkerResources(
      params, full.spec, full.mask, /*rows=*/48, 0.0, false);
  EXPECT_EQ(dense.bytes_down, dense_bytes);
  EXPECT_EQ(dense.bytes_up, dense_bytes);
  EXPECT_EQ(dense.bytes_residual, 0);
  EXPECT_EQ(dense.wire_bytes(), dense.dense_bytes);

  // Pruned worker: smaller payloads + mask encoding + PS residual.
  const pruning::ImportanceRanking ranking =
      pruning::RankUnits(task.model, weights);
  auto pruned =
      pruning::PruneByRatioRanked(task.model, weights, ranking, 0.5);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  const int64_t sub_bytes = pruned.value().spec.NumParams() * 4;
  const obs::WorkerResources small = ComputeWorkerResources(
      params, pruned.value().spec, pruned.value().mask, 48, 0.0, false);
  EXPECT_EQ(small.bytes_down, sub_bytes + MaskWireBytes(pruned.value().mask));
  EXPECT_EQ(small.bytes_up, sub_bytes);
  EXPECT_EQ(small.bytes_residual, params.residual_bytes_f32);
  EXPECT_LT(small.wire_bytes(), small.dense_bytes);

  // Upload compression shrinks only the uplink ((1-ratio) x 1.1 overhead);
  // quantized residuals shrink the PS-side storage.
  const obs::WorkerResources squeezed = ComputeWorkerResources(
      params, pruned.value().spec, pruned.value().mask, 48, 0.5, true);
  EXPECT_EQ(squeezed.bytes_down, small.bytes_down);
  EXPECT_LT(squeezed.bytes_up, small.bytes_up);
  EXPECT_EQ(squeezed.bytes_residual, params.residual_bytes_quantized);
  EXPECT_LT(params.residual_bytes_quantized, params.residual_bytes_f32);
}

RoundLog RunSync(std::unique_ptr<Strategy> strategy, int num_threads,
                 int ps_shards) {
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 5);
  TrainerOptions opt;
  opt.max_rounds = 4;
  opt.eval_every = 2;
  opt.eval_batch_size = 16;
  opt.seed = 3;
  opt.num_threads = num_threads;
  opt.scale.ps_shards = ps_shards;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  Trainer trainer(&task, fleet, std::move(partition), std::move(strategy),
                  opt);
  return trainer.Run();
}

TEST(ResourceLedgerTest, RoundLogCarriesLedgerColumns) {
  const RoundLog fedmp = RunSync(std::make_unique<FedMpStrategy>(), 1, 1);
  double fedmp_saved = 0.0;
  for (const RoundRecord& r : fedmp.records()) {
    EXPECT_GT(r.flops_total, 0) << "round " << r.round;
    EXPECT_GT(r.bytes_up, 0) << "round " << r.round;
    EXPECT_GT(r.bytes_down, 0) << "round " << r.round;
    EXPECT_GE(r.bytes_saved_ratio, 0.0) << "round " << r.round;
    fedmp_saved += r.bytes_saved_ratio;
  }
  // The pruned strategy actually saves wire bytes; the FedAvg baseline
  // ships the dense model and saves nothing.
  EXPECT_GT(fedmp_saved, 0.0);
  const RoundLog fedavg = RunSync(std::make_unique<SynFlStrategy>(), 1, 1);
  for (const RoundRecord& r : fedavg.records()) {
    EXPECT_EQ(r.bytes_saved_ratio, 0.0) << "round " << r.round;
  }

  // The new columns reach both serializations.
  const std::string jsonl = fedmp.ToJsonlString();
  EXPECT_NE(jsonl.find("\"flops_total\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"bytes_saved_ratio\":"), std::string::npos);
  const CsvTable table = fedmp.ToTable();
  const std::vector<std::string>& header = table.header();
  EXPECT_NE(std::find(header.begin(), header.end(), "flops_total"),
            header.end());
  EXPECT_NE(std::find(header.begin(), header.end(), "bytes_saved_ratio"),
            header.end());
}

// Runs a traced round and returns only the ledger's `resource` /
// `resource.fog` lines of the logical export.
std::string ResourceEvents(int num_threads, int ps_shards) {
  obs::ResetForTest();
  obs::Enable(obs::TraceOptions{});
  RunSync(std::make_unique<FedMpStrategy>(), num_threads, ps_shards);
  const std::string jsonl = obs::EventsJsonl();
  obs::Disable();
  obs::ResetForTest();
  std::string out;
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"event\":\"resource") != std::string::npos) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

TEST(ResourceLedgerTest, ResourceEventsBitIdenticalAcrossThreadsAndShards) {
  const std::string base = ResourceEvents(1, 1);
  EXPECT_NE(base.find("\"event\":\"resource\""), std::string::npos);
  EXPECT_EQ(base, ResourceEvents(4, 1));
  EXPECT_EQ(base, ResourceEvents(1, 4));
  EXPECT_EQ(base, ResourceEvents(4, 4));
  ThreadPool::SetGlobalThreads(1);
}

TEST(ResourceLedgerTest, EncodedCostModeIsOffByDefaultAndChangesTiming) {
  // Default: bit-identical timing whether or not the ledger knows about
  // masks/encodings — the simulated clock still charges params x 4 bytes.
  const RoundLog a = RunSync(std::make_unique<FedMpStrategy>(), 1, 1);
  const RoundLog b = RunSync(std::make_unique<FedMpStrategy>(), 1, 1);
  ASSERT_EQ(a.records().size(), b.records().size());
  for (size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i].sim_time, b.records()[i].sim_time);
  }

  // FEDMP_COST_ENCODED: comm time is charged on the exact encoded payload
  // (mask bitmaps ride the downlink), so pruned-round timings shift.
  edge::SetCostEncodedEnabled(true);
  const RoundLog encoded = RunSync(std::make_unique<FedMpStrategy>(), 1, 1);
  edge::SetCostEncodedEnabled(false);
  bool any_diff = false;
  for (size_t i = 0; i < a.records().size(); ++i) {
    any_diff |= encoded.records()[i].sim_time != a.records()[i].sim_time;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace fedmp::fl
