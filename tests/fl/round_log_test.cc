#include "fl/round_log.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

namespace fedmp::fl {
namespace {

RoundLog MakeLog() {
  RoundLog log;
  for (int64_t k = 0; k < 5; ++k) {
    RoundRecord r;
    r.round = k;
    r.sim_time = 10.0 * static_cast<double>(k + 1);
    r.round_seconds = 10.0;
    r.train_loss = 1.0 / static_cast<double>(k + 1);
    r.decision_overhead_ms = 2.0;
    if (k % 2 == 0) {
      r.test_accuracy = 0.2 * static_cast<double>(k + 1);
      r.test_loss = r.train_loss;
    }
    log.Add(r);
  }
  return log;
}

TEST(RoundLogTest, TimeToAccuracyFindsFirstCrossing) {
  const RoundLog log = MakeLog();
  // Evals: t=10 acc 0.2; t=30 acc 0.6; t=50 acc 1.0.
  EXPECT_DOUBLE_EQ(log.TimeToAccuracy(0.5), 30.0);
  EXPECT_DOUBLE_EQ(log.TimeToAccuracy(0.1), 10.0);
  EXPECT_DOUBLE_EQ(log.TimeToAccuracy(1.1), -1.0);
}

TEST(RoundLogTest, BestAccuracyWithinBudget) {
  const RoundLog log = MakeLog();
  EXPECT_DOUBLE_EQ(log.BestAccuracyWithin(35.0), 0.6);
  EXPECT_DOUBLE_EQ(log.BestAccuracyWithin(9.0), -1.0);
  EXPECT_DOUBLE_EQ(log.BestAccuracyWithin(1000.0), 1.0);
}

TEST(RoundLogTest, FinalAccuracySkipsUnevaluatedRounds) {
  const RoundLog log = MakeLog();
  EXPECT_DOUBLE_EQ(log.FinalAccuracy(), 1.0);  // round 4 eval
}

TEST(RoundLogTest, PerplexityQueries) {
  RoundLog log;
  for (int64_t k = 0; k < 3; ++k) {
    RoundRecord r;
    r.round = k;
    r.sim_time = static_cast<double>(k + 1);
    r.test_perplexity = 100.0 / static_cast<double>(k + 1);
    log.Add(r);
  }
  EXPECT_DOUBLE_EQ(log.TimeToPerplexity(60.0), 2.0);
  EXPECT_DOUBLE_EQ(log.TimeToPerplexity(10.0), -1.0);
  EXPECT_DOUBLE_EQ(log.BestPerplexityWithin(2.5), 50.0);
}

TEST(RoundLogTest, OverheadAndTotals) {
  const RoundLog log = MakeLog();
  EXPECT_DOUBLE_EQ(log.MeanDecisionOverheadMs(), 2.0);
  EXPECT_DOUBLE_EQ(log.TotalSimTime(), 50.0);
}

TEST(RoundLogTest, EmptyLogDefaults) {
  const RoundLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_DOUBLE_EQ(log.TimeToAccuracy(0.5), -1.0);
  EXPECT_DOUBLE_EQ(log.FinalAccuracy(), -1.0);
  EXPECT_DOUBLE_EQ(log.TotalSimTime(), 0.0);
}

TEST(RoundLogTest, ToTableHasOneRowPerRound) {
  const RoundLog log = MakeLog();
  const CsvTable table = log.ToTable();
  EXPECT_EQ(table.num_rows(), 5u);
  std::ostringstream os;
  table.WriteCsv(os);
  EXPECT_NE(os.str().find("sim_time"), std::string::npos);
}

TEST(RoundLogTest, JsonlMirrorsTheCsvSchema) {
  const RoundLog log = MakeLog();
  const CsvTable table = log.ToTable();
  const std::string jsonl = log.ToJsonlString();
  // One line per round, and every CSV column appears as a JSON key — both
  // views are generated from the same column table.
  EXPECT_EQ(static_cast<size_t>(
                std::count(jsonl.begin(), jsonl.end(), '\n')),
            table.num_rows());
  for (const std::string& column : table.header()) {
    EXPECT_NE(jsonl.find("\"" + column + "\":"), std::string::npos)
        << "missing column " << column;
  }
}

TEST(RoundLogTest, JsonlValuesMatchCsvFormatting) {
  RoundLog log;
  RoundRecord r;
  r.round = 7;
  r.sim_time = 12.345;       // CSV renders %.2f
  r.train_loss = 0.98765;    // CSV renders %.4f
  r.participants = 3;
  log.Add(r);
  const std::string jsonl = log.ToJsonlString();
  EXPECT_NE(jsonl.find("\"round\":7"), std::string::npos);
  EXPECT_NE(jsonl.find("\"sim_time\":12.35"), std::string::npos);
  EXPECT_NE(jsonl.find("\"train_loss\":0.9877"), std::string::npos);
  EXPECT_NE(jsonl.find("\"participants\":3"), std::string::npos);
}

TEST(RoundLogTest, EmptyLogProducesEmptyJsonl) {
  const RoundLog log;
  EXPECT_TRUE(log.ToJsonlString().empty());
}

}  // namespace
}  // namespace fedmp::fl
