#include "edge/cost_model.h"

#include <gtest/gtest.h>

#include "data/task_zoo.h"
#include "edge/network.h"
#include "nn/model_builder.h"
#include "pruning/structured_pruner.h"

namespace fedmp::edge {
namespace {

DeviceRoundSample NominalSample(const DeviceProfile& p) {
  return DeviceRoundSample{p.flops_per_sec, p.uplink_bytes_per_sec,
                           p.downlink_bytes_per_sec};
}

TEST(CostModelTest, CompScalesLinearlyWithIterationsAndBatch) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 1);
  const DeviceRoundSample dev = NominalSample(JetsonTx2Mode(0));
  const double t1 = CompSeconds(task.model, 2, 8, dev);
  EXPECT_NEAR(CompSeconds(task.model, 4, 8, dev), 2 * t1, 1e-9);
  EXPECT_NEAR(CompSeconds(task.model, 2, 16, dev), 2 * t1, 1e-9);
}

TEST(CostModelTest, FasterDeviceFinishesSooner) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 1);
  const double fast = CompSeconds(task.model, 3, 8,
                                  NominalSample(JetsonTx2Mode(0)));
  const double slow = CompSeconds(task.model, 3, 8,
                                  NominalSample(JetsonTx2Mode(3)));
  EXPECT_LT(fast, slow);
}

TEST(CostModelTest, CommCountsBothDirectionsPlusOverhead) {
  CostModelOptions opt;
  opt.round_overhead_seconds = 0.25;
  DeviceRoundSample dev{1e9, 100.0, 200.0};
  // 1000 bytes down at 200 B/s = 5s; 500 bytes up at 100 B/s = 5s.
  EXPECT_NEAR(CommSeconds(1000.0, 500.0, dev, opt), 5.0 + 5.0 + 0.25,
              1e-9);
}

TEST(CostModelTest, RoundCostSplitsCompAndComm) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 1);
  const DeviceRoundSample dev = NominalSample(JetsonTx2Mode(1));
  const RoundCost cost = EstimateRoundCost(task.model, 3, 8, dev);
  EXPECT_GT(cost.comp_seconds, 0.0);
  EXPECT_GT(cost.comm_seconds, 0.0);
  EXPECT_NEAR(cost.total(), cost.comp_seconds + cost.comm_seconds, 1e-12);
}

TEST(CostModelTest, NominalWrapperMatchesManualSample) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 1);
  const DeviceProfile p = JetsonTx2Mode(2);
  const RoundCost a = EstimateRoundCostNominal(task.model, 3, 8, p);
  const RoundCost b = EstimateRoundCost(task.model, 3, 8, NominalSample(p));
  EXPECT_DOUBLE_EQ(a.comp_seconds, b.comp_seconds);
  EXPECT_DOUBLE_EQ(a.comm_seconds, b.comm_seconds);
}

TEST(CostModelTest, PruningMonotonicallyReducesRoundCost) {
  // The Fig. 5 mechanism: larger pruning ratios -> less computation AND
  // less communication per round.
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kBench, 1);
  auto model = nn::BuildModelOrDie(task.model, 2);
  const DeviceRoundSample dev = NominalSample(JetsonTx2Mode(1));
  double prev_total = 1e18;
  for (double ratio : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    auto sub =
        pruning::PruneByRatio(task.model, model->GetWeights(), ratio);
    ASSERT_TRUE(sub.ok());
    const RoundCost cost = EstimateRoundCost(sub->spec, 3, 8, dev);
    EXPECT_LT(cost.total(), prev_total) << "ratio " << ratio;
    prev_total = cost.total();
  }
}

TEST(PathLossTest, MonotoneDecayBeyondReference) {
  WirelessLinkConfig cfg;
  EXPECT_DOUBLE_EQ(PathLossFactor(5.0, cfg), 1.0);  // saturates near PS
  EXPECT_DOUBLE_EQ(PathLossFactor(10.0, cfg), 1.0);
  const double at20 = PathLossFactor(20.0, cfg);
  const double at40 = PathLossFactor(40.0, cfg);
  EXPECT_LT(at20, 1.0);
  EXPECT_LT(at40, at20);
}

TEST(PathLossTest, AssignLinkAppliesFactor) {
  WirelessLinkConfig cfg;
  DeviceProfile p = JetsonTx2Mode(0);
  AssignLinkByDistance(20.0, cfg, &p);
  const double factor = PathLossFactor(20.0, cfg);
  EXPECT_DOUBLE_EQ(p.uplink_bytes_per_sec,
                   cfg.base_uplink_bytes_per_sec * factor);
  EXPECT_DOUBLE_EQ(p.downlink_bytes_per_sec,
                   cfg.base_downlink_bytes_per_sec * factor);
}

}  // namespace
}  // namespace fedmp::edge
