#include "edge/event_queue.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "edge/sim_clock.h"

namespace fedmp::edge {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.Push(3.0, 0);
  q.Push(1.0, 1);
  q.Push(2.0, 2);
  EXPECT_EQ(q.Pop().worker, 1);
  EXPECT_EQ(q.Pop().worker, 2);
  EXPECT_EQ(q.Pop().worker, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TiesBreakInPushOrder) {
  EventQueue q;
  q.Push(1.0, 5);
  q.Push(1.0, 6);
  q.Push(1.0, 7);
  EXPECT_EQ(q.Pop().worker, 5);
  EXPECT_EQ(q.Pop().worker, 6);
  EXPECT_EQ(q.Pop().worker, 7);
}

TEST(EventQueueTest, PeekDoesNotRemove) {
  EventQueue q;
  q.Push(2.0, 1);
  EXPECT_EQ(q.Peek().worker, 1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, RandomSequenceIsSorted) {
  EventQueue q;
  Rng rng(8);
  for (int i = 0; i < 500; ++i) q.Push(rng.NextDouble(), i);
  double prev = -1.0;
  while (!q.empty()) {
    const Event e = q.Pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(EventQueueDeathTest, PopEmptyAborts) {
  EventQueue q;
  EXPECT_DEATH(q.Pop(), "empty");
  EXPECT_DEATH(q.Peek(), "empty");
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.Advance(2.5);
  clock.AdvanceTo(5.0);
  EXPECT_EQ(clock.now(), 5.0);
}

TEST(SimClockDeathTest, BackwardsTimeAborts) {
  SimClock clock;
  clock.Advance(3.0);
  EXPECT_DEATH(clock.Advance(-1.0), "backwards");
  EXPECT_DEATH(clock.AdvanceTo(1.0), "backwards");
}

}  // namespace
}  // namespace fedmp::edge
