#include "edge/cluster.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace fedmp::edge {
namespace {

double MeanFlops(const std::vector<DeviceProfile>& fleet) {
  std::vector<double> flops;
  for (const auto& d : fleet) flops.push_back(d.flops_per_sec);
  return Mean(flops);
}

double MeanUplink(const std::vector<DeviceProfile>& fleet) {
  std::vector<double> bw;
  for (const auto& d : fleet) bw.push_back(d.uplink_bytes_per_sec);
  return Mean(bw);
}

TEST(ClusterTest, SizesMatch) {
  EXPECT_EQ(MakeCluster(ClusterId::kA, 7, 1).size(), 7u);
  EXPECT_EQ(MakeCluster(ClusterId::kB, 0, 1).size(), 0u);
}

TEST(ClusterTest, CapabilityOrderingAOverBOverC) {
  const auto a = MakeCluster(ClusterId::kA, 20, 1);
  const auto b = MakeCluster(ClusterId::kB, 20, 1);
  const auto c = MakeCluster(ClusterId::kC, 20, 1);
  EXPECT_GT(MeanFlops(a), MeanFlops(b));
  EXPECT_GT(MeanFlops(b), MeanFlops(c));
  EXPECT_GT(MeanUplink(a), MeanUplink(b));
  EXPECT_GT(MeanUplink(b), MeanUplink(c));
}

TEST(ClusterTest, DeterministicBySeed) {
  const auto a = MakeCluster(ClusterId::kA, 5, 9);
  const auto b = MakeCluster(ClusterId::kA, 5, 9);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].flops_per_sec, b[i].flops_per_sec);
    EXPECT_EQ(a[i].uplink_bytes_per_sec, b[i].uplink_bytes_per_sec);
  }
}

TEST(HeterogeneityTest, ScenarioCompositions) {
  EXPECT_EQ(MakeHeterogeneousWorkers(HeterogeneityLevel::kLow, 1).size(),
            10u);
  EXPECT_EQ(
      MakeHeterogeneousWorkers(HeterogeneityLevel::kMedium, 1).size(), 10u);
  EXPECT_EQ(MakeHeterogeneousWorkers(HeterogeneityLevel::kHigh, 1).size(),
            10u);
}

TEST(HeterogeneityTest, SpreadGrowsWithLevel) {
  auto spread = [](const std::vector<DeviceProfile>& fleet) {
    double lo = 1e18, hi = 0.0;
    for (const auto& d : fleet) {
      lo = std::min(lo, d.flops_per_sec);
      hi = std::max(hi, d.flops_per_sec);
    }
    return hi / lo;
  };
  const double low =
      spread(MakeHeterogeneousWorkers(HeterogeneityLevel::kLow, 1));
  const double high =
      spread(MakeHeterogeneousWorkers(HeterogeneityLevel::kHigh, 1));
  EXPECT_GE(high, low);
}

TEST(HalfAHalfBTest, SizesAndComposition) {
  const auto fleet = MakeHalfAHalfB(11, 3);
  EXPECT_EQ(fleet.size(), 11u);
  int a_count = 0;
  for (const auto& d : fleet) {
    if (d.name[0] == 'A') ++a_count;
  }
  EXPECT_EQ(a_count, 5);
}

TEST(ClusterNameTest, Names) {
  EXPECT_STREQ(ClusterName(ClusterId::kA), "A");
  EXPECT_STREQ(HeterogeneityName(HeterogeneityLevel::kHigh), "High");
}

}  // namespace
}  // namespace fedmp::edge
