#include "edge/fault.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace fedmp::edge {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(DeadlineTest, AllWorkersInTimeNothingDropped) {
  DeadlinePolicy policy;
  const DeadlineOutcome out = ApplyDeadline({1.0, 2.0, 3.0, 4.0}, policy);
  // d = ceil(0.85*4)=4th fastest = 4.0; deadline 6.0; everyone makes it.
  EXPECT_EQ(out.survivors.size(), 4u);
  EXPECT_DOUBLE_EQ(out.round_time, 4.0);
  EXPECT_DOUBLE_EQ(out.deadline, 6.0);
}

TEST(DeadlineTest, ExtremeStragglerDropped) {
  DeadlinePolicy policy;  // quantile 0.85, slack 1.5
  std::vector<double> times{1.0, 1.1, 1.2, 1.3, 1.4,
                            1.5, 1.6, 1.7, 1.8, 50.0};
  const DeadlineOutcome out = ApplyDeadline(times, policy);
  // d = 9th fastest = 1.8 -> deadline 2.7; worker 9 misses it.
  EXPECT_EQ(out.survivors.size(), 9u);
  EXPECT_DOUBLE_EQ(out.deadline, 2.7);
  // The PS waits until the deadline expires.
  EXPECT_DOUBLE_EQ(out.round_time, 2.7);
}

TEST(DeadlineTest, DisabledPolicyKeepsEveryFiniteWorker) {
  DeadlinePolicy policy;
  policy.enabled = false;
  const DeadlineOutcome out = ApplyDeadline({1.0, 100.0}, policy);
  EXPECT_EQ(out.survivors.size(), 2u);
  EXPECT_DOUBLE_EQ(out.round_time, 100.0);
}

TEST(DeadlineTest, CrashedWorkersNeverSurvive) {
  DeadlinePolicy policy;
  policy.enabled = false;
  const DeadlineOutcome out = ApplyDeadline({1.0, kInf, 2.0}, policy);
  EXPECT_EQ(out.survivors, (std::vector<int>{0, 2}));
}

TEST(DeadlineTest, CrashedWorkersExcludedFromQuantile) {
  DeadlinePolicy policy;
  const DeadlineOutcome out =
      ApplyDeadline({1.0, 1.2, kInf, 1.1, kInf}, policy);
  // Quantile computed over the three finite arrivals.
  EXPECT_EQ(out.survivors.size(), 3u);
  EXPECT_TRUE(std::isfinite(out.round_time));
}

TEST(DeadlineDeathTest, AllCrashedAborts) {
  DeadlinePolicy policy;
  EXPECT_DEATH(ApplyDeadline({kInf, kInf}, policy), "every worker crashed");
}

TEST(InjectCrashesTest, ZeroProbabilityIsNoop) {
  Rng rng(1);
  std::vector<double> times{1.0, 2.0};
  InjectCrashes(0.0, rng, &times);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(InjectCrashesTest, RateApproximatelyHonored) {
  Rng rng(2);
  int crashed = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    std::vector<double> times{1.0};
    InjectCrashes(0.2, rng, &times);
    if (!std::isfinite(times[0])) ++crashed;
  }
  EXPECT_NEAR(static_cast<double>(crashed) / trials, 0.2, 0.02);
}

}  // namespace
}  // namespace fedmp::edge
