#include "edge/fault.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace fedmp::edge {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(DeadlineTest, AllWorkersInTimeNothingDropped) {
  DeadlinePolicy policy;
  const DeadlineOutcome out = ApplyDeadline({1.0, 2.0, 3.0, 4.0}, policy);
  // d = ceil(0.85*4)=4th fastest = 4.0; deadline 6.0; everyone makes it.
  EXPECT_EQ(out.survivors.size(), 4u);
  EXPECT_DOUBLE_EQ(out.round_time, 4.0);
  EXPECT_DOUBLE_EQ(out.deadline, 6.0);
}

TEST(DeadlineTest, ExtremeStragglerDropped) {
  DeadlinePolicy policy;  // quantile 0.85, slack 1.5
  std::vector<double> times{1.0, 1.1, 1.2, 1.3, 1.4,
                            1.5, 1.6, 1.7, 1.8, 50.0};
  const DeadlineOutcome out = ApplyDeadline(times, policy);
  // d = 9th fastest = 1.8 -> deadline 2.7; worker 9 misses it.
  EXPECT_EQ(out.survivors.size(), 9u);
  EXPECT_DOUBLE_EQ(out.deadline, 2.7);
  // The PS waits until the deadline expires.
  EXPECT_DOUBLE_EQ(out.round_time, 2.7);
}

TEST(DeadlineTest, DisabledPolicyKeepsEveryFiniteWorker) {
  DeadlinePolicy policy;
  policy.enabled = false;
  const DeadlineOutcome out = ApplyDeadline({1.0, 100.0}, policy);
  EXPECT_EQ(out.survivors.size(), 2u);
  EXPECT_DOUBLE_EQ(out.round_time, 100.0);
}

TEST(DeadlineTest, CrashedWorkersNeverSurvive) {
  DeadlinePolicy policy;
  policy.enabled = false;
  const DeadlineOutcome out = ApplyDeadline({1.0, kInf, 2.0}, policy);
  EXPECT_EQ(out.survivors, (std::vector<int>{0, 2}));
}

TEST(DeadlineTest, CrashedWorkersExcludedFromQuantile) {
  DeadlinePolicy policy;
  const DeadlineOutcome out =
      ApplyDeadline({1.0, 1.2, kInf, 1.1, kInf}, policy);
  // Quantile computed over the three finite arrivals.
  EXPECT_EQ(out.survivors.size(), 3u);
  EXPECT_TRUE(std::isfinite(out.round_time));
}

// Regression (chaos hardening): when every worker crashes the round must
// degrade gracefully — empty survivor set, strictly positive wait — instead
// of aborting the process.
TEST(DeadlineTest, AllCrashedDegradesGracefully) {
  DeadlinePolicy policy;
  policy.empty_round_wait = 2.5;
  const DeadlineOutcome out = ApplyDeadline({kInf, kInf}, policy);
  EXPECT_TRUE(out.survivors.empty());
  EXPECT_DOUBLE_EQ(out.round_time, 2.5);
  EXPECT_TRUE(std::isinf(out.deadline));
}

TEST(FaultPlanTest, InactivePlanIsClean) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  const WorkerRoundFaults f = plan.FaultsFor(3, 1);
  EXPECT_FALSE(f.crashed);
  EXPECT_FALSE(f.update_dropped);
  EXPECT_FALSE(f.update_duplicated);
  EXPECT_FALSE(f.update_corrupted);
  EXPECT_DOUBLE_EQ(f.slowdown, 1.0);
  EXPECT_DOUBLE_EQ(f.extra_delay, 0.0);
}

TEST(FaultPlanTest, PureFunctionOfSeedRoundWorker) {
  FaultPlanOptions opts;
  opts.crash_prob = 0.3;
  opts.straggle_prob = 0.3;
  opts.corrupt_prob = 0.2;
  opts.channel.loss_prob = 0.1;
  opts.channel.duplicate_prob = 0.1;
  opts.channel.max_delay_seconds = 2.0;
  opts.seed = 42;
  FaultPlan a(4, opts), b(4, opts);
  // Query b in a scrambled order and with extra redundant queries: fates
  // must still match a's, draw for draw.
  for (int worker = 3; worker >= 0; --worker) b.FaultsFor(7, worker);
  for (int64_t round = 0; round < 20; ++round) {
    for (int worker = 0; worker < 4; ++worker) {
      const WorkerRoundFaults fa = a.FaultsFor(round, worker);
      const WorkerRoundFaults fb = b.FaultsFor(round, worker);
      EXPECT_EQ(fa.crashed, fb.crashed);
      EXPECT_EQ(fa.update_dropped, fb.update_dropped);
      EXPECT_EQ(fa.update_duplicated, fb.update_duplicated);
      EXPECT_EQ(fa.update_corrupted, fb.update_corrupted);
      EXPECT_DOUBLE_EQ(fa.slowdown, fb.slowdown);
      EXPECT_DOUBLE_EQ(fa.extra_delay, fb.extra_delay);
    }
  }
}

TEST(FaultPlanTest, DifferentSeedsGiveDifferentTraces) {
  FaultPlanOptions opts;
  opts.crash_prob = 0.5;
  opts.seed = 1;
  FaultPlan a(8, opts);
  opts.seed = 2;
  FaultPlan b(8, opts);
  int diff = 0;
  for (int64_t round = 0; round < 32; ++round) {
    for (int worker = 0; worker < 8; ++worker) {
      if (a.FaultsFor(round, worker).crashed !=
          b.FaultsFor(round, worker).crashed) {
        ++diff;
      }
    }
  }
  EXPECT_GT(diff, 0);
}

TEST(FaultPlanTest, RejoinWindowKeepsWorkerDown) {
  FaultPlanOptions opts;
  opts.crash_prob = 0.25;
  opts.rejoin_after = 3;
  opts.seed = 7;
  FaultPlan plan(6, opts);
  // An up->down transition at round r means a fresh crash at exactly r, so
  // the worker must stay down for the full rejoin window.
  bool saw_crash = false;
  for (int64_t round = 1; round < 40; ++round) {
    for (int worker = 0; worker < 6; ++worker) {
      if (!plan.IsDown(round, worker) || plan.IsDown(round - 1, worker)) {
        continue;
      }
      saw_crash = true;
      EXPECT_TRUE(plan.FaultsFor(round, worker).crashed);
      for (int64_t r = round; r < round + opts.rejoin_after; ++r) {
        EXPECT_TRUE(plan.IsDown(r, worker))
            << "worker " << worker << " crashed at " << round
            << " but was up at " << r;
      }
    }
  }
  EXPECT_TRUE(saw_crash);
}

TEST(FaultPlanTest, CountAliveMatchesIsDown) {
  FaultPlanOptions opts;
  opts.crash_prob = 0.4;
  opts.rejoin_after = 2;
  opts.seed = 11;
  FaultPlan plan(5, opts);
  for (int64_t round = 0; round < 25; ++round) {
    int alive = 0;
    for (int worker = 0; worker < 5; ++worker) {
      if (!plan.IsDown(round, worker)) ++alive;
    }
    EXPECT_EQ(plan.CountAlive(round), alive);
  }
}

TEST(FaultPlanTest, CrashRateApproximatelyHonored) {
  FaultPlanOptions opts;
  opts.crash_prob = 0.2;
  opts.seed = 3;
  FaultPlan plan(10, opts);
  int crashed = 0;
  const int64_t rounds = 2000;
  for (int64_t round = 0; round < rounds; ++round) {
    for (int worker = 0; worker < 10; ++worker) {
      if (plan.FaultsFor(round, worker).crashed) ++crashed;
    }
  }
  EXPECT_NEAR(static_cast<double>(crashed) / (rounds * 10), 0.2, 0.02);
}

TEST(FaultPlanTest, FogKnobsAreValidated) {
  FaultPlanOptions bad_prob;
  bad_prob.fog_outage_prob = 1.5;
  bad_prob.fog_groups = 4;
  EXPECT_DEATH(FaultPlan(8, bad_prob), "Check failed");
  FaultPlanOptions bad_groups;
  bad_groups.fog_outage_prob = 0.5;
  bad_groups.fog_groups = -1;
  EXPECT_DEATH(FaultPlan(8, bad_groups), "Check failed");
}

TEST(FaultPlanTest, FogGroupsBeyondWorkersClampToOnePerWorker) {
  FaultPlanOptions opts;
  opts.fog_outage_prob = 0.5;
  opts.fog_groups = 64;  // more regions than workers
  opts.seed = 9;
  FaultPlan plan(5, opts);
  for (int w = 0; w < 5; ++w) {
    EXPECT_EQ(plan.FogGroupOf(w), w) << "each worker is its own region";
  }
}

TEST(FaultPlanTest, FogOutageRateApproximatelyHonored) {
  FaultPlanOptions opts;
  opts.fog_outage_prob = 0.25;
  opts.fog_groups = 4;
  opts.seed = 17;
  FaultPlan plan(16, opts);
  int down = 0;
  const int64_t rounds = 4000;
  for (int64_t round = 0; round < rounds; ++round) {
    for (int group_rep : {0, 4, 8, 12}) {  // one probe per region
      if (plan.FogOutageAt(round, group_rep)) ++down;
    }
  }
  EXPECT_NEAR(static_cast<double>(down) / (rounds * 4), 0.25, 0.02);
}

TEST(FaultPlanTest, StraggleScalesCompletionTime) {
  FaultPlanOptions opts;
  opts.straggle_prob = 1.0;
  opts.straggle_factor = 4.0;
  opts.seed = 5;
  FaultPlan plan(3, opts);
  const WorkerRoundFaults f = plan.FaultsFor(0, 0);
  EXPECT_FALSE(f.crashed);
  EXPECT_DOUBLE_EQ(f.slowdown, 4.0);
}

TEST(TransmitUpdateTest, DeterministicPerSeedRoundWorker) {
  ChannelFaultConfig config;
  config.loss_prob = 0.3;
  config.duplicate_prob = 0.3;
  config.max_delay_seconds = 1.5;
  for (int64_t round = 0; round < 10; ++round) {
    for (int worker = 0; worker < 4; ++worker) {
      const MessageFate a = TransmitUpdate(config, 99, round, worker);
      const MessageFate b = TransmitUpdate(config, 99, round, worker);
      EXPECT_EQ(a.delivered, b.delivered);
      EXPECT_EQ(a.copies, b.copies);
      EXPECT_DOUBLE_EQ(a.delay_seconds, b.delay_seconds);
      EXPECT_GE(a.delay_seconds, 0.0);
      EXPECT_LE(a.delay_seconds, 1.5);
    }
  }
}

TEST(TransmitUpdateTest, CleanChannelAlwaysDeliversOnce) {
  ChannelFaultConfig config;  // all zeros
  EXPECT_FALSE(config.any());
  const MessageFate fate = TransmitUpdate(config, 1, 0, 0);
  EXPECT_TRUE(fate.delivered);
  EXPECT_EQ(fate.copies, 1);
  EXPECT_DOUBLE_EQ(fate.delay_seconds, 0.0);
}

TEST(InjectCrashesTest, ZeroProbabilityIsNoop) {
  Rng rng(1);
  std::vector<double> times{1.0, 2.0};
  InjectCrashes(0.0, rng, &times);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(InjectCrashesTest, RateApproximatelyHonored) {
  Rng rng(2);
  int crashed = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    std::vector<double> times{1.0};
    InjectCrashes(0.2, rng, &times);
    if (!std::isfinite(times[0])) ++crashed;
  }
  EXPECT_NEAR(static_cast<double>(crashed) / trials, 0.2, 0.02);
}

}  // namespace
}  // namespace fedmp::edge
