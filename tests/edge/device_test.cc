#include "edge/device.h"

#include <gtest/gtest.h>

namespace fedmp::edge {
namespace {

TEST(JetsonModeTest, CapabilityDecreasesWithMode) {
  double prev = 1e18;
  for (int mode = 0; mode <= 3; ++mode) {
    const DeviceProfile p = JetsonTx2Mode(mode);
    EXPECT_LT(p.flops_per_sec, prev) << "mode " << mode;
    prev = p.flops_per_sec;
  }
}

TEST(JetsonModeDeathTest, InvalidModeAborts) {
  EXPECT_DEATH(JetsonTx2Mode(4), "mode must be");
  EXPECT_DEATH(JetsonTx2Mode(-1), "mode must be");
}

TEST(SampleRoundTest, JitterStaysNearNominal) {
  const DeviceProfile p = JetsonTx2Mode(1);
  Rng rng(3);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const DeviceRoundSample s = SampleRound(p, rng);
    EXPECT_GT(s.flops_per_sec, 0.0);
    EXPECT_GT(s.uplink_bytes_per_sec, 0.0);
    sum += s.flops_per_sec;
  }
  EXPECT_NEAR(sum / n / p.flops_per_sec, 1.0, 0.03);
}

TEST(SampleRoundTest, ZeroSigmaIsDeterministic) {
  DeviceProfile p = JetsonTx2Mode(0);
  p.jitter_sigma = 0.0;
  Rng rng(4);
  const DeviceRoundSample s = SampleRound(p, rng);
  EXPECT_DOUBLE_EQ(s.flops_per_sec, p.flops_per_sec);
  EXPECT_DOUBLE_EQ(s.uplink_bytes_per_sec, p.uplink_bytes_per_sec);
}

}  // namespace
}  // namespace fedmp::edge
