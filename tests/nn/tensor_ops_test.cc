#include "nn/tensor_ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/initializers.h"

namespace fedmp::nn {
namespace {

TEST(TensorOpsTest, ElementwiseAlgebra) {
  Tensor a = Tensor::FromData({3}, {1, 2, 3});
  Tensor b = Tensor::FromData({3}, {4, 5, 6});
  EXPECT_EQ(Add(a, b).at(1), 7.0f);
  EXPECT_EQ(Sub(b, a).at(2), 3.0f);
  EXPECT_EQ(Mul(a, b).at(0), 4.0f);
  EXPECT_EQ(Scale(a, 2.0f).at(2), 6.0f);
}

TEST(TensorOpsTest, InPlaceOps) {
  Tensor a = Tensor::FromData({2}, {1, 2});
  Tensor b = Tensor::FromData({2}, {10, 20});
  AxpyInPlace(a, 0.5f, b);
  EXPECT_EQ(a.at(0), 6.0f);
  EXPECT_EQ(a.at(1), 12.0f);
  ScaleInPlace(a, 2.0f);
  EXPECT_EQ(a.at(0), 12.0f);
}

TEST(TensorOpsTest, MatmulSmall) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = Matmul(a, b);
  EXPECT_EQ(c(0, 0), 58.0f);
  EXPECT_EQ(c(0, 1), 64.0f);
  EXPECT_EQ(c(1, 0), 139.0f);
  EXPECT_EQ(c(1, 1), 154.0f);
}

TEST(TensorOpsTest, MatmulTransposedVariantsAgree) {
  Rng rng(3);
  Tensor a({4, 5}), b({5, 6});
  UniformInit(a, -1, 1, rng);
  UniformInit(b, -1, 1, rng);
  Tensor c = Matmul(a, b);
  // C = A @ B == MatmulTransB(A, B^T) == MatmulTransA(A^T, B).
  EXPECT_LT(MaxAbsDiff(c, MatmulTransB(a, Transpose2D(b))), 1e-5);
  EXPECT_LT(MaxAbsDiff(c, MatmulTransA(Transpose2D(a), b)), 1e-5);
}

TEST(TensorOpsTest, Transpose2D) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose2D(a);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t(0, 1), 4.0f);
  EXPECT_EQ(t(2, 0), 3.0f);
}

TEST(TensorOpsTest, Reductions) {
  Tensor a = Tensor::FromData({2, 2}, {1, -2, 3, -4});
  EXPECT_DOUBLE_EQ(Sum(a), -2.0);
  EXPECT_DOUBLE_EQ(MeanValue(a), -0.5);
  EXPECT_DOUBLE_EQ(L1Norm(a), 10.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(a), 1 + 4 + 9 + 16);
  Tensor cs = ColumnSum(a);
  EXPECT_EQ(cs.at(0), 4.0f);
  EXPECT_EQ(cs.at(1), -6.0f);
}

TEST(TensorOpsTest, ArgmaxRows) {
  Tensor a = Tensor::FromData({2, 3}, {0.1f, 0.9f, 0.3f, 2.0f, 1.0f, 0.5f});
  EXPECT_EQ(ArgmaxRows(a), (std::vector<int64_t>{1, 0}));
}

TEST(TensorOpsTest, MaxAbsDiff) {
  Tensor a = Tensor::FromData({2}, {1, 2});
  Tensor b = Tensor::FromData({2}, {1.5f, 1.0f});
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 1.0);
}

TEST(TensorListOpsTest, ListAlgebra) {
  TensorList a{Tensor::FromData({2}, {1, 2}), Tensor::FromData({1}, {3})};
  TensorList b{Tensor::FromData({2}, {4, 5}), Tensor::FromData({1}, {6})};
  EXPECT_TRUE(SameShapes(a, b));
  TensorList sum = AddLists(a, b);
  EXPECT_EQ(sum[0].at(1), 7.0f);
  EXPECT_EQ(sum[1].at(0), 9.0f);
  TensorList diff = SubLists(b, a);
  EXPECT_EQ(diff[0].at(0), 3.0f);
  AxpyLists(a, 2.0f, b);
  EXPECT_EQ(a[1].at(0), 15.0f);
  ScaleLists(a, 0.5f);
  EXPECT_EQ(a[0].at(0), 4.5f);
  EXPECT_EQ(TotalNumel(a), 3);
  EXPECT_GT(SquaredNormList(a), 0.0);
}

TEST(TensorListOpsTest, ShapeMismatchDetected) {
  TensorList a{Tensor({2})};
  TensorList b{Tensor({3})};
  EXPECT_FALSE(SameShapes(a, b));
  TensorList c{Tensor({2}), Tensor({2})};
  EXPECT_FALSE(SameShapes(a, c));
}

TEST(TensorOpsDeathTest, MismatchedAddAborts) {
  Tensor a({2}), b({3});
  EXPECT_DEATH(Add(a, b), "shape mismatch");
}

}  // namespace
}  // namespace fedmp::nn
