// End-to-end learning sanity: small models trained with the library's own
// SGD must actually fit simple data. This is the substrate-level guarantee
// every FL experiment rests on.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/task_zoo.h"
#include "nn/initializers.h"
#include "nn/layers/softmax_xent.h"
#include "nn/metrics.h"
#include "nn/model_builder.h"
#include "nn/sgd.h"

namespace fedmp::nn {
namespace {

// Two Gaussian blobs, linearly separable.
void MakeBlobs(int64_t n, Tensor* x, std::vector<int64_t>* y, Rng& rng) {
  *x = Tensor({n, 2});
  y->resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t label = i % 2;
    const double cx = label == 0 ? -1.0 : 1.0;
    x->at(i * 2) = static_cast<float>(rng.Gaussian(cx, 0.4));
    x->at(i * 2 + 1) = static_cast<float>(rng.Gaussian(-cx, 0.4));
    (*y)[static_cast<size_t>(i)] = label;
  }
}

TEST(TrainingTest, MlpFitsLinearlySeparableBlobs) {
  ModelSpec spec;
  spec.name = "mlp";
  spec.input.kind = ShapeKind::kFeatures;
  spec.input.f = 2;
  spec.num_classes = 2;
  spec.layers = {LayerSpec::Dense(2, 8), LayerSpec::Relu(),
                 LayerSpec::Dense(8, 2)};
  auto model = BuildModelOrDie(spec, 3);

  Rng rng(5);
  Tensor x;
  std::vector<int64_t> y;
  MakeBlobs(64, &x, &y, rng);

  SgdOptions opt;
  opt.learning_rate = 0.2;
  opt.momentum = 0.9;
  Sgd sgd(opt);
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 60; ++step) {
    model->ZeroGrad();
    Tensor grad;
    Tensor logits = model->Forward(x, true);
    const double loss = SoftmaxCrossEntropy(logits, y, &grad);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    model->Backward(grad);
    sgd.Step(model->Params());
  }
  EXPECT_LT(last_loss, first_loss * 0.2);
  EXPECT_GE(Accuracy(model->Forward(x, false), y), 0.95);
}

TEST(TrainingTest, TinyCnnLearnsSyntheticImages) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 11);
  auto model = BuildModelOrDie(task.model, 3);
  Tensor x;
  std::vector<int64_t> y;
  std::vector<int64_t> all(static_cast<size_t>(task.train.size()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = (int64_t)i;
  task.train.Gather(all, &x, &y);

  SgdOptions opt;
  opt.learning_rate = 0.1;
  opt.momentum = 0.9;
  Sgd sgd(opt);
  for (int step = 0; step < 50; ++step) {
    model->ZeroGrad();
    Tensor grad;
    Tensor logits = model->Forward(x, true);
    SoftmaxCrossEntropy(logits, y, &grad);
    model->Backward(grad);
    sgd.Step(model->Params());
  }
  EXPECT_GE(Accuracy(model->Forward(x, false), y), 0.9);
}

TEST(TrainingTest, TinyLstmReducesPerplexityBelowUniform) {
  const data::FlTask task =
      data::MakeLstmPtbTask(data::TaskScale::kTiny, 11);
  auto model = BuildModelOrDie(task.model, 3);
  Tensor windows;
  std::vector<int64_t> unused;
  std::vector<int64_t> all(static_cast<size_t>(task.train.size()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = (int64_t)i;
  task.train.Gather(all, &windows, &unused);
  Tensor inputs;
  std::vector<int64_t> targets;
  data::SplitLmBatch(windows, &inputs, &targets);

  SgdOptions opt;
  opt.learning_rate = 0.5;
  opt.clip_norm = 5.0;
  Sgd sgd(opt);
  double loss = 0.0;
  for (int step = 0; step < 120; ++step) {
    model->ZeroGrad();
    Tensor grad;
    Tensor logits = model->Forward(inputs, true);
    loss = SoftmaxCrossEntropy(logits, targets, &grad);
    model->Backward(grad);
    sgd.Step(model->Params());
  }
  // Uniform prediction has perplexity == vocab size; the Markov structure
  // must be learnable well below that.
  const double vocab = static_cast<double>(task.model.num_classes);
  EXPECT_LT(PerplexityFromLoss(loss), 0.75 * vocab);
}

}  // namespace
}  // namespace fedmp::nn
