#include "nn/model_builder.h"

#include <gtest/gtest.h>

#include "data/task_zoo.h"
#include "nn/initializers.h"

namespace fedmp::nn {
namespace {

TEST(ModelBuilderTest, SameSeedSameWeights) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 1);
  auto a = BuildModelOrDie(task.model, 42);
  auto b = BuildModelOrDie(task.model, 42);
  const TensorList wa = a->GetWeights();
  const TensorList wb = b->GetWeights();
  ASSERT_TRUE(SameShapes(wa, wb));
  for (size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(wa[i], wb[i]), 0.0);
  }
}

TEST(ModelBuilderTest, DifferentSeedDifferentWeights) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 1);
  auto a = BuildModelOrDie(task.model, 1);
  auto b = BuildModelOrDie(task.model, 2);
  EXPECT_GT(MaxAbsDiff(a->GetWeights()[0], b->GetWeights()[0]), 0.0);
}

TEST(ModelBuilderTest, ParamCountMatchesAnalysis) {
  for (const char* name : {"cnn", "alexnet", "vgg", "resnet", "lstm"}) {
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kTiny, 3);
    auto model = BuildModelOrDie(task.model, 9);
    EXPECT_EQ(model->NumParams(), task.model.NumParams()) << name;
  }
}

TEST(ModelBuilderTest, RejectsMalformedSpec) {
  ModelSpec bad;
  bad.input.kind = ShapeKind::kFeatures;
  bad.input.f = 4;
  bad.num_classes = 2;
  bad.layers = {LayerSpec::Dense(5, 2)};  // in_features mismatch
  EXPECT_FALSE(BuildModel(bad, 1).ok());
}

TEST(ModelBuilderTest, ForwardShapesForAllZooModels) {
  for (const char* name : {"cnn", "alexnet", "vgg", "resnet"}) {
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kTiny, 3);
    auto model = BuildModelOrDie(task.model, 9);
    Tensor x({4, task.model.input.c, task.model.input.h,
              task.model.input.w});
    Rng rng(1);
    UniformInit(x, -1, 1, rng);
    Tensor y = model->Forward(x, /*training=*/false);
    EXPECT_EQ(y.shape(),
              (std::vector<int64_t>{4, task.model.num_classes}))
        << name;
  }
}

TEST(ModelBuilderTest, LmForwardShape) {
  const data::FlTask task =
      data::MakeLstmPtbTask(data::TaskScale::kTiny, 3);
  auto model = BuildModelOrDie(task.model, 9);
  const int64_t t = task.model.input.t;
  Tensor ids({2, t});  // token 0 everywhere
  Tensor y = model->Forward(ids, false);
  EXPECT_EQ(y.shape(),
            (std::vector<int64_t>{2 * t, task.model.num_classes}));
}

TEST(ModelBuilderTest, SetWeightsRoundTrips) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 1);
  auto a = BuildModelOrDie(task.model, 1);
  auto b = BuildModelOrDie(task.model, 2);
  b->SetWeights(a->GetWeights());
  const TensorList wa = a->GetWeights();
  const TensorList wb = b->GetWeights();
  for (size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(wa[i], wb[i]), 0.0);
  }
}

TEST(ModelBuilderTest, SummaryMentionsLayers) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 1);
  auto model = BuildModelOrDie(task.model, 1);
  const std::string summary = model->Summary();
  EXPECT_NE(summary.find("Conv2d"), std::string::npos);
  EXPECT_NE(summary.find("total params"), std::string::npos);
}

}  // namespace
}  // namespace fedmp::nn
