#include "nn/sgd.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fedmp::nn {
namespace {

Parameter MakeParam(std::vector<float> w, std::vector<float> g) {
  const int64_t n = static_cast<int64_t>(w.size());
  Parameter p("w", Tensor::FromData({n}, std::move(w)));
  p.grad = Tensor::FromData({n}, std::move(g));
  return p;
}

TEST(SgdTest, PlainStep) {
  Parameter p = MakeParam({1.0f, 2.0f}, {0.5f, -1.0f});
  SgdOptions opt;
  opt.learning_rate = 0.1;
  Sgd sgd(opt);
  sgd.Step({&p});
  EXPECT_FLOAT_EQ(p.value.at(0), 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value.at(1), 2.0f + 0.1f * 1.0f);
}

TEST(SgdTest, WeightDecayAddsL2Gradient) {
  Parameter p = MakeParam({2.0f}, {0.0f});
  SgdOptions opt;
  opt.learning_rate = 0.5;
  opt.weight_decay = 0.1;
  Sgd sgd(opt);
  sgd.Step({&p});
  EXPECT_FLOAT_EQ(p.value.at(0), 2.0f - 0.5f * 0.1f * 2.0f);
}

TEST(SgdTest, MomentumAccumulates) {
  Parameter p = MakeParam({0.0f}, {1.0f});
  SgdOptions opt;
  opt.learning_rate = 1.0;
  opt.momentum = 0.5;
  Sgd sgd(opt);
  sgd.Step({&p});  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value.at(0), -1.0f);
  sgd.Step({&p});  // v=0.5*1+1=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value.at(0), -2.5f);
}

TEST(SgdTest, ProximalTermPullsTowardAnchor) {
  Parameter p = MakeParam({5.0f}, {0.0f});
  SgdOptions opt;
  opt.learning_rate = 1.0;
  opt.proximal_mu = 0.1;
  Sgd sgd(opt);
  sgd.SetProximalAnchor({Tensor::FromData({1}, {1.0f})});
  sgd.Step({&p});
  // grad += mu*(w - anchor) = 0.1*4 = 0.4; w = 5 - 0.4 = 4.6.
  EXPECT_FLOAT_EQ(p.value.at(0), 4.6f);
}

TEST(SgdTest, ProximalInactiveWithoutAnchor) {
  Parameter p = MakeParam({5.0f}, {0.0f});
  SgdOptions opt;
  opt.learning_rate = 1.0;
  opt.proximal_mu = 0.1;
  Sgd sgd(opt);
  sgd.Step({&p});
  EXPECT_FLOAT_EQ(p.value.at(0), 5.0f);
}

TEST(SgdTest, ClipNormScalesLargeGradients) {
  Parameter p = MakeParam({0.0f, 0.0f}, {3.0f, 4.0f});  // norm 5
  SgdOptions opt;
  opt.learning_rate = 1.0;
  opt.clip_norm = 1.0;
  Sgd sgd(opt);
  sgd.Step({&p});
  EXPECT_NEAR(p.value.at(0), -3.0f / 5.0f, 1e-6);
  EXPECT_NEAR(p.value.at(1), -4.0f / 5.0f, 1e-6);
}

TEST(SgdTest, ClipNormLeavesSmallGradients) {
  Parameter p = MakeParam({0.0f}, {0.5f});
  SgdOptions opt;
  opt.learning_rate = 1.0;
  opt.clip_norm = 10.0;
  Sgd sgd(opt);
  sgd.Step({&p});
  EXPECT_FLOAT_EQ(p.value.at(0), -0.5f);
}

TEST(SgdDeathTest, RejectsBadOptions) {
  SgdOptions opt;
  opt.learning_rate = 0.0;
  EXPECT_DEATH(Sgd sgd(opt), "Check failed");
  SgdOptions opt2;
  opt2.momentum = 1.0;
  EXPECT_DEATH(Sgd sgd2(opt2), "Check failed");
}

}  // namespace
}  // namespace fedmp::nn
