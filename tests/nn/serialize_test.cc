#include "nn/serialize.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/dataloader.h"
#include "data/task_zoo.h"
#include "nn/initializers.h"
#include "nn/model_builder.h"

namespace fedmp::nn {
namespace {

TEST(SerializeTest, TensorRoundTrip) {
  Rng rng(1);
  Tensor t({3, 4, 2});
  UniformInit(t, -5, 5, rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteTensor(ss, t).ok());
  auto back = ReadTensor(ss);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shape(), t.shape());
  EXPECT_EQ(MaxAbsDiff(*back, t), 0.0);
}

TEST(SerializeTest, TensorListRoundTrip) {
  Rng rng(2);
  TensorList list{Tensor({2, 2}), Tensor({5}), Tensor({1, 3, 1})};
  for (auto& t : list) UniformInit(t, -1, 1, rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteTensorList(ss, list).ok());
  auto back = ReadTensorList(ss);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(SameShapes(*back, list));
  for (size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff((*back)[i], list[i]), 0.0);
  }
}

TEST(SerializeTest, RejectsGarbage) {
  std::stringstream ss;
  ss << "not a tensor at all";
  EXPECT_FALSE(ReadTensor(ss).ok());
}

TEST(SerializeTest, RejectsTruncatedTensor) {
  Tensor t({100});
  std::stringstream ss;
  ASSERT_TRUE(WriteTensor(ss, t).ok());
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_FALSE(ReadTensor(truncated).ok());
}

TEST(SerializeTest, ModelSpecRoundTripAllTasks) {
  for (const char* name : {"cnn", "alexnet", "vgg", "resnet", "lstm"}) {
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kTiny, 7);
    std::stringstream ss;
    ASSERT_TRUE(WriteModelSpec(ss, task.model).ok());
    auto back = ReadModelSpec(ss);
    ASSERT_TRUE(back.ok()) << name;
    EXPECT_EQ(*back, task.model) << name;
  }
}

TEST(SerializeTest, CheckpointRoundTripThroughFile) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 7);
  auto model = BuildModelOrDie(task.model, 11);
  const std::string path = ::testing::TempDir() + "/ckpt.bin";
  ASSERT_TRUE(SaveCheckpoint(path, task.model, model->GetWeights()).ok());
  auto ckpt = LoadCheckpoint(path);
  ASSERT_TRUE(ckpt.ok());
  EXPECT_EQ(ckpt->spec, task.model);
  const TensorList original = model->GetWeights();
  ASSERT_TRUE(SameShapes(ckpt->weights, original));
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(ckpt->weights[i], original[i]), 0.0);
  }
  // A reloaded checkpoint can be used to rebuild a working model.
  auto rebuilt = BuildModelOrDie(ckpt->spec, 0);
  rebuilt->SetWeights(ckpt->weights);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadCheckpoint("/nonexistent/path/x.bin").ok());
}

// Round-trip property over the whole task zoo: a checkpoint must reload to
// bitwise-equal weights AND a model that is behaviorally identical —
// bit-identical logits on a fixed test batch (the checkpoint carries
// everything the forward pass depends on).
class CheckpointZooTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckpointZooTest, RoundTripPreservesWeightsAndForward) {
  const data::FlTask task =
      data::MakeTaskByName(GetParam(), data::TaskScale::kTiny, 7);
  auto model = BuildModelOrDie(task.model, 11);
  const TensorList original = model->GetWeights();

  const std::string path =
      ::testing::TempDir() + "/zoo_" + std::string(GetParam()) + ".bin";
  ASSERT_TRUE(SaveCheckpoint(path, task.model, original).ok());
  auto ckpt = LoadCheckpoint(path);
  std::remove(path.c_str());
  ASSERT_TRUE(ckpt.ok());

  EXPECT_EQ(ckpt->spec, task.model);
  ASSERT_TRUE(SameShapes(ckpt->weights, original));
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(ckpt->weights[i], original[i]), 0.0)
        << "weight tensor " << i;
  }

  // Same fixed batch through both models.
  data::DataLoader loader(&task.test, /*batch_size=*/8, /*shuffle=*/false,
                          /*seed=*/1);
  Tensor batch;
  std::vector<int64_t> labels;
  loader.NextBatch(&batch, &labels);
  Tensor input = batch;
  if (task.is_language_model) {
    std::vector<int64_t> targets;
    data::SplitLmBatch(batch, &input, &targets);
  }
  auto rebuilt = BuildModelOrDie(ckpt->spec, 0);  // different init seed
  rebuilt->SetWeights(ckpt->weights);
  const Tensor logits = model->Forward(input, /*training=*/false);
  const Tensor relogits = rebuilt->Forward(input, /*training=*/false);
  ASSERT_EQ(logits.shape(), relogits.shape());
  EXPECT_EQ(MaxAbsDiff(logits, relogits), 0.0)
      << "reloaded model computes a different function";
}

INSTANTIATE_TEST_SUITE_P(AllZooTasks, CheckpointZooTest,
                         ::testing::Values("cnn", "alexnet", "vgg", "resnet",
                                           "lstm"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace fedmp::nn
