// Workspace-pool semantics and the pooled-vs-fresh bit-identity contract:
// recycled buffers must never change what a forward/backward pass computes.

#include "nn/workspace.h"

#include <gtest/gtest.h>

#include "data/task_zoo.h"
#include "nn/initializers.h"
#include "nn/model_builder.h"

namespace fedmp::nn {
namespace {

class WorkspaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws::SetEnabled(true);
    ws::ClearThisThread();
  }
  void TearDown() override {
    ws::ClearThisThread();
    ws::SetEnabled(true);
  }
};

TEST_F(WorkspaceTest, AcquireZeroedIsZero) {
  Tensor t = ws::AcquireZeroed({8, 16});
  ASSERT_EQ(t.numel(), 128);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST_F(WorkspaceTest, RecycledBufferIsReusedAndRezeroed) {
  Tensor t = ws::AcquireZeroed({8, 16});
  for (int64_t i = 0; i < t.numel(); ++i) t.data()[i] = 7.0f;  // dirty it
  const float* storage = t.data();
  ws::Recycle(std::move(t));
  EXPECT_GT(ws::ThisThreadBytes(), 0);

  Tensor again = ws::AcquireZeroed({16, 8});  // same numel, new shape
  EXPECT_EQ(again.data(), storage) << "pool should hand back the buffer";
  EXPECT_EQ(again.shape(), (std::vector<int64_t>{16, 8}));
  for (int64_t i = 0; i < again.numel(); ++i) {
    ASSERT_EQ(again.data()[i], 0.0f) << "recycled buffer not re-zeroed";
  }
  EXPECT_EQ(ws::ThisThreadBytes(), 0);
}

TEST_F(WorkspaceTest, TinyTensorsAreNotPooled) {
  Tensor t = ws::AcquireZeroed({2, 3});  // below the pooling floor
  ws::Recycle(std::move(t));
  EXPECT_EQ(ws::ThisThreadBytes(), 0);
}

TEST_F(WorkspaceTest, FreeListDepthIsBounded) {
  // Paths that recycle more buffers of a size than they ever re-acquire
  // must not grow that free list without bound (the 10k-worker scale run
  // parked ~140 MB of dead small buffers before the depth cap). Park far
  // more same-numel buffers than any layer holds live; the parked bytes
  // have to plateau well below the uncapped total.
  const int64_t numel = 256;
  const int parked = 4096;
  for (int i = 0; i < parked; ++i) {
    ws::Recycle(Tensor({numel}));
  }
  const int64_t uncapped =
      static_cast<int64_t>(parked) * numel * static_cast<int64_t>(sizeof(float));
  EXPECT_LT(ws::ThisThreadBytes(), uncapped / 8)
      << "free-list depth cap is not bounding parked memory";
  EXPECT_GT(ws::ThisThreadBytes(), 0);
}

TEST_F(WorkspaceTest, DisabledPoolNeverParksBuffers) {
  ws::SetEnabled(false);
  Tensor t = ws::AcquireZeroed({32, 32});
  ws::Recycle(std::move(t));
  EXPECT_EQ(ws::ThisThreadBytes(), 0);
}

TEST_F(WorkspaceTest, RecycleOfMovedFromTensorIsSafe) {
  Tensor t = ws::AcquireZeroed({8, 16});
  Tensor moved = std::move(t);
  ws::Recycle(std::move(t));  // no-op, must not crash
  ws::Recycle(std::move(moved));
  EXPECT_GT(ws::ThisThreadBytes(), 0);
}

// Runs three train iterations (forward, backward from a fixed upstream
// gradient) and returns the last iteration's logits and parameter grads.
// Multiple iterations matter: from the second one on, a pooled run acquires
// buffers dirtied by the first, which is exactly the case the
// zero/overwrite contract must survive.
struct PassResult {
  Tensor logits;
  std::vector<Tensor> grads;
};

PassResult RunPasses(const data::FlTask& task, bool pooled) {
  ws::SetEnabled(pooled);
  ws::ClearThisThread();
  const nn::ModelSpec& spec = task.model;
  auto model = BuildModelOrDie(spec, 11);
  Rng rng(5);
  PassResult out;
  for (int it = 0; it < 3; ++it) {
    Tensor x;
    if (task.is_language_model) {
      x = Tensor({4, spec.input.t});  // all-zero token ids are valid
    } else {
      x = Tensor({4, spec.input.c, spec.input.h, spec.input.w});
      UniformInit(x, -1, 1, rng);
    }
    model->ZeroGrad();
    Tensor logits = model->Forward(x, /*training=*/true);
    Tensor grad(logits.shape());
    UniformInit(grad, -0.1, 0.1, rng);
    model->Backward(grad);
    if (it == 2) {
      out.logits = logits;
      for (Parameter* p : model->Params()) out.grads.push_back(p->grad);
    }
  }
  return out;
}

TEST_F(WorkspaceTest, PooledForwardBackwardBitIdenticalToFresh) {
  for (const char* name : {"cnn", "resnet", "lstm"}) {
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kTiny, 5);
    const PassResult fresh = RunPasses(task, /*pooled=*/false);
    const PassResult pooled = RunPasses(task, /*pooled=*/true);
    ASSERT_TRUE(fresh.logits.SameShape(pooled.logits)) << name;
    EXPECT_EQ(MaxAbsDiff(fresh.logits, pooled.logits), 0.0) << name;
    ASSERT_EQ(fresh.grads.size(), pooled.grads.size()) << name;
    for (size_t i = 0; i < fresh.grads.size(); ++i) {
      EXPECT_EQ(MaxAbsDiff(fresh.grads[i], pooled.grads[i]), 0.0)
          << name << " grad " << i;
    }
  }
}

}  // namespace
}  // namespace fedmp::nn
