#include "nn/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fedmp::nn {
namespace {

TEST(AccuracyTest, CountsArgmaxMatches) {
  Tensor logits = Tensor::FromData(
      {3, 2}, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, {1, 1, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, {1, 0, 1}), 0.0);
}

TEST(PerplexityTest, ExpOfLoss) {
  EXPECT_DOUBLE_EQ(PerplexityFromLoss(0.0), 1.0);
  EXPECT_NEAR(PerplexityFromLoss(std::log(50.0)), 50.0, 1e-9);
}

TEST(ConfusionMatrixTest, TalliesPredictedByActual) {
  Tensor logits = Tensor::FromData(
      {3, 2}, {0.9f, 0.1f, 0.2f, 0.8f, 0.9f, 0.1f});
  // preds = {0, 1, 0}; labels = {0, 0, 1}.
  const std::vector<int64_t> mat = ConfusionMatrix(logits, {0, 0, 1}, 2);
  // Row-major [pred][actual].
  EXPECT_EQ(mat[0 * 2 + 0], 1);
  EXPECT_EQ(mat[0 * 2 + 1], 1);
  EXPECT_EQ(mat[1 * 2 + 0], 1);
  EXPECT_EQ(mat[1 * 2 + 1], 0);
}

}  // namespace
}  // namespace fedmp::nn
