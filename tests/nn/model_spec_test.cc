#include "nn/model_spec.h"

#include <gtest/gtest.h>

#include "data/task_zoo.h"

namespace fedmp::nn {
namespace {

ModelSpec SmallCnn() {
  ModelSpec spec;
  spec.name = "small";
  spec.input.kind = ShapeKind::kImage;
  spec.input.c = 1;
  spec.input.h = spec.input.w = 8;
  spec.num_classes = 4;
  spec.layers = {
      LayerSpec::Conv(1, 2, 3, 1, 1), LayerSpec::Relu(),
      LayerSpec::MaxPool(2, 2),       LayerSpec::Flat(),
      LayerSpec::Dense(2 * 4 * 4, 4),
  };
  return spec;
}

TEST(ModelSpecTest, AnalyzeComputesShapesParamsFlops) {
  ModelAnalysis a;
  ASSERT_TRUE(SmallCnn().Analyze(&a).ok());
  ASSERT_EQ(a.layers.size(), 5u);
  // Conv output 2x8x8.
  EXPECT_EQ(a.layers[0].output.c, 2);
  EXPECT_EQ(a.layers[0].output.h, 8);
  // Pool halves spatial dims.
  EXPECT_EQ(a.layers[2].output.h, 4);
  // Flatten: 2*4*4 = 32 features.
  EXPECT_EQ(a.layers[3].output.f, 32);
  // Params: conv 2*1*9+2 = 20; dense 32*4+4 = 132.
  EXPECT_EQ(a.total_params, 20 + 132);
  // Conv flops: 2*9*2*64 + 2*64 = 2432.
  EXPECT_EQ(a.layers[0].forward_flops, 2 * 9 * 2 * 64 + 2 * 64);
  EXPECT_EQ(a.ParamBytes(), (20 + 132) * 4);
}

TEST(ModelSpecTest, RejectsChannelMismatch) {
  ModelSpec spec = SmallCnn();
  spec.layers[0] = LayerSpec::Conv(3, 2, 3, 1, 1);  // input has 1 channel
  ModelAnalysis a;
  EXPECT_FALSE(spec.Analyze(&a).ok());
}

TEST(ModelSpecTest, RejectsWrongOutputWidth) {
  ModelSpec spec = SmallCnn();
  spec.num_classes = 7;
  ModelAnalysis a;
  EXPECT_FALSE(spec.Analyze(&a).ok());
}

TEST(ModelSpecTest, RejectsLinearOnImage) {
  ModelSpec spec = SmallCnn();
  spec.layers.erase(spec.layers.begin() + 3);  // drop Flatten
  ModelAnalysis a;
  EXPECT_FALSE(spec.Analyze(&a).ok());
}

TEST(ModelSpecTest, EqualityIsStructural) {
  EXPECT_EQ(SmallCnn(), SmallCnn());
  ModelSpec other = SmallCnn();
  other.layers[0].out_channels = 3;
  EXPECT_FALSE(SmallCnn() == other);
}

TEST(ModelSpecTest, LayerTypeNamesUnique) {
  EXPECT_STREQ(LayerTypeName(LayerType::kConv2d), "Conv2d");
  EXPECT_STREQ(LayerTypeName(LayerType::kLstm), "Lstm");
}

// Every task-zoo spec must analyze successfully at both scales — this is
// the guard that keeps the zoo's hand-computed Flatten dimensions honest.
class TaskZooSpecTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(TaskZooSpecTest, BenchScaleSpecValid) {
  const data::FlTask task =
      data::MakeTaskByName(GetParam(), data::TaskScale::kBench, 42);
  ModelAnalysis a;
  EXPECT_TRUE(task.model.Analyze(&a).ok());
  EXPECT_GT(a.total_params, 0);
  EXPECT_GT(a.total_forward_flops, 0);
}

TEST_P(TaskZooSpecTest, TinyScaleSpecValid) {
  const data::FlTask task =
      data::MakeTaskByName(GetParam(), data::TaskScale::kTiny, 42);
  ModelAnalysis a;
  EXPECT_TRUE(task.model.Analyze(&a).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllTasks, TaskZooSpecTest,
    ::testing::Values("cnn", "alexnet", "vgg", "resnet", "lstm"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(ModelSpecTest, LstmSpecAnalyzes) {
  ModelSpec spec;
  spec.name = "lm";
  spec.input.kind = ShapeKind::kTokens;
  spec.input.t = 6;
  spec.num_classes = 10;
  spec.layers = {
      LayerSpec::Embed(10, 4),
      LayerSpec::LstmLayer(4, 5),
      LayerSpec::TimeFlat(),
      LayerSpec::Dense(5, 10),
  };
  ModelAnalysis a;
  ASSERT_TRUE(spec.Analyze(&a).ok());
  // Embedding 10*4=40; LSTM 4*5*(4+5)+4*5=200; Dense 5*10+10=60.
  EXPECT_EQ(a.total_params, 40 + 200 + 60);
}

}  // namespace
}  // namespace fedmp::nn
