#include "nn/layers/conv2d.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/initializers.h"
#include "nn/tensor_ops.h"

namespace fedmp::nn {
namespace {

TEST(ConvOutSizeTest, MatchesFormula) {
  EXPECT_EQ(Conv2d::OutSize(14, 5, 1, 2), 14);  // same-padding
  EXPECT_EQ(Conv2d::OutSize(14, 2, 2, 0), 7);   // pool-style
  EXPECT_EQ(Conv2d::OutSize(7, 3, 2, 0), 3);
  EXPECT_EQ(Conv2d::OutSize(5, 5, 1, 0), 1);
}

TEST(Im2ColTest, IdentityKernelReproducesImage) {
  // 1x1 kernel, stride 1: columns are exactly the pixels.
  Rng rng(1);
  Tensor x({2, 3, 4, 4});
  UniformInit(x, -1, 1, rng);
  Tensor cols = Im2Col(x, 1, 1, 0);
  EXPECT_EQ(cols.dim(0), 2 * 4 * 4);
  EXPECT_EQ(cols.dim(1), 3);
  // Pixel (b=1, c=2, y=3, x=0) lands at row (1*4+3)*4+0, col 2.
  EXPECT_EQ(cols(static_cast<int64_t>((1 * 4 + 3) * 4 + 0), 2),
            x(1, 2, 3, 0));
}

TEST(Im2ColTest, PaddingProducesZeros) {
  Tensor x = Tensor::Full({1, 1, 2, 2}, 1.0f);
  Tensor cols = Im2Col(x, 3, 1, 1);
  // First output position (0,0) reads the top-left 3x3 patch whose first
  // row/column is padding.
  EXPECT_EQ(cols(0, 0), 0.0f);  // (-1,-1)
  EXPECT_EQ(cols(0, 4), 1.0f);  // center (0,0)
}

TEST(Col2ImTest, AdjointOfIm2Col) {
  // <Im2Col(x), y> == <x, Col2Im(y)> for all x, y (adjoint identity) — the
  // exact property conv backward relies on.
  Rng rng(2);
  const int64_t b = 2, c = 2, h = 5, w = 5, k = 3, s = 2, p = 1;
  Tensor x({b, c, h, w});
  UniformInit(x, -1, 1, rng);
  Tensor cols = Im2Col(x, k, s, p);
  Tensor y(cols.shape());
  UniformInit(y, -1, 1, rng);
  double lhs = 0.0;
  for (int64_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols.at(i)) * y.at(i);
  }
  Tensor back = Col2Im(y, b, c, h, w, k, s, p);
  double rhs = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.at(i)) * back.at(i);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(ConvForwardTest, MatchesDirectConvolution) {
  Rng rng(3);
  Conv2d conv(2, 3, 3, 1, 1, true, rng);
  Tensor x({1, 2, 4, 4});
  UniformInit(x, -1, 1, rng);
  Tensor y = conv.Forward(x, true);
  ASSERT_EQ(y.shape(), (std::vector<int64_t>{1, 3, 4, 4}));

  // Direct (naive) convolution at one output coordinate.
  const Tensor& wt = conv.Params()[0]->value;
  const Tensor& bias = conv.Params()[1]->value;
  const int64_t oc = 1, oy = 2, ox = 1;
  double acc = bias.at(oc);
  for (int64_t ic = 0; ic < 2; ++ic) {
    for (int64_t ky = 0; ky < 3; ++ky) {
      for (int64_t kx = 0; kx < 3; ++kx) {
        const int64_t iy = oy + ky - 1, ix = ox + kx - 1;
        if (iy < 0 || iy >= 4 || ix < 0 || ix >= 4) continue;
        acc += static_cast<double>(wt(oc, ic, ky, kx)) * x(0, ic, iy, ix);
      }
    }
  }
  EXPECT_NEAR(y(0, oc, oy, ox), acc, 1e-4);
}

TEST(ConvForwardTest, BiasBroadcastsPerChannel) {
  Rng rng(4);
  Conv2d conv(1, 2, 1, 1, 0, true, rng);
  conv.Params()[0]->value.SetZero();
  conv.Params()[1]->value.at(0) = 1.5f;
  conv.Params()[1]->value.at(1) = -2.0f;
  Tensor x({1, 1, 2, 2});
  Tensor y = conv.Forward(x, true);
  EXPECT_EQ(y(0, 0, 1, 1), 1.5f);
  EXPECT_EQ(y(0, 1, 0, 0), -2.0f);
}

TEST(ConvTest, ParamCountMatchesSpecFormula) {
  Rng rng(5);
  Conv2d conv(3, 8, 5, 1, 2, true, rng);
  int64_t total = 0;
  for (Parameter* p : conv.Params()) total += p->value.numel();
  EXPECT_EQ(total, 8 * 3 * 5 * 5 + 8);
}

}  // namespace
}  // namespace fedmp::nn
