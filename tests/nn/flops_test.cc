#include "nn/flops.h"

#include <gtest/gtest.h>

#include "nn/model_spec.h"

namespace fedmp::nn {
namespace {

TEST(PlannedLoaderRowsTest, PartialTailBatchThenWrap) {
  // 10 rows, batch 4: the loader delivers 4, 4, 2 and wraps to cursor 0.
  EXPECT_EQ(PlannedLoaderRows(10, 4, 0, 3), 10);
  // A fourth iteration restarts from the front.
  EXPECT_EQ(PlannedLoaderRows(10, 4, 0, 4), 14);
}

TEST(PlannedLoaderRowsTest, ResumesFromCarriedCursor) {
  // cursor 8 of 10: first batch is the 2-row tail, then a full 4.
  EXPECT_EQ(PlannedLoaderRows(10, 4, 8, 2), 6);
  // Divisible case: every batch is full regardless of cursor.
  EXPECT_EQ(PlannedLoaderRows(12, 4, 4, 5), 20);
}

TEST(PlannedLoaderRowsTest, DegenerateInputsYieldZero) {
  EXPECT_EQ(PlannedLoaderRows(0, 4, 0, 3), 0);
  EXPECT_EQ(PlannedLoaderRows(10, 4, 0, 0), 0);
}

TEST(AnalyzeTrainingMacsTest, LinearChainMatchesHandCount) {
  ModelSpec spec;
  spec.name = "mlp";
  spec.input.kind = ShapeKind::kFeatures;
  spec.input.f = 12;
  spec.num_classes = 3;
  spec.layers = {LayerSpec::Dense(12, 8), LayerSpec::Relu(),
                 LayerSpec::Dense(8, 3)};

  MacAnalysis macs;
  ASSERT_TRUE(AnalyzeTrainingMacs(spec, &macs).ok());
  ASSERT_EQ(macs.layers.size(), 3u);
  EXPECT_EQ(macs.layers[0].forward, 12 * 8);
  EXPECT_EQ(macs.layers[0].backward, 2 * 12 * 8);  // dW + dX
  EXPECT_EQ(macs.layers[1].forward, 0);            // ReLU is elementwise
  EXPECT_EQ(macs.layers[2].forward, 8 * 3);
  EXPECT_EQ(macs.forward_per_sample, 12 * 8 + 8 * 3);
  EXPECT_EQ(macs.backward_per_sample, 2 * (12 * 8 + 8 * 3));
  EXPECT_EQ(macs.per_sample(), 3 * (12 * 8 + 8 * 3));
  EXPECT_EQ(TrainingMacsForRows(macs, 10), 30 * (12 * 8 + 8 * 3));
}

TEST(AnalyzeTrainingMacsTest, ConvBackwardIsTwiceForward) {
  ModelSpec spec;
  spec.name = "conv";
  spec.input.kind = ShapeKind::kImage;
  spec.input.c = 1;
  spec.input.h = 8;
  spec.input.w = 8;
  spec.num_classes = 2;
  spec.layers = {LayerSpec::Conv(1, 4, 3, 1, 1), LayerSpec::Relu(),
                 LayerSpec::Flat(), LayerSpec::Dense(4 * 8 * 8, 2)};

  MacAnalysis macs;
  ASSERT_TRUE(AnalyzeTrainingMacs(spec, &macs).ok());
  // im2col matmul: OH*OW rows, patch = in_c * k * k.
  EXPECT_EQ(macs.layers[0].forward, 8 * 8 * 4 * (1 * 3 * 3));
  EXPECT_EQ(macs.layers[0].backward, 2 * macs.layers[0].forward);
  EXPECT_EQ(macs.backward_per_sample, 2 * macs.forward_per_sample);
}

TEST(AnalyzeTrainingMacsTest, LstmBackwardSkipsInitialRecurrentGrad) {
  const int64_t T = 5, In = 6, H = 4;
  ModelSpec spec;
  spec.name = "lstm";
  spec.input.kind = ShapeKind::kTokens;
  spec.input.t = T;
  spec.num_classes = 7;
  spec.layers = {LayerSpec::Embed(7, In), LayerSpec::LstmLayer(In, H),
                 LayerSpec::TimeFlat(), LayerSpec::Dense(H, 7)};

  MacAnalysis macs;
  ASSERT_TRUE(AnalyzeTrainingMacs(spec, &macs).ok());
  EXPECT_EQ(macs.layers[0].forward, 0);  // embedding is a gather
  EXPECT_EQ(macs.layers[1].forward, T * 4 * H * (In + H));
  // dWx+dx every step, dWh only for t>0 (h_prev is the zero state at t=0),
  // dh_next (Matmul with Wh) every step: 2*T on the input path, (2T-1) on
  // the recurrent path.
  EXPECT_EQ(macs.layers[1].backward,
            2 * T * 4 * H * In + (2 * T - 1) * 4 * H * H);
  // The head after TimeFlatten sees T rows per sample.
  EXPECT_EQ(macs.layers[3].forward, T * H * 7);
  EXPECT_EQ(macs.layers[3].backward, 2 * T * H * 7);
}

TEST(AnalyzeTrainingMacsTest, MalformedSpecReturnsError) {
  ModelSpec spec;
  spec.name = "broken";
  spec.input.kind = ShapeKind::kFeatures;
  spec.input.f = 4;
  spec.layers = {LayerSpec::Dense(5, 3)};  // width mismatch
  MacAnalysis macs;
  EXPECT_FALSE(AnalyzeTrainingMacs(spec, &macs).ok());
}

}  // namespace
}  // namespace fedmp::nn
