#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace fedmp::nn {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 2.5f);
  t.Fill(-1.0f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), -1.0f);
}

TEST(TensorTest, FromDataRowMajorIndexing) {
  Tensor t = Tensor::FromData({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t(0, 0), 0.0f);
  EXPECT_EQ(t(0, 2), 2.0f);
  EXPECT_EQ(t(1, 0), 3.0f);
  EXPECT_EQ(t(1, 2), 5.0f);
}

TEST(TensorTest, FourDimIndexing) {
  Tensor t({2, 3, 4, 5});
  t(1, 2, 3, 4) = 7.0f;
  // Flat index of (1,2,3,4) in [2,3,4,5] row-major.
  EXPECT_EQ(t.at(((1 * 3 + 2) * 4 + 3) * 5 + 4), 7.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromData({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r(0, 1), 1.0f);
  EXPECT_EQ(r(2, 1), 5.0f);
}

TEST(TensorTest, ReshapeInfersDimension) {
  Tensor t({4, 6});
  EXPECT_EQ(t.Reshape({2, -1}).dim(1), 12);
  EXPECT_EQ(t.Reshape({-1}).dim(0), 24);
}

TEST(TensorTest, SameShape) {
  EXPECT_TRUE(Tensor({2, 3}).SameShape(Tensor({2, 3})));
  EXPECT_FALSE(Tensor({2, 3}).SameShape(Tensor({3, 2})));
  EXPECT_FALSE(Tensor({2, 3}).SameShape(Tensor({6})));
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).ShapeString(), "[2, 3]");
  EXPECT_EQ(Tensor().ShapeString(), "[]");
}

TEST(TensorTest, EmptyTensor) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
}

TEST(TensorDeathTest, OutOfBoundsAccessAborts) {
  Tensor t({2, 2});
  EXPECT_DEATH(t.at(4), "Check failed");
  EXPECT_DEATH(t(2, 0), "Check failed");
}

TEST(TensorDeathTest, BadReshapeAborts) {
  Tensor t({2, 3});
  EXPECT_DEATH(t.Reshape({4, 2}), "Check failed");
}

}  // namespace
}  // namespace fedmp::nn
