#include "nn/layers/lstm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/initializers.h"
#include "nn/layers/embedding.h"
#include "nn/tensor_ops.h"

namespace fedmp::nn {
namespace {

TEST(LstmTest, OutputShape) {
  Rng rng(1);
  Lstm lstm(3, 5, rng);
  Tensor x({2, 7, 3});
  Tensor y = lstm.Forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 7, 5}));
}

TEST(LstmTest, ZeroInputGivesBoundedOutput) {
  Rng rng(2);
  Lstm lstm(2, 4, rng);
  Tensor x({1, 6, 2});
  Tensor y = lstm.Forward(x, true);
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y.at(i), -1.0f);  // |h| <= |tanh(c)| <= 1
    EXPECT_LE(y.at(i), 1.0f);
  }
}

TEST(LstmTest, DeterministicGivenSeed) {
  Rng rng_a(7), rng_b(7), rng_x(9);
  Lstm a(3, 4, rng_a), b(3, 4, rng_b);
  Tensor x({2, 5, 3});
  UniformInit(x, -1, 1, rng_x);
  EXPECT_EQ(MaxAbsDiff(a.Forward(x, true), b.Forward(x, true)), 0.0);
}

TEST(LstmTest, StatePropagatesAcrossTime) {
  // Changing the input at t=0 must change the output at the last step.
  Rng rng(3);
  Lstm lstm(2, 4, rng);
  Tensor x({1, 6, 2});
  UniformInit(x, -1, 1, rng);
  Tensor y1 = lstm.Forward(x, true);
  x.at(0) += 2.0f;
  Tensor y2 = lstm.Forward(x, true);
  // y is [1, 6, 4]; compare the final timestep via flat indexing.
  double last_step_diff = 0.0;
  for (int64_t j = 0; j < 4; ++j) {
    last_step_diff +=
        std::fabs(y1.at(5 * 4 + j) - y2.at(5 * 4 + j));
  }
  EXPECT_GT(last_step_diff, 1e-6);
}

TEST(LstmTest, ForgetGateBiasInitializedToOne) {
  Rng rng(4);
  Lstm lstm(2, 3, rng);
  const Tensor& b = lstm.Params()[2]->value;
  for (int64_t h = 0; h < 3; ++h) {
    EXPECT_EQ(b.at(h), 0.0f);          // input gate
    EXPECT_EQ(b.at(3 + h), 1.0f);      // forget gate
    EXPECT_EQ(b.at(2 * 3 + h), 0.0f);  // cell gate
    EXPECT_EQ(b.at(3 * 3 + h), 0.0f);  // output gate
  }
}

TEST(LstmTest, ParamShapes) {
  Rng rng(5);
  Lstm lstm(6, 8, rng);
  auto params = lstm.Params();
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0]->value.shape(), (std::vector<int64_t>{32, 6}));
  EXPECT_EQ(params[1]->value.shape(), (std::vector<int64_t>{32, 8}));
  EXPECT_EQ(params[2]->value.shape(), (std::vector<int64_t>{32}));
}

TEST(EmbeddingTest, LooksUpRows) {
  Rng rng(6);
  Embedding embed(5, 3, rng);
  Tensor ids = Tensor::FromData({1, 2}, {2.0f, 4.0f});
  Tensor y = embed.Forward(ids, true);
  ASSERT_EQ(y.shape(), (std::vector<int64_t>{1, 2, 3}));
  const Tensor& table = embed.Params()[0]->value;
  for (int64_t e = 0; e < 3; ++e) {
    EXPECT_EQ(y.at(e), table(2, e));
    EXPECT_EQ(y.at(3 + e), table(4, e));
  }
}

TEST(EmbeddingTest, BackwardAccumulatesIntoUsedRowsOnly) {
  Rng rng(7);
  Embedding embed(4, 2, rng);
  Tensor ids = Tensor::FromData({1, 2}, {1.0f, 1.0f});
  embed.Forward(ids, true);
  Tensor grad = Tensor::Full({1, 2, 2}, 1.0f);
  embed.Backward(grad);
  const Tensor& table_grad = embed.Params()[0]->grad;
  EXPECT_EQ(table_grad(0, 0), 0.0f);
  EXPECT_EQ(table_grad(1, 0), 2.0f);  // used twice
  EXPECT_EQ(table_grad(3, 1), 0.0f);
}

TEST(EmbeddingDeathTest, OutOfVocabAborts) {
  Rng rng(8);
  Embedding embed(4, 2, rng);
  Tensor ids = Tensor::FromData({1, 1}, {9.0f});
  EXPECT_DEATH(embed.Forward(ids, true), "out of vocab");
}

}  // namespace
}  // namespace fedmp::nn
