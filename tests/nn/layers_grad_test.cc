// Finite-difference gradient checks for every layer type, as a
// parameterized suite: each parameter describes a layer factory plus an
// input shape; the shared test body verifies analytic vs numeric gradients
// for the input and every parameter tensor.

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/gradient_check.h"
#include "nn/initializers.h"
#include "nn/layers/activations.h"
#include "nn/layers/batchnorm.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/embedding.h"
#include "nn/layers/flatten.h"
#include "nn/layers/linear.h"
#include "nn/layers/lstm.h"
#include "nn/layers/pool.h"
#include "nn/layers/residual_block.h"
#include "nn/layers/softmax_xent.h"

namespace fedmp::nn {
namespace {

struct GradCase {
  std::string name;
  std::function<std::unique_ptr<Layer>(Rng&)> make_layer;
  std::vector<int64_t> input_shape;
  double tolerance = 5e-2;
};

class LayerGradTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(LayerGradTest, AnalyticMatchesNumeric) {
  const GradCase& c = GetParam();
  Rng rng(99);
  std::unique_ptr<Layer> layer = c.make_layer(rng);
  Tensor input(c.input_shape);
  UniformInit(input, -1.0, 1.0, rng);
  const GradCheckResult result =
      CheckLayerGradients(*layer, input, /*training=*/true,
                          /*epsilon=*/1e-3, c.tolerance);
  EXPECT_TRUE(result.passed)
      << c.name << ": " << result.detail
      << " (max rel err " << result.max_rel_error << ")";
}

std::vector<GradCase> AllCases() {
  std::vector<GradCase> cases;
  cases.push_back({"linear",
                   [](Rng& rng) {
                     return std::make_unique<Linear>(5, 4, true, rng);
                   },
                   {3, 5}});
  cases.push_back({"linear_no_bias",
                   [](Rng& rng) {
                     return std::make_unique<Linear>(4, 6, false, rng);
                   },
                   {2, 4}});
  cases.push_back({"conv_basic",
                   [](Rng& rng) {
                     return std::make_unique<Conv2d>(2, 3, 3, 1, 1, true,
                                                     rng);
                   },
                   {2, 2, 5, 5}});
  cases.push_back({"conv_strided_no_pad",
                   [](Rng& rng) {
                     return std::make_unique<Conv2d>(1, 2, 3, 2, 0, false,
                                                     rng);
                   },
                   {2, 1, 7, 7}});
  cases.push_back({"conv_5x5_pad2",
                   [](Rng& rng) {
                     return std::make_unique<Conv2d>(1, 2, 5, 1, 2, true,
                                                     rng);
                   },
                   {1, 1, 6, 6}});
  cases.push_back({"batchnorm",
                   [](Rng&) { return std::make_unique<BatchNorm2d>(3); },
                   {4, 3, 3, 3},
                   8e-2});
  cases.push_back({"relu",
                   [](Rng&) { return std::make_unique<ReLU>(); },
                   {3, 7}});
  cases.push_back({"tanh",
                   [](Rng&) { return std::make_unique<Tanh>(); },
                   {3, 7}});
  cases.push_back({"maxpool",
                   [](Rng&) { return std::make_unique<MaxPool2d>(2, 2); },
                   {2, 2, 6, 6}});
  cases.push_back({"global_avg_pool",
                   [](Rng&) { return std::make_unique<GlobalAvgPool>(); },
                   {2, 3, 4, 4}});
  cases.push_back({"flatten",
                   [](Rng&) { return std::make_unique<Flatten>(); },
                   {2, 2, 3, 3}});
  cases.push_back({"residual_block",
                   [](Rng& rng) {
                     return std::make_unique<ResidualBlock>(3, 2, rng);
                   },
                   {2, 3, 4, 4},
                   1e-1});
  cases.push_back({"lstm",
                   [](Rng& rng) {
                     return std::make_unique<Lstm>(3, 4, rng);
                   },
                   {2, 5, 3},
                   1.2e-1});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, LayerGradTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

// Randomized gradient-check fuzz: random shapes and hyper-parameters for
// the four layer types with non-trivial backward passes, all derived from
// one fixed master seed so a failure reproduces exactly. Shapes stay tiny —
// finite differences are O(params * forward).
int64_t RandIn(Rng& rng, int64_t lo, int64_t hi) {  // inclusive
  return lo + static_cast<int64_t>(rng.NextIndex(
                  static_cast<uint64_t>(hi - lo + 1)));
}

std::vector<GradCase> FuzzCases() {
  Rng master(0xF022ED5EEDULL);
  std::vector<GradCase> cases;
  for (int v = 0; v < 3; ++v) {
    const int64_t in_ch = RandIn(master, 1, 2);
    const int64_t out_ch = RandIn(master, 1, 3);
    const int64_t k = RandIn(master, 0, 1) == 0 ? 1 : 3;
    const int64_t stride = RandIn(master, 1, 2);
    const int64_t pad = RandIn(master, 0, k / 2);
    const bool bias = RandIn(master, 0, 1) == 1;
    const int64_t hw = RandIn(master, 4, 6);
    const uint64_t seed = master.NextU64();
    cases.push_back({"fuzz_conv_v" + std::to_string(v),
                     [=](Rng&) {
                       Rng layer_rng(seed);
                       return std::make_unique<Conv2d>(in_ch, out_ch, k,
                                                       stride, pad, bias,
                                                       layer_rng);
                     },
                     {RandIn(master, 1, 2), in_ch, hw, hw}});
  }
  for (int v = 0; v < 3; ++v) {
    const int64_t input = RandIn(master, 2, 4);
    const int64_t hidden = RandIn(master, 2, 4);
    const uint64_t seed = master.NextU64();
    cases.push_back({"fuzz_lstm_v" + std::to_string(v),
                     [=](Rng&) {
                       Rng layer_rng(seed);
                       return std::make_unique<Lstm>(input, hidden,
                                                     layer_rng);
                     },
                     {RandIn(master, 1, 2), RandIn(master, 2, 4), input},
                     1.2e-1});
  }
  for (int v = 0; v < 3; ++v) {
    const int64_t channels = RandIn(master, 1, 3);
    cases.push_back({"fuzz_batchnorm_v" + std::to_string(v),
                     [=](Rng&) {
                       return std::make_unique<BatchNorm2d>(channels);
                     },
                     {RandIn(master, 2, 4), channels, RandIn(master, 2, 3),
                      RandIn(master, 2, 3)},
                     8e-2});
  }
  // The residual block couples batchnorm statistics with ReLU kinks, which
  // makes finite differences ill-conditioned at degenerate shapes (batch 1,
  // single mid channel produce near-zero gamma gradients). Fuzz it over
  // initialization seeds at the well-conditioned shape instead.
  for (int v = 0; v < 3; ++v) {
    const uint64_t seed = master.NextU64();
    cases.push_back({"fuzz_residual_v" + std::to_string(v),
                     [=](Rng&) {
                       Rng layer_rng(seed);
                       return std::make_unique<ResidualBlock>(3, 2,
                                                              layer_rng);
                     },
                     {2, 3, 4, 4},
                     1e-1});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    FuzzedLayers, LayerGradTest, ::testing::ValuesIn(FuzzCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

// Loss heads are checked directly (they are not Layers).
TEST(SoftmaxXentGradTest, AnalyticMatchesNumeric) {
  Rng rng(5);
  Tensor logits({4, 3});
  UniformInit(logits, -2.0, 2.0, rng);
  const std::vector<int64_t> labels{0, 2, 1, 2};
  Tensor grad;
  SoftmaxCrossEntropy(logits, labels, &grad);
  const double eps = 1e-3;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits.at(i);
    logits.at(i) = saved + static_cast<float>(eps);
    const double lp = SoftmaxCrossEntropy(logits, labels, nullptr);
    logits.at(i) = saved - static_cast<float>(eps);
    const double lm = SoftmaxCrossEntropy(logits, labels, nullptr);
    logits.at(i) = saved;
    EXPECT_NEAR(grad.at(i), (lp - lm) / (2 * eps), 2e-3);
  }
}

TEST(MseGradTest, AnalyticMatchesNumeric) {
  Rng rng(6);
  Tensor pred({3, 2}), target({3, 2});
  UniformInit(pred, -1, 1, rng);
  UniformInit(target, -1, 1, rng);
  Tensor grad;
  MseLoss(pred, target, &grad);
  const double eps = 1e-3;
  for (int64_t i = 0; i < pred.numel(); ++i) {
    const float saved = pred.at(i);
    pred.at(i) = saved + static_cast<float>(eps);
    const double lp = MseLoss(pred, target, nullptr);
    pred.at(i) = saved - static_cast<float>(eps);
    const double lm = MseLoss(pred, target, nullptr);
    pred.at(i) = saved;
    EXPECT_NEAR(grad.at(i), (lp - lm) / (2 * eps), 2e-3);
  }
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(8);
  Tensor logits({5, 7});
  UniformInit(logits, -3, 3, rng);
  Tensor probs = SoftmaxRows(logits);
  for (int64_t i = 0; i < 5; ++i) {
    double row = 0.0;
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GE(probs(i, j), 0.0f);
      row += probs(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  Tensor logits = Tensor::FromData({1, 3}, {1000.0f, 999.0f, -1000.0f});
  Tensor probs = SoftmaxRows(logits);
  EXPECT_GT(probs(0, 0), probs(0, 1));
  EXPECT_NEAR(probs(0, 0) + probs(0, 1) + probs(0, 2), 1.0, 1e-5);
  EXPECT_FALSE(std::isnan(probs(0, 0)));
}

}  // namespace
}  // namespace fedmp::nn
