#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/initializers.h"
#include "nn/layers/conv2d.h"
#include "nn/tensor_ops.h"

namespace fedmp::nn {
namespace {

// Naive double-accumulator references, independent of the production
// kernels' loop order and blocking.
Tensor RefMatmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a(i, kk)) * b(kk, j);
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor RefMatmulTransB(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a(i, kk)) * b(j, kk);
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor RefMatmulTransA(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({k, n});
  for (int64_t kk = 0; kk < k; ++kk) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t i = 0; i < m; ++i) {
        acc += static_cast<double>(a(i, kk)) * b(i, j);
      }
      c(kk, j) = static_cast<float>(acc);
    }
  }
  return c;
}

// Odd shapes on purpose: 1x1, tall-skinny, wide, sizes that do not divide
// the kernels' k/j blocks or the row grain, and sizes straddling the
// parallel threshold.
struct Shape {
  int64_t m, k, n;
};
const std::vector<Shape> kShapes = {
    {1, 1, 1},   {1, 7, 1},    {3, 1, 5},     {8, 8, 8},    {33, 17, 65},
    {300, 2, 3}, {2, 300, 4},  {5, 257, 129}, {64, 64, 64}, {129, 65, 257},
    {1, 500, 1}, {100, 1, 100}};

void ExpectNear(const Tensor& got, const Tensor& want, const char* what,
                const Shape& s) {
  ASSERT_TRUE(got.SameShape(want));
  const double worst = MaxAbsDiff(got, want);
  EXPECT_LT(worst, 1e-3) << what << " m=" << s.m << " k=" << s.k
                         << " n=" << s.n;
}

void ExpectBitIdentical(const Tensor& got, const Tensor& want,
                        const char* what, const Shape& s) {
  ASSERT_TRUE(got.SameShape(want));
  const float* x = got.data();
  const float* y = want.data();
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(x[i], y[i]) << what << " element " << i << " m=" << s.m
                          << " k=" << s.k << " n=" << s.n;
  }
}

class MatmulEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(MatmulEquivalenceTest, AllVariantsMatchReferenceAcrossShapes) {
  ThreadPool::SetGlobalThreads(GetParam());
  Rng rng(7);
  for (const Shape& s : kShapes) {
    Tensor a({s.m, s.k}), b({s.k, s.n}), bt({s.n, s.k}), ta({s.m, s.n});
    UniformInit(a, -1, 1, rng);
    UniformInit(b, -1, 1, rng);
    UniformInit(bt, -1, 1, rng);
    UniformInit(ta, -1, 1, rng);
    ExpectNear(Matmul(a, b), RefMatmul(a, b), "Matmul", s);
    ExpectNear(MatmulTransB(a, bt), RefMatmulTransB(a, bt), "MatmulTransB",
               s);
    ExpectNear(MatmulTransA(a, ta), RefMatmulTransA(a, ta), "MatmulTransA",
               s);
  }
}

TEST_P(MatmulEquivalenceTest, SparseAMatchesDenseOnMaskedInput) {
  ThreadPool::SetGlobalThreads(GetParam());
  Rng rng(11);
  for (const Shape& s : kShapes) {
    Tensor a({s.m, s.k}), b({s.k, s.n});
    UniformInit(a, -1, 1, rng);
    UniformInit(b, -1, 1, rng);
    // Mask ~70% of A to zero, like a sparsified upload.
    float* pa = a.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
      if (rng.NextDouble() < 0.7) pa[i] = 0.0f;
    }
    ExpectBitIdentical(MatmulSparseA(a, b), Matmul(a, b), "MatmulSparseA",
                       s);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, MatmulEquivalenceTest,
                         ::testing::Values(1, 4));

TEST(ParallelKernelDeterminismTest, MatmulBitIdenticalAcrossThreadCounts) {
  Rng rng(13);
  for (const Shape& s : kShapes) {
    Tensor a({s.m, s.k}), b({s.k, s.n}), bt({s.n, s.k}), ta({s.m, s.n});
    UniformInit(a, -1, 1, rng);
    UniformInit(b, -1, 1, rng);
    UniformInit(bt, -1, 1, rng);
    UniformInit(ta, -1, 1, rng);
    ThreadPool::SetGlobalThreads(1);
    const Tensor c1 = Matmul(a, b);
    const Tensor tb1 = MatmulTransB(a, bt);
    const Tensor ta1 = MatmulTransA(a, ta);
    ThreadPool::SetGlobalThreads(4);
    ExpectBitIdentical(Matmul(a, b), c1, "Matmul", s);
    ExpectBitIdentical(MatmulTransB(a, bt), tb1, "MatmulTransB", s);
    ExpectBitIdentical(MatmulTransA(a, ta), ta1, "MatmulTransA", s);
  }
  ThreadPool::SetGlobalThreads(1);
}

// The SIMD fast path (AVX2 MatmulTransB panel, memcpy Im2Col) must be a
// pure speedup: bit-identical to the legacy scalar kernels at every shape,
// including j-remainders (n % 8 != 0), k-remainders (k % 8 != 0), and
// n < one SIMD lane group.
TEST(ParallelKernelDeterminismTest, FastKernelsBitIdenticalToLegacy) {
  const bool saved = FastKernelsEnabled();
  Rng rng(29);
  for (const Shape& s : kShapes) {
    Tensor a({s.m, s.k}), bt({s.n, s.k});
    UniformInit(a, -1, 1, rng);
    UniformInit(bt, -1, 1, rng);
    SetFastKernelsEnabled(false);
    const Tensor want = MatmulTransB(a, bt);
    SetFastKernelsEnabled(true);
    ExpectBitIdentical(MatmulTransB(a, bt), want, "MatmulTransB fast", s);
  }
  SetFastKernelsEnabled(saved);
}

TEST(ParallelKernelDeterminismTest, FastIm2ColBitIdenticalToLegacy) {
  const bool saved = FastKernelsEnabled();
  Rng rng(31);
  // Padded conv so Im2Col hits both in-range memcpy runs and zero-filled
  // out-of-range rows/columns; odd spatial sizes exercise the clip math.
  Tensor x({3, 4, 11, 9});
  UniformInit(x, -1, 1, rng);
  Tensor grad;

  SetFastKernelsEnabled(false);
  Rng wrng1(37);
  Conv2d conv1(4, 5, 3, 1, 1, true, wrng1);
  const Tensor y1 = conv1.Forward(x, true);
  grad = Tensor(y1.shape());
  UniformInit(grad, -1, 1, rng);
  const Tensor dx1 = conv1.Backward(grad);

  SetFastKernelsEnabled(true);
  Rng wrng2(37);
  Conv2d conv2(4, 5, 3, 1, 1, true, wrng2);
  const Tensor y2 = conv2.Forward(x, true);
  const Tensor dx2 = conv2.Backward(grad);

  EXPECT_EQ(MaxAbsDiff(y1, y2), 0.0);
  EXPECT_EQ(MaxAbsDiff(dx1, dx2), 0.0);
  SetFastKernelsEnabled(saved);
}

TEST(ParallelKernelDeterminismTest, ConvForwardBackwardAcrossThreadCounts) {
  Rng rng(17);
  Tensor x({5, 3, 13, 11});  // odd batch/spatial sizes
  UniformInit(x, -1, 1, rng);

  ThreadPool::SetGlobalThreads(1);
  Rng wrng1(23);
  Conv2d conv1(3, 6, 3, 1, 1, true, wrng1);
  const Tensor y1 = conv1.Forward(x, true);
  Tensor grad(y1.shape());
  UniformInit(grad, -1, 1, rng);
  const Tensor dx1 = conv1.Backward(grad);

  ThreadPool::SetGlobalThreads(4);
  Rng wrng2(23);
  Conv2d conv2(3, 6, 3, 1, 1, true, wrng2);
  const Tensor y2 = conv2.Forward(x, true);
  const Tensor dx2 = conv2.Backward(grad);

  EXPECT_EQ(MaxAbsDiff(y1, y2), 0.0);
  EXPECT_EQ(MaxAbsDiff(dx1, dx2), 0.0);
  ThreadPool::SetGlobalThreads(1);
}

}  // namespace
}  // namespace fedmp::nn
