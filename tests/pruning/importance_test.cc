#include "pruning/importance.h"

#include <gtest/gtest.h>

#include "data/task_zoo.h"
#include "nn/model_builder.h"
#include "pruning/mask.h"

namespace fedmp::pruning {
namespace {

TEST(ParamTensorCountTest, MatchesLayerContracts) {
  EXPECT_EQ(ParamTensorCount(nn::LayerSpec::Conv(1, 2, 3)), 2);
  EXPECT_EQ(ParamTensorCount(nn::LayerSpec::Conv(1, 2, 3, 1, 0, false)), 1);
  EXPECT_EQ(ParamTensorCount(nn::LayerSpec::BatchNorm(4)), 2);
  EXPECT_EQ(ParamTensorCount(nn::LayerSpec::Dense(2, 3)), 2);
  EXPECT_EQ(ParamTensorCount(nn::LayerSpec::Residual(4, 2)), 6);
  EXPECT_EQ(ParamTensorCount(nn::LayerSpec::LstmLayer(2, 3)), 3);
  EXPECT_EQ(ParamTensorCount(nn::LayerSpec::Embed(5, 2)), 1);
  EXPECT_EQ(ParamTensorCount(nn::LayerSpec::Relu()), 0);
}

TEST(ParamTensorOffsetsTest, MatchModelParamsList) {
  for (const char* name : {"cnn", "resnet", "lstm"}) {
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kTiny, 1);
    auto model = nn::BuildModelOrDie(task.model, 2);
    const std::vector<int64_t> offsets = ParamTensorOffsets(task.model);
    int64_t total = 0;
    for (const auto& ls : task.model.layers) total += ParamTensorCount(ls);
    EXPECT_EQ(total,
              static_cast<int64_t>(model->Params().size())) << name;
    EXPECT_EQ(offsets.front(), 0) << name;
  }
}

TEST(UnitImportanceTest, ConvFilterL1) {
  nn::ModelSpec spec;
  spec.name = "t";
  spec.input.kind = nn::ShapeKind::kImage;
  spec.input.c = 1;
  spec.input.h = spec.input.w = 4;
  spec.num_classes = 2;
  spec.layers = {nn::LayerSpec::Conv(1, 2, 3, 1, 1),
                 nn::LayerSpec::Flat(),
                 nn::LayerSpec::Dense(2 * 16, 2)};
  auto model = nn::BuildModelOrDie(spec, 1);
  nn::TensorList weights = model->GetWeights();
  // Filter 0 weights -> 0.5 each, filter 1 -> 0.1 each.
  for (int64_t i = 0; i < 9; ++i) weights[0].at(i) = 0.5f;
  for (int64_t i = 9; i < 18; ++i) weights[0].at(i) = -0.1f;
  const std::vector<float> scores = UnitImportance(spec, weights, 0);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_NEAR(scores[0], 4.5f, 1e-5);
  EXPECT_NEAR(scores[1], 0.9f, 1e-5);
}

TEST(UnitImportanceTest, LinearNeuronL1UsesIncomingWeights) {
  nn::ModelSpec spec;
  spec.name = "t";
  spec.input.kind = nn::ShapeKind::kFeatures;
  spec.input.f = 3;
  spec.num_classes = 2;
  spec.layers = {nn::LayerSpec::Dense(3, 2, /*bias=*/false),
                 nn::LayerSpec::Dense(2, 2)};
  auto model = nn::BuildModelOrDie(spec, 1);
  nn::TensorList weights = model->GetWeights();
  weights[0] = nn::Tensor::FromData({2, 3}, {1, -1, 1, 0.1f, 0.1f, 0.1f});
  const std::vector<float> scores = UnitImportance(spec, weights, 0);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_NEAR(scores[0], 3.0f, 1e-5);
  EXPECT_NEAR(scores[1], 0.3f, 1e-5);
}

TEST(UnitImportanceTest, NonPrunableLayersEmpty) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 1);
  auto model = nn::BuildModelOrDie(task.model, 2);
  const nn::TensorList weights = model->GetWeights();
  EXPECT_TRUE(UnitImportance(task.model, weights, 1).empty());  // relu
  EXPECT_TRUE(
      UnitImportance(task.model, weights, task.model.layers.size() - 1)
          .empty());  // final dense
}

TEST(UnitImportanceTest, SizesMatchWidths) {
  for (const char* name : {"cnn", "alexnet", "vgg", "resnet", "lstm"}) {
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kTiny, 1);
    auto model = nn::BuildModelOrDie(task.model, 2);
    const nn::TensorList weights = model->GetWeights();
    for (size_t i = 0; i < task.model.layers.size(); ++i) {
      if (!IsPrunableLayer(task.model, i)) continue;
      const auto scores = UnitImportance(task.model, weights, i);
      const auto& ls = task.model.layers[i];
      const int64_t width = ls.type == nn::LayerType::kResidualBlock
                                ? ls.mid_channels
                                : ls.out_channels;
      EXPECT_EQ(static_cast<int64_t>(scores.size()), width)
          << name << " layer " << i;
    }
  }
}

}  // namespace
}  // namespace fedmp::pruning
