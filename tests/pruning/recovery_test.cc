// The R2SP algebra (§III-C) as exact identities, checked over every zoo
// architecture and a ratio sweep:
//   (1) recover(extract(w, m)) == sparsify(w, m)
//   (2) sparsify(w, m) + residual(w, m) == w
//   (3) extract(recover(sub)) == sub       (recovery is a right inverse)

#include "pruning/recovery.h"

#include <gtest/gtest.h>

#include "data/task_zoo.h"
#include "nn/model_builder.h"
#include "pruning/sparsify.h"

namespace fedmp::pruning {
namespace {

struct RecoveryCase {
  std::string task;
  double ratio;
};

class RecoveryIdentityTest
    : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(RecoveryIdentityTest, AllThreeIdentitiesHold) {
  const RecoveryCase& c = GetParam();
  const data::FlTask task =
      data::MakeTaskByName(c.task, data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 13);
  const nn::TensorList weights = model->GetWeights();
  const PruneMask mask = ComputeL1Mask(task.model, weights, c.ratio);

  auto sub = ExtractSubModel(task.model, weights, mask);
  ASSERT_TRUE(sub.ok());
  auto recovered = RecoverToFull(task.model, sub->weights, mask);
  ASSERT_TRUE(recovered.ok());
  auto sparse = Sparsify(task.model, weights, mask);
  ASSERT_TRUE(sparse.ok());

  // (1) recover(extract(w)) == sparsify(w) — exactly.
  ASSERT_TRUE(nn::SameShapes(*recovered, *sparse));
  for (size_t i = 0; i < sparse->size(); ++i) {
    EXPECT_EQ(nn::MaxAbsDiff((*recovered)[i], (*sparse)[i]), 0.0)
        << "tensor " << i;
  }

  // (2) sparse + residual == w — exactly.
  auto residual = ResidualModel(task.model, weights, mask);
  ASSERT_TRUE(residual.ok());
  nn::TensorList reconstructed = nn::AddLists(*sparse, *residual);
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(nn::MaxAbsDiff(reconstructed[i], weights[i]), 0.0)
        << "tensor " << i;
  }

  // (3) extract(recover(sub)) == sub.
  auto re_extracted = ExtractSubModel(task.model, *recovered, mask);
  ASSERT_TRUE(re_extracted.ok());
  for (size_t i = 0; i < sub->weights.size(); ++i) {
    EXPECT_EQ(nn::MaxAbsDiff(re_extracted->weights[i], sub->weights[i]),
              0.0)
        << "tensor " << i;
  }
}

std::vector<RecoveryCase> Cases() {
  std::vector<RecoveryCase> cases;
  for (const char* task : {"cnn", "alexnet", "vgg", "resnet", "lstm"}) {
    for (double ratio : {0.0, 0.3, 0.6}) {
      cases.push_back({task, ratio});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTasksAndRatios, RecoveryIdentityTest, ::testing::ValuesIn(Cases()),
    [](const ::testing::TestParamInfo<RecoveryCase>& info) {
      return info.param.task + "_r" +
             std::to_string(static_cast<int>(info.param.ratio * 100));
    });

TEST(RecoveryTest, RejectsWrongTensorCount) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 13);
  const PruneMask mask =
      ComputeL1Mask(task.model, model->GetWeights(), 0.5);
  nn::TensorList too_few;
  EXPECT_FALSE(RecoverToFull(task.model, too_few, mask).ok());
}

TEST(RecoveryTest, RejectsWrongShapes) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 13);
  const nn::TensorList weights = model->GetWeights();
  const PruneMask mask = ComputeL1Mask(task.model, weights, 0.5);
  // Full-size weights are NOT valid sub-model weights at ratio 0.5.
  EXPECT_FALSE(RecoverToFull(task.model, weights, mask).ok());
}

TEST(SparsifyTest, ZeroesExactlyTheComplement) {
  nn::ModelSpec spec;
  spec.name = "t";
  spec.input.kind = nn::ShapeKind::kFeatures;
  spec.input.f = 2;
  spec.num_classes = 2;
  spec.layers = {nn::LayerSpec::Dense(2, 3, false),
                 nn::LayerSpec::Dense(3, 2, false)};
  nn::TensorList weights{
      nn::Tensor::Full({3, 2}, 1.0f),
      nn::Tensor::Full({2, 3}, 1.0f),
  };
  PruneMask mask = FullMask(spec);
  mask.ratio = 0.33;
  mask.layers[0].kept = {0, 2};
  auto sparse = Sparsify(spec, weights, mask);
  ASSERT_TRUE(sparse.ok());
  // Hidden layer: row 1 zeroed.
  EXPECT_EQ((*sparse)[0](0, 0), 1.0f);
  EXPECT_EQ((*sparse)[0](1, 0), 0.0f);
  EXPECT_EQ((*sparse)[0](1, 1), 0.0f);
  EXPECT_EQ((*sparse)[0](2, 1), 1.0f);
  // Output layer: column 1 zeroed.
  EXPECT_EQ((*sparse)[1](0, 1), 0.0f);
  EXPECT_EQ((*sparse)[1](1, 1), 0.0f);
  EXPECT_EQ((*sparse)[1](0, 0), 1.0f);
  EXPECT_EQ((*sparse)[1](1, 2), 1.0f);
}

}  // namespace
}  // namespace fedmp::pruning
