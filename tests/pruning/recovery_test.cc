// The R2SP algebra (§III-C) as exact identities, checked over every zoo
// architecture and a ratio sweep:
//   (1) recover(extract(w, m)) == sparsify(w, m)
//   (2) sparsify(w, m) + residual(w, m) == w
//   (3) extract(recover(sub)) == sub       (recovery is a right inverse)

#include "pruning/recovery.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/task_zoo.h"
#include "fl/aggregation.h"
#include "nn/model_builder.h"
#include "pruning/sparsify.h"

namespace fedmp::pruning {
namespace {

struct RecoveryCase {
  std::string task;
  double ratio;
};

class RecoveryIdentityTest
    : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(RecoveryIdentityTest, AllThreeIdentitiesHold) {
  const RecoveryCase& c = GetParam();
  const data::FlTask task =
      data::MakeTaskByName(c.task, data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 13);
  const nn::TensorList weights = model->GetWeights();
  const PruneMask mask = ComputeL1Mask(task.model, weights, c.ratio);

  auto sub = ExtractSubModel(task.model, weights, mask);
  ASSERT_TRUE(sub.ok());
  auto recovered = RecoverToFull(task.model, sub->weights, mask);
  ASSERT_TRUE(recovered.ok());
  auto sparse = Sparsify(task.model, weights, mask);
  ASSERT_TRUE(sparse.ok());

  // (1) recover(extract(w)) == sparsify(w) — exactly.
  ASSERT_TRUE(nn::SameShapes(*recovered, *sparse));
  for (size_t i = 0; i < sparse->size(); ++i) {
    EXPECT_EQ(nn::MaxAbsDiff((*recovered)[i], (*sparse)[i]), 0.0)
        << "tensor " << i;
  }

  // (2) sparse + residual == w — exactly.
  auto residual = ResidualModel(task.model, weights, mask);
  ASSERT_TRUE(residual.ok());
  nn::TensorList reconstructed = nn::AddLists(*sparse, *residual);
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(nn::MaxAbsDiff(reconstructed[i], weights[i]), 0.0)
        << "tensor " << i;
  }

  // (3) extract(recover(sub)) == sub.
  auto re_extracted = ExtractSubModel(task.model, *recovered, mask);
  ASSERT_TRUE(re_extracted.ok());
  for (size_t i = 0; i < sub->weights.size(); ++i) {
    EXPECT_EQ(nn::MaxAbsDiff(re_extracted->weights[i], sub->weights[i]),
              0.0)
        << "tensor " << i;
  }
}

std::vector<RecoveryCase> Cases() {
  std::vector<RecoveryCase> cases;
  for (const char* task : {"cnn", "alexnet", "vgg", "resnet", "lstm"}) {
    for (double ratio : {0.0, 0.3, 0.6}) {
      cases.push_back({task, ratio});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTasksAndRatios, RecoveryIdentityTest, ::testing::ValuesIn(Cases()),
    [](const ::testing::TestParamInfo<RecoveryCase>& info) {
      return info.param.task + "_r" +
             std::to_string(static_cast<int>(info.param.ratio * 100));
    });

TEST(RecoveryTest, RejectsWrongTensorCount) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 13);
  const PruneMask mask =
      ComputeL1Mask(task.model, model->GetWeights(), 0.5);
  nn::TensorList too_few;
  EXPECT_FALSE(RecoverToFull(task.model, too_few, mask).ok());
}

TEST(RecoveryTest, RejectsWrongShapes) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 13);
  const nn::TensorList weights = model->GetWeights();
  const PruneMask mask = ComputeL1Mask(task.model, weights, 0.5);
  // Full-size weights are NOT valid sub-model weights at ratio 0.5.
  EXPECT_FALSE(RecoverToFull(task.model, weights, mask).ok());
}

TEST(SparsifyTest, ZeroesExactlyTheComplement) {
  nn::ModelSpec spec;
  spec.name = "t";
  spec.input.kind = nn::ShapeKind::kFeatures;
  spec.input.f = 2;
  spec.num_classes = 2;
  spec.layers = {nn::LayerSpec::Dense(2, 3, false),
                 nn::LayerSpec::Dense(3, 2, false)};
  nn::TensorList weights{
      nn::Tensor::Full({3, 2}, 1.0f),
      nn::Tensor::Full({2, 3}, 1.0f),
  };
  PruneMask mask = FullMask(spec);
  mask.ratio = 0.33;
  mask.layers[0].kept = {0, 2};
  auto sparse = Sparsify(spec, weights, mask);
  ASSERT_TRUE(sparse.ok());
  // Hidden layer: row 1 zeroed.
  EXPECT_EQ((*sparse)[0](0, 0), 1.0f);
  EXPECT_EQ((*sparse)[0](1, 0), 0.0f);
  EXPECT_EQ((*sparse)[0](1, 1), 0.0f);
  EXPECT_EQ((*sparse)[0](2, 1), 1.0f);
  // Output layer: column 1 zeroed.
  EXPECT_EQ((*sparse)[1](0, 1), 0.0f);
  EXPECT_EQ((*sparse)[1](1, 1), 0.0f);
  EXPECT_EQ((*sparse)[1](0, 0), 1.0f);
  EXPECT_EQ((*sparse)[1](1, 2), 1.0f);
}

// ---- R2SP under worker loss (chaos satellite) -----------------------------
//
// A two-worker split where each worker owns half the hidden units. When one
// worker drops out for a round, R2SP must carry its units' values through
// the residual model (no decay, no NaN), and once it rejoins those units
// must resume training — the "no parameter silently stops training"
// invariant at the aggregation level. BSP, by contrast, decays the lost
// units toward zero.

nn::ModelSpec TwoLayerSpec() {
  nn::ModelSpec spec;
  spec.name = "loss_test";
  spec.input.kind = nn::ShapeKind::kFeatures;
  spec.input.f = 2;
  spec.num_classes = 2;
  spec.layers = {nn::LayerSpec::Dense(2, 4, false),
                 nn::LayerSpec::Dense(4, 2, false)};
  return spec;
}

PruneMask HalfMask(const nn::ModelSpec& spec, std::vector<int64_t> kept) {
  PruneMask mask = FullMask(spec);
  mask.ratio = 0.5;
  mask.layers[0].kept = std::move(kept);
  return mask;
}

// "Local training": every sub-model weight moves by +0.1.
nn::TensorList TrainSub(const nn::ModelSpec& spec,
                        const nn::TensorList& global,
                        const PruneMask& mask) {
  auto sub = ExtractSubModel(spec, global, mask);
  EXPECT_TRUE(sub.ok());
  for (auto& t : sub->weights) {
    for (int64_t i = 0; i < t.numel(); ++i) t.at(i) += 0.1f;
  }
  return sub->weights;
}

TEST(RecoveryWorkerLossTest, ResidualsPreserveAndResumeDroppedUnits) {
  const nn::ModelSpec spec = TwoLayerSpec();
  const PruneMask mask_a = HalfMask(spec, {0, 1});
  const PruneMask mask_b = HalfMask(spec, {2, 3});
  nn::TensorList global{nn::Tensor::Full({4, 2}, 1.0f),
                        nn::Tensor::Full({2, 4}, 1.0f)};

  // Round 1: both workers participate; every hidden unit is trained.
  nn::TensorList a1 = TrainSub(spec, global, mask_a);
  nn::TensorList b1 = TrainSub(spec, global, mask_b);
  auto w1 = fl::AggregateSubModels(
      spec, global,
      {{&mask_a, &a1}, {&mask_b, &b1}}, fl::SyncScheme::kR2SP);
  ASSERT_TRUE(w1.ok());

  // Round 2: worker B is lost (crash / dropped upload); only A arrives.
  nn::TensorList a2 = TrainSub(spec, *w1, mask_a);
  auto w2 = fl::AggregateSubModels(spec, *w1, {{&mask_a, &a2}},
                                   fl::SyncScheme::kR2SP);
  ASSERT_TRUE(w2.ok());

  // B's units (hidden rows 2,3 and output columns 2,3) ride the residual:
  // bit-identical to their round-1 values.
  for (int64_t u : {2, 3}) {
    for (int64_t c = 0; c < 2; ++c) {
      EXPECT_EQ((*w2)[0](u, c), (*w1)[0](u, c)) << "hidden unit " << u;
      EXPECT_EQ((*w2)[1](c, u), (*w1)[1](c, u)) << "output column " << u;
    }
    // While A's units kept training.
    EXPECT_NE((*w2)[0](u == 2 ? 0 : 1, 0), (*w1)[0](u == 2 ? 0 : 1, 0));
  }

  // Under BSP the same lost round decays B's units instead.
  auto w2_bsp = fl::AggregateSubModels(spec, *w1, {{&mask_a, &a2}},
                                       fl::SyncScheme::kBSP);
  ASSERT_TRUE(w2_bsp.ok());
  EXPECT_LT(std::abs((*w2_bsp)[0](2, 0)), std::abs((*w1)[0](2, 0)))
      << "BSP should decay the dropped worker's units";

  // Round 3: B rejoins and its units resume training from where they
  // stopped — strictly moved from the preserved round-1 values.
  nn::TensorList b3 = TrainSub(spec, *w2, mask_b);
  auto w3 = fl::AggregateSubModels(spec, *w2, {{&mask_b, &b3}},
                                   fl::SyncScheme::kR2SP);
  ASSERT_TRUE(w3.ok());
  for (int64_t u : {2, 3}) {
    EXPECT_NE((*w3)[0](u, 0), (*w1)[0](u, 0))
        << "rejoined worker's unit " << u << " never resumed training";
  }
}

}  // namespace
}  // namespace fedmp::pruning
