// Structured-pruner correctness across every zoo architecture and a ratio
// sweep: the extracted sub-model must be a VALID model of the right size
// that runs forward/backward, and kept weights must be copied exactly.

#include "pruning/structured_pruner.h"

#include <gtest/gtest.h>

#include "data/task_zoo.h"
#include "nn/initializers.h"
#include "nn/model_builder.h"

namespace fedmp::pruning {
namespace {

struct PruneCase {
  std::string task;
  double ratio;
};

class PrunerSweepTest : public ::testing::TestWithParam<PruneCase> {};

TEST_P(PrunerSweepTest, SubModelValidAndTrainable) {
  const PruneCase& c = GetParam();
  const data::FlTask task =
      data::MakeTaskByName(c.task, data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 7);
  const nn::TensorList weights = model->GetWeights();

  auto sub = PruneByRatio(task.model, weights, c.ratio);
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_TRUE(sub->mask.Validate(task.model).ok());

  // The sub-spec is itself buildable and its weights fit it.
  auto sub_model = nn::BuildModel(sub->spec, 1);
  ASSERT_TRUE(sub_model.ok()) << sub_model.status();
  (*sub_model)->SetWeights(sub->weights);

  // Parameter count shrinks monotonically (strictly for ratio > 0 unless
  // everything is already at the 1-unit floor).
  if (c.ratio == 0.0) {
    EXPECT_EQ((*sub_model)->NumParams(), model->NumParams());
  } else {
    EXPECT_LT((*sub_model)->NumParams(), model->NumParams());
  }

  // Forward + backward run on real input shapes.
  Rng rng(3);
  nn::Tensor x;
  if (task.is_language_model) {
    x = nn::Tensor({2, task.model.input.t});
  } else {
    x = nn::Tensor({2, task.model.input.c, task.model.input.h,
                    task.model.input.w});
    nn::UniformInit(x, -1, 1, rng);
  }
  nn::Tensor y = (*sub_model)->Forward(x, true);
  EXPECT_EQ(y.dim(y.ndim() - 1), task.model.num_classes);
  nn::Tensor grad(y.shape());
  nn::UniformInit(grad, -0.1, 0.1, rng);
  (*sub_model)->Backward(grad);
}

std::vector<PruneCase> SweepCases() {
  std::vector<PruneCase> cases;
  for (const char* task : {"cnn", "alexnet", "vgg", "resnet", "lstm"}) {
    for (double ratio : {0.0, 0.25, 0.5, 0.75}) {
      cases.push_back({task, ratio});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTasksAndRatios, PrunerSweepTest, ::testing::ValuesIn(SweepCases()),
    [](const ::testing::TestParamInfo<PruneCase>& info) {
      return info.param.task + "_r" +
             std::to_string(static_cast<int>(info.param.ratio * 100));
    });

TEST(ComputeL1MaskTest, DropsLowestScoringUnits) {
  nn::ModelSpec spec;
  spec.name = "t";
  spec.input.kind = nn::ShapeKind::kFeatures;
  spec.input.f = 2;
  spec.num_classes = 2;
  spec.layers = {nn::LayerSpec::Dense(2, 4, false),
                 nn::LayerSpec::Dense(4, 2)};
  auto model = nn::BuildModelOrDie(spec, 1);
  nn::TensorList weights = model->GetWeights();
  // Neuron scores: 0 -> 0.2, 1 -> 2.0, 2 -> 0.1, 3 -> 1.0.
  weights[0] = nn::Tensor::FromData(
      {4, 2}, {0.1f, 0.1f, 1.0f, 1.0f, 0.05f, 0.05f, 0.5f, 0.5f});
  const PruneMask mask = ComputeL1Mask(spec, weights, 0.5);
  ASSERT_TRUE(mask.layers[0].prunable);
  EXPECT_EQ(mask.layers[0].kept, (std::vector<int64_t>{1, 3}));
}

TEST(ComputeL1MaskTest, RatioZeroKeepsAll) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 7);
  const PruneMask mask =
      ComputeL1Mask(task.model, model->GetWeights(), 0.0);
  for (const auto& lm : mask.layers) {
    if (lm.prunable) EXPECT_EQ(lm.kept_count(), lm.original_width);
  }
}

TEST(ExtractTest, KeptWeightsCopiedExactly) {
  nn::ModelSpec spec;
  spec.name = "t";
  spec.input.kind = nn::ShapeKind::kFeatures;
  spec.input.f = 3;
  spec.num_classes = 2;
  spec.layers = {nn::LayerSpec::Dense(3, 4, true),
                 nn::LayerSpec::Dense(4, 2)};
  auto model = nn::BuildModelOrDie(spec, 1);
  nn::TensorList weights = model->GetWeights();

  PruneMask mask = FullMask(spec);
  mask.ratio = 0.5;
  mask.layers[0].kept = {1, 3};
  auto sub = ExtractSubModel(spec, weights, mask);
  ASSERT_TRUE(sub.ok());
  // Hidden weight rows 1 and 3 copied.
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(sub->weights[0](0, c), weights[0](1, c));
    EXPECT_EQ(sub->weights[0](1, c), weights[0](3, c));
  }
  // Hidden bias entries 1, 3.
  EXPECT_EQ(sub->weights[1].at(0), weights[1].at(1));
  EXPECT_EQ(sub->weights[1].at(1), weights[1].at(3));
  // Output layer columns 1 and 3 (its rows are classes, untouched).
  for (int64_t r = 0; r < 2; ++r) {
    EXPECT_EQ(sub->weights[2](r, 0), weights[2](r, 1));
    EXPECT_EQ(sub->weights[2](r, 1), weights[2](r, 3));
  }
}

TEST(ExtractTest, ConvChannelChainPropagatesThroughFlatten) {
  // Conv(1->4) -> Flatten -> Dense: pruning conv filters must gather the
  // dense layer's input features per surviving channel plane.
  nn::ModelSpec spec;
  spec.name = "t";
  spec.input.kind = nn::ShapeKind::kImage;
  spec.input.c = 1;
  spec.input.h = spec.input.w = 2;
  spec.num_classes = 2;
  spec.layers = {nn::LayerSpec::Conv(1, 4, 3, 1, 1),
                 nn::LayerSpec::Flat(),
                 nn::LayerSpec::Dense(16, 2)};
  auto model = nn::BuildModelOrDie(spec, 1);
  nn::TensorList weights = model->GetWeights();

  PruneMask mask = FullMask(spec);
  mask.ratio = 0.5;
  mask.layers[0].kept = {0, 2};
  auto sub = ExtractSubModel(spec, weights, mask);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->spec.layers[2].in_channels, 8);
  // Dense input features of channel 2 (plane size 4) land at columns 4..7.
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t s = 0; s < 4; ++s) {
      EXPECT_EQ(sub->weights[2](r, 4 + s), weights[2](r, 2 * 4 + s));
    }
  }
}

TEST(GatherScatterTest, RoundTripThroughZeros) {
  TensorSlice slice;
  slice.full_shape = {4, 3};
  slice.dim0 = {1, 3};
  slice.dim1 = {0, 2};
  slice.sub_shape = {2, 2};
  nn::Tensor full = nn::Tensor::FromData(
      {4, 3}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  nn::Tensor sub = GatherSlice(full, slice);
  EXPECT_EQ(sub(0, 0), 3.0f);
  EXPECT_EQ(sub(0, 1), 5.0f);
  EXPECT_EQ(sub(1, 0), 9.0f);
  EXPECT_EQ(sub(1, 1), 11.0f);
  nn::Tensor back = ScatterSlice(sub, slice);
  EXPECT_EQ(back(1, 0), 3.0f);
  EXPECT_EQ(back(0, 0), 0.0f);  // not in the slice -> zero
  EXPECT_EQ(back(3, 2), 11.0f);
}

TEST(PruneByRatioTest, ParamReductionGrowsWithRatio) {
  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kBench, 5);
  auto model = nn::BuildModelOrDie(task.model, 7);
  const nn::TensorList weights = model->GetWeights();
  int64_t prev = task.model.NumParams() + 1;
  for (double ratio : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    auto sub = PruneByRatio(task.model, weights, ratio);
    ASSERT_TRUE(sub.ok());
    const int64_t params = sub->spec.NumParams();
    EXPECT_LT(params, prev) << "ratio " << ratio;
    prev = params;
  }
}

}  // namespace
}  // namespace fedmp::pruning
