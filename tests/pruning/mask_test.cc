#include "pruning/mask.h"

#include <gtest/gtest.h>

#include "data/task_zoo.h"

namespace fedmp::pruning {
namespace {

nn::ModelSpec CnnSpec() {
  return data::MakeCnnMnistTask(data::TaskScale::kTiny, 1).model;
}

TEST(KeptCountTest, RoundsAndClamps) {
  EXPECT_EQ(KeptCount(10, 0.0), 10);
  EXPECT_EQ(KeptCount(10, 0.5), 5);
  EXPECT_EQ(KeptCount(10, 0.55), 5);  // round(4.5) banker-free llround = 5
  EXPECT_EQ(KeptCount(10, 0.99), 1);  // never below one unit
  EXPECT_EQ(KeptCount(1, 0.9), 1);
}

TEST(IsPrunableTest, FinalClassifierNotPrunable) {
  const nn::ModelSpec spec = CnnSpec();
  // Tiny CNN: Conv ReLU MaxPool Flat Dense(final).
  EXPECT_TRUE(IsPrunableLayer(spec, 0));   // conv
  EXPECT_FALSE(IsPrunableLayer(spec, 1));  // relu
  EXPECT_FALSE(IsPrunableLayer(spec, 4));  // final dense
}

TEST(IsPrunableTest, HiddenLinearPrunable) {
  const nn::ModelSpec spec =
      data::MakeCnnMnistTask(data::TaskScale::kBench, 1).model;
  // Bench CNN ends ... Flat Dense(216,96) ReLU Dense(96,10).
  const size_t hidden = spec.layers.size() - 3;
  const size_t final_layer = spec.layers.size() - 1;
  EXPECT_EQ(spec.layers[hidden].type, nn::LayerType::kLinear);
  EXPECT_TRUE(IsPrunableLayer(spec, hidden));
  EXPECT_FALSE(IsPrunableLayer(spec, final_layer));
}

TEST(IsPrunableTest, ResidualAlwaysPrunable) {
  const nn::ModelSpec spec =
      data::MakeResNetTinyImagenetTask(data::TaskScale::kTiny, 1).model;
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    if (spec.layers[i].type == nn::LayerType::kResidualBlock) {
      EXPECT_TRUE(IsPrunableLayer(spec, i));
    }
  }
}

TEST(FullMaskTest, ValidatesAndKeepsEverything) {
  const nn::ModelSpec spec = CnnSpec();
  const PruneMask mask = FullMask(spec);
  EXPECT_TRUE(mask.Validate(spec).ok());
  for (size_t i = 0; i < mask.layers.size(); ++i) {
    if (mask.layers[i].prunable) {
      EXPECT_EQ(mask.layers[i].kept_count(),
                mask.layers[i].original_width);
    }
  }
}

TEST(MaskValidateTest, RejectsWrongLayerCount) {
  const nn::ModelSpec spec = CnnSpec();
  PruneMask mask = FullMask(spec);
  mask.layers.pop_back();
  EXPECT_FALSE(mask.Validate(spec).ok());
}

TEST(MaskValidateTest, RejectsUnsortedKept) {
  const nn::ModelSpec spec = CnnSpec();
  PruneMask mask = FullMask(spec);
  std::swap(mask.layers[0].kept[0], mask.layers[0].kept[1]);
  EXPECT_FALSE(mask.Validate(spec).ok());
}

TEST(MaskValidateTest, RejectsOutOfRangeKept) {
  const nn::ModelSpec spec = CnnSpec();
  PruneMask mask = FullMask(spec);
  mask.layers[0].kept.back() = mask.layers[0].original_width;
  EXPECT_FALSE(mask.Validate(spec).ok());
}

TEST(MaskValidateTest, RejectsEmptyPrunableKept) {
  const nn::ModelSpec spec = CnnSpec();
  PruneMask mask = FullMask(spec);
  mask.layers[0].kept.clear();
  EXPECT_FALSE(mask.Validate(spec).ok());
}

TEST(MaskValidateTest, RejectsBadRatio) {
  const nn::ModelSpec spec = CnnSpec();
  PruneMask mask = FullMask(spec);
  mask.ratio = 1.0;
  EXPECT_FALSE(mask.Validate(spec).ok());
}

}  // namespace
}  // namespace fedmp::pruning
