// Plan-cache correctness: a memoized PrunePlan must be indistinguishable
// from a freshly built one, and the round-scoped importance ranking must
// reproduce ComputeL1Mask exactly.

#include "pruning/prune_cache.h"

#include <gtest/gtest.h>

#include "data/task_zoo.h"
#include "nn/model_builder.h"

namespace fedmp::pruning {
namespace {

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetPlanCacheEnabled(true);
    ClearPlanCache();
  }
  void TearDown() override {
    ClearPlanCache();
    SetPlanCacheEnabled(true);
  }
};

void ExpectSamePlan(const PrunePlan& a, const PrunePlan& b) {
  EXPECT_TRUE(a.sub_spec == b.sub_spec);
  ASSERT_EQ(a.slices.size(), b.slices.size());
  for (size_t i = 0; i < a.slices.size(); ++i) {
    EXPECT_EQ(a.slices[i].dim0, b.slices[i].dim0) << "slice " << i;
    EXPECT_EQ(a.slices[i].dim1, b.slices[i].dim1) << "slice " << i;
    EXPECT_EQ(a.slices[i].full_shape, b.slices[i].full_shape) << "slice " << i;
    EXPECT_EQ(a.slices[i].sub_shape, b.slices[i].sub_shape) << "slice " << i;
  }
}

TEST_F(PlanCacheTest, CachedPlanEqualsFreshBuildAcrossZoo) {
  for (const char* name : {"cnn", "alexnet", "vgg", "resnet", "lstm"}) {
    ClearPlanCache();
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kTiny, 5);
    auto model = nn::BuildModelOrDie(task.model, 7);
    const PruneMask mask =
        ComputeL1Mask(task.model, model->GetWeights(), 0.5);

    auto fresh = BuildPrunePlan(task.model, mask);
    ASSERT_TRUE(fresh.ok()) << name << ": " << fresh.status();
    auto cached = CachedPrunePlan(task.model, mask);
    ASSERT_TRUE(cached.ok()) << name << ": " << cached.status();
    ExpectSamePlan(*fresh, **cached);
  }
}

TEST_F(PlanCacheTest, SecondLookupReturnsTheSharedPlan) {
  const data::FlTask task =
      data::MakeTaskByName("cnn", data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 7);
  const PruneMask mask = ComputeL1Mask(task.model, model->GetWeights(), 0.4);

  auto first = CachedPrunePlan(task.model, mask);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(PlanCacheSize(), 1u);
  auto second = CachedPrunePlan(task.model, mask);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get()) << "expected the memoized plan";
  EXPECT_EQ(PlanCacheSize(), 1u);
}

TEST_F(PlanCacheTest, DistinctMasksGetDistinctEntries) {
  const data::FlTask task =
      data::MakeTaskByName("cnn", data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 7);
  const nn::TensorList weights = model->GetWeights();

  auto a = CachedPrunePlan(task.model, ComputeL1Mask(task.model, weights, 0.25));
  auto b = CachedPrunePlan(task.model, ComputeL1Mask(task.model, weights, 0.75));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(PlanCacheSize(), 2u);
}

TEST_F(PlanCacheTest, DisabledCacheBuildsFreshAndStoresNothing) {
  SetPlanCacheEnabled(false);
  const data::FlTask task =
      data::MakeTaskByName("cnn", data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 7);
  const PruneMask mask = ComputeL1Mask(task.model, model->GetWeights(), 0.5);

  auto first = CachedPrunePlan(task.model, mask);
  auto second = CachedPrunePlan(task.model, mask);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_NE(first->get(), second->get());
  EXPECT_EQ(PlanCacheSize(), 0u);
  ExpectSamePlan(**first, **second);
}

TEST_F(PlanCacheTest, RankedMaskMatchesComputeL1MaskAtEveryRatio) {
  for (const char* name : {"cnn", "resnet", "lstm"}) {
    const data::FlTask task =
        data::MakeTaskByName(name, data::TaskScale::kTiny, 5);
    auto model = nn::BuildModelOrDie(task.model, 9);
    const nn::TensorList weights = model->GetWeights();
    const ImportanceRanking ranking = RankUnits(task.model, weights);
    for (double ratio : {0.0, 0.1, 0.25, 0.5, 0.75}) {
      const PruneMask direct = ComputeL1Mask(task.model, weights, ratio);
      const PruneMask ranked = MaskFromRanking(task.model, ranking, ratio);
      EXPECT_EQ(direct.ratio, ranked.ratio);
      ASSERT_EQ(direct.layers.size(), ranked.layers.size()) << name;
      for (size_t i = 0; i < direct.layers.size(); ++i) {
        EXPECT_EQ(direct.layers[i].prunable, ranked.layers[i].prunable)
            << name << " layer " << i << " ratio " << ratio;
        EXPECT_EQ(direct.layers[i].original_width,
                  ranked.layers[i].original_width)
            << name << " layer " << i << " ratio " << ratio;
        EXPECT_EQ(direct.layers[i].kept, ranked.layers[i].kept)
            << name << " layer " << i << " ratio " << ratio;
      }
    }
  }
}

}  // namespace
}  // namespace fedmp::pruning
