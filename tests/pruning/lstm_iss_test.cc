#include "pruning/lstm_iss_pruner.h"

#include <gtest/gtest.h>

#include "data/task_zoo.h"
#include "nn/model_builder.h"
#include "pruning/structured_pruner.h"

namespace fedmp::pruning {
namespace {

TEST(IssGateRowsTest, FourRowsPerUnit) {
  const auto rows = IssGateRows(5, 2);
  EXPECT_EQ(rows, (std::vector<int64_t>{2, 7, 12, 17}));
}

TEST(IssRowGatherTest, GateMajorOrdering) {
  const auto rows = IssRowGather(4, {1, 3});
  // For each gate g: g*4 + {1, 3}.
  EXPECT_EQ(rows,
            (std::vector<int64_t>{1, 3, 5, 7, 9, 11, 13, 15}));
}

TEST(LstmIssScoresTest, ScoresReflectComponentMagnitude) {
  const int64_t h = 3, in = 2;
  nn::Tensor wx({4 * h, in});
  nn::Tensor wh({4 * h, h});
  // Make unit 1's component heavy: its gate rows in Wx.
  for (int64_t g = 0; g < 4; ++g) {
    for (int64_t c = 0; c < in; ++c) wx(g * h + 1, c) = 5.0f;
  }
  const auto scores = LstmIssScores(wx, wh, h);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(scores[1], scores[0]);
  EXPECT_GT(scores[1], scores[2]);
}

TEST(LstmIssScoresTest, OutgoingColumnCounts) {
  const int64_t h = 2, in = 1;
  nn::Tensor wx({4 * h, in});
  nn::Tensor wh({4 * h, h});
  // Only unit 0's recurrent OUTPUT column is nonzero.
  for (int64_t r = 0; r < 4 * h; ++r) wh(r, 0) = 1.0f;
  const auto scores = LstmIssScores(wx, wh, h);
  // Unit 0: column sum 8 plus its four gate rows each containing wh(r,0)
  // for r in its rows -> 8 + 4. Unit 1: its gate rows contain wh(r,0)=1
  // each -> 4.
  EXPECT_NEAR(scores[0], 12.0f, 1e-6);
  EXPECT_NEAR(scores[1], 4.0f, 1e-6);
}

TEST(LstmIssPruneTest, PrunedLstmKeepsGateStructure) {
  const data::FlTask task =
      data::MakeLstmPtbTask(data::TaskScale::kTiny, 5);
  auto model = nn::BuildModelOrDie(task.model, 7);
  auto sub = PruneByRatio(task.model, model->GetWeights(), 0.5);
  ASSERT_TRUE(sub.ok());
  // Find the LSTM layer in the sub spec and check 4H consistency.
  for (const auto& ls : sub->spec.layers) {
    if (ls.type != nn::LayerType::kLstm) continue;
    EXPECT_LT(ls.out_channels, 12);  // tiny LSTM hidden = 12 before pruning
    EXPECT_GE(ls.out_channels, 1);
  }
  auto sub_model = nn::BuildModel(sub->spec, 1);
  ASSERT_TRUE(sub_model.ok());
  (*sub_model)->SetWeights(sub->weights);
  nn::Tensor ids({2, task.model.input.t});
  nn::Tensor y = (*sub_model)->Forward(ids, false);
  EXPECT_EQ(y.dim(1), task.model.num_classes);
}

TEST(LstmIssPruneTest, KeptUnitsCarryTheirGateWeights) {
  const int64_t h = 4, in = 3;
  nn::ModelSpec spec;
  spec.name = "lm";
  spec.input.kind = nn::ShapeKind::kTokens;
  spec.input.t = 5;
  spec.num_classes = 6;
  spec.layers = {
      nn::LayerSpec::Embed(6, in),
      nn::LayerSpec::LstmLayer(in, h),
      nn::LayerSpec::TimeFlat(),
      nn::LayerSpec::Dense(h, 6),
  };
  auto model = nn::BuildModelOrDie(spec, 3);
  nn::TensorList weights = model->GetWeights();
  PruneMask mask = FullMask(spec);
  mask.ratio = 0.5;
  mask.layers[1].kept = {0, 3};
  auto sub = ExtractSubModel(spec, weights, mask);
  ASSERT_TRUE(sub.ok());
  // Wx rows: gate-major gather of units {0, 3}.
  const nn::Tensor& wx_full = weights[1];
  const nn::Tensor& wx_sub = sub->weights[1];
  ASSERT_EQ(wx_sub.shape(), (std::vector<int64_t>{8, in}));
  for (int64_t g = 0; g < 4; ++g) {
    for (int64_t c = 0; c < in; ++c) {
      EXPECT_EQ(wx_sub(g * 2 + 0, c), wx_full(g * h + 0, c));
      EXPECT_EQ(wx_sub(g * 2 + 1, c), wx_full(g * h + 3, c));
    }
  }
  // Wh gathers both rows (gate-major) and columns (kept units).
  const nn::Tensor& wh_full = weights[2];
  const nn::Tensor& wh_sub = sub->weights[2];
  ASSERT_EQ(wh_sub.shape(), (std::vector<int64_t>{8, 2}));
  EXPECT_EQ(wh_sub(0, 1), wh_full(0, 3));
  EXPECT_EQ(wh_sub(3, 0), wh_full(h + 3, 0));  // gate 1, unit 3 row
}

}  // namespace
}  // namespace fedmp::pruning
