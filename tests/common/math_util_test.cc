#include "common/math_util.h"

#include <gtest/gtest.h>

namespace fedmp {
namespace {

TEST(ClampTest, ClampsBothSides) {
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(MeanVarianceTest, MatchesHandComputation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(Variance(v), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(Stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(MeanVarianceTest, DegenerateInputs) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({}), 0.0);
  EXPECT_EQ(Variance({3.0}), 0.0);
}

TEST(AlmostEqualTest, Tolerances) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-7));
  EXPECT_FALSE(AlmostEqual(1.0, 1.1));
  EXPECT_TRUE(AlmostEqual(1000.0, 1000.005));
}

TEST(ArgsortTest, AscendingAndStable) {
  const std::vector<float> v{3.0f, 1.0f, 2.0f, 1.0f};
  const std::vector<size_t> order = ArgsortAscending(v);
  EXPECT_EQ(order, (std::vector<size_t>{1, 3, 2, 0}));
}

}  // namespace
}  // namespace fedmp
