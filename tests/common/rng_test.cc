#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace fedmp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, NextIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextIndex(10)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 10 - 600);
    EXPECT_LT(c, draws / 10 + 600);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, LognormalJitterHasUnitMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.LognormalJitter(0.2);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng base(23);
  Rng a = base.Fork(0);
  Rng b = base.Fork(1);
  int same = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace fedmp
