#include "common/mem_info.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace fedmp {
namespace {

TEST(MemInfoTest, ParseStatusKbFindsKey) {
  const char* status =
      "Name:\tfedmp\n"
      "VmPeak:\t  123456 kB\n"
      "VmHWM:\t   98765 kB\n"
      "VmRSS:\t   45678 kB\n";
  EXPECT_EQ(internal::ParseStatusKb(status, "VmHWM"), 98765);
  EXPECT_EQ(internal::ParseStatusKb(status, "VmRSS"), 45678);
}

TEST(MemInfoTest, ParseStatusKbMissingKeyReturnsMinusOne) {
  EXPECT_EQ(internal::ParseStatusKb("Name:\tfedmp\n", "VmHWM"), -1);
  EXPECT_EQ(internal::ParseStatusKb("", "VmHWM"), -1);
}

TEST(MemInfoTest, ParseStatusKbMalformedValueReturnsMinusOne) {
  EXPECT_EQ(internal::ParseStatusKb("VmHWM:\tgarbage kB\n", "VmHWM"), -1);
  EXPECT_EQ(internal::ParseStatusKb("VmHWM:\n", "VmHWM"), -1);
  EXPECT_EQ(internal::ParseStatusKb("VmHWM:\t-5 kB\n", "VmHWM"), -1);
}

TEST(MemInfoTest, ParseStatusKbNullInputsReturnMinusOne) {
  EXPECT_EQ(internal::ParseStatusKb(nullptr, "VmHWM"), -1);
  EXPECT_EQ(internal::ParseStatusKb("VmHWM:\t1 kB\n", nullptr), -1);
  EXPECT_EQ(internal::ParseStatusKb("VmHWM:\t1 kB\n", ""), -1);
}

TEST(MemInfoTest, ParseStatusKbDoesNotMatchKeyPrefix) {
  // "VmRSS" must not match the "VmRSSExtra:" line.
  const char* status = "VmRSSExtra:\t 111 kB\nVmRSS:\t 222 kB\n";
  EXPECT_EQ(internal::ParseStatusKb(status, "VmRSS"), 222);
}

TEST(MemInfoTest, StatusFileKbMissingFileReturnsMinusOne) {
  EXPECT_EQ(
      internal::StatusFileKb("/nonexistent/fedmp_mem_info_test", "VmHWM"),
      -1);
}

TEST(MemInfoTest, StatusFileKbReadsWellFormedFile) {
  const std::string path = ::testing::TempDir() + "mem_info_test_status";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "Name:\tfedmp\nVmHWM:\t  4096 kB\nVmRSS:\tbroken\n";
  }
  EXPECT_EQ(internal::StatusFileKb(path.c_str(), "VmHWM"), 4096);
  EXPECT_EQ(internal::StatusFileKb(path.c_str(), "VmRSS"), -1);
  EXPECT_EQ(internal::StatusFileKb(path.c_str(), "VmSwap"), -1);
  std::remove(path.c_str());
}

TEST(MemInfoTest, ProcessProbesNeverCrashAndNeverGoNegative) {
  // On hosts without /proc (or with a hardened one) both must degrade to
  // their fallbacks, never crash, and never report a negative size.
  EXPECT_GE(PeakRssBytes(), 0);
  EXPECT_GE(CurrentRssBytes(), 0);
}

}  // namespace
}  // namespace fedmp
