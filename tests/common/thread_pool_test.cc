#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <tuple>
#include <vector>

namespace fedmp {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const auto& [begin, end, grain] :
       std::vector<std::tuple<int64_t, int64_t, int64_t>>{
           {0, 1, 1}, {0, 7, 1}, {0, 100, 1}, {0, 100, 33}, {5, 98, 7},
           {0, 3, 100}, {0, 1000, 1}}) {
    std::vector<std::atomic<int>> hits(static_cast<size_t>(end));
    for (auto& h : hits) h = 0;
    pool.ParallelFor(begin, end, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
      }
    });
    for (int64_t i = begin; i < end; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " in [" << begin << "," << end << ") grain "
          << grain;
    }
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(3, 3, 1, [&](int64_t, int64_t) { called = true; });
  pool.ParallelFor(5, 2, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int64_t covered = 0;
  pool.ParallelFor(0, 50, 1, [&](int64_t lo, int64_t hi) {
    covered += hi - lo;  // safe: inline on the caller
  });
  EXPECT_EQ(covered, 50);
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      // The nested call must run inline (InPoolWorker() on pool lanes).
      int64_t inner = 0;
      pool.ParallelFor(0, 10, 1, [&](int64_t a, int64_t b) {
        inner += b - a;
      });
      total.fetch_add(inner);
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, GrainBoundsChunkCount) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.ParallelFor(0, 100, 60, [&](int64_t, int64_t) { chunks.fetch_add(1); });
  // 100 iterations at grain 60 permit at most ceil(100/60) = 2 chunks.
  EXPECT_LE(chunks.load(), 2);
}

TEST(ThreadPoolTest, EdgeChunkingsCoverEveryIndexExactlyOnce) {
  // 0 items, 1 item, fewer items than lanes, and non-divisible splits.
  ThreadPool pool(4);
  for (const auto& [begin, end, grain] :
       std::vector<std::tuple<int64_t, int64_t, int64_t>>{
           {0, 0, 1},  {0, 1, 1},  {0, 2, 1},  {0, 3, 1},
           {0, 17, 5}, {0, 97, 8}, {3, 4, 16}, {-5, 6, 2}}) {
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> count{0};
    pool.ParallelFor(begin, end, grain, [&](int64_t lo, int64_t hi) {
      ASSERT_LT(lo, hi);
      ASSERT_GE(lo, begin);
      ASSERT_LE(hi, end);
      for (int64_t i = lo; i < hi; ++i) {
        sum.fetch_add(i);
        count.fetch_add(1);
      }
    });
    int64_t want_sum = 0;
    for (int64_t i = begin; i < end; ++i) want_sum += i;
    EXPECT_EQ(count.load(), std::max<int64_t>(0, end - begin))
        << "[" << begin << "," << end << ") grain " << grain;
    EXPECT_EQ(sum.load(), want_sum);
  }
}

TEST(ThreadPoolTest, DynamicChunkingStaysWithinGrainBound) {
  // grain caps chunk count at ceil(n/grain) even with many lanes available.
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  std::atomic<int64_t> covered{0};
  pool.ParallelFor(0, 64, 10, [&](int64_t lo, int64_t hi) {
    chunks.fetch_add(1);
    covered.fetch_add(hi - lo);
  });
  EXPECT_LE(chunks.load(), 7);  // ceil(64/10)
  EXPECT_EQ(covered.load(), 64);
}

TEST(TaskSetTest, DrainsEveryTagExactlyOnce) {
  ThreadPool pool(4);
  TaskSet tasks(&pool);
  std::vector<std::atomic<int>> ran(16);
  for (auto& r : ran) r = 0;
  for (int64_t t = 0; t < 16; ++t) {
    tasks.Submit(t, [&ran, t] { ran[static_cast<size_t>(t)].fetch_add(1); });
  }
  std::vector<int> drained(16, 0);
  int64_t tag = -1;
  while (tasks.DrainNext(&tag)) {
    ASSERT_GE(tag, 0);
    ASSERT_LT(tag, 16);
    ++drained[static_cast<size_t>(tag)];
    // The task must have completed before its tag is drained.
    EXPECT_EQ(ran[static_cast<size_t>(tag)].load(), 1);
  }
  for (int t = 0; t < 16; ++t) EXPECT_EQ(drained[static_cast<size_t>(t)], 1);
}

TEST(TaskSetTest, EmptySetDrainsFalseImmediately) {
  ThreadPool pool(4);
  TaskSet tasks(&pool);
  int64_t tag = 0;
  EXPECT_FALSE(tasks.DrainNext(&tag));
  tasks.WaitAll();  // no-op
}

TEST(TaskSetTest, SingleLaneDrainOrderEqualsSubmitOrder) {
  // With no spawned workers Submit runs inline, so the pipeline degenerates
  // to the exact serial path: drain order == submit order.
  ThreadPool pool(1);
  TaskSet tasks(&pool);
  std::vector<int64_t> completion_order;
  for (int64_t t = 0; t < 8; ++t) {
    tasks.Submit(t, [&completion_order, t] { completion_order.push_back(t); });
  }
  std::vector<int64_t> drain_order;
  int64_t tag = -1;
  while (tasks.DrainNext(&tag)) drain_order.push_back(tag);
  const std::vector<int64_t> want{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(completion_order, want);
  EXPECT_EQ(drain_order, want);
}

TEST(TaskSetTest, TasksMayRunNestedParallelFor) {
  // Task bodies are pool tasks, so nested ParallelFors inline (the trainer
  // relies on this: per-worker tasks call the parallel kernels underneath).
  ThreadPool pool(4);
  TaskSet tasks(&pool);
  std::atomic<int64_t> total{0};
  for (int64_t t = 0; t < 6; ++t) {
    tasks.Submit(t, [&pool, &total] {
      int64_t inner = 0;
      pool.ParallelFor(0, 25, 1,
                       [&inner](int64_t a, int64_t b) { inner += b - a; });
      total.fetch_add(inner);
    });
  }
  tasks.WaitAll();
  EXPECT_EQ(total.load(), 150);
  // Tags stay drainable after WaitAll.
  int64_t tag = -1;
  int drained = 0;
  while (tasks.DrainNext(&tag)) ++drained;
  EXPECT_EQ(drained, 6);
}

TEST(TaskSetTest, DestructorWaitsForUndrainedTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  {
    TaskSet tasks(&pool);
    for (int64_t t = 0; t < 10; ++t) {
      tasks.Submit(t, [&ran] { ran.fetch_add(1); });
    }
    // No drain: the destructor must block until all 10 completed.
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST(TaskSetTest, PendingCountsSubmittedMinusDrained) {
  // pending() = running + completed-but-undrained; it is what the windowed
  // scale-out loop throttles on, so its bookkeeping is pinned here.
  ThreadPool pool(2);
  TaskSet tasks(&pool);
  EXPECT_EQ(tasks.pending(), 0);
  for (int64_t t = 0; t < 6; ++t) {
    tasks.Submit(t, [] {});
    EXPECT_EQ(tasks.pending(), t + 1);  // completion never decrements it
  }
  tasks.WaitAll();
  EXPECT_EQ(tasks.pending(), 6) << "only draining may lower pending()";
  int64_t tag = -1;
  for (int64_t left = 6; left > 0; --left) {
    ASSERT_TRUE(tasks.DrainNext(&tag));
    EXPECT_EQ(tasks.pending(), left - 1);
  }
  EXPECT_FALSE(tasks.DrainNext(&tag));
  EXPECT_EQ(tasks.pending(), 0);
}

TEST(TaskSetTest, WindowedSubmitLoopNeverExceedsWindow) {
  // The exact throttle shape fl/trainer.cc uses: before each Submit, drain
  // until pending() is below the window. Observed in-flight count must
  // never pass the window at any point in the loop.
  ThreadPool pool(4);
  TaskSet tasks(&pool);
  const int64_t window = 3;
  const int64_t total = 20;
  std::vector<int> drained(total, 0);
  int64_t max_pending = 0;
  for (int64_t t = 0; t < total; ++t) {
    int64_t tag = -1;
    while (tasks.pending() >= window) {
      ASSERT_TRUE(tasks.DrainNext(&tag));
      ++drained[static_cast<size_t>(tag)];
    }
    tasks.Submit(t, [] {});
    max_pending = std::max(max_pending, tasks.pending());
  }
  int64_t tag = -1;
  while (tasks.DrainNext(&tag)) ++drained[static_cast<size_t>(tag)];
  EXPECT_LE(max_pending, window);
  for (int64_t t = 0; t < total; ++t) {
    EXPECT_EQ(drained[static_cast<size_t>(t)], 1) << "tag " << t;
  }
}

TEST(ThreadPoolTest, TryRunOneReturnsFalseOnEmptyQueue) {
  ThreadPool pool(4);
  EXPECT_FALSE(pool.TryRunOne());
}

TEST(ThreadPoolTest, ResolveThreadsPrecedence) {
  unsetenv("FEDMP_THREADS");
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1);  // hardware fallback
  setenv("FEDMP_THREADS", "5", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), 5);
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 5);  // env wins over the knob
  setenv("FEDMP_THREADS", "not-a-number", 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(2), 2);  // bad env is ignored
  unsetenv("FEDMP_THREADS");
}

TEST(ThreadPoolTest, GlobalPoolResizes) {
  ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 2);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
  std::atomic<int64_t> n{0};
  ParallelFor(0, 17, 1, [&](int64_t lo, int64_t hi) { n.fetch_add(hi - lo); });
  EXPECT_EQ(n.load(), 17);
}

}  // namespace
}  // namespace fedmp
