#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

namespace fedmp {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const auto& [begin, end, grain] :
       std::vector<std::tuple<int64_t, int64_t, int64_t>>{
           {0, 1, 1}, {0, 7, 1}, {0, 100, 1}, {0, 100, 33}, {5, 98, 7},
           {0, 3, 100}, {0, 1000, 1}}) {
    std::vector<std::atomic<int>> hits(static_cast<size_t>(end));
    for (auto& h : hits) h = 0;
    pool.ParallelFor(begin, end, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
      }
    });
    for (int64_t i = begin; i < end; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " in [" << begin << "," << end << ") grain "
          << grain;
    }
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(3, 3, 1, [&](int64_t, int64_t) { called = true; });
  pool.ParallelFor(5, 2, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int64_t covered = 0;
  pool.ParallelFor(0, 50, 1, [&](int64_t lo, int64_t hi) {
    covered += hi - lo;  // safe: inline on the caller
  });
  EXPECT_EQ(covered, 50);
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      // The nested call must run inline (InPoolWorker() on pool lanes).
      int64_t inner = 0;
      pool.ParallelFor(0, 10, 1, [&](int64_t a, int64_t b) {
        inner += b - a;
      });
      total.fetch_add(inner);
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, GrainBoundsChunkCount) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.ParallelFor(0, 100, 60, [&](int64_t, int64_t) { chunks.fetch_add(1); });
  // 100 iterations at grain 60 permit at most ceil(100/60) = 2 chunks.
  EXPECT_LE(chunks.load(), 2);
}

TEST(ThreadPoolTest, ResolveThreadsPrecedence) {
  unsetenv("FEDMP_THREADS");
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1);  // hardware fallback
  setenv("FEDMP_THREADS", "5", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), 5);
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 5);  // env wins over the knob
  setenv("FEDMP_THREADS", "not-a-number", 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(2), 2);  // bad env is ignored
  unsetenv("FEDMP_THREADS");
}

TEST(ThreadPoolTest, GlobalPoolResizes) {
  ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 2);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
  std::atomic<int64_t> n{0};
  ParallelFor(0, 17, 1, [&](int64_t lo, int64_t hi) { n.fetch_add(hi - lo); });
  EXPECT_EQ(n.load(), 17);
}

}  // namespace
}  // namespace fedmp
