#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/statusor.h"

namespace fedmp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad ratio");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad ratio");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad ratio");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == InternalError("a"));
}

TEST(StatusTest, StreamsToString) {
  std::ostringstream os;
  os << NotFoundError("missing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing");
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return Status::Ok();
}

Status Caller(int x) {
  FEDMP_RETURN_IF_ERROR(FailIfNegative(x));
  return InternalError("reached after check");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Caller(1).code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("gone");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  FEDMP_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(StatusOrTest, AssignOrReturnChains) {
  StatusOr<int> q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

}  // namespace
}  // namespace fedmp
