#include "common/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace fedmp {
namespace {

TEST(CsvTest, WritesHeaderAndRows) {
  CsvTable t({"a", "b"});
  ASSERT_TRUE(t.AddRow({std::string("1"), std::string("2")}).ok());
  ASSERT_TRUE(t.AddRow(std::vector<double>{3.5, 4.25}).ok());
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3.5000,4.2500\n");
}

TEST(CsvTest, RejectsWrongWidth) {
  CsvTable t({"a", "b"});
  EXPECT_FALSE(t.AddRow({std::string("only one")}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvTable t({"x"});
  ASSERT_TRUE(t.AddRow({std::string("a,b")}).ok());
  ASSERT_TRUE(t.AddRow({std::string("he said \"hi\"")}).ok());
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_EQ(os.str(), "x\n\"a,b\"\n\"he said \"\"hi\"\"\"\n");
}

TEST(CsvTest, PrettyAlignsColumns) {
  CsvTable t({"name", "v"});
  ASSERT_TRUE(t.AddRow({std::string("long-name"), std::string("1")}).ok());
  std::ostringstream os;
  t.WritePretty(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name      | v |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 1 |"), std::string::npos);
}

TEST(CsvTest, RowAccessors) {
  CsvTable t({"a"});
  ASSERT_TRUE(t.AddRow({std::string("7")}).ok());
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.row(0)[0], "7");
  EXPECT_EQ(t.header()[0], "a");
}

}  // namespace
}  // namespace fedmp
