#include "common/string_util.h"

#include <gtest/gtest.h>

namespace fedmp {
namespace {

TEST(SplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, JoinsWithDelimiter) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(HumanCountTest, PicksUnits) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(1500), "1.5K");
  EXPECT_EQ(HumanCount(2300000), "2.3M");
  EXPECT_EQ(HumanCount(4000000000LL), "4.0G");
}

TEST(FixedCellTest, PadsToWidth) {
  EXPECT_EQ(FixedCell(1.5, 8, 2), "    1.50");
}

}  // namespace
}  // namespace fedmp
