// Chaos-at-scale: regional (fog) outages. A fog node going down takes its
// whole worker slice out for the round; the run must degrade exactly like
// the PR-2 crash rounds — completion, finite global model, previous global
// kept on empty rounds — and the same seed must replay bit-for-bit at any
// thread count. The plan-level tests also pin the stream-isolation
// contract: enabling outages never shifts the per-worker fault draws.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/range_tree.h"
#include "common/thread_pool.h"
#include "edge/fault.h"
#include "fl/strategies/fedmp_strategy.h"
#include "fl/trainer.h"
#include "nn/tensor_ops.h"
#include "obs/metrics.h"

namespace fedmp::fl {
namespace {

// ---- Plan-level properties ------------------------------------------------

TEST(FogOutagePlanTest, FogKnobsAloneActivateThePlan) {
  edge::FaultPlanOptions off;
  EXPECT_FALSE(off.any());
  edge::FaultPlanOptions probe = off;
  probe.fog_outage_prob = 0.5;  // prob without groups: still disabled
  EXPECT_FALSE(probe.any());
  probe.fog_groups = 4;
  EXPECT_TRUE(probe.any());
  const edge::FaultPlan plan(16, probe);
  EXPECT_TRUE(plan.active());
}

TEST(FogOutagePlanTest, GroupAssignmentMatchesCanonicalSlices) {
  edge::FaultPlanOptions opts;
  opts.fog_outage_prob = 0.3;
  opts.fog_groups = 4;
  opts.seed = 77;
  const int workers = 11;
  const edge::FaultPlan plan(workers, opts);
  const auto slices = CanonicalRangeSlices(workers, opts.fog_groups);
  for (int w = 0; w < workers; ++w) {
    EXPECT_EQ(plan.FogGroupOf(w), SliceOf(slices, w)) << "worker " << w;
  }
  // Disabled plans report no group.
  const edge::FaultPlan inactive(workers, edge::FaultPlanOptions{});
  EXPECT_EQ(inactive.FogGroupOf(0), -1);
}

TEST(FogOutagePlanTest, OutageDrawIsDeterministicAndGroupWide) {
  edge::FaultPlanOptions opts;
  opts.fog_outage_prob = 0.4;
  opts.fog_groups = 3;
  opts.seed = 91;
  const int workers = 12;
  const edge::FaultPlan plan(workers, opts);
  const edge::FaultPlan replay(workers, opts);
  for (int64_t round = 0; round < 20; ++round) {
    for (int w = 0; w < workers; ++w) {
      // Pure function of (seed, round, group): replays agree, and every
      // worker of a group shares its fate.
      EXPECT_EQ(plan.FogOutageAt(round, w), replay.FogOutageAt(round, w));
      const int g = plan.FogGroupOf(w);
      for (int v = 0; v < workers; ++v) {
        if (plan.FogGroupOf(v) == g) {
          EXPECT_EQ(plan.FogOutageAt(round, w), plan.FogOutageAt(round, v))
              << "round " << round << " workers " << w << "," << v;
        }
      }
    }
  }
}

TEST(FogOutagePlanTest, EnablingOutagesDoesNotShiftPerWorkerDraws) {
  edge::FaultPlanOptions base;
  base.crash_prob = 0.2;
  base.straggle_prob = 0.3;
  base.straggle_factor = 3.0;
  base.corrupt_prob = 0.2;
  base.channel.loss_prob = 0.1;
  base.channel.duplicate_prob = 0.1;
  base.seed = 55;
  edge::FaultPlanOptions with_fog = base;
  with_fog.fog_outage_prob = 0.5;
  with_fog.fog_groups = 2;

  const int workers = 8;
  const edge::FaultPlan plain(workers, base);
  const edge::FaultPlan foggy(workers, with_fog);
  for (int64_t round = 0; round < 15; ++round) {
    for (int w = 0; w < workers; ++w) {
      const auto a = plain.FaultsFor(round, w);
      const auto b = foggy.FaultsFor(round, w);
      // Everything drawn from the per-worker streams is untouched; only the
      // down-state may differ (the group outage folds into it).
      EXPECT_EQ(a.slowdown, b.slowdown) << "round " << round << " w " << w;
      EXPECT_EQ(a.update_corrupted, b.update_corrupted);
      EXPECT_EQ(a.update_dropped, b.update_dropped);
      EXPECT_EQ(a.update_duplicated, b.update_duplicated);
      EXPECT_EQ(a.extra_delay, b.extra_delay);
      if (a.crashed) {
        EXPECT_TRUE(b.crashed);  // outages only add downtime
      }
    }
  }
}

TEST(FogOutagePlanTest, RejoinWindowAppliesToGroupOutages) {
  edge::FaultPlanOptions opts;
  opts.fog_outage_prob = 0.35;
  opts.fog_groups = 2;
  opts.rejoin_after = 2;
  opts.seed = 13;
  const int workers = 6;
  const edge::FaultPlan plan(workers, opts);
  // Find an outage round followed by a clean draw: the worker must still be
  // down the next round (healing takes rejoin_after rounds).
  bool exercised = false;
  for (int64_t round = 0; round < 50 && !exercised; ++round) {
    for (int w = 0; w < workers; ++w) {
      if (plan.FogOutageAt(round, w) && !plan.FogOutageAt(round + 1, w)) {
        EXPECT_TRUE(plan.IsDown(round, w));
        EXPECT_TRUE(plan.IsDown(round + 1, w))
            << "rejoin window ignored for a fog outage";
        exercised = true;
        break;
      }
    }
  }
  EXPECT_TRUE(exercised) << "no outage/clean round pair in 50 rounds";
}

// ---- Engine-level: runs degrade gracefully and replay exactly -------------

struct RunResult {
  nn::TensorList weights;
  RoundLog log;
};

RunResult RunWithOutages(int num_threads, uint64_t fault_seed) {
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 8);
  TrainerOptions opt;
  opt.max_rounds = 10;
  opt.eval_every = 3;
  opt.eval_batch_size = 16;
  opt.seed = 3;
  opt.num_threads = num_threads;
  opt.faults.fog_outage_prob = 0.3;
  opt.faults.fog_groups = 4;
  opt.faults.rejoin_after = 2;
  opt.faults.seed = fault_seed;
  // The fault plan's groups mirror the aggregation topology on purpose.
  opt.scale.fog_fan_out = 4;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  Trainer trainer(&task, fleet, std::move(partition),
                  std::make_unique<FedMpStrategy>(), opt);
  RunResult out;
  out.log = trainer.Run();
  out.weights = trainer.server().weights();
  return out;
}

void ExpectBitIdentical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    ASSERT_TRUE(a.weights[i].SameShape(b.weights[i]));
    EXPECT_EQ(nn::MaxAbsDiff(a.weights[i], b.weights[i]), 0.0)
        << "global weight tensor " << i << " diverged";
  }
  ASSERT_EQ(a.log.records().size(), b.log.records().size());
  for (size_t i = 0; i < a.log.records().size(); ++i) {
    const auto& ra = a.log.records()[i];
    const auto& rb = b.log.records()[i];
    EXPECT_EQ(ra.sim_time, rb.sim_time) << "round " << ra.round;
    EXPECT_EQ(ra.train_loss, rb.train_loss) << "round " << ra.round;
    EXPECT_EQ(ra.participants, rb.participants) << "round " << ra.round;
  }
}

TEST(FogOutageChaosTest, OutageRoundsDegradeGracefullyAndCount) {
  obs::SetEnabled(true);
  obs::Registry::Get().Reset();
  const RunResult run = RunWithOutages(1, /*fault_seed=*/41);

  EXPECT_EQ(run.log.records().size(), 10u);
  EXPECT_TRUE(nn::AllFiniteList(run.weights));
  double prev = 0.0;
  bool participation_dropped = false;
  for (const auto& r : run.log.records()) {
    EXPECT_GT(r.sim_time, prev) << "clock must keep advancing";
    prev = r.sim_time;
    if (r.participants < 8) participation_dropped = true;
  }
  EXPECT_TRUE(participation_dropped) << "no fog outage ever fired";

  // The injected-event tally has to see them too.
  double outage_count = 0.0;
  for (const auto& m : obs::Registry::Get().Snapshot()) {
    if (m.name == "faults.fog_outage") outage_count = m.value;
  }
  EXPECT_GT(outage_count, 0.0);
  obs::SetEnabled(false);
}

TEST(FogOutageChaosTest, SameSeedBitIdenticalAcrossThreadCounts) {
  const RunResult serial = RunWithOutages(1, /*fault_seed=*/41);
  const RunResult parallel = RunWithOutages(4, /*fault_seed=*/41);
  ExpectBitIdentical(serial, parallel);
  ThreadPool::SetGlobalThreads(1);
}

TEST(FogOutageChaosTest, AllGroupsDownKeepsPreviousGlobal) {
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 6);
  TrainerOptions opt;
  opt.max_rounds = 3;
  opt.eval_every = 3;
  opt.eval_batch_size = 16;
  opt.seed = 3;
  opt.faults.fog_outage_prob = 1.0;  // every region, every round
  opt.faults.fog_groups = 3;
  opt.scale.fog_fan_out = 3;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  Trainer trainer(&task, fleet, std::move(partition),
                  std::make_unique<FedMpStrategy>(), opt);
  const nn::TensorList initial = trainer.server().weights();

  const RoundLog log = trainer.Run();

  EXPECT_EQ(log.records().size(), 3u);
  for (const auto& r : log.records()) {
    EXPECT_EQ(r.participants, 0);
  }
  const nn::TensorList& final = trainer.server().weights();
  ASSERT_EQ(final.size(), initial.size());
  for (size_t i = 0; i < final.size(); ++i) {
    EXPECT_EQ(nn::MaxAbsDiff(final[i], initial[i]), 0.0)
        << "empty rounds must leave the global model untouched";
  }
}

}  // namespace
}  // namespace fedmp::fl
