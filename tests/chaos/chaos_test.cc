// Chaos-test harness for the FL stack (DESIGN.md "Fault model").
//
// Property-style tests driving the sync and async engines through a
// deterministic FaultPlan cocktail — crashes with rejoin, stragglers,
// corrupt payloads, message loss/duplication/delay — and asserting the
// system-level invariants:
//   * training always runs to completion,
//   * the global model never contains NaN/Inf,
//   * the same fault-plan seed replays bit-identical weights and logs,
//   * no parameter silently stops training (bounded coverage staleness),
//   * an all-crash round degrades gracefully instead of aborting.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "fl/async_trainer.h"
#include "fl/strategies/fedmp_strategy.h"
#include "fl/strategies/syn_fl.h"
#include "fl/trainer.h"
#include "nn/tensor_ops.h"

namespace fedmp::fl {
namespace {

struct RunResult {
  nn::TensorList weights;
  RoundLog log;
};

data::FlTask TinyTask() {
  return data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
}

std::vector<edge::DeviceProfile> Fleet(int n = 5) {
  return edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, n);
}

// The full fault cocktail: every injector active at once.
edge::FaultPlanOptions Cocktail() {
  edge::FaultPlanOptions f;
  f.crash_prob = 0.15;
  f.rejoin_after = 2;
  f.straggle_prob = 0.2;
  f.straggle_factor = 3.0;
  f.corrupt_prob = 0.15;
  f.channel.loss_prob = 0.1;
  f.channel.duplicate_prob = 0.15;
  f.channel.max_delay_seconds = 1.0;
  return f;
}

TrainerOptions SyncOptions() {
  TrainerOptions opt;
  opt.max_rounds = 10;
  opt.eval_every = 3;
  opt.eval_batch_size = 16;
  opt.seed = 3;
  return opt;
}

AsyncTrainerOptions AsyncOptions() {
  AsyncTrainerOptions opt;
  opt.base = SyncOptions();
  opt.m = 2;
  return opt;
}

RunResult RunSync(const TrainerOptions& opt, int fleet_size = 5) {
  const data::FlTask task = TinyTask();
  const auto fleet = Fleet(fleet_size);
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  Trainer trainer(&task, fleet, std::move(partition),
                  std::make_unique<FedMpStrategy>(), opt);
  RunResult out;
  out.log = trainer.Run();
  out.weights = trainer.server().weights();
  return out;
}

RunResult RunAsync(const AsyncTrainerOptions& opt, int fleet_size = 5) {
  const data::FlTask task = TinyTask();
  const auto fleet = Fleet(fleet_size);
  Rng rng(opt.base.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  AsyncTrainer trainer(&task, fleet, std::move(partition),
                       std::make_unique<FedMpStrategy>(), opt);
  RunResult out;
  out.log = trainer.Run();
  out.weights = trainer.server().weights();
  return out;
}

void ExpectBitIdentical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    ASSERT_TRUE(a.weights[i].SameShape(b.weights[i]));
    EXPECT_EQ(nn::MaxAbsDiff(a.weights[i], b.weights[i]), 0.0)
        << "global weight tensor " << i << " diverged";
  }
  ASSERT_EQ(a.log.records().size(), b.log.records().size());
  for (size_t i = 0; i < a.log.records().size(); ++i) {
    const auto& ra = a.log.records()[i];
    const auto& rb = b.log.records()[i];
    EXPECT_EQ(ra.sim_time, rb.sim_time) << "round " << ra.round;
    EXPECT_EQ(ra.train_loss, rb.train_loss) << "round " << ra.round;
    EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << "round " << ra.round;
    EXPECT_EQ(ra.participants, rb.participants) << "round " << ra.round;
    EXPECT_EQ(ra.rejected_updates, rb.rejected_updates)
        << "round " << ra.round;
    EXPECT_EQ(ra.duplicate_updates, rb.duplicate_updates)
        << "round " << ra.round;
    EXPECT_EQ(ra.max_param_staleness, rb.max_param_staleness)
        << "round " << ra.round;
  }
}

// ---- Completion + finiteness under the full cocktail ----------------------

TEST(ChaosSyncTest, SurvivesFullFaultCocktail) {
  TrainerOptions opt = SyncOptions();
  opt.faults = Cocktail();
  const RunResult run = RunSync(opt);

  EXPECT_EQ(run.log.records().size(), 10u);
  EXPECT_TRUE(nn::AllFiniteList(run.weights))
      << "corrupt payloads leaked into the global model";
  double prev = 0.0;
  int64_t fault_evidence = 0;
  for (const auto& r : run.log.records()) {
    EXPECT_GT(r.sim_time, prev) << "clock must keep advancing";
    prev = r.sim_time;
    fault_evidence += r.rejected_updates + r.duplicate_updates;
    if (r.participants < 5) ++fault_evidence;
  }
  EXPECT_GT(fault_evidence, 0) << "the cocktail never injected anything";
}

TEST(ChaosAsyncTest, SurvivesFullFaultCocktail) {
  AsyncTrainerOptions opt = AsyncOptions();
  opt.base.faults = Cocktail();
  const RunResult run = RunAsync(opt);

  EXPECT_EQ(run.log.records().size(), 10u);
  EXPECT_TRUE(nn::AllFiniteList(run.weights));
  double prev = -1.0;
  for (const auto& r : run.log.records()) {
    EXPECT_GE(r.sim_time, prev);
    prev = r.sim_time;
    EXPECT_LE(r.participants, 2);
  }
}

// ---- Same fault-plan seed => bit-identical replay -------------------------

TEST(ChaosDeterminismTest, SyncSameSeedBitIdenticalAcrossThreadCounts) {
  TrainerOptions opt = SyncOptions();
  opt.faults = Cocktail();
  opt.num_threads = 1;
  const RunResult serial = RunSync(opt);
  opt.num_threads = 4;
  const RunResult parallel = RunSync(opt);
  ExpectBitIdentical(serial, parallel);
  ThreadPool::SetGlobalThreads(1);
}

TEST(ChaosDeterminismTest, AsyncSameSeedBitIdentical) {
  AsyncTrainerOptions opt = AsyncOptions();
  opt.base.faults = Cocktail();
  const RunResult a = RunAsync(opt);
  const RunResult b = RunAsync(opt);
  ExpectBitIdentical(a, b);
}

TEST(ChaosDeterminismTest, DifferentFaultSeedsDiverge) {
  TrainerOptions opt = SyncOptions();
  opt.max_rounds = 6;
  opt.faults.crash_prob = 0.4;
  opt.faults.seed = 101;
  const RunResult a = RunSync(opt);
  opt.faults.seed = 202;
  const RunResult b = RunSync(opt);
  // Same learning seed, different failure trace: participation differs.
  bool diverged = false;
  for (size_t i = 0; i < a.log.records().size(); ++i) {
    if (a.log.records()[i].participants != b.log.records()[i].participants) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

// ---- All-crash rounds degrade gracefully ----------------------------------

TEST(ChaosSyncTest, AllCrashRoundKeepsPreviousGlobal) {
  const data::FlTask task = TinyTask();
  const auto fleet = Fleet(3);
  TrainerOptions opt = SyncOptions();
  opt.max_rounds = 3;
  opt.faults.crash_prob = 1.0;  // nobody ever survives a round
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  Trainer trainer(&task, fleet, std::move(partition),
                  std::make_unique<SynFlStrategy>(), opt);
  const nn::TensorList initial = trainer.server().weights();

  const RoundLog log = trainer.Run();

  EXPECT_EQ(log.records().size(), 3u);
  double prev = 0.0;
  for (const auto& r : log.records()) {
    EXPECT_EQ(r.participants, 0);
    EXPECT_GT(r.sim_time, prev);
    prev = r.sim_time;
  }
  const nn::TensorList& final = trainer.server().weights();
  ASSERT_EQ(final.size(), initial.size());
  for (size_t i = 0; i < final.size(); ++i) {
    EXPECT_EQ(nn::MaxAbsDiff(final[i], initial[i]), 0.0)
        << "empty rounds must leave the global model untouched";
  }
}

TEST(ChaosAsyncTest, AllCrashRoundsDegradeGracefully) {
  const data::FlTask task = TinyTask();
  const auto fleet = Fleet(3);
  AsyncTrainerOptions opt;
  opt.base = SyncOptions();
  opt.base.max_rounds = 3;
  opt.base.faults.crash_prob = 1.0;
  opt.m = 1;
  opt.max_redispatch_per_round = 1;
  Rng rng(opt.base.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  AsyncTrainer trainer(&task, fleet, std::move(partition),
                       std::make_unique<FedMpStrategy>(), opt);
  const nn::TensorList initial = trainer.server().weights();

  const RoundLog log = trainer.Run();

  EXPECT_EQ(log.records().size(), 3u);
  double prev = 0.0;
  for (const auto& r : log.records()) {
    EXPECT_EQ(r.participants, 0);
    EXPECT_GT(r.sim_time, prev);
    prev = r.sim_time;
  }
  const nn::TensorList& final = trainer.server().weights();
  for (size_t i = 0; i < final.size(); ++i) {
    EXPECT_EQ(nn::MaxAbsDiff(final[i], initial[i]), 0.0);
  }
}

// ---- No parameter silently stops training ---------------------------------

TEST(ChaosSyncTest, ParameterStalenessIsBounded) {
  TrainerOptions opt = SyncOptions();
  opt.max_rounds = 14;
  opt.max_param_staleness = 3;
  opt.faults.crash_prob = 0.25;
  opt.faults.corrupt_prob = 0.15;
  const RunResult run = RunSync(opt, /*fleet_size=*/4);

  for (const auto& r : run.log.records()) {
    // The bound can only be exceeded while NO update is being accepted at
    // all (every such round forces a full-model refresh for the next one).
    if (r.participants > 0) {
      EXPECT_LE(r.max_param_staleness, opt.max_param_staleness)
          << "round " << r.round
          << ": a parameter went untrained past the staleness bound";
    }
  }
  EXPECT_TRUE(nn::AllFiniteList(run.weights));
}

// ---- Satellite: Asyn-FedMP converges under 10% crashes --------------------

TEST(ChaosAsyncTest, ConvergesWithTenPercentCrashes) {
  AsyncTrainerOptions opt = AsyncOptions();
  opt.base.max_rounds = 25;
  opt.base.faults.crash_prob = 0.1;
  opt.m = 3;
  const RunResult run = RunAsync(opt);

  EXPECT_TRUE(nn::AllFiniteList(run.weights));
  const double first = run.log.records().front().test_accuracy;
  EXPECT_GT(run.log.FinalAccuracy(), first)
      << "Asyn-FedMP stopped learning under a 10% crash rate";
}

// ---- Satellite: opt-in async straggler timeout ----------------------------

TEST(ChaosAsyncTest, DeadlineTimeoutCutsExtremeStragglers) {
  AsyncTrainerOptions opt = AsyncOptions();
  opt.base.max_rounds = 12;
  opt.base.faults.straggle_prob = 0.3;
  opt.base.faults.straggle_factor = 25.0;  // pathological stragglers
  opt.apply_deadline_timeout = true;

  const RunResult timed = RunAsync(opt);
  EXPECT_EQ(timed.log.records().size(), 12u);
  EXPECT_TRUE(nn::AllFiniteList(timed.weights));

  // Timeouts are part of the deterministic trace too.
  const RunResult replay = RunAsync(opt);
  ExpectBitIdentical(timed, replay);

  // The timeout must actually fire: against the identical fault trace with
  // the timeout disabled, the event timeline has to diverge.
  opt.apply_deadline_timeout = false;
  const RunResult waited = RunAsync(opt);
  bool diverged = false;
  for (size_t i = 0; i < timed.log.records().size() &&
                     i < waited.log.records().size();
       ++i) {
    if (timed.log.records()[i].sim_time != waited.log.records()[i].sim_time) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged) << "no straggler was ever timed out";
}

}  // namespace
}  // namespace fedmp::fl
