#include "obs/watchdog.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/fedmp.h"
#include "obs/analysis/report.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::obs {
namespace {

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

WatchdogSignals BaseSignals() {
  WatchdogSignals signals;
  signals.round = 5;
  signals.straggler_gap_max = 1.0;
  signals.median_completion_s = 1.0;
  signals.survivors = 8;
  return signals;
}

// ---------------------------------------------------------------------------
// Pure rule engine
// ---------------------------------------------------------------------------

TEST(WatchdogRulesTest, StragglerBlowupFiresAboveFactorTimesMedian) {
  WatchdogRules rules;
  rules.straggler_gap_factor = 4.0;
  Watchdog dog(rules);

  WatchdogSignals calm = BaseSignals();
  calm.straggler_gap_max = 3.9;
  EXPECT_TRUE(dog.Evaluate(calm).empty());

  WatchdogSignals blowup = BaseSignals();
  blowup.straggler_gap_max = 4.1;
  const auto alerts = dog.Evaluate(blowup);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "straggler_blowup");
  EXPECT_TRUE(alerts[0].deterministic);
  EXPECT_DOUBLE_EQ(alerts[0].value, 4.1);
}

TEST(WatchdogRulesTest, StragglerRuleIgnoresDegenerateMedian) {
  Watchdog dog(WatchdogRules{});
  WatchdogSignals signals = BaseSignals();
  signals.median_completion_s = 0.0;  // empty/degenerate round
  signals.straggler_gap_max = 1e9;
  EXPECT_TRUE(dog.Evaluate(signals).empty());
}

TEST(WatchdogRulesTest, FogSilenceFiresOnceThenRearmsAfterRecovery) {
  WatchdogRules rules;
  rules.fog_silent_rounds = 2;
  Watchdog dog(rules);

  WatchdogSignals signals = BaseSignals();
  signals.fog_participants = {3, 0};
  EXPECT_TRUE(dog.Evaluate(signals).empty());  // streak 1 < 2

  auto alerts = dog.Evaluate(signals);  // streak 2 == 2: fire
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "fog_silent");
  EXPECT_EQ(alerts[0].fog, 1);

  EXPECT_TRUE(dog.Evaluate(signals).empty());  // streak 3: already fired

  signals.fog_participants = {3, 4};  // region recovers
  EXPECT_TRUE(dog.Evaluate(signals).empty());

  signals.fog_participants = {3, 0};  // silent again: streak restarts
  EXPECT_TRUE(dog.Evaluate(signals).empty());
  alerts = dog.Evaluate(signals);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "fog_silent");
}

TEST(WatchdogRulesTest, AccuracyNanAlertsOnlyWhenEvaluated) {
  Watchdog dog(WatchdogRules{});
  WatchdogSignals signals = BaseSignals();
  signals.evaluated = false;
  signals.accuracy = std::nan("");
  EXPECT_TRUE(dog.Evaluate(signals).empty());

  signals.evaluated = true;
  const auto alerts = dog.Evaluate(signals);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "accuracy_nan");
  EXPECT_TRUE(alerts[0].deterministic);
}

TEST(WatchdogRulesTest, AccuracyStallFiresAfterNEvalsWithoutImprovement) {
  WatchdogRules rules;
  rules.accuracy_stall_evals = 3;
  rules.accuracy_stall_eps = 0.01;
  Watchdog dog(rules);

  WatchdogSignals signals = BaseSignals();
  signals.evaluated = true;
  signals.accuracy = 0.50;
  EXPECT_TRUE(dog.Evaluate(signals).empty());  // baseline

  signals.accuracy = 0.505;  // within eps: no improvement, streak 1
  EXPECT_TRUE(dog.Evaluate(signals).empty());
  signals.accuracy = 0.502;  // streak 2
  EXPECT_TRUE(dog.Evaluate(signals).empty());
  signals.accuracy = 0.503;  // streak 3: fire
  auto alerts = dog.Evaluate(signals);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "accuracy_stall");

  signals.accuracy = 0.60;  // real improvement resets the streak
  EXPECT_TRUE(dog.Evaluate(signals).empty());
  signals.accuracy = 0.601;
  EXPECT_TRUE(dog.Evaluate(signals).empty());
}

TEST(WatchdogRulesTest, RssOverBudgetIsEnvironmentRule) {
  WatchdogRules rules;
  rules.rss_budget_bytes = 100 << 20;
  Watchdog dog(rules);

  WatchdogSignals signals = BaseSignals();
  signals.peak_rss_bytes = 99 << 20;
  EXPECT_TRUE(dog.Evaluate(signals).empty());

  signals.peak_rss_bytes = 101 << 20;
  const auto alerts = dog.Evaluate(signals);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "rss_over_budget");
  EXPECT_FALSE(alerts[0].deterministic);
}

TEST(WatchdogRulesTest, CacheCollapseRespectsWarmup) {
  WatchdogRules rules;
  rules.cache_hit_rate_floor = 0.5;
  rules.cache_warmup_rounds = 8;
  Watchdog dog(rules);

  WatchdogSignals cold = BaseSignals();
  cold.round = 3;  // still warming
  cold.model_cache_hit_rate = 0.1;
  EXPECT_TRUE(dog.Evaluate(cold).empty());

  WatchdogSignals unknown = BaseSignals();
  unknown.round = 20;
  unknown.model_cache_hit_rate = -1.0;  // no cache in play
  EXPECT_TRUE(dog.Evaluate(unknown).empty());

  WatchdogSignals warm = BaseSignals();
  warm.round = 20;
  warm.model_cache_hit_rate = 0.1;
  const auto alerts = dog.Evaluate(warm);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "cache_hit_rate_collapse");
  EXPECT_FALSE(alerts[0].deterministic);
}

TEST(WatchdogRulesTest, DisabledRulesNeverFire) {
  WatchdogRules rules;
  rules.straggler_gap_factor = 0.0;
  rules.fog_silent_rounds = 0;
  Watchdog dog(rules);
  WatchdogSignals signals = BaseSignals();
  signals.straggler_gap_max = 1e9;
  signals.fog_participants = {0, 0, 0};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(dog.Evaluate(signals).empty());
  }
}

TEST(WatchdogRulesTest, CommBytesBlowupFiresAgainstBestRoundBaseline) {
  WatchdogRules rules;
  rules.comm_bytes_blowup_factor = 2.0;
  Watchdog dog(rules);

  // First non-zero round only seeds the baseline — nothing to compare yet.
  WatchdogSignals signals = BaseSignals();
  signals.round_wire_bytes = 1000;
  EXPECT_TRUE(dog.Evaluate(signals).empty());

  // Within factor x baseline: quiet, and a smaller round lowers the bar.
  signals.round_wire_bytes = 1900;
  EXPECT_TRUE(dog.Evaluate(signals).empty());
  signals.round_wire_bytes = 500;
  EXPECT_TRUE(dog.Evaluate(signals).empty());

  // 1100 > 2 x 500: pruning regressed toward dense transfers.
  signals.round_wire_bytes = 1100;
  const auto alerts = dog.Evaluate(signals);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "comm_bytes_blowup");
  EXPECT_TRUE(alerts[0].deterministic);
  EXPECT_DOUBLE_EQ(alerts[0].value, 1100.0);
  EXPECT_DOUBLE_EQ(alerts[0].threshold, 1000.0);
}

TEST(WatchdogRulesTest, FlopBudgetRegressionFiresAboveBudget) {
  WatchdogRules rules;
  rules.flop_budget = 10000;
  Watchdog dog(rules);

  WatchdogSignals signals = BaseSignals();
  signals.round_flops = 10000;
  EXPECT_TRUE(dog.Evaluate(signals).empty());

  signals.round_flops = 10001;
  const auto alerts = dog.Evaluate(signals);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "flop_budget_regression");
  EXPECT_TRUE(alerts[0].deterministic);
  EXPECT_DOUBLE_EQ(alerts[0].threshold, 10000.0);
}

TEST(WatchdogRulesTest, LedgerRulesAreOffByDefault) {
  Watchdog dog(WatchdogRules{});
  WatchdogSignals signals = BaseSignals();
  signals.round_wire_bytes = 1;
  signals.round_flops = 1;
  EXPECT_TRUE(dog.Evaluate(signals).empty());
  signals.round_wire_bytes = 1LL << 50;
  signals.round_flops = 1LL << 50;
  EXPECT_TRUE(dog.Evaluate(signals).empty());
}

// ---------------------------------------------------------------------------
// Global instance + env parsing + event emission
// ---------------------------------------------------------------------------

class WatchdogGlobalTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetForTest(); }
  void TearDown() override {
    Disable();
    ResetForTest();
  }
};

TEST_F(WatchdogGlobalTest, EnableFromEnvParsesOverrides) {
  ::unsetenv("FEDMP_WATCHDOG");
  EXPECT_FALSE(MaybeEnableWatchdogFromEnv());
  EXPECT_FALSE(WatchdogActive());

  ::setenv("FEDMP_WATCHDOG",
           "straggler_factor=6,fog_rounds=2,rss_mb=500,comm_factor=4,"
           "flop_budget=1000",
           1);
  EXPECT_TRUE(MaybeEnableWatchdogFromEnv());
  ::unsetenv("FEDMP_WATCHDOG");
  ASSERT_TRUE(WatchdogActive());

  // The installed rules are observable through behavior: a gap of 5x the
  // median stays quiet, 7x fires.
  WatchdogSignals signals = BaseSignals();
  signals.straggler_gap_max = 5.0;
  Enable(TraceOptions{});
  EXPECT_EQ(WatchdogObserveRound(signals), 0);
  signals.straggler_gap_max = 7.0;
  EXPECT_EQ(WatchdogObserveRound(signals), 1);

  // The ledger overrides landed too: a round past the FLOP budget fires.
  signals.straggler_gap_max = 1.0;
  signals.round_flops = 1001;
  EXPECT_EQ(WatchdogObserveRound(signals), 1);
}

TEST_F(WatchdogGlobalTest, ObserveRoundEmitsAlertEventAndCounter) {
  Enable(TraceOptions{});
  WatchdogRules rules;
  rules.straggler_gap_factor = 2.0;
  EnableWatchdog(rules);

  WatchdogSignals signals = BaseSignals();
  signals.straggler_gap_max = 10.0;
  EXPECT_EQ(WatchdogObserveRound(signals), 1);

  const std::string jsonl = EventsJsonl();
  EXPECT_NE(jsonl.find("\"event\":\"obs.alert\""), std::string::npos);
  EXPECT_NE(jsonl.find("straggler_blowup"), std::string::npos);
  double alerts_total = -1.0;
  for (const MetricSnapshot& snapshot : Registry::Get().Snapshot()) {
    if (snapshot.name == "obs.alerts") alerts_total = snapshot.value;
  }
  EXPECT_DOUBLE_EQ(alerts_total, 1.0);
}

TEST_F(WatchdogGlobalTest, EnvironmentAlertStaysOutOfLogicalExport) {
  Enable(TraceOptions{});
  WatchdogRules rules;
  rules.straggler_gap_factor = 0.0;  // keep deterministic rules quiet
  rules.rss_budget_bytes = 1;
  EnableWatchdog(rules);

  WatchdogSignals signals = BaseSignals();
  signals.peak_rss_bytes = 1 << 20;
  EXPECT_EQ(WatchdogObserveRound(signals), 1);

  EXPECT_EQ(EventsJsonl().find("obs.alert"), std::string::npos);
  EXPECT_NE(ChromeTraceJson().find("obs.alert"), std::string::npos);
}

TEST_F(WatchdogGlobalTest, AlertTriggersFlightRecorderDump) {
  Enable(TraceOptions{});
  FlightRecorderOptions flight;
  flight.dump_path_prefix = ::testing::TempDir() + "watchdog_alert_dump";
  flight.install_signal_handlers = false;
  EnableFlightRecorder(flight);
  WatchdogRules rules;
  rules.straggler_gap_factor = 2.0;
  EnableWatchdog(rules);

  WatchdogSignals signals = BaseSignals();
  signals.straggler_gap_max = 100.0;
  EXPECT_EQ(WatchdogObserveRound(signals), 1);

  const std::string trace_path =
      flight.dump_path_prefix + "_dump_trace.json";
  EXPECT_TRUE(FileExists(trace_path));
  std::remove(trace_path.c_str());
  std::remove((flight.dump_path_prefix + "_dump_events.jsonl").c_str());
}

// ---------------------------------------------------------------------------
// End-to-end: injected straggler blowup through the real engine
// ---------------------------------------------------------------------------

struct ChaosRun {
  std::string events_jsonl;
  std::string report_human;
  std::string report_json;
  bool dump_written = false;
};

ChaosRun RunStragglerChaos(int num_threads) {
  ResetForTest();
  Enable(TraceOptions{});
  const std::string prefix = ::testing::TempDir() + "watchdog_e2e_t" +
                             std::to_string(num_threads);
  FlightRecorderOptions flight;
  flight.dump_path_prefix = prefix;
  flight.install_signal_handlers = false;
  EnableFlightRecorder(flight);
  WatchdogRules rules;
  rules.straggler_gap_factor = 2.0;
  EnableWatchdog(rules);

  ExperimentConfig config;
  config.task = "cnn";
  config.method = "fedmp";
  config.scale = data::TaskScale::kTiny;
  config.trainer.max_rounds = 3;
  config.trainer.eval_every = 10;  // accuracy is not the axis under test
  config.trainer.seed = 23;
  config.trainer.num_threads = num_threads;
  config.trainer.deadline.enabled = false;  // stragglers must survive
  config.trainer.faults.straggle_prob = 0.4;
  config.trainer.faults.straggle_factor = 40.0;

  ChaosRun run;
  auto log = RunExperiment(config);
  EXPECT_TRUE(log.ok());
  run.events_jsonl = EventsJsonl();
  run.dump_written = FileExists(prefix + "_dump_trace.json");

  analysis::ReportInputs inputs;
  inputs.events_jsonl = run.events_jsonl;
  analysis::ReportOptions options;
  options.deterministic_only = true;
  const analysis::Report report = analysis::BuildReport(inputs, options);
  run.report_human = report.human;
  run.report_json = report.json;

  Disable();
  std::remove((prefix + "_dump_trace.json").c_str());
  std::remove((prefix + "_dump_events.jsonl").c_str());
  return run;
}

TEST(WatchdogEndToEndTest, StragglerBlowupAlertIsThreadCountInvariant) {
  const ChaosRun t1 = RunStragglerChaos(1);
  const ChaosRun t4 = RunStragglerChaos(4);
  ResetForTest();

  // The injected blowup produced a deterministic alert, a flight-recorder
  // dump, and an Alerts section in the report...
  EXPECT_NE(t1.events_jsonl.find("\"event\":\"obs.alert\""),
            std::string::npos);
  EXPECT_NE(t1.events_jsonl.find("straggler_blowup"), std::string::npos);
  EXPECT_TRUE(t1.dump_written);
  EXPECT_TRUE(t4.dump_written);
  EXPECT_NE(t1.report_human.find("Alerts ("), std::string::npos);
  EXPECT_NE(t1.report_json.find("\"straggler_blowup\""), std::string::npos);

  // ...and a Resources section (ledger rollups are logical events too)...
  EXPECT_NE(t1.report_human.find("Resources ("), std::string::npos);
  EXPECT_NE(t1.report_json.find("\"resources\""), std::string::npos);

  // ...all bit-identical across thread counts in deterministic-logical mode.
  EXPECT_EQ(t1.events_jsonl, t4.events_jsonl);
  EXPECT_EQ(t1.report_human, t4.report_human);
  EXPECT_EQ(t1.report_json, t4.report_json);
}

TEST(WatchdogEndToEndTest, InjectedByteBlowupFiresBothLedgerRules) {
  ResetForTest();
  Enable(TraceOptions{});
  WatchdogRules rules;
  rules.straggler_gap_factor = 0.0;  // isolate the ledger rules
  rules.fog_silent_rounds = 0;
  // A 1-MAC budget makes every round a regression; a 1.0x factor fires the
  // moment any round ships more bytes than the best round so far (E-UCB
  // ratio exploration guarantees round-to-round variation).
  rules.comm_bytes_blowup_factor = 1.0;
  rules.flop_budget = 1;
  EnableWatchdog(rules);

  ExperimentConfig config;
  config.task = "cnn";
  config.method = "fedmp";
  config.scale = data::TaskScale::kTiny;
  config.trainer.max_rounds = 6;
  config.trainer.eval_every = 10;
  config.trainer.seed = 23;
  auto log = RunExperiment(config);
  EXPECT_TRUE(log.ok());
  const std::string events = EventsJsonl();
  Disable();
  ResetForTest();

  EXPECT_NE(events.find("\"rule\":\"flop_budget_regression\""),
            std::string::npos);
  EXPECT_NE(events.find("\"rule\":\"comm_bytes_blowup\""), std::string::npos);
}

}  // namespace
}  // namespace fedmp::obs
