#include "obs/sampling.h"

#include <cstdlib>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace fedmp::obs {
namespace {

class SamplingTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetForTest(); }
  void TearDown() override {
    Disable();
    ResetForTest();
  }
};

TEST_F(SamplingTest, PureFunctionIsReproducible) {
  for (int worker = 0; worker < 200; ++worker) {
    const bool first = SampleWorker(/*seed=*/42, /*round=*/3, worker,
                                    /*num_workers=*/200, /*budget=*/20);
    const bool second = SampleWorker(42, 3, worker, 200, 20);
    EXPECT_EQ(first, second) << "worker " << worker;
  }
}

TEST_F(SamplingTest, NonPositiveBudgetTracesEveryWorker) {
  for (int worker = 0; worker < 64; ++worker) {
    EXPECT_TRUE(SampleWorker(7, 0, worker, 64, 0));
    EXPECT_TRUE(SampleWorker(7, 0, worker, 64, -5));
  }
}

TEST_F(SamplingTest, BudgetAtOrAboveFleetTracesEveryWorker) {
  for (int worker = 0; worker < 64; ++worker) {
    EXPECT_TRUE(SampleWorker(7, 5, worker, 64, 64));
    EXPECT_TRUE(SampleWorker(7, 5, worker, 64, 1000));
  }
}

TEST_F(SamplingTest, SelectionSizeTracksBudget) {
  const int num_workers = 4000;
  const int64_t budget = 400;
  int64_t selected = 0;
  for (int worker = 0; worker < num_workers; ++worker) {
    if (SampleWorker(/*seed=*/17, /*round=*/1, worker, num_workers, budget)) {
      ++selected;
    }
  }
  // Independent inclusion at p = budget/num_workers: allow a generous
  // deviation band (> 5 sigma) so the test never flakes on a fixed seed.
  EXPECT_GT(selected, budget / 2);
  EXPECT_LT(selected, budget * 2);
}

TEST_F(SamplingTest, DifferentRoundsSampleDifferentSets) {
  const int num_workers = 500;
  std::set<int> round0, round1;
  for (int worker = 0; worker < num_workers; ++worker) {
    if (SampleWorker(9, 0, worker, num_workers, 50)) round0.insert(worker);
    if (SampleWorker(9, 1, worker, num_workers, 50)) round1.insert(worker);
  }
  EXPECT_FALSE(round0.empty());
  EXPECT_FALSE(round1.empty());
  EXPECT_NE(round0, round1);
}

TEST_F(SamplingTest, ShouldTraceWorkerAlwaysTrueWhileInactive) {
  ASSERT_FALSE(TraceSamplingActive());
  for (int worker = 0; worker < 32; ++worker) {
    EXPECT_TRUE(ShouldTraceWorker(0, worker, 32));
  }
}

TEST_F(SamplingTest, ShouldTraceWorkerFollowsGlobalOptions) {
  SamplingOptions options;
  options.per_round_budget = 8;
  options.seed = 123;
  EnableTraceSampling(options);
  ASSERT_TRUE(TraceSamplingActive());
  EXPECT_EQ(TraceSampleBudget(), 8);
  for (int worker = 0; worker < 100; ++worker) {
    EXPECT_EQ(ShouldTraceWorker(4, worker, 100),
              SampleWorker(123, 4, worker, 100, 8));
  }
  DisableTraceSampling();
  EXPECT_FALSE(TraceSamplingActive());
}

TEST_F(SamplingTest, EnableFromEnvReadsBudgetAndRunSeed) {
  ::setenv("FEDMP_TRACE_SAMPLE", "16", 1);
  EXPECT_TRUE(MaybeEnableSamplingFromEnv(/*run_seed=*/77));
  ::unsetenv("FEDMP_TRACE_SAMPLE");
  ASSERT_TRUE(TraceSamplingActive());
  EXPECT_EQ(TraceSampleBudget(), 16);
  for (int worker = 0; worker < 50; ++worker) {
    EXPECT_EQ(ShouldTraceWorker(2, worker, 50),
              SampleWorker(77, 2, worker, 50, 16));
  }
}

TEST_F(SamplingTest, EnableFromEnvZeroOrUnsetStaysOff) {
  ::unsetenv("FEDMP_TRACE_SAMPLE");
  EXPECT_FALSE(MaybeEnableSamplingFromEnv(1));
  ::setenv("FEDMP_TRACE_SAMPLE", "0", 1);
  EXPECT_FALSE(MaybeEnableSamplingFromEnv(1));
  ::unsetenv("FEDMP_TRACE_SAMPLE");
  EXPECT_FALSE(TraceSamplingActive());
}

}  // namespace
}  // namespace fedmp::obs
