#include "obs/trace.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "obs/json_util.h"

namespace fedmp::obs {
namespace {

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetForTest();
    Enable(TraceOptions{});  // record in memory, no files
  }
  void TearDown() override {
    Disable();
    ResetForTest();
  }
};

TEST_F(ObsTraceTest, SpanRecordsBothClocks) {
  SetLogicalTime(12.5);
  { OBS_SPAN("unit_span", {{"k", 1}}); }
  ASSERT_EQ(BufferedEventCount(), 1);
  const std::string jsonl = EventsJsonl();
  EXPECT_NE(jsonl.find("\"event\":\"unit_span\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"t_sim\":12.5"), std::string::npos);
  // Wall time must never leak into the deterministic export.
  EXPECT_EQ(jsonl.find("wall"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"ts\""), std::string::npos);
}

TEST_F(ObsTraceTest, NestedSpansTrackDepth) {
  {
    OBS_SPAN("outer");
    { OBS_SPAN("inner"); }
  }
  const std::string jsonl = EventsJsonl();
  // inner closes first, depth 1; outer closes second, depth 0.
  EXPECT_NE(jsonl.find("\"event\":\"inner\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"depth\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"depth\":0"), std::string::npos);
}

TEST_F(ObsTraceTest, UnbalancedScopesAreTolerated) {
  // Destroy out of creation order (a scope "closed twice" by odd control
  // flow). The depth counter saturates instead of going negative, and both
  // events are still recorded.
  auto a = std::make_unique<ScopedSpan>("first");
  auto b = std::make_unique<ScopedSpan>("second");
  a.reset();
  b.reset();
  EXPECT_EQ(BufferedEventCount(), 2);
  { OBS_SPAN("after"); }
  const std::string jsonl = EventsJsonl();
  EXPECT_NE(jsonl.find("\"event\":\"after\""), std::string::npos);
}

TEST_F(ObsTraceTest, DisabledSpansRecordNothing) {
  Disable();
  { OBS_SPAN("invisible"); }
  InstantEvent("also_invisible");
  EXPECT_EQ(BufferedEventCount(), 0);
}

TEST_F(ObsTraceTest, TrackScopeRoutesEvents) {
  {
    TrackScope scope(WorkerTrack(3));
    InstantEvent("on_worker");
  }
  InstantEvent("on_main");
  const std::string jsonl = EventsJsonl();
  EXPECT_NE(jsonl.find("\"track\":\"worker 3\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"track\":\"main\""), std::string::npos);
}

TEST_F(ObsTraceTest, PerTrackSequencesAreDense) {
  TrackScope scope(PsTrack());
  InstantEvent("a");
  InstantEvent("b");
  InstantEvent("c");
  const std::string jsonl = EventsJsonl();
  EXPECT_NE(jsonl.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"seq\":2"), std::string::npos);
}

TEST_F(ObsTraceTest, PoolChunksStayOutOfLogicalExport) {
  // A chunk well past the min-duration threshold is buffered for the Chrome
  // trace but excluded from the deterministic JSONL.
  RecordPoolChunk(/*lane=*/1, 0.0, 100000.0, /*iterations=*/64);
  EXPECT_EQ(BufferedEventCount(), 1);
  EXPECT_EQ(EventsJsonl().find("pool"), std::string::npos);
  EXPECT_NE(ChromeTraceJson().find("pool lane 1"), std::string::npos);
}

TEST_F(ObsTraceTest, ShortPoolChunksAreDropped) {
  RecordPoolChunk(/*lane=*/0, 0.0, 1.0, /*iterations=*/4);  // 1us < 200us
  EXPECT_EQ(BufferedEventCount(), 0);
}

TEST_F(ObsTraceTest, ChromeTraceIsValidJsonWithTrackNames) {
  SetLogicalTime(3.0);
  {
    TrackScope scope(WorkerTrack(0));
    OBS_SPAN("worker_train", {{"worker", 0}, {"ratio", 0.25}});
  }
  {
    TrackScope scope(PsTrack());
    InstantEvent("round", {{"round", 0}});
  }
  const std::string chrome = ChromeTraceJson();
  std::string error;
  EXPECT_TRUE(JsonSyntaxValid(chrome, &error)) << error;
  EXPECT_NE(chrome.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ps\""), std::string::npos);
  EXPECT_NE(chrome.find("thread_name"), std::string::npos);
  EXPECT_NE(chrome.find("\"t_sim\""), std::string::npos);
}

TEST_F(ObsTraceTest, EventsJsonlLinesEachParse) {
  { OBS_SPAN("line_one", {{"s", "a\"b"}, {"d", 1.5}}); }
  InstantEvent("line_two");
  const std::string jsonl = EventsJsonl();
  size_t start = 0;
  int lines = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    if (!line.empty()) {
      std::string error;
      EXPECT_TRUE(JsonSyntaxValid(line, &error)) << error << ": " << line;
      ++lines;
    }
    start = end + 1;
  }
  EXPECT_EQ(lines, 2);
}

TEST(ObsJsonTest, EscapeAndValidate) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_TRUE(JsonSyntaxValid("{\"a\":[1,2.5,\"x\",null,true]}"));
  EXPECT_TRUE(JsonSyntaxValid("[]"));
  EXPECT_FALSE(JsonSyntaxValid("{\"a\":}"));
  EXPECT_FALSE(JsonSyntaxValid("{} trailing"));
  EXPECT_FALSE(JsonSyntaxValid("[1,2"));
  EXPECT_EQ(JsonNumber(1.25, 2), "1.25");
  EXPECT_EQ(JsonNumber(-1.0 / 0.0, 2), "null");
}

}  // namespace
}  // namespace fedmp::obs
