// Tests for the post-hoc analysis layer: the JSON DOM, round-health /
// critical-path math, the E-UCB decision audit, report assembly, and the
// json_util / histogram-quantile helpers they build on. The end-to-end
// determinism contract (N-thread traced run -> byte-identical deterministic
// report) is exercised against the real sync trainer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fl/strategies/fedmp_strategy.h"
#include "fl/trainer.h"
#include "obs/analysis/decision_audit.h"
#include "obs/analysis/json_value.h"
#include "obs/analysis/report.h"
#include "obs/analysis/round_health.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::obs::analysis {
namespace {

// ---------------------------------------------------------------- JsonValue

TEST(JsonValueTest, ParsesScalarsAndNesting) {
  JsonValue v;
  ASSERT_TRUE(ParseJson(
      R"({"a": 1.5, "b": [true, false, null], "c": {"d": "x"}, "e": -3})",
      &v));
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.Find("a")->NumberOr(0.0), 1.5);
  EXPECT_EQ(v.Find("e")->IntOr(0), -3);
  const JsonValue* b = v.Find("b");
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_TRUE(b->array[2].is_null());
  EXPECT_EQ(v.Find("c")->Find("d")->StringOr(""), "x");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonValueTest, DecodesStringEscapes) {
  JsonValue v;
  ASSERT_TRUE(ParseJson(R"({"s": "a\"b\\c\nd\tAé"})", &v));
  EXPECT_EQ(v.Find("s")->StringOr(""), "a\"b\\c\nd\tA\xc3\xa9");
}

TEST(JsonValueTest, RejectsMalformedInput) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\": }", &v, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing", &v));
  EXPECT_FALSE(ParseJson("", &v));
}

TEST(JsonValueTest, ParsesJsonLinesAndReportsLineNumbers) {
  std::vector<JsonValue> lines;
  ASSERT_TRUE(ParseJsonLines("{\"a\":1}\n\n{\"a\":2}\n", &lines));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1].Find("a")->IntOr(0), 2);

  std::string error;
  lines.clear();
  EXPECT_FALSE(ParseJsonLines("{\"a\":1}\n{bad\n", &lines, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// -------------------------------------------------------------- RoundHealth

std::vector<WorkerTiming> ThreeWorkerRound() {
  // Worker 1 is the slowest survivor; worker 2's upload was lost.
  WorkerTiming w0{/*worker=*/0, /*comp_s=*/1.0, /*comm_s=*/0.5,
                  /*completion_s=*/1.5, /*ratio=*/0.2, /*survived=*/true};
  WorkerTiming w1{1, 2.0, 1.5, 3.5, 0.0, true};
  WorkerTiming w2{2, 1.0, 0.5, -1.0, 0.4, false};
  return {w1, w2, w0};  // deliberately unsorted
}

TEST(RoundHealthTest, SummarizeRoundPicksSlowestSurvivor) {
  const RoundHealth h = SummarizeRound(7, ThreeWorkerRound());
  EXPECT_EQ(h.round, 7);
  EXPECT_EQ(h.critical_worker, 1);
  EXPECT_DOUBLE_EQ(h.critical_comp_s, 2.0);
  EXPECT_DOUBLE_EQ(h.critical_comm_s, 1.5);
  EXPECT_DOUBLE_EQ(h.critical_total_s, 3.5);
  EXPECT_EQ(h.survivors, 2);
  // mean over survivors = (1.5 + 3.5) / 2; gap_max = |3.5 - 2.5|.
  EXPECT_DOUBLE_EQ(h.mean_completion_s, 2.5);
  EXPECT_DOUBLE_EQ(h.straggler_gap_max, 1.0);
  // Workers come back sorted by id.
  ASSERT_EQ(h.workers.size(), 3u);
  EXPECT_EQ(h.workers[0].worker, 0);
  EXPECT_EQ(h.workers[2].worker, 2);
}

TEST(RoundHealthTest, EmptyRoundHasNoCriticalWorker) {
  WorkerTiming lost{0, 1.0, 1.0, -1.0, 0.0, false};
  const RoundHealth h = SummarizeRound(0, {lost});
  EXPECT_EQ(h.critical_worker, -1);
  EXPECT_EQ(h.survivors, 0);
  EXPECT_DOUBLE_EQ(h.mean_completion_s, 0.0);
  EXPECT_DOUBLE_EQ(h.straggler_gap_max, 0.0);
}

std::vector<JsonValue> EventsFromJsonl(const std::string& jsonl) {
  std::vector<JsonValue> events;
  std::string error;
  EXPECT_TRUE(ParseJsonLines(jsonl, &events, &error)) << error;
  return events;
}

TEST(RoundHealthTest, RebuildsRoundsFromWorkerTimingEvents) {
  const std::string jsonl =
      R"({"event":"round","args":{"round":0}})"
      "\n"
      R"({"event":"worker_timing","args":{"worker":0,"round":0,"comp_s":1.0,"comm_s":0.5,"completion_s":1.5,"ratio":0.2,"survived":1}})"
      "\n"
      R"({"event":"worker_timing","args":{"worker":1,"round":0,"comp_s":2.0,"comm_s":1.5,"completion_s":3.5,"ratio":0.0,"survived":1}})"
      "\n"
      R"({"event":"worker_timing","args":{"worker":0,"round":1,"comp_s":0.5,"comm_s":0.5,"completion_s":-1.0,"ratio":0.1,"survived":0}})"
      "\n";
  const std::vector<RoundHealth> rounds =
      HealthFromEvents(EventsFromJsonl(jsonl));
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].round, 0);
  EXPECT_EQ(rounds[0].critical_worker, 1);
  EXPECT_DOUBLE_EQ(rounds[0].mean_completion_s, 2.5);
  EXPECT_EQ(rounds[1].round, 1);
  EXPECT_EQ(rounds[1].survivors, 0);
}

TEST(RoundHealthTest, RenderedOutputsAreWellFormed) {
  const std::vector<RoundHealth> rounds = {
      SummarizeRound(0, ThreeWorkerRound())};
  const std::string table = RenderRoundHealthTable(rounds);
  EXPECT_NE(table.find("critical path"), std::string::npos);
  EXPECT_NE(table.find("Straggler attribution"), std::string::npos);
  std::string error;
  EXPECT_TRUE(JsonSyntaxValid(RoundHealthJson(rounds), &error)) << error;
}

// ------------------------------------------------------------ DecisionAudit

TEST(DecisionAuditTest, PairsSelectsWithRewardsPerWorker) {
  const std::string jsonl =
      R"({"event":"eucb_select","args":{"worker":0,"ratio":0.10,"arm_ratio":0.11,"leaf_lo":0.0,"leaf_hi":0.7,"count":0,"mean":0.0,"padding":null,"ucb":null,"total":0.0,"coef":1.0,"leaves":1,"depth":0}})"
      "\n"
      R"({"event":"eucb_select","args":{"worker":1,"ratio":0.30,"arm_ratio":0.29,"leaf_lo":0.0,"leaf_hi":0.7,"count":1.0,"mean":0.5,"padding":0.0,"ucb":0.5,"total":1.0,"coef":1.0,"leaves":1,"depth":0}})"
      "\n"
      R"({"event":"eucb_reward","args":{"worker":0,"reward":0.25}})"
      "\n"
      R"({"event":"eucb_reward","args":{"worker":1,"reward":-0.5}})"
      "\n";
  const auto decisions = DecisionsFromEvents(EventsFromJsonl(jsonl));
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].worker, 0);
  EXPECT_EQ(decisions[0].pull, 0);
  EXPECT_TRUE(decisions[0].never_pulled);
  EXPECT_TRUE(decisions[0].has_reward);
  EXPECT_DOUBLE_EQ(decisions[0].reward, 0.25);
  EXPECT_DOUBLE_EQ(decisions[0].arm_ratio, 0.11);
  EXPECT_DOUBLE_EQ(decisions[0].executed_ratio, 0.10);
  EXPECT_FALSE(decisions[1].never_pulled);
  EXPECT_DOUBLE_EQ(decisions[1].reward, -0.5);
}

TEST(DecisionAuditTest, ReconstructsUcbFromLoggedFields) {
  // A consistent record: ucb == mean + coef * sqrt(2 ln(total) / count).
  const double coef = 0.7, count = 3.0, mean = 0.4, total = 9.0;
  const double padding = coef * std::sqrt(2.0 * std::log(total) / count);
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"event\":\"eucb_select\",\"args\":{\"worker\":0,\"ratio\":0.2,"
      "\"arm_ratio\":0.2,\"leaf_lo\":0.0,\"leaf_hi\":0.7,\"count\":%.17g,"
      "\"mean\":%.17g,\"padding\":%.17g,\"ucb\":%.17g,\"total\":%.17g,"
      "\"coef\":%.17g,\"leaves\":1,\"depth\":0}}\n",
      count, mean, padding, mean + padding, total, coef);
  const auto decisions = DecisionsFromEvents(EventsFromJsonl(line));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].never_pulled);
  EXPECT_LT(decisions[0].reconstruction_error, 1e-9);
  EXPECT_LT(MaxReconstructionError(decisions), 1e-9);

  const std::string table = RenderDecisionTable(decisions);
  EXPECT_NE(table.find("worker 0"), std::string::npos);
  std::string error;
  EXPECT_TRUE(JsonSyntaxValid(DecisionAuditJson(decisions), &error)) << error;
}

// ------------------------------------------------------------------ Report

ReportInputs SmallInputs() {
  ReportInputs inputs;
  inputs.manifest_json =
      R"({"run_info":{"git_sha":"abc","num_threads":4}})"
      "\n";
  inputs.events_jsonl =
      R"({"event":"worker_timing","args":{"worker":0,"round":0,"comp_s":1.0,"comm_s":0.5,"completion_s":1.5,"ratio":0.2,"survived":1}})"
      "\n"
      R"({"event":"eucb_select","args":{"worker":0,"ratio":0.2,"arm_ratio":0.2,"leaf_lo":0.0,"leaf_hi":0.7,"count":1.0,"mean":0.5,"padding":0.1,"ucb":0.6,"total":1.0,"coef":1.0,"leaves":1,"depth":0}})"
      "\n";
  inputs.metrics_json =
      R"({"fl.worker.model_cache.hits": 3, "fl.worker.model_cache.misses": 1})";
  inputs.rounds_jsonl = R"({"round":0,"sim_time":1.5})"
                        "\n";
  return inputs;
}

TEST(ReportTest, DeterministicOnlyOmitsEnvironmentSections) {
  ReportOptions opt;
  opt.deterministic_only = true;
  const Report report = BuildReport(SmallInputs(), opt);
  EXPECT_EQ(report.human.find("Manifest"), std::string::npos);
  EXPECT_EQ(report.json.find("git_sha"), std::string::npos);
  EXPECT_EQ(report.json.find("counters"), std::string::npos);
  EXPECT_NE(report.json.find("\"round_health\""), std::string::npos);
  EXPECT_NE(report.json.find("\"decision_audit\""), std::string::npos);
  std::string error;
  EXPECT_TRUE(JsonSyntaxValid(report.json, &error)) << error;
}

TEST(ReportTest, FullReportFoldsInManifestAndCounters) {
  const Report report = BuildReport(SmallInputs());
  EXPECT_NE(report.human.find("git_sha: abc"), std::string::npos)
      << report.human;
  EXPECT_NE(report.json.find("\"manifest\""), std::string::npos);
  EXPECT_NE(report.json.find("\"counters\""), std::string::npos);
  // hits/misses pairs become a derived hit rate: 3 / (3 + 1) = 75%.
  EXPECT_NE(report.human.find("fl.worker.model_cache"), std::string::npos);
  EXPECT_NE(report.human.find("75.0%"), std::string::npos) << report.human;
  EXPECT_NE(report.json.find("\"fl.worker.model_cache\":0.750000"),
            std::string::npos)
      << report.json;
  std::string error;
  EXPECT_TRUE(JsonSyntaxValid(report.json, &error)) << error;
}

TEST(ReportTest, MalformedInputsBecomeWarningsNotCrashes) {
  ReportInputs inputs = SmallInputs();
  inputs.metrics_json = "{broken";
  inputs.manifest_json = "also broken";
  const Report report = BuildReport(inputs);
  EXPECT_GE(report.warnings.size(), 2u);
  std::string error;
  EXPECT_TRUE(JsonSyntaxValid(report.json, &error)) << error;
}

// ------------------------------------------------------ json_util escaping

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(JsonEscape(std::string("\x00", 1)), "\\u0000");
}

TEST(JsonEscapeTest, PassesNonAsciiBytesThrough) {
  // UTF-8 payloads are legal inside JSON strings and must survive verbatim.
  const std::string utf8 = "caf\xc3\xa9 \xe6\x97\xa5";
  EXPECT_EQ(JsonEscape(utf8), utf8);
  std::string error;
  EXPECT_TRUE(JsonSyntaxValid("{\"s\":\"" + JsonEscape(utf8) + "\"}", &error))
      << error;
}

TEST(JsonEscapeTest, EscapedOutputRoundTripsThroughTheParser) {
  const std::string nasty = "q\"b\\s\nn\tt\x01u caf\xc3\xa9";
  JsonValue v;
  ASSERT_TRUE(ParseJson("{\"s\":\"" + JsonEscape(nasty) + "\"}", &v));
  EXPECT_EQ(v.Find("s")->StringOr(""), nasty);
}

// ------------------------------------------------------- HistogramQuantile

MetricSnapshot MakeHistogram(std::vector<double> bounds,
                             std::vector<int64_t> buckets) {
  MetricSnapshot snap;
  snap.kind = MetricSnapshot::Kind::kHistogram;
  snap.bounds = std::move(bounds);
  snap.bucket_counts = std::move(buckets);
  for (int64_t c : snap.bucket_counts) snap.count += c;
  return snap;
}

TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  // Buckets (0,1], (1,2], (2,4], overflow: counts 2, 2, 0, 1.
  const MetricSnapshot snap = MakeHistogram({1.0, 2.0, 4.0}, {2, 2, 0, 1});
  // q=0 -> rank 1 -> halfway through the first bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.0), 0.5);
  // q=0.4 -> rank 2 -> exactly the first bucket's upper edge.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.4), 1.0);
  // q=0.5 -> rank 2.5 -> a quarter into the second bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.5), 1.25);
  // q=0.8 -> rank 4 -> second bucket's upper edge.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.8), 2.0);
  // q=1 -> rank 5 -> overflow clamps to the last finite bound.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 1.0), 4.0);
  // Out-of-range q values clamp.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, -0.5), 0.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 2.0), 4.0);
}

TEST(HistogramQuantileTest, DegenerateInputsReturnNaN) {
  EXPECT_TRUE(std::isnan(HistogramQuantile(MetricSnapshot{}, 0.5)));
  EXPECT_TRUE(
      std::isnan(HistogramQuantile(MakeHistogram({1.0}, {0, 0}), 0.5)));
  // Every observation in the overflow of an unbounded histogram.
  EXPECT_TRUE(std::isnan(HistogramQuantile(MakeHistogram({}, {3}), 0.5)));
  MetricSnapshot gauge;
  gauge.kind = MetricSnapshot::Kind::kGauge;
  gauge.count = 1;
  EXPECT_TRUE(std::isnan(HistogramQuantile(gauge, 0.5)));
}

// ------------------------------------------- end-to-end report determinism

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs a short traced sync experiment and returns the events JSONL.
std::string TracedSyncEvents(int num_threads, const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "analysis_events_" + tag + ".jsonl";
  TraceOptions trace;
  trace.events_jsonl_path = path;
  ResetForTest();
  Enable(trace);

  const data::FlTask task =
      data::MakeCnnMnistTask(data::TaskScale::kTiny, 5);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 5);
  fl::TrainerOptions opt;
  opt.max_rounds = 4;
  opt.eval_every = 2;
  opt.eval_batch_size = 16;
  opt.seed = 3;
  opt.num_threads = num_threads;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  fl::Trainer trainer(&task, fleet, std::move(partition),
                      std::make_unique<fl::FedMpStrategy>(), opt);
  trainer.Run();
  Disable();
  const std::string events = ReadFileOrEmpty(path);
  std::remove(path.c_str());
  return events;
}

TEST(ReportDeterminismTest, DeterministicReportIdenticalAcrossThreadCounts) {
  const std::string events_t1 = TracedSyncEvents(1, "t1");
  const std::string events_t4 = TracedSyncEvents(4, "t4");
  ASSERT_FALSE(events_t1.empty());
  // The events stream itself is the determinism contract...
  EXPECT_EQ(events_t1, events_t4);

  // ...and the derived report must hold it: byte-identical round-health and
  // decision-audit sections, with every UCB reconstructible to 1e-9.
  ReportInputs in_t1, in_t4;
  in_t1.events_jsonl = events_t1;
  in_t4.events_jsonl = events_t4;
  ReportOptions opt;
  opt.deterministic_only = true;
  const Report r1 = BuildReport(in_t1, opt);
  const Report r4 = BuildReport(in_t4, opt);
  EXPECT_EQ(r1.human, r4.human);
  EXPECT_EQ(r1.json, r4.json);
  EXPECT_NE(r1.json.find("\"round_health\""), std::string::npos);

  std::vector<JsonValue> events;
  std::string error;
  ASSERT_TRUE(ParseJsonLines(events_t1, &events, &error)) << error;
  const auto decisions = DecisionsFromEvents(events);
  ASSERT_FALSE(decisions.empty());
  EXPECT_LT(MaxReconstructionError(decisions), 1e-9);
  const auto rounds = HealthFromEvents(events);
  ASSERT_EQ(rounds.size(), 4u);
  for (const RoundHealth& h : rounds) {
    EXPECT_GE(h.critical_total_s,
              h.critical_worker >= 0 ? h.mean_completion_s : 0.0);
  }
}

}  // namespace
}  // namespace fedmp::obs::analysis
