#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json_util.h"
#include "obs/trace.h"

namespace fedmp::obs {
namespace {

// Every test runs against the process-wide registry, so each starts from a
// clean slate and leaves telemetry disabled for its neighbours.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetForTest();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    ResetForTest();
  }

  static double ValueOf(const std::string& name) {
    for (const MetricSnapshot& m : Registry::Get().Snapshot()) {
      if (m.name == name) return m.value;
    }
    return -1.0;
  }
};

TEST_F(ObsMetricsTest, CounterAccumulates) {
  Counter* c = GetCounter("test.counter");
  ASSERT_NE(c, nullptr);
  c->Add();
  c->Add(2.5);
  EXPECT_DOUBLE_EQ(ValueOf("test.counter"), 3.5);
}

TEST_F(ObsMetricsTest, DisabledWritesAreDropped) {
  Counter* c = GetCounter("test.disabled");
  SetEnabled(false);
  c->Add(100.0);
  SetEnabled(true);
  EXPECT_DOUBLE_EQ(ValueOf("test.disabled"), 0.0);
}

TEST_F(ObsMetricsTest, SameNameResolvesToSameHandle) {
  EXPECT_EQ(GetCounter("test.same"), GetCounter("test.same"));
  EXPECT_EQ(GetGauge("test.same_gauge"), GetGauge("test.same_gauge"));
}

TEST_F(ObsMetricsTest, KindMismatchReturnsNull) {
  ASSERT_NE(GetCounter("test.kind"), nullptr);
  EXPECT_EQ(GetGauge("test.kind"), nullptr);
  EXPECT_EQ(GetHistogram("test.kind", {1.0}), nullptr);
}

TEST_F(ObsMetricsTest, GaugeLastWriteWins) {
  Gauge* g = GetGauge("test.gauge");
  g->Set(1.0);
  g->Set(7.0);
  EXPECT_DOUBLE_EQ(ValueOf("test.gauge"), 7.0);
}

TEST_F(ObsMetricsTest, HistogramBucketEdges) {
  Histogram* h = GetHistogram("test.hist", {1.0, 2.0, 4.0});
  // Bucket rule: first bound with value <= bound; past the last bound the
  // observation lands in the +inf overflow bucket.
  h->Observe(0.5);  // <= 1
  h->Observe(1.0);  // <= 1 (edge inclusive)
  h->Observe(1.5);  // <= 2
  h->Observe(4.0);  // <= 4 (edge inclusive)
  h->Observe(9.0);  // overflow
  for (const MetricSnapshot& m : Registry::Get().Snapshot()) {
    if (m.name != "test.hist") continue;
    EXPECT_EQ(m.count, 5);
    EXPECT_DOUBLE_EQ(m.sum, 16.0);
    ASSERT_EQ(m.bucket_counts.size(), 4u);
    EXPECT_EQ(m.bucket_counts[0], 2);
    EXPECT_EQ(m.bucket_counts[1], 1);
    EXPECT_EQ(m.bucket_counts[2], 1);
    EXPECT_EQ(m.bucket_counts[3], 1);
    return;
  }
  FAIL() << "test.hist not in snapshot";
}

// The concurrency contract: writes from many threads, with scrapes racing
// them, lose nothing (run under TSAN in CI via the Obs name filter).
TEST_F(ObsMetricsTest, MergeUnderConcurrency) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  Counter* c = GetCounter("test.concurrent");
  Histogram* h = GetHistogram("test.concurrent_hist", {0.5});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        c->Add(1.0);
        h->Observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  // Scrapes race the writers; totals below are taken after the join.
  for (int s = 0; s < 50; ++s) Registry::Get().Snapshot();
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(ValueOf("test.concurrent"),
                   static_cast<double>(kThreads * kAddsPerThread));
  for (const MetricSnapshot& m : Registry::Get().Snapshot()) {
    if (m.name != "test.concurrent_hist") continue;
    EXPECT_EQ(m.count, kThreads * kAddsPerThread);
    EXPECT_EQ(m.bucket_counts[0] + m.bucket_counts[1],
              kThreads * kAddsPerThread);
  }
}

// Thread exit folds the shard into the retired pool — the count survives
// the writer (the pool-resize scenario).
TEST_F(ObsMetricsTest, RetiredShardResidueSurvivesThreadExit) {
  Counter* c = GetCounter("test.retired");
  std::thread writer([&] { c->Add(42.0); });
  writer.join();
  EXPECT_DOUBLE_EQ(ValueOf("test.retired"), 42.0);
}

TEST_F(ObsMetricsTest, ExportsAreWellFormed) {
  GetCounter("test.export")->Add(3.0);
  GetHistogram("test.export_hist", {1.0, 10.0})->Observe(5.0);
  std::string error;
  EXPECT_TRUE(JsonSyntaxValid(Registry::Get().ToJson(), &error)) << error;
  EXPECT_NE(Registry::Get().ToText().find("test.export 3"),
            std::string::npos);
}

TEST_F(ObsMetricsTest, ResetZeroesButKeepsHandles) {
  Counter* c = GetCounter("test.reset");
  c->Add(5.0);
  Registry::Get().Reset();
  EXPECT_DOUBLE_EQ(ValueOf("test.reset"), 0.0);
  c->Add(1.0);
  EXPECT_DOUBLE_EQ(ValueOf("test.reset"), 1.0);
}

}  // namespace
}  // namespace fedmp::obs
