// The telemetry determinism contract (DESIGN.md "Observability"): the
// logical-time event log of a traced run is a pure function of the seed —
// bit-identical across thread counts — and the Chrome trace is always
// syntactically valid with the expected per-entity tracks.

#include <string>

#include <gtest/gtest.h>

#include "fl/strategies/fedmp_strategy.h"
#include "fl/trainer.h"
#include "obs/json_util.h"
#include "obs/trace.h"

namespace fedmp::fl {
namespace {

struct TracedRun {
  std::string events_jsonl;
  std::string chrome_json;
  std::string round_jsonl;
};

TracedRun RunTracedSync(int num_threads) {
  obs::ResetForTest();
  obs::Enable(obs::TraceOptions{});  // in-memory only
  const data::FlTask task = data::MakeCnnMnistTask(data::TaskScale::kTiny, 4);
  const auto fleet =
      edge::MakeHeterogeneousWorkers(edge::HeterogeneityLevel::kMedium, 4);
  TrainerOptions opt;
  opt.max_rounds = 3;
  opt.eval_every = 2;
  opt.eval_batch_size = 16;
  opt.seed = 11;
  opt.num_threads = num_threads;
  Rng rng(opt.seed ^ 0xBEEFULL);
  data::Partition partition = data::PartitionIid(
      task.train.size(), static_cast<int64_t>(fleet.size()), rng);
  Trainer trainer(&task, fleet, std::move(partition),
                  std::make_unique<FedMpStrategy>(), opt);
  const RoundLog log = trainer.Run();
  TracedRun out;
  out.events_jsonl = obs::EventsJsonl();
  out.chrome_json = obs::ChromeTraceJson();
  out.round_jsonl = log.ToJsonlString();
  obs::Disable();
  obs::ResetForTest();
  return out;
}

// decision_overhead_ms is wall-clock by definition; every other round-log
// column is simulated and must match bit-for-bit.
std::string StripWallColumns(std::string jsonl) {
  size_t pos;
  while ((pos = jsonl.find("\"decision_overhead_ms\":")) !=
         std::string::npos) {
    jsonl.erase(pos, jsonl.find(',', pos) - pos + 1);
  }
  return jsonl;
}

TEST(ObsGoldenTest, LogicalTraceIdenticalAcrossThreadCounts) {
  const TracedRun serial = RunTracedSync(1);
  const TracedRun parallel = RunTracedSync(4);
  ASSERT_FALSE(serial.events_jsonl.empty());
  EXPECT_EQ(serial.events_jsonl, parallel.events_jsonl)
      << "logical trace diverged between 1 and 4 threads";
  EXPECT_EQ(StripWallColumns(serial.round_jsonl),
            StripWallColumns(parallel.round_jsonl));
}

TEST(ObsGoldenTest, ChromeTraceIsSchemaValidWithAllTracks) {
  const TracedRun run = RunTracedSync(2);
  std::string error;
  ASSERT_TRUE(obs::JsonSyntaxValid(run.chrome_json, &error)) << error;
  // Perfetto essentials: a traceEvents array, named process, one named
  // thread track per entity, complete + instant events.
  EXPECT_NE(run.chrome_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(run.chrome_json.find("\"fedmp\""), std::string::npos);
  EXPECT_NE(run.chrome_json.find("\"ps\""), std::string::npos);
  for (int w = 0; w < 4; ++w) {
    EXPECT_NE(run.chrome_json.find("\"worker " + std::to_string(w) + "\""),
              std::string::npos)
        << "missing worker track " << w;
  }
  EXPECT_NE(run.chrome_json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(run.chrome_json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(ObsGoldenTest, LogicalTraceCarriesTheRoundStructure) {
  const TracedRun run = RunTracedSync(2);
  // Three rounds -> three PS "round" markers and per-worker train spans.
  size_t rounds = 0, pos = 0;
  while ((pos = run.events_jsonl.find("\"event\":\"round\"", pos)) !=
         std::string::npos) {
    ++rounds;
    pos += 1;
  }
  EXPECT_EQ(rounds, 3u);
  EXPECT_NE(run.events_jsonl.find("\"event\":\"worker_train\""),
            std::string::npos);
  EXPECT_NE(run.events_jsonl.find("\"event\":\"eucb_select\""),
            std::string::npos);
  EXPECT_NE(run.events_jsonl.find("\"event\":\"r2sp_aggregate\""),
            std::string::npos);
  // Round-log JSONL mirrors the CSV schema.
  EXPECT_NE(run.round_jsonl.find("\"sim_time\":"), std::string::npos);
  EXPECT_NE(run.round_jsonl.find("\"participants\":"), std::string::npos);
}

}  // namespace
}  // namespace fedmp::fl
