#include "obs/ledger.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::obs {
namespace {

WorkerResources SampleWorkerResources() {
  WorkerResources w;
  w.flops_forward = 100;
  w.flops_backward = 200;
  w.bytes_down = 40;
  w.bytes_up = 30;
  w.bytes_residual = 8;
  w.dense_flops = 600;
  w.dense_bytes = 140;
  w.rows = 16;
  return w;
}

TEST(WorkerResourcesTest, DerivedTotalsAndAccumulation) {
  WorkerResources w = SampleWorkerResources();
  EXPECT_EQ(w.flops(), 300);
  EXPECT_EQ(w.wire_bytes(), 70);
  w += SampleWorkerResources();
  EXPECT_EQ(w.flops(), 600);
  EXPECT_EQ(w.wire_bytes(), 140);
  EXPECT_EQ(w.rows, 32);
}

TEST(LedgerTest, RollsUpWorkersIntoFogsAndRound) {
  Ledger ledger;
  ledger.BeginRound(3, /*num_fogs=*/2);
  ledger.Add(SampleWorkerResources(), /*fog=*/0);
  ledger.Add(SampleWorkerResources(), /*fog=*/1);
  ledger.Add(SampleWorkerResources(), /*fog=*/1);
  EXPECT_EQ(ledger.current().workers, 3);

  const RoundResources round = ledger.Commit();
  EXPECT_EQ(round.round, 3);
  EXPECT_EQ(round.workers, 3);
  EXPECT_EQ(round.total.flops(), 900);
  ASSERT_EQ(round.per_fog.size(), 2u);
  EXPECT_EQ(round.per_fog[0].flops(), 300);
  EXPECT_EQ(round.per_fog[1].flops(), 600);
  // Savings: 1 - wire/dense = 1 - 210/420.
  EXPECT_DOUBLE_EQ(round.BytesSavedRatio(), 0.5);
  EXPECT_DOUBLE_EQ(round.FlopsSavedRatio(), 0.5);

  // Commit resets the current round and folds the cumulative totals.
  EXPECT_EQ(ledger.current().workers, 0);
  EXPECT_EQ(ledger.cumulative().flops(), 900);
  EXPECT_EQ(ledger.rounds_committed(), 1);
}

TEST(LedgerTest, EmptyRoundHasZeroSavings) {
  Ledger ledger;
  ledger.BeginRound(0);
  const RoundResources round = ledger.Commit();
  EXPECT_EQ(round.BytesSavedRatio(), 0.0);
  EXPECT_EQ(round.FlopsSavedRatio(), 0.0);
}

TEST(MacCountingTest, DisarmedCounterIgnoresAdds) {
  SetMacCountingEnabled(false);
  ResetThreadMacCount();
  CountMacs(123);
  EXPECT_EQ(ThreadMacCount(), 0);
}

TEST(MacCountingTest, ArmedCounterAccumulatesPerThread) {
  SetMacCountingEnabled(true);
  ResetThreadMacCount();
  CountMacs(100);
  CountMacs(23);
  EXPECT_EQ(ThreadMacCount(), 123);
  ResetThreadMacCount();
  EXPECT_EQ(ThreadMacCount(), 0);
  SetMacCountingEnabled(false);
}

class LedgerTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetForTest();
    Registry::Get().Reset();
    Enable(TraceOptions{});
  }
  void TearDown() override {
    Disable();
    ResetForTest();
  }
};

TEST_F(LedgerTraceTest, CommitPublishesGaugesEventAndCounterTrack) {
  Ledger ledger;
  ledger.BeginRound(7, /*num_fogs=*/1);
  ledger.Add(SampleWorkerResources(), /*fog=*/0);
  ledger.Commit();

  EXPECT_DOUBLE_EQ(Registry::Get().GaugeValue("fl.ledger.round.flops", -1.0),
                   300.0);
  EXPECT_DOUBLE_EQ(
      Registry::Get().GaugeValue("fl.ledger.round.bytes_saved_ratio", -1.0),
      0.5);

  // The logical export carries the deterministic rollups...
  const std::string jsonl = EventsJsonl();
  EXPECT_NE(jsonl.find("\"event\":\"resource\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"resource.fog\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"bytes_saved_ratio\":0.5"), std::string::npos);
  // ...but never the Chrome counter samples (environment class).
  EXPECT_EQ(jsonl.find("fl.ledger.flops"), std::string::npos);

  // The Chrome trace renders the counter track as ph:"C" samples.
  const std::string chrome = ChromeTraceJson();
  EXPECT_NE(chrome.find("\"name\":\"fl.ledger.flops\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"fl.ledger.bytes\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"C\""), std::string::npos);
}

TEST_F(LedgerTraceTest, PerFogEventsAreCappedButTotalsAreNot) {
  Ledger ledger;
  ledger.BeginRound(0, /*num_fogs=*/kMaxPerFogEvents + 1);
  WorkerResources w = SampleWorkerResources();
  for (int f = 0; f < kMaxPerFogEvents + 1; ++f) ledger.Add(w, f);
  const RoundResources round = ledger.Commit();
  EXPECT_EQ(round.per_fog.size(),
            static_cast<size_t>(kMaxPerFogEvents) + 1);
  const std::string jsonl = EventsJsonl();
  EXPECT_NE(jsonl.find("\"event\":\"resource\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"event\":\"resource.fog\""), std::string::npos);
}

TEST_F(LedgerTraceTest, CounterEventIsInvisibleWhenDisabled) {
  Disable();
  CounterEvent("fl.ledger.flops", PsTrack(), {{"macs", 1}});
  EXPECT_EQ(BufferedEventCount(), 0);
}

}  // namespace
}  // namespace fedmp::obs
