#include "obs/flight_recorder.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/analysis/json_value.h"
#include "obs/trace.h"

namespace fedmp::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetForTest(); }
  void TearDown() override {
    Disable();
    ResetForTest();
  }
};

TEST_F(FlightRecorderTest, KeepsTailWithinTotalCapacity) {
  Enable(TraceOptions{});
  FlightRecorderOptions options;
  options.total_capacity = 16;
  options.per_track_capacity = 16;
  options.install_signal_handlers = false;
  EnableFlightRecorder(options);
  for (int i = 0; i < 100; ++i) {
    InstantEvent("tick", PsTrack(), {{"i", i}});
  }
  EXPECT_LE(FlightRecorderEventCount(), 16);
  EXPECT_EQ(FlightRecorderEvictedCount(), 100 - FlightRecorderEventCount());
  const std::string jsonl = FlightRecorderEventsJsonl();
  // The ring holds the most recent events, not the oldest.
  EXPECT_NE(jsonl.find("\"i\":99"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"i\":0,"), std::string::npos);
  // Sequence numbers survive into the ring (assigned before the cap).
  EXPECT_NE(jsonl.find("\"seq\":99"), std::string::npos);
}

TEST_F(FlightRecorderTest, PerTrackCapPreventsStarvationByHotTrack) {
  Enable(TraceOptions{});
  FlightRecorderOptions options;
  options.total_capacity = 64;
  options.per_track_capacity = 4;
  options.install_signal_handlers = false;
  EnableFlightRecorder(options);
  // One hot track, one quiet track.
  for (int i = 0; i < 50; ++i) {
    InstantEvent("hot", PsTrack(), {{"i", i}});
  }
  InstantEvent("quiet", WorkerTrack(3), {{"w", 3}});
  const std::string jsonl = FlightRecorderEventsJsonl();
  EXPECT_NE(jsonl.find("\"event\":\"quiet\""), std::string::npos);
  // The hot track is capped at 4, so the ring stays small.
  EXPECT_LE(FlightRecorderEventCount(), 5);
}

TEST_F(FlightRecorderTest, EvictionIsInterleavingInvariant) {
  // Two emission interleavings with identical per-track content must leave
  // the ring with identical deterministic views — the property that makes a
  // dump bit-identical across thread counts.
  auto run = [&](bool alternate) {
    ResetForTest();
    Enable(TraceOptions{});
    FlightRecorderOptions options;
    options.total_capacity = 8;
    options.per_track_capacity = 8;
    options.install_signal_handlers = false;
    EnableFlightRecorder(options);
    if (alternate) {
      for (int i = 0; i < 10; ++i) {
        InstantEvent("a", WorkerTrack(0), {{"i", i}});
        InstantEvent("b", WorkerTrack(1), {{"i", i}});
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        InstantEvent("a", WorkerTrack(0), {{"i", i}});
      }
      for (int i = 0; i < 10; ++i) {
        InstantEvent("b", WorkerTrack(1), {{"i", i}});
      }
    }
    std::string jsonl = FlightRecorderEventsJsonl();
    Disable();
    return jsonl;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST_F(FlightRecorderTest, DumpWritesValidChromeTraceAndJsonl) {
  Enable(TraceOptions{});
  FlightRecorderOptions options;
  options.dump_path_prefix =
      ::testing::TempDir() + "flight_recorder_test_dump";
  options.install_signal_handlers = false;
  EnableFlightRecorder(options);
  SetLogicalTime(1.5);
  InstantEvent("marker", PsTrack(), {{"k", 7}});
  { ScopedSpan span("work", WorkerTrack(2), {{"w", 2}}); }
  ASSERT_TRUE(DumpFlightRecorder("unit_test"));

  const std::string chrome =
      ReadFile(options.dump_path_prefix + "_dump_trace.json");
  analysis::JsonValue doc;
  std::string error;
  ASSERT_TRUE(analysis::ParseJson(chrome, &doc, &error)) << error;
  EXPECT_NE(chrome.find("traceEvents"), std::string::npos);
  EXPECT_NE(chrome.find("obs.flight_dump"), std::string::npos);
  EXPECT_NE(chrome.find("unit_test"), std::string::npos);

  const std::string jsonl =
      ReadFile(options.dump_path_prefix + "_dump_events.jsonl");
  std::vector<analysis::JsonValue> lines;
  ASSERT_TRUE(analysis::ParseJsonLines(jsonl, &lines, &error)) << error;
  EXPECT_EQ(lines.size(), 2u);  // the dump marker is Chrome-only
  EXPECT_NE(jsonl.find("\"event\":\"marker\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"work\""), std::string::npos);

  std::remove((options.dump_path_prefix + "_dump_trace.json").c_str());
  std::remove((options.dump_path_prefix + "_dump_events.jsonl").c_str());
}

TEST_F(FlightRecorderTest, DumpReturnsFalseWhenDisabled) {
  EXPECT_FALSE(FlightRecorderEnabled());
  EXPECT_FALSE(DumpFlightRecorder("nothing"));
}

TEST_F(FlightRecorderTest, RingOnlyModeFromEnvKeepsMainBufferEmpty) {
  ::setenv("FEDMP_FLIGHT_RECORDER", "32", 1);
  ::setenv("FEDMP_FLIGHT_DUMP_PREFIX",
           (::testing::TempDir() + "flight_ring_only").c_str(), 1);
  ASSERT_TRUE(MaybeEnableFlightRecorderFromEnv());
  ::unsetenv("FEDMP_FLIGHT_RECORDER");
  ::unsetenv("FEDMP_FLIGHT_DUMP_PREFIX");
  ASSERT_TRUE(Enabled());  // ring-only mode switched telemetry on
  for (int i = 0; i < 10; ++i) {
    InstantEvent("ring_only", PsTrack(), {{"i", i}});
  }
  // Nothing lands in the unbounded buffer, everything in the ring, and the
  // by-construction drops are not counted as losses.
  EXPECT_EQ(BufferedEventCount(), 0);
  EXPECT_EQ(DroppedEventCount(), 10);
  EXPECT_EQ(FlightRecorderEventCount(), 10);
  const std::string jsonl = FlightRecorderEventsJsonl();
  EXPECT_NE(jsonl.find("\"event\":\"ring_only\""), std::string::npos);
}

TEST_F(FlightRecorderTest, NonLogicalEventsCannotDisplaceLogicalHistory) {
  Enable(TraceOptions{});
  FlightRecorderOptions options;
  options.total_capacity = 4;
  options.per_track_capacity = 4;
  options.install_signal_handlers = false;
  EnableFlightRecorder(options);
  for (int i = 0; i < 4; ++i) {
    InstantEvent("logical", PsTrack(), {{"i", i}});
  }
  // A flood of pool-lane (non-logical) records must not evict the logical
  // ledger: they are bounded separately.
  for (int i = 0; i < 100; ++i) {
    RecordPoolChunk(0, 0.0, 1e6, 1);
  }
  const std::string jsonl = FlightRecorderEventsJsonl();
  for (int i = 0; i < 4; ++i) {
    const std::string needle = "\"i\":" + std::to_string(i);
    EXPECT_NE(jsonl.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace fedmp::obs
