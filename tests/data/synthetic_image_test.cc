#include "data/synthetic_image.h"

#include <gtest/gtest.h>

namespace fedmp::data {
namespace {

SyntheticImageConfig SmallConfig() {
  SyntheticImageConfig cfg;
  cfg.channels = 2;
  cfg.height = 10;
  cfg.width = 8;
  cfg.num_classes = 3;
  cfg.train_per_class = 5;
  cfg.test_per_class = 2;
  cfg.seed = 77;
  return cfg;
}

TEST(SyntheticImageTest, SizesAndShapes) {
  const TrainTestSplit split = GenerateSyntheticImages(SmallConfig());
  EXPECT_EQ(split.train.size(), 15);
  EXPECT_EQ(split.test.size(), 6);
  EXPECT_EQ(split.train.example_shape, (std::vector<int64_t>{2, 10, 8}));
  EXPECT_EQ(split.train.num_classes, 3);
  EXPECT_EQ(split.train.ExampleNumel(), 160);
  for (const auto& ex : split.train.examples) {
    EXPECT_EQ(static_cast<int64_t>(ex.size()), 160);
  }
}

TEST(SyntheticImageTest, AllClassesPresent) {
  const TrainTestSplit split = GenerateSyntheticImages(SmallConfig());
  std::vector<int> counts(3, 0);
  for (int64_t y : split.train.labels) ++counts[static_cast<size_t>(y)];
  for (int c : counts) EXPECT_EQ(c, 5);
}

TEST(SyntheticImageTest, DeterministicBySeed) {
  const TrainTestSplit a = GenerateSyntheticImages(SmallConfig());
  const TrainTestSplit b = GenerateSyntheticImages(SmallConfig());
  ASSERT_EQ(a.train.size(), b.train.size());
  EXPECT_EQ(a.train.labels, b.train.labels);
  EXPECT_EQ(a.train.examples[0], b.train.examples[0]);
}

TEST(SyntheticImageTest, DifferentSeedsDiffer) {
  SyntheticImageConfig cfg = SmallConfig();
  const TrainTestSplit a = GenerateSyntheticImages(cfg);
  cfg.seed = 78;
  const TrainTestSplit b = GenerateSyntheticImages(cfg);
  EXPECT_NE(a.train.examples[0], b.train.examples[0]);
}

TEST(SyntheticImageTest, ClassesAreSeparatedBeyondNoise) {
  // Mean same-class distance must be well below mean cross-class distance
  // of the underlying prototypes (here proxied through low-noise samples).
  SyntheticImageConfig cfg = SmallConfig();
  cfg.noise_stddev = 0.05;
  cfg.max_shift = 0;
  cfg.train_per_class = 8;
  const TrainTestSplit split = GenerateSyntheticImages(cfg);
  auto dist = [&](int64_t i, int64_t j) {
    const auto& a = split.train.examples[static_cast<size_t>(i)];
    const auto& b = split.train.examples[static_cast<size_t>(j)];
    double acc = 0.0;
    for (size_t k = 0; k < a.size(); ++k) {
      acc += (a[k] - b[k]) * (a[k] - b[k]);
    }
    return acc;
  };
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (int64_t i = 0; i < split.train.size(); ++i) {
    for (int64_t j = i + 1; j < split.train.size(); ++j) {
      if (split.train.labels[(size_t)i] == split.train.labels[(size_t)j]) {
        same += dist(i, j);
        ++same_n;
      } else {
        cross += dist(i, j);
        ++cross_n;
      }
    }
  }
  EXPECT_LT(same / same_n, 0.5 * cross / cross_n);
}

TEST(DatasetTest, GatherBuildsBatch) {
  const TrainTestSplit split = GenerateSyntheticImages(SmallConfig());
  nn::Tensor batch;
  std::vector<int64_t> labels;
  split.train.Gather({0, 3, 7}, &batch, &labels);
  EXPECT_EQ(batch.shape(), (std::vector<int64_t>{3, 2, 10, 8}));
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[1], split.train.labels[3]);
  EXPECT_EQ(batch.at(160), split.train.examples[3][0]);
}

TEST(DatasetTest, SubsetCopiesSelected) {
  const TrainTestSplit split = GenerateSyntheticImages(SmallConfig());
  const Dataset sub = split.train.Subset({2, 4});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.labels[0], split.train.labels[2]);
  EXPECT_EQ(sub.examples[1], split.train.examples[4]);
  EXPECT_EQ(sub.num_classes, split.train.num_classes);
}

}  // namespace
}  // namespace fedmp::data
