#include "data/synthetic_text.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace fedmp::data {
namespace {

SyntheticTextConfig SmallConfig() {
  SyntheticTextConfig cfg;
  cfg.vocab_size = 12;
  cfg.seq_len = 6;
  cfg.train_windows = 100;
  cfg.test_windows = 20;
  cfg.seed = 5;
  return cfg;
}

TEST(SyntheticTextTest, WindowShapes) {
  const TrainTestSplit split = GenerateSyntheticText(SmallConfig());
  EXPECT_EQ(split.train.size(), 100);
  EXPECT_EQ(split.test.size(), 20);
  EXPECT_EQ(split.train.example_shape, (std::vector<int64_t>{7}));
  EXPECT_EQ(split.train.num_classes, 12);
}

TEST(SyntheticTextTest, TokensInVocab) {
  const TrainTestSplit split = GenerateSyntheticText(SmallConfig());
  for (const auto& window : split.train.examples) {
    for (float tok : window) {
      EXPECT_GE(tok, 0.0f);
      EXPECT_LT(tok, 12.0f);
      EXPECT_EQ(tok, std::floor(tok));  // integer-valued
    }
  }
}

TEST(SyntheticTextTest, DeterministicBySeed) {
  const TrainTestSplit a = GenerateSyntheticText(SmallConfig());
  const TrainTestSplit b = GenerateSyntheticText(SmallConfig());
  EXPECT_EQ(a.train.examples[3], b.train.examples[3]);
}

TEST(SyntheticTextTest, MarkovStructureIsPredictable) {
  // Successors of a given token must be concentrated: the most frequent
  // successor should carry far more than the uniform 1/V share.
  SyntheticTextConfig cfg = SmallConfig();
  cfg.train_windows = 400;
  const TrainTestSplit split = GenerateSyntheticText(cfg);
  std::map<int, std::map<int, int>> successor_counts;
  for (const auto& window : split.train.examples) {
    for (size_t t = 0; t + 1 < window.size(); ++t) {
      ++successor_counts[(int)window[t]][(int)window[t + 1]];
    }
  }
  int peaked_states = 0, states = 0;
  for (const auto& [state, succ] : successor_counts) {
    int total = 0, best = 0;
    for (const auto& [next, count] : succ) {
      total += count;
      best = std::max(best, count);
    }
    if (total < 30) continue;
    ++states;
    if (static_cast<double>(best) / total > 2.0 / 12.0) ++peaked_states;
  }
  ASSERT_GT(states, 0);
  EXPECT_GT(static_cast<double>(peaked_states) / states, 0.7);
}

TEST(SplitLmBatchTest, SplitsInputsAndShiftedTargets) {
  nn::Tensor windows = nn::Tensor::FromData(
      {2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  nn::Tensor inputs;
  std::vector<int64_t> targets;
  SplitLmBatch(windows, &inputs, &targets);
  EXPECT_EQ(inputs.shape(), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(inputs(0, 0), 1.0f);
  EXPECT_EQ(inputs(1, 2), 7.0f);
  EXPECT_EQ(targets, (std::vector<int64_t>{2, 3, 4, 6, 7, 8}));
}

}  // namespace
}  // namespace fedmp::data
