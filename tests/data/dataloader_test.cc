#include "data/dataloader.h"

#include <set>

#include <gtest/gtest.h>

#include "data/synthetic_image.h"

namespace fedmp::data {
namespace {

Dataset MakeData(int64_t n) {
  SyntheticImageConfig cfg;
  cfg.channels = 1;
  cfg.height = cfg.width = 4;
  cfg.num_classes = 2;
  cfg.train_per_class = n / 2;
  cfg.test_per_class = 1;
  cfg.seed = 6;
  return GenerateSyntheticImages(cfg).train;
}

TEST(DataLoaderTest, BatchShapesAndEpochBoundary) {
  const Dataset ds = MakeData(10);
  DataLoader loader(&ds, /*batch_size=*/4, /*shuffle=*/false, 1);
  nn::Tensor batch;
  std::vector<int64_t> labels;
  loader.NextBatch(&batch, &labels);
  EXPECT_EQ(batch.dim(0), 4);
  loader.NextBatch(&batch, &labels);
  EXPECT_EQ(batch.dim(0), 4);
  loader.NextBatch(&batch, &labels);  // final short batch of the epoch
  EXPECT_EQ(batch.dim(0), 2);
  EXPECT_EQ(loader.epochs_completed(), 1);
}

TEST(DataLoaderTest, UnshuffledEpochVisitsEveryExampleOnce) {
  const Dataset ds = MakeData(12);
  DataLoader loader(&ds, 5, /*shuffle=*/false, 1);
  nn::Tensor batch;
  std::vector<int64_t> labels;
  std::vector<int64_t> all_labels;
  while (loader.epochs_completed() == 0) {
    loader.NextBatch(&batch, &labels);
    all_labels.insert(all_labels.end(), labels.begin(), labels.end());
  }
  EXPECT_EQ(all_labels, ds.labels);
}

TEST(DataLoaderTest, ShuffleChangesOrderButNotMultiset) {
  const Dataset ds = MakeData(20);
  DataLoader loader(&ds, 20, /*shuffle=*/true, 42);
  nn::Tensor batch;
  std::vector<int64_t> labels;
  loader.NextBatch(&batch, &labels);
  std::vector<int64_t> sorted_loaded = labels;
  std::sort(sorted_loaded.begin(), sorted_loaded.end());
  std::vector<int64_t> sorted_truth = ds.labels;
  std::sort(sorted_truth.begin(), sorted_truth.end());
  EXPECT_EQ(sorted_loaded, sorted_truth);
}

TEST(DataLoaderTest, ShardRestriction) {
  const Dataset ds = MakeData(10);
  DataLoader loader(&ds, {1, 3, 5}, 2, /*shuffle=*/false, 1);
  EXPECT_EQ(loader.size(), 3);
  nn::Tensor batch;
  std::vector<int64_t> labels;
  loader.NextBatch(&batch, &labels);
  EXPECT_EQ(labels[0], ds.labels[1]);
  EXPECT_EQ(labels[1], ds.labels[3]);
}

TEST(DataLoaderTest, WrapsAcrossEpochs) {
  const Dataset ds = MakeData(4);
  DataLoader loader(&ds, 3, /*shuffle=*/false, 1);
  nn::Tensor batch;
  std::vector<int64_t> labels;
  for (int i = 0; i < 10; ++i) loader.NextBatch(&batch, &labels);
  EXPECT_GE(loader.epochs_completed(), 5);
}

TEST(DataLoaderDeathTest, EmptyShardAborts) {
  const Dataset ds = MakeData(4);
  EXPECT_DEATH(DataLoader(&ds, std::vector<int64_t>{}, 2, false, 1),
               "empty shard");
}

}  // namespace
}  // namespace fedmp::data
