#include "data/partition.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic_image.h"

namespace fedmp::data {
namespace {

Dataset MakeLabeled(int64_t per_class, int64_t classes) {
  SyntheticImageConfig cfg;
  cfg.channels = 1;
  cfg.height = cfg.width = 4;
  cfg.num_classes = classes;
  cfg.train_per_class = per_class;
  cfg.test_per_class = 1;
  cfg.seed = 3;
  return GenerateSyntheticImages(cfg).train;
}

TEST(PartitionIidTest, DisjointCoverOfAllIndices) {
  Rng rng(1);
  const Partition p = PartitionIid(100, 7, rng);
  ASSERT_EQ(p.size(), 7u);
  std::set<int64_t> seen;
  for (const auto& shard : p) {
    for (int64_t idx : shard) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  // Balanced within one element.
  for (const auto& shard : p) {
    EXPECT_GE(shard.size(), 100u / 7);
    EXPECT_LE(shard.size(), 100u / 7 + 1);
  }
}

TEST(PartitionIidTest, DeterministicGivenRngSeed) {
  Rng a(9), b(9);
  EXPECT_EQ(PartitionIid(50, 5, a), PartitionIid(50, 5, b));
}

TEST(LabelSkewTest, ZeroSkewIsIid) {
  const Dataset ds = MakeLabeled(10, 4);
  Rng rng(2);
  const Partition p = PartitionLabelSkew(ds, 4, 0.0, rng);
  std::set<int64_t> seen;
  for (const auto& shard : p) seen.insert(shard.begin(), shard.end());
  EXPECT_EQ(static_cast<int64_t>(seen.size()), ds.size());
}

class LabelSkewLevelTest : public ::testing::TestWithParam<double> {};

TEST_P(LabelSkewLevelTest, DominantLabelShareMatchesLevel) {
  const double y = GetParam();
  const Dataset ds = MakeLabeled(50, 5);
  Rng rng(3);
  const int64_t workers = 5;
  const Partition p = PartitionLabelSkew(ds, workers, y, rng);
  for (int64_t w = 0; w < workers; ++w) {
    const auto hist = ShardLabelHistogram(ds, p[static_cast<size_t>(w)]);
    const int64_t dominant = w % 5;
    const int64_t total = static_cast<int64_t>(p[(size_t)w].size());
    ASSERT_GT(total, 0);
    const double share =
        static_cast<double>(hist[static_cast<size_t>(dominant)]) /
        static_cast<double>(total);
    // Dominant share >= y% (the uniform remainder can add a little more).
    EXPECT_GE(share, y / 100.0 - 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, LabelSkewLevelTest,
                         ::testing::Values(20.0, 40.0, 60.0, 80.0));

class MissingClassesTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(MissingClassesTest, EachWorkerLacksExactlyYClasses) {
  const int64_t y = GetParam();
  const Dataset ds = MakeLabeled(20, 6);
  Rng rng(4);
  const Partition p = PartitionMissingClasses(ds, 4, y, rng);
  for (const auto& shard : p) {
    const auto hist = ShardLabelHistogram(ds, shard);
    int64_t missing = 0;
    for (int64_t count : hist) {
      if (count == 0) ++missing;
    }
    EXPECT_EQ(missing, y);
  }
  // All examples assigned exactly once.
  std::set<int64_t> seen;
  for (const auto& shard : p) {
    for (int64_t idx : shard) EXPECT_TRUE(seen.insert(idx).second);
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), ds.size());
}

INSTANTIATE_TEST_SUITE_P(Levels, MissingClassesTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(MissingClassesDeathTest, RejectsAllClassesMissing) {
  const Dataset ds = MakeLabeled(5, 3);
  Rng rng(5);
  EXPECT_DEATH(PartitionMissingClasses(ds, 2, 3, rng), "Check failed");
}

TEST(ShardHistogramTest, CountsLabels) {
  const Dataset ds = MakeLabeled(2, 2);
  const auto hist = ShardLabelHistogram(ds, {0, 1, 2, 3});
  EXPECT_EQ(hist[0] + hist[1], 4);
}

// --- Streaming partition views (the 100k-worker path) ---

TEST(StreamingIidPartitionTest, PermuteIsABijection) {
  for (int64_t n : {1, 2, 7, 100, 1000}) {
    const StreamingIidPartition view(n, 1, /*seed=*/42);
    std::set<int64_t> images;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t y = view.Permute(i);
      EXPECT_GE(y, 0);
      EXPECT_LT(y, n);
      EXPECT_TRUE(images.insert(y).second)
          << "n=" << n << ": Permute(" << i << ") collides";
    }
    EXPECT_EQ(static_cast<int64_t>(images.size()), n);
  }
}

TEST(StreamingIidPartitionTest, ShardsDisjointlyCoverTheDataset) {
  const int64_t n = 503, workers = 7;  // prime n: uneven shard sizes
  const StreamingIidPartition view(n, workers, /*seed=*/9);
  ASSERT_EQ(view.num_workers(), workers);
  std::set<int64_t> seen;
  for (int64_t w = 0; w < workers; ++w) {
    const std::vector<int64_t> shard = view.Shard(w);
    EXPECT_EQ(static_cast<int64_t>(shard.size()), view.shard_size(w));
    // Balanced within one element, like PartitionIid.
    EXPECT_GE(static_cast<int64_t>(shard.size()), n / workers);
    EXPECT_LE(static_cast<int64_t>(shard.size()), n / workers + 1);
    for (int64_t idx : shard) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, n);
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), n);
}

TEST(StreamingIidPartitionTest, PureFunctionOfSeedAndWorker) {
  const StreamingIidPartition a(200, 5, 77), b(200, 5, 77);
  const StreamingIidPartition c(200, 5, 78);
  bool any_diff = false;
  for (int64_t w = 0; w < 5; ++w) {
    EXPECT_EQ(a.Shard(w), b.Shard(w)) << "worker " << w;
    // Repeated materialization of the same shard is identical (the whole
    // point: the index vector can be dropped and regenerated at will).
    EXPECT_EQ(a.Shard(w), a.Shard(w)) << "worker " << w;
    if (a.Shard(w) != c.Shard(w)) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "seed does not influence the permutation";
}

TEST(StreamingIidPartitionTest, DegenerateShapes) {
  // One worker owns everything.
  const StreamingIidPartition solo(10, 1, 3);
  EXPECT_EQ(solo.shard_size(0), 10);
  // Workers == examples: singleton shards.
  const StreamingIidPartition tight(6, 6, 3);
  for (int64_t w = 0; w < 6; ++w) {
    EXPECT_EQ(tight.shard_size(w), 1) << "worker " << w;
    EXPECT_EQ(static_cast<int64_t>(tight.Shard(w).size()), 1);
  }
}

TEST(StreamingIidPartitionDeathTest, RejectsMoreWorkersThanExamples) {
  EXPECT_DEATH(StreamingIidPartition(3, 4, 1), "Check failed");
}

TEST(MaterializedPartitionViewTest, MirrorsTheEagerPartition) {
  Rng rng(11);
  Partition p = PartitionIid(60, 4, rng);
  const Partition copy = p;
  const MaterializedPartitionView view(std::move(p));
  ASSERT_EQ(view.num_workers(), 4);
  for (int64_t w = 0; w < 4; ++w) {
    EXPECT_EQ(view.Shard(w), copy[static_cast<size_t>(w)]);
    EXPECT_EQ(view.shard_size(w),
              static_cast<int64_t>(copy[static_cast<size_t>(w)].size()));
  }
}

}  // namespace
}  // namespace fedmp::data
