#include "data/task_zoo.h"

#include <gtest/gtest.h>

namespace fedmp::data {
namespace {

TEST(TaskZooTest, VisionTaskNamesInPaperOrder) {
  EXPECT_EQ(VisionTaskNames(),
            (std::vector<std::string>{"cnn", "alexnet", "vgg", "resnet"}));
}

TEST(TaskZooTest, NamesResolve) {
  for (const char* name : {"cnn", "alexnet", "vgg", "resnet", "lstm"}) {
    const FlTask task = MakeTaskByName(name, TaskScale::kTiny, 1);
    EXPECT_EQ(task.name, name);
    EXPECT_GT(task.train.size(), 0);
    EXPECT_GT(task.test.size(), 0);
  }
}

TEST(TaskZooDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeTaskByName("bogus", TaskScale::kTiny, 1),
               "unknown task");
}

TEST(TaskZooTest, LmTaskFlagged) {
  EXPECT_TRUE(MakeLstmPtbTask(TaskScale::kTiny, 1).is_language_model);
  EXPECT_FALSE(MakeCnnMnistTask(TaskScale::kTiny, 1).is_language_model);
}

TEST(TaskZooTest, DatasetMatchesModelInput) {
  for (const char* name : {"cnn", "alexnet", "vgg", "resnet"}) {
    const FlTask task = MakeTaskByName(name, TaskScale::kBench, 1);
    EXPECT_EQ(task.train.example_shape[0], task.model.input.c) << name;
    EXPECT_EQ(task.train.example_shape[1], task.model.input.h) << name;
    EXPECT_EQ(task.train.example_shape[2], task.model.input.w) << name;
    EXPECT_EQ(task.train.num_classes, task.model.num_classes) << name;
  }
}

TEST(TaskZooTest, TargetsSet) {
  EXPECT_GT(MakeCnnMnistTask(TaskScale::kBench, 1).target_accuracy, 0.0);
  EXPECT_GT(MakeLstmPtbTask(TaskScale::kBench, 1).target_perplexity, 0.0);
}

TEST(TaskZooTest, RelativeModelSizesMatchPaperOrdering) {
  // VGG > AlexNet > CNN in parameter count, mirroring the real models.
  const int64_t cnn =
      MakeCnnMnistTask(TaskScale::kBench, 1).model.NumParams();
  const int64_t alexnet =
      MakeAlexNetCifarTask(TaskScale::kBench, 1).model.NumParams();
  const int64_t vgg =
      MakeVggEmnistTask(TaskScale::kBench, 1).model.NumParams();
  EXPECT_GT(vgg, alexnet);
  EXPECT_GT(alexnet, cnn * 2 / 3);  // same ballpark or larger
}

TEST(TaskZooTest, DataSeedChangesData) {
  const FlTask a = MakeCnnMnistTask(TaskScale::kTiny, 1);
  const FlTask b = MakeCnnMnistTask(TaskScale::kTiny, 2);
  EXPECT_NE(a.train.examples[0], b.train.examples[0]);
}

}  // namespace
}  // namespace fedmp::data
