#include "bandit/discounted_ucb.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fedmp::bandit {
namespace {

TEST(DiscountedUcbTest, ExploresEveryArmFirst) {
  DiscountedUcb ucb(5, 0.95, 1);
  std::vector<bool> seen(5, false);
  for (int k = 0; k < 5; ++k) {
    const int64_t arm = ucb.SelectArm();
    EXPECT_FALSE(seen[static_cast<size_t>(arm)])
        << "unpulled arms must come first";
    seen[static_cast<size_t>(arm)] = true;
    ucb.Observe(0.1);
  }
}

TEST(DiscountedUcbTest, ConvergesToBestArm) {
  DiscountedUcb ucb(4, 0.98, 2);
  Rng rng(3);
  const double means[] = {0.1, 0.7, 0.3, 0.2};
  int best_count = 0;
  for (int k = 0; k < 400; ++k) {
    const int64_t arm = ucb.SelectArm();
    ucb.Observe(means[arm] + rng.Gaussian(0.0, 0.05));
    if (k >= 300 && arm == 1) ++best_count;
  }
  // Discounted UCB keeps exploring (non-stationarity guard); the best arm
  // must still dominate the 25% a uniform policy would give it.
  EXPECT_GT(best_count, 40);
}

TEST(DiscountedUcbTest, TracksDriftingBestArm) {
  DiscountedUcb ucb(2, 0.95, 5);
  Rng rng(6);
  // Arm 0 best for 150 rounds, then arm 1.
  int late_best = 0;
  for (int k = 0; k < 400; ++k) {
    const int64_t arm = ucb.SelectArm();
    const double mean = (k < 150) == (arm == 0) ? 0.8 : 0.2;
    ucb.Observe(mean + rng.Gaussian(0.0, 0.05));
    if (k >= 320 && arm == 1) ++late_best;
  }
  EXPECT_GT(late_best, 50);
}

TEST(DiscountedUcbTest, StatsMatchHandComputation) {
  DiscountedUcb ucb(2, 0.5, 7);
  // Force pulls via Select/Observe in whatever order; track by hand.
  const int64_t a0 = ucb.SelectArm();
  ucb.Observe(1.0);
  const int64_t a1 = ucb.SelectArm();
  ucb.Observe(0.0);
  // History: [a0: 1.0, a1: 0.0], k = 2.
  // DiscountedCount(a0) = 0.5^2 = 0.25; (a1) = 0.5^1 = 0.5.
  EXPECT_NEAR(ucb.DiscountedCount(a0), 0.25, 1e-12);
  EXPECT_NEAR(ucb.DiscountedCount(a1), 0.5, 1e-12);
  EXPECT_NEAR(ucb.DiscountedMean(a0), 1.0, 1e-12);
  EXPECT_NEAR(ucb.DiscountedMean(a1), 0.0, 1e-12);
}

TEST(DiscountedUcbDeathTest, ProtocolViolationsAbort) {
  DiscountedUcb ucb(2, 0.9, 1);
  EXPECT_DEATH(ucb.Observe(1.0), "without SelectArm");
  ucb.SelectArm();
  EXPECT_DEATH(ucb.SelectArm(), "without Observe");
}

}  // namespace
}  // namespace fedmp::bandit
