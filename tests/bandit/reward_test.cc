#include "bandit/reward.h"

#include <gtest/gtest.h>

namespace fedmp::bandit {
namespace {

TEST(FedMpRewardTest, HigherWhenCloserToMean) {
  RewardOptions opt;
  const double near = FedMpReward(0.5, 10.5, 10.0, opt);
  const double far = FedMpReward(0.5, 20.0, 10.0, opt);
  EXPECT_GT(near, far);
}

TEST(FedMpRewardTest, ScalesWithLossDecrease) {
  RewardOptions opt;
  EXPECT_GT(FedMpReward(1.0, 12.0, 10.0, opt),
            FedMpReward(0.1, 12.0, 10.0, opt));
}

TEST(FedMpRewardTest, DenominatorClampedNearMean) {
  RewardOptions opt;
  opt.epsilon_frac = 0.05;
  // Exactly at the mean: relative gap 0, clamped at 0.05.
  EXPECT_NEAR(FedMpReward(1.0, 10.0, 10.0, opt), 1.0 / 0.05, 1e-9);
}

TEST(FedMpRewardTest, NegativeProgressEarnsNothing) {
  RewardOptions opt;
  EXPECT_EQ(FedMpReward(-0.3, 10.0, 10.0, opt), 0.0);
}

TEST(FedMpRewardTest, AbsoluteGapVariant) {
  RewardOptions opt;
  opt.relative_gap = false;
  opt.epsilon_frac = 0.05;
  // |T - mean| = 2, floor = 0.5; reward = 1 / 2.
  EXPECT_NEAR(FedMpReward(1.0, 12.0, 10.0, opt), 0.5, 1e-9);
  // Clamp engages inside the floor.
  EXPECT_NEAR(FedMpReward(1.0, 10.1, 10.0, opt), 2.0, 1e-9);
}

TEST(FedMpRewardTest, RelativeGapIsScaleFree) {
  RewardOptions opt;
  // Same relative situation at 10x the time scale gives the same reward.
  EXPECT_NEAR(FedMpReward(0.4, 12.0, 10.0, opt),
              FedMpReward(0.4, 120.0, 100.0, opt), 1e-12);
}

TEST(TimeOnlyRewardTest, InverseTime) {
  EXPECT_DOUBLE_EQ(TimeOnlyReward(4.0), 0.25);
  EXPECT_GT(TimeOnlyReward(1.0), TimeOnlyReward(2.0));
}

}  // namespace
}  // namespace fedmp::bandit
