#include "bandit/partition_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fedmp::bandit {
namespace {

TEST(PartitionTreeTest, StartsAsSingleLeaf) {
  PartitionTree tree(0.0, 1.0, 0.1);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_TRUE(tree.CoversDomain());
  EXPECT_EQ(tree.LeafIndex(0.5), 0u);
}

TEST(PartitionTreeTest, SplitCreatesTwoHalves) {
  PartitionTree tree(0.0, 1.0, 0.1);
  ASSERT_TRUE(tree.SplitAt(0, 0.4));
  ASSERT_EQ(tree.num_leaves(), 2u);
  EXPECT_TRUE(tree.CoversDomain());
  EXPECT_EQ(tree.LeafIndex(0.39), 0u);
  EXPECT_EQ(tree.LeafIndex(0.4), 1u);
  EXPECT_DOUBLE_EQ(tree.leaves()[0].hi, 0.4);
  EXPECT_DOUBLE_EQ(tree.leaves()[1].lo, 0.4);
}

TEST(PartitionTreeTest, RefusesSplitBelowTheta) {
  PartitionTree tree(0.0, 1.0, 0.5);
  ASSERT_TRUE(tree.SplitAt(0, 0.5));  // diameter 1.0 > 0.5
  // Both halves now have diameter 0.5 <= theta.
  EXPECT_FALSE(tree.SplitAt(0, 0.25));
  EXPECT_FALSE(tree.SplitAt(1, 0.75));
  EXPECT_EQ(tree.num_leaves(), 2u);
}

TEST(PartitionTreeTest, RefusesDegenerateSplitPoints) {
  PartitionTree tree(0.0, 1.0, 0.01);
  EXPECT_FALSE(tree.SplitAt(0, 0.0));
  EXPECT_FALSE(tree.SplitAt(0, 1.0));
  EXPECT_FALSE(tree.SplitAt(0, -0.5));
  EXPECT_EQ(tree.num_leaves(), 1u);
}

TEST(PartitionTreeTest, RandomSplitSequencePreservesInvariants) {
  // Property sweep: any sequence of splits keeps the leaves a disjoint
  // sorted cover of the domain, with every leaf locatable by LeafIndex.
  Rng rng(21);
  PartitionTree tree(0.0, 0.9, 0.02);
  for (int step = 0; step < 200; ++step) {
    const double at = rng.Uniform(0.0, 0.9);
    const size_t leaf = tree.LeafIndex(at);
    tree.SplitAt(leaf, at);
    ASSERT_TRUE(tree.CoversDomain()) << "step " << step;
  }
  for (int probe = 0; probe < 100; ++probe) {
    const double v = rng.Uniform(0.0, 0.9);
    const size_t leaf = tree.LeafIndex(v);
    EXPECT_TRUE(tree.leaves()[leaf].Contains(v));
  }
  // Every leaf respects the theta floor after saturation... leaves can be
  // smaller than theta only if they were created by a split of a leaf just
  // above theta; they can never be smaller than theta/2... in fact splits
  // only apply to leaves with diameter > theta, so children can be
  // arbitrarily small but the PARENT had diameter > theta.
  for (const Interval& leaf : tree.leaves()) {
    EXPECT_GT(leaf.diameter(), 0.0);
  }
}

TEST(PartitionTreeDeathTest, LeafIndexOutsideDomainAborts) {
  PartitionTree tree(0.0, 0.9, 0.1);
  EXPECT_DEATH(tree.LeafIndex(0.95), "outside domain");
  EXPECT_DEATH(tree.LeafIndex(-0.1), "outside domain");
}

TEST(IntervalTest, ContainsIsHalfOpen) {
  const Interval iv{0.2, 0.5};
  EXPECT_TRUE(iv.Contains(0.2));
  EXPECT_TRUE(iv.Contains(0.49));
  EXPECT_FALSE(iv.Contains(0.5));
  EXPECT_DOUBLE_EQ(iv.diameter(), 0.3);
}

}  // namespace
}  // namespace fedmp::bandit
