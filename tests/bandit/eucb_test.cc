#include "bandit/eucb.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fedmp::bandit {
namespace {

EucbOptions FastOptions() {
  EucbOptions opt;
  opt.theta = 0.1;
  opt.lambda = 0.98;
  opt.ratio_lo = 0.0;
  opt.ratio_hi = 0.8;
  opt.exploration_coef = 0.1;
  opt.min_pulls_to_split = 2;
  return opt;
}

TEST(EucbTest, RatiosStayInDomain) {
  EucbAgent agent(FastOptions(), 3);
  Rng rng(4);
  for (int k = 0; k < 100; ++k) {
    const double ratio = agent.SelectRatio();
    EXPECT_GE(ratio, 0.0);
    EXPECT_LT(ratio, 0.8);
    agent.ObserveReward(rng.NextDouble());
  }
}

TEST(EucbTest, TreeGrowsAndCoversDomain) {
  EucbAgent agent(FastOptions(), 3);
  Rng rng(4);
  for (int k = 0; k < 60; ++k) {
    agent.SelectRatio();
    agent.ObserveReward(rng.NextDouble());
  }
  EXPECT_GT(agent.tree().num_leaves(), 2u);
  EXPECT_TRUE(agent.tree().CoversDomain());
}

TEST(EucbTest, NeverPulledLeafHasInfiniteUcb) {
  EucbAgent agent(FastOptions(), 3);
  EXPECT_TRUE(std::isinf(agent.UpperConfidence(0)));
  agent.SelectRatio();
  agent.ObserveReward(0.5);
  EXPECT_FALSE(std::isinf(agent.UpperConfidence(0)));
}

TEST(EucbTest, DiscountedStatsDecay) {
  EucbAgent agent(FastOptions(), 3);
  agent.SelectRatio();
  agent.ObserveReward(1.0);
  const double count_after_one = agent.DiscountedCount(
      agent.tree().LeafIndex(0.0) /* leaf 0 holds the only pull or not,
                                     so probe every leaf */);
  double total = 0.0;
  for (size_t j = 0; j < agent.tree().num_leaves(); ++j) {
    total += agent.DiscountedCount(j);
  }
  EXPECT_NEAR(total, 0.98, 1e-9);  // lambda^1
  (void)count_after_one;
  // Nine more observations: older pulls decay geometrically.
  Rng rng(4);
  for (int k = 0; k < 9; ++k) {
    agent.SelectRatio();
    agent.ObserveReward(rng.NextDouble());
  }
  total = 0.0;
  for (size_t j = 0; j < agent.tree().num_leaves(); ++j) {
    total += agent.DiscountedCount(j);
  }
  double expected = 0.0;
  for (int k = 1; k <= 10; ++k) expected += std::pow(0.98, k);
  EXPECT_NEAR(total, expected, 1e-9);
}

TEST(EucbTest, ConvergesToGoodArmOnSmoothLandscape) {
  // Reward landscape peaked at ratio 0.5: r = 1 - |ratio-0.5|*2 + noise.
  // After a learning period the agent should mostly pull near the peak.
  EucbAgent agent(FastOptions(), 11);
  Rng rng(12);
  double late_sum = 0.0;
  int late_n = 0;
  for (int k = 0; k < 300; ++k) {
    const double ratio = agent.SelectRatio();
    const double reward =
        1.0 - 2.0 * std::fabs(ratio - 0.5) + rng.Gaussian(0.0, 0.05);
    agent.ObserveReward(reward);
    if (k >= 200) {
      late_sum += std::fabs(ratio - 0.5);
      ++late_n;
    }
  }
  EXPECT_LT(late_sum / late_n, 0.15)
      << "late pulls should concentrate near the optimum";
}

TEST(EucbTest, AdaptsWhenOptimumMoves) {
  // Non-stationarity: the discounting must let the agent move when the
  // peak jumps from 0.2 to 0.6 (heterogeneous capability drift, §I).
  EucbAgent agent(FastOptions(), 13);
  Rng rng(14);
  auto reward_at = [&](double ratio, double peak) {
    return 1.0 - 2.0 * std::fabs(ratio - peak) + rng.Gaussian(0.0, 0.05);
  };
  for (int k = 0; k < 200; ++k) {
    const double ratio = agent.SelectRatio();
    agent.ObserveReward(reward_at(ratio, 0.2));
  }
  double late_sum = 0.0;
  int late_n = 0;
  for (int k = 0; k < 300; ++k) {
    const double ratio = agent.SelectRatio();
    agent.ObserveReward(reward_at(ratio, 0.6));
    if (k >= 200) {
      late_sum += std::fabs(ratio - 0.6);
      ++late_n;
    }
  }
  EXPECT_LT(late_sum / late_n, 0.2);
}

TEST(EucbTest, RegretFarBelowUniformPolicy) {
  // Eq. (12)'s regret target: discounted UCB keeps a non-vanishing
  // exploration floor (it is built for non-stationary rewards), so instead
  // of vanishing regret we require average regret far below the
  // uniform-random policy's. Uniform over [0, 0.8) against the peak at
  // 0.35 incurs E[2|r-0.35|] ~ 0.41 per pull.
  EucbAgent agent(FastOptions(), 15);
  Rng rng(16);
  auto expected_reward = [](double ratio) {
    return 1.0 - 2.0 * std::fabs(ratio - 0.35);
  };
  double total_regret = 0.0;
  const int horizon = 400;
  for (int k = 0; k < horizon; ++k) {
    const double ratio = agent.SelectRatio();
    agent.ObserveReward(expected_reward(ratio) + rng.Gaussian(0.0, 0.05));
    total_regret += 1.0 - expected_reward(ratio);
  }
  EXPECT_LT(total_regret / horizon, 0.25);
}

TEST(EucbDeathTest, ProtocolViolationsAbort) {
  EucbAgent agent(FastOptions(), 3);
  EXPECT_DEATH(agent.ObserveReward(1.0), "without SelectRatio");
  agent.SelectRatio();
  EXPECT_DEATH(agent.SelectRatio(), "without ObserveReward");
}

TEST(EucbTest, DeterministicGivenSeed) {
  EucbAgent a(FastOptions(), 7), b(FastOptions(), 7);
  for (int k = 0; k < 50; ++k) {
    const double ra = a.SelectRatio();
    const double rb = b.SelectRatio();
    EXPECT_EQ(ra, rb);
    a.ObserveReward(0.3);
    b.ObserveReward(0.3);
  }
}

}  // namespace
}  // namespace fedmp::bandit
