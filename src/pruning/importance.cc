#include "pruning/importance.h"

#include <cmath>

#include "common/logging.h"
#include "pruning/lstm_iss_pruner.h"
#include "pruning/mask.h"

namespace fedmp::pruning {

using nn::LayerSpec;
using nn::LayerType;
using nn::ModelSpec;
using nn::Tensor;
using nn::TensorList;

int64_t ParamTensorCount(const LayerSpec& layer) {
  switch (layer.type) {
    case LayerType::kConv2d:
    case LayerType::kLinear:
      return layer.bias ? 2 : 1;
    case LayerType::kBatchNorm2d:
      return 2;
    case LayerType::kResidualBlock:
      return 6;  // conv1.w, bn1.gamma, bn1.beta, conv2.w, bn2.gamma, bn2.beta
    case LayerType::kLstm:
      return 3;  // wx, wh, b
    case LayerType::kEmbedding:
      return 1;
    default:
      return 0;
  }
}

std::vector<int64_t> ParamTensorOffsets(const ModelSpec& spec) {
  std::vector<int64_t> offsets(spec.layers.size(), 0);
  int64_t cursor = 0;
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    offsets[i] = cursor;
    cursor += ParamTensorCount(spec.layers[i]);
  }
  return offsets;
}

namespace {

// Per-row sum of |w| for a tensor whose dim 0 is the unit axis.
std::vector<float> RowL1(const Tensor& w) {
  const int64_t rows = w.dim(0);
  const int64_t cols = w.numel() / rows;
  std::vector<float> scores(static_cast<size_t>(rows), 0.0f);
  const float* p = w.data();
  for (int64_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    const float* row = p + r * cols;
    for (int64_t c = 0; c < cols; ++c) acc += std::fabs(row[c]);
    scores[static_cast<size_t>(r)] = static_cast<float>(acc);
  }
  return scores;
}

}  // namespace

std::vector<float> UnitImportance(const ModelSpec& spec,
                                  const TensorList& weights,
                                  size_t layer_index) {
  FEDMP_CHECK_LT(layer_index, spec.layers.size());
  if (!IsPrunableLayer(spec, layer_index)) return {};
  const std::vector<int64_t> offsets = ParamTensorOffsets(spec);
  const int64_t base = offsets[layer_index];
  const LayerSpec& ls = spec.layers[layer_index];
  switch (ls.type) {
    case LayerType::kConv2d:
    case LayerType::kLinear:
      return RowL1(weights[static_cast<size_t>(base)]);
    case LayerType::kResidualBlock:
      // Mid-channel importance from the first conv's filters.
      return RowL1(weights[static_cast<size_t>(base)]);
    case LayerType::kLstm:
      return LstmIssScores(weights[static_cast<size_t>(base)],
                           weights[static_cast<size_t>(base + 1)],
                           ls.out_channels);
    default:
      return {};
  }
}

}  // namespace fedmp::pruning
