#include "pruning/lstm_iss_pruner.h"

#include <cmath>

#include "common/logging.h"

namespace fedmp::pruning {

std::vector<int64_t> IssGateRows(int64_t hidden_size, int64_t unit) {
  FEDMP_CHECK(unit >= 0 && unit < hidden_size);
  std::vector<int64_t> rows(4);
  for (int64_t g = 0; g < 4; ++g) rows[static_cast<size_t>(g)] =
      g * hidden_size + unit;
  return rows;
}

std::vector<float> LstmIssScores(const nn::Tensor& wx, const nn::Tensor& wh,
                                 int64_t hidden_size) {
  FEDMP_CHECK_EQ(wx.ndim(), 2);
  FEDMP_CHECK_EQ(wh.ndim(), 2);
  FEDMP_CHECK_EQ(wx.dim(0), 4 * hidden_size);
  FEDMP_CHECK_EQ(wh.dim(0), 4 * hidden_size);
  FEDMP_CHECK_EQ(wh.dim(1), hidden_size);
  const int64_t in_size = wx.dim(1);
  std::vector<float> scores(static_cast<size_t>(hidden_size), 0.0f);
  const float* px = wx.data();
  const float* ph = wh.data();
  for (int64_t h = 0; h < hidden_size; ++h) {
    double acc = 0.0;
    // The unit's four gate rows in Wx and Wh.
    for (int64_t g = 0; g < 4; ++g) {
      const int64_t row = g * hidden_size + h;
      const float* xrow = px + row * in_size;
      for (int64_t c = 0; c < in_size; ++c) acc += std::fabs(xrow[c]);
      const float* hrow = ph + row * hidden_size;
      for (int64_t c = 0; c < hidden_size; ++c) acc += std::fabs(hrow[c]);
    }
    // The unit's recurrent input column in Wh (its outgoing connections).
    for (int64_t r = 0; r < 4 * hidden_size; ++r) {
      acc += std::fabs(ph[r * hidden_size + h]);
    }
    scores[static_cast<size_t>(h)] = static_cast<float>(acc);
  }
  return scores;
}

std::vector<int64_t> IssRowGather(int64_t hidden_size,
                                  const std::vector<int64_t>& kept) {
  std::vector<int64_t> rows;
  rows.reserve(4 * kept.size());
  for (int64_t g = 0; g < 4; ++g) {
    for (int64_t h : kept) {
      FEDMP_CHECK(h >= 0 && h < hidden_size);
      rows.push_back(g * hidden_size + h);
    }
  }
  return rows;
}

}  // namespace fedmp::pruning
