#include "pruning/mask.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace fedmp::pruning {

using nn::LayerType;
using nn::ModelSpec;

namespace {
// True if some later layer consumes (and therefore can adapt to) this
// layer's output width. The final parametric layer emits the class logits
// and must keep its width.
bool HasDownstreamConsumer(const ModelSpec& spec, size_t layer_index) {
  for (size_t j = layer_index + 1; j < spec.layers.size(); ++j) {
    switch (spec.layers[j].type) {
      case LayerType::kConv2d:
      case LayerType::kLinear:
      case LayerType::kResidualBlock:
      case LayerType::kLstm:
      case LayerType::kBatchNorm2d:
        return true;
      default:
        break;
    }
  }
  return false;
}
}  // namespace

bool IsPrunableLayer(const ModelSpec& spec, size_t layer_index) {
  FEDMP_CHECK_LT(layer_index, spec.layers.size());
  const nn::LayerSpec& ls = spec.layers[layer_index];
  switch (ls.type) {
    case LayerType::kResidualBlock:
      // The block's mid width is internal; pruning it never changes the
      // block's interface.
      return true;
    case LayerType::kConv2d:
    case LayerType::kLinear:
    case LayerType::kLstm:
      return HasDownstreamConsumer(spec, layer_index);
    default:
      return false;
  }
}

int64_t KeptCount(int64_t width, double ratio) {
  FEDMP_CHECK_GT(width, 0);
  FEDMP_CHECK(ratio >= 0.0 && ratio < 1.0) << "pruning ratio " << ratio;
  const int64_t kept = static_cast<int64_t>(
      std::llround(static_cast<double>(width) * (1.0 - ratio)));
  return std::max<int64_t>(1, std::min(width, kept));
}

namespace {
int64_t PrunableWidth(const nn::LayerSpec& ls) {
  switch (ls.type) {
    case LayerType::kConv2d:
    case LayerType::kLinear:
    case LayerType::kLstm:
      return ls.out_channels;
    case LayerType::kResidualBlock:
      return ls.mid_channels;
    default:
      return 0;
  }
}
}  // namespace

Status PruneMask::Validate(const ModelSpec& spec) const {
  if (layers.size() != spec.layers.size()) {
    return InvalidArgumentError(
        StrFormat("mask has %zu layers, spec has %zu", layers.size(),
                  spec.layers.size()));
  }
  if (ratio < 0.0 || ratio >= 1.0) {
    return InvalidArgumentError(StrFormat("mask ratio %f out of [0,1)",
                                          ratio));
  }
  for (size_t i = 0; i < layers.size(); ++i) {
    const LayerMask& lm = layers[i];
    const bool should_be_prunable = IsPrunableLayer(spec, i);
    if (lm.prunable != should_be_prunable) {
      return InvalidArgumentError(
          StrFormat("layer %zu prunable flag mismatch", i));
    }
    if (!lm.prunable) {
      if (!lm.kept.empty()) {
        return InvalidArgumentError(
            StrFormat("non-prunable layer %zu has a kept list", i));
      }
      continue;
    }
    const int64_t width = PrunableWidth(spec.layers[i]);
    if (lm.original_width != width) {
      return InvalidArgumentError(
          StrFormat("layer %zu width %lld != spec width %lld", i,
                    (long long)lm.original_width, (long long)width));
    }
    if (lm.kept.empty()) {
      return InvalidArgumentError(
          StrFormat("prunable layer %zu keeps no units", i));
    }
    int64_t prev = -1;
    for (int64_t k : lm.kept) {
      if (k <= prev || k < 0 || k >= width) {
        return InvalidArgumentError(StrFormat(
            "layer %zu kept list not sorted/unique/in-range", i));
      }
      prev = k;
    }
  }
  return Status::Ok();
}

PruneMask FullMask(const ModelSpec& spec) {
  PruneMask mask;
  mask.ratio = 0.0;
  mask.layers.resize(spec.layers.size());
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    if (!IsPrunableLayer(spec, i)) continue;
    LayerMask& lm = mask.layers[i];
    lm.prunable = true;
    lm.original_width = PrunableWidth(spec.layers[i]);
    lm.kept.resize(static_cast<size_t>(lm.original_width));
    for (size_t k = 0; k < lm.kept.size(); ++k) {
      lm.kept[k] = static_cast<int64_t>(k);
    }
  }
  return mask;
}

}  // namespace fedmp::pruning
