#ifndef FEDMP_PRUNING_MASK_H_
#define FEDMP_PRUNING_MASK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nn/model_spec.h"

namespace fedmp::pruning {

// Which output units (conv filters, FC neurons, residual mid-channels, LSTM
// hidden units) of one layer survive pruning. Non-prunable layers (and
// layers whose widths merely follow an upstream mask, like BatchNorm) have
// prunable == false and an empty kept list.
struct LayerMask {
  bool prunable = false;
  int64_t original_width = 0;
  std::vector<int64_t> kept;  // sorted ascending, unique, within width

  int64_t kept_count() const { return static_cast<int64_t>(kept.size()); }
};

// Per-model mask, aligned 1:1 with ModelSpec::layers. This is the "binary
// vector of remaining-parameter indexes" the PS records for each worker in
// R2SP (§III-C).
struct PruneMask {
  double ratio = 0.0;
  std::vector<LayerMask> layers;

  // Structural sanity: sorted/unique/in-range kept lists, alignment with
  // the spec, and at least one unit kept per prunable layer.
  Status Validate(const nn::ModelSpec& spec) const;
};

// True if `spec.layers[layer_index]` is a pruning decision point:
// Conv2d / Linear / ResidualBlock / Lstm — except the final classifier
// layer, whose output width is the class count and must stay intact.
bool IsPrunableLayer(const nn::ModelSpec& spec, size_t layer_index);

// How many units survive at `ratio` from `width`: max(1, round(width*(1-r))).
int64_t KeptCount(int64_t width, double ratio);

// The identity mask (nothing pruned) for a spec.
PruneMask FullMask(const nn::ModelSpec& spec);

}  // namespace fedmp::pruning

#endif  // FEDMP_PRUNING_MASK_H_
