#ifndef FEDMP_PRUNING_RECOVERY_H_
#define FEDMP_PRUNING_RECOVERY_H_

#include "common/statusor.h"
#include "pruning/structured_pruner.h"

namespace fedmp::pruning {

// R2SP model recovery (§III-C): scatters a worker's trained sub-model back
// into full-model-shaped tensors, zero everywhere the mask pruned. The
// invariant tested in tests/pruning: for any weights w and mask m,
//   RecoverToFull(full, Extract(full, w, m).weights, m) == Sparsify(w, m).
StatusOr<nn::TensorList> RecoverToFull(const nn::ModelSpec& full_spec,
                                       const nn::TensorList& sub_weights,
                                       const PruneMask& mask);

// RecoverToFull into caller-owned storage: tensors of *full whose shapes
// already match are zeroed and refilled in place, so aggregation loops that
// recover one worker after another reuse a single full-model scratch list.
// Bit-identical to RecoverToFull.
Status RecoverToFullInto(const nn::ModelSpec& full_spec,
                         const nn::TensorList& sub_weights,
                         const PruneMask& mask, nn::TensorList* full);

}  // namespace fedmp::pruning

#endif  // FEDMP_PRUNING_RECOVERY_H_
