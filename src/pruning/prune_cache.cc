#include "pruning/prune_cache.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace fedmp::pruning {

namespace {

// Far above any realistic working set (one entry per distinct (spec, mask)
// pair in flight); purely a leak backstop for long-lived processes that
// sweep many ratios.
constexpr size_t kMaxEntries = 512;

// Lock shards: the memo table is hit once per worker per path (send,
// receive, residual), so at 100k workers with a bounded in-flight window
// every pool lane is in here constantly — one global mutex would serialize
// the fleet on a hash lookup. Keys spread by their hash; each bucket has
// its own lock and its own slice of the entry budget.
constexpr size_t kBuckets = 16;

std::atomic<bool> g_enabled{true};
std::atomic<bool> g_env_checked{false};

void MaybeReadEnv() {
  if (g_env_checked.exchange(true)) return;
  const char* cache = std::getenv("FEDMP_PLAN_CACHE");
  const char* baseline = std::getenv("FEDMP_HOTPATH_BASELINE");
  if ((cache != nullptr && cache[0] == '0') ||
      (baseline != nullptr && baseline[0] == '1')) {
    g_enabled.store(false, std::memory_order_relaxed);
  }
}

void AppendI64(std::string* out, int64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendF64(std::string* out, double v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

// Canonical byte encoding of everything BuildPrunePlan reads: the full spec
// and the mask's structure. mask.ratio is deliberately excluded — the plan
// depends only on which units survive, not on the ratio that chose them.
std::string Fingerprint(const nn::ModelSpec& spec, const PruneMask& mask) {
  std::string key;
  key.reserve(256);
  key += spec.name;
  key.push_back('\0');
  AppendI64(&key, static_cast<int64_t>(spec.input.kind));
  AppendI64(&key, spec.input.c);
  AppendI64(&key, spec.input.h);
  AppendI64(&key, spec.input.w);
  AppendI64(&key, spec.input.f);
  AppendI64(&key, spec.input.t);
  AppendI64(&key, spec.num_classes);
  AppendI64(&key, static_cast<int64_t>(spec.layers.size()));
  for (const nn::LayerSpec& ls : spec.layers) {
    AppendI64(&key, static_cast<int64_t>(ls.type));
    AppendI64(&key, ls.in_channels);
    AppendI64(&key, ls.out_channels);
    AppendI64(&key, ls.kernel);
    AppendI64(&key, ls.stride);
    AppendI64(&key, ls.padding);
    AppendI64(&key, ls.bias ? 1 : 0);
    AppendF64(&key, ls.dropout_p);
    AppendI64(&key, ls.mid_channels);
    AppendI64(&key, ls.vocab);
  }
  AppendI64(&key, static_cast<int64_t>(mask.layers.size()));
  for (const LayerMask& lm : mask.layers) {
    AppendI64(&key, lm.prunable ? 1 : 0);
    AppendI64(&key, lm.original_width);
    AppendI64(&key, static_cast<int64_t>(lm.kept.size()));
    for (int64_t idx : lm.kept) AppendI64(&key, idx);
  }
  return key;
}

struct CacheBucket {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const PrunePlan>> plans;
};

struct CacheState {
  CacheBucket buckets[kBuckets];

  CacheBucket& BucketFor(const std::string& key) {
    return buckets[std::hash<std::string>{}(key) % kBuckets];
  }
};

CacheState& State() {
  static CacheState* state = new CacheState();
  return *state;
}

void Count(const char* name) {
  if (!obs::Enabled()) return;
  static obs::Counter* hits = obs::GetCounter("pruning.plan_cache.hits");
  static obs::Counter* misses = obs::GetCounter("pruning.plan_cache.misses");
  static obs::Counter* evictions =
      obs::GetCounter("pruning.plan_cache.evictions");
  if (std::strcmp(name, "hit") == 0) {
    hits->Add(1.0);
  } else if (std::strcmp(name, "miss") == 0) {
    misses->Add(1.0);
  } else {
    evictions->Add(1.0);
  }
}

}  // namespace

bool PlanCacheEnabled() {
  MaybeReadEnv();
  return g_enabled.load(std::memory_order_relaxed);
}

void SetPlanCacheEnabled(bool on) {
  g_env_checked.store(true);  // explicit choice overrides the env
  g_enabled.store(on, std::memory_order_relaxed);
}

StatusOr<std::shared_ptr<const PrunePlan>> CachedPrunePlan(
    const nn::ModelSpec& full_spec, const PruneMask& mask) {
  if (!PlanCacheEnabled()) {
    FEDMP_ASSIGN_OR_RETURN(PrunePlan plan, BuildPrunePlan(full_spec, mask));
    return std::make_shared<const PrunePlan>(std::move(plan));
  }
  const std::string key = Fingerprint(full_spec, mask);
  CacheBucket& bucket = State().BucketFor(key);
  {
    std::lock_guard<std::mutex> lock(bucket.mu);
    auto it = bucket.plans.find(key);
    if (it != bucket.plans.end()) {
      Count("hit");
      return it->second;
    }
  }
  Count("miss");
  // Build outside the lock: BuildPrunePlan is pure, so a concurrent miss at
  // worst builds the same plan twice and the second insert is a no-op.
  FEDMP_ASSIGN_OR_RETURN(PrunePlan plan, BuildPrunePlan(full_spec, mask));
  auto shared = std::make_shared<const PrunePlan>(std::move(plan));
  {
    std::lock_guard<std::mutex> lock(bucket.mu);
    if (bucket.plans.size() >= kMaxEntries / kBuckets) {
      bucket.plans.clear();
      Count("eviction");
    }
    auto [it, inserted] = bucket.plans.emplace(key, shared);
    if (!inserted) return it->second;
  }
  return shared;
}

void ClearPlanCache() {
  CacheState& state = State();
  for (CacheBucket& bucket : state.buckets) {
    std::lock_guard<std::mutex> lock(bucket.mu);
    bucket.plans.clear();
  }
}

size_t PlanCacheSize() {
  CacheState& state = State();
  size_t total = 0;
  for (CacheBucket& bucket : state.buckets) {
    std::lock_guard<std::mutex> lock(bucket.mu);
    total += bucket.plans.size();
  }
  return total;
}

}  // namespace fedmp::pruning
