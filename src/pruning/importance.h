#ifndef FEDMP_PRUNING_IMPORTANCE_H_
#define FEDMP_PRUNING_IMPORTANCE_H_

#include <cstdint>
#include <vector>

#include "nn/model_spec.h"
#include "nn/tensor_ops.h"

namespace fedmp::pruning {

// Number of parameter tensors a layer of this spec contributes to the
// model's canonical parameter list (see each Layer's header).
int64_t ParamTensorCount(const nn::LayerSpec& layer);

// Index of the first parameter tensor of each layer within the model's
// canonical parameter list.
std::vector<int64_t> ParamTensorOffsets(const nn::ModelSpec& spec);

// l1-norm importance scores (§III-B) for the prunable units of layer
// `layer_index`, given the full model weights:
//  - Conv2d: per-filter sum of absolute kernel weights.
//  - Linear: per-neuron sum of absolute incoming weights.
//  - ResidualBlock: per-mid-channel score of the first conv's filters.
//  - Lstm: ISS score per hidden unit (sum over its four gate rows in Wx and
//    Wh plus its recurrent input column in Wh), following [44].
// Returns an empty vector for non-prunable layers.
std::vector<float> UnitImportance(const nn::ModelSpec& spec,
                                  const nn::TensorList& weights,
                                  size_t layer_index);

}  // namespace fedmp::pruning

#endif  // FEDMP_PRUNING_IMPORTANCE_H_
