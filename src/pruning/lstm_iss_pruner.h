#ifndef FEDMP_PRUNING_LSTM_ISS_PRUNER_H_
#define FEDMP_PRUNING_LSTM_ISS_PRUNER_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace fedmp::pruning {

// Intrinsic Sparse Structure pruning for LSTMs (§VI, following Wen et al.
// [44]): a hidden unit h forms one ISS component consisting of its four gate
// rows in Wx [4H, In] and Wh [4H, H] plus its recurrent input column
// Wh[:, h]. Removing the whole component shrinks the hidden size by one
// while keeping the LSTM densely connected.

// The flat row indices {g*H + h : g in 0..3} of unit h's gate rows.
std::vector<int64_t> IssGateRows(int64_t hidden_size, int64_t unit);

// l1 importance score of every hidden unit's ISS component.
std::vector<float> LstmIssScores(const nn::Tensor& wx, const nn::Tensor& wh,
                                 int64_t hidden_size);

// Gate-row gather list for a kept-unit set: for g in 0..3, for h in kept,
// emit g*H + h. Used when slicing Wx/Wh/b along the 4H axis.
std::vector<int64_t> IssRowGather(int64_t hidden_size,
                                  const std::vector<int64_t>& kept);

}  // namespace fedmp::pruning

#endif  // FEDMP_PRUNING_LSTM_ISS_PRUNER_H_
