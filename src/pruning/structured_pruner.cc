#include "pruning/structured_pruner.h"

#include <algorithm>
#include <cstring>

#include "common/math_util.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "pruning/importance.h"
#include "pruning/lstm_iss_pruner.h"
#include "pruning/prune_cache.h"

namespace fedmp::pruning {

using nn::LayerSpec;
using nn::LayerType;
using nn::ModelAnalysis;
using nn::ModelSpec;
using nn::Tensor;
using nn::TensorList;

namespace {

// Resolves an "empty means all" gather list to its effective size.
int64_t GatherSize(const std::vector<int64_t>& gather, int64_t full) {
  return gather.empty() ? full : static_cast<int64_t>(gather.size());
}

// Invokes fn(sub_pos, full_idx, run_len) for each maximal run of consecutive
// indices in `gather` (one run covering [0, n) when the list is empty). Runs
// let Gather/Scatter move whole contiguous blocks with memcpy instead of one
// inner-sized copy per (i0, i1) pair — kept lists are sorted, so unpruned
// and lightly-pruned layers coalesce into a handful of large copies.
template <typename Fn>
void ForEachRun(const std::vector<int64_t>& gather, int64_t n, Fn&& fn) {
  if (gather.empty()) {
    if (n > 0) fn(int64_t{0}, int64_t{0}, n);
    return;
  }
  size_t j = 0;
  int64_t pos = 0;
  while (j < gather.size()) {
    size_t k = j + 1;
    while (k < gather.size() && gather[k] == gather[k - 1] + 1) ++k;
    const int64_t len = static_cast<int64_t>(k - j);
    fn(pos, gather[j], len);
    pos += len;
    j = k;
  }
}

TensorSlice MakeSlice(std::vector<int64_t> full_shape,
                      std::vector<int64_t> dim0, std::vector<int64_t> dim1) {
  TensorSlice s;
  s.full_shape = std::move(full_shape);
  s.dim0 = std::move(dim0);
  s.dim1 = std::move(dim1);
  s.sub_shape = s.full_shape;
  if (!s.sub_shape.empty()) {
    s.sub_shape[0] = GatherSize(s.dim0, s.full_shape[0]);
  }
  if (s.sub_shape.size() >= 2) {
    s.sub_shape[1] = GatherSize(s.dim1, s.full_shape[1]);
  }
  return s;
}

}  // namespace

Tensor GatherSlice(const Tensor& full, const TensorSlice& slice) {
  FEDMP_CHECK(full.shape() == slice.full_shape)
      << "GatherSlice: tensor " << full.ShapeString()
      << " does not match slice full shape";
  const int64_t d0 = slice.full_shape[0];
  const int64_t d1 = slice.full_shape.size() >= 2 ? slice.full_shape[1] : 1;
  int64_t inner = 1;
  for (size_t i = 2; i < slice.full_shape.size(); ++i) {
    inner *= slice.full_shape[i];
  }
  const int64_t full_row = d1 * inner;
  const int64_t sub_row = GatherSize(slice.dim1, d1) * inner;
  Tensor sub(slice.sub_shape);
  const float* pf = full.data();
  float* ps = sub.data();
  ForEachRun(slice.dim0, d0, [&](int64_t s0, int64_t f0, int64_t rows) {
    if (slice.dim1.empty()) {
      // Whole rows are contiguous in both tensors: one copy per dim0 run.
      std::memcpy(ps + s0 * sub_row, pf + f0 * full_row,
                  sizeof(float) * static_cast<size_t>(rows * full_row));
      return;
    }
    for (int64_t r = 0; r < rows; ++r) {
      const float* src = pf + (f0 + r) * full_row;
      float* dst = ps + (s0 + r) * sub_row;
      ForEachRun(slice.dim1, d1, [&](int64_t s1, int64_t f1, int64_t cols) {
        std::memcpy(dst + s1 * inner, src + f1 * inner,
                    sizeof(float) * static_cast<size_t>(cols * inner));
      });
    }
  });
  return sub;
}

void ScatterSliceInto(const Tensor& sub, const TensorSlice& slice,
                      Tensor* full) {
  FEDMP_CHECK(sub.shape() == slice.sub_shape)
      << "ScatterSlice: tensor " << sub.ShapeString()
      << " does not match slice sub shape";
  if (full->shape() != slice.full_shape) {
    *full = Tensor(slice.full_shape);
  } else {
    full->SetZero();  // same starting contents as a fresh tensor
  }
  const int64_t d0 = slice.full_shape[0];
  const int64_t d1 = slice.full_shape.size() >= 2 ? slice.full_shape[1] : 1;
  int64_t inner = 1;
  for (size_t i = 2; i < slice.full_shape.size(); ++i) {
    inner *= slice.full_shape[i];
  }
  const int64_t full_row = d1 * inner;
  const int64_t sub_row = GatherSize(slice.dim1, d1) * inner;
  const float* ps = sub.data();
  float* pf = full->data();
  ForEachRun(slice.dim0, d0, [&](int64_t s0, int64_t f0, int64_t rows) {
    if (slice.dim1.empty()) {
      std::memcpy(pf + f0 * full_row, ps + s0 * sub_row,
                  sizeof(float) * static_cast<size_t>(rows * full_row));
      return;
    }
    for (int64_t r = 0; r < rows; ++r) {
      const float* src = ps + (s0 + r) * sub_row;
      float* dst = pf + (f0 + r) * full_row;
      ForEachRun(slice.dim1, d1, [&](int64_t s1, int64_t f1, int64_t cols) {
        std::memcpy(dst + f1 * inner, src + s1 * inner,
                    sizeof(float) * static_cast<size_t>(cols * inner));
      });
    }
  });
}

Tensor ScatterSlice(const Tensor& sub, const TensorSlice& slice) {
  Tensor full;
  ScatterSliceInto(sub, slice, &full);
  return full;
}

StatusOr<PrunePlan> BuildPrunePlan(const ModelSpec& full_spec,
                                   const PruneMask& mask) {
  FEDMP_RETURN_IF_ERROR(mask.Validate(full_spec));
  ModelAnalysis analysis;
  FEDMP_RETURN_IF_ERROR(full_spec.Analyze(&analysis));

  PrunePlan plan;
  plan.sub_spec.name = full_spec.name + "-sub";
  plan.sub_spec.input = full_spec.input;
  plan.sub_spec.num_classes = full_spec.num_classes;

  // kept_in: surviving input-unit indices flowing into the current layer;
  // empty means "all of in_width".
  std::vector<int64_t> kept_in;
  int64_t in_width = 0;
  switch (full_spec.input.kind) {
    case nn::ShapeKind::kImage: in_width = full_spec.input.c; break;
    case nn::ShapeKind::kFeatures: in_width = full_spec.input.f; break;
    case nn::ShapeKind::kTokens: in_width = 0; break;
    case nn::ShapeKind::kSequence: in_width = full_spec.input.f; break;
  }

  for (size_t i = 0; i < full_spec.layers.size(); ++i) {
    const LayerSpec& ls = full_spec.layers[i];
    const LayerMask& lm = mask.layers[i];
    LayerSpec sub = ls;
    const int64_t in_kept_count = GatherSize(kept_in, in_width);
    switch (ls.type) {
      case LayerType::kConv2d: {
        const std::vector<int64_t>& out_kept =
            lm.prunable ? lm.kept : std::vector<int64_t>{};
        const std::vector<int64_t> dim0 =
            (lm.prunable && lm.kept_count() < ls.out_channels)
                ? lm.kept
                : std::vector<int64_t>{};
        plan.slices.push_back(MakeSlice(
            {ls.out_channels, ls.in_channels, ls.kernel, ls.kernel}, dim0,
            kept_in));
        if (ls.bias) {
          plan.slices.push_back(MakeSlice({ls.out_channels}, dim0, {}));
        }
        sub.in_channels = in_kept_count;
        sub.out_channels = GatherSize(dim0, ls.out_channels);
        kept_in = dim0;
        in_width = ls.out_channels;
        (void)out_kept;
        break;
      }
      case LayerType::kBatchNorm2d: {
        plan.slices.push_back(MakeSlice({ls.out_channels}, kept_in, {}));
        plan.slices.push_back(MakeSlice({ls.out_channels}, kept_in, {}));
        sub.out_channels = in_kept_count;
        break;
      }
      case LayerType::kReLU:
      case LayerType::kTanh:
      case LayerType::kMaxPool2d:
      case LayerType::kDropout:
      case LayerType::kTimeFlatten:
      case LayerType::kGlobalAvgPool:
        break;  // shape-preserving w.r.t. unit indices, no parameters
      case LayerType::kFlatten: {
        // Channel indices expand to per-pixel feature indices.
        const int64_t plane =
            analysis.layers[i].input.h * analysis.layers[i].input.w;
        if (!kept_in.empty()) {
          std::vector<int64_t> expanded;
          expanded.reserve(kept_in.size() * static_cast<size_t>(plane));
          for (int64_t c : kept_in) {
            for (int64_t s = 0; s < plane; ++s) {
              expanded.push_back(c * plane + s);
            }
          }
          kept_in = std::move(expanded);
        }
        in_width *= plane;
        break;
      }
      case LayerType::kLinear: {
        const std::vector<int64_t> dim0 =
            (lm.prunable && lm.kept_count() < ls.out_channels)
                ? lm.kept
                : std::vector<int64_t>{};
        plan.slices.push_back(
            MakeSlice({ls.out_channels, ls.in_channels}, dim0, kept_in));
        if (ls.bias) {
          plan.slices.push_back(MakeSlice({ls.out_channels}, dim0, {}));
        }
        sub.in_channels = in_kept_count;
        sub.out_channels = GatherSize(dim0, ls.out_channels);
        kept_in = dim0;
        in_width = ls.out_channels;
        break;
      }
      case LayerType::kResidualBlock: {
        const std::vector<int64_t> mid =
            (lm.prunable && lm.kept_count() < ls.mid_channels)
                ? lm.kept
                : std::vector<int64_t>{};
        const int64_t c = ls.in_channels, m = ls.mid_channels;
        plan.slices.push_back(MakeSlice({m, c, 3, 3}, mid, kept_in));
        plan.slices.push_back(MakeSlice({m}, mid, {}));  // bn1 gamma
        plan.slices.push_back(MakeSlice({m}, mid, {}));  // bn1 beta
        plan.slices.push_back(MakeSlice({c, m, 3, 3}, kept_in, mid));
        plan.slices.push_back(MakeSlice({c}, kept_in, {}));  // bn2 gamma
        plan.slices.push_back(MakeSlice({c}, kept_in, {}));  // bn2 beta
        sub.in_channels = sub.out_channels = in_kept_count;
        sub.mid_channels = GatherSize(mid, m);
        break;  // kept_in and in_width unchanged: block keeps its interface
      }
      case LayerType::kLstm: {
        const int64_t h = ls.out_channels;
        const bool cut = lm.prunable && lm.kept_count() < h;
        const std::vector<int64_t> kept =
            cut ? lm.kept : std::vector<int64_t>{};
        const std::vector<int64_t> rows =
            cut ? IssRowGather(h, lm.kept) : std::vector<int64_t>{};
        plan.slices.push_back(
            MakeSlice({4 * h, ls.in_channels}, rows, kept_in));
        plan.slices.push_back(MakeSlice({4 * h, h}, rows, kept));
        plan.slices.push_back(MakeSlice({4 * h}, rows, {}));
        sub.in_channels = in_kept_count;
        sub.out_channels = GatherSize(kept, h);
        kept_in = kept;
        in_width = h;
        break;
      }
      case LayerType::kEmbedding: {
        plan.slices.push_back(MakeSlice({ls.vocab, ls.out_channels}, {}, {}));
        kept_in.clear();
        in_width = ls.out_channels;
        break;
      }
    }
    plan.sub_spec.layers.push_back(sub);
  }

  // The sub-spec must itself be a valid model.
  ModelAnalysis sub_analysis;
  Status s = plan.sub_spec.Analyze(&sub_analysis);
  if (!s.ok()) {
    return InternalError("pruned spec malformed: " + s.ToString());
  }
  return plan;
}

ImportanceRanking RankUnits(const ModelSpec& spec, const TensorList& weights) {
  ImportanceRanking ranking;
  ranking.order.resize(spec.layers.size());
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    if (!IsPrunableLayer(spec, i)) continue;
    const std::vector<float> scores = UnitImportance(spec, weights, i);
    const std::vector<size_t> order = ArgsortAscending(scores);
    ranking.order[i].reserve(order.size());
    for (size_t idx : order) {
      ranking.order[i].push_back(static_cast<int64_t>(idx));
    }
  }
  return ranking;
}

PruneMask MaskFromRanking(const ModelSpec& spec,
                          const ImportanceRanking& ranking, double ratio) {
  PruneMask mask = FullMask(spec);
  mask.ratio = ratio;
  if (ratio <= 0.0) return mask;
  FEDMP_CHECK_EQ(ranking.order.size(), spec.layers.size());
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    LayerMask& lm = mask.layers[i];
    if (!lm.prunable) continue;
    const std::vector<int64_t>& order = ranking.order[i];
    FEDMP_CHECK_EQ(static_cast<int64_t>(order.size()), lm.original_width);
    const int64_t keep = KeptCount(lm.original_width, ratio);
    // Keep the `keep` highest-scoring units (§III-B removes the lowest).
    std::vector<int64_t> kept(order.end() - keep, order.end());
    std::sort(kept.begin(), kept.end());
    lm.kept = std::move(kept);
  }
  return mask;
}

PruneMask ComputeL1Mask(const ModelSpec& spec, const TensorList& weights,
                        double ratio) {
  if (ratio <= 0.0) {
    PruneMask mask = FullMask(spec);
    mask.ratio = ratio;
    return mask;
  }
  return MaskFromRanking(spec, RankUnits(spec, weights), ratio);
}

StatusOr<SubModel> ExtractSubModel(const ModelSpec& full_spec,
                                   const TensorList& full_weights,
                                   const PruneMask& mask) {
  FEDMP_ASSIGN_OR_RETURN(std::shared_ptr<const PrunePlan> plan,
                         CachedPrunePlan(full_spec, mask));
  if (full_weights.size() != plan->slices.size()) {
    return InvalidArgumentError(StrFormat(
        "model has %zu parameter tensors, plan expects %zu",
        full_weights.size(), plan->slices.size()));
  }
  SubModel sub;
  sub.spec = plan->sub_spec;
  sub.mask = mask;
  sub.weights.reserve(full_weights.size());
  for (size_t i = 0; i < full_weights.size(); ++i) {
    sub.weights.push_back(GatherSlice(full_weights[i], plan->slices[i]));
  }
  return sub;
}

namespace {

void CountPrune(double ratio) {
  if (!obs::Enabled()) return;
  static obs::Counter* prunes = obs::GetCounter("pruning.prunes");
  static obs::Histogram* ratios = obs::GetHistogram(
      "pruning.ratio", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  prunes->Add(1.0);
  ratios->Observe(ratio);
}

}  // namespace

StatusOr<SubModel> PruneByRatio(const ModelSpec& full_spec,
                                const TensorList& full_weights,
                                double ratio) {
  OBS_SPAN("prune", {{"ratio", ratio}});
  CountPrune(ratio);
  PruneMask mask = ComputeL1Mask(full_spec, full_weights, ratio);
  return ExtractSubModel(full_spec, full_weights, mask);
}

StatusOr<SubModel> PruneByRatioRanked(const ModelSpec& full_spec,
                                      const TensorList& full_weights,
                                      const ImportanceRanking& ranking,
                                      double ratio) {
  OBS_SPAN("prune", {{"ratio", ratio}});
  CountPrune(ratio);
  PruneMask mask = MaskFromRanking(full_spec, ranking, ratio);
  return ExtractSubModel(full_spec, full_weights, mask);
}

}  // namespace fedmp::pruning
