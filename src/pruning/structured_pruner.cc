#include "pruning/structured_pruner.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "pruning/importance.h"
#include "pruning/lstm_iss_pruner.h"

namespace fedmp::pruning {

using nn::LayerSpec;
using nn::LayerType;
using nn::ModelAnalysis;
using nn::ModelSpec;
using nn::Tensor;
using nn::TensorList;

namespace {

// Resolves an "empty means all" gather list to its effective size.
int64_t GatherSize(const std::vector<int64_t>& gather, int64_t full) {
  return gather.empty() ? full : static_cast<int64_t>(gather.size());
}

// The index list [0, n) when `gather` is empty, else `gather` itself.
std::vector<int64_t> Materialize(const std::vector<int64_t>& gather,
                                 int64_t n) {
  if (!gather.empty()) return gather;
  std::vector<int64_t> all(static_cast<size_t>(n));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
  return all;
}

TensorSlice MakeSlice(std::vector<int64_t> full_shape,
                      std::vector<int64_t> dim0, std::vector<int64_t> dim1) {
  TensorSlice s;
  s.full_shape = std::move(full_shape);
  s.dim0 = std::move(dim0);
  s.dim1 = std::move(dim1);
  s.sub_shape = s.full_shape;
  if (!s.sub_shape.empty()) {
    s.sub_shape[0] = GatherSize(s.dim0, s.full_shape[0]);
  }
  if (s.sub_shape.size() >= 2) {
    s.sub_shape[1] = GatherSize(s.dim1, s.full_shape[1]);
  }
  return s;
}

}  // namespace

Tensor GatherSlice(const Tensor& full, const TensorSlice& slice) {
  FEDMP_CHECK(full.shape() == slice.full_shape)
      << "GatherSlice: tensor " << full.ShapeString()
      << " does not match slice full shape";
  const int64_t d0 = slice.full_shape[0];
  const int64_t d1 = slice.full_shape.size() >= 2 ? slice.full_shape[1] : 1;
  int64_t inner = 1;
  for (size_t i = 2; i < slice.full_shape.size(); ++i) {
    inner *= slice.full_shape[i];
  }
  const std::vector<int64_t> g0 = Materialize(slice.dim0, d0);
  const std::vector<int64_t> g1 = Materialize(slice.dim1, d1);
  Tensor sub(slice.sub_shape);
  const float* pf = full.data();
  float* ps = sub.data();
  for (size_t i0 = 0; i0 < g0.size(); ++i0) {
    for (size_t i1 = 0; i1 < g1.size(); ++i1) {
      const float* src = pf + (g0[i0] * d1 + g1[i1]) * inner;
      float* dst =
          ps + (static_cast<int64_t>(i0) * static_cast<int64_t>(g1.size()) +
                static_cast<int64_t>(i1)) *
                   inner;
      std::copy(src, src + inner, dst);
    }
  }
  return sub;
}

Tensor ScatterSlice(const Tensor& sub, const TensorSlice& slice) {
  FEDMP_CHECK(sub.shape() == slice.sub_shape)
      << "ScatterSlice: tensor " << sub.ShapeString()
      << " does not match slice sub shape";
  const int64_t d0 = slice.full_shape[0];
  const int64_t d1 = slice.full_shape.size() >= 2 ? slice.full_shape[1] : 1;
  int64_t inner = 1;
  for (size_t i = 2; i < slice.full_shape.size(); ++i) {
    inner *= slice.full_shape[i];
  }
  const std::vector<int64_t> g0 = Materialize(slice.dim0, d0);
  const std::vector<int64_t> g1 = Materialize(slice.dim1, d1);
  Tensor full(slice.full_shape);
  const float* ps = sub.data();
  float* pf = full.data();
  for (size_t i0 = 0; i0 < g0.size(); ++i0) {
    for (size_t i1 = 0; i1 < g1.size(); ++i1) {
      const float* src =
          ps + (static_cast<int64_t>(i0) * static_cast<int64_t>(g1.size()) +
                static_cast<int64_t>(i1)) *
                   inner;
      float* dst = pf + (g0[i0] * d1 + g1[i1]) * inner;
      std::copy(src, src + inner, dst);
    }
  }
  return full;
}

StatusOr<PrunePlan> BuildPrunePlan(const ModelSpec& full_spec,
                                   const PruneMask& mask) {
  FEDMP_RETURN_IF_ERROR(mask.Validate(full_spec));
  ModelAnalysis analysis;
  FEDMP_RETURN_IF_ERROR(full_spec.Analyze(&analysis));

  PrunePlan plan;
  plan.sub_spec.name = full_spec.name + "-sub";
  plan.sub_spec.input = full_spec.input;
  plan.sub_spec.num_classes = full_spec.num_classes;

  // kept_in: surviving input-unit indices flowing into the current layer;
  // empty means "all of in_width".
  std::vector<int64_t> kept_in;
  int64_t in_width = 0;
  switch (full_spec.input.kind) {
    case nn::ShapeKind::kImage: in_width = full_spec.input.c; break;
    case nn::ShapeKind::kFeatures: in_width = full_spec.input.f; break;
    case nn::ShapeKind::kTokens: in_width = 0; break;
    case nn::ShapeKind::kSequence: in_width = full_spec.input.f; break;
  }

  for (size_t i = 0; i < full_spec.layers.size(); ++i) {
    const LayerSpec& ls = full_spec.layers[i];
    const LayerMask& lm = mask.layers[i];
    LayerSpec sub = ls;
    const int64_t in_kept_count = GatherSize(kept_in, in_width);
    switch (ls.type) {
      case LayerType::kConv2d: {
        const std::vector<int64_t>& out_kept =
            lm.prunable ? lm.kept : std::vector<int64_t>{};
        const std::vector<int64_t> dim0 =
            (lm.prunable && lm.kept_count() < ls.out_channels)
                ? lm.kept
                : std::vector<int64_t>{};
        plan.slices.push_back(MakeSlice(
            {ls.out_channels, ls.in_channels, ls.kernel, ls.kernel}, dim0,
            kept_in));
        if (ls.bias) {
          plan.slices.push_back(MakeSlice({ls.out_channels}, dim0, {}));
        }
        sub.in_channels = in_kept_count;
        sub.out_channels = GatherSize(dim0, ls.out_channels);
        kept_in = dim0;
        in_width = ls.out_channels;
        (void)out_kept;
        break;
      }
      case LayerType::kBatchNorm2d: {
        plan.slices.push_back(MakeSlice({ls.out_channels}, kept_in, {}));
        plan.slices.push_back(MakeSlice({ls.out_channels}, kept_in, {}));
        sub.out_channels = in_kept_count;
        break;
      }
      case LayerType::kReLU:
      case LayerType::kTanh:
      case LayerType::kMaxPool2d:
      case LayerType::kDropout:
      case LayerType::kTimeFlatten:
      case LayerType::kGlobalAvgPool:
        break;  // shape-preserving w.r.t. unit indices, no parameters
      case LayerType::kFlatten: {
        // Channel indices expand to per-pixel feature indices.
        const int64_t plane =
            analysis.layers[i].input.h * analysis.layers[i].input.w;
        if (!kept_in.empty()) {
          std::vector<int64_t> expanded;
          expanded.reserve(kept_in.size() * static_cast<size_t>(plane));
          for (int64_t c : kept_in) {
            for (int64_t s = 0; s < plane; ++s) {
              expanded.push_back(c * plane + s);
            }
          }
          kept_in = std::move(expanded);
        }
        in_width *= plane;
        break;
      }
      case LayerType::kLinear: {
        const std::vector<int64_t> dim0 =
            (lm.prunable && lm.kept_count() < ls.out_channels)
                ? lm.kept
                : std::vector<int64_t>{};
        plan.slices.push_back(
            MakeSlice({ls.out_channels, ls.in_channels}, dim0, kept_in));
        if (ls.bias) {
          plan.slices.push_back(MakeSlice({ls.out_channels}, dim0, {}));
        }
        sub.in_channels = in_kept_count;
        sub.out_channels = GatherSize(dim0, ls.out_channels);
        kept_in = dim0;
        in_width = ls.out_channels;
        break;
      }
      case LayerType::kResidualBlock: {
        const std::vector<int64_t> mid =
            (lm.prunable && lm.kept_count() < ls.mid_channels)
                ? lm.kept
                : std::vector<int64_t>{};
        const int64_t c = ls.in_channels, m = ls.mid_channels;
        plan.slices.push_back(MakeSlice({m, c, 3, 3}, mid, kept_in));
        plan.slices.push_back(MakeSlice({m}, mid, {}));  // bn1 gamma
        plan.slices.push_back(MakeSlice({m}, mid, {}));  // bn1 beta
        plan.slices.push_back(MakeSlice({c, m, 3, 3}, kept_in, mid));
        plan.slices.push_back(MakeSlice({c}, kept_in, {}));  // bn2 gamma
        plan.slices.push_back(MakeSlice({c}, kept_in, {}));  // bn2 beta
        sub.in_channels = sub.out_channels = in_kept_count;
        sub.mid_channels = GatherSize(mid, m);
        break;  // kept_in and in_width unchanged: block keeps its interface
      }
      case LayerType::kLstm: {
        const int64_t h = ls.out_channels;
        const bool cut = lm.prunable && lm.kept_count() < h;
        const std::vector<int64_t> kept =
            cut ? lm.kept : std::vector<int64_t>{};
        const std::vector<int64_t> rows =
            cut ? IssRowGather(h, lm.kept) : std::vector<int64_t>{};
        plan.slices.push_back(
            MakeSlice({4 * h, ls.in_channels}, rows, kept_in));
        plan.slices.push_back(MakeSlice({4 * h, h}, rows, kept));
        plan.slices.push_back(MakeSlice({4 * h}, rows, {}));
        sub.in_channels = in_kept_count;
        sub.out_channels = GatherSize(kept, h);
        kept_in = kept;
        in_width = h;
        break;
      }
      case LayerType::kEmbedding: {
        plan.slices.push_back(MakeSlice({ls.vocab, ls.out_channels}, {}, {}));
        kept_in.clear();
        in_width = ls.out_channels;
        break;
      }
    }
    plan.sub_spec.layers.push_back(sub);
  }

  // The sub-spec must itself be a valid model.
  ModelAnalysis sub_analysis;
  Status s = plan.sub_spec.Analyze(&sub_analysis);
  if (!s.ok()) {
    return InternalError("pruned spec malformed: " + s.ToString());
  }
  return plan;
}

PruneMask ComputeL1Mask(const ModelSpec& spec, const TensorList& weights,
                        double ratio) {
  PruneMask mask = FullMask(spec);
  mask.ratio = ratio;
  if (ratio <= 0.0) return mask;
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    LayerMask& lm = mask.layers[i];
    if (!lm.prunable) continue;
    const std::vector<float> scores = UnitImportance(spec, weights, i);
    FEDMP_CHECK_EQ(static_cast<int64_t>(scores.size()), lm.original_width);
    const int64_t keep = KeptCount(lm.original_width, ratio);
    // Keep the `keep` highest-scoring units (§III-B removes the lowest).
    std::vector<size_t> order = ArgsortAscending(scores);
    std::vector<int64_t> kept;
    kept.reserve(static_cast<size_t>(keep));
    for (size_t j = order.size() - static_cast<size_t>(keep);
         j < order.size(); ++j) {
      kept.push_back(static_cast<int64_t>(order[j]));
    }
    std::sort(kept.begin(), kept.end());
    lm.kept = std::move(kept);
  }
  return mask;
}

StatusOr<SubModel> ExtractSubModel(const ModelSpec& full_spec,
                                   const TensorList& full_weights,
                                   const PruneMask& mask) {
  FEDMP_ASSIGN_OR_RETURN(PrunePlan plan, BuildPrunePlan(full_spec, mask));
  if (full_weights.size() != plan.slices.size()) {
    return InvalidArgumentError(StrFormat(
        "model has %zu parameter tensors, plan expects %zu",
        full_weights.size(), plan.slices.size()));
  }
  SubModel sub;
  sub.spec = plan.sub_spec;
  sub.mask = mask;
  sub.weights.reserve(full_weights.size());
  for (size_t i = 0; i < full_weights.size(); ++i) {
    sub.weights.push_back(GatherSlice(full_weights[i], plan.slices[i]));
  }
  return sub;
}

StatusOr<SubModel> PruneByRatio(const ModelSpec& full_spec,
                                const TensorList& full_weights,
                                double ratio) {
  OBS_SPAN("prune", {{"ratio", ratio}});
  if (obs::Enabled()) {
    static obs::Counter* prunes = obs::GetCounter("pruning.prunes");
    static obs::Histogram* ratios = obs::GetHistogram(
        "pruning.ratio", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
    prunes->Add(1.0);
    ratios->Observe(ratio);
  }
  PruneMask mask = ComputeL1Mask(full_spec, full_weights, ratio);
  return ExtractSubModel(full_spec, full_weights, mask);
}

}  // namespace fedmp::pruning
