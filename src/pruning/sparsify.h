#ifndef FEDMP_PRUNING_SPARSIFY_H_
#define FEDMP_PRUNING_SPARSIFY_H_

#include "common/statusor.h"
#include "pruning/structured_pruner.h"

namespace fedmp::pruning {

// The "sparse model" of §III-C: same shapes as the global model with the
// logically-pruned coordinates set to zero. Implemented independently of
// Gather/Scatter (coordinate membership test) so it doubles as a test oracle
// for the recovery path.
StatusOr<nn::TensorList> Sparsify(const nn::ModelSpec& full_spec,
                                  const nn::TensorList& full_weights,
                                  const PruneMask& mask);

// The "residual model" of §III-C: global minus sparse. Everything the
// sub-model did NOT carry; added back at aggregation so pruned units keep
// their weights across rounds.
StatusOr<nn::TensorList> ResidualModel(const nn::ModelSpec& full_spec,
                                       const nn::TensorList& full_weights,
                                       const PruneMask& mask);

// ResidualModel into caller-owned storage, built directly (copy the full
// weights, zero the kept cells) instead of via Sparsify + SubLists. For the
// finite weights the trainers guarantee (AcceptPayload screens non-finite
// payloads), w - w == +0.0f exactly, so this is bit-identical to
// ResidualModel while skipping one full-model temporary and subtraction.
Status ResidualModelInto(const nn::ModelSpec& full_spec,
                         const nn::TensorList& full_weights,
                         const PruneMask& mask, nn::TensorList* out);

}  // namespace fedmp::pruning

#endif  // FEDMP_PRUNING_SPARSIFY_H_
