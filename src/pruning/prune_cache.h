#ifndef FEDMP_PRUNING_PRUNE_CACHE_H_
#define FEDMP_PRUNING_PRUNE_CACHE_H_

#include <memory>

#include "common/statusor.h"
#include "pruning/structured_pruner.h"

// Process-wide memoization of BuildPrunePlan. A PrunePlan is a pure function
// of (spec, mask), and during one FL round the same plan is derived on the
// send path (ExtractSubModel), the receive path (RecoverToFull) and the R2SP
// residual path (Sparsify) — once per worker each. The cache keys plans by a
// canonical byte fingerprint of the spec and the mask's kept lists, so all
// of those call sites share a single derivation.
//
// Shared plans are immutable (shared_ptr<const PrunePlan>), so readers on
// different pool lanes never observe a plan under construction; a concurrent
// miss simply builds twice and keeps one copy. The cache is bounded: past
// kMaxEntries it is wholesale-cleared (eviction is counted, correctness is
// unaffected — a miss just rebuilds).
namespace fedmp::pruning {

// Global switch. Defaults to on; FEDMP_PLAN_CACHE=0 or
// FEDMP_HOTPATH_BASELINE=1 in the environment disables it at first use
// (tests and benches use SetPlanCacheEnabled).
bool PlanCacheEnabled();
void SetPlanCacheEnabled(bool on);

// BuildPrunePlan through the memo table. With the cache disabled this is
// exactly BuildPrunePlan (wrapped in a fresh shared_ptr). Errors are never
// cached.
StatusOr<std::shared_ptr<const PrunePlan>> CachedPrunePlan(
    const nn::ModelSpec& full_spec, const PruneMask& mask);

// Drops every cached plan. Tests only.
void ClearPlanCache();

// Number of plans currently cached. Tests only.
size_t PlanCacheSize();

}  // namespace fedmp::pruning

#endif  // FEDMP_PRUNING_PRUNE_CACHE_H_
