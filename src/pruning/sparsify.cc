#include "pruning/sparsify.h"

#include "nn/tensor_ops.h"
#include "pruning/prune_cache.h"

namespace fedmp::pruning {

namespace {

// keep[i] == 1 iff index i survives; empty gather list means all survive.
std::vector<char> KeepBitmap(const std::vector<int64_t>& gather, int64_t n) {
  std::vector<char> keep(static_cast<size_t>(n), gather.empty() ? 1 : 0);
  for (int64_t idx : gather) keep[static_cast<size_t>(idx)] = 1;
  return keep;
}

// Copies `w` into *out (reusing its storage when shapes match) and zeroes
// either the kept cells (`zero_kept`, residual construction) or the pruned
// cells (sparsify).
void CopyWithZeroedCells(const nn::Tensor& w, const TensorSlice& slice,
                         bool zero_kept, nn::Tensor* out) {
  *out = w;  // copy-assign reuses the destination's capacity
  const int64_t d0 = slice.full_shape[0];
  const int64_t d1 = slice.full_shape.size() >= 2 ? slice.full_shape[1] : 1;
  int64_t inner = 1;
  for (size_t k = 2; k < slice.full_shape.size(); ++k) {
    inner *= slice.full_shape[k];
  }
  const std::vector<char> keep0 = KeepBitmap(slice.dim0, d0);
  const std::vector<char> keep1 = KeepBitmap(slice.dim1, d1);
  float* p = out->data();
  for (int64_t i0 = 0; i0 < d0; ++i0) {
    for (int64_t i1 = 0; i1 < d1; ++i1) {
      const bool kept = keep0[static_cast<size_t>(i0)] &&
                        keep1[static_cast<size_t>(i1)];
      if (kept != zero_kept) continue;
      float* cell = p + (i0 * d1 + i1) * inner;
      for (int64_t k = 0; k < inner; ++k) cell[k] = 0.0f;
    }
  }
}

}  // namespace

StatusOr<nn::TensorList> Sparsify(const nn::ModelSpec& full_spec,
                                  const nn::TensorList& full_weights,
                                  const PruneMask& mask) {
  FEDMP_ASSIGN_OR_RETURN(std::shared_ptr<const PrunePlan> plan,
                         CachedPrunePlan(full_spec, mask));
  if (full_weights.size() != plan->slices.size()) {
    return InvalidArgumentError("weight count does not match plan");
  }
  nn::TensorList out;
  out.reserve(full_weights.size());
  for (size_t i = 0; i < full_weights.size(); ++i) {
    if (full_weights[i].shape() != plan->slices[i].full_shape) {
      return InvalidArgumentError("tensor shape does not match plan");
    }
    nn::Tensor sparse;
    CopyWithZeroedCells(full_weights[i], plan->slices[i],
                        /*zero_kept=*/false, &sparse);
    out.push_back(std::move(sparse));
  }
  return out;
}

Status ResidualModelInto(const nn::ModelSpec& full_spec,
                         const nn::TensorList& full_weights,
                         const PruneMask& mask, nn::TensorList* out) {
  FEDMP_ASSIGN_OR_RETURN(std::shared_ptr<const PrunePlan> plan,
                         CachedPrunePlan(full_spec, mask));
  if (full_weights.size() != plan->slices.size()) {
    return InvalidArgumentError("weight count does not match plan");
  }
  out->resize(full_weights.size());
  for (size_t i = 0; i < full_weights.size(); ++i) {
    if (full_weights[i].shape() != plan->slices[i].full_shape) {
      return InvalidArgumentError("tensor shape does not match plan");
    }
    CopyWithZeroedCells(full_weights[i], plan->slices[i], /*zero_kept=*/true,
                        &(*out)[i]);
  }
  return Status::Ok();
}

StatusOr<nn::TensorList> ResidualModel(const nn::ModelSpec& full_spec,
                                       const nn::TensorList& full_weights,
                                       const PruneMask& mask) {
  nn::TensorList out;
  FEDMP_RETURN_IF_ERROR(
      ResidualModelInto(full_spec, full_weights, mask, &out));
  return out;
}

}  // namespace fedmp::pruning
