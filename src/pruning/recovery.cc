#include "pruning/recovery.h"

#include "common/string_util.h"

namespace fedmp::pruning {

StatusOr<nn::TensorList> RecoverToFull(const nn::ModelSpec& full_spec,
                                       const nn::TensorList& sub_weights,
                                       const PruneMask& mask) {
  FEDMP_ASSIGN_OR_RETURN(PrunePlan plan, BuildPrunePlan(full_spec, mask));
  if (sub_weights.size() != plan.slices.size()) {
    return InvalidArgumentError(StrFormat(
        "sub-model has %zu parameter tensors, plan expects %zu",
        sub_weights.size(), plan.slices.size()));
  }
  nn::TensorList full;
  full.reserve(sub_weights.size());
  for (size_t i = 0; i < sub_weights.size(); ++i) {
    if (sub_weights[i].shape() != plan.slices[i].sub_shape) {
      return InvalidArgumentError(StrFormat(
          "sub tensor %zu shape %s does not match plan", i,
          sub_weights[i].ShapeString().c_str()));
    }
    full.push_back(ScatterSlice(sub_weights[i], plan.slices[i]));
  }
  return full;
}

}  // namespace fedmp::pruning
