#include "pruning/recovery.h"

#include "common/string_util.h"
#include "pruning/prune_cache.h"

namespace fedmp::pruning {

Status RecoverToFullInto(const nn::ModelSpec& full_spec,
                         const nn::TensorList& sub_weights,
                         const PruneMask& mask, nn::TensorList* full) {
  FEDMP_ASSIGN_OR_RETURN(std::shared_ptr<const PrunePlan> plan,
                         CachedPrunePlan(full_spec, mask));
  if (sub_weights.size() != plan->slices.size()) {
    return InvalidArgumentError(StrFormat(
        "sub-model has %zu parameter tensors, plan expects %zu",
        sub_weights.size(), plan->slices.size()));
  }
  full->resize(sub_weights.size());
  for (size_t i = 0; i < sub_weights.size(); ++i) {
    if (sub_weights[i].shape() != plan->slices[i].sub_shape) {
      return InvalidArgumentError(StrFormat(
          "sub tensor %zu shape %s does not match plan", i,
          sub_weights[i].ShapeString().c_str()));
    }
    ScatterSliceInto(sub_weights[i], plan->slices[i], &(*full)[i]);
  }
  return Status::Ok();
}

StatusOr<nn::TensorList> RecoverToFull(const nn::ModelSpec& full_spec,
                                       const nn::TensorList& sub_weights,
                                       const PruneMask& mask) {
  nn::TensorList full;
  FEDMP_RETURN_IF_ERROR(
      RecoverToFullInto(full_spec, sub_weights, mask, &full));
  return full;
}

}  // namespace fedmp::pruning
