#ifndef FEDMP_PRUNING_STRUCTURED_PRUNER_H_
#define FEDMP_PRUNING_STRUCTURED_PRUNER_H_

#include <vector>

#include "common/statusor.h"
#include "nn/tensor_ops.h"
#include "pruning/mask.h"

namespace fedmp::pruning {

// Gather lists describing how one sub-model parameter tensor is cut out of
// its full-model counterpart. An empty list means "all indices along that
// axis". dim0 is the output-unit axis, dim1 the input-unit axis; trailing
// axes (conv kernels) are copied whole.
struct TensorSlice {
  std::vector<int64_t> dim0;
  std::vector<int64_t> dim1;
  std::vector<int64_t> full_shape;
  std::vector<int64_t> sub_shape;
};

// The complete, invertible description of one pruning operation: the
// sub-model architecture plus per-parameter slices. Built purely from
// (full spec, mask), so the PS can re-derive it whenever a worker's
// sub-model comes back for recovery.
struct PrunePlan {
  nn::ModelSpec sub_spec;
  std::vector<TensorSlice> slices;  // canonical parameter-tensor order
};

StatusOr<PrunePlan> BuildPrunePlan(const nn::ModelSpec& full_spec,
                                   const PruneMask& mask);

// Per-layer unit-importance order, ascending by l1 score (the exact
// ArgsortAscending ComputeL1Mask performs). The ranking depends only on the
// global weights — not on any worker's ratio — so the PS computes it once
// per round and derives every worker's mask from it; ArgsortAscending is
// stable, so ranked-derived masks are bit-identical to per-worker ones.
struct ImportanceRanking {
  std::vector<std::vector<int64_t>> order;  // empty for non-prunable layers
};

ImportanceRanking RankUnits(const nn::ModelSpec& spec,
                            const nn::TensorList& weights);

// The mask ComputeL1Mask(spec, weights, ratio) would produce, derived from a
// precomputed ranking instead of re-scoring the weights.
PruneMask MaskFromRanking(const nn::ModelSpec& spec,
                          const ImportanceRanking& ranking, double ratio);

// §III-B: per-layer l1 ranking with the same ratio in every layer; the
// lowest-scoring units are dropped, keeping max(1, round(width*(1-ratio))).
PruneMask ComputeL1Mask(const nn::ModelSpec& spec,
                        const nn::TensorList& weights, double ratio);

// A pruned model ready to ship to a worker.
struct SubModel {
  nn::ModelSpec spec;
  nn::TensorList weights;
  PruneMask mask;
};

// Cuts the sub-model weights out of the full model per `mask`.
StatusOr<SubModel> ExtractSubModel(const nn::ModelSpec& full_spec,
                                   const nn::TensorList& full_weights,
                                   const PruneMask& mask);

// ComputeL1Mask + ExtractSubModel in one step ("distributed model pruning"
// as the PS performs it each round).
StatusOr<SubModel> PruneByRatio(const nn::ModelSpec& full_spec,
                                const nn::TensorList& full_weights,
                                double ratio);

// PruneByRatio from a round-scoped ranking: MaskFromRanking +
// ExtractSubModel. Bit-identical to PruneByRatio when `ranking` was computed
// from `full_weights`.
StatusOr<SubModel> PruneByRatioRanked(const nn::ModelSpec& full_spec,
                                      const nn::TensorList& full_weights,
                                      const ImportanceRanking& ranking,
                                      double ratio);

// Low-level slice ops (exposed for recovery/sparsify and tests).
nn::Tensor GatherSlice(const nn::Tensor& full, const TensorSlice& slice);
nn::Tensor ScatterSlice(const nn::Tensor& sub, const TensorSlice& slice);
// ScatterSlice into caller-owned storage: reuses *full's buffer when its
// shape already matches (zeroing it first), so aggregation loops recover
// worker after worker without reallocating full-model tensors.
void ScatterSliceInto(const nn::Tensor& sub, const TensorSlice& slice,
                      nn::Tensor* full);

}  // namespace fedmp::pruning

#endif  // FEDMP_PRUNING_STRUCTURED_PRUNER_H_
