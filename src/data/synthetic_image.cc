#include "data/synthetic_image.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace fedmp::data {

namespace {

// Bilinearly upsamples a coarse [grid x grid] pattern to [h x w].
void UpsampleBilinear(const std::vector<float>& coarse, int64_t grid,
                      int64_t h, int64_t w, float* out) {
  for (int64_t y = 0; y < h; ++y) {
    const double gy = (static_cast<double>(y) / std::max<int64_t>(h - 1, 1)) *
                      (grid - 1);
    const int64_t y0 = static_cast<int64_t>(gy);
    const int64_t y1 = std::min(y0 + 1, grid - 1);
    const double fy = gy - y0;
    for (int64_t x = 0; x < w; ++x) {
      const double gx =
          (static_cast<double>(x) / std::max<int64_t>(w - 1, 1)) * (grid - 1);
      const int64_t x0 = static_cast<int64_t>(gx);
      const int64_t x1 = std::min(x0 + 1, grid - 1);
      const double fx = gx - x0;
      const double v = (1 - fy) * ((1 - fx) * coarse[y0 * grid + x0] +
                                   fx * coarse[y0 * grid + x1]) +
                       fy * ((1 - fx) * coarse[y1 * grid + x0] +
                             fx * coarse[y1 * grid + x1]);
      out[y * w + x] = static_cast<float>(v);
    }
  }
}

// One sample: shifted prototype + pixel noise.
std::vector<float> MakeSample(const std::vector<float>& prototype,
                              const SyntheticImageConfig& cfg, Rng& rng) {
  const int64_t plane = cfg.height * cfg.width;
  std::vector<float> sample(
      static_cast<size_t>(cfg.channels * plane), 0.0f);
  const int64_t sy = cfg.max_shift > 0
                         ? static_cast<int64_t>(rng.NextIndex(
                               static_cast<uint64_t>(2 * cfg.max_shift + 1))) -
                               cfg.max_shift
                         : 0;
  const int64_t sx = cfg.max_shift > 0
                         ? static_cast<int64_t>(rng.NextIndex(
                               static_cast<uint64_t>(2 * cfg.max_shift + 1))) -
                               cfg.max_shift
                         : 0;
  for (int64_t c = 0; c < cfg.channels; ++c) {
    const float* proto = prototype.data() + c * plane;
    float* dst = sample.data() + c * plane;
    for (int64_t y = 0; y < cfg.height; ++y) {
      const int64_t py = y + sy;
      for (int64_t x = 0; x < cfg.width; ++x) {
        const int64_t px = x + sx;
        float v = 0.0f;
        if (py >= 0 && py < cfg.height && px >= 0 && px < cfg.width) {
          v = proto[py * cfg.width + px];
        }
        v += static_cast<float>(rng.Gaussian(0.0, cfg.noise_stddev));
        dst[y * cfg.width + x] = v;
      }
    }
  }
  return sample;
}

}  // namespace

TrainTestSplit GenerateSyntheticImages(const SyntheticImageConfig& cfg) {
  FEDMP_CHECK_GT(cfg.num_classes, 0);
  FEDMP_CHECK_GT(cfg.channels, 0);
  FEDMP_CHECK_GE(cfg.prototype_grid, 2);
  Rng rng(cfg.seed);

  // Deterministic per-class prototypes.
  const int64_t plane = cfg.height * cfg.width;
  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(static_cast<size_t>(cfg.num_classes));
  for (int64_t k = 0; k < cfg.num_classes; ++k) {
    std::vector<float> proto(static_cast<size_t>(cfg.channels * plane));
    for (int64_t c = 0; c < cfg.channels; ++c) {
      std::vector<float> coarse(
          static_cast<size_t>(cfg.prototype_grid * cfg.prototype_grid));
      for (auto& v : coarse) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
      UpsampleBilinear(coarse, cfg.prototype_grid, cfg.height, cfg.width,
                       proto.data() + c * plane);
    }
    prototypes.push_back(std::move(proto));
  }

  TrainTestSplit split;
  for (Dataset* ds : {&split.train, &split.test}) {
    ds->example_shape = {cfg.channels, cfg.height, cfg.width};
    ds->num_classes = cfg.num_classes;
  }
  for (int64_t k = 0; k < cfg.num_classes; ++k) {
    for (int64_t i = 0; i < cfg.train_per_class; ++i) {
      split.train.examples.push_back(
          MakeSample(prototypes[static_cast<size_t>(k)], cfg, rng));
      split.train.labels.push_back(k);
    }
    for (int64_t i = 0; i < cfg.test_per_class; ++i) {
      split.test.examples.push_back(
          MakeSample(prototypes[static_cast<size_t>(k)], cfg, rng));
      split.test.labels.push_back(k);
    }
  }
  // Shuffle so sequential mini-batches are class-mixed.
  for (Dataset* ds : {&split.train, &split.test}) {
    std::vector<int64_t> order(static_cast<size_t>(ds->size()));
    for (size_t i = 0; i < order.size(); ++i) order[i] = (int64_t)i;
    rng.Shuffle(order);
    *ds = ds->Subset(order);
  }
  return split;
}

}  // namespace fedmp::data
