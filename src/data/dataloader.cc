#include "data/dataloader.h"

#include <algorithm>

#include "common/logging.h"

namespace fedmp::data {

void Dataset::Gather(const std::vector<int64_t>& indices, nn::Tensor* batch,
                     std::vector<int64_t>* batch_labels) const {
  const int64_t b = static_cast<int64_t>(indices.size());
  const int64_t n = ExampleNumel();
  std::vector<int64_t> shape;
  shape.push_back(b);
  for (int64_t d : example_shape) shape.push_back(d);
  *batch = nn::Tensor(shape);
  batch_labels->resize(static_cast<size_t>(b));
  float* dst = batch->data();
  for (int64_t i = 0; i < b; ++i) {
    const int64_t idx = indices[static_cast<size_t>(i)];
    FEDMP_CHECK(idx >= 0 && idx < size()) << "example index out of range";
    const auto& ex = examples[static_cast<size_t>(idx)];
    FEDMP_CHECK_EQ(static_cast<int64_t>(ex.size()), n);
    std::copy(ex.begin(), ex.end(), dst + i * n);
    (*batch_labels)[static_cast<size_t>(i)] =
        labels[static_cast<size_t>(idx)];
  }
}

Dataset Dataset::Subset(const std::vector<int64_t>& indices) const {
  Dataset out;
  out.example_shape = example_shape;
  out.num_classes = num_classes;
  out.examples.reserve(indices.size());
  out.labels.reserve(indices.size());
  for (int64_t idx : indices) {
    FEDMP_CHECK(idx >= 0 && idx < size()) << "subset index out of range";
    out.examples.push_back(examples[static_cast<size_t>(idx)]);
    out.labels.push_back(labels[static_cast<size_t>(idx)]);
  }
  return out;
}

DataLoader::DataLoader(const Dataset* dataset, std::vector<int64_t> indices,
                       int64_t batch_size, bool shuffle, uint64_t seed)
    : dataset_(dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  FEDMP_CHECK(dataset != nullptr);
  FEDMP_CHECK_GT(batch_size, 0);
  FEDMP_CHECK(!indices_.empty()) << "DataLoader over an empty shard";
  if (shuffle_) rng_.Shuffle(indices_);
}

DataLoader::DataLoader(const Dataset* dataset, int64_t batch_size,
                       bool shuffle, uint64_t seed)
    : DataLoader(dataset, [&] {
        std::vector<int64_t> all(
            static_cast<size_t>(dataset ? dataset->size() : 0));
        for (size_t i = 0; i < all.size(); ++i) all[i] = (int64_t)i;
        return all;
      }(), batch_size, shuffle, seed) {}

void DataLoader::NextBatch(nn::Tensor* batch, std::vector<int64_t>* labels) {
  const int64_t remaining = size() - cursor_;
  const int64_t take = std::min(batch_size_, remaining);
  std::vector<int64_t> chosen(
      indices_.begin() + cursor_, indices_.begin() + cursor_ + take);
  dataset_->Gather(chosen, batch, labels);
  cursor_ += take;
  if (cursor_ >= size()) {
    cursor_ = 0;
    ++epochs_completed_;
    if (shuffle_) rng_.Shuffle(indices_);
  }
}

}  // namespace fedmp::data
