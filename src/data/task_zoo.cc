#include "data/task_zoo.h"

#include <algorithm>

#include "common/logging.h"

namespace fedmp::data {

namespace {

using nn::LayerSpec;
using nn::ModelSpec;
using nn::ShapeKind;

ModelSpec CnnSpec(bool tiny) {
  ModelSpec spec;
  spec.name = tiny ? "cnn-tiny" : "cnn";
  spec.input.kind = ShapeKind::kImage;
  if (tiny) {
    spec.input.c = 1;
    spec.input.h = spec.input.w = 8;
    spec.num_classes = 4;
    spec.layers = {
        LayerSpec::Conv(1, 4, 3, 1, 1), LayerSpec::Relu(),
        LayerSpec::MaxPool(2, 2),       LayerSpec::Flat(),
        LayerSpec::Dense(4 * 4 * 4, 4),
    };
    return spec;
  }
  // The paper's CNN [4]: two 5x5 convs, one hidden FC, softmax output.
  spec.input.c = 1;
  spec.input.h = spec.input.w = 14;
  spec.num_classes = 10;
  spec.layers = {
      LayerSpec::Conv(1, 12, 5, 1, 2),  LayerSpec::Relu(),
      LayerSpec::MaxPool(2, 2),         LayerSpec::Conv(12, 24, 5, 1, 2),
      LayerSpec::Relu(),                LayerSpec::MaxPool(2, 2),
      LayerSpec::Flat(),                LayerSpec::Dense(24 * 3 * 3, 96),
      LayerSpec::Relu(),                LayerSpec::Dense(96, 10),
  };
  return spec;
}

ModelSpec AlexNetSpec(bool tiny) {
  ModelSpec spec;
  spec.name = tiny ? "alexnet-tiny" : "mini-alexnet";
  spec.input.kind = ShapeKind::kImage;
  if (tiny) {
    spec.input.c = 3;
    spec.input.h = spec.input.w = 8;
    spec.num_classes = 4;
    spec.layers = {
        LayerSpec::Conv(3, 4, 3, 1, 1), LayerSpec::Relu(),
        LayerSpec::MaxPool(2, 2),       LayerSpec::Flat(),
        LayerSpec::Dense(4 * 4 * 4, 4),
    };
    return spec;
  }
  spec.input.c = 3;
  spec.input.h = spec.input.w = 16;
  spec.num_classes = 10;
  spec.layers = {
      LayerSpec::Conv(3, 16, 3, 1, 1),  LayerSpec::Relu(),
      LayerSpec::MaxPool(2, 2),         LayerSpec::Conv(16, 32, 3, 1, 1),
      LayerSpec::Relu(),                LayerSpec::MaxPool(2, 2),
      LayerSpec::Conv(32, 32, 3, 1, 1), LayerSpec::Relu(),
      LayerSpec::MaxPool(2, 2),         LayerSpec::Flat(),
      LayerSpec::Dense(32 * 2 * 2, 96), LayerSpec::Relu(),
      LayerSpec::Drop(0.2),             LayerSpec::Dense(96, 10),
  };
  return spec;
}

ModelSpec VggSpec(bool tiny) {
  ModelSpec spec;
  spec.name = tiny ? "vgg-tiny" : "mini-vgg";
  spec.input.kind = ShapeKind::kImage;
  if (tiny) {
    spec.input.c = 1;
    spec.input.h = spec.input.w = 8;
    spec.num_classes = 6;
    spec.layers = {
        LayerSpec::Conv(1, 4, 3, 1, 1), LayerSpec::Relu(),
        LayerSpec::Conv(4, 4, 3, 1, 1), LayerSpec::Relu(),
        LayerSpec::MaxPool(2, 2),       LayerSpec::Flat(),
        LayerSpec::Dense(4 * 4 * 4, 6),
    };
    return spec;
  }
  spec.input.c = 1;
  spec.input.h = spec.input.w = 16;
  spec.num_classes = 20;
  spec.layers = {
      LayerSpec::Conv(1, 12, 3, 1, 1),  LayerSpec::Relu(),
      LayerSpec::Conv(12, 12, 3, 1, 1), LayerSpec::Relu(),
      LayerSpec::MaxPool(2, 2),         LayerSpec::Conv(12, 24, 3, 1, 1),
      LayerSpec::Relu(),                LayerSpec::Conv(24, 24, 3, 1, 1),
      LayerSpec::Relu(),                LayerSpec::MaxPool(2, 2),
      LayerSpec::Conv(24, 48, 3, 1, 1), LayerSpec::Relu(),
      LayerSpec::MaxPool(2, 2),         LayerSpec::Flat(),
      LayerSpec::Dense(48 * 2 * 2, 96), LayerSpec::Relu(),
      LayerSpec::Dense(96, 20),
  };
  return spec;
}

ModelSpec ResNetSpec(bool tiny) {
  ModelSpec spec;
  spec.name = tiny ? "resnet-tiny" : "mini-resnet";
  spec.input.kind = ShapeKind::kImage;
  if (tiny) {
    spec.input.c = 3;
    spec.input.h = spec.input.w = 8;
    spec.num_classes = 4;
    spec.layers = {
        LayerSpec::Conv(3, 8, 3, 1, 1), LayerSpec::BatchNorm(8),
        LayerSpec::Relu(),              LayerSpec::Residual(8, 8),
        LayerSpec::GlobalPool(),        LayerSpec::Dense(8, 4),
    };
    return spec;
  }
  spec.input.c = 3;
  spec.input.h = spec.input.w = 16;
  spec.num_classes = 20;
  spec.layers = {
      LayerSpec::Conv(3, 16, 3, 1, 1), LayerSpec::BatchNorm(16),
      LayerSpec::Relu(),               LayerSpec::Residual(16, 16),
      LayerSpec::MaxPool(2, 2),        LayerSpec::Residual(16, 16),
      LayerSpec::MaxPool(2, 2),        LayerSpec::Residual(16, 16),
      LayerSpec::GlobalPool(),         LayerSpec::Dense(16, 20),
  };
  return spec;
}

ModelSpec LstmSpec(bool tiny, int64_t vocab, int64_t seq_len) {
  ModelSpec spec;
  spec.name = tiny ? "lstm-tiny" : "lstm-lm";
  spec.input.kind = ShapeKind::kTokens;
  spec.input.t = seq_len;
  spec.num_classes = vocab;
  if (tiny) {
    spec.layers = {
        LayerSpec::Embed(vocab, 8),
        LayerSpec::LstmLayer(8, 12),
        LayerSpec::TimeFlat(),
        LayerSpec::Dense(12, vocab),
    };
    return spec;
  }
  // The paper's §VI model: two stacked LSTM layers.
  spec.layers = {
      LayerSpec::Embed(vocab, 16),
      LayerSpec::LstmLayer(16, 24),
      LayerSpec::LstmLayer(24, 24),
      LayerSpec::TimeFlat(),
      LayerSpec::Dense(24, vocab),
  };
  return spec;
}

}  // namespace

FlTask MakeCnnMnistTask(TaskScale scale, uint64_t seed) {
  const bool tiny = scale == TaskScale::kTiny;
  SyntheticImageConfig cfg;
  cfg.channels = 1;
  cfg.height = cfg.width = tiny ? 8 : 14;
  cfg.num_classes = tiny ? 4 : 10;
  cfg.train_per_class = tiny ? 12 : 100;
  cfg.test_per_class = tiny ? 6 : 30;
  cfg.noise_stddev = 0.30;
  cfg.seed = seed;
  TrainTestSplit split = GenerateSyntheticImages(cfg);
  FlTask task;
  task.name = "cnn";
  task.train = std::move(split.train);
  task.test = std::move(split.test);
  task.model = CnnSpec(tiny);
  task.target_accuracy = 0.90;
  return task;
}

FlTask MakeScaleCnnTask(int64_t num_workers, uint64_t seed) {
  FEDMP_CHECK_GT(num_workers, 0);
  SyntheticImageConfig cfg;
  cfg.channels = 1;
  cfg.height = cfg.width = 8;
  cfg.num_classes = 4;
  // ~2 samples per worker: every shard stays non-empty at any fleet size
  // while the dataset itself stays small (at 10k workers: 20k 8x8 images
  // ~= 5 MB) — the scale tests watch model buffers, not data.
  cfg.train_per_class =
      std::max<int64_t>(12, (2 * num_workers + cfg.num_classes - 1) /
                                cfg.num_classes);
  cfg.test_per_class = 6;
  cfg.noise_stddev = 0.30;
  cfg.seed = seed;
  TrainTestSplit split = GenerateSyntheticImages(cfg);
  FlTask task;
  task.name = "cnn-scale";
  task.train = std::move(split.train);
  task.test = std::move(split.test);
  ModelSpec spec;
  spec.name = "cnn-scale";
  spec.input.kind = ShapeKind::kImage;
  spec.input.c = 1;
  spec.input.h = spec.input.w = 8;
  spec.num_classes = 4;
  spec.layers = {
      LayerSpec::Conv(1, 8, 3, 1, 1), LayerSpec::Relu(),
      LayerSpec::MaxPool(2, 2),       LayerSpec::Flat(),
      LayerSpec::Dense(8 * 4 * 4, 64), LayerSpec::Relu(),
      LayerSpec::Dense(64, 4),
  };
  task.model = std::move(spec);
  task.local_iterations = 1;
  task.batch_size = 4;
  task.target_accuracy = 0.90;
  return task;
}

FlTask MakeAlexNetCifarTask(TaskScale scale, uint64_t seed) {
  const bool tiny = scale == TaskScale::kTiny;
  SyntheticImageConfig cfg;
  cfg.channels = 3;
  cfg.height = cfg.width = tiny ? 8 : 16;
  cfg.num_classes = tiny ? 4 : 10;
  cfg.train_per_class = tiny ? 12 : 100;
  cfg.test_per_class = tiny ? 6 : 30;
  cfg.noise_stddev = 0.6;
  cfg.seed = seed + 1;
  TrainTestSplit split = GenerateSyntheticImages(cfg);
  FlTask task;
  task.name = "alexnet";
  task.train = std::move(split.train);
  task.test = std::move(split.test);
  task.model = AlexNetSpec(tiny);
  task.target_accuracy = 0.80;
  return task;
}

FlTask MakeVggEmnistTask(TaskScale scale, uint64_t seed) {
  const bool tiny = scale == TaskScale::kTiny;
  SyntheticImageConfig cfg;
  cfg.channels = 1;
  cfg.height = cfg.width = tiny ? 8 : 16;
  cfg.num_classes = tiny ? 6 : 20;
  cfg.train_per_class = tiny ? 10 : 50;
  cfg.test_per_class = tiny ? 5 : 15;
  cfg.noise_stddev = 0.55;
  cfg.seed = seed + 2;
  TrainTestSplit split = GenerateSyntheticImages(cfg);
  FlTask task;
  task.name = "vgg";
  task.train = std::move(split.train);
  task.test = std::move(split.test);
  task.model = VggSpec(tiny);
  task.target_accuracy = 0.80;
  return task;
}

FlTask MakeResNetTinyImagenetTask(TaskScale scale, uint64_t seed) {
  const bool tiny = scale == TaskScale::kTiny;
  SyntheticImageConfig cfg;
  cfg.channels = 3;
  cfg.height = cfg.width = tiny ? 8 : 16;
  cfg.num_classes = tiny ? 4 : 20;
  cfg.train_per_class = tiny ? 12 : 50;
  cfg.test_per_class = tiny ? 6 : 15;
  // Hardest task of the four (the paper reaches only ~47% on it).
  cfg.noise_stddev = 1.1;
  cfg.max_shift = 3;
  cfg.seed = seed + 3;
  TrainTestSplit split = GenerateSyntheticImages(cfg);
  FlTask task;
  task.name = "resnet";
  task.train = std::move(split.train);
  task.test = std::move(split.test);
  task.model = ResNetSpec(tiny);
  task.target_accuracy = 0.45;
  task.learning_rate = 0.02;
  return task;
}

FlTask MakeLstmPtbTask(TaskScale scale, uint64_t seed) {
  const bool tiny = scale == TaskScale::kTiny;
  SyntheticTextConfig cfg;
  cfg.vocab_size = tiny ? 12 : 40;
  cfg.seq_len = tiny ? 6 : 16;
  cfg.train_windows = tiny ? 60 : 700;
  cfg.test_windows = tiny ? 20 : 200;
  cfg.seed = seed + 4;
  TrainTestSplit split = GenerateSyntheticText(cfg);
  FlTask task;
  task.name = "lstm";
  task.train = std::move(split.train);
  task.test = std::move(split.test);
  task.model = LstmSpec(tiny, cfg.vocab_size, cfg.seq_len);
  task.is_language_model = true;
  task.learning_rate = 0.5;
  task.momentum = 0.0;
  task.weight_decay = 0.0;
  task.target_perplexity = tiny ? 9.0 : 20.0;
  return task;
}

FlTask MakeTaskByName(const std::string& name, TaskScale scale,
                      uint64_t seed) {
  if (name == "cnn") return MakeCnnMnistTask(scale, seed);
  if (name == "alexnet") return MakeAlexNetCifarTask(scale, seed);
  if (name == "vgg") return MakeVggEmnistTask(scale, seed);
  if (name == "resnet") return MakeResNetTinyImagenetTask(scale, seed);
  if (name == "lstm") return MakeLstmPtbTask(scale, seed);
  FEDMP_LOG(Fatal) << "unknown task name: " << name;
  __builtin_unreachable();
}

const std::vector<std::string>& VisionTaskNames() {
  static const std::vector<std::string>& names =
      *new std::vector<std::string>{"cnn", "alexnet", "vgg", "resnet"};
  return names;
}

}  // namespace fedmp::data
