#ifndef FEDMP_DATA_TASK_ZOO_H_
#define FEDMP_DATA_TASK_ZOO_H_

#include <string>

#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "nn/model_spec.h"

namespace fedmp::data {

// One of the paper's FL workloads: dataset + architecture + training
// hyper-parameters + the evaluation targets used in §V.
struct FlTask {
  std::string name;
  Dataset train;
  Dataset test;
  nn::ModelSpec model;
  bool is_language_model = false;

  // Training hyper-parameters (paper defaults adapted to the bench scale).
  double learning_rate = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  int64_t batch_size = 16;
  int64_t local_iterations = 3;  // tau

  // §V targets (accuracy for vision, perplexity for the LM).
  double target_accuracy = 0.0;
  double target_perplexity = 0.0;
};

// Scale knob: kBench keeps every experiment runnable on one CPU core while
// preserving relative model sizes; kTiny is for unit tests.
enum class TaskScale { kTiny, kBench };

// The paper's four vision tasks (§V-A) on synthetic stand-in data.
FlTask MakeCnnMnistTask(TaskScale scale, uint64_t seed);          // CNN/MNIST
FlTask MakeAlexNetCifarTask(TaskScale scale, uint64_t seed);      // AlexNet/CIFAR-10
FlTask MakeVggEmnistTask(TaskScale scale, uint64_t seed);         // VGG-19/EMNIST
FlTask MakeResNetTinyImagenetTask(TaskScale scale, uint64_t seed);// ResNet-50/Tiny-ImageNet

// The §VI RNN extension: 2-layer LSTM LM on a synthetic PTB stand-in.
FlTask MakeLstmPtbTask(TaskScale scale, uint64_t seed);

// Scale-out workload for 10k+-worker rounds (§V-G territory): a small CNN
// (~8.6k params, ~34 KB of weights) over a dataset sized ~2 samples per
// worker, tau = 1 and a small batch. The interesting axis is fleet size —
// per-round memory and multiplexing behavior — not learning, so one round
// stays ~O(seconds) at 10k workers while a naive per-worker
// model+upload materialization would still need ~0.7 GB, which is what the
// bounded-memory scale tests assert against.
FlTask MakeScaleCnnTask(int64_t num_workers, uint64_t seed);

// Task by paper name: "cnn", "alexnet", "vgg", "resnet", "lstm".
FlTask MakeTaskByName(const std::string& name, TaskScale scale,
                      uint64_t seed);

// All four vision task names in paper order.
const std::vector<std::string>& VisionTaskNames();

}  // namespace fedmp::data

#endif  // FEDMP_DATA_TASK_ZOO_H_
