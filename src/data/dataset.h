#ifndef FEDMP_DATA_DATASET_H_
#define FEDMP_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace fedmp::data {

// An in-memory supervised dataset: one flat feature tensor per example plus
// an integer label. For vision tasks `example_shape` is {C,H,W}; for the
// language-model task examples are token windows {T} and the label field is
// unused (targets are the shifted window, see SyntheticTextDataset).
struct Dataset {
  std::vector<int64_t> example_shape;
  int64_t num_classes = 0;
  // examples.size() == labels.size(); each example has
  // prod(example_shape) floats.
  std::vector<std::vector<float>> examples;
  std::vector<int64_t> labels;

  int64_t size() const { return static_cast<int64_t>(examples.size()); }

  int64_t ExampleNumel() const {
    int64_t n = 1;
    for (int64_t d : example_shape) n *= d;
    return n;
  }

  // Materializes examples[indices] as a batch tensor [B, example_shape...]
  // and the matching labels.
  void Gather(const std::vector<int64_t>& indices, nn::Tensor* batch,
              std::vector<int64_t>* batch_labels) const;

  // A dataset containing the given subset of this one's examples (copies).
  Dataset Subset(const std::vector<int64_t>& indices) const;
};

}  // namespace fedmp::data

#endif  // FEDMP_DATA_DATASET_H_
