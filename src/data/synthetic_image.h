#ifndef FEDMP_DATA_SYNTHETIC_IMAGE_H_
#define FEDMP_DATA_SYNTHETIC_IMAGE_H_

#include <cstdint>

#include "data/dataset.h"

namespace fedmp::data {

// Class-conditional synthetic image generator standing in for MNIST /
// CIFAR-10 / EMNIST / Tiny-ImageNet (none of which are available offline;
// see DESIGN.md §2). Each class gets a smooth random prototype (a coarse
// random grid bilinearly upsampled); samples are the prototype under a small
// random translation plus Gaussian pixel noise. The task difficulty is
// controlled by noise, shift, and class count, and is learnable by exactly
// the CNN capacity knobs pruning removes.
struct SyntheticImageConfig {
  int64_t channels = 1;
  int64_t height = 14;
  int64_t width = 14;
  int64_t num_classes = 10;
  int64_t train_per_class = 100;
  int64_t test_per_class = 40;
  double noise_stddev = 0.35;
  int64_t max_shift = 2;        // uniform translation in [-max_shift, +]
  int64_t prototype_grid = 4;   // coarse grid size before upsampling
  uint64_t seed = 42;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

TrainTestSplit GenerateSyntheticImages(const SyntheticImageConfig& config);

}  // namespace fedmp::data

#endif  // FEDMP_DATA_SYNTHETIC_IMAGE_H_
