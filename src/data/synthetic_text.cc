#include "data/synthetic_text.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace fedmp::data {

TrainTestSplit GenerateSyntheticText(const SyntheticTextConfig& cfg) {
  FEDMP_CHECK_GT(cfg.vocab_size, 1);
  FEDMP_CHECK_GT(cfg.seq_len, 1);
  FEDMP_CHECK_GT(cfg.branching, 0);
  FEDMP_CHECK(cfg.concentration > 0.0 && cfg.concentration <= 1.0);
  Rng rng(cfg.seed);

  const int64_t v = cfg.vocab_size;
  // Row-stochastic transition matrix with `branching` favoured successors.
  std::vector<double> transition(static_cast<size_t>(v * v),
                                 (1.0 - cfg.concentration) /
                                     static_cast<double>(v));
  for (int64_t s = 0; s < v; ++s) {
    for (int64_t b = 0; b < cfg.branching; ++b) {
      const int64_t succ = static_cast<int64_t>(
          rng.NextIndex(static_cast<uint64_t>(v)));
      transition[static_cast<size_t>(s * v + succ)] +=
          cfg.concentration / static_cast<double>(cfg.branching);
    }
  }

  auto sample_next = [&](int64_t state) -> int64_t {
    double r = rng.NextDouble();
    const double* row = transition.data() + state * v;
    for (int64_t j = 0; j < v; ++j) {
      r -= row[j];
      if (r <= 0.0) return j;
    }
    return v - 1;
  };

  auto make_windows = [&](int64_t count, Dataset* ds) {
    ds->example_shape = {cfg.seq_len + 1};
    ds->num_classes = v;
    int64_t state = static_cast<int64_t>(rng.NextIndex((uint64_t)v));
    for (int64_t i = 0; i < count; ++i) {
      std::vector<float> window(static_cast<size_t>(cfg.seq_len + 1));
      for (int64_t t = 0; t <= cfg.seq_len; ++t) {
        window[static_cast<size_t>(t)] = static_cast<float>(state);
        state = sample_next(state);
      }
      ds->labels.push_back(
          static_cast<int64_t>(window[static_cast<size_t>(cfg.seq_len)]));
      ds->examples.push_back(std::move(window));
    }
  };

  TrainTestSplit split;
  make_windows(cfg.train_windows, &split.train);
  make_windows(cfg.test_windows, &split.test);
  return split;
}

void SplitLmBatch(const nn::Tensor& windows, nn::Tensor* inputs,
                  std::vector<int64_t>* targets) {
  FEDMP_CHECK_EQ(windows.ndim(), 2);
  const int64_t batch = windows.dim(0);
  const int64_t seq_plus1 = windows.dim(1);
  FEDMP_CHECK_GT(seq_plus1, 1);
  const int64_t seq = seq_plus1 - 1;
  *inputs = nn::Tensor({batch, seq});
  targets->assign(static_cast<size_t>(batch * seq), 0);
  const float* pw = windows.data();
  float* pi = inputs->data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      pi[b * seq + t] = pw[b * seq_plus1 + t];
      (*targets)[static_cast<size_t>(b * seq + t)] =
          static_cast<int64_t>(std::lround(pw[b * seq_plus1 + t + 1]));
    }
  }
}

}  // namespace fedmp::data
