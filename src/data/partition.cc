#include "data/partition.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace fedmp::data {

namespace {
// Example indices grouped by label.
std::vector<std::vector<int64_t>> IndicesByLabel(const Dataset& dataset) {
  std::vector<std::vector<int64_t>> by_label(
      static_cast<size_t>(dataset.num_classes));
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const int64_t y = dataset.labels[static_cast<size_t>(i)];
    FEDMP_CHECK(y >= 0 && y < dataset.num_classes);
    by_label[static_cast<size_t>(y)].push_back(i);
  }
  return by_label;
}
}  // namespace

Partition PartitionIid(int64_t dataset_size, int64_t num_workers, Rng& rng) {
  FEDMP_CHECK_GT(num_workers, 0);
  std::vector<int64_t> order(static_cast<size_t>(dataset_size));
  for (size_t i = 0; i < order.size(); ++i) order[i] = (int64_t)i;
  rng.Shuffle(order);
  Partition out(static_cast<size_t>(num_workers));
  for (int64_t i = 0; i < dataset_size; ++i) {
    out[static_cast<size_t>(i % num_workers)].push_back(
        order[static_cast<size_t>(i)]);
  }
  return out;
}

Partition PartitionLabelSkew(const Dataset& dataset, int64_t num_workers,
                             double y_percent, Rng& rng) {
  FEDMP_CHECK_GT(num_workers, 0);
  FEDMP_CHECK(y_percent >= 0.0 && y_percent <= 100.0);
  if (y_percent == 0.0) return PartitionIid(dataset.size(), num_workers, rng);

  auto by_label = IndicesByLabel(dataset);
  for (auto& bucket : by_label) rng.Shuffle(bucket);
  std::vector<size_t> cursor(by_label.size(), 0);

  const int64_t per_worker = dataset.size() / num_workers;
  const int64_t dominant_count = static_cast<int64_t>(
      static_cast<double>(per_worker) * y_percent / 100.0);

  // Take `count` indices of label `y`, wrapping via re-use if exhausted
  // (shards may then share examples, which mirrors sampling with
  // replacement and keeps shard sizes equal).
  auto take = [&](int64_t y, int64_t count, std::vector<int64_t>* shard) {
    auto& bucket = by_label[static_cast<size_t>(y)];
    if (bucket.empty()) return;
    for (int64_t i = 0; i < count; ++i) {
      if (cursor[static_cast<size_t>(y)] >= bucket.size()) {
        cursor[static_cast<size_t>(y)] = 0;
      }
      shard->push_back(bucket[cursor[static_cast<size_t>(y)]++]);
    }
  };

  Partition out(static_cast<size_t>(num_workers));
  const int64_t classes = dataset.num_classes;
  for (int64_t w = 0; w < num_workers; ++w) {
    const int64_t dominant = w % classes;
    take(dominant, dominant_count, &out[static_cast<size_t>(w)]);
    // Remaining samples uniformly from the other labels.
    const int64_t rest = per_worker - dominant_count;
    for (int64_t i = 0; i < rest; ++i) {
      int64_t y = static_cast<int64_t>(
          rng.NextIndex(static_cast<uint64_t>(classes)));
      if (classes > 1 && y == dominant) y = (y + 1) % classes;
      take(y, 1, &out[static_cast<size_t>(w)]);
    }
  }
  return out;
}

Partition PartitionMissingClasses(const Dataset& dataset, int64_t num_workers,
                                  int64_t missing_classes, Rng& rng) {
  FEDMP_CHECK_GT(num_workers, 0);
  const int64_t classes = dataset.num_classes;
  FEDMP_CHECK(missing_classes >= 0 && missing_classes < classes)
      << "each worker must keep at least one class";

  auto by_label = IndicesByLabel(dataset);
  for (auto& bucket : by_label) rng.Shuffle(bucket);

  // holder[y] = workers that hold class y.
  std::vector<std::vector<int64_t>> holders(static_cast<size_t>(classes));
  for (int64_t w = 0; w < num_workers; ++w) {
    const int64_t start =
        (w * std::max<int64_t>(missing_classes, 1)) % classes;
    for (int64_t y = 0; y < classes; ++y) {
      // Worker w misses the contiguous block [start, start+missing).
      const int64_t offset = (y - start + classes) % classes;
      if (offset >= missing_classes) {
        holders[static_cast<size_t>(y)].push_back(w);
      }
    }
  }

  Partition out(static_cast<size_t>(num_workers));
  for (int64_t y = 0; y < classes; ++y) {
    const auto& hold = holders[static_cast<size_t>(y)];
    FEDMP_CHECK(!hold.empty())
        << "class " << y << " held by no worker; lower missing_classes";
    const auto& bucket = by_label[static_cast<size_t>(y)];
    for (size_t i = 0; i < bucket.size(); ++i) {
      out[static_cast<size_t>(hold[i % hold.size()])].push_back(bucket[i]);
    }
  }
  return out;
}

MaterializedPartitionView::MaterializedPartitionView(Partition partition)
    : partition_(std::move(partition)) {
  FEDMP_CHECK(!partition_.empty());
}

int64_t MaterializedPartitionView::num_workers() const {
  return static_cast<int64_t>(partition_.size());
}

int64_t MaterializedPartitionView::shard_size(int64_t worker) const {
  return static_cast<int64_t>(partition_[static_cast<size_t>(worker)].size());
}

std::vector<int64_t> MaterializedPartitionView::Shard(int64_t worker) const {
  return partition_[static_cast<size_t>(worker)];
}

namespace {
// splitmix64 finalizer: the Feistel round function's mixer. Statistical
// quality is all that matters here — any fixed bijective mixer keyed by
// (seed, round, half) yields a valid permutation.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

StreamingIidPartition::StreamingIidPartition(int64_t dataset_size,
                                             int64_t num_workers,
                                             uint64_t seed)
    : n_(dataset_size), workers_(num_workers), seed_(seed) {
  FEDMP_CHECK_GT(num_workers, 0);
  FEDMP_CHECK_GE(dataset_size, num_workers)
      << "every worker needs a non-empty shard";
  // Smallest even bit-width with 2^bits >= n: the Feistel halves must be
  // equal-width for the swap network to be a bijection.
  int bits = 2;
  while ((int64_t{1} << bits) < n_) bits += 2;
  half_bits_ = bits / 2;
  half_mask_ = (uint64_t{1} << half_bits_) - 1;
}

int64_t StreamingIidPartition::Permute(int64_t i) const {
  FEDMP_CHECK(i >= 0 && i < n_);
  // 4-round balanced Feistel over [0, 2^(2*half_bits)); cycle-walk until
  // the image lands back in [0, n). Walking stays inside the permutation's
  // cycle through i, so the restriction to [0, n) is itself a bijection,
  // and the expected walk length is domain/n <= 4 steps.
  uint64_t x = static_cast<uint64_t>(i);
  do {
    uint64_t left = x >> half_bits_;
    uint64_t right = x & half_mask_;
    for (uint64_t round = 0; round < 4; ++round) {
      const uint64_t f =
          Mix64(seed_ ^ (round + 1) * 0xD6E8FEB86659FD93ULL ^ right) &
          half_mask_;
      const uint64_t new_left = right;
      right = left ^ f;
      left = new_left;
    }
    x = (left << half_bits_) | right;
  } while (x >= static_cast<uint64_t>(n_));
  return static_cast<int64_t>(x);
}

int64_t StreamingIidPartition::shard_size(int64_t worker) const {
  FEDMP_CHECK(worker >= 0 && worker < workers_);
  return (n_ - 1 - worker) / workers_ + 1;
}

std::vector<int64_t> StreamingIidPartition::Shard(int64_t worker) const {
  std::vector<int64_t> shard;
  shard.reserve(static_cast<size_t>(shard_size(worker)));
  for (int64_t i = worker; i < n_; i += workers_) {
    shard.push_back(Permute(i));
  }
  return shard;
}

std::vector<int64_t> ShardLabelHistogram(const Dataset& dataset,
                                         const std::vector<int64_t>& shard) {
  std::vector<int64_t> hist(static_cast<size_t>(dataset.num_classes), 0);
  for (int64_t idx : shard) {
    ++hist[static_cast<size_t>(dataset.labels[static_cast<size_t>(idx)])];
  }
  return hist;
}

}  // namespace fedmp::data
