#include "data/partition.h"

#include <algorithm>

#include "common/logging.h"

namespace fedmp::data {

namespace {
// Example indices grouped by label.
std::vector<std::vector<int64_t>> IndicesByLabel(const Dataset& dataset) {
  std::vector<std::vector<int64_t>> by_label(
      static_cast<size_t>(dataset.num_classes));
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const int64_t y = dataset.labels[static_cast<size_t>(i)];
    FEDMP_CHECK(y >= 0 && y < dataset.num_classes);
    by_label[static_cast<size_t>(y)].push_back(i);
  }
  return by_label;
}
}  // namespace

Partition PartitionIid(int64_t dataset_size, int64_t num_workers, Rng& rng) {
  FEDMP_CHECK_GT(num_workers, 0);
  std::vector<int64_t> order(static_cast<size_t>(dataset_size));
  for (size_t i = 0; i < order.size(); ++i) order[i] = (int64_t)i;
  rng.Shuffle(order);
  Partition out(static_cast<size_t>(num_workers));
  for (int64_t i = 0; i < dataset_size; ++i) {
    out[static_cast<size_t>(i % num_workers)].push_back(
        order[static_cast<size_t>(i)]);
  }
  return out;
}

Partition PartitionLabelSkew(const Dataset& dataset, int64_t num_workers,
                             double y_percent, Rng& rng) {
  FEDMP_CHECK_GT(num_workers, 0);
  FEDMP_CHECK(y_percent >= 0.0 && y_percent <= 100.0);
  if (y_percent == 0.0) return PartitionIid(dataset.size(), num_workers, rng);

  auto by_label = IndicesByLabel(dataset);
  for (auto& bucket : by_label) rng.Shuffle(bucket);
  std::vector<size_t> cursor(by_label.size(), 0);

  const int64_t per_worker = dataset.size() / num_workers;
  const int64_t dominant_count = static_cast<int64_t>(
      static_cast<double>(per_worker) * y_percent / 100.0);

  // Take `count` indices of label `y`, wrapping via re-use if exhausted
  // (shards may then share examples, which mirrors sampling with
  // replacement and keeps shard sizes equal).
  auto take = [&](int64_t y, int64_t count, std::vector<int64_t>* shard) {
    auto& bucket = by_label[static_cast<size_t>(y)];
    if (bucket.empty()) return;
    for (int64_t i = 0; i < count; ++i) {
      if (cursor[static_cast<size_t>(y)] >= bucket.size()) {
        cursor[static_cast<size_t>(y)] = 0;
      }
      shard->push_back(bucket[cursor[static_cast<size_t>(y)]++]);
    }
  };

  Partition out(static_cast<size_t>(num_workers));
  const int64_t classes = dataset.num_classes;
  for (int64_t w = 0; w < num_workers; ++w) {
    const int64_t dominant = w % classes;
    take(dominant, dominant_count, &out[static_cast<size_t>(w)]);
    // Remaining samples uniformly from the other labels.
    const int64_t rest = per_worker - dominant_count;
    for (int64_t i = 0; i < rest; ++i) {
      int64_t y = static_cast<int64_t>(
          rng.NextIndex(static_cast<uint64_t>(classes)));
      if (classes > 1 && y == dominant) y = (y + 1) % classes;
      take(y, 1, &out[static_cast<size_t>(w)]);
    }
  }
  return out;
}

Partition PartitionMissingClasses(const Dataset& dataset, int64_t num_workers,
                                  int64_t missing_classes, Rng& rng) {
  FEDMP_CHECK_GT(num_workers, 0);
  const int64_t classes = dataset.num_classes;
  FEDMP_CHECK(missing_classes >= 0 && missing_classes < classes)
      << "each worker must keep at least one class";

  auto by_label = IndicesByLabel(dataset);
  for (auto& bucket : by_label) rng.Shuffle(bucket);

  // holder[y] = workers that hold class y.
  std::vector<std::vector<int64_t>> holders(static_cast<size_t>(classes));
  for (int64_t w = 0; w < num_workers; ++w) {
    const int64_t start =
        (w * std::max<int64_t>(missing_classes, 1)) % classes;
    for (int64_t y = 0; y < classes; ++y) {
      // Worker w misses the contiguous block [start, start+missing).
      const int64_t offset = (y - start + classes) % classes;
      if (offset >= missing_classes) {
        holders[static_cast<size_t>(y)].push_back(w);
      }
    }
  }

  Partition out(static_cast<size_t>(num_workers));
  for (int64_t y = 0; y < classes; ++y) {
    const auto& hold = holders[static_cast<size_t>(y)];
    FEDMP_CHECK(!hold.empty())
        << "class " << y << " held by no worker; lower missing_classes";
    const auto& bucket = by_label[static_cast<size_t>(y)];
    for (size_t i = 0; i < bucket.size(); ++i) {
      out[static_cast<size_t>(hold[i % hold.size()])].push_back(bucket[i]);
    }
  }
  return out;
}

std::vector<int64_t> ShardLabelHistogram(const Dataset& dataset,
                                         const std::vector<int64_t>& shard) {
  std::vector<int64_t> hist(static_cast<size_t>(dataset.num_classes), 0);
  for (int64_t idx : shard) {
    ++hist[static_cast<size_t>(dataset.labels[static_cast<size_t>(idx)])];
  }
  return hist;
}

}  // namespace fedmp::data
