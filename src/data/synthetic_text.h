#ifndef FEDMP_DATA_SYNTHETIC_TEXT_H_
#define FEDMP_DATA_SYNTHETIC_TEXT_H_

#include <cstdint>

#include "data/dataset.h"
#include "data/synthetic_image.h"  // for TrainTestSplit

namespace fedmp::data {

// Synthetic language-modeling corpus standing in for Penn TreeBank (see
// DESIGN.md §2): tokens are drawn from a sparse random first-order Markov
// chain, so the stream has real predictable structure (perplexity well below
// vocab size is achievable) while remaining fully deterministic from `seed`.
//
// Examples are windows of seq_len+1 tokens stored as floats in a Dataset
// with example_shape {seq_len + 1}; consumers split each window into inputs
// [0, seq_len) and next-token targets [1, seq_len]. `labels` holds the
// window's final token (unused by the LM loss, convenient for smoke tests).
struct SyntheticTextConfig {
  int64_t vocab_size = 50;
  int64_t seq_len = 16;
  int64_t train_windows = 800;
  int64_t test_windows = 200;
  // Each token's successor distribution concentrates on this many tokens.
  int64_t branching = 3;
  // Probability mass assigned to the favoured successors (rest uniform).
  double concentration = 0.9;
  uint64_t seed = 7;
};

TrainTestSplit GenerateSyntheticText(const SyntheticTextConfig& config);

// Splits a batch of windows [B, seq_len+1] into LM inputs [B, seq_len] and
// flattened next-token targets of length B*seq_len.
void SplitLmBatch(const nn::Tensor& windows, nn::Tensor* inputs,
                  std::vector<int64_t>* targets);

}  // namespace fedmp::data

#endif  // FEDMP_DATA_SYNTHETIC_TEXT_H_
