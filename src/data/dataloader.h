#ifndef FEDMP_DATA_DATALOADER_H_
#define FEDMP_DATA_DATALOADER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace fedmp::data {

// Mini-batch iterator over a (shard of a) dataset. Reshuffles at every epoch
// boundary when `shuffle` is set. The dataset must outlive the loader.
class DataLoader {
 public:
  // Iterates `dataset` restricted to `indices` (pass all indices for the
  // full set). Batches wrap around epochs; the final short batch of an epoch
  // is emitted as-is.
  DataLoader(const Dataset* dataset, std::vector<int64_t> indices,
             int64_t batch_size, bool shuffle, uint64_t seed);

  // Convenience: iterate the entire dataset.
  DataLoader(const Dataset* dataset, int64_t batch_size, bool shuffle,
             uint64_t seed);

  // Fills `batch` [B, example_shape...] and `labels`; B <= batch_size.
  // Advances the cursor; wraps (and reshuffles) at the end of the epoch.
  void NextBatch(nn::Tensor* batch, std::vector<int64_t>* labels);

  int64_t size() const { return static_cast<int64_t>(indices_.size()); }
  int64_t batch_size() const { return batch_size_; }
  int64_t epochs_completed() const { return epochs_completed_; }
  // Position of the next batch within the epoch. Together with size() and
  // batch_size() this determines the exact row count of every upcoming
  // batch (the resource ledger predicts them analytically).
  int64_t cursor() const { return cursor_; }

 private:
  const Dataset* dataset_;
  std::vector<int64_t> indices_;
  int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  int64_t cursor_ = 0;
  int64_t epochs_completed_ = 0;
};

}  // namespace fedmp::data

#endif  // FEDMP_DATA_DATALOADER_H_
