#ifndef FEDMP_DATA_PARTITION_H_
#define FEDMP_DATA_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace fedmp::data {

// Partitioners assign example indices of a dataset to N workers, reproducing
// the paper's data-distribution settings (§V-A default and §V-F non-IID).
using Partition = std::vector<std::vector<int64_t>>;

// Uniform IID split: shuffled indices dealt round-robin.
Partition PartitionIid(int64_t dataset_size, int64_t num_workers, Rng& rng);

// MNIST/CIFAR-style label skew (§V-F): y_percent% of each worker's samples
// come from one dominant label (worker w's dominant label is w mod
// num_classes); the rest are drawn uniformly from other labels.
// y_percent == 0 degenerates to IID.
Partition PartitionLabelSkew(const Dataset& dataset, int64_t num_workers,
                             double y_percent, Rng& rng);

// EMNIST/Tiny-ImageNet-style missing classes (§V-F): each worker lacks
// `missing_classes` classes (a contiguous block starting at a per-worker
// offset); samples of the remaining classes are split evenly among the
// workers that do hold them.
Partition PartitionMissingClasses(const Dataset& dataset, int64_t num_workers,
                                  int64_t missing_classes, Rng& rng);

// Label histogram of one shard — used by tests and diagnostics.
std::vector<int64_t> ShardLabelHistogram(const Dataset& dataset,
                                         const std::vector<int64_t>& shard);

// A lazy view of a partition: per-worker index shards materialized on
// demand instead of stored. At 100k+ workers the stored Partition itself is
// the RSS floor (100k index vectors live for the whole run); a view keeps
// the fleet's index footprint at O(concurrently-training workers x shard).
// Shard(w) must be a pure function of the view's construction parameters —
// the same worker gets the same indices on every call, every round.
class PartitionView {
 public:
  virtual ~PartitionView() = default;
  virtual int64_t num_workers() const = 0;
  virtual int64_t shard_size(int64_t worker) const = 0;
  virtual std::vector<int64_t> Shard(int64_t worker) const = 0;
};

// Adapts an eagerly-built Partition (IID, label-skew, missing-classes) to
// the view interface. Shard(w) copies — callers own and free the result.
class MaterializedPartitionView : public PartitionView {
 public:
  explicit MaterializedPartitionView(Partition partition);
  int64_t num_workers() const override;
  int64_t shard_size(int64_t worker) const override;
  std::vector<int64_t> Shard(int64_t worker) const override;

 private:
  Partition partition_;
};

// IID partition with O(1) state: a Feistel-network permutation of
// [0, dataset_size) keyed by `seed` (cycle-walking over the next
// power-of-four domain) stands in for the stored shuffle, and worker w's
// shard is the permuted image of {w, w + W, w + 2W, ...} — the same
// shuffled-deal-round-robin structure PartitionIid builds, just computed
// per (seed, index) on demand. Distribution-equivalent to PartitionIid but
// a different shuffle, so shard CONTENTS differ for the same seed.
class StreamingIidPartition : public PartitionView {
 public:
  StreamingIidPartition(int64_t dataset_size, int64_t num_workers,
                        uint64_t seed);
  int64_t num_workers() const override { return workers_; }
  int64_t shard_size(int64_t worker) const override;
  std::vector<int64_t> Shard(int64_t worker) const override;

  // The shuffled dataset index at deal position i — a bijection on
  // [0, dataset_size) (tests pin bijectivity and determinism).
  int64_t Permute(int64_t i) const;

 private:
  int64_t n_;
  int64_t workers_;
  uint64_t seed_;
  int half_bits_;
  uint64_t half_mask_;
};

}  // namespace fedmp::data

#endif  // FEDMP_DATA_PARTITION_H_
