#ifndef FEDMP_DATA_PARTITION_H_
#define FEDMP_DATA_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace fedmp::data {

// Partitioners assign example indices of a dataset to N workers, reproducing
// the paper's data-distribution settings (§V-A default and §V-F non-IID).
using Partition = std::vector<std::vector<int64_t>>;

// Uniform IID split: shuffled indices dealt round-robin.
Partition PartitionIid(int64_t dataset_size, int64_t num_workers, Rng& rng);

// MNIST/CIFAR-style label skew (§V-F): y_percent% of each worker's samples
// come from one dominant label (worker w's dominant label is w mod
// num_classes); the rest are drawn uniformly from other labels.
// y_percent == 0 degenerates to IID.
Partition PartitionLabelSkew(const Dataset& dataset, int64_t num_workers,
                             double y_percent, Rng& rng);

// EMNIST/Tiny-ImageNet-style missing classes (§V-F): each worker lacks
// `missing_classes` classes (a contiguous block starting at a per-worker
// offset); samples of the remaining classes are split evenly among the
// workers that do hold them.
Partition PartitionMissingClasses(const Dataset& dataset, int64_t num_workers,
                                  int64_t missing_classes, Rng& rng);

// Label histogram of one shard — used by tests and diagnostics.
std::vector<int64_t> ShardLabelHistogram(const Dataset& dataset,
                                         const std::vector<int64_t>& shard);

}  // namespace fedmp::data

#endif  // FEDMP_DATA_PARTITION_H_
