#include "core/fedmp.h"

#include <cstdlib>

#include "common/string_util.h"
#include "fl/strategies/fedmp_strategy.h"
#include "fl/strategies/fedprox.h"
#include "fl/strategies/flexcom.h"
#include "fl/strategies/syn_fl.h"
#include "fl/strategies/up_fl.h"

namespace fedmp {

StatusOr<std::unique_ptr<fl::Strategy>> MakeStrategy(const std::string& name,
                                                     double theta,
                                                     double lambda) {
  fl::FedMpOptions fedmp_options;
  fedmp_options.eucb.theta = theta;
  fedmp_options.eucb.lambda = lambda;
  if (name == "fedmp") {
    return std::unique_ptr<fl::Strategy>(
        new fl::FedMpStrategy(fedmp_options));
  }
  if (name == "fedmp_bsp") {
    fedmp_options.sync = fl::SyncScheme::kBSP;
    return std::unique_ptr<fl::Strategy>(
        new fl::FedMpStrategy(fedmp_options));
  }
  if (name == "fedmp_time_reward") {
    fedmp_options.time_only_reward = true;
    return std::unique_ptr<fl::Strategy>(
        new fl::FedMpStrategy(fedmp_options));
  }
  if (name == "fedmp_quant") {
    fedmp_options.quantize_residuals = true;
    return std::unique_ptr<fl::Strategy>(
        new fl::FedMpStrategy(fedmp_options));
  }
  if (name == "syn_fl") {
    return std::unique_ptr<fl::Strategy>(new fl::SynFlStrategy());
  }
  if (name == "up_fl") {
    fl::UpFlOptions options;
    options.lambda = lambda;
    return std::unique_ptr<fl::Strategy>(new fl::UpFlStrategy(options));
  }
  if (name == "fedprox") {
    return std::unique_ptr<fl::Strategy>(new fl::FedProxStrategy());
  }
  if (name == "flexcom") {
    return std::unique_ptr<fl::Strategy>(new fl::FlexComStrategy());
  }
  if (name.rfind("fixed:", 0) == 0) {
    const double ratio = std::atof(name.c_str() + 6);
    if (ratio < 0.0 || ratio >= 1.0) {
      return InvalidArgumentError("fixed ratio out of [0,1): " + name);
    }
    return std::unique_ptr<fl::Strategy>(new fl::FixedRatioStrategy(ratio));
  }
  return InvalidArgumentError("unknown method: " + name);
}

std::vector<edge::DeviceProfile> MakeFleet(const ExperimentConfig& config) {
  if (config.num_workers > 0) {
    return edge::MakeHalfAHalfB(config.num_workers, config.data_seed);
  }
  return edge::MakeHeterogeneousWorkers(config.heterogeneity,
                                        config.data_seed);
}

StatusOr<data::Partition> MakePartition(const ExperimentConfig& config,
                                        const data::FlTask& task,
                                        int num_workers) {
  Rng rng(config.trainer.seed ^ 0xDA7AULL);
  if (config.partition == "iid") {
    return data::PartitionIid(task.train.size(), num_workers, rng);
  }
  if (config.partition.rfind("skew:", 0) == 0) {
    const double y = std::atof(config.partition.c_str() + 5);
    if (y < 0.0 || y > 100.0) {
      return InvalidArgumentError("skew level out of [0,100]: " +
                                  config.partition);
    }
    return data::PartitionLabelSkew(task.train, num_workers, y, rng);
  }
  if (config.partition.rfind("missing:", 0) == 0) {
    const int64_t y = std::atoll(config.partition.c_str() + 8);
    if (y < 0 || y >= task.train.num_classes) {
      return InvalidArgumentError("missing-class level invalid: " +
                                  config.partition);
    }
    return data::PartitionMissingClasses(task.train, num_workers, y, rng);
  }
  return InvalidArgumentError("unknown partition: " + config.partition);
}

StatusOr<fl::RoundLog> RunExperiment(const ExperimentConfig& config) {
  const data::FlTask task =
      data::MakeTaskByName(config.task, config.scale, config.data_seed);
  return RunExperimentOnTask(config, task);
}

StatusOr<fl::RoundLog> RunExperimentOnTask(const ExperimentConfig& config,
                                           const data::FlTask& task) {
  FEDMP_ASSIGN_OR_RETURN(
      std::unique_ptr<fl::Strategy> strategy,
      MakeStrategy(config.method, config.theta, config.lambda));
  const std::vector<edge::DeviceProfile> fleet = MakeFleet(config);
  FEDMP_ASSIGN_OR_RETURN(
      data::Partition partition,
      MakePartition(config, task, static_cast<int>(fleet.size())));

  if (config.async_mode) {
    fl::AsyncTrainerOptions async_options;
    async_options.base = config.trainer;
    async_options.m = config.async_m;
    fl::AsyncTrainer trainer(&task, fleet, std::move(partition),
                             std::move(strategy), async_options);
    return trainer.Run();
  }
  fl::Trainer trainer(&task, fleet, std::move(partition),
                      std::move(strategy), config.trainer);
  return trainer.Run();
}

const std::vector<std::string>& PaperMethods() {
  static const std::vector<std::string>& methods =
      *new std::vector<std::string>{"syn_fl", "up_fl", "fedprox", "flexcom",
                                    "fedmp"};
  return methods;
}

}  // namespace fedmp
