#ifndef FEDMP_CORE_FEDMP_H_
#define FEDMP_CORE_FEDMP_H_

#include <memory>
#include <string>

#include "common/statusor.h"
#include "fl/async_trainer.h"
#include "fl/trainer.h"

namespace fedmp {

// ---------------------------------------------------------------------------
// Public façade: one-call experiment runner used by the examples and every
// bench binary. Composes the task zoo, the edge clusters, the data
// partitioners, a strategy, and a (a)synchronous trainer.
// ---------------------------------------------------------------------------

// A full experiment description.
struct ExperimentConfig {
  // Task: "cnn" (MNIST stand-in), "alexnet" (CIFAR-10), "vgg" (EMNIST),
  // "resnet" (Tiny-ImageNet), "lstm" (Penn TreeBank).
  std::string task = "cnn";
  data::TaskScale scale = data::TaskScale::kBench;
  uint64_t data_seed = 42;

  // Method: "fedmp", "syn_fl", "up_fl", "fedprox", "flexcom",
  // "fedmp_bsp" (Fig. 7 ablation), "fedmp_time_reward" (reward ablation),
  // "fedmp_quant" (8-bit residual storage, §III-C),
  // or "fixed:<ratio>" (Figs. 2/5).
  std::string method = "fedmp";
  double theta = 0.05;    // E-UCB pruning granularity (Fig. 4)
  double lambda = 0.98;   // discount factor (see bandit/eucb.h)

  // Worker fleet. When num_workers > 0, uses the §V-G scaling fleet (half
  // cluster A, half B of that size); otherwise the 10-worker heterogeneity
  // scenario below.
  edge::HeterogeneityLevel heterogeneity =
      edge::HeterogeneityLevel::kMedium;
  int num_workers = 0;

  // Data distribution: "iid", "skew:<y>" (y% one label, §V-F),
  // "missing:<y>" (each worker lacks y classes, §V-F).
  std::string partition = "iid";

  // Asynchronous setting (§IV-D / Fig. 12).
  bool async_mode = false;
  int async_m = 5;

  fl::TrainerOptions trainer;
};

// Builds a strategy by name ("fedmp", "syn_fl", ...; see ExperimentConfig).
StatusOr<std::unique_ptr<fl::Strategy>> MakeStrategy(const std::string& name,
                                                     double theta,
                                                     double lambda);

// Builds the worker fleet of a config.
std::vector<edge::DeviceProfile> MakeFleet(const ExperimentConfig& config);

// Builds the data partition of a config over `task` for `num_workers`.
StatusOr<data::Partition> MakePartition(const ExperimentConfig& config,
                                        const data::FlTask& task,
                                        int num_workers);

// Runs the experiment end to end and returns the per-round log.
StatusOr<fl::RoundLog> RunExperiment(const ExperimentConfig& config);

// Runs against an already-constructed task (saves regenerating datasets
// when sweeping methods over the same task).
StatusOr<fl::RoundLog> RunExperimentOnTask(const ExperimentConfig& config,
                                           const data::FlTask& task);

// The five methods compared throughout §V, in paper order.
const std::vector<std::string>& PaperMethods();

}  // namespace fedmp

#endif  // FEDMP_CORE_FEDMP_H_
