#ifndef FEDMP_NN_PARAMETER_H_
#define FEDMP_NN_PARAMETER_H_

#include <string>
#include <utility>

#include "nn/tensor.h"

namespace fedmp::nn {

// A trainable tensor together with its gradient accumulator. Layers own their
// Parameters; optimizers and the FL aggregation logic reference them through
// Layer::Params() in a stable, documented order.
struct Parameter {
  Parameter() = default;
  Parameter(std::string name_in, Tensor value_in)
      : name(std::move(name_in)),
        value(std::move(value_in)),
        grad(value.shape()) {}

  std::string name;
  Tensor value;
  Tensor grad;

  void ZeroGrad() { grad.SetZero(); }
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_PARAMETER_H_
