#ifndef FEDMP_NN_GRADIENT_CHECK_H_
#define FEDMP_NN_GRADIENT_CHECK_H_

#include <functional>
#include <string>

#include "nn/layer.h"

namespace fedmp::nn {

struct GradCheckResult {
  bool passed = true;
  double max_rel_error = 0.0;
  std::string detail;  // first failing coordinate, for test messages
};

// Central-difference gradient checker for a single layer against a scalar
// loss L = sum(w ⊙ y) with fixed random weights w. Verifies both the input
// gradient and every parameter gradient. `training` should be false for
// layers with stochastic behaviour (dropout).
GradCheckResult CheckLayerGradients(Layer& layer, const Tensor& input,
                                    bool training = true,
                                    double epsilon = 1e-3,
                                    double tolerance = 5e-2,
                                    uint64_t seed = 1234);

}  // namespace fedmp::nn

#endif  // FEDMP_NN_GRADIENT_CHECK_H_
