#include "nn/sgd.h"

#include <cmath>

#include "common/logging.h"

namespace fedmp::nn {

Sgd::Sgd(SgdOptions options) : options_(options) {
  FEDMP_CHECK_GT(options_.learning_rate, 0.0);
  FEDMP_CHECK_GE(options_.momentum, 0.0);
  FEDMP_CHECK_LT(options_.momentum, 1.0);
}

void Sgd::Reset(const SgdOptions& options) {
  options_ = options;
  FEDMP_CHECK_GT(options_.learning_rate, 0.0);
  FEDMP_CHECK_GE(options_.momentum, 0.0);
  FEDMP_CHECK_LT(options_.momentum, 1.0);
  for (Tensor& v : velocity_) v.SetZero();
  proximal_anchor_.clear();
  has_anchor_ = false;
}

void Sgd::SetProximalAnchor(TensorList anchor) {
  proximal_anchor_ = std::move(anchor);
  has_anchor_ = true;
}

void Sgd::Step(const std::vector<Parameter*>& params) {
  if (options_.momentum > 0.0 && velocity_.empty()) {
    velocity_.reserve(params.size());
    for (Parameter* p : params) velocity_.emplace_back(p->value.shape());
  }
  if (options_.momentum > 0.0) {
    FEDMP_CHECK_EQ(velocity_.size(), params.size())
        << "parameter list changed between Step() calls";
  }
  if (has_anchor_) {
    FEDMP_CHECK_EQ(proximal_anchor_.size(), params.size())
        << "proximal anchor does not match parameter list";
  }

  // Optional global-norm clipping (computed over raw gradients).
  double clip_scale = 1.0;
  if (options_.clip_norm > 0.0) {
    double sq = 0.0;
    for (Parameter* p : params) sq += SquaredNorm(p->grad);
    const double norm = std::sqrt(sq);
    if (norm > options_.clip_norm) clip_scale = options_.clip_norm / norm;
  }

  const float lr = static_cast<float>(options_.learning_rate);
  const float wd = static_cast<float>(options_.weight_decay);
  const float mu = static_cast<float>(options_.proximal_mu);
  const float mom = static_cast<float>(options_.momentum);
  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    const float* anchor =
        has_anchor_ ? proximal_anchor_[i].data() : nullptr;
    float* v = options_.momentum > 0.0 ? velocity_[i].data() : nullptr;
    const int64_t n = p->value.numel();
    for (int64_t j = 0; j < n; ++j) {
      float grad = static_cast<float>(g[j] * clip_scale);
      if (wd != 0.0f) grad += wd * w[j];
      if (anchor != nullptr && mu != 0.0f) grad += mu * (w[j] - anchor[j]);
      if (v != nullptr) {
        v[j] = mom * v[j] + grad;
        grad = v[j];
      }
      w[j] -= lr * grad;
    }
  }
}

}  // namespace fedmp::nn
