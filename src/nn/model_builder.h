#ifndef FEDMP_NN_MODEL_BUILDER_H_
#define FEDMP_NN_MODEL_BUILDER_H_

#include <cstdint>
#include <memory>

#include "common/statusor.h"
#include "nn/sequential.h"

namespace fedmp::nn {

// Instantiates a Model from a spec. Parameters are initialized from an Rng
// seeded with `seed`, so the same (spec, seed) always yields identical
// initial weights — the PS and all workers can reconstruct models
// deterministically.
StatusOr<std::unique_ptr<Model>> BuildModel(const ModelSpec& spec,
                                            uint64_t seed);

// FEDMP_CHECK-ing wrapper for contexts where the spec is known-valid.
std::unique_ptr<Model> BuildModelOrDie(const ModelSpec& spec, uint64_t seed);

}  // namespace fedmp::nn

#endif  // FEDMP_NN_MODEL_BUILDER_H_
