#include "nn/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace fedmp::nn {

namespace {
void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  FEDMP_CHECK(a.SameShape(b)) << op << ": shape mismatch " << a.ShapeString()
                              << " vs " << b.ShapeString();
}

// Cache tiles for the blocked matmuls. The k/j blocks keep one A panel, one
// B panel, and one C panel resident in L1/L2; the row grain is the minimum
// panel handed to a pool lane. Per output element the kk loop still runs
// 0..k-1 in ascending order across k-blocks, so blocking never changes the
// accumulation order relative to the scalar loop.
constexpr int64_t kKBlock = 64;
constexpr int64_t kJBlock = 256;
constexpr int64_t kRowGrain = 8;
// Below this many multiply-adds the scalar loop wins; also the cutoff for
// spawning pool work.
constexpr int64_t kMinParallelFlops = 1 << 15;

// C[i0:i1, :] += A[i0:i1, :] @ B for the ikj kernel, cache-blocked.
void MatmulPanel(const float* pa, const float* pb, float* pc, int64_t i0,
                 int64_t i1, int64_t k, int64_t n) {
  for (int64_t kb = 0; kb < k; kb += kKBlock) {
    const int64_t kend = std::min(k, kb + kKBlock);
    for (int64_t jb = 0; jb < n; jb += kJBlock) {
      const int64_t jend = std::min(n, jb + kJBlock);
      for (int64_t i = i0; i < i1; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        for (int64_t kk = kb; kk < kend; ++kk) {
          const float av = arow[kk];
          const float* brow = pb + kk * n;
          for (int64_t j = jb; j < jend; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

// C[i0:i1, :] = A[i0:i1, :] @ B^T (dot-product kernel); the scalar
// accumulator keeps the kk order identical to the serial loop.
void MatmulTransBPanel(const float* pa, const float* pb, float* pc,
                       int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t jb = 0; jb < n; jb += kJBlock) {
    const int64_t jend = std::min(n, jb + kJBlock);
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int64_t j = jb; j < jend; ++j) {
        const float* brow = pb + j * k;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
  }
}

// C[k0:k1, :] += A[:, k0:k1]^T @ B; each lane owns a disjoint output-row
// range [k0, k1) and accumulates over i in ascending order.
void MatmulTransAPanel(const float* pa, const float* pb, float* pc,
                       int64_t k0, int64_t k1, int64_t m, int64_t k,
                       int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (int64_t kk = k0; kk < k1; ++kk) {
      const float av = arow[kk];
      float* crow = pc + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor out = a;
  AddInPlace(out, b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor out = a;
  AxpyInPlace(out, -1.0f, b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor out = a;
  float* o = out.data();
  const float* y = b.data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) o[i] *= y[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  ScaleInPlace(out, s);
  return out;
}

void AxpyInPlace(Tensor& a, float alpha, const Tensor& b) {
  CheckSameShape(a, b, "Axpy");
  float* x = a.data();
  const float* y = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) x[i] += alpha * y[i];
}

void ScaleInPlace(Tensor& a, float s) {
  float* x = a.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) x[i] *= s;
}

void AddInPlace(Tensor& a, const Tensor& b) { AxpyInPlace(a, 1.0f, b); }

Tensor Matmul(const Tensor& a, const Tensor& b) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  FEDMP_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FEDMP_CHECK_EQ(k, b.dim(0)) << "Matmul inner dimension mismatch";
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (m * k * n < kMinParallelFlops) {
    // ikj loop order: streams through B and C rows for cache friendliness.
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* brow = pb + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return c;
  }
  ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
    MatmulPanel(pa, pb, pc, i0, i1, k, n);
  });
  return c;
}

Tensor MatmulSparseA(const Tensor& a, const Tensor& b) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  FEDMP_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FEDMP_CHECK_EQ(k, b.dim(0)) << "MatmulSparseA inner dimension mismatch";
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const int64_t grain = m * k * n < kMinParallelFlops ? m : kRowGrain;
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* brow = pb + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor MatmulTransB(const Tensor& a, const Tensor& b) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  FEDMP_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  FEDMP_CHECK_EQ(k, b.dim(1)) << "MatmulTransB inner dimension mismatch";
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (m * k * n < kMinParallelFlops) {
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
    return c;
  }
  ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
    MatmulTransBPanel(pa, pb, pc, i0, i1, k, n);
  });
  return c;
}

Tensor MatmulTransA(const Tensor& a, const Tensor& b) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  FEDMP_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FEDMP_CHECK_EQ(m, b.dim(0)) << "MatmulTransA outer dimension mismatch";
  Tensor c({k, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (m * k * n < kMinParallelFlops) {
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      const float* brow = pb + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        float* crow = pc + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return c;
  }
  ParallelFor(0, k, kRowGrain, [&](int64_t k0, int64_t k1) {
    MatmulTransAPanel(pa, pb, pc, k0, k1, m, k, n);
  });
  return c;
}

Tensor Transpose2D(const Tensor& a) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out(j, i) = a(i, j);
  }
  return out;
}

double Sum(const Tensor& a) {
  double acc = 0.0;
  const float* x = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += x[i];
  return acc;
}

double MeanValue(const Tensor& a) {
  if (a.numel() == 0) return 0.0;
  return Sum(a) / static_cast<double>(a.numel());
}

Tensor ColumnSum(const Tensor& a) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pa + i * n;
    for (int64_t j = 0; j < n; ++j) po[j] += row[j];
  }
  return out;
}

double SquaredNorm(const Tensor& a) {
  double acc = 0.0;
  const float* x = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(x[i]) * x[i];
  }
  return acc;
}

double L1Norm(const Tensor& a) {
  double acc = 0.0;
  const float* x = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += std::fabs(x[i]);
  return acc;
}

std::vector<int64_t> ArgmaxRows(const Tensor& a) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  FEDMP_CHECK_GT(n, 0);
  std::vector<int64_t> out(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    int64_t best = 0;
    float best_v = a(i, 0);
    for (int64_t j = 1; j < n; ++j) {
      if (a(i, j) > best_v) {
        best_v = a(i, j);
        best = j;
      }
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "MaxAbsDiff");
  double worst = 0.0;
  const float* x = a.data();
  const float* y = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, static_cast<double>(std::fabs(x[i] - y[i])));
  }
  return worst;
}

bool SameShapes(const TensorList& a, const TensorList& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].SameShape(b[i])) return false;
  }
  return true;
}

TensorList AddLists(const TensorList& a, const TensorList& b) {
  FEDMP_CHECK(SameShapes(a, b)) << "AddLists shape mismatch";
  TensorList out = a;
  for (size_t i = 0; i < out.size(); ++i) AddInPlace(out[i], b[i]);
  return out;
}

TensorList SubLists(const TensorList& a, const TensorList& b) {
  FEDMP_CHECK(SameShapes(a, b)) << "SubLists shape mismatch";
  TensorList out = a;
  for (size_t i = 0; i < out.size(); ++i) AxpyInPlace(out[i], -1.0f, b[i]);
  return out;
}

void AxpyLists(TensorList& a, float alpha, const TensorList& b) {
  FEDMP_CHECK(SameShapes(a, b)) << "AxpyLists shape mismatch";
  for (size_t i = 0; i < a.size(); ++i) AxpyInPlace(a[i], alpha, b[i]);
}

void ScaleLists(TensorList& a, float s) {
  for (auto& t : a) ScaleInPlace(t, s);
}

int64_t TotalNumel(const TensorList& a) {
  int64_t n = 0;
  for (const auto& t : a) n += t.numel();
  return n;
}

double SquaredNormList(const TensorList& a) {
  double acc = 0.0;
  for (const auto& t : a) acc += SquaredNorm(t);
  return acc;
}

bool AllFinite(const Tensor& a) {
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

bool AllFiniteList(const TensorList& a) {
  for (const auto& t : a) {
    if (!AllFinite(t)) return false;
  }
  return true;
}

}  // namespace fedmp::nn
