#include "nn/tensor_ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "common/thread_pool.h"
#include "nn/workspace.h"
#include "obs/ledger.h"

namespace fedmp::nn {

namespace {
void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  FEDMP_CHECK(a.SameShape(b)) << op << ": shape mismatch " << a.ShapeString()
                              << " vs " << b.ShapeString();
}

std::atomic<bool> g_fast_kernels{true};
std::atomic<bool> g_fast_env_checked{false};

void MaybeReadFastKernelsEnv() {
  if (g_fast_env_checked.exchange(true)) return;
  const char* fast = std::getenv("FEDMP_FAST_KERNELS");
  const char* baseline = std::getenv("FEDMP_HOTPATH_BASELINE");
  if ((fast != nullptr && fast[0] == '0') ||
      (baseline != nullptr && baseline[0] == '1')) {
    g_fast_kernels.store(false, std::memory_order_relaxed);
  }
}

// Cache tiles for the blocked matmuls. The k/j blocks keep one A panel, one
// B panel, and one C panel resident in L1/L2; the row grain is the minimum
// panel handed to a pool lane. Per output element the kk loop still runs
// 0..k-1 in ascending order across k-blocks, so blocking never changes the
// accumulation order relative to the scalar loop.
constexpr int64_t kKBlock = 64;
constexpr int64_t kJBlock = 256;
constexpr int64_t kRowGrain = 8;
// Below this many multiply-adds the scalar loop wins; also the cutoff for
// spawning pool work.
constexpr int64_t kMinParallelFlops = 1 << 15;

// Pre-optimization kernels, kept verbatim behind the fast-kernels switch so
// FEDMP_HOTPATH_BASELINE=1 (and the perf-compare bench) can reproduce the
// baseline hot path in-process. Per output element they accumulate in the
// same order as the blocked/unrolled kernels, so toggling changes speed,
// never bits. Pinned to -O2 (this file otherwise builds at -O3) so the
// baseline also reproduces the pre-optimization codegen; optimization level
// never alters strict-IEEE float results, only throughput.
#if defined(__GNUC__) && !defined(__clang__)
#define FEDMP_LEGACY_KERNEL __attribute__((optimize("O2")))
#else
#define FEDMP_LEGACY_KERNEL
#endif

FEDMP_LEGACY_KERNEL
void MatmulPanelLegacy(const float* pa, const float* pb, float* pc,
                       int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

FEDMP_LEGACY_KERNEL
void MatmulTransBPanelLegacy(const float* pa, const float* pb, float* pc,
                             int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
}

FEDMP_LEGACY_KERNEL
void MatmulSparseAPanelLegacy(const float* pa, const float* pb, float* pc,
                              int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[i0:i1, :] += A[i0:i1, :] @ B for the ikj kernel, cache-blocked.
void MatmulPanel(const float* pa, const float* pb, float* pc, int64_t i0,
                 int64_t i1, int64_t k, int64_t n) {
  for (int64_t kb = 0; kb < k; kb += kKBlock) {
    const int64_t kend = std::min(k, kb + kKBlock);
    for (int64_t jb = 0; jb < n; jb += kJBlock) {
      const int64_t jend = std::min(n, jb + kJBlock);
      for (int64_t i = i0; i < i1; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        for (int64_t kk = kb; kk < kend; ++kk) {
          const float av = arow[kk];
          const float* brow = pb + kk * n;
          for (int64_t j = jb; j < jend; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

// C[i0:i1, :] = A[i0:i1, :] @ B^T. Dot-product kernel unrolled 2x4: the
// eight accumulators belong to eight DIFFERENT output elements, so each
// element still sums a[i, kk] * b[j, kk] over ascending kk from 0.0f —
// bit-identical to the plain loop — while the independent chains hide the
// FP-add latency a single running sum serializes on, and each loaded
// a/b value is reused across the block.
void MatmulTransBPanel(const float* pa, const float* pb, float* pc,
                       int64_t i0, int64_t i1, int64_t k, int64_t n) {
  int64_t i = i0;
  for (; i + 2 <= i1; i += 2) {
    const float* a0 = pa + i * k;
    const float* a1 = a0 + k;
    float* c0 = pc + i * n;
    float* c1 = c0 + n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = pb + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float s00 = 0.0f, s01 = 0.0f, s02 = 0.0f, s03 = 0.0f;
      float s10 = 0.0f, s11 = 0.0f, s12 = 0.0f, s13 = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av0 = a0[kk];
        const float av1 = a1[kk];
        const float bv0 = b0[kk];
        const float bv1 = b1[kk];
        const float bv2 = b2[kk];
        const float bv3 = b3[kk];
        s00 += av0 * bv0;
        s01 += av0 * bv1;
        s02 += av0 * bv2;
        s03 += av0 * bv3;
        s10 += av1 * bv0;
        s11 += av1 * bv1;
        s12 += av1 * bv2;
        s13 += av1 * bv3;
      }
      c0[j] = s00;
      c0[j + 1] = s01;
      c0[j + 2] = s02;
      c0[j + 3] = s03;
      c1[j] = s10;
      c1[j + 1] = s11;
      c1[j + 2] = s12;
      c1[j + 3] = s13;
    }
    for (; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc0 = 0.0f, acc1 = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc0 += a0[kk] * brow[kk];
        acc1 += a1[kk] * brow[kk];
      }
      c0[j] = acc0;
      c1[j] = acc1;
    }
  }
  for (; i < i1; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = pb + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
      }
      crow[j] = s0;
      crow[j + 1] = s1;
      crow[j + 2] = s2;
      crow[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
}

// Explicitly vectorized A @ B^T for x86. Behind FEDMP_FAST_KERNELS like
// the blocked/unrolled kernels above, with the same determinism contract:
// the SIMD lanes are eight DIFFERENT output elements (a j-block), so each
// output still accumulates a[i, kk] * b[j, kk] over ascending kk from
// 0.0f, one IEEE mul + one IEEE add per step — bit-identical to the
// scalar loop. Two things make that hold at the instruction level:
//  * B is row-major [n, k], so b[j .. j+7][kk] is k-strided; an 8x8
//    register transpose of eight contiguous B-row loads re-lanes it
//    without reordering any output's sum.
//  * the target string is "avx2" WITHOUT "fma", so the compiler cannot
//    contract the separate _mm256_mul_ps/_mm256_add_ps into a fused
//    multiply-add (which rounds once, not twice, and would change bits).
// Dispatch is at runtime via __builtin_cpu_supports, falling back to the
// unrolled scalar panel on machines without AVX2.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FEDMP_SIMD_X86 1

__attribute__((target("avx2")))
inline void Transpose8x8(__m256& r0, __m256& r1, __m256& r2, __m256& r3,
                         __m256& r4, __m256& r5, __m256& r6, __m256& r7) {
  const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
  const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
  const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
  const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
  const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
  const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
  const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
  const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  r0 = _mm256_permute2f128_ps(u0, u4, 0x20);
  r1 = _mm256_permute2f128_ps(u1, u5, 0x20);
  r2 = _mm256_permute2f128_ps(u2, u6, 0x20);
  r3 = _mm256_permute2f128_ps(u3, u7, 0x20);
  r4 = _mm256_permute2f128_ps(u0, u4, 0x31);
  r5 = _mm256_permute2f128_ps(u1, u5, 0x31);
  r6 = _mm256_permute2f128_ps(u2, u6, 0x31);
  r7 = _mm256_permute2f128_ps(u3, u7, 0x31);
}

__attribute__((target("avx2")))
void MatmulTransBPanelSimd(const float* pa, const float* pb, float* pc,
                           int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const float* bbase = pb + j * k;
      __m256 acc = _mm256_setzero_ps();
      int64_t kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        __m256 r0 = _mm256_loadu_ps(bbase + 0 * k + kk);
        __m256 r1 = _mm256_loadu_ps(bbase + 1 * k + kk);
        __m256 r2 = _mm256_loadu_ps(bbase + 2 * k + kk);
        __m256 r3 = _mm256_loadu_ps(bbase + 3 * k + kk);
        __m256 r4 = _mm256_loadu_ps(bbase + 4 * k + kk);
        __m256 r5 = _mm256_loadu_ps(bbase + 5 * k + kk);
        __m256 r6 = _mm256_loadu_ps(bbase + 6 * k + kk);
        __m256 r7 = _mm256_loadu_ps(bbase + 7 * k + kk);
        Transpose8x8(r0, r1, r2, r3, r4, r5, r6, r7);
        // After the transpose, r_l holds b[j .. j+7] at inner index
        // kk + l; the adds run l = 0..7, keeping kk ascending per lane.
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_broadcast_ss(arow + kk + 0), r0));
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_broadcast_ss(arow + kk + 1), r1));
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_broadcast_ss(arow + kk + 2), r2));
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_broadcast_ss(arow + kk + 3), r3));
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_broadcast_ss(arow + kk + 4), r4));
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_broadcast_ss(arow + kk + 5), r5));
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_broadcast_ss(arow + kk + 6), r6));
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_broadcast_ss(arow + kk + 7), r7));
      }
      for (; kk < k; ++kk) {
        // k remainder: strided lane gather, still one mul + add per kk.
        const __m256 bv = _mm256_set_ps(
            bbase[7 * k + kk], bbase[6 * k + kk], bbase[5 * k + kk],
            bbase[4 * k + kk], bbase[3 * k + kk], bbase[2 * k + kk],
            bbase[1 * k + kk], bbase[0 * k + kk]);
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_broadcast_ss(arow + kk), bv));
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    for (; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
}

bool Avx2Available() {
  static const bool avail = __builtin_cpu_supports("avx2") != 0;
  return avail;
}
#endif  // FEDMP_SIMD_X86

// Fast-path A @ B^T: SIMD when the hardware has it, else the unrolled
// scalar panel. Both produce the same bits (see above).
void MatmulTransBPanelFast(const float* pa, const float* pb, float* pc,
                           int64_t i0, int64_t i1, int64_t k, int64_t n) {
#ifdef FEDMP_SIMD_X86
  if (Avx2Available() && n >= 8) {
    MatmulTransBPanelSimd(pa, pb, pc, i0, i1, k, n);
    return;
  }
#endif
  MatmulTransBPanel(pa, pb, pc, i0, i1, k, n);
}

// C[k0:k1, :] += A[:, k0:k1]^T @ B; each lane owns a disjoint output-row
// range [k0, k1) and accumulates over i in ascending order.
void MatmulTransAPanel(const float* pa, const float* pb, float* pc,
                       int64_t k0, int64_t k1, int64_t m, int64_t k,
                       int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (int64_t kk = k0; kk < k1; ++kk) {
      const float av = arow[kk];
      float* crow = pc + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// MatmulPanel with the sparse-A exact-zero skip. Per output element the kk
// loop still ascends across k-blocks, so the surviving (non-zero) updates
// land in the same order as the scalar skip loop.
void MatmulSparseAPanel(const float* pa, const float* pb, float* pc,
                        int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t kb = 0; kb < k; kb += kKBlock) {
    const int64_t kend = std::min(k, kb + kKBlock);
    for (int64_t jb = 0; jb < n; jb += kJBlock) {
      const int64_t jend = std::min(n, jb + kJBlock);
      for (int64_t i = i0; i < i1; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        for (int64_t kk = kb; kk < kend; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = pb + kk * n;
          for (int64_t j = jb; j < jend; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

// Shared cores over a raw row-major B so the Tensor overloads and the *Raw
// entry points (which let conv skip weight Reshape copies) are one kernel.
Tensor MatmulCore(const Tensor& a, const float* pb, int64_t n) {
  const int64_t m = a.dim(0), k = a.dim(1);
  // Ledger cross-check: algorithmic MACs counted on the calling thread at
  // entry, before any panel parallelism (obs/ledger.h).
  obs::CountMacs(m * k * n);
  Tensor c = ws::AcquireZeroed({m, n});  // += accumulation needs zeros
  const float* pa = a.data();
  float* pc = c.data();
  const bool fast = FastKernelsEnabled();
  if (m * k * n < kMinParallelFlops) {
    // ikj loop order: streams through B and C rows for cache friendliness.
    if (fast) {
      MatmulPanel(pa, pb, pc, 0, m, k, n);
    } else {
      MatmulPanelLegacy(pa, pb, pc, 0, m, k, n);
    }
    return c;
  }
  ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
    if (fast) {
      MatmulPanel(pa, pb, pc, i0, i1, k, n);
    } else {
      MatmulPanelLegacy(pa, pb, pc, i0, i1, k, n);
    }
  });
  return c;
}

Tensor MatmulTransBCore(const Tensor& a, const float* pb, int64_t n) {
  const int64_t m = a.dim(0), k = a.dim(1);
  obs::CountMacs(m * k * n);
  const float* pa = a.data();
  Tensor c = ws::AcquireUninit({m, n});  // every element assigned below
  float* pc = c.data();
  const bool fast = FastKernelsEnabled();
  if (m * k * n < kMinParallelFlops) {
    if (fast) {
      MatmulTransBPanelFast(pa, pb, pc, 0, m, k, n);
    } else {
      MatmulTransBPanelLegacy(pa, pb, pc, 0, m, k, n);
    }
    return c;
  }
  ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
    if (fast) {
      MatmulTransBPanelFast(pa, pb, pc, i0, i1, k, n);
    } else {
      MatmulTransBPanelLegacy(pa, pb, pc, i0, i1, k, n);
    }
  });
  return c;
}
}  // namespace

bool FastKernelsEnabled() {
  MaybeReadFastKernelsEnv();
  return g_fast_kernels.load(std::memory_order_relaxed);
}

void SetFastKernelsEnabled(bool on) {
  g_fast_env_checked.store(true);  // programmatic choice overrides env
  g_fast_kernels.store(on, std::memory_order_relaxed);
}

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor out = a;
  AddInPlace(out, b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor out = a;
  AxpyInPlace(out, -1.0f, b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor out = a;
  float* o = out.data();
  const float* y = b.data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) o[i] *= y[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  ScaleInPlace(out, s);
  return out;
}

void AxpyInPlace(Tensor& a, float alpha, const Tensor& b) {
  CheckSameShape(a, b, "Axpy");
  float* x = a.data();
  const float* y = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) x[i] += alpha * y[i];
}

void ScaleInPlace(Tensor& a, float s) {
  float* x = a.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) x[i] *= s;
}

void AddInPlace(Tensor& a, const Tensor& b) { AxpyInPlace(a, 1.0f, b); }

Tensor Matmul(const Tensor& a, const Tensor& b) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  FEDMP_CHECK_EQ(b.ndim(), 2);
  FEDMP_CHECK_EQ(a.dim(1), b.dim(0)) << "Matmul inner dimension mismatch";
  return MatmulCore(a, b.data(), b.dim(1));
}

Tensor MatmulRaw(const Tensor& a, const float* b, int64_t n) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  return MatmulCore(a, b, n);
}

Tensor MatmulSparseA(const Tensor& a, const Tensor& b) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  FEDMP_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FEDMP_CHECK_EQ(k, b.dim(0)) << "MatmulSparseA inner dimension mismatch";
  // Counted as dense m·k·n: the ledger attributes algorithmic MACs; the
  // zero-skip is a kernel-level shortcut, not a workload change.
  obs::CountMacs(m * k * n);
  Tensor c = ws::AcquireZeroed({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const bool fast = FastKernelsEnabled();
  if (m * k * n < kMinParallelFlops) {
    if (fast) {
      MatmulSparseAPanel(pa, pb, pc, 0, m, k, n);
    } else {
      MatmulSparseAPanelLegacy(pa, pb, pc, 0, m, k, n);
    }
    return c;
  }
  ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
    if (fast) {
      MatmulSparseAPanel(pa, pb, pc, i0, i1, k, n);
    } else {
      MatmulSparseAPanelLegacy(pa, pb, pc, i0, i1, k, n);
    }
  });
  return c;
}

Tensor MatmulTransB(const Tensor& a, const Tensor& b) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  FEDMP_CHECK_EQ(b.ndim(), 2);
  FEDMP_CHECK_EQ(a.dim(1), b.dim(1)) << "MatmulTransB inner dimension mismatch";
  return MatmulTransBCore(a, b.data(), b.dim(0));
}

Tensor MatmulTransBRaw(const Tensor& a, const float* b, int64_t n) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  return MatmulTransBCore(a, b, n);
}

Tensor MatmulTransA(const Tensor& a, const Tensor& b) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  FEDMP_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FEDMP_CHECK_EQ(m, b.dim(0)) << "MatmulTransA outer dimension mismatch";
  obs::CountMacs(m * k * n);
  Tensor c = ws::AcquireZeroed({k, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (m * k * n < kMinParallelFlops) {
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      const float* brow = pb + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        float* crow = pc + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return c;
  }
  ParallelFor(0, k, kRowGrain, [&](int64_t k0, int64_t k1) {
    MatmulTransAPanel(pa, pb, pc, k0, k1, m, k, n);
  });
  return c;
}

Tensor Transpose2D(const Tensor& a) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out(j, i) = a(i, j);
  }
  return out;
}

double Sum(const Tensor& a) {
  double acc = 0.0;
  const float* x = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += x[i];
  return acc;
}

double MeanValue(const Tensor& a) {
  if (a.numel() == 0) return 0.0;
  return Sum(a) / static_cast<double>(a.numel());
}

Tensor ColumnSum(const Tensor& a) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pa + i * n;
    for (int64_t j = 0; j < n; ++j) po[j] += row[j];
  }
  return out;
}

double SquaredNorm(const Tensor& a) {
  double acc = 0.0;
  const float* x = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(x[i]) * x[i];
  }
  return acc;
}

double L1Norm(const Tensor& a) {
  double acc = 0.0;
  const float* x = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += std::fabs(x[i]);
  return acc;
}

std::vector<int64_t> ArgmaxRows(const Tensor& a) {
  FEDMP_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  FEDMP_CHECK_GT(n, 0);
  std::vector<int64_t> out(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    int64_t best = 0;
    float best_v = a(i, 0);
    for (int64_t j = 1; j < n; ++j) {
      if (a(i, j) > best_v) {
        best_v = a(i, j);
        best = j;
      }
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "MaxAbsDiff");
  double worst = 0.0;
  const float* x = a.data();
  const float* y = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, static_cast<double>(std::fabs(x[i] - y[i])));
  }
  return worst;
}

bool SameShapes(const TensorList& a, const TensorList& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].SameShape(b[i])) return false;
  }
  return true;
}

TensorList AddLists(const TensorList& a, const TensorList& b) {
  FEDMP_CHECK(SameShapes(a, b)) << "AddLists shape mismatch";
  TensorList out = a;
  for (size_t i = 0; i < out.size(); ++i) AddInPlace(out[i], b[i]);
  return out;
}

TensorList SubLists(const TensorList& a, const TensorList& b) {
  FEDMP_CHECK(SameShapes(a, b)) << "SubLists shape mismatch";
  TensorList out = a;
  for (size_t i = 0; i < out.size(); ++i) AxpyInPlace(out[i], -1.0f, b[i]);
  return out;
}

void AxpyLists(TensorList& a, float alpha, const TensorList& b) {
  FEDMP_CHECK(SameShapes(a, b)) << "AxpyLists shape mismatch";
  for (size_t i = 0; i < a.size(); ++i) AxpyInPlace(a[i], alpha, b[i]);
}

void ScaleLists(TensorList& a, float s) {
  for (auto& t : a) ScaleInPlace(t, s);
}

int64_t TotalNumel(const TensorList& a) {
  int64_t n = 0;
  for (const auto& t : a) n += t.numel();
  return n;
}

double SquaredNormList(const TensorList& a) {
  double acc = 0.0;
  for (const auto& t : a) acc += SquaredNorm(t);
  return acc;
}

bool AllFinite(const Tensor& a) {
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

bool AllFiniteList(const TensorList& a) {
  for (const auto& t : a) {
    if (!AllFinite(t)) return false;
  }
  return true;
}

}  // namespace fedmp::nn
