#include "nn/metrics.h"

#include <cmath>

#include "common/logging.h"
#include "nn/tensor_ops.h"

namespace fedmp::nn {

double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  FEDMP_CHECK_EQ(logits.dim(0), static_cast<int64_t>(labels.size()));
  const std::vector<int64_t> preds = ArgmaxRows(logits);
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(labels.size());
}

double PerplexityFromLoss(double mean_cross_entropy) {
  return std::exp(mean_cross_entropy);
}

std::vector<int64_t> ConfusionMatrix(const Tensor& logits,
                                     const std::vector<int64_t>& labels,
                                     int64_t num_classes) {
  FEDMP_CHECK_EQ(logits.dim(0), static_cast<int64_t>(labels.size()));
  std::vector<int64_t> mat(
      static_cast<size_t>(num_classes * num_classes), 0);
  const std::vector<int64_t> preds = ArgmaxRows(logits);
  for (size_t i = 0; i < labels.size(); ++i) {
    FEDMP_CHECK(labels[i] >= 0 && labels[i] < num_classes);
    FEDMP_CHECK(preds[i] >= 0 && preds[i] < num_classes);
    ++mat[static_cast<size_t>(preds[i] * num_classes + labels[i])];
  }
  return mat;
}

}  // namespace fedmp::nn
