#ifndef FEDMP_NN_FLOPS_H_
#define FEDMP_NN_FLOPS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nn/model_spec.h"

// Exact multiply-accumulate (MAC) accounting for the training path.
//
// ModelSpec::Analyze() estimates *forward* flops for the cost model; the
// ledger needs something stricter: the exact number of MACs the nn/ matmul
// kernels execute for one forward+backward pass, so that the analytic count
// (a pure function of the sub-model spec, hence of the pruning mask) can be
// cross-checked against the instrumented kernel counters bit-for-bit. Only
// matmul MACs are counted — elementwise work (bias adds, activations,
// batch-norm, pooling, softmax, SGD) never routes through the matmul
// kernels and is excluded from both sides of the check by construction.
//
// Every layer's per-iteration MAC count is linear in the batch row count,
// so the totals for a whole local-training call factor into
// per-sample MACs x total rows (see TrainingMacsForRows).
namespace fedmp::nn {

struct LayerMacs {
  // MACs executed by one forward / backward pass with batch size 1.
  int64_t forward = 0;
  int64_t backward = 0;
};

struct MacAnalysis {
  std::vector<LayerMacs> layers;  // aligned with ModelSpec::layers
  int64_t forward_per_sample = 0;
  int64_t backward_per_sample = 0;

  int64_t per_sample() const { return forward_per_sample + backward_per_sample; }
};

// Walks the spec (shapes from ModelSpec::Analyze) and derives the exact
// per-sample matmul MAC counts of the nn/ layer implementations:
//   Linear        fwd R·out·in             bwd 2x fwd (dW + dX)
//   Conv2d        fwd OH·OW·out_c·patch    bwd 2x fwd (dW + dcols)
//   Residual      two 3x3 convs, as above (skip path is elementwise)
//   Lstm          fwd T·4H·(In+H)          bwd 2·T·4H·In + (2T-1)·4H·H
//                 (dWh is skipped at t=0 where h_prev is the zero state)
// A Linear downstream of TimeFlatten sees T rows per sample; the walker
// carries that row multiplier. All other layer types execute zero matmuls.
Status AnalyzeTrainingMacs(const ModelSpec& spec, MacAnalysis* out);

// Total forward+backward MACs for a local-training call that processes
// `total_rows` examples (the sum of the tau batch sizes the DataLoader
// will actually deliver, partial tail batches included).
int64_t TrainingMacsForRows(const MacAnalysis& analysis, int64_t total_rows);

// The row sequence a DataLoader with `dataset_size` indices and batch size
// `batch_size`, starting at `cursor`, delivers over `iterations` calls to
// NextBatch (partial tail batch, then wrap to 0). Returns the summed rows.
int64_t PlannedLoaderRows(int64_t dataset_size, int64_t batch_size,
                          int64_t cursor, int64_t iterations);

}  // namespace fedmp::nn

#endif  // FEDMP_NN_FLOPS_H_
