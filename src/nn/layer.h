#ifndef FEDMP_NN_LAYER_H_
#define FEDMP_NN_LAYER_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "nn/tensor.h"

namespace fedmp::nn {

// Base class for all neural-network layers.
//
// The library uses layer-local backward passes instead of a tape autograd:
// Forward() caches whatever activations Backward() needs, Backward() returns
// the gradient w.r.t. the layer input and *accumulates* into each
// Parameter::grad. This keeps the parameter <-> pruning-mask correspondence
// explicit, which is what FedMP's sub-model/sparse/residual algebra needs.
//
// Contract: calls alternate Forward(x) then Backward(dy) on the same batch.
// Layers are not reentrant and not thread-safe; one model per worker.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  // Human-readable layer kind plus key dims, e.g. "Conv2d(3->16,k5)".
  virtual std::string Name() const = 0;

  // Computes the layer output. `training` toggles dropout-style behaviour.
  virtual Tensor Forward(const Tensor& x, bool training) = 0;

  // Given dLoss/dOutput, accumulates parameter gradients and returns
  // dLoss/dInput. Must be preceded by a Forward() on the same batch.
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  // Trainable parameters in canonical order (stable across instances built
  // from the same LayerSpec). Default: none.
  virtual std::vector<Parameter*> Params() { return {}; }

 protected:
  Layer() = default;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYER_H_
