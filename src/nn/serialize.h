#ifndef FEDMP_NN_SERIALIZE_H_
#define FEDMP_NN_SERIALIZE_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/statusor.h"
#include "nn/model_spec.h"
#include "nn/tensor_ops.h"

namespace fedmp::nn {

// Binary (de)serialization of tensors, tensor lists and model specs —
// the wire format a real PS<->worker deployment would ship, and the on-disk
// checkpoint format. Little-endian, versioned with a magic header.

Status WriteTensor(std::ostream& os, const Tensor& t);
StatusOr<Tensor> ReadTensor(std::istream& is);

Status WriteTensorList(std::ostream& os, const TensorList& list);
StatusOr<TensorList> ReadTensorList(std::istream& is);

Status WriteModelSpec(std::ostream& os, const ModelSpec& spec);
StatusOr<ModelSpec> ReadModelSpec(std::istream& is);

// Checkpoint = spec + weights, to a file.
Status SaveCheckpoint(const std::string& path, const ModelSpec& spec,
                      const TensorList& weights);
struct Checkpoint {
  ModelSpec spec;
  TensorList weights;
};
StatusOr<Checkpoint> LoadCheckpoint(const std::string& path);

}  // namespace fedmp::nn

#endif  // FEDMP_NN_SERIALIZE_H_
