#include "nn/model_builder.h"

#include "nn/layers/activations.h"
#include "nn/layers/batchnorm.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/dropout.h"
#include "nn/layers/embedding.h"
#include "nn/layers/flatten.h"
#include "nn/layers/linear.h"
#include "nn/layers/lstm.h"
#include "nn/layers/pool.h"
#include "nn/layers/residual_block.h"

namespace fedmp::nn {

StatusOr<std::unique_ptr<Model>> BuildModel(const ModelSpec& spec,
                                            uint64_t seed) {
  ModelAnalysis analysis;
  FEDMP_RETURN_IF_ERROR(spec.Analyze(&analysis));

  Rng init_rng(seed);
  auto dropout_rng = std::make_unique<Rng>(seed ^ kDropoutSeedSalt);
  std::vector<std::unique_ptr<Layer>> layers;
  layers.reserve(spec.layers.size());
  for (const LayerSpec& ls : spec.layers) {
    switch (ls.type) {
      case LayerType::kConv2d:
        layers.push_back(std::make_unique<Conv2d>(
            ls.in_channels, ls.out_channels, ls.kernel, ls.stride,
            ls.padding, ls.bias, init_rng));
        break;
      case LayerType::kBatchNorm2d:
        layers.push_back(std::make_unique<BatchNorm2d>(ls.out_channels));
        break;
      case LayerType::kReLU:
        layers.push_back(std::make_unique<ReLU>());
        break;
      case LayerType::kTanh:
        layers.push_back(std::make_unique<Tanh>());
        break;
      case LayerType::kMaxPool2d:
        layers.push_back(std::make_unique<MaxPool2d>(ls.kernel, ls.stride));
        break;
      case LayerType::kGlobalAvgPool:
        layers.push_back(std::make_unique<GlobalAvgPool>());
        break;
      case LayerType::kFlatten:
        layers.push_back(std::make_unique<Flatten>());
        break;
      case LayerType::kTimeFlatten:
        layers.push_back(std::make_unique<TimeFlatten>());
        break;
      case LayerType::kLinear:
        layers.push_back(std::make_unique<Linear>(
            ls.in_channels, ls.out_channels, ls.bias, init_rng));
        break;
      case LayerType::kDropout:
        layers.push_back(
            std::make_unique<Dropout>(ls.dropout_p, dropout_rng.get()));
        break;
      case LayerType::kResidualBlock:
        layers.push_back(std::make_unique<ResidualBlock>(
            ls.in_channels, ls.mid_channels, init_rng));
        break;
      case LayerType::kLstm:
        layers.push_back(std::make_unique<Lstm>(ls.in_channels,
                                                ls.out_channels, init_rng));
        break;
      case LayerType::kEmbedding:
        layers.push_back(
            std::make_unique<Embedding>(ls.vocab, ls.out_channels, init_rng));
        break;
    }
  }
  return std::make_unique<Model>(spec, std::move(layers),
                                 std::move(dropout_rng));
}

std::unique_ptr<Model> BuildModelOrDie(const ModelSpec& spec, uint64_t seed) {
  auto model = BuildModel(spec, seed);
  FEDMP_CHECK(model.ok()) << "BuildModel failed: " << model.status();
  return std::move(model).value();
}

}  // namespace fedmp::nn
