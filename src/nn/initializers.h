#ifndef FEDMP_NN_INITIALIZERS_H_
#define FEDMP_NN_INITIALIZERS_H_

#include <cstdint>

#include "common/rng.h"
#include "nn/tensor.h"

namespace fedmp::nn {

// Weight initializers. All take the Rng explicitly for reproducibility.

// He/Kaiming uniform: U(-b, b) with b = sqrt(6 / fan_in). Default for layers
// followed by ReLU (convs, hidden linears).
void KaimingUniform(Tensor& t, int64_t fan_in, Rng& rng);

// Glorot/Xavier uniform: U(-b, b) with b = sqrt(6 / (fan_in + fan_out)).
// Used for LSTM and embedding weights.
void XavierUniform(Tensor& t, int64_t fan_in, int64_t fan_out, Rng& rng);

// N(0, stddev).
void GaussianInit(Tensor& t, double stddev, Rng& rng);

// U(lo, hi).
void UniformInit(Tensor& t, double lo, double hi, Rng& rng);

}  // namespace fedmp::nn

#endif  // FEDMP_NN_INITIALIZERS_H_
