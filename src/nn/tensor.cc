#include "nn/tensor.h"

#include <numeric>

#include "common/string_util.h"

namespace fedmp::nn {

namespace {
int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    FEDMP_CHECK_GE(d, 0) << "negative dimension in shape";
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(ShapeNumel(shape_)), 0.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromData(std::vector<int64_t> shape, std::vector<float> data) {
  FEDMP_CHECK_EQ(ShapeNumel(shape), static_cast<int64_t>(data.size()))
      << "data size does not match shape";
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  FEDMP_CHECK(i >= 0 && i < ndim())
      << "dim " << i << " out of rank " << ndim();
  return shape_[static_cast<size_t>(i)];
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  int64_t known = 1;
  int infer_pos = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      FEDMP_CHECK_EQ(infer_pos, -1) << "at most one -1 in reshape";
      infer_pos = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_pos >= 0) {
    FEDMP_CHECK(known > 0 && numel() % known == 0)
        << "cannot infer dimension for reshape of " << ShapeString();
    new_shape[static_cast<size_t>(infer_pos)] = numel() / known;
  }
  FEDMP_CHECK_EQ(ShapeNumel(new_shape), numel())
      << "reshape " << ShapeString() << " size mismatch";
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::ShapeString() const {
  std::vector<std::string> parts;
  parts.reserve(shape_.size());
  for (int64_t d : shape_) parts.push_back(StrFormat("%lld", (long long)d));
  return "[" + Join(parts, ", ") + "]";
}

}  // namespace fedmp::nn
