#ifndef FEDMP_NN_SEQUENTIAL_H_
#define FEDMP_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"
#include "nn/model_spec.h"
#include "nn/tensor_ops.h"

namespace fedmp::nn {

// Salt xor-ed into a model's build seed to derive its dropout stream (kept
// separate from the init stream so pruning-induced init differences never
// shift dropout draws). Shared by BuildModel and Model::ReseedDropout so a
// reused model replays exactly the stream a fresh build would have.
inline constexpr uint64_t kDropoutSeedSalt = 0xD40F00D5EEDULL;

// A trained model: the ordered layers built from a ModelSpec plus the spec
// itself (needed by the pruner and the cost model). Move-only.
class Model {
 public:
  Model(ModelSpec spec, std::vector<std::unique_ptr<Layer>> layers,
        std::unique_ptr<Rng> dropout_rng);

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  const ModelSpec& spec() const { return spec_; }

  // Runs the full forward pass.
  Tensor Forward(const Tensor& x, bool training);

  // Backpropagates dLoss/dOutput through all layers, accumulating parameter
  // gradients; returns dLoss/dInput.
  Tensor Backward(const Tensor& grad_out);

  // All trainable parameters in canonical (layer, within-layer) order.
  std::vector<Parameter*> Params();

  void ZeroGrad();

  // Copies of all parameter values / assignment from a same-shaped list.
  TensorList GetWeights() const;
  void SetWeights(const TensorList& weights);
  // Copies of all parameter gradients.
  TensorList GetGrads() const;

  // Resets the dropout stream to what BuildModel(spec, seed) would create,
  // letting a cached model replay a fresh build's dropout draws exactly.
  void ReseedDropout(uint64_t seed);

  int64_t NumParams() const;

  // Multi-line human-readable architecture summary.
  std::string Summary() const;

 private:
  ModelSpec spec_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::unique_ptr<Rng> dropout_rng_;  // owned stream used by Dropout layers
  mutable std::vector<Parameter*> params_cache_;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_SEQUENTIAL_H_
