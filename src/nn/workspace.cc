#include "nn/workspace.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "obs/metrics.h"

namespace fedmp::nn::ws {

namespace {

// Per-thread cap on parked bytes; recycling past it drops the buffer. Big
// enough for the largest bench model's activations, small enough that a
// 16-lane pool stays far from memory pressure.
constexpr int64_t kMaxThreadPoolBytes = int64_t{64} << 20;
// Free-list buffers below this size are not worth the bookkeeping.
constexpr int64_t kMinPooledNumel = 64;
// Per-numel cap on free-list depth. Some paths recycle more buffers of a
// size than they ever acquire (e.g. freshly built tensors retired after a
// single use each worker-round), so without a depth bound the lists grow
// until the byte cap even for tiny models — at 10k workers that parked
// ~140 MB of dead small buffers across lanes. A layer never holds more
// than a few dozen live tensors of one shape (LSTM per-step caches are the
// deepest at ~35), so 64 keeps every real reuse pattern while bounding the
// parked set. Dropping a buffer only forfeits reuse; values are unchanged.
constexpr size_t kMaxFreeListDepth = 64;

std::atomic<bool> g_enabled{true};
std::atomic<bool> g_env_checked{false};

void MaybeReadEnv() {
  if (g_env_checked.exchange(true)) return;
  const char* pool = std::getenv("FEDMP_POOL");
  const char* baseline = std::getenv("FEDMP_HOTPATH_BASELINE");
  if ((pool != nullptr && pool[0] == '0') ||
      (baseline != nullptr && baseline[0] == '1')) {
    g_enabled.store(false, std::memory_order_relaxed);
  }
}

// Exact-size free lists: a tensor's buffer only ever serves the same
// element count again, so acquisition is a hash lookup plus a pop and no
// resize traffic.
struct ThreadPoolState {
  std::unordered_map<int64_t, std::vector<std::vector<float>>> free_lists;
  int64_t bytes = 0;
};

ThreadPoolState& State() {
  thread_local ThreadPoolState state;
  return state;
}

// Mirrors the model-cache pattern in fl/worker.cc: counters for the raw
// tallies plus a hit_rate gauge so --perf-compare can diff pool efficacy
// across runs without post-processing.
void CountPoolLookup(bool hit) {
  static obs::Gauge* rate = obs::GetGauge("nn.pool.hit_rate");
  static std::atomic<int64_t> hit_count{0};
  static std::atomic<int64_t> total_count{0};
  const int64_t h =
      hit_count.fetch_add(hit ? 1 : 0, std::memory_order_relaxed) +
      (hit ? 1 : 0);
  const int64_t t = total_count.fetch_add(1, std::memory_order_relaxed) + 1;
  rate->Set(static_cast<double>(h) / static_cast<double>(t));
}

void CountHit(int64_t numel) {
  if (!obs::Enabled()) return;
  static obs::Counter* hits = obs::GetCounter("nn.pool.hits");
  static obs::Counter* bytes = obs::GetCounter("nn.pool.reused_bytes");
  hits->Add(1.0);
  bytes->Add(static_cast<double>(numel) * static_cast<double>(sizeof(float)));
  CountPoolLookup(/*hit=*/true);
}

void CountMiss() {
  if (!obs::Enabled()) return;
  static obs::Counter* misses = obs::GetCounter("nn.pool.misses");
  misses->Add(1.0);
  CountPoolLookup(/*hit=*/false);
}

// Pops a recycled buffer of exactly `numel` floats, or an empty vector.
std::vector<float> TryPop(int64_t numel) {
  ThreadPoolState& state = State();
  auto it = state.free_lists.find(numel);
  if (it == state.free_lists.end() || it->second.empty()) return {};
  std::vector<float> buf = std::move(it->second.back());
  it->second.pop_back();
  state.bytes -= numel * static_cast<int64_t>(sizeof(float));
  return buf;
}

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

Tensor Acquire(const std::vector<int64_t>& shape, bool zeroed) {
  const int64_t numel = ShapeNumel(shape);
  if (Enabled() && numel >= kMinPooledNumel) {
    std::vector<float> buf = TryPop(numel);
    if (!buf.empty()) {
      CountHit(numel);
      if (zeroed) std::memset(buf.data(), 0, buf.size() * sizeof(float));
      return Tensor::FromData(shape, std::move(buf));
    }
    CountMiss();
  }
  // Fresh vectors are value-initialized, so the miss path is zeroed either
  // way; the pool's win on this branch is only the future reuse.
  return Tensor(shape);
}

}  // namespace

bool Enabled() {
  MaybeReadEnv();
  return g_enabled.load(std::memory_order_relaxed);
}

void SetEnabled(bool on) {
  g_env_checked.store(true);  // explicit choice overrides the env
  g_enabled.store(on, std::memory_order_relaxed);
}

Tensor AcquireZeroed(const std::vector<int64_t>& shape) {
  return Acquire(shape, /*zeroed=*/true);
}

Tensor AcquireUninit(const std::vector<int64_t>& shape) {
  return Acquire(shape, /*zeroed=*/false);
}

void Recycle(Tensor&& t) {
  if (!Enabled()) return;
  const int64_t numel = t.numel();
  if (numel < kMinPooledNumel) return;
  ThreadPoolState& state = State();
  const int64_t add = numel * static_cast<int64_t>(sizeof(float));
  if (state.bytes + add > kMaxThreadPoolBytes) return;  // drop: stay bounded
  auto& list = state.free_lists[numel];
  if (list.size() >= kMaxFreeListDepth) return;  // drop: list already deep
  Tensor victim = std::move(t);
  list.push_back(std::move(victim.vec()));
  state.bytes += add;
}

void RecycleAll(std::vector<Tensor>& tensors) {
  for (Tensor& t : tensors) Recycle(std::move(t));
}

void ClearThisThread() {
  ThreadPoolState& state = State();
  state.free_lists.clear();
  state.bytes = 0;
}

int64_t ThisThreadBytes() { return State().bytes; }

}  // namespace fedmp::nn::ws
