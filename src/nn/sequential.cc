#include "nn/sequential.h"

#include "common/string_util.h"
#include "nn/workspace.h"

namespace fedmp::nn {

Model::Model(ModelSpec spec, std::vector<std::unique_ptr<Layer>> layers,
             std::unique_ptr<Rng> dropout_rng)
    : spec_(std::move(spec)),
      layers_(std::move(layers)),
      dropout_rng_(std::move(dropout_rng)) {}

// The forward/backward chains recycle each intermediate as soon as the next
// layer has produced its output. Safe because layers copy whatever they need
// for Backward (tensors own their storage; there are no views), so no layer
// holds a reference into a predecessor's output.
Tensor Model::Forward(const Tensor& x, bool training) {
  if (layers_.empty()) return x;
  Tensor h = layers_.front()->Forward(x, training);
  for (size_t i = 1; i < layers_.size(); ++i) {
    Tensor next = layers_[i]->Forward(h, training);
    ws::Recycle(std::move(h));
    h = std::move(next);
  }
  return h;
}

Tensor Model::Backward(const Tensor& grad_out) {
  if (layers_.empty()) return grad_out;
  Tensor g = layers_.back()->Backward(grad_out);
  for (size_t i = layers_.size() - 1; i-- > 0;) {
    Tensor next = layers_[i]->Backward(g);
    ws::Recycle(std::move(g));
    g = std::move(next);
  }
  return g;
}

std::vector<Parameter*> Model::Params() {
  if (params_cache_.empty()) {
    for (auto& layer : layers_) {
      for (Parameter* p : layer->Params()) params_cache_.push_back(p);
    }
  }
  return params_cache_;
}

void Model::ZeroGrad() {
  for (Parameter* p : Params()) p->ZeroGrad();
}

TensorList Model::GetWeights() const {
  TensorList out;
  for (Parameter* p : const_cast<Model*>(this)->Params()) {
    out.push_back(p->value);
  }
  return out;
}

void Model::SetWeights(const TensorList& weights) {
  std::vector<Parameter*> params = Params();
  FEDMP_CHECK_EQ(params.size(), weights.size())
      << "SetWeights: tensor count mismatch";
  for (size_t i = 0; i < params.size(); ++i) {
    FEDMP_CHECK(params[i]->value.SameShape(weights[i]))
        << "SetWeights: shape mismatch at tensor " << i << " ("
        << params[i]->name << "): " << params[i]->value.ShapeString()
        << " vs " << weights[i].ShapeString();
    params[i]->value = weights[i];
  }
}

void Model::ReseedDropout(uint64_t seed) {
  if (dropout_rng_ != nullptr) {
    *dropout_rng_ = Rng(seed ^ kDropoutSeedSalt);
  }
}

TensorList Model::GetGrads() const {
  TensorList out;
  for (Parameter* p : const_cast<Model*>(this)->Params()) {
    out.push_back(p->grad);
  }
  return out;
}

int64_t Model::NumParams() const {
  int64_t n = 0;
  for (Parameter* p : const_cast<Model*>(this)->Params()) {
    n += p->value.numel();
  }
  return n;
}

std::string Model::Summary() const {
  std::string out = spec_.name + ":\n";
  for (const auto& layer : layers_) {
    out += "  " + layer->Name() + "\n";
  }
  out += StrFormat("  total params: %lld\n", (long long)NumParams());
  return out;
}

}  // namespace fedmp::nn
