#ifndef FEDMP_NN_WORKSPACE_H_
#define FEDMP_NN_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

// A per-thread tensor workspace pool. Forward/backward passes allocate and
// drop the same activation, gradient, and im2col shapes every iteration;
// the pool turns that churn into a free-list round-trip: kernels acquire
// their outputs here and layers recycle buffers they are done with.
//
// Determinism contract: AcquireZeroed returns all-zero contents (bit-equal
// to a fresh `Tensor(shape)`); AcquireUninit returns unspecified contents
// and is only legal where the caller overwrites every element before any
// read. Under that contract, pooled and fresh runs are bit-identical.
//
// Buffers live in thread-local free lists keyed by element count, so the
// pool needs no locks and never changes results across thread counts (a
// miss just falls back to a heap allocation). Per-thread footprint is
// bounded; recycling past the cap drops the buffer.
namespace fedmp::nn::ws {

// Global switch. Defaults to on; FEDMP_POOL=0 or FEDMP_HOTPATH_BASELINE=1
// in the environment disables it at first use (tests use SetEnabled).
bool Enabled();
void SetEnabled(bool on);

// A tensor of `shape` with all-zero contents (pool hit or fresh).
Tensor AcquireZeroed(const std::vector<int64_t>& shape);

// A tensor of `shape` with unspecified contents. The caller MUST write
// every element before reading any.
Tensor AcquireUninit(const std::vector<int64_t>& shape);

// Returns `t`'s storage to the calling thread's free list. Safe on empty
// or moved-from tensors (no-op). `t` is left empty.
void Recycle(Tensor&& t);

// Recycles every tensor of a list (helper for layer caches).
void RecycleAll(std::vector<Tensor>& tensors);

// Drops every buffer held by the calling thread's pool. Tests only.
void ClearThisThread();

// Bytes currently parked in the calling thread's free lists. Tests only.
int64_t ThisThreadBytes();

}  // namespace fedmp::nn::ws

#endif  // FEDMP_NN_WORKSPACE_H_
