#ifndef FEDMP_NN_TENSOR_H_
#define FEDMP_NN_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace fedmp::nn {

// A dense row-major float32 tensor. This is the single value type the whole
// library trains on: layer parameters, activations, and gradients.
//
// Design notes: contiguous std::vector<float> storage, no views/strides —
// structured pruning copies surviving slices into freshly-shaped tensors, so
// aliasing semantics would add complexity without saving work.
class Tensor {
 public:
  // An empty 0-d tensor with no elements.
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  static Tensor Zeros(std::vector<int64_t> shape) { return Tensor(shape); }
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromData(std::vector<int64_t> shape, std::vector<float> data);

  // Copyable and movable: tensors are values.
  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t i) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  // Flat element access.
  float& at(int64_t i) {
    FEDMP_CHECK_GE(i, 0);
    FEDMP_CHECK_LT(i, numel());
    return data_[static_cast<size_t>(i)];
  }
  float at(int64_t i) const {
    FEDMP_CHECK_GE(i, 0);
    FEDMP_CHECK_LT(i, numel());
    return data_[static_cast<size_t>(i)];
  }

  // Multi-dimensional access (bounds-checked in debug-ish fashion; these are
  // convenience accessors, hot loops index data() directly).
  float& operator()(int64_t i, int64_t j) { return data_[Index2(i, j)]; }
  float operator()(int64_t i, int64_t j) const { return data_[Index2(i, j)]; }
  float& operator()(int64_t i, int64_t j, int64_t k, int64_t l) {
    return data_[Index4(i, j, k, l)];
  }
  float operator()(int64_t i, int64_t j, int64_t k, int64_t l) const {
    return data_[Index4(i, j, k, l)];
  }

  // Returns a tensor sharing no storage with this one but reinterpreting the
  // same data in a new shape (numel must match). -1 in at most one slot
  // infers that dimension.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  // "[2, 3]"-style shape string for error messages.
  std::string ShapeString() const;

 private:
  size_t Index2(int64_t i, int64_t j) const {
    FEDMP_CHECK_EQ(ndim(), 2);
    FEDMP_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1])
        << "index (" << i << "," << j << ") out of " << ShapeString();
    return static_cast<size_t>(i * shape_[1] + j);
  }
  size_t Index4(int64_t i, int64_t j, int64_t k, int64_t l) const {
    FEDMP_CHECK_EQ(ndim(), 4);
    FEDMP_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                k < shape_[2] && l >= 0 && l < shape_[3])
        << "index out of " << ShapeString();
    return static_cast<size_t>(((i * shape_[1] + j) * shape_[2] + k) *
                                   shape_[3] + l);
  }

  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_TENSOR_H_
