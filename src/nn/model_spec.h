#ifndef FEDMP_NN_MODEL_SPEC_H_
#define FEDMP_NN_MODEL_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fedmp::nn {

// Architecture description. A ModelSpec is the unit FedMP's structured
// pruner transforms: pruning maps (spec, weights, ratio) to a smaller spec
// plus copied surviving weights, and recovery inverts the map. Models are
// built from specs by ModelBuilder.
enum class LayerType {
  kConv2d,
  kBatchNorm2d,
  kReLU,
  kTanh,
  kMaxPool2d,
  kGlobalAvgPool,
  kFlatten,
  kTimeFlatten,
  kLinear,
  kDropout,
  kResidualBlock,
  kLstm,
  kEmbedding,
};

const char* LayerTypeName(LayerType type);

// One layer's hyper-parameters. Only the fields relevant to `type` are
// meaningful; factory functions below set them.
struct LayerSpec {
  LayerType type = LayerType::kReLU;
  int64_t in_channels = 0;   // conv/linear/lstm input width
  int64_t out_channels = 0;  // conv/linear/lstm output width; BN channels
  int64_t kernel = 0;
  int64_t stride = 1;
  int64_t padding = 0;
  bool bias = true;
  double dropout_p = 0.5;
  int64_t mid_channels = 0;  // residual block inner width
  int64_t vocab = 0;         // embedding vocabulary

  static LayerSpec Conv(int64_t in_c, int64_t out_c, int64_t kernel,
                        int64_t stride = 1, int64_t padding = 0,
                        bool bias = true);
  static LayerSpec BatchNorm(int64_t channels);
  static LayerSpec Relu();
  static LayerSpec TanhAct();
  static LayerSpec MaxPool(int64_t kernel, int64_t stride);
  static LayerSpec GlobalPool();
  static LayerSpec Flat();
  static LayerSpec TimeFlat();
  static LayerSpec Dense(int64_t in_f, int64_t out_f, bool bias = true);
  static LayerSpec Drop(double p);
  static LayerSpec Residual(int64_t channels, int64_t mid_channels);
  static LayerSpec LstmLayer(int64_t input_size, int64_t hidden_size);
  static LayerSpec Embed(int64_t vocab, int64_t dim);

  bool operator==(const LayerSpec& other) const;
};

// Shape of a value flowing between layers. Image activations are {C, H, W};
// flat features {F}; token ids {T}; sequences {T, F}.
enum class ShapeKind { kImage, kFeatures, kTokens, kSequence };

struct ValueShape {
  ShapeKind kind = ShapeKind::kFeatures;
  int64_t c = 0, h = 0, w = 0;  // image
  int64_t f = 0;                // features / sequence feature width
  int64_t t = 0;                // tokens / sequence length

  std::string ToString() const;
};

// Per-layer shape/cost info computed by ModelSpec::Analyze().
struct LayerAnalysis {
  ValueShape input;
  ValueShape output;
  int64_t params = 0;            // trainable scalars
  int64_t forward_flops = 0;     // per sample
};

struct ModelAnalysis {
  std::vector<LayerAnalysis> layers;
  int64_t total_params = 0;
  int64_t total_forward_flops = 0;
  // Bytes to transmit the model (float32 parameters).
  int64_t ParamBytes() const { return total_params * 4; }
};

struct ModelSpec {
  std::string name;
  ValueShape input;       // per-sample input shape
  int64_t num_classes = 0;  // output width (classes or vocab)
  std::vector<LayerSpec> layers;

  // Checks layer-to-layer compatibility (channel chaining, shape kinds) and
  // returns per-layer shapes, parameter counts and FLOPs. The analysis for a
  // fixed sequence length uses input.t; vision uses input.{c,h,w}.
  // Returns an error Status (via analysis==nullopt semantics) on a malformed
  // spec.
  Status Analyze(ModelAnalysis* out) const;

  // Convenience wrappers over Analyze (FEDMP_CHECK on malformed specs).
  int64_t NumParams() const;
  int64_t ForwardFlopsPerSample() const;

  bool operator==(const ModelSpec& other) const;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_MODEL_SPEC_H_
