#include "nn/flops.h"

#include <algorithm>

namespace fedmp::nn {

Status AnalyzeTrainingMacs(const ModelSpec& spec, MacAnalysis* out) {
  ModelAnalysis shapes;
  Status s = spec.Analyze(&shapes);
  if (!s.ok()) return s;

  out->layers.assign(spec.layers.size(), LayerMacs{});
  out->forward_per_sample = 0;
  out->backward_per_sample = 0;

  // Rows one sample contributes to a row-major matmul. TimeFlatten folds
  // the T time steps of a sequence into the batch dimension, so every
  // Linear after it runs T rows per sample.
  int64_t row_mult = 1;

  for (size_t i = 0; i < spec.layers.size(); ++i) {
    const LayerSpec& layer = spec.layers[i];
    const ValueShape& in = shapes.layers[i].input;
    LayerMacs& m = out->layers[i];
    switch (layer.type) {
      case LayerType::kConv2d: {
        const ValueShape& o = shapes.layers[i].output;
        const int64_t patch = layer.in_channels * layer.kernel * layer.kernel;
        m.forward = o.h * o.w * layer.out_channels * patch;
        m.backward = 2 * m.forward;  // dW (MatmulTransA) + dcols (MatmulRaw)
        break;
      }
      case LayerType::kLinear: {
        m.forward = row_mult * layer.in_channels * layer.out_channels;
        m.backward = 2 * m.forward;  // dW (MatmulTransA) + dX (Matmul)
        break;
      }
      case LayerType::kResidualBlock: {
        // conv1 c->m and conv2 m->c, both 3x3 stride 1 pad 1 (same plane).
        const int64_t plane = in.h * in.w;
        const int64_t c = layer.in_channels, mid = layer.mid_channels;
        m.forward = 2 * plane * c * mid * 9;
        m.backward = 2 * m.forward;
        break;
      }
      case LayerType::kLstm: {
        const int64_t T = in.t;
        const int64_t h4 = 4 * layer.out_channels;
        const int64_t is = layer.in_channels;
        const int64_t hs = layer.out_channels;
        m.forward = T * h4 * (is + hs);
        // dWx + dx_t every step; dh_next every step; dWh only for t > 0
        // (h_prev is the untrained zero state at t = 0).
        m.backward = 2 * T * h4 * is + (2 * T - 1) * h4 * hs;
        break;
      }
      case LayerType::kTimeFlatten: {
        row_mult *= in.t;
        break;
      }
      case LayerType::kBatchNorm2d:
      case LayerType::kReLU:
      case LayerType::kTanh:
      case LayerType::kMaxPool2d:
      case LayerType::kGlobalAvgPool:
      case LayerType::kFlatten:
      case LayerType::kDropout:
      case LayerType::kEmbedding:
        break;  // no matmul kernels on either pass
    }
    out->forward_per_sample += m.forward;
    out->backward_per_sample += m.backward;
  }
  return Status::Ok();
}

int64_t TrainingMacsForRows(const MacAnalysis& analysis, int64_t total_rows) {
  return analysis.per_sample() * total_rows;
}

int64_t PlannedLoaderRows(int64_t dataset_size, int64_t batch_size,
                          int64_t cursor, int64_t iterations) {
  if (dataset_size <= 0 || batch_size <= 0) return 0;
  int64_t rows = 0;
  for (int64_t it = 0; it < iterations; ++it) {
    const int64_t take = std::min(batch_size, dataset_size - cursor);
    rows += take;
    cursor += take;
    if (cursor >= dataset_size) cursor = 0;
  }
  return rows;
}

}  // namespace fedmp::nn
