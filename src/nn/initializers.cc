#include "nn/initializers.h"

#include <cmath>

namespace fedmp::nn {

void KaimingUniform(Tensor& t, int64_t fan_in, Rng& rng) {
  FEDMP_CHECK_GT(fan_in, 0);
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in));
  UniformInit(t, -bound, bound, rng);
}

void XavierUniform(Tensor& t, int64_t fan_in, int64_t fan_out, Rng& rng) {
  FEDMP_CHECK_GT(fan_in + fan_out, 0);
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  UniformInit(t, -bound, bound, rng);
}

void GaussianInit(Tensor& t, double stddev, Rng& rng) {
  float* x = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    x[i] = static_cast<float>(rng.Gaussian(0.0, stddev));
  }
}

void UniformInit(Tensor& t, double lo, double hi, Rng& rng) {
  float* x = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    x[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
}

}  // namespace fedmp::nn
