#ifndef FEDMP_NN_LAYERS_DROPOUT_H_
#define FEDMP_NN_LAYERS_DROPOUT_H_

#include <string>

#include "common/rng.h"
#include "nn/layer.h"

namespace fedmp::nn {

// Inverted dropout: at training time each unit is zeroed with probability p
// and survivors scaled by 1/(1-p); identity at evaluation time.
class Dropout : public Layer {
 public:
  // `rng` must outlive the layer (the model builder passes its own stream).
  Dropout(double p, Rng* rng);

  std::string Name() const override;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;

 private:
  double p_;
  Rng* rng_;
  Tensor cached_mask_;
  bool last_forward_training_ = false;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYERS_DROPOUT_H_
