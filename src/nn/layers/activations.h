#ifndef FEDMP_NN_LAYERS_ACTIVATIONS_H_
#define FEDMP_NN_LAYERS_ACTIVATIONS_H_

#include <string>

#include "nn/layer.h"

namespace fedmp::nn {

// Elementwise max(0, x).
class ReLU : public Layer {
 public:
  ReLU() = default;
  std::string Name() const override { return "ReLU"; }
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;

 private:
  Tensor cached_mask_;  // 1 where x > 0
};

// Elementwise tanh(x).
class Tanh : public Layer {
 public:
  Tanh() = default;
  std::string Name() const override { return "Tanh"; }
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;

 private:
  Tensor cached_output_;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYERS_ACTIVATIONS_H_
