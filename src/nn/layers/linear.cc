#include "nn/layers/linear.h"

#include "common/string_util.h"
#include "nn/initializers.h"
#include "nn/tensor_ops.h"
#include "nn/workspace.h"

namespace fedmp::nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool has_bias,
               Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(has_bias) {
  FEDMP_CHECK_GT(in_features, 0);
  FEDMP_CHECK_GT(out_features, 0);
  Tensor w({out_features, in_features});
  KaimingUniform(w, in_features, rng);
  weight_ = Parameter("weight", std::move(w));
  if (has_bias_) bias_ = Parameter("bias", Tensor({out_features}));
}

std::string Linear::Name() const {
  return StrFormat("Linear(%lld->%lld)", (long long)in_features_,
                   (long long)out_features_);
}

Tensor Linear::Forward(const Tensor& x, bool /*training*/) {
  FEDMP_CHECK_EQ(x.ndim(), 2);
  FEDMP_CHECK_EQ(x.dim(1), in_features_)
      << "Linear input features mismatch: " << x.ShapeString();
  cached_input_ = x;
  Tensor y = MatmulTransB(x, weight_.value);  // [B, out]
  if (has_bias_) {
    const int64_t b = y.dim(0);
    float* py = y.data();
    const float* pb = bias_.value.data();
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t j = 0; j < out_features_; ++j) {
        py[i * out_features_ + j] += pb[j];
      }
    }
  }
  return y;
}

Tensor Linear::Backward(const Tensor& grad_out) {
  FEDMP_CHECK_EQ(grad_out.ndim(), 2);
  FEDMP_CHECK_EQ(grad_out.dim(1), out_features_);
  FEDMP_CHECK_EQ(grad_out.dim(0), cached_input_.dim(0))
      << "Backward batch does not match last Forward";
  // dW = dY^T @ X, [out, in].
  Tensor dw = MatmulTransA(grad_out, cached_input_);
  AddInPlace(weight_.grad, dw);
  ws::Recycle(std::move(dw));
  if (has_bias_) {
    Tensor db = ColumnSum(grad_out);
    AddInPlace(bias_.grad, db);
  }
  // dX = dY @ W, [B, in].
  return Matmul(grad_out, weight_.value);
}

std::vector<Parameter*> Linear::Params() {
  std::vector<Parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

}  // namespace fedmp::nn
