#ifndef FEDMP_NN_LAYERS_POOL_H_
#define FEDMP_NN_LAYERS_POOL_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace fedmp::nn {

// Max pooling over non-overlapping-or-strided windows on NCHW input.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(int64_t kernel, int64_t stride);

  std::string Name() const override;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;

 private:
  int64_t kernel_, stride_;
  std::vector<int64_t> cached_argmax_;  // flat input index per output element
  std::vector<int64_t> cached_in_shape_;
};

// Global average pooling: [B,C,H,W] -> [B,C].
class GlobalAvgPool : public Layer {
 public:
  GlobalAvgPool() = default;
  std::string Name() const override { return "GlobalAvgPool"; }
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;

 private:
  std::vector<int64_t> cached_in_shape_;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYERS_POOL_H_
