#include "nn/layers/activations.h"

#include <cmath>

namespace fedmp::nn {

Tensor ReLU::Forward(const Tensor& x, bool /*training*/) {
  cached_mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  const float* px = x.data();
  float* pm = cached_mask_.data();
  float* py = y.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = px[i] > 0.0f;
    pm[i] = pos ? 1.0f : 0.0f;
    py[i] = pos ? px[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::Backward(const Tensor& grad_out) {
  FEDMP_CHECK(grad_out.SameShape(cached_mask_))
      << "ReLU Backward without matching Forward";
  Tensor dx(grad_out.shape());
  const float* pg = grad_out.data();
  const float* pm = cached_mask_.data();
  float* pd = dx.data();
  for (int64_t i = 0; i < dx.numel(); ++i) pd[i] = pg[i] * pm[i];
  return dx;
}

Tensor Tanh::Forward(const Tensor& x, bool /*training*/) {
  Tensor y(x.shape());
  const float* px = x.data();
  float* py = y.data();
  for (int64_t i = 0; i < x.numel(); ++i) py[i] = std::tanh(px[i]);
  cached_output_ = y;
  return y;
}

Tensor Tanh::Backward(const Tensor& grad_out) {
  FEDMP_CHECK(grad_out.SameShape(cached_output_))
      << "Tanh Backward without matching Forward";
  Tensor dx(grad_out.shape());
  const float* pg = grad_out.data();
  const float* po = cached_output_.data();
  float* pd = dx.data();
  for (int64_t i = 0; i < dx.numel(); ++i) {
    pd[i] = pg[i] * (1.0f - po[i] * po[i]);
  }
  return dx;
}

}  // namespace fedmp::nn
