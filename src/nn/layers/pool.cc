#include "nn/layers/pool.h"

#include <limits>

#include "common/string_util.h"
#include "nn/layers/conv2d.h"

namespace fedmp::nn {

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride) {
  FEDMP_CHECK_GT(kernel, 0);
  FEDMP_CHECK_GT(stride, 0);
}

std::string MaxPool2d::Name() const {
  return StrFormat("MaxPool2d(k%lld,s%lld)", (long long)kernel_,
                   (long long)stride_);
}

Tensor MaxPool2d::Forward(const Tensor& x, bool /*training*/) {
  FEDMP_CHECK_EQ(x.ndim(), 4);
  const int64_t batch = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t oh = Conv2d::OutSize(h, kernel_, stride_, /*padding=*/0);
  const int64_t ow = Conv2d::OutSize(w, kernel_, stride_, /*padding=*/0);
  cached_in_shape_ = x.shape();
  cached_argmax_.assign(static_cast<size_t>(batch * c * oh * ow), 0);
  Tensor y({batch, c, oh, ow});
  const float* px = x.data();
  float* py = y.data();
  int64_t out_idx = 0;
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = px + (b * c + ch) * h * w;
      const int64_t plane_base = (b * c + ch) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = -1;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            const int64_t iy = oy * stride_ + ky;
            if (iy >= h) break;
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t ix = ox * stride_ + kx;
              if (ix >= w) break;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          FEDMP_CHECK_GE(best_idx, 0);
          py[out_idx] = best;
          cached_argmax_[static_cast<size_t>(out_idx)] = best_idx;
          ++out_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::Backward(const Tensor& grad_out) {
  FEDMP_CHECK_EQ(grad_out.numel(),
                 static_cast<int64_t>(cached_argmax_.size()))
      << "MaxPool2d Backward without matching Forward";
  Tensor dx(cached_in_shape_);
  float* pd = dx.data();
  const float* pg = grad_out.data();
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    pd[cached_argmax_[static_cast<size_t>(i)]] += pg[i];
  }
  return dx;
}

Tensor GlobalAvgPool::Forward(const Tensor& x, bool /*training*/) {
  FEDMP_CHECK_EQ(x.ndim(), 4);
  const int64_t batch = x.dim(0), c = x.dim(1), plane = x.dim(2) * x.dim(3);
  FEDMP_CHECK_GT(plane, 0);
  cached_in_shape_ = x.shape();
  Tensor y({batch, c});
  const float* px = x.data();
  float* py = y.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = px + (b * c + ch) * plane;
      double acc = 0.0;
      for (int64_t s = 0; s < plane; ++s) acc += src[s];
      py[b * c + ch] = static_cast<float>(acc / static_cast<double>(plane));
    }
  }
  return y;
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_out) {
  FEDMP_CHECK_EQ(grad_out.ndim(), 2);
  FEDMP_CHECK_EQ(cached_in_shape_.size(), 4u)
      << "GlobalAvgPool Backward without matching Forward";
  const int64_t batch = cached_in_shape_[0], c = cached_in_shape_[1];
  const int64_t plane = cached_in_shape_[2] * cached_in_shape_[3];
  FEDMP_CHECK_EQ(grad_out.dim(0), batch);
  FEDMP_CHECK_EQ(grad_out.dim(1), c);
  Tensor dx(cached_in_shape_);
  float* pd = dx.data();
  const float* pg = grad_out.data();
  const float inv = 1.0f / static_cast<float>(plane);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float g = pg[b * c + ch] * inv;
      float* dst = pd + (b * c + ch) * plane;
      for (int64_t s = 0; s < plane; ++s) dst[s] = g;
    }
  }
  return dx;
}

}  // namespace fedmp::nn
