#ifndef FEDMP_NN_LAYERS_FLATTEN_H_
#define FEDMP_NN_LAYERS_FLATTEN_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace fedmp::nn {

// Collapses all non-batch dimensions: [B, ...] -> [B, prod(...)].
class Flatten : public Layer {
 public:
  Flatten() = default;
  std::string Name() const override { return "Flatten"; }
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;

 private:
  std::vector<int64_t> cached_in_shape_;
};

// Merges batch and time: [B, T, F] -> [B*T, F]. Used to apply a Linear
// classifier per timestep in the language model.
class TimeFlatten : public Layer {
 public:
  TimeFlatten() = default;
  std::string Name() const override { return "TimeFlatten"; }
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;

 private:
  std::vector<int64_t> cached_in_shape_;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYERS_FLATTEN_H_
