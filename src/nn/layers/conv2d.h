#ifndef FEDMP_NN_LAYERS_CONV2D_H_
#define FEDMP_NN_LAYERS_CONV2D_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace fedmp::nn {

// 2-D convolution over NCHW input, implemented as im2col + GEMM.
// weight [out_c, in_c, k, k], optional bias [out_c].
// Parameter order: {weight, bias?}.
class Conv2d : public Layer {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t padding, bool has_bias, Rng& rng);

  std::string Name() const override;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t padding() const { return padding_; }
  bool has_bias() const { return has_bias_; }

  // Spatial output size for a given input size.
  static int64_t OutSize(int64_t in, int64_t kernel, int64_t stride,
                         int64_t padding);

 private:
  int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Parameter weight_;  // [out_c, in_c, k, k]
  Parameter bias_;    // [out_c]
  // Cached from Forward for Backward.
  Tensor cached_cols_;  // [B*OH*OW, in_c*k*k]
  int64_t cached_batch_ = 0, cached_h_ = 0, cached_w_ = 0;
};

// Unfolds x [B,C,H,W] into columns [B*OH*OW, C*k*k].
Tensor Im2Col(const Tensor& x, int64_t kernel, int64_t stride,
              int64_t padding);

// Folds columns [B*OH*OW, C*k*k] back into an image gradient [B,C,H,W]
// (adds overlapping contributions).
Tensor Col2Im(const Tensor& cols, int64_t batch, int64_t channels, int64_t h,
              int64_t w, int64_t kernel, int64_t stride, int64_t padding);

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYERS_CONV2D_H_
