#ifndef FEDMP_NN_LAYERS_SOFTMAX_XENT_H_
#define FEDMP_NN_LAYERS_SOFTMAX_XENT_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace fedmp::nn {

// Loss heads. These are not Layers: they terminate the backward chain by
// producing the gradient w.r.t. the network output directly.

// Numerically-stable softmax + cross-entropy over logits [B, C] and integer
// labels of size B. Returns the mean loss; if `grad_logits` is non-null it
// receives d(mean loss)/d(logits).
double SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int64_t>& labels,
                           Tensor* grad_logits);

// Mean squared error 0.5*mean((pred-target)^2); gradient optional.
double MseLoss(const Tensor& pred, const Tensor& target, Tensor* grad_pred);

// Row-wise softmax probabilities of logits [B, C].
Tensor SoftmaxRows(const Tensor& logits);

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYERS_SOFTMAX_XENT_H_
