#ifndef FEDMP_NN_LAYERS_EMBEDDING_H_
#define FEDMP_NN_LAYERS_EMBEDDING_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace fedmp::nn {

// Token-id lookup table: input [B, T] of ids stored as floats (the library's
// single tensor dtype) -> output [B, T, E]. Must be the first layer of a
// model; Backward returns a zero gradient for the (integer) input.
// Parameter order: {table}.
class Embedding : public Layer {
 public:
  Embedding(int64_t vocab_size, int64_t embed_dim, Rng& rng);

  std::string Name() const override;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override;

  int64_t vocab_size() const { return vocab_size_; }
  int64_t embed_dim() const { return embed_dim_; }

 private:
  int64_t vocab_size_, embed_dim_;
  Parameter table_;  // [vocab, E]
  std::vector<int64_t> cached_ids_;
  int64_t cached_batch_ = 0, cached_steps_ = 0;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYERS_EMBEDDING_H_
