#ifndef FEDMP_NN_LAYERS_LINEAR_H_
#define FEDMP_NN_LAYERS_LINEAR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace fedmp::nn {

// Fully-connected layer: y = x @ W^T + b with x [B, in], W [out, in],
// b [out]. Parameter order: {weight, bias?}.
class Linear : public Layer {
 public:
  // Weights Kaiming-initialized from `rng`; bias zero.
  Linear(int64_t in_features, int64_t out_features, bool has_bias, Rng& rng);

  std::string Name() const override;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  bool has_bias() const { return has_bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor cached_input_;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYERS_LINEAR_H_
