#include "nn/layers/softmax_xent.h"

#include <cmath>

#include "common/logging.h"

namespace fedmp::nn {

Tensor SoftmaxRows(const Tensor& logits) {
  FEDMP_CHECK_EQ(logits.ndim(), 2);
  const int64_t b = logits.dim(0), c = logits.dim(1);
  Tensor probs(logits.shape());
  const float* pl = logits.data();
  float* pp = probs.data();
  for (int64_t i = 0; i < b; ++i) {
    const float* row = pl + i * c;
    float* out = pp + i * c;
    float max_v = row[0];
    for (int64_t j = 1; j < c; ++j) max_v = std::max(max_v, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      const double e = std::exp(static_cast<double>(row[j] - max_v));
      out[j] = static_cast<float>(e);
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < c; ++j) out[j] *= inv;
  }
  return probs;
}

double SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int64_t>& labels,
                           Tensor* grad_logits) {
  FEDMP_CHECK_EQ(logits.ndim(), 2);
  const int64_t b = logits.dim(0), c = logits.dim(1);
  FEDMP_CHECK_EQ(static_cast<int64_t>(labels.size()), b);
  Tensor probs = SoftmaxRows(logits);
  double loss = 0.0;
  const float* pp = probs.data();
  for (int64_t i = 0; i < b; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    FEDMP_CHECK(y >= 0 && y < c) << "label " << y << " out of range " << c;
    const double p = std::max(static_cast<double>(pp[i * c + y]), 1e-12);
    loss -= std::log(p);
  }
  loss /= static_cast<double>(b);
  if (grad_logits != nullptr) {
    *grad_logits = probs;
    float* pg = grad_logits->data();
    const float inv_b = 1.0f / static_cast<float>(b);
    for (int64_t i = 0; i < b; ++i) {
      pg[i * c + labels[static_cast<size_t>(i)]] -= 1.0f;
      for (int64_t j = 0; j < c; ++j) pg[i * c + j] *= inv_b;
    }
  }
  return loss;
}

double MseLoss(const Tensor& pred, const Tensor& target, Tensor* grad_pred) {
  FEDMP_CHECK(pred.SameShape(target)) << "MseLoss shape mismatch";
  const int64_t n = pred.numel();
  FEDMP_CHECK_GT(n, 0);
  double loss = 0.0;
  const float* pp = pred.data();
  const float* pt = target.data();
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    loss += 0.5 * d * d;
  }
  loss /= static_cast<double>(n);
  if (grad_pred != nullptr) {
    *grad_pred = Tensor(pred.shape());
    float* pg = grad_pred->data();
    const float inv_n = 1.0f / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) pg[i] = (pp[i] - pt[i]) * inv_n;
  }
  return loss;
}

}  // namespace fedmp::nn
