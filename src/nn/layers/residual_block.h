#ifndef FEDMP_NN_LAYERS_RESIDUAL_BLOCK_H_
#define FEDMP_NN_LAYERS_RESIDUAL_BLOCK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"
#include "nn/layers/activations.h"
#include "nn/layers/batchnorm.h"
#include "nn/layers/conv2d.h"

namespace fedmp::nn {

// Basic pre-ResNet block with an identity skip:
//   y = ReLU(x + BN2(Conv2(ReLU(BN1(Conv1(x))))))
// Conv1: 3x3 channels->mid (the FedMP-prunable width), Conv2: 3x3
// mid->channels. Convs have no bias (the following BN absorbs it).
// Parameter order: conv1.w, bn1.gamma, bn1.beta, conv2.w, bn2.gamma,
// bn2.beta.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(int64_t channels, int64_t mid_channels, Rng& rng);

  std::string Name() const override;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override;

  int64_t channels() const { return channels_; }
  int64_t mid_channels() const { return mid_channels_; }

 private:
  int64_t channels_, mid_channels_;
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  ReLU relu_out_;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYERS_RESIDUAL_BLOCK_H_
