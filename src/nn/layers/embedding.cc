#include "nn/layers/embedding.h"

#include <cmath>

#include "common/string_util.h"
#include "nn/initializers.h"

namespace fedmp::nn {

Embedding::Embedding(int64_t vocab_size, int64_t embed_dim, Rng& rng)
    : vocab_size_(vocab_size), embed_dim_(embed_dim) {
  FEDMP_CHECK_GT(vocab_size, 0);
  FEDMP_CHECK_GT(embed_dim, 0);
  Tensor table({vocab_size, embed_dim});
  UniformInit(table, -0.1, 0.1, rng);
  table_ = Parameter("table", std::move(table));
}

std::string Embedding::Name() const {
  return StrFormat("Embedding(%lld,%lld)", (long long)vocab_size_,
                   (long long)embed_dim_);
}

Tensor Embedding::Forward(const Tensor& x, bool /*training*/) {
  FEDMP_CHECK_EQ(x.ndim(), 2);
  cached_batch_ = x.dim(0);
  cached_steps_ = x.dim(1);
  const int64_t n = x.numel();
  cached_ids_.resize(static_cast<size_t>(n));
  Tensor y({cached_batch_, cached_steps_, embed_dim_});
  const float* px = x.data();
  float* py = y.data();
  const float* pt = table_.value.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t id = static_cast<int64_t>(std::lround(px[i]));
    FEDMP_CHECK(id >= 0 && id < vocab_size_)
        << "token id " << id << " out of vocab " << vocab_size_;
    cached_ids_[static_cast<size_t>(i)] = id;
    const float* row = pt + id * embed_dim_;
    float* dst = py + i * embed_dim_;
    for (int64_t e = 0; e < embed_dim_; ++e) dst[e] = row[e];
  }
  return y;
}

Tensor Embedding::Backward(const Tensor& grad_out) {
  FEDMP_CHECK_EQ(grad_out.ndim(), 3);
  FEDMP_CHECK_EQ(grad_out.dim(0), cached_batch_);
  FEDMP_CHECK_EQ(grad_out.dim(1), cached_steps_);
  FEDMP_CHECK_EQ(grad_out.dim(2), embed_dim_);
  const float* pg = grad_out.data();
  float* pt = table_.grad.data();
  const int64_t n = static_cast<int64_t>(cached_ids_.size());
  for (int64_t i = 0; i < n; ++i) {
    float* row = pt + cached_ids_[static_cast<size_t>(i)] * embed_dim_;
    const float* src = pg + i * embed_dim_;
    for (int64_t e = 0; e < embed_dim_; ++e) row[e] += src[e];
  }
  // Input is integer ids; there is no meaningful input gradient.
  return Tensor({cached_batch_, cached_steps_});
}

std::vector<Parameter*> Embedding::Params() { return {&table_}; }

}  // namespace fedmp::nn
