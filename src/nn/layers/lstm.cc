#include "nn/layers/lstm.h"

#include <cmath>

#include "common/string_util.h"
#include "nn/initializers.h"
#include "nn/tensor_ops.h"
#include "nn/workspace.h"

namespace fedmp::nn {

namespace {
inline float Sigmoid(float v) { return 1.0f / (1.0f + std::exp(-v)); }
}  // namespace

Lstm::Lstm(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  FEDMP_CHECK_GT(input_size, 0);
  FEDMP_CHECK_GT(hidden_size, 0);
  Tensor wx({4 * hidden_size, input_size});
  XavierUniform(wx, input_size, hidden_size, rng);
  wx_ = Parameter("wx", std::move(wx));
  Tensor wh({4 * hidden_size, hidden_size});
  XavierUniform(wh, hidden_size, hidden_size, rng);
  wh_ = Parameter("wh", std::move(wh));
  Tensor b({4 * hidden_size});
  // Forget-gate bias = 1 eases gradient flow early in training.
  for (int64_t j = hidden_size; j < 2 * hidden_size; ++j) b.at(j) = 1.0f;
  b_ = Parameter("b", std::move(b));
}

std::string Lstm::Name() const {
  return StrFormat("Lstm(%lld->%lld)", (long long)input_size_,
                   (long long)hidden_size_);
}

Tensor Lstm::Forward(const Tensor& x, bool /*training*/) {
  FEDMP_CHECK_EQ(x.ndim(), 3);
  FEDMP_CHECK_EQ(x.dim(2), input_size_)
      << "Lstm input size mismatch: " << x.ShapeString();
  const int64_t batch = x.dim(0), steps = x.dim(1);
  cached_batch_ = batch;
  cached_steps_ = steps;
  // Last iteration's step caches feed the pool before being rebuilt.
  ws::RecycleAll(cached_x_);
  ws::RecycleAll(cached_gates_);
  ws::RecycleAll(cached_c_);
  ws::RecycleAll(cached_h_);
  ws::RecycleAll(cached_tanh_c_);
  cached_x_.assign(static_cast<size_t>(steps), Tensor());
  cached_gates_.assign(static_cast<size_t>(steps), Tensor());
  cached_c_.assign(static_cast<size_t>(steps), Tensor());
  cached_h_.assign(static_cast<size_t>(steps), Tensor());
  cached_tanh_c_.assign(static_cast<size_t>(steps), Tensor());

  const int64_t h4 = 4 * hidden_size_;
  // Initial h and c are both all-zero [B, H]; the steps read the previous
  // step's state straight out of the caches, so nothing is copied.
  Tensor zero_state = ws::AcquireZeroed({batch, hidden_size_});
  const Tensor* h_prev = &zero_state;
  const Tensor* c_prev = &zero_state;
  Tensor out = ws::AcquireUninit({batch, steps, hidden_size_});
  float* pout = out.data();

  for (int64_t t = 0; t < steps; ++t) {
    // Slice x_t [B, In] out of [B, T, In].
    Tensor xt = ws::AcquireUninit({batch, input_size_});
    const float* px = x.data();
    float* pxt = xt.data();
    for (int64_t bi = 0; bi < batch; ++bi) {
      const float* src = px + (bi * steps + t) * input_size_;
      float* dst = pxt + bi * input_size_;
      for (int64_t f = 0; f < input_size_; ++f) dst[f] = src[f];
    }
    // Pre-activations z = xt @ Wx^T + h_prev @ Wh^T + b.
    Tensor z = MatmulTransB(xt, wx_.value);
    Tensor zh = MatmulTransB(*h_prev, wh_.value);
    AddInPlace(z, zh);
    ws::Recycle(std::move(zh));
    {
      float* pz = z.data();
      const float* pb = b_.value.data();
      for (int64_t bi = 0; bi < batch; ++bi) {
        for (int64_t j = 0; j < h4; ++j) pz[bi * h4 + j] += pb[j];
      }
    }
    // Activate gates and advance state.
    Tensor gates = ws::AcquireUninit({batch, h4});
    Tensor c_t = ws::AcquireUninit({batch, hidden_size_});
    Tensor h_t = ws::AcquireUninit({batch, hidden_size_});
    Tensor tanh_c = ws::AcquireUninit({batch, hidden_size_});
    const float* pz = z.data();
    float* pg = gates.data();
    const float* pcp = c_prev->data();
    float* pc = c_t.data();
    float* ph = h_t.data();
    float* ptc = tanh_c.data();
    for (int64_t bi = 0; bi < batch; ++bi) {
      const float* zr = pz + bi * h4;
      float* gr = pg + bi * h4;
      for (int64_t j = 0; j < hidden_size_; ++j) {
        const float ig = Sigmoid(zr[j]);
        const float fg = Sigmoid(zr[hidden_size_ + j]);
        const float gg = std::tanh(zr[2 * hidden_size_ + j]);
        const float og = Sigmoid(zr[3 * hidden_size_ + j]);
        gr[j] = ig;
        gr[hidden_size_ + j] = fg;
        gr[2 * hidden_size_ + j] = gg;
        gr[3 * hidden_size_ + j] = og;
        const float c = fg * pcp[bi * hidden_size_ + j] + ig * gg;
        pc[bi * hidden_size_ + j] = c;
        const float tc = std::tanh(c);
        ptc[bi * hidden_size_ + j] = tc;
        ph[bi * hidden_size_ + j] = og * tc;
      }
    }
    // Write h_t into the output sequence.
    for (int64_t bi = 0; bi < batch; ++bi) {
      float* dst = pout + (bi * steps + t) * hidden_size_;
      const float* src = ph + bi * hidden_size_;
      for (int64_t j = 0; j < hidden_size_; ++j) dst[j] = src[j];
    }
    ws::Recycle(std::move(z));
    cached_x_[static_cast<size_t>(t)] = std::move(xt);
    cached_gates_[static_cast<size_t>(t)] = std::move(gates);
    cached_c_[static_cast<size_t>(t)] = std::move(c_t);
    cached_h_[static_cast<size_t>(t)] = std::move(h_t);
    cached_tanh_c_[static_cast<size_t>(t)] = std::move(tanh_c);
    h_prev = &cached_h_[static_cast<size_t>(t)];
    c_prev = &cached_c_[static_cast<size_t>(t)];
  }
  ws::Recycle(std::move(zero_state));
  return out;
}

Tensor Lstm::Backward(const Tensor& grad_out) {
  FEDMP_CHECK_EQ(grad_out.ndim(), 3);
  FEDMP_CHECK_EQ(grad_out.dim(0), cached_batch_);
  FEDMP_CHECK_EQ(grad_out.dim(1), cached_steps_);
  FEDMP_CHECK_EQ(grad_out.dim(2), hidden_size_);
  const int64_t batch = cached_batch_, steps = cached_steps_;
  const int64_t h4 = 4 * hidden_size_;

  Tensor dx = ws::AcquireUninit({batch, steps, input_size_});
  Tensor dh_next = ws::AcquireZeroed({batch, hidden_size_});
  Tensor dc_next = ws::AcquireZeroed({batch, hidden_size_});
  const float* pgo = grad_out.data();
  float* pdx = dx.data();

  for (int64_t t = steps - 1; t >= 0; --t) {
    const Tensor& gates = cached_gates_[static_cast<size_t>(t)];
    const Tensor& tanh_c = cached_tanh_c_[static_cast<size_t>(t)];
    const Tensor* c_prev =
        t > 0 ? &cached_c_[static_cast<size_t>(t - 1)] : nullptr;
    const Tensor* h_prev =
        t > 0 ? &cached_h_[static_cast<size_t>(t - 1)] : nullptr;

    Tensor dz = ws::AcquireUninit({batch, h4});
    float* pdz = dz.data();
    const float* pg = gates.data();
    const float* ptc = tanh_c.data();
    float* pdh_next = dh_next.data();
    float* pdc_next = dc_next.data();
    for (int64_t bi = 0; bi < batch; ++bi) {
      const float* gr = pg + bi * h4;
      float* dzr = pdz + bi * h4;
      for (int64_t j = 0; j < hidden_size_; ++j) {
        const float ig = gr[j];
        const float fg = gr[hidden_size_ + j];
        const float gg = gr[2 * hidden_size_ + j];
        const float og = gr[3 * hidden_size_ + j];
        const float tc = ptc[bi * hidden_size_ + j];
        const float dh =
            pgo[(bi * steps + t) * hidden_size_ + j] +
            pdh_next[bi * hidden_size_ + j];
        const float dc = dh * og * (1.0f - tc * tc) +
                         pdc_next[bi * hidden_size_ + j];
        const float cp =
            c_prev != nullptr ? c_prev->data()[bi * hidden_size_ + j] : 0.0f;
        const float d_i = dc * gg;
        const float d_f = dc * cp;
        const float d_g = dc * ig;
        const float d_o = dh * tc;
        dzr[j] = d_i * ig * (1.0f - ig);
        dzr[hidden_size_ + j] = d_f * fg * (1.0f - fg);
        dzr[2 * hidden_size_ + j] = d_g * (1.0f - gg * gg);
        dzr[3 * hidden_size_ + j] = d_o * og * (1.0f - og);
        // Carry cell gradient to t-1.
        pdc_next[bi * hidden_size_ + j] = dc * fg;
      }
    }
    // Parameter gradients.
    {
      Tensor dwx = MatmulTransA(dz, cached_x_[static_cast<size_t>(t)]);
      AddInPlace(wx_.grad, dwx);
      ws::Recycle(std::move(dwx));
    }
    if (h_prev != nullptr) {
      Tensor dwh = MatmulTransA(dz, *h_prev);
      AddInPlace(wh_.grad, dwh);
      ws::Recycle(std::move(dwh));
    }
    AddInPlace(b_.grad, ColumnSum(dz));
    // Input gradient for this step.
    Tensor dxt = Matmul(dz, wx_.value);  // [B, In]
    const float* pdxt = dxt.data();
    for (int64_t bi = 0; bi < batch; ++bi) {
      float* dst = pdx + (bi * steps + t) * input_size_;
      const float* src = pdxt + bi * input_size_;
      for (int64_t f = 0; f < input_size_; ++f) dst[f] = src[f];
    }
    ws::Recycle(std::move(dxt));
    // Hidden gradient carried to t-1.
    ws::Recycle(std::move(dh_next));
    dh_next = Matmul(dz, wh_.value);  // [B, H]
    ws::Recycle(std::move(dz));
  }
  ws::Recycle(std::move(dh_next));
  ws::Recycle(std::move(dc_next));
  return dx;
}

std::vector<Parameter*> Lstm::Params() { return {&wx_, &wh_, &b_}; }

}  // namespace fedmp::nn
