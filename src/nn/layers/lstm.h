#ifndef FEDMP_NN_LAYERS_LSTM_H_
#define FEDMP_NN_LAYERS_LSTM_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace fedmp::nn {

// Single-layer LSTM over [B, T, In] -> [B, T, H] with zero initial state and
// full backpropagation-through-time inside the layer.
//
// Gate order in the stacked weights is (i, f, g, o):
//   Wx [4H, In], Wh [4H, H], b [4H].
// Parameter order: {Wx, Wh, b}. The forget-gate bias is initialized to 1.
class Lstm : public Layer {
 public:
  Lstm(int64_t input_size, int64_t hidden_size, Rng& rng);

  std::string Name() const override;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_, hidden_size_;
  Parameter wx_;  // [4H, In]
  Parameter wh_;  // [4H, H]
  Parameter b_;   // [4H]
  // Per-timestep caches from Forward (index t in [0, T)).
  std::vector<Tensor> cached_x_;      // [B, In]
  std::vector<Tensor> cached_gates_;  // [B, 4H], post-activation (i,f,g,o)
  std::vector<Tensor> cached_c_;      // [B, H] cell state after step t
  std::vector<Tensor> cached_h_;      // [B, H] hidden after step t
  std::vector<Tensor> cached_tanh_c_;
  int64_t cached_batch_ = 0, cached_steps_ = 0;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYERS_LSTM_H_
