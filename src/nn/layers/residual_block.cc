#include "nn/layers/residual_block.h"

#include "common/string_util.h"
#include "nn/tensor_ops.h"

namespace fedmp::nn {

ResidualBlock::ResidualBlock(int64_t channels, int64_t mid_channels, Rng& rng)
    : channels_(channels),
      mid_channels_(mid_channels),
      conv1_(channels, mid_channels, /*kernel=*/3, /*stride=*/1,
             /*padding=*/1, /*has_bias=*/false, rng),
      bn1_(mid_channels),
      conv2_(mid_channels, channels, /*kernel=*/3, /*stride=*/1,
             /*padding=*/1, /*has_bias=*/false, rng),
      bn2_(channels) {}

std::string ResidualBlock::Name() const {
  return StrFormat("ResidualBlock(%lld,mid=%lld)", (long long)channels_,
                   (long long)mid_channels_);
}

Tensor ResidualBlock::Forward(const Tensor& x, bool training) {
  Tensor h = conv1_.Forward(x, training);
  h = bn1_.Forward(h, training);
  h = relu1_.Forward(h, training);
  h = conv2_.Forward(h, training);
  h = bn2_.Forward(h, training);
  AddInPlace(h, x);  // identity skip
  return relu_out_.Forward(h, training);
}

Tensor ResidualBlock::Backward(const Tensor& grad_out) {
  Tensor g = relu_out_.Backward(grad_out);
  // g flows both through the residual branch and the skip.
  Tensor gb = bn2_.Backward(g);
  gb = conv2_.Backward(gb);
  gb = relu1_.Backward(gb);
  gb = bn1_.Backward(gb);
  gb = conv1_.Backward(gb);
  AddInPlace(gb, g);
  return gb;
}

std::vector<Parameter*> ResidualBlock::Params() {
  std::vector<Parameter*> out;
  for (Parameter* p : conv1_.Params()) out.push_back(p);
  for (Parameter* p : bn1_.Params()) out.push_back(p);
  for (Parameter* p : conv2_.Params()) out.push_back(p);
  for (Parameter* p : bn2_.Params()) out.push_back(p);
  return out;
}

}  // namespace fedmp::nn
