#include "nn/layers/conv2d.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "nn/initializers.h"
#include "nn/tensor_ops.h"
#include "nn/workspace.h"

namespace fedmp::nn {

int64_t Conv2d::OutSize(int64_t in, int64_t kernel, int64_t stride,
                        int64_t padding) {
  FEDMP_CHECK_GT(stride, 0);
  const int64_t numer = in + 2 * padding - kernel;
  FEDMP_CHECK_GE(numer, 0) << "kernel larger than padded input";
  return numer / stride + 1;
}

namespace {
// Expands images [b0, b1) into their rows of `cols`. Each image owns a
// disjoint slice of the output, so batch-parallel expansion is race-free
// and bit-identical to the serial loop.
void Im2ColRange(const float* px, float* pc, int64_t b0, int64_t b1,
                 int64_t c, int64_t h, int64_t w, int64_t oh, int64_t ow,
                 int64_t kernel, int64_t stride, int64_t padding) {
  const int64_t patch = c * kernel * kernel;
  for (int64_t b = b0; b < b1; ++b) {
    const float* img = px + b * c * h * w;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float* dst = pc + ((b * oh + oy) * ow + ox) * patch;
        const int64_t iy0 = oy * stride - padding;
        const int64_t ix0 = ox * stride - padding;
        for (int64_t ch = 0; ch < c; ++ch) {
          const float* plane = img + ch * h * w;
          for (int64_t ky = 0; ky < kernel; ++ky) {
            const int64_t iy = iy0 + ky;
            for (int64_t kx = 0; kx < kernel; ++kx) {
              const int64_t ix = ix0 + kx;
              const bool inside = iy >= 0 && iy < h && ix >= 0 && ix < w;
              *dst++ = inside ? plane[iy * w + ix] : 0.0f;
            }
          }
        }
      }
    }
  }
}

// Fast Im2Col (FEDMP_FAST_KERNELS): the inner kx loop of the scalar
// expansion is a contiguous run of the input row clipped against the image
// border. Emitting it as explicit zero-fill + bulk row copy replaces the
// per-element inside test with memcpy-able spans. Pure data movement — the
// output holds exactly the same copied-or-zero values as Im2ColRange, so
// the toggle changes speed, never bits.
void Im2ColRangeFast(const float* px, float* pc, int64_t b0, int64_t b1,
                     int64_t c, int64_t h, int64_t w, int64_t oh, int64_t ow,
                     int64_t kernel, int64_t stride, int64_t padding) {
  const int64_t patch = c * kernel * kernel;
  for (int64_t b = b0; b < b1; ++b) {
    const float* img = px + b * c * h * w;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float* dst = pc + ((b * oh + oy) * ow + ox) * patch;
        const int64_t iy0 = oy * stride - padding;
        const int64_t ix0 = ox * stride - padding;
        // Clip the kx run [ix0, ix0 + kernel) against [0, w).
        const int64_t x_lo = std::max<int64_t>(0, -ix0);
        const int64_t x_hi = std::min<int64_t>(kernel, w - ix0);
        const int64_t run = std::max<int64_t>(0, x_hi - x_lo);
        for (int64_t ch = 0; ch < c; ++ch) {
          const float* plane = img + ch * h * w;
          for (int64_t ky = 0; ky < kernel; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= h || run == 0) {
              std::fill(dst, dst + kernel, 0.0f);
              dst += kernel;
              continue;
            }
            if (x_lo > 0) std::fill(dst, dst + x_lo, 0.0f);
            std::memcpy(dst + x_lo, plane + iy * w + ix0 + x_lo,
                        static_cast<size_t>(run) * sizeof(float));
            if (x_hi < kernel) {
              std::fill(dst + x_hi, dst + kernel, 0.0f);
            }
            dst += kernel;
          }
        }
      }
    }
  }
}
}  // namespace

Tensor Im2Col(const Tensor& x, int64_t kernel, int64_t stride,
              int64_t padding) {
  FEDMP_CHECK_EQ(x.ndim(), 4);
  const int64_t batch = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t oh = Conv2d::OutSize(h, kernel, stride, padding);
  const int64_t ow = Conv2d::OutSize(w, kernel, stride, padding);
  const int64_t patch = c * kernel * kernel;
  Tensor cols = ws::AcquireUninit({batch * oh * ow, patch});
  const bool fast = FastKernelsEnabled();
  ParallelFor(0, batch, 1, [&](int64_t b0, int64_t b1) {
    if (fast) {
      Im2ColRangeFast(x.data(), cols.data(), b0, b1, c, h, w, oh, ow,
                      kernel, stride, padding);
    } else {
      Im2ColRange(x.data(), cols.data(), b0, b1, c, h, w, oh, ow, kernel,
                  stride, padding);
    }
  });
  return cols;
}

Tensor Col2Im(const Tensor& cols, int64_t batch, int64_t channels, int64_t h,
              int64_t w, int64_t kernel, int64_t stride, int64_t padding) {
  const int64_t oh = Conv2d::OutSize(h, kernel, stride, padding);
  const int64_t ow = Conv2d::OutSize(w, kernel, stride, padding);
  const int64_t patch = channels * kernel * kernel;
  FEDMP_CHECK_EQ(cols.ndim(), 2);
  FEDMP_CHECK_EQ(cols.dim(0), batch * oh * ow);
  FEDMP_CHECK_EQ(cols.dim(1), patch);
  Tensor img = ws::AcquireZeroed({batch, channels, h, w});  // scatter-add
  const float* pc = cols.data();
  float* px = img.data();
  // Scatter-adds stay within image b's plane, so batch-parallel is safe.
  ParallelFor(0, batch, 1, [&](int64_t b0, int64_t b1) {
  for (int64_t b = b0; b < b1; ++b) {
    float* out = px + b * channels * h * w;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        const float* src = pc + ((b * oh + oy) * ow + ox) * patch;
        const int64_t iy0 = oy * stride - padding;
        const int64_t ix0 = ox * stride - padding;
        for (int64_t ch = 0; ch < channels; ++ch) {
          float* plane = out + ch * h * w;
          for (int64_t ky = 0; ky < kernel; ++ky) {
            const int64_t iy = iy0 + ky;
            for (int64_t kx = 0; kx < kernel; ++kx) {
              const int64_t ix = ix0 + kx;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                plane[iy * w + ix] += *src;
              }
              ++src;
            }
          }
        }
      }
    }
  }
  });
  return img;
}

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, bool has_bias, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(has_bias) {
  FEDMP_CHECK_GT(in_channels, 0);
  FEDMP_CHECK_GT(out_channels, 0);
  FEDMP_CHECK_GT(kernel, 0);
  Tensor w({out_channels, in_channels, kernel, kernel});
  KaimingUniform(w, in_channels * kernel * kernel, rng);
  weight_ = Parameter("weight", std::move(w));
  if (has_bias_) bias_ = Parameter("bias", Tensor({out_channels}));
}

std::string Conv2d::Name() const {
  return StrFormat("Conv2d(%lld->%lld,k%lld,s%lld,p%lld)",
                   (long long)in_channels_, (long long)out_channels_,
                   (long long)kernel_, (long long)stride_,
                   (long long)padding_);
}

Tensor Conv2d::Forward(const Tensor& x, bool /*training*/) {
  FEDMP_CHECK_EQ(x.ndim(), 4);
  FEDMP_CHECK_EQ(x.dim(1), in_channels_)
      << "Conv2d input channels mismatch: " << x.ShapeString();
  cached_batch_ = x.dim(0);
  cached_h_ = x.dim(2);
  cached_w_ = x.dim(3);
  const int64_t oh = OutSize(cached_h_, kernel_, stride_, padding_);
  const int64_t ow = OutSize(cached_w_, kernel_, stride_, padding_);
  ws::Recycle(std::move(cached_cols_));  // last iteration's buffer
  cached_cols_ = Im2Col(x, kernel_, stride_, padding_);
  // [B*OH*OW, patch] @ [out_c, patch]^T = [B*OH*OW, out_c]. The weight
  // tensor is already [out_c, patch] in row-major memory, so the raw-B
  // matmul uses it directly (Reshape would copy the whole kernel).
  Tensor flat =
      MatmulTransBRaw(cached_cols_, weight_.value.data(), out_channels_);
  // Rearrange [B*OH*OW, out_c] -> [B, out_c, OH, OW], adding bias.
  Tensor y = ws::AcquireUninit({cached_batch_, out_channels_, oh, ow});
  const float* pf = flat.data();
  float* py = y.data();
  const float* pb = has_bias_ ? bias_.value.data() : nullptr;
  for (int64_t b = 0; b < cached_batch_; ++b) {
    for (int64_t s = 0; s < oh * ow; ++s) {
      const float* row = pf + (b * oh * ow + s) * out_channels_;
      for (int64_t o = 0; o < out_channels_; ++o) {
        float v = row[o];
        if (pb != nullptr) v += pb[o];
        py[((b * out_channels_ + o) * oh * ow) + s] = v;
      }
    }
  }
  ws::Recycle(std::move(flat));
  return y;
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  FEDMP_CHECK_EQ(grad_out.ndim(), 4);
  FEDMP_CHECK_EQ(grad_out.dim(0), cached_batch_);
  FEDMP_CHECK_EQ(grad_out.dim(1), out_channels_);
  const int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  // Rearrange dY [B, out_c, OH, OW] -> [B*OH*OW, out_c].
  Tensor dflat = ws::AcquireUninit({cached_batch_ * oh * ow, out_channels_});
  const float* pg = grad_out.data();
  float* pd = dflat.data();
  for (int64_t b = 0; b < cached_batch_; ++b) {
    for (int64_t o = 0; o < out_channels_; ++o) {
      const float* src = pg + (b * out_channels_ + o) * oh * ow;
      for (int64_t s = 0; s < oh * ow; ++s) {
        pd[(b * oh * ow + s) * out_channels_ + o] = src[s];
      }
    }
  }
  // dW = dflat^T @ cols, [out_c, patch] — same flat layout as weight_.grad,
  // so accumulate through raw pointers instead of a Reshape copy.
  Tensor dw = MatmulTransA(dflat, cached_cols_);
  {
    FEDMP_CHECK_EQ(dw.numel(), weight_.grad.numel());
    float* g = weight_.grad.data();
    const float* d = dw.data();
    const int64_t numel = dw.numel();
    for (int64_t i = 0; i < numel; ++i) g[i] += d[i];
  }
  ws::Recycle(std::move(dw));
  if (has_bias_) {
    Tensor db = ColumnSum(dflat);
    AddInPlace(bias_.grad, db);
  }
  // dCols = dflat @ Wmat, [B*OH*OW, patch]; W viewed raw as [out_c, patch].
  const int64_t patch = in_channels_ * kernel_ * kernel_;
  Tensor dcols = MatmulRaw(dflat, weight_.value.data(), patch);
  ws::Recycle(std::move(dflat));
  Tensor dx = Col2Im(dcols, cached_batch_, in_channels_, cached_h_,
                     cached_w_, kernel_, stride_, padding_);
  ws::Recycle(std::move(dcols));
  return dx;
}

std::vector<Parameter*> Conv2d::Params() {
  std::vector<Parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

}  // namespace fedmp::nn
