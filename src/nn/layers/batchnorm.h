#ifndef FEDMP_NN_LAYERS_BATCHNORM_H_
#define FEDMP_NN_LAYERS_BATCHNORM_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace fedmp::nn {

// Per-channel batch normalization over NCHW input.
//
// Simplification vs. framework BN: statistics are always computed from the
// current batch (train and eval). This removes the running-mean/var buffers,
// which would otherwise need their own pruning masks, residuals, and
// aggregation rules in FedMP; evaluation always uses batches large enough for
// stable statistics. Parameter order: {gamma, beta}.
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(int64_t channels, double eps = 1e-5);

  std::string Name() const override;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override;

  int64_t channels() const { return channels_; }

 private:
  int64_t channels_;
  double eps_;
  Parameter gamma_;  // [C], init 1
  Parameter beta_;   // [C], init 0
  // Cached from Forward.
  Tensor cached_xhat_;            // normalized input
  std::vector<double> cached_inv_std_;  // per channel
  int64_t cached_batch_ = 0, cached_h_ = 0, cached_w_ = 0;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_LAYERS_BATCHNORM_H_
