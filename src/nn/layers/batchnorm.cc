#include "nn/layers/batchnorm.h"

#include <cmath>

#include "common/string_util.h"

namespace fedmp::nn {

BatchNorm2d::BatchNorm2d(int64_t channels, double eps)
    : channels_(channels), eps_(eps) {
  FEDMP_CHECK_GT(channels, 0);
  gamma_ = Parameter("gamma", Tensor::Full({channels}, 1.0f));
  beta_ = Parameter("beta", Tensor({channels}));
}

std::string BatchNorm2d::Name() const {
  return StrFormat("BatchNorm2d(%lld)", (long long)channels_);
}

Tensor BatchNorm2d::Forward(const Tensor& x, bool /*training*/) {
  FEDMP_CHECK_EQ(x.ndim(), 4);
  FEDMP_CHECK_EQ(x.dim(1), channels_);
  cached_batch_ = x.dim(0);
  cached_h_ = x.dim(2);
  cached_w_ = x.dim(3);
  const int64_t plane = cached_h_ * cached_w_;
  const int64_t count = cached_batch_ * plane;
  FEDMP_CHECK_GT(count, 0);

  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_.assign(static_cast<size_t>(channels_), 0.0);
  Tensor y(x.shape());

  const float* px = x.data();
  float* pxh = cached_xhat_.data();
  float* py = y.data();
  for (int64_t c = 0; c < channels_; ++c) {
    double mean = 0.0;
    for (int64_t b = 0; b < cached_batch_; ++b) {
      const float* src = px + (b * channels_ + c) * plane;
      for (int64_t s = 0; s < plane; ++s) mean += src[s];
    }
    mean /= static_cast<double>(count);
    double var = 0.0;
    for (int64_t b = 0; b < cached_batch_; ++b) {
      const float* src = px + (b * channels_ + c) * plane;
      for (int64_t s = 0; s < plane; ++s) {
        const double d = src[s] - mean;
        var += d * d;
      }
    }
    var /= static_cast<double>(count);
    const double inv_std = 1.0 / std::sqrt(var + eps_);
    cached_inv_std_[static_cast<size_t>(c)] = inv_std;
    const float g = gamma_.value.at(c);
    const float bta = beta_.value.at(c);
    for (int64_t b = 0; b < cached_batch_; ++b) {
      const float* src = px + (b * channels_ + c) * plane;
      float* xh = pxh + (b * channels_ + c) * plane;
      float* dst = py + (b * channels_ + c) * plane;
      for (int64_t s = 0; s < plane; ++s) {
        const float xhat = static_cast<float>((src[s] - mean) * inv_std);
        xh[s] = xhat;
        dst[s] = g * xhat + bta;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::Backward(const Tensor& grad_out) {
  FEDMP_CHECK(grad_out.SameShape(cached_xhat_))
      << "BatchNorm2d Backward without matching Forward";
  const int64_t plane = cached_h_ * cached_w_;
  const int64_t count = cached_batch_ * plane;
  Tensor dx(grad_out.shape());
  const float* pg = grad_out.data();
  const float* pxh = cached_xhat_.data();
  float* pdx = dx.data();
  for (int64_t c = 0; c < channels_; ++c) {
    // Accumulate dgamma, dbeta and the two reduction terms of the BN
    // gradient in one pass.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int64_t b = 0; b < cached_batch_; ++b) {
      const float* gy = pg + (b * channels_ + c) * plane;
      const float* xh = pxh + (b * channels_ + c) * plane;
      for (int64_t s = 0; s < plane; ++s) {
        sum_dy += gy[s];
        sum_dy_xhat += static_cast<double>(gy[s]) * xh[s];
      }
    }
    gamma_.grad.at(c) += static_cast<float>(sum_dy_xhat);
    beta_.grad.at(c) += static_cast<float>(sum_dy);
    const double g = gamma_.value.at(c);
    const double inv_std = cached_inv_std_[static_cast<size_t>(c)];
    const double inv_count = 1.0 / static_cast<double>(count);
    for (int64_t b = 0; b < cached_batch_; ++b) {
      const float* gy = pg + (b * channels_ + c) * plane;
      const float* xh = pxh + (b * channels_ + c) * plane;
      float* dst = pdx + (b * channels_ + c) * plane;
      for (int64_t s = 0; s < plane; ++s) {
        // dx = gamma*inv_std * (dy - mean(dy) - xhat*mean(dy*xhat)).
        const double term = gy[s] - sum_dy * inv_count -
                            xh[s] * sum_dy_xhat * inv_count;
        dst[s] = static_cast<float>(g * inv_std * term);
      }
    }
  }
  return dx;
}

std::vector<Parameter*> BatchNorm2d::Params() { return {&gamma_, &beta_}; }

}  // namespace fedmp::nn
