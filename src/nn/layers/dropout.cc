#include "nn/layers/dropout.h"

#include "common/string_util.h"

namespace fedmp::nn {

Dropout::Dropout(double p, Rng* rng) : p_(p), rng_(rng) {
  FEDMP_CHECK(p >= 0.0 && p < 1.0) << "dropout p must be in [0,1)";
  FEDMP_CHECK(rng != nullptr);
}

std::string Dropout::Name() const { return StrFormat("Dropout(%.2f)", p_); }

Tensor Dropout::Forward(const Tensor& x, bool training) {
  last_forward_training_ = training;
  if (!training || p_ == 0.0) return x;
  cached_mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  const float* px = x.data();
  float* pm = cached_mask_.data();
  float* py = y.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    const bool keep = rng_->NextDouble() >= p_;
    pm[i] = keep ? keep_scale : 0.0f;
    py[i] = px[i] * pm[i];
  }
  return y;
}

Tensor Dropout::Backward(const Tensor& grad_out) {
  if (!last_forward_training_ || p_ == 0.0) return grad_out;
  FEDMP_CHECK(grad_out.SameShape(cached_mask_))
      << "Dropout Backward without matching Forward";
  Tensor dx(grad_out.shape());
  const float* pg = grad_out.data();
  const float* pm = cached_mask_.data();
  float* pd = dx.data();
  for (int64_t i = 0; i < dx.numel(); ++i) pd[i] = pg[i] * pm[i];
  return dx;
}

}  // namespace fedmp::nn
