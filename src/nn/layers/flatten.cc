#include "nn/layers/flatten.h"

namespace fedmp::nn {

Tensor Flatten::Forward(const Tensor& x, bool /*training*/) {
  FEDMP_CHECK_GE(x.ndim(), 2);
  cached_in_shape_ = x.shape();
  return x.Reshape({x.dim(0), -1});
}

Tensor Flatten::Backward(const Tensor& grad_out) {
  FEDMP_CHECK(!cached_in_shape_.empty())
      << "Flatten Backward without Forward";
  return grad_out.Reshape(cached_in_shape_);
}

Tensor TimeFlatten::Forward(const Tensor& x, bool /*training*/) {
  FEDMP_CHECK_EQ(x.ndim(), 3);
  cached_in_shape_ = x.shape();
  return x.Reshape({x.dim(0) * x.dim(1), x.dim(2)});
}

Tensor TimeFlatten::Backward(const Tensor& grad_out) {
  FEDMP_CHECK(!cached_in_shape_.empty())
      << "TimeFlatten Backward without Forward";
  return grad_out.Reshape(cached_in_shape_);
}

}  // namespace fedmp::nn
