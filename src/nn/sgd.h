#ifndef FEDMP_NN_SGD_H_
#define FEDMP_NN_SGD_H_

#include <vector>

#include "nn/parameter.h"
#include "nn/tensor_ops.h"

namespace fedmp::nn {

struct SgdOptions {
  double learning_rate = 0.01;
  double momentum = 0.0;
  double weight_decay = 0.0;
  // FedProx proximal coefficient mu: adds mu*(w - w_anchor) to the gradient.
  // Active only when a proximal anchor has been set.
  double proximal_mu = 0.0;
  // Gradient clipping by global L2 norm; <= 0 disables. Used by the LSTM LM.
  double clip_norm = 0.0;
};

// Plain SGD with optional momentum, weight decay, gradient clipping and a
// FedProx proximal term. Velocity buffers are lazily sized to the parameter
// list of the first Step(); one Sgd accompanies each (sub-)model, and
// workers that reuse a cached model call Reset() to return it to
// freshly-constructed state between rounds.
class Sgd {
 public:
  explicit Sgd(SgdOptions options);

  const SgdOptions& options() const { return options_; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

  // Returns the optimizer to the state a fresh Sgd(options) would be in,
  // keeping the velocity buffers' storage (zero-filled, bit-identical to the
  // lazily-allocated zeros of a fresh instance) and dropping any anchor.
  void Reset(const SgdOptions& options);

  // Sets the FedProx anchor weights (a copy of the round's initial model).
  void SetProximalAnchor(TensorList anchor);

  // Applies one update to `params` from their accumulated gradients and
  // clears nothing (callers ZeroGrad between batches).
  void Step(const std::vector<Parameter*>& params);

 private:
  SgdOptions options_;
  TensorList velocity_;
  TensorList proximal_anchor_;
  bool has_anchor_ = false;
};

}  // namespace fedmp::nn

#endif  // FEDMP_NN_SGD_H_
