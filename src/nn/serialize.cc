#include "nn/serialize.h"

#include <cstring>
#include <fstream>

namespace fedmp::nn {

namespace {

constexpr uint32_t kTensorMagic = 0x464D5054;  // "FMPT"
constexpr uint32_t kSpecMagic = 0x464D5053;    // "FMPS"
constexpr uint32_t kCkptMagic = 0x464D5043;    // "FMPC"
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

void WriteString(std::ostream& os, const std::string& s) {
  WritePod<uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& is, std::string* s) {
  uint64_t n = 0;
  if (!ReadPod(is, &n)) return false;
  if (n > (1ULL << 30)) return false;  // sanity bound
  s->resize(static_cast<size_t>(n));
  is.read(s->data(), static_cast<std::streamsize>(n));
  return static_cast<bool>(is);
}

}  // namespace

Status WriteTensor(std::ostream& os, const Tensor& t) {
  WritePod(os, kTensorMagic);
  WritePod(os, kVersion);
  WritePod<uint32_t>(os, static_cast<uint32_t>(t.ndim()));
  for (int64_t d : t.shape()) WritePod<int64_t>(os, d);
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!os) return InternalError("tensor write failed");
  return Status::Ok();
}

StatusOr<Tensor> ReadTensor(std::istream& is) {
  uint32_t magic = 0, version = 0, rank = 0;
  if (!ReadPod(is, &magic) || magic != kTensorMagic) {
    return InvalidArgumentError("bad tensor magic");
  }
  if (!ReadPod(is, &version) || version != kVersion) {
    return InvalidArgumentError("unsupported tensor version");
  }
  if (!ReadPod(is, &rank) || rank > 8) {
    return InvalidArgumentError("bad tensor rank");
  }
  std::vector<int64_t> shape(rank);
  int64_t numel = 1;
  for (uint32_t i = 0; i < rank; ++i) {
    if (!ReadPod(is, &shape[i]) || shape[i] < 0 || shape[i] > (1LL << 32)) {
      return InvalidArgumentError("bad tensor dimension");
    }
    numel *= shape[i];
  }
  if (numel > (1LL << 31)) return InvalidArgumentError("tensor too large");
  std::vector<float> data(static_cast<size_t>(numel));
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!is) return InvalidArgumentError("truncated tensor data");
  return Tensor::FromData(std::move(shape), std::move(data));
}

Status WriteTensorList(std::ostream& os, const TensorList& list) {
  WritePod<uint64_t>(os, list.size());
  for (const Tensor& t : list) FEDMP_RETURN_IF_ERROR(WriteTensor(os, t));
  return Status::Ok();
}

StatusOr<TensorList> ReadTensorList(std::istream& is) {
  uint64_t n = 0;
  if (!ReadPod(is, &n) || n > (1ULL << 20)) {
    return InvalidArgumentError("bad tensor list length");
  }
  TensorList out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    FEDMP_ASSIGN_OR_RETURN(Tensor t, ReadTensor(is));
    out.push_back(std::move(t));
  }
  return out;
}

Status WriteModelSpec(std::ostream& os, const ModelSpec& spec) {
  WritePod(os, kSpecMagic);
  WritePod(os, kVersion);
  WriteString(os, spec.name);
  WritePod<int32_t>(os, static_cast<int32_t>(spec.input.kind));
  WritePod<int64_t>(os, spec.input.c);
  WritePod<int64_t>(os, spec.input.h);
  WritePod<int64_t>(os, spec.input.w);
  WritePod<int64_t>(os, spec.input.f);
  WritePod<int64_t>(os, spec.input.t);
  WritePod<int64_t>(os, spec.num_classes);
  WritePod<uint64_t>(os, spec.layers.size());
  for (const LayerSpec& ls : spec.layers) {
    WritePod<int32_t>(os, static_cast<int32_t>(ls.type));
    WritePod<int64_t>(os, ls.in_channels);
    WritePod<int64_t>(os, ls.out_channels);
    WritePod<int64_t>(os, ls.kernel);
    WritePod<int64_t>(os, ls.stride);
    WritePod<int64_t>(os, ls.padding);
    WritePod<uint8_t>(os, ls.bias ? 1 : 0);
    WritePod<double>(os, ls.dropout_p);
    WritePod<int64_t>(os, ls.mid_channels);
    WritePod<int64_t>(os, ls.vocab);
  }
  if (!os) return InternalError("spec write failed");
  return Status::Ok();
}

StatusOr<ModelSpec> ReadModelSpec(std::istream& is) {
  uint32_t magic = 0, version = 0;
  if (!ReadPod(is, &magic) || magic != kSpecMagic) {
    return InvalidArgumentError("bad spec magic");
  }
  if (!ReadPod(is, &version) || version != kVersion) {
    return InvalidArgumentError("unsupported spec version");
  }
  ModelSpec spec;
  if (!ReadString(is, &spec.name)) {
    return InvalidArgumentError("bad spec name");
  }
  int32_t kind = 0;
  if (!ReadPod(is, &kind) || kind < 0 || kind > 3) {
    return InvalidArgumentError("bad input shape kind");
  }
  spec.input.kind = static_cast<ShapeKind>(kind);
  bool ok = ReadPod(is, &spec.input.c) && ReadPod(is, &spec.input.h) &&
            ReadPod(is, &spec.input.w) && ReadPod(is, &spec.input.f) &&
            ReadPod(is, &spec.input.t) && ReadPod(is, &spec.num_classes);
  if (!ok) return InvalidArgumentError("truncated spec header");
  uint64_t n = 0;
  if (!ReadPod(is, &n) || n > 4096) {
    return InvalidArgumentError("bad layer count");
  }
  spec.layers.resize(static_cast<size_t>(n));
  for (auto& ls : spec.layers) {
    int32_t type = 0;
    uint8_t bias = 0;
    ok = ReadPod(is, &type) && ReadPod(is, &ls.in_channels) &&
         ReadPod(is, &ls.out_channels) && ReadPod(is, &ls.kernel) &&
         ReadPod(is, &ls.stride) && ReadPod(is, &ls.padding) &&
         ReadPod(is, &bias) && ReadPod(is, &ls.dropout_p) &&
         ReadPod(is, &ls.mid_channels) && ReadPod(is, &ls.vocab);
    if (!ok || type < 0 || type > static_cast<int32_t>(LayerType::kEmbedding)) {
      return InvalidArgumentError("truncated or invalid layer spec");
    }
    ls.type = static_cast<LayerType>(type);
    ls.bias = bias != 0;
  }
  return spec;
}

Status SaveCheckpoint(const std::string& path, const ModelSpec& spec,
                      const TensorList& weights) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return InternalError("cannot open " + path + " for writing");
  WritePod(os, kCkptMagic);
  WritePod(os, kVersion);
  FEDMP_RETURN_IF_ERROR(WriteModelSpec(os, spec));
  FEDMP_RETURN_IF_ERROR(WriteTensorList(os, weights));
  return Status::Ok();
}

StatusOr<Checkpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return NotFoundError("cannot open " + path);
  uint32_t magic = 0, version = 0;
  if (!ReadPod(is, &magic) || magic != kCkptMagic) {
    return InvalidArgumentError("bad checkpoint magic");
  }
  if (!ReadPod(is, &version) || version != kVersion) {
    return InvalidArgumentError("unsupported checkpoint version");
  }
  Checkpoint ckpt;
  FEDMP_ASSIGN_OR_RETURN(ckpt.spec, ReadModelSpec(is));
  FEDMP_ASSIGN_OR_RETURN(ckpt.weights, ReadTensorList(is));
  return ckpt;
}

}  // namespace fedmp::nn
