#ifndef FEDMP_NN_METRICS_H_
#define FEDMP_NN_METRICS_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace fedmp::nn {

// Fraction of rows of `logits` whose argmax equals the label.
double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

// Perplexity = exp(cross-entropy); the paper's LM metric (Table IV).
double PerplexityFromLoss(double mean_cross_entropy);

// Count of (predicted, actual) pairs as a num_classes^2 row-major matrix.
std::vector<int64_t> ConfusionMatrix(const Tensor& logits,
                                     const std::vector<int64_t>& labels,
                                     int64_t num_classes);

}  // namespace fedmp::nn

#endif  // FEDMP_NN_METRICS_H_
