#ifndef FEDMP_NN_TENSOR_OPS_H_
#define FEDMP_NN_TENSOR_OPS_H_

#include <vector>

#include "nn/tensor.h"

namespace fedmp::nn {

// Elementwise and linear-algebra kernels used by layers and by the FL
// parameter algebra (aggregation, residuals). All functions check shape
// compatibility with FEDMP_CHECK.

// out = a + b (elementwise, same shape).
Tensor Add(const Tensor& a, const Tensor& b);
// out = a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
// out = a * b (Hadamard).
Tensor Mul(const Tensor& a, const Tensor& b);
// out = a * s.
Tensor Scale(const Tensor& a, float s);

// a += alpha * b  (BLAS axpy).
void AxpyInPlace(Tensor& a, float alpha, const Tensor& b);
// a *= s.
void ScaleInPlace(Tensor& a, float s);
// a += b.
void AddInPlace(Tensor& a, const Tensor& b);

// Kernel selection for the matmul hot path. When disabled the matmuls fall
// back to the pre-optimization scalar loops (kept verbatim) so benchmarks
// can compare baseline vs optimized in one process. Both kernel families
// accumulate each output element in the same order, so the toggle changes
// speed, never bits. Defaults to enabled; FEDMP_FAST_KERNELS=0 or
// FEDMP_HOTPATH_BASELINE=1 in the environment disables it until the first
// SetFastKernelsEnabled call.
bool FastKernelsEnabled();
void SetFastKernelsEnabled(bool on);

// C[m,n] = A[m,k] @ B[k,n].
//
// The three matmuls below are cache-blocked and, above a size threshold,
// parallelized over disjoint output-row panels on the global thread pool.
// Per output element the floating-point accumulation order is the same as
// the scalar triple loop at every thread count, so results are
// bit-identical whether run serially or on N threads.
Tensor Matmul(const Tensor& a, const Tensor& b);
// C[m,n] = A[m,k] @ B[n,k]^T — avoids materializing the transpose.
Tensor MatmulTransB(const Tensor& a, const Tensor& b);
// C[k,n] = A[m,k]^T @ B[m,n].
Tensor MatmulTransA(const Tensor& a, const Tensor& b);

// C[m,n] = A[m,k] @ B[k,n] where A is expected to be mostly zeros (masked
// or sparsified operands from the pruning paths). Skips the inner update
// when A's element is exactly 0.0f — a win on sparse A, a per-element
// branch penalty on dense A, which is why the dense kernels above do not
// do it. Matches Matmul bit-for-bit on finite inputs. Cache-blocked and
// panel-parallel like the dense kernels (the zero skip and per-element
// accumulation order are unchanged by the blocking).
Tensor MatmulSparseA(const Tensor& a, const Tensor& b);

// Raw-B variants of the matmuls above: B is a caller-owned row-major buffer
// of n*k (TransB) or k*n floats with k = a.dim(1). They exist so conv can
// view its [out_c, in_c, kh, kw] weight tensor as a matrix without the full
// copy Tensor::Reshape performs. Results are bit-identical to the Tensor
// overloads on the same bytes.
Tensor MatmulTransBRaw(const Tensor& a, const float* b, int64_t n);
Tensor MatmulRaw(const Tensor& a, const float* b, int64_t n);

// 2-D transpose.
Tensor Transpose2D(const Tensor& a);

// Sum of all elements.
double Sum(const Tensor& a);
// Mean of all elements.
double MeanValue(const Tensor& a);
// Sum over rows: [m,n] -> [n].
Tensor ColumnSum(const Tensor& a);
// L2 norm squared of all elements.
double SquaredNorm(const Tensor& a);
// L1 norm of all elements.
double L1Norm(const Tensor& a);

// Row-wise argmax of a [m,n] matrix.
std::vector<int64_t> ArgmaxRows(const Tensor& a);

// max |a_i - b_i| over all elements.
double MaxAbsDiff(const Tensor& a, const Tensor& b);

// True when every element is finite (no NaN / infinity).
bool AllFinite(const Tensor& a);

// ---- Parameter-set algebra (models as flat lists of tensors). ----

using TensorList = std::vector<Tensor>;

// Shapes of all tensors equal?
bool SameShapes(const TensorList& a, const TensorList& b);
// c = a + b per tensor.
TensorList AddLists(const TensorList& a, const TensorList& b);
// c = a - b per tensor.
TensorList SubLists(const TensorList& a, const TensorList& b);
// a += alpha*b per tensor.
void AxpyLists(TensorList& a, float alpha, const TensorList& b);
// a *= s per tensor.
void ScaleLists(TensorList& a, float s);
// Total number of scalar parameters in the list.
int64_t TotalNumel(const TensorList& a);
// sum over tensors of squared L2 norm.
double SquaredNormList(const TensorList& a);
// Every element of every tensor finite?
bool AllFiniteList(const TensorList& a);

}  // namespace fedmp::nn

#endif  // FEDMP_NN_TENSOR_OPS_H_
