#include "nn/gradient_check.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "nn/initializers.h"
#include "nn/tensor_ops.h"

namespace fedmp::nn {

namespace {
// L = sum(w ⊙ y): dL/dy = w, so Backward(w) yields analytic gradients.
double WeightedSum(const Tensor& y, const Tensor& w) {
  double acc = 0.0;
  const float* py = y.data();
  const float* pw = w.data();
  for (int64_t i = 0; i < y.numel(); ++i) {
    acc += static_cast<double>(py[i]) * pw[i];
  }
  return acc;
}
}  // namespace

GradCheckResult CheckLayerGradients(Layer& layer, const Tensor& input,
                                    bool training, double epsilon,
                                    double tolerance, uint64_t seed) {
  GradCheckResult result;
  Rng rng(seed);

  Tensor x = input;
  Tensor y0 = layer.Forward(x, training);
  Tensor loss_w(y0.shape());
  UniformInit(loss_w, -1.0, 1.0, rng);

  for (Parameter* p : layer.Params()) p->ZeroGrad();
  // Re-run forward to be safe re: cached state, then backward.
  y0 = layer.Forward(x, training);
  Tensor dx = layer.Backward(loss_w);

  auto record = [&](const std::string& what, int64_t idx, double analytic,
                    double numeric) {
    // Gradients below ~1e-3 are dominated by fp32 rounding in the central
    // difference; compare those on an absolute scale instead.
    const double denom =
        std::max({std::fabs(analytic), std::fabs(numeric), 1e-3});
    const double rel = std::fabs(analytic - numeric) / denom;
    if (rel > result.max_rel_error) result.max_rel_error = rel;
    if (rel > tolerance && result.passed) {
      result.passed = false;
      result.detail = StrFormat("%s[%lld]: analytic=%.6g numeric=%.6g",
                                what.c_str(), (long long)idx, analytic,
                                numeric);
    }
  };

  // Input gradient: probe a subset of coordinates (all if small).
  const int64_t n_in = x.numel();
  const int64_t stride_in = std::max<int64_t>(1, n_in / 64);
  for (int64_t i = 0; i < n_in; i += stride_in) {
    const float saved = x.at(i);
    x.at(i) = saved + static_cast<float>(epsilon);
    const double lp = WeightedSum(layer.Forward(x, training), loss_w);
    x.at(i) = saved - static_cast<float>(epsilon);
    const double lm = WeightedSum(layer.Forward(x, training), loss_w);
    x.at(i) = saved;
    record("input", i, dx.at(i), (lp - lm) / (2 * epsilon));
  }

  // Parameter gradients.
  for (Parameter* p : layer.Params()) {
    const int64_t n = p->value.numel();
    const int64_t stride = std::max<int64_t>(1, n / 64);
    for (int64_t i = 0; i < n; i += stride) {
      const float saved = p->value.at(i);
      p->value.at(i) = saved + static_cast<float>(epsilon);
      const double lp = WeightedSum(layer.Forward(x, training), loss_w);
      p->value.at(i) = saved - static_cast<float>(epsilon);
      const double lm = WeightedSum(layer.Forward(x, training), loss_w);
      p->value.at(i) = saved;
      record(p->name, i, p->grad.at(i), (lp - lm) / (2 * epsilon));
    }
  }
  return result;
}

}  // namespace fedmp::nn
