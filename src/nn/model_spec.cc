#include "nn/model_spec.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "nn/layers/conv2d.h"

namespace fedmp::nn {

const char* LayerTypeName(LayerType type) {
  switch (type) {
    case LayerType::kConv2d: return "Conv2d";
    case LayerType::kBatchNorm2d: return "BatchNorm2d";
    case LayerType::kReLU: return "ReLU";
    case LayerType::kTanh: return "Tanh";
    case LayerType::kMaxPool2d: return "MaxPool2d";
    case LayerType::kGlobalAvgPool: return "GlobalAvgPool";
    case LayerType::kFlatten: return "Flatten";
    case LayerType::kTimeFlatten: return "TimeFlatten";
    case LayerType::kLinear: return "Linear";
    case LayerType::kDropout: return "Dropout";
    case LayerType::kResidualBlock: return "ResidualBlock";
    case LayerType::kLstm: return "Lstm";
    case LayerType::kEmbedding: return "Embedding";
  }
  return "Unknown";
}

LayerSpec LayerSpec::Conv(int64_t in_c, int64_t out_c, int64_t kernel,
                          int64_t stride, int64_t padding, bool bias) {
  LayerSpec s;
  s.type = LayerType::kConv2d;
  s.in_channels = in_c;
  s.out_channels = out_c;
  s.kernel = kernel;
  s.stride = stride;
  s.padding = padding;
  s.bias = bias;
  return s;
}

LayerSpec LayerSpec::BatchNorm(int64_t channels) {
  LayerSpec s;
  s.type = LayerType::kBatchNorm2d;
  s.out_channels = channels;
  return s;
}

LayerSpec LayerSpec::Relu() {
  LayerSpec s;
  s.type = LayerType::kReLU;
  return s;
}

LayerSpec LayerSpec::TanhAct() {
  LayerSpec s;
  s.type = LayerType::kTanh;
  return s;
}

LayerSpec LayerSpec::MaxPool(int64_t kernel, int64_t stride) {
  LayerSpec s;
  s.type = LayerType::kMaxPool2d;
  s.kernel = kernel;
  s.stride = stride;
  return s;
}

LayerSpec LayerSpec::GlobalPool() {
  LayerSpec s;
  s.type = LayerType::kGlobalAvgPool;
  return s;
}

LayerSpec LayerSpec::Flat() {
  LayerSpec s;
  s.type = LayerType::kFlatten;
  return s;
}

LayerSpec LayerSpec::TimeFlat() {
  LayerSpec s;
  s.type = LayerType::kTimeFlatten;
  return s;
}

LayerSpec LayerSpec::Dense(int64_t in_f, int64_t out_f, bool bias) {
  LayerSpec s;
  s.type = LayerType::kLinear;
  s.in_channels = in_f;
  s.out_channels = out_f;
  s.bias = bias;
  return s;
}

LayerSpec LayerSpec::Drop(double p) {
  LayerSpec s;
  s.type = LayerType::kDropout;
  s.dropout_p = p;
  return s;
}

LayerSpec LayerSpec::Residual(int64_t channels, int64_t mid_channels) {
  LayerSpec s;
  s.type = LayerType::kResidualBlock;
  s.in_channels = channels;
  s.out_channels = channels;
  s.mid_channels = mid_channels;
  return s;
}

LayerSpec LayerSpec::LstmLayer(int64_t input_size, int64_t hidden_size) {
  LayerSpec s;
  s.type = LayerType::kLstm;
  s.in_channels = input_size;
  s.out_channels = hidden_size;
  return s;
}

LayerSpec LayerSpec::Embed(int64_t vocab, int64_t dim) {
  LayerSpec s;
  s.type = LayerType::kEmbedding;
  s.vocab = vocab;
  s.out_channels = dim;
  return s;
}

bool LayerSpec::operator==(const LayerSpec& other) const {
  return type == other.type && in_channels == other.in_channels &&
         out_channels == other.out_channels && kernel == other.kernel &&
         stride == other.stride && padding == other.padding &&
         bias == other.bias && dropout_p == other.dropout_p &&
         mid_channels == other.mid_channels && vocab == other.vocab;
}

std::string ValueShape::ToString() const {
  switch (kind) {
    case ShapeKind::kImage:
      return StrFormat("image[%lld,%lld,%lld]", (long long)c, (long long)h,
                       (long long)w);
    case ShapeKind::kFeatures:
      return StrFormat("features[%lld]", (long long)f);
    case ShapeKind::kTokens:
      return StrFormat("tokens[%lld]", (long long)t);
    case ShapeKind::kSequence:
      return StrFormat("sequence[%lld,%lld]", (long long)t, (long long)f);
  }
  return "?";
}

namespace {

Status AnalyzeLayer(const LayerSpec& layer, const ValueShape& in,
                    LayerAnalysis* out) {
  out->input = in;
  ValueShape& o = out->output;
  o = in;
  out->params = 0;
  out->forward_flops = 0;
  switch (layer.type) {
    case LayerType::kConv2d: {
      if (in.kind != ShapeKind::kImage) {
        return InvalidArgumentError("Conv2d expects image input, got " +
                                    in.ToString());
      }
      if (in.c != layer.in_channels) {
        return InvalidArgumentError(StrFormat(
            "Conv2d in_channels %lld != incoming %lld",
            (long long)layer.in_channels, (long long)in.c));
      }
      const int64_t oh =
          Conv2d::OutSize(in.h, layer.kernel, layer.stride, layer.padding);
      const int64_t ow =
          Conv2d::OutSize(in.w, layer.kernel, layer.stride, layer.padding);
      o.c = layer.out_channels;
      o.h = oh;
      o.w = ow;
      const int64_t patch = layer.in_channels * layer.kernel * layer.kernel;
      out->params = layer.out_channels * patch +
                    (layer.bias ? layer.out_channels : 0);
      out->forward_flops =
          2 * patch * layer.out_channels * oh * ow +
          (layer.bias ? layer.out_channels * oh * ow : 0);
      return Status::Ok();
    }
    case LayerType::kBatchNorm2d: {
      if (in.kind != ShapeKind::kImage || in.c != layer.out_channels) {
        return InvalidArgumentError(
            "BatchNorm2d channel mismatch with incoming " + in.ToString());
      }
      out->params = 2 * layer.out_channels;
      out->forward_flops = 4 * in.c * in.h * in.w;
      return Status::Ok();
    }
    case LayerType::kReLU:
    case LayerType::kTanh: {
      int64_t n = 0;
      switch (in.kind) {
        case ShapeKind::kImage: n = in.c * in.h * in.w; break;
        case ShapeKind::kFeatures: n = in.f; break;
        case ShapeKind::kSequence: n = in.t * in.f; break;
        case ShapeKind::kTokens:
          return InvalidArgumentError("activation on raw tokens");
      }
      out->forward_flops = n;
      return Status::Ok();
    }
    case LayerType::kMaxPool2d: {
      if (in.kind != ShapeKind::kImage) {
        return InvalidArgumentError("MaxPool2d expects image input");
      }
      o.h = Conv2d::OutSize(in.h, layer.kernel, layer.stride, 0);
      o.w = Conv2d::OutSize(in.w, layer.kernel, layer.stride, 0);
      out->forward_flops = o.c * o.h * o.w * layer.kernel * layer.kernel;
      return Status::Ok();
    }
    case LayerType::kGlobalAvgPool: {
      if (in.kind != ShapeKind::kImage) {
        return InvalidArgumentError("GlobalAvgPool expects image input");
      }
      o.kind = ShapeKind::kFeatures;
      o.f = in.c;
      out->forward_flops = in.c * in.h * in.w;
      return Status::Ok();
    }
    case LayerType::kFlatten: {
      if (in.kind != ShapeKind::kImage) {
        return InvalidArgumentError("Flatten expects image input");
      }
      o.kind = ShapeKind::kFeatures;
      o.f = in.c * in.h * in.w;
      return Status::Ok();
    }
    case LayerType::kTimeFlatten: {
      if (in.kind != ShapeKind::kSequence) {
        return InvalidArgumentError("TimeFlatten expects sequence input");
      }
      o.kind = ShapeKind::kFeatures;
      o.f = in.f;  // batch dimension absorbs T
      return Status::Ok();
    }
    case LayerType::kLinear: {
      if (in.kind != ShapeKind::kFeatures || in.f != layer.in_channels) {
        return InvalidArgumentError(StrFormat(
            "Linear in_features %lld incompatible with incoming %s",
            (long long)layer.in_channels, in.ToString().c_str()));
      }
      o.f = layer.out_channels;
      out->params = layer.in_channels * layer.out_channels +
                    (layer.bias ? layer.out_channels : 0);
      out->forward_flops = 2 * layer.in_channels * layer.out_channels +
                           (layer.bias ? layer.out_channels : 0);
      return Status::Ok();
    }
    case LayerType::kDropout:
      return Status::Ok();
    case LayerType::kResidualBlock: {
      if (in.kind != ShapeKind::kImage || in.c != layer.in_channels) {
        return InvalidArgumentError(
            "ResidualBlock channel mismatch with incoming " + in.ToString());
      }
      const int64_t c = layer.in_channels, m = layer.mid_channels;
      const int64_t plane = in.h * in.w;
      out->params = (c * m * 9) + 2 * m + (m * c * 9) + 2 * c;
      out->forward_flops = 2 * 9 * c * m * plane * 2  // two convs
                           + 4 * (m + c) * plane      // two BNs
                           + 3 * c * plane;           // add + ReLUs
      return Status::Ok();
    }
    case LayerType::kLstm: {
      if (in.kind != ShapeKind::kSequence || in.f != layer.in_channels) {
        return InvalidArgumentError(
            "Lstm input mismatch with incoming " + in.ToString());
      }
      const int64_t hs = layer.out_channels, is = layer.in_channels;
      o.f = hs;
      out->params = 4 * hs * (is + hs) + 4 * hs;
      out->forward_flops = in.t * (2 * 4 * hs * (is + hs) + 10 * hs);
      return Status::Ok();
    }
    case LayerType::kEmbedding: {
      if (in.kind != ShapeKind::kTokens) {
        return InvalidArgumentError("Embedding expects token input");
      }
      o.kind = ShapeKind::kSequence;
      o.t = in.t;
      o.f = layer.out_channels;
      out->params = layer.vocab * layer.out_channels;
      out->forward_flops = in.t * layer.out_channels;
      return Status::Ok();
    }
  }
  return InternalError("unhandled layer type");
}

}  // namespace

Status ModelSpec::Analyze(ModelAnalysis* out) const {
  out->layers.clear();
  out->total_params = 0;
  out->total_forward_flops = 0;
  ValueShape shape = input;
  for (size_t i = 0; i < layers.size(); ++i) {
    LayerAnalysis la;
    Status s = AnalyzeLayer(layers[i], shape, &la);
    if (!s.ok()) {
      return Status(s.code(), StrFormat("layer %zu (%s): %s", i,
                                        LayerTypeName(layers[i].type),
                                        s.message().c_str()));
    }
    shape = la.output;
    out->total_params += la.params;
    out->total_forward_flops += la.forward_flops;
    out->layers.push_back(la);
  }
  if (shape.kind != ShapeKind::kFeatures || shape.f != num_classes) {
    return InvalidArgumentError(StrFormat(
        "model output %s does not match num_classes %lld",
        shape.ToString().c_str(), (long long)num_classes));
  }
  return Status::Ok();
}

int64_t ModelSpec::NumParams() const {
  ModelAnalysis a;
  Status s = Analyze(&a);
  FEDMP_CHECK(s.ok()) << "NumParams on malformed spec: " << s;
  return a.total_params;
}

int64_t ModelSpec::ForwardFlopsPerSample() const {
  ModelAnalysis a;
  Status s = Analyze(&a);
  FEDMP_CHECK(s.ok()) << "ForwardFlopsPerSample on malformed spec: " << s;
  return a.total_forward_flops;
}

bool ModelSpec::operator==(const ModelSpec& other) const {
  return name == other.name && input.kind == other.input.kind &&
         input.c == other.input.c && input.h == other.input.h &&
         input.w == other.input.w && input.f == other.input.f &&
         input.t == other.input.t && num_classes == other.num_classes &&
         layers == other.layers;
}

}  // namespace fedmp::nn
