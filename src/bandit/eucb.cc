#include "bandit/eucb.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "obs/metrics.h"

namespace fedmp::bandit {

EucbAgent::EucbAgent(const EucbOptions& options, uint64_t seed)
    : options_(options),
      tree_(options.ratio_lo, options.ratio_hi, options.theta),
      rng_(seed) {
  FEDMP_CHECK(options.lambda > 0.0 && options.lambda < 1.0);
  FEDMP_CHECK_GE(options.ratio_lo, 0.0);
  FEDMP_CHECK_LE(options.ratio_hi, 1.0);
}

double EucbAgent::DiscountedCount(size_t index) const {
  const Interval& leaf = tree_.leaves()[index];
  double count = 0.0;
  const size_t k = history_.size();
  for (size_t s = 0; s < k; ++s) {
    if (!history_[s].rewarded) continue;
    if (leaf.Contains(history_[s].ratio)) {
      count += std::pow(options_.lambda, static_cast<double>(k - s));
    }
  }
  return count;
}

double EucbAgent::DiscountedMean(size_t index) const {
  const Interval& leaf = tree_.leaves()[index];
  double count = 0.0, sum = 0.0;
  const size_t k = history_.size();
  for (size_t s = 0; s < k; ++s) {
    if (!history_[s].rewarded) continue;
    if (leaf.Contains(history_[s].ratio)) {
      const double w = std::pow(options_.lambda, static_cast<double>(k - s));
      count += w;
      sum += w * history_[s].reward;
    }
  }
  return count > 0.0 ? sum / count : 0.0;
}

double EucbAgent::UpperConfidence(size_t index) const {
  const double count = DiscountedCount(index);
  if (count <= 0.0) return std::numeric_limits<double>::infinity();
  // n_k(lambda): total discounted pulls across all leaves.
  double total = 0.0;
  const size_t k = history_.size();
  for (size_t s = 0; s < k; ++s) {
    if (!history_[s].rewarded) continue;
    total += std::pow(options_.lambda, static_cast<double>(k - s));
  }
  const double padding =
      options_.exploration_coef *
      std::sqrt(2.0 * std::log(std::max(total, 1.000001)) / count);
  return DiscountedMean(index) + padding;
}

double EucbAgent::SelectRatio() {
  FEDMP_CHECK(!awaiting_reward_)
      << "SelectRatio called twice without ObserveReward";
  // Choose the leaf with the largest UCB (ties uniformly at random).
  double best = -std::numeric_limits<double>::infinity();
  std::vector<size_t> best_leaves;
  for (size_t j = 0; j < tree_.num_leaves(); ++j) {
    const double u = UpperConfidence(j);
    if (u > best) {
      best = u;
      best_leaves.assign(1, j);
    } else if (u == best) {
      best_leaves.push_back(j);
    }
  }
  const size_t chosen =
      best_leaves[rng_.NextIndex(best_leaves.size())];
  const Interval leaf = tree_.leaves()[chosen];
  // All arms inside the chosen region are treated alike: sample uniformly.
  const double ratio = rng_.Uniform(leaf.lo, leaf.hi);
  // Decision-audit capture, before the split below mutates the tree. The
  // O(history) re-derivation only runs on telemetry-enabled runs.
  last_audit_.valid = obs::Enabled();
  if (last_audit_.valid) {
    last_audit_.ratio = ratio;
    last_audit_.leaf_lo = leaf.lo;
    last_audit_.leaf_hi = leaf.hi;
    last_audit_.count = DiscountedCount(chosen);
    last_audit_.mean = DiscountedMean(chosen);
    last_audit_.ucb = best;
    last_audit_.padding =
        last_audit_.count > 0.0
            ? best - last_audit_.mean
            : std::numeric_limits<double>::infinity();
    double total = 0.0;
    const size_t k = history_.size();
    for (size_t s = 0; s < k; ++s) {
      if (!history_[s].rewarded) continue;
      total += std::pow(options_.lambda, static_cast<double>(k - s));
    }
    last_audit_.total = total;
    last_audit_.depth = tree_.MaxDepth();
    last_audit_.leaves = static_cast<int>(tree_.num_leaves());
  }
  // Grow the tree at the chosen arm while diameters exceed theta, once the
  // leaf has accumulated enough pulls to justify refinement.
  pull_counts_.resize(tree_.num_leaves(), 0);
  if (++pull_counts_[chosen] >= options_.min_pulls_to_split) {
    if (tree_.SplitAt(chosen, ratio)) {
      // The split leaf's raw-pull counter restarts for both halves.
      pull_counts_[chosen] = 0;
      pull_counts_.insert(pull_counts_.begin() +
                              static_cast<std::ptrdiff_t>(chosen) + 1, 0);
    }
  }
  history_.push_back(Pull{ratio, 0.0, false});
  awaiting_reward_ = true;
  return ratio;
}

void EucbAgent::ObserveReward(double reward) {
  FEDMP_CHECK(awaiting_reward_) << "ObserveReward without SelectRatio";
  history_.back().reward = reward;
  history_.back().rewarded = true;
  awaiting_reward_ = false;
}

}  // namespace fedmp::bandit
