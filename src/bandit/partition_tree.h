#ifndef FEDMP_BANDIT_PARTITION_TREE_H_
#define FEDMP_BANDIT_PARTITION_TREE_H_

#include <cstddef>
#include <vector>

namespace fedmp::bandit {

// A half-open interval of the continuous arm space.
struct Interval {
  double lo = 0.0;
  double hi = 1.0;

  double diameter() const { return hi - lo; }
  bool Contains(double v) const { return v >= lo && v < hi; }
};

// The leaves of E-UCB's incremental regression tree: a sequence of finite
// partitions of [lo, hi). Starts as the single region [lo, hi); regions
// split at chosen arms until their diameter drops below theta (§IV-C,
// Algorithm 1 lines 7-9). Only the leaf set is materialized — interior
// nodes carry no state in Algorithm 1.
class PartitionTree {
 public:
  // theta: the pruning-granularity stop threshold.
  PartitionTree(double lo, double hi, double theta);

  const std::vector<Interval>& leaves() const { return leaves_; }
  size_t num_leaves() const { return leaves_.size(); }
  double theta() const { return theta_; }

  // Index of the leaf containing v (v must lie in [lo, hi)).
  size_t LeafIndex(double v) const;

  // Splits leaf `index` at `at` into [lo, at) and [at, hi). No-op (returns
  // false) when the leaf's diameter is already <= theta or `at` would
  // create an empty half.
  bool SplitAt(size_t index, double at);

  // Invariant check: leaves sorted, disjoint, covering [lo, hi).
  bool CoversDomain() const;

  // Implied depth of the deepest leaf: ceil(log2(domain diameter / leaf
  // diameter)); 0 for the unsplit root. Telemetry/diagnostics only —
  // interior nodes are not materialized, so this is reconstructed from
  // leaf diameters.
  int MaxDepth() const;

 private:
  double lo_, hi_, theta_;
  std::vector<Interval> leaves_;  // sorted by lo
};

}  // namespace fedmp::bandit

#endif  // FEDMP_BANDIT_PARTITION_TREE_H_
