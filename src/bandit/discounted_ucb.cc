#include "bandit/discounted_ucb.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace fedmp::bandit {

DiscountedUcb::DiscountedUcb(int64_t num_arms, double lambda, uint64_t seed)
    : num_arms_(num_arms), lambda_(lambda), rng_(seed) {
  FEDMP_CHECK_GT(num_arms, 0);
  FEDMP_CHECK(lambda > 0.0 && lambda < 1.0);
}

double DiscountedUcb::DiscountedCount(int64_t arm) const {
  double count = 0.0;
  const size_t k = history_.size();
  for (size_t s = 0; s < k; ++s) {
    if (history_[s].arm == arm) {
      count += std::pow(lambda_, static_cast<double>(k - s));
    }
  }
  return count;
}

double DiscountedUcb::DiscountedMean(int64_t arm) const {
  double count = 0.0, sum = 0.0;
  const size_t k = history_.size();
  for (size_t s = 0; s < k; ++s) {
    if (history_[s].arm == arm) {
      const double w = std::pow(lambda_, static_cast<double>(k - s));
      count += w;
      sum += w * history_[s].reward;
    }
  }
  return count > 0.0 ? sum / count : 0.0;
}

double DiscountedUcb::UpperConfidence(int64_t arm) const {
  const double count = DiscountedCount(arm);
  if (count <= 0.0) return std::numeric_limits<double>::infinity();
  double total = 0.0;
  const size_t k = history_.size();
  for (size_t s = 0; s < k; ++s) {
    total += std::pow(lambda_, static_cast<double>(k - s));
  }
  return DiscountedMean(arm) +
         std::sqrt(2.0 * std::log(std::max(total, 1.000001)) / count);
}

int64_t DiscountedUcb::SelectArm() {
  FEDMP_CHECK_EQ(pending_arm_, -1)
      << "SelectArm called twice without Observe";
  double best = -std::numeric_limits<double>::infinity();
  std::vector<int64_t> best_arms;
  for (int64_t a = 0; a < num_arms_; ++a) {
    const double u = UpperConfidence(a);
    if (u > best) {
      best = u;
      best_arms.assign(1, a);
    } else if (u == best) {
      best_arms.push_back(a);
    }
  }
  pending_arm_ = best_arms[rng_.NextIndex(best_arms.size())];
  return pending_arm_;
}

void DiscountedUcb::Observe(double reward) {
  FEDMP_CHECK_NE(pending_arm_, -1) << "Observe without SelectArm";
  history_.push_back(Pull{pending_arm_, reward});
  pending_arm_ = -1;
}

}  // namespace fedmp::bandit
