#ifndef FEDMP_BANDIT_EUCB_H_
#define FEDMP_BANDIT_EUCB_H_

#include <cstdint>
#include <vector>

#include "bandit/partition_tree.h"
#include "common/rng.h"

namespace fedmp::bandit {

struct EucbOptions {
  // Pruning-granularity theta: leaves stop splitting below this diameter.
  // The paper finds [0.01, 0.05] near-optimal (Fig. 4).
  double theta = 0.05;
  // Discount factor lambda of Eqs. (9)-(10); paper default 0.95 [40].
  double lambda = 0.98;
  // Explored arm domain [lo, hi). The paper bounds ratios in [0, 1); the
  // default hi of 0.9 keeps sub-models from collapsing to single units.
  double ratio_lo = 0.0;
  double ratio_hi = 0.7;
  // Multiplier on the Eq. (10) padding term. The paper's padding assumes
  // unit-scale rewards; squashed Eq. (8) rewards live well inside (-1, 1),
  // so a smaller coefficient balances exploration/exploitation. Ablated in
  // bench_ablation_discount.
  double exploration_coef = 0.02;
  // A leaf must be pulled this many times before it splits. Algorithm 1
  // splits at every pull; on short horizons that grows the leaf set past
  // what the discounted statistics can track, so growth is throttled.
  // Set to 1 for the paper's immediate-split behaviour.
  int min_pulls_to_split = 4;
};

// Decision context of the most recent SelectRatio(), captured at decision
// time (before the tree splits) so telemetry can log exactly what the
// agent saw. Populated only while obs telemetry is enabled; `valid` stays
// false otherwise so the hot path pays nothing.
struct SelectionAudit {
  bool valid = false;
  double ratio = 0.0;          // sampled arm
  double leaf_lo = 0.0;        // chosen leaf interval
  double leaf_hi = 0.0;
  double count = 0.0;          // discounted N_k (0: never-pulled leaf)
  double mean = 0.0;           // discounted empirical mean (Eq. 9)
  double padding = 0.0;        // Eq. 10 padding (+inf on never-pulled)
  double ucb = 0.0;            // Eq. 11 score (+inf on never-pulled)
  double total = 0.0;          // total discounted pulls n(lambda)
  int depth = 0;               // tree MaxDepth at decision time
  int leaves = 0;              // leaf count at decision time
};

// Extended Upper Confidence Bound agent (Algorithm 1): one per worker.
// Each round: SelectRatio() picks the leaf maximizing the discounted UCB,
// samples an arm uniformly inside it, and grows the tree; after the FL round
// completes, ObserveReward() records the Eq. (8) reward for that arm.
class EucbAgent {
 public:
  EucbAgent(const EucbOptions& options, uint64_t seed);

  // Algorithm 1 lines 3-9. Never-pulled leaves have infinite UCB and are
  // explored first (ties broken uniformly at random).
  double SelectRatio();

  // Records the reward for the most recent SelectRatio(); advances the
  // round counter used by the discounted statistics.
  void ObserveReward(double reward);

  // Discounted statistics of leaf `index` at the current round:
  // Eq. (9) empirical mean, Eq. (10) padding, and their sum Eq. (11).
  // Never-pulled leaves report +infinity for the UCB.
  double DiscountedCount(size_t index) const;    // N_k(lambda, P)
  double DiscountedMean(size_t index) const;     // R-bar_k(lambda, P)
  double UpperConfidence(size_t index) const;    // U_k(P)

  const PartitionTree& tree() const { return tree_; }
  int64_t num_pulls() const { return static_cast<int64_t>(history_.size()); }
  const EucbOptions& options() const { return options_; }

  // Context of the most recent SelectRatio() (telemetry-enabled runs only;
  // check .valid).
  const SelectionAudit& last_audit() const { return last_audit_; }

 private:
  struct Pull {
    double ratio = 0.0;
    double reward = 0.0;
    bool rewarded = false;
  };

  EucbOptions options_;
  PartitionTree tree_;
  Rng rng_;
  std::vector<Pull> history_;
  std::vector<int> pull_counts_;  // raw pulls per current leaf (for splits)
  bool awaiting_reward_ = false;
  SelectionAudit last_audit_;
};

}  // namespace fedmp::bandit

#endif  // FEDMP_BANDIT_EUCB_H_
