#include "bandit/reward.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fedmp::bandit {

double FedMpReward(double delta_loss, double completion_time,
                   double mean_time, const RewardOptions& options) {
  FEDMP_CHECK_GT(mean_time, 0.0);
  FEDMP_CHECK_GE(completion_time, 0.0);
  // A round that made no local progress earns no reward; without this
  // clamp, noisy negative loss deltas amplified by a small time gap would
  // penalize exactly the arms Eq. (8) is meant to favour.
  delta_loss = std::max(delta_loss, 0.0);
  double gap = std::fabs(completion_time - mean_time);
  double floor = options.epsilon_frac * mean_time;
  if (options.relative_gap) {
    gap /= mean_time;
    floor = options.epsilon_frac;
  }
  return delta_loss / std::max(gap, floor);
}

double TimeOnlyReward(double completion_time) {
  FEDMP_CHECK_GT(completion_time, 0.0);
  return 1.0 / completion_time;
}

}  // namespace fedmp::bandit
