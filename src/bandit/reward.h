#ifndef FEDMP_BANDIT_REWARD_H_
#define FEDMP_BANDIT_REWARD_H_

namespace fedmp::bandit {

struct RewardOptions {
  // Eq. (8) divides by |T_n - mean(T)|, which explodes as a worker's
  // completion time approaches the average. The (relative) denominator is
  // clamped at epsilon_frac; the clamp is ablated in bench_ablation_reward.
  double epsilon_frac = 0.05;
  // Use the relative gap |T_n - mean| / mean instead of the absolute gap.
  // Eq. (8) up to a constant per round, but scale-free: rewards stay
  // comparable across rounds as absolute times shrink with pruning.
  bool relative_gap = true;
};

// The E-UCB reward of Eq. (8):
//   R(alpha) = delta_loss / |T_n - mean(T)|
// delta_loss: the worker's loss decrease this round (its contribution to
// convergence). completion_time: T_n. mean_time: (1/N) sum of all T_n'.
double FedMpReward(double delta_loss, double completion_time,
                   double mean_time, const RewardOptions& options = {});

// The naive time-only reward used as the ablation baseline: 1 / T_n.
double TimeOnlyReward(double completion_time);

}  // namespace fedmp::bandit

#endif  // FEDMP_BANDIT_REWARD_H_
