#include "bandit/partition_tree.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fedmp::bandit {

PartitionTree::PartitionTree(double lo, double hi, double theta)
    : lo_(lo), hi_(hi), theta_(theta) {
  FEDMP_CHECK_LT(lo, hi);
  FEDMP_CHECK_GT(theta, 0.0);
  leaves_.push_back(Interval{lo, hi});
}

size_t PartitionTree::LeafIndex(double v) const {
  FEDMP_CHECK(v >= lo_ && v < hi_) << "arm " << v << " outside domain";
  // Leaves are sorted by lo; binary-search the last leaf with lo <= v.
  size_t left = 0, right = leaves_.size() - 1;
  while (left < right) {
    const size_t mid = (left + right + 1) / 2;
    if (leaves_[mid].lo <= v) {
      left = mid;
    } else {
      right = mid - 1;
    }
  }
  FEDMP_CHECK(leaves_[left].Contains(v));
  return left;
}

bool PartitionTree::SplitAt(size_t index, double at) {
  FEDMP_CHECK_LT(index, leaves_.size());
  Interval leaf = leaves_[index];
  if (leaf.diameter() <= theta_) return false;
  if (at <= leaf.lo || at >= leaf.hi) return false;
  leaves_[index] = Interval{leaf.lo, at};
  leaves_.insert(leaves_.begin() + static_cast<std::ptrdiff_t>(index) + 1,
                 Interval{at, leaf.hi});
  return true;
}

int PartitionTree::MaxDepth() const {
  const double domain = hi_ - lo_;
  int depth = 0;
  for (const Interval& leaf : leaves_) {
    if (leaf.diameter() <= 0.0) continue;
    // Tolerance absorbs the off-midpoint splits Algorithm 1 makes.
    const int d = static_cast<int>(
        std::ceil(std::log2(domain / leaf.diameter()) - 1e-9));
    depth = std::max(depth, d);
  }
  return depth;
}

bool PartitionTree::CoversDomain() const {
  double cursor = lo_;
  for (const Interval& leaf : leaves_) {
    if (std::fabs(leaf.lo - cursor) > 1e-12) return false;
    if (leaf.hi <= leaf.lo) return false;
    cursor = leaf.hi;
  }
  return std::fabs(cursor - hi_) < 1e-12;
}

}  // namespace fedmp::bandit
