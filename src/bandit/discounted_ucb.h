#ifndef FEDMP_BANDIT_DISCOUNTED_UCB_H_
#define FEDMP_BANDIT_DISCOUNTED_UCB_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fedmp::bandit {

// Classic discounted UCB over a finite arm set (Garivier & Moulines [40]).
// Used by the UP-FL baseline to pick its round-uniform pruning ratio from a
// fixed grid, and as the discrete reference point E-UCB is compared against
// in the ablation benches.
class DiscountedUcb {
 public:
  DiscountedUcb(int64_t num_arms, double lambda, uint64_t seed);

  // Arm with the largest discounted UCB; unpulled arms first.
  int64_t SelectArm();

  // Reward for the most recent SelectArm().
  void Observe(double reward);

  double DiscountedCount(int64_t arm) const;
  double DiscountedMean(int64_t arm) const;
  double UpperConfidence(int64_t arm) const;
  int64_t num_arms() const { return num_arms_; }

 private:
  struct Pull {
    int64_t arm = 0;
    double reward = 0.0;
  };

  int64_t num_arms_;
  double lambda_;
  Rng rng_;
  std::vector<Pull> history_;
  int64_t pending_arm_ = -1;
};

}  // namespace fedmp::bandit

#endif  // FEDMP_BANDIT_DISCOUNTED_UCB_H_
