#ifndef FEDMP_COMMON_CSV_H_
#define FEDMP_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace fedmp {

// Column-ordered in-memory table used by the bench harness to emit the rows
// and series each paper table/figure reports. Cells are stored as strings.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  // Appends a row; must match the header width.
  Status AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with 4 decimals.
  Status AddRow(const std::vector<double>& cells);

  // Writes RFC-4180-ish CSV (fields containing ',' or '"' are quoted).
  void WriteCsv(std::ostream& os) const;

  // Writes an aligned, human-readable console table.
  void WritePretty(std::ostream& os) const;

  // Writes the CSV to `path`, creating parent-less files only.
  Status WriteCsvFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fedmp

#endif  // FEDMP_COMMON_CSV_H_
