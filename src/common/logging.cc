#include "common/logging.h"

#include <cstdio>

namespace fedmp {

namespace {
LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

// Strips the directory part so logs read "tensor.cc:42" not a full path.
const char* Basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : file_(file), line_(line), severity_(severity) {}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityTag(severity_),
                 Basename(file_), line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace fedmp
