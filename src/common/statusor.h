#ifndef FEDMP_COMMON_STATUSOR_H_
#define FEDMP_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace fedmp {

// Holds either a value of type T or a non-OK Status, mirroring absl::StatusOr.
// Accessing the value of a non-OK StatusOr is a fatal programmer error.
template <typename T>
class StatusOr {
 public:
  // Implicit conversions from T and Status make `return value;` and
  // `return InvalidArgumentError(...);` both work, matching absl usage.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    FEDMP_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    FEDMP_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    FEDMP_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    FEDMP_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Assigns the value of a StatusOr expression to `lhs`, or propagates the
// error status to the caller.
#define FEDMP_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto FEDMP_CONCAT_(_statusor_, __LINE__) = (expr);       \
  if (!FEDMP_CONCAT_(_statusor_, __LINE__).ok())           \
    return FEDMP_CONCAT_(_statusor_, __LINE__).status();   \
  lhs = std::move(FEDMP_CONCAT_(_statusor_, __LINE__)).value()

#define FEDMP_CONCAT_IMPL_(a, b) a##b
#define FEDMP_CONCAT_(a, b) FEDMP_CONCAT_IMPL_(a, b)

}  // namespace fedmp

#endif  // FEDMP_COMMON_STATUSOR_H_
