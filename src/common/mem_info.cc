#include "common/mem_info.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fedmp {

namespace {

// Reads a "<key>:  <kB> kB" line from /proc/self/status; -1 when absent
// (non-Linux hosts).
int64_t ProcStatusKb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int64_t out = -1;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      long long kb = -1;
      if (std::sscanf(line + key_len + 1, "%lld", &kb) == 1) out = kb;
      break;
    }
  }
  std::fclose(f);
  return out;
}

}  // namespace

int64_t PeakRssBytes() {
  const int64_t kb = ProcStatusKb("VmHWM");
  if (kb >= 0) return kb * 1024;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<int64_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

int64_t CurrentRssBytes() {
  const int64_t kb = ProcStatusKb("VmRSS");
  return kb >= 0 ? kb * 1024 : 0;
}

}  // namespace fedmp
