#include "common/mem_info.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fedmp {

namespace internal {

int64_t ParseStatusKb(const char* text, const char* key) {
  if (text == nullptr || key == nullptr) return -1;
  const size_t key_len = std::strlen(key);
  if (key_len == 0) return -1;
  const char* line = text;
  while (*line != '\0') {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      long long kb = -1;
      if (std::sscanf(line + key_len + 1, "%lld", &kb) == 1 && kb >= 0) {
        return kb;
      }
      return -1;  // key present but value malformed
    }
    const char* next = std::strchr(line, '\n');
    if (next == nullptr) break;
    line = next + 1;
  }
  return -1;
}

int64_t StatusFileKb(const char* path, const char* key) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return -1;
  char line[256];
  int64_t out = -1;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      out = ParseStatusKb(line, key);
      break;
    }
  }
  std::fclose(f);
  return out;
}

}  // namespace internal

int64_t PeakRssBytes() {
  const int64_t kb = internal::StatusFileKb("/proc/self/status", "VmHWM");
  if (kb >= 0) return kb * 1024;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<int64_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

int64_t CurrentRssBytes() {
  const int64_t kb = internal::StatusFileKb("/proc/self/status", "VmRSS");
  return kb >= 0 ? kb * 1024 : 0;
}

}  // namespace fedmp
