#ifndef FEDMP_COMMON_RNG_H_
#define FEDMP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fedmp {

// Deterministic pseudo-random number generator (xoshiro256** seeded by
// splitmix64). Every stochastic component in the library draws from an
// explicitly passed Rng so that experiments are reproducible bit-for-bit
// across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t NextIndex(uint64_t n);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Gaussian with the given mean / stddev.
  double Gaussian(double mean, double stddev);

  // Lognormal multiplicative jitter: exp(N(0, sigma)), mean-corrected so the
  // expected value is 1. Used for per-round device speed fluctuation.
  double LognormalJitter(double sigma);

  // Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextIndex(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // A derived generator whose stream is independent of this one. Used to give
  // each worker / dataset its own reproducible stream.
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fedmp

#endif  // FEDMP_COMMON_RNG_H_
