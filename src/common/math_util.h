#ifndef FEDMP_COMMON_MATH_UTIL_H_
#define FEDMP_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

namespace fedmp {

// Clamps v into [lo, hi].
inline double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

inline double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size() - 1);
}

inline double Stddev(const std::vector<double>& v) {
  return std::sqrt(Variance(v));
}

// True if |a - b| <= atol + rtol*|b|.
inline bool AlmostEqual(double a, double b, double atol = 1e-6,
                        double rtol = 1e-5) {
  return std::fabs(a - b) <= atol + rtol * std::fabs(b);
}

// Indices that would sort `values` ascending (stable).
inline std::vector<size_t> ArgsortAscending(const std::vector<float>& values) {
  std::vector<size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](size_t a, size_t b) { return values[a] < values[b]; });
  return idx;
}

}  // namespace fedmp

#endif  // FEDMP_COMMON_MATH_UTIL_H_
