#ifndef FEDMP_COMMON_LOGGING_H_
#define FEDMP_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace fedmp {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Minimum severity emitted to stderr; default kInfo. Thread-compatible.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

// Accumulates one log line and flushes it (with file:line and severity tag)
// on destruction. kFatal aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Turns a streamed LogMessage expression into void so it can sit in the
// false branch of the FEDMP_CHECK ternary. '&' binds looser than '<<'.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal_logging

#define FEDMP_LOG(severity)                                  \
  ::fedmp::internal_logging::LogMessage(                     \
      __FILE__, __LINE__, ::fedmp::LogSeverity::k##severity)

// Fatal if `condition` is false. Streams extra context:
//   FEDMP_CHECK(n > 0) << "bad n=" << n;
#define FEDMP_CHECK(condition)                                        \
  (condition)                                                         \
      ? (void)0                                                       \
      : ::fedmp::internal_logging::Voidify() &                        \
        (::fedmp::internal_logging::LogMessage(                       \
             __FILE__, __LINE__, ::fedmp::LogSeverity::kFatal)        \
         << "Check failed: " #condition " ")

#define FEDMP_CHECK_EQ(a, b) \
  FEDMP_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define FEDMP_CHECK_NE(a, b) \
  FEDMP_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define FEDMP_CHECK_LT(a, b) \
  FEDMP_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define FEDMP_CHECK_LE(a, b) \
  FEDMP_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define FEDMP_CHECK_GT(a, b) \
  FEDMP_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define FEDMP_CHECK_GE(a, b) \
  FEDMP_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace fedmp

#endif  // FEDMP_COMMON_LOGGING_H_
