#ifndef FEDMP_COMMON_RANGE_TREE_H_
#define FEDMP_COMMON_RANGE_TREE_H_

#include <algorithm>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace fedmp {

// The canonical binary reduction tree over an index range [0, n).
//
// Floating-point addition is not associative, so any result that must be
// bit-identical across execution shapes has to pin one association. A left
// fold pins it, but cannot be split across regional aggregators: the sum of
// per-region left folds associates differently than one flat left fold. The
// canonical tree fixes that by making the association a pure function of n:
//
//   split([lo, hi)) divides at lo + p where p is the largest power of two
//   strictly below hi - lo, recursively, down to single-element leaves.
//
// Every subtree's association depends only on its own bounds, so a sum can
// be computed per-subtree (in any order, on any thread) and the subtrees
// merged — the result is bit-identical to folding the whole range on one
// thread. This is the association contract shared by AggregateSubModels,
// StreamingAggregator, and the fog tier in fl/hierarchy.h.
inline int64_t CanonicalSplit(int64_t lo, int64_t hi) {
  FEDMP_CHECK_GE(hi - lo, 2);
  int64_t p = 1;
  while (p * 2 < hi - lo) p *= 2;
  return lo + p;
}

// Partitions [0, n) into exactly min(parts, n) canonical-tree nodes by
// repeatedly splitting the largest slice (leftmost on ties). Because every
// slice is a tree node, a recursive descent from [0, n) that stops on slice
// boundaries reaches each slice exactly once — which is what lets fog
// partial sums be merged into the flat canonical sum (see fl/hierarchy.h).
//
// Refinement: the splitting process is a deterministic chain — the slicing
// for `parts + 1` is obtained from the slicing for `parts` by splitting one
// slice. So for q <= p, every slice of CanonicalRangeSlices(n, p) nests
// inside exactly one slice of CanonicalRangeSlices(n, q). This is what lets
// a coarser PS-shard partition own whole fog slices (fl/ps_shard.h): shard
// count <= fog count guarantees no fog straddles a shard boundary.
//
// n == 0 yields no slices (an empty range has no owners).
inline std::vector<std::pair<int64_t, int64_t>> CanonicalRangeSlices(
    int64_t n, int64_t parts) {
  FEDMP_CHECK_GE(n, 0);
  FEDMP_CHECK_GT(parts, 0);
  if (n == 0) return {};
  using Range = std::pair<int64_t, int64_t>;
  // Largest-first, leftmost on ties.
  auto later = [](const Range& a, const Range& b) {
    const int64_t sa = a.second - a.first, sb = b.second - b.first;
    return sa != sb ? sa < sb : a.first > b.first;
  };
  std::priority_queue<Range, std::vector<Range>, decltype(later)> heap(later);
  heap.push({0, n});
  std::vector<Range> done;  // single-element slices, unsplittable
  while (static_cast<int64_t>(heap.size() + done.size()) < parts &&
         !heap.empty()) {
    const Range top = heap.top();
    heap.pop();
    if (top.second - top.first < 2) {
      done.push_back(top);
      continue;
    }
    const int64_t mid = CanonicalSplit(top.first, top.second);
    heap.push({top.first, mid});
    heap.push({mid, top.second});
  }
  while (!heap.empty()) {
    done.push_back(heap.top());
    heap.pop();
  }
  std::sort(done.begin(), done.end());
  return done;
}

// Index of the slice containing `index` (slices must be sorted and cover
// the index, as CanonicalRangeSlices guarantees).
inline int SliceOf(const std::vector<std::pair<int64_t, int64_t>>& slices,
                   int64_t index) {
  int lo = 0, hi = static_cast<int>(slices.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (slices[static_cast<size_t>(mid)].first <= index) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  FEDMP_CHECK(slices[static_cast<size_t>(lo)].first <= index &&
              index < slices[static_cast<size_t>(lo)].second);
  return lo;
}

}  // namespace fedmp

#endif  // FEDMP_COMMON_RANGE_TREE_H_
