#ifndef FEDMP_COMMON_MEM_INFO_H_
#define FEDMP_COMMON_MEM_INFO_H_

#include <cstdint>

namespace fedmp {

// Peak resident-set size (high-water mark) of this process in bytes, from
// /proc/self/status VmHWM with a getrusage fallback; 0 when neither source
// is available. This is what the fl.scale.peak_rss_bytes gauge and the
// bounded-memory scale tests read: the hierarchy tier's contract is that a
// round's peak stays O(in-flight window x model), never O(fleet x model).
int64_t PeakRssBytes();

// Current resident-set size in bytes (VmRSS), 0 when unavailable.
int64_t CurrentRssBytes();

namespace internal {

// Finds a "<key>:  <kB> kB" line in a status-file text blob (the format of
// /proc/self/status) and returns the kB count; -1 when the key is absent or
// its value is malformed. Exposed so tests can exercise the parsing without
// a /proc filesystem.
int64_t ParseStatusKb(const char* text, const char* key);

// Reads the key from a status-format file at `path`; -1 when the file is
// missing/unreadable or the key can't be parsed (the callers then fall back
// to getrusage or 0 — never crash).
int64_t StatusFileKb(const char* path, const char* key);

}  // namespace internal

}  // namespace fedmp

#endif  // FEDMP_COMMON_MEM_INFO_H_
