#ifndef FEDMP_COMMON_MEM_INFO_H_
#define FEDMP_COMMON_MEM_INFO_H_

#include <cstdint>

namespace fedmp {

// Peak resident-set size (high-water mark) of this process in bytes, from
// /proc/self/status VmHWM with a getrusage fallback; 0 when neither source
// is available. This is what the fl.scale.peak_rss_bytes gauge and the
// bounded-memory scale tests read: the hierarchy tier's contract is that a
// round's peak stays O(in-flight window x model), never O(fleet x model).
int64_t PeakRssBytes();

// Current resident-set size in bytes (VmRSS), 0 when unavailable.
int64_t CurrentRssBytes();

}  // namespace fedmp

#endif  // FEDMP_COMMON_MEM_INFO_H_
