#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace fedmp {

std::vector<std::string> Split(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == delim) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanCount(int64_t n) {
  const double d = static_cast<double>(n);
  if (n >= 1000000000) return StrFormat("%.1fG", d / 1e9);
  if (n >= 1000000) return StrFormat("%.1fM", d / 1e6);
  if (n >= 1000) return StrFormat("%.1fK", d / 1e3);
  return StrFormat("%lld", static_cast<long long>(n));
}

std::string FixedCell(double value, int width, int precision) {
  return StrFormat("%*.*f", width, precision, value);
}

}  // namespace fedmp
