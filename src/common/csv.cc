#include "common/csv.h"

#include <algorithm>
#include <fstream>

#include "common/string_util.h"

namespace fedmp {

namespace {
std::string EscapeCsvField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}
}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

Status CsvTable::AddRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    return InvalidArgumentError(StrFormat(
        "row width %zu does not match header width %zu", cells.size(),
        header_.size()));
  }
  rows_.push_back(std::move(cells));
  return Status::Ok();
}

Status CsvTable::AddRow(const std::vector<double>& cells) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(StrFormat("%.4f", v));
  return AddRow(std::move(out));
}

void CsvTable::WriteCsv(std::ostream& os) const {
  std::vector<std::string> escaped;
  escaped.reserve(header_.size());
  for (const auto& h : header_) escaped.push_back(EscapeCsvField(h));
  os << Join(escaped, ",") << "\n";
  for (const auto& row : rows_) {
    escaped.clear();
    for (const auto& cell : row) escaped.push_back(EscapeCsvField(cell));
    os << Join(escaped, ",") << "\n";
  }
}

void CsvTable::WritePretty(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  emit_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
}

Status CsvTable::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open " + path + " for writing");
  WriteCsv(out);
  return Status::Ok();
}

}  // namespace fedmp
