#ifndef FEDMP_COMMON_THREAD_POOL_H_
#define FEDMP_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedmp {

// A fixed-size worker pool with a shared work queue, built for the
// deterministic data-parallel loops in the kernels (tensor_ops, Im2Col)
// and the FL engine (per-worker rounds). Determinism contract: ParallelFor
// splits [begin, end) into contiguous chunks and every index is executed by
// exactly one chunk, so as long as `fn` writes only to locations owned by
// its indices, results are bit-identical at any thread count — including
// the serial fallback (DESIGN.md "Threading model").
//
// The pool owns num_threads-1 OS threads; the caller of ParallelFor is the
// remaining lane. A ParallelFor issued from inside a pool task runs inline
// serially (no nested parallelism, no deadlock), which is what makes it
// safe for the trainer to parallelize over workers while each worker's SGD
// hits the parallel kernels underneath.
class ThreadPool {
 public:
  // Spawns max(0, num_threads - 1) workers; num_threads <= 1 means every
  // ParallelFor runs inline on the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution lanes (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(chunk_begin, chunk_end) over a contiguous partition of
  // [begin, end). `grain` caps the number of chunks at ceil(n / grain); up
  // to kChunksPerLane chunks per lane are created beyond that so a slow
  // chunk cannot idle the other lanes (chunks are claimed dynamically, but
  // their boundaries depend only on (n, grain, num_threads()), so ownership
  // — and therefore results — is schedule-independent). Blocks until every
  // chunk finished; the caller executes chunks too.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  // Enqueues one task for any lane to pick up. With no spawned workers
  // (num_threads() == 1) the task runs inline on the caller before Submit
  // returns, preserving exact serial submission order. Used by TaskSet;
  // prefer TaskSet over raw Submit so completion is observable.
  void Submit(std::function<void()> fn);

  // Pops and runs one queued task on the calling thread (flagged as a pool
  // lane for the duration, so nested ParallelFors inline). Returns false
  // when the queue was empty. Lets threads blocked on a TaskSet drain help
  // instead of idling.
  bool TryRunOne();

  // True when called from inside a pool task (nested region).
  static bool InPoolWorker();

  // The calling thread's stable execution-lane id: pool workers are
  // 1..N-1, every non-pool thread (including the ParallelFor caller /
  // TaskSet drainer) is lane 0. Used to label pool-track telemetry from
  // inside submitted tasks (e.g. the PS shard folds).
  static int CurrentLane();

  // Process-wide pool used by the free ParallelFor and the kernels. Created
  // on first use with ResolveThreads(0) lanes.
  static ThreadPool& Global();

  // Recreates the global pool with `num_threads` lanes (no-op if it already
  // has that size). Not safe while another thread is inside ParallelFor on
  // the global pool; the single-driver trainers call it from their
  // constructors only.
  static void SetGlobalThreads(int num_threads);

  // Effective lane count: FEDMP_THREADS env var (if > 0) wins, then
  // `requested` (if > 0), then std::thread::hardware_concurrency().
  static int ResolveThreads(int requested);

 private:
  // `lane` is this thread's stable execution-lane id (callers are lane 0,
  // pool workers 1..N-1) — used to label pool tracks in telemetry.
  void WorkerLoop(int lane);

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

// ParallelFor on the global pool (the form the kernels use).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

// A group of independent tasks with completion-ordered drain — the
// primitive the pipelined FL round is built on. Submit tags a task and
// hands it to the pool; DrainNext returns tags as their tasks finish, so
// the caller can stream downstream work (e.g. fold a worker's update into
// the aggregate) while slower tasks are still running. While waiting, the
// draining thread executes queued pool tasks instead of idling
// (work-sharing), so one slow lane never stalls the group.
//
// Determinism contract: tasks must write only state they own (their tag's
// slot). Completion ORDER is scheduling-dependent — anything
// order-sensitive must be sequenced by tag, not by drain order (see
// StreamingAggregator / DESIGN.md "Execution pipeline"). With one lane,
// Submit runs tasks inline, so drain order equals submit order and the
// pipeline degenerates to the exact serial path.
class TaskSet {
 public:
  // nullptr uses the global pool.
  explicit TaskSet(ThreadPool* pool = nullptr);
  // Blocks until every submitted task finished (drained or not).
  ~TaskSet();

  TaskSet(const TaskSet&) = delete;
  TaskSet& operator=(const TaskSet&) = delete;

  // Schedules fn; `tag` is returned by DrainNext once fn completed.
  void Submit(int64_t tag, std::function<void()> fn);

  // Blocks until some undrained task has completed and stores its tag;
  // returns false when every submitted task has already been drained.
  bool DrainNext(int64_t* tag);

  // Blocks until every submitted task completed (tags stay drainable).
  void WaitAll();

  // Submitted tasks not yet drained (running + completed-but-undrained).
  // The windowed scale-out loop uses this to cap in-flight work: submit
  // until pending() hits the window, then drain one before submitting the
  // next (see fl/trainer.cc and TrainerOptions::ScaleOptions).
  int64_t pending();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int64_t> done_;   // completed, not yet drained
  int64_t outstanding_ = 0;    // submitted, not yet completed
};

}  // namespace fedmp

#endif  // FEDMP_COMMON_THREAD_POOL_H_
