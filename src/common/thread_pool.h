#ifndef FEDMP_COMMON_THREAD_POOL_H_
#define FEDMP_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedmp {

// A fixed-size worker pool with a shared work queue, built for the
// deterministic data-parallel loops in the kernels (tensor_ops, Im2Col)
// and the FL engine (per-worker rounds). Determinism contract: ParallelFor
// splits [begin, end) into contiguous chunks and every index is executed by
// exactly one chunk, so as long as `fn` writes only to locations owned by
// its indices, results are bit-identical at any thread count — including
// the serial fallback (DESIGN.md "Threading model").
//
// The pool owns num_threads-1 OS threads; the caller of ParallelFor is the
// remaining lane. A ParallelFor issued from inside a pool task runs inline
// serially (no nested parallelism, no deadlock), which is what makes it
// safe for the trainer to parallelize over workers while each worker's SGD
// hits the parallel kernels underneath.
class ThreadPool {
 public:
  // Spawns max(0, num_threads - 1) workers; num_threads <= 1 means every
  // ParallelFor runs inline on the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution lanes (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(chunk_begin, chunk_end) over a static contiguous partition of
  // [begin, end). `grain` is the minimum iterations per chunk; at most
  // num_threads() chunks are created. Blocks until every chunk finished.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  // True when called from inside a pool task (nested region).
  static bool InPoolWorker();

  // Process-wide pool used by the free ParallelFor and the kernels. Created
  // on first use with ResolveThreads(0) lanes.
  static ThreadPool& Global();

  // Recreates the global pool with `num_threads` lanes (no-op if it already
  // has that size). Not safe while another thread is inside ParallelFor on
  // the global pool; the single-driver trainers call it from their
  // constructors only.
  static void SetGlobalThreads(int num_threads);

  // Effective lane count: FEDMP_THREADS env var (if > 0) wins, then
  // `requested` (if > 0), then std::thread::hardware_concurrency().
  static int ResolveThreads(int requested);

 private:
  // `lane` is this thread's stable execution-lane id (callers are lane 0,
  // pool workers 1..N-1) — used to label pool tracks in telemetry.
  void WorkerLoop(int lane);

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

// ParallelFor on the global pool (the form the kernels use).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace fedmp

#endif  // FEDMP_COMMON_THREAD_POOL_H_
