#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace fedmp {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextIndex(uint64_t n) {
  FEDMP_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Guard against log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::LognormalJitter(double sigma) {
  // E[exp(N(mu, sigma))] = exp(mu + sigma^2/2); choose mu so the mean is 1.
  return std::exp(Gaussian(-0.5 * sigma * sigma, sigma));
}

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the stream id into fresh seed material drawn from this generator.
  uint64_t seed = NextU64() ^ (stream_id * 0xD1342543DE82EF95ULL + 1);
  return Rng(seed);
}

}  // namespace fedmp
