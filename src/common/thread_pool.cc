#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp {

namespace {

thread_local bool t_in_pool_worker = false;
// Stable lane id for telemetry: caller of ParallelFor is lane 0, pool
// workers are 1..N-1.
thread_local int t_pool_lane = 0;

// Runs one ParallelFor chunk, recording a pool-track event and the lane's
// busy time when telemetry is on. Only reached on the dispatching path —
// the serial fallback (small kernels) stays un-instrumented.
void RunChunkInstrumented(const std::function<void(int64_t, int64_t)>& fn,
                          int64_t b, int64_t e) {
  if (!obs::Enabled()) {
    fn(b, e);
    return;
  }
  const double t0 = obs::WallNowUs();
  fn(b, e);
  const double t1 = obs::WallNowUs();
  obs::RecordPoolChunk(t_pool_lane, t0, t1, e - b);
  thread_local obs::Counter* busy = obs::GetCounter(
      "pool.lane" + std::to_string(t_pool_lane) + ".busy_us");
  busy->Add(t1 - t0);
  thread_local obs::Histogram* chunk_us = obs::GetHistogram(
      "pool.chunk_us", {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000,
                        50000, 100000});
  chunk_us->Observe(t1 - t0);
}

// Guards creation/replacement of the global pool instance.
std::mutex g_global_mu;
std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> slot;
  return slot;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int spawn = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(static_cast<size_t>(spawn));
  for (int t = 0; t < spawn; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop(int lane) {
  t_in_pool_worker = true;
  t_pool_lane = lane;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::InPoolWorker() { return t_in_pool_worker; }

int ThreadPool::CurrentLane() { return t_pool_lane; }

namespace {
// Chunks per lane beyond which splitting finer buys nothing: enough that a
// lane stuck on one slow chunk leaves (kChunksPerLane - 1) claimable chunks
// per remaining lane, small enough that dispatch overhead stays invisible
// next to the kernels.
constexpr int64_t kChunksPerLane = 4;
}  // namespace

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  // Serial fallback: tiny range, no workers, or nested inside a pool task.
  if (workers_.empty() || n <= grain || t_in_pool_worker) {
    fn(begin, end);
    return;
  }

  // Chunk boundaries depend only on (n, grain, lane count) — WHICH lane runs
  // a chunk is decided dynamically by the dispenser below, which never
  // changes ownership of an index, only who executes it.
  const int64_t max_chunks = (n + grain - 1) / grain;
  const int64_t lanes = static_cast<int64_t>(num_threads());
  const int64_t target = std::min<int64_t>(lanes * kChunksPerLane, max_chunks);
  const int64_t chunk = (n + target - 1) / target;
  const int64_t nchunks = (n + chunk - 1) / chunk;

  struct Work {
    std::atomic<int64_t> next{0};    // chunk dispenser
    std::mutex m;
    std::condition_variable done;
    int64_t remaining;               // chunks not yet finished
  };
  auto work = std::make_shared<Work>();
  work->remaining = nchunks;

  // Runs dispenser chunks until they are exhausted. Runners queued but only
  // popped after the dispenser drained exit without touching fn (whose
  // lifetime ends when ParallelFor returns); the join below counts finished
  // CHUNKS, so it never returns while any claimed chunk is still running.
  auto runner = [work, &fn, begin, end, chunk, nchunks] {
    for (;;) {
      const int64_t c = work->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      const int64_t b = begin + c * chunk;
      RunChunkInstrumented(fn, b, std::min(end, b + chunk));
      std::lock_guard<std::mutex> wl(work->m);
      if (--work->remaining == 0) work->done.notify_all();
    }
  };

  const bool telemetry = obs::Enabled();
  const int64_t helpers = std::min<int64_t>(lanes - 1, nchunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t h = 0; h < helpers; ++h) queue_.push(runner);
    if (telemetry) {
      static obs::Gauge* depth = obs::GetGauge("pool.queue_depth");
      depth->Set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_all();
  if (telemetry) {
    static obs::Counter* dispatches = obs::GetCounter("pool.parallel_fors");
    static obs::Counter* chunks = obs::GetCounter("pool.chunks");
    dispatches->Add(1.0);
    chunks->Add(static_cast<double>(nchunks));
  }

  // The calling thread is lane 0. It is flagged as a pool lane while it
  // runs chunks so nested ParallelFors run inline there too.
  t_in_pool_worker = true;
  runner();
  t_in_pool_worker = false;

  std::unique_lock<std::mutex> wl(work->m);
  work->done.wait(wl, [&work] { return work->remaining == 0; });
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (workers_.empty()) {
    // Serial pool: run inline so completion order equals submission order
    // (the property that makes one-lane pipelines exactly serial).
    const bool was_in_pool = t_in_pool_worker;
    t_in_pool_worker = true;
    fn();
    t_in_pool_worker = was_in_pool;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(fn));
  }
  cv_.notify_one();
}

bool ThreadPool::TryRunOne() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  const bool was_in_pool = t_in_pool_worker;
  t_in_pool_worker = true;
  task();
  t_in_pool_worker = was_in_pool;
  return true;
}

TaskSet::TaskSet(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::Global()) {}

TaskSet::~TaskSet() { WaitAll(); }

void TaskSet::Submit(int64_t tag, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  pool_->Submit([this, tag, fn = std::move(fn)] {
    fn();
    std::lock_guard<std::mutex> lock(mu_);
    done_.push_back(tag);
    --outstanding_;
    cv_.notify_all();
  });
}

bool TaskSet::DrainNext(int64_t* tag) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!done_.empty()) {
        *tag = done_.front();
        done_.pop_front();
        return true;
      }
      if (outstanding_ == 0) return false;
    }
    // Work-share instead of idling: run queued pool tasks (possibly our
    // own). When the queue is empty our tasks are all mid-flight on
    // workers, so block until one completes.
    if (pool_->TryRunOne()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !done_.empty() || outstanding_ == 0; });
  }
}

int64_t TaskSet::pending() {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_ + static_cast<int64_t>(done_.size());
}

void TaskSet::WaitAll() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (outstanding_ == 0) return;
    }
    if (pool_->TryRunOne()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return outstanding_ == 0; });
    return;
  }
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  auto& slot = GlobalSlot();
  if (slot == nullptr) {
    slot = std::make_unique<ThreadPool>(ResolveThreads(0));
  }
  return *slot;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  FEDMP_CHECK_GT(num_threads, 0);
  std::lock_guard<std::mutex> lock(g_global_mu);
  auto& slot = GlobalSlot();
  if (slot != nullptr && slot->num_threads() == num_threads) return;
  slot = std::make_unique<ThreadPool>(num_threads);
}

int ThreadPool::ResolveThreads(int requested) {
  if (const char* env = std::getenv("FEDMP_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

}  // namespace fedmp
