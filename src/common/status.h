#ifndef FEDMP_COMMON_STATUS_H_
#define FEDMP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace fedmp {

// Canonical error codes, a pragmatic subset of absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

// Returns the canonical name of `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

// A lightweight success-or-error result used across the public API instead of
// exceptions. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE: message" — for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors mirroring absl.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);

// Propagates a non-OK status to the caller.
#define FEDMP_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::fedmp::Status _status = (expr);           \
    if (!_status.ok()) return _status;          \
  } while (0)

}  // namespace fedmp

#endif  // FEDMP_COMMON_STATUS_H_
