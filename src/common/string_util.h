#ifndef FEDMP_COMMON_STRING_UTIL_H_
#define FEDMP_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fedmp {

// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& text, char delim);

// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim);

// Printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// "1.5K" / "2.3M" / "4.0G"-style human-readable count.
std::string HumanCount(int64_t n);

// Fixed-width numeric cell for aligned console tables.
std::string FixedCell(double value, int width, int precision);

}  // namespace fedmp

#endif  // FEDMP_COMMON_STRING_UTIL_H_
