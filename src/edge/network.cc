#include "edge/network.h"

#include <cmath>

#include "common/logging.h"

namespace fedmp::edge {

double PathLossFactor(double distance_m, const WirelessLinkConfig& config) {
  FEDMP_CHECK_GT(distance_m, 0.0);
  FEDMP_CHECK_GT(config.reference_distance_m, 0.0);
  const double ratio = distance_m / config.reference_distance_m;
  if (ratio <= 1.0) return 1.0;  // throughput saturates near the PS
  return std::pow(ratio, -config.path_loss_exponent);
}

void AssignLinkByDistance(double distance_m, const WirelessLinkConfig& config,
                          DeviceProfile* profile) {
  const double factor = PathLossFactor(distance_m, config);
  profile->uplink_bytes_per_sec =
      config.base_uplink_bytes_per_sec * factor;
  profile->downlink_bytes_per_sec =
      config.base_downlink_bytes_per_sec * factor;
}

}  // namespace fedmp::edge
