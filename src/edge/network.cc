#include "edge/network.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace fedmp::edge {

double PathLossFactor(double distance_m, const WirelessLinkConfig& config) {
  FEDMP_CHECK_GT(distance_m, 0.0);
  FEDMP_CHECK_GT(config.reference_distance_m, 0.0);
  const double ratio = distance_m / config.reference_distance_m;
  if (ratio <= 1.0) return 1.0;  // throughput saturates near the PS
  return std::pow(ratio, -config.path_loss_exponent);
}

void AssignLinkByDistance(double distance_m, const WirelessLinkConfig& config,
                          DeviceProfile* profile) {
  const double factor = PathLossFactor(distance_m, config);
  profile->uplink_bytes_per_sec =
      config.base_uplink_bytes_per_sec * factor;
  profile->downlink_bytes_per_sec =
      config.base_downlink_bytes_per_sec * factor;
}

MessageFate TransmitUpdate(const ChannelFaultConfig& config, uint64_t seed,
                           int64_t round, int worker) {
  FEDMP_CHECK(config.loss_prob >= 0.0 && config.loss_prob <= 1.0);
  FEDMP_CHECK(config.duplicate_prob >= 0.0 && config.duplicate_prob <= 1.0);
  FEDMP_CHECK_GE(config.max_delay_seconds, 0.0);
  MessageFate fate;
  if (!config.any()) return fate;
  // One independent stream per (round, worker); the Rng constructor runs the
  // mix through splitmix64, decorrelating nearby (round, worker) pairs.
  Rng rng(seed ^
          (static_cast<uint64_t>(round + 1) * 0xA24BAED4963EE407ULL) ^
          (static_cast<uint64_t>(worker + 1) * 0x9FB21C651E98DF25ULL));
  // Fixed draw order keeps traces stable when individual knobs are toggled.
  const double loss_draw = rng.NextDouble();
  const double dup_draw = rng.NextDouble();
  const double delay_draw = rng.NextDouble();
  if (loss_draw < config.loss_prob) {
    fate.delivered = false;
    return fate;
  }
  if (dup_draw < config.duplicate_prob) fate.copies = 2;
  fate.delay_seconds = delay_draw * config.max_delay_seconds;
  return fate;
}

}  // namespace fedmp::edge
