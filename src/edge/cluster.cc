#include "edge/cluster.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace fedmp::edge {

const char* ClusterName(ClusterId id) {
  switch (id) {
    case ClusterId::kA: return "A";
    case ClusterId::kB: return "B";
    case ClusterId::kC: return "C";
  }
  return "?";
}

const char* HeterogeneityName(HeterogeneityLevel level) {
  switch (level) {
    case HeterogeneityLevel::kLow: return "Low";
    case HeterogeneityLevel::kMedium: return "Medium";
    case HeterogeneityLevel::kHigh: return "High";
  }
  return "?";
}

std::vector<DeviceProfile> MakeCluster(ClusterId id, int count,
                                       uint64_t seed) {
  FEDMP_CHECK_GE(count, 0);
  Rng rng(seed ^ (static_cast<uint64_t>(id) + 1) * 0x9E3779B9ULL);
  WirelessLinkConfig link;

  // Fig. 3: X-axis computing modes, Y-axis distance band per cluster.
  int mode_lo = 0, mode_hi = 0;
  double dist_lo = 0.0, dist_hi = 0.0;
  switch (id) {
    case ClusterId::kA:
      mode_lo = 0; mode_hi = 1;
      dist_lo = 5.0; dist_hi = 15.0;
      break;
    case ClusterId::kB:
      mode_lo = 1; mode_hi = 2;
      dist_lo = 15.0; dist_hi = 30.0;
      break;
    case ClusterId::kC:
      mode_lo = 2; mode_hi = 3;
      dist_lo = 25.0; dist_hi = 45.0;
      break;
  }

  std::vector<DeviceProfile> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int mode = mode_lo + static_cast<int>(rng.NextIndex(
                                   static_cast<uint64_t>(mode_hi - mode_lo + 1)));
    DeviceProfile p = JetsonTx2Mode(mode);
    const double distance = rng.Uniform(dist_lo, dist_hi);
    AssignLinkByDistance(distance, link, &p);
    p.name = StrFormat("%s%d-%s", ClusterName(id), i, p.name.c_str());
    out.push_back(p);
  }
  return out;
}

std::vector<DeviceProfile> MakeHeterogeneousWorkers(HeterogeneityLevel level,
                                                    uint64_t seed) {
  std::vector<DeviceProfile> out;
  auto append = [&](ClusterId id, int count) {
    auto cluster = MakeCluster(id, count, seed);
    out.insert(out.end(), cluster.begin(), cluster.end());
  };
  switch (level) {
    case HeterogeneityLevel::kLow:
      append(ClusterId::kA, 10);
      break;
    case HeterogeneityLevel::kMedium:
      append(ClusterId::kA, 5);
      append(ClusterId::kB, 5);
      break;
    case HeterogeneityLevel::kHigh:
      append(ClusterId::kA, 3);
      append(ClusterId::kB, 3);
      append(ClusterId::kC, 4);
      break;
  }
  return out;
}

std::vector<DeviceProfile> MakeHalfAHalfB(int count, uint64_t seed) {
  FEDMP_CHECK_GT(count, 0);
  std::vector<DeviceProfile> out = MakeCluster(ClusterId::kA, count / 2, seed);
  auto b = MakeCluster(ClusterId::kB, count - count / 2, seed);
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace fedmp::edge
