#include "edge/fault.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace fedmp::edge {

DeadlineOutcome ApplyDeadline(const std::vector<double>& completion_times,
                              const DeadlinePolicy& policy) {
  FEDMP_CHECK(!completion_times.empty());
  DeadlineOutcome out;
  // Crashed workers (+inf) never arrive, regardless of the deadline.
  std::vector<double> finite;
  for (double t : completion_times) {
    if (std::isfinite(t)) finite.push_back(t);
  }
  FEDMP_CHECK(!finite.empty()) << "every worker crashed this round";

  if (!policy.enabled) {
    out.deadline = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < completion_times.size(); ++i) {
      if (!std::isfinite(completion_times[i])) continue;
      out.survivors.push_back(static_cast<int>(i));
      out.round_time = std::max(out.round_time, completion_times[i]);
    }
    return out;
  }
  FEDMP_CHECK(policy.quantile > 0.0 && policy.quantile <= 1.0);
  FEDMP_CHECK_GE(policy.slack, 1.0);

  // d = arrival time of the ceil(q*N)-th fastest worker; workers that never
  // arrive are assessed against the quantile of those that do.
  std::sort(finite.begin(), finite.end());
  const size_t n = completion_times.size();
  size_t idx = static_cast<size_t>(
      std::ceil(policy.quantile * static_cast<double>(n)));
  idx = std::min(std::max<size_t>(idx, 1), finite.size()) - 1;
  const double d = finite[idx];
  out.deadline = policy.slack * d;

  for (size_t i = 0; i < completion_times.size(); ++i) {
    if (std::isfinite(completion_times[i]) &&
        completion_times[i] <= out.deadline) {
      out.survivors.push_back(static_cast<int>(i));
      out.round_time = std::max(out.round_time, completion_times[i]);
    }
  }
  // If stragglers were dropped, the PS waits until the deadline expires.
  if (out.survivors.size() < completion_times.size()) {
    out.round_time = out.deadline;
  }
  FEDMP_CHECK(!out.survivors.empty());
  return out;
}

void InjectCrashes(double crash_prob, Rng& rng,
                   std::vector<double>* completion_times) {
  FEDMP_CHECK(crash_prob >= 0.0 && crash_prob < 1.0);
  for (double& t : *completion_times) {
    if (rng.NextDouble() < crash_prob) {
      t = std::numeric_limits<double>::infinity();
    }
  }
}

}  // namespace fedmp::edge
