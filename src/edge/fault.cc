#include "edge/fault.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/range_tree.h"
#include "obs/metrics.h"

namespace fedmp::edge {

DeadlineOutcome ApplyDeadline(const std::vector<double>& completion_times,
                              const DeadlinePolicy& policy) {
  FEDMP_CHECK(!completion_times.empty());
  DeadlineOutcome out;
  // Crashed workers (+inf) never arrive, regardless of the deadline.
  std::vector<double> finite;
  for (double t : completion_times) {
    if (std::isfinite(t)) finite.push_back(t);
  }
  if (finite.empty()) {
    // Every worker crashed: the PS waits out its timeout and the round
    // degrades gracefully — no survivors, no aggregation.
    out.deadline = std::numeric_limits<double>::infinity();
    out.round_time = policy.empty_round_wait;
    return out;
  }

  if (!policy.enabled) {
    out.deadline = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < completion_times.size(); ++i) {
      if (!std::isfinite(completion_times[i])) continue;
      out.survivors.push_back(static_cast<int>(i));
      out.round_time = std::max(out.round_time, completion_times[i]);
    }
    return out;
  }
  FEDMP_CHECK(policy.quantile > 0.0 && policy.quantile <= 1.0);
  FEDMP_CHECK_GE(policy.slack, 1.0);

  // d = arrival time of the ceil(q*N)-th fastest worker; workers that never
  // arrive are assessed against the quantile of those that do.
  std::sort(finite.begin(), finite.end());
  const size_t n = completion_times.size();
  size_t idx = static_cast<size_t>(
      std::ceil(policy.quantile * static_cast<double>(n)));
  idx = std::min(std::max<size_t>(idx, 1), finite.size()) - 1;
  const double d = finite[idx];
  out.deadline = policy.slack * d;

  for (size_t i = 0; i < completion_times.size(); ++i) {
    if (std::isfinite(completion_times[i]) &&
        completion_times[i] <= out.deadline) {
      out.survivors.push_back(static_cast<int>(i));
      out.round_time = std::max(out.round_time, completion_times[i]);
    }
  }
  // If stragglers were dropped, the PS waits until the deadline expires.
  if (out.survivors.size() < completion_times.size()) {
    out.round_time = out.deadline;
  }
  // The quantile worker itself always makes the deadline (slack >= 1).
  FEDMP_CHECK(!out.survivors.empty());
  return out;
}

void InjectCrashes(double crash_prob, Rng& rng,
                   std::vector<double>* completion_times) {
  FEDMP_CHECK(crash_prob >= 0.0 && crash_prob < 1.0);
  for (double& t : *completion_times) {
    if (rng.NextDouble() < crash_prob) {
      t = std::numeric_limits<double>::infinity();
    }
  }
}

FaultPlan::FaultPlan(int num_workers, const FaultPlanOptions& options)
    : num_workers_(num_workers), options_(options) {
  FEDMP_CHECK_GT(num_workers, 0);
  FEDMP_CHECK(options.crash_prob >= 0.0 && options.crash_prob <= 1.0);
  FEDMP_CHECK(options.straggle_prob >= 0.0 && options.straggle_prob <= 1.0);
  FEDMP_CHECK(options.corrupt_prob >= 0.0 && options.corrupt_prob <= 1.0);
  FEDMP_CHECK(options.fog_outage_prob >= 0.0 &&
              options.fog_outage_prob <= 1.0);
  FEDMP_CHECK_GE(options.fog_groups, 0);
  FEDMP_CHECK_GE(options.straggle_factor, 1.0);
  FEDMP_CHECK_GE(options.rejoin_after, 1);
  if (options.fog_outage_prob > 0.0 && options.fog_groups > 0) {
    // Same slicing the hierarchical aggregator applies to the slot range,
    // so "fog group g went down" in a chaos test maps one-to-one onto the
    // aggregation tier that loses its workers.
    fog_slices_ = CanonicalRangeSlices(num_workers, options.fog_groups);
  }
  active_ = options.any();
}

int FaultPlan::FogGroupOf(int worker) const {
  if (fog_slices_.empty()) return -1;
  return SliceOf(fog_slices_, worker);
}

bool FaultPlan::FogOutageAt(int64_t round, int worker) const {
  if (fog_slices_.empty()) return false;
  const int group = SliceOf(fog_slices_, worker);
  // A stream domain of its own — keyed by (round, group) with a fog salt —
  // so group draws never consume from, or shift, the per-worker streams:
  // flipping fog outages on replays the identical per-worker fault trace.
  Rng rng(options_.seed ^ 0xF09F09F09F09F09FULL ^
          (static_cast<uint64_t>(round + 1) * 0xD6E8FEB86659FD93ULL) ^
          (static_cast<uint64_t>(group + 1) * 0x9E3779B97F4A7C15ULL));
  return rng.NextDouble() < options_.fog_outage_prob;
}

Rng FaultPlan::StreamFor(int64_t round, int worker) const {
  // One independent stream per (round, worker); the Rng constructor feeds
  // the mix through splitmix64, decorrelating nearby pairs.
  return Rng(options_.seed ^
             (static_cast<uint64_t>(round + 1) * 0xD6E8FEB86659FD93ULL) ^
             (static_cast<uint64_t>(worker + 1) * 0x8CB92BA72F3D8DD7ULL));
}

bool FaultPlan::CrashesAt(int64_t round, int worker) const {
  if (options_.crash_prob > 0.0) {
    Rng rng = StreamFor(round, worker);
    // The crash decision is always the FIRST draw of a stream, so IsDown
    // can probe past rounds without replaying their full fault vectors.
    if (rng.NextDouble() < options_.crash_prob) return true;
  }
  // A regional outage takes the whole group down; folding it in here means
  // the rejoin window in IsDown applies uniformly to both causes.
  return FogOutageAt(round, worker);
}

bool FaultPlan::IsDown(int64_t round, int worker) const {
  if (!active_ ||
      (options_.crash_prob <= 0.0 && fog_slices_.empty())) {
    return false;
  }
  const int64_t window = options_.rejoin_after;
  const int64_t first = std::max<int64_t>(0, round - window + 1);
  for (int64_t r = first; r <= round; ++r) {
    if (CrashesAt(r, worker)) return true;
  }
  return false;
}

int FaultPlan::CountAlive(int64_t round) const {
  if (!active_) return num_workers_;
  int alive = 0;
  for (int n = 0; n < num_workers_; ++n) {
    if (!IsDown(round, n)) ++alive;
  }
  return alive;
}

WorkerRoundFaults FaultPlan::FaultsFor(int64_t round, int worker) const {
  WorkerRoundFaults out;
  if (!active_) return out;
  FEDMP_CHECK(worker >= 0 && worker < num_workers_);
  FEDMP_CHECK_GE(round, 0);
  Rng rng = StreamFor(round, worker);
  rng.NextDouble();  // the crash draw, consumed so later draws line up
  out.crashed = IsDown(round, worker);
  const double straggle_draw = rng.NextDouble();
  const double corrupt_draw = rng.NextDouble();
  if (straggle_draw < options_.straggle_prob) {
    out.slowdown = options_.straggle_factor;
  }
  out.update_corrupted = corrupt_draw < options_.corrupt_prob;
  const MessageFate fate = TransmitUpdate(
      options_.channel, options_.seed ^ 0xC0FFEEULL, round, worker);
  out.update_dropped = !fate.delivered;
  out.update_duplicated = fate.copies > 1;
  out.extra_delay = fate.delay_seconds;
  if (obs::Enabled()) {
    // Injected-event tallies (observability only; no effect on the draws).
    static obs::Counter* crash = obs::GetCounter("faults.crash");
    static obs::Counter* straggle = obs::GetCounter("faults.straggle");
    static obs::Counter* corrupt = obs::GetCounter("faults.corrupt");
    static obs::Counter* drop = obs::GetCounter("faults.drop");
    static obs::Counter* duplicate = obs::GetCounter("faults.duplicate");
    static obs::Counter* delay = obs::GetCounter("faults.delay");
    static obs::Counter* fog_outage = obs::GetCounter("faults.fog_outage");
    if (FogOutageAt(round, worker)) fog_outage->Add(1.0);
    if (out.crashed) crash->Add(1.0);
    if (out.slowdown > 1.0) straggle->Add(1.0);
    if (out.update_corrupted) corrupt->Add(1.0);
    if (out.update_dropped) drop->Add(1.0);
    if (out.update_duplicated) duplicate->Add(1.0);
    if (out.extra_delay > 0.0) delay->Add(1.0);
  }
  return out;
}

}  // namespace fedmp::edge
