#ifndef FEDMP_EDGE_NETWORK_H_
#define FEDMP_EDGE_NETWORK_H_

#include <cstdint>

#include "edge/device.h"

namespace fedmp::edge {

// Wireless-link model for the paper's location-based communication
// heterogeneity (§V-A: devices placed at different distances from the PS).
// Throughput decays with distance following a simple log-distance path-loss
// inspired rule; the absolute constants put bench-scale model transfers in
// the same per-round ballpark as local computation, as in the paper's
// testbed (WAN ~15x slower than LAN [7]).
struct WirelessLinkConfig {
  double base_uplink_bytes_per_sec = 2.0e5;    // at reference distance
  double base_downlink_bytes_per_sec = 4.0e5;  // PS tx power is higher
  double reference_distance_m = 10.0;
  double path_loss_exponent = 1.5;
};

// Applies the distance-dependent throughput to a device profile.
void AssignLinkByDistance(double distance_m, const WirelessLinkConfig& config,
                          DeviceProfile* profile);

// Throughput multiplier at `distance_m` relative to the reference distance.
double PathLossFactor(double distance_m, const WirelessLinkConfig& config);

// ---- Lossy channel model -------------------------------------------------
//
// Message-level fault behaviour of the worker->PS uplink: an update can be
// lost, delivered twice (retransmission races), or delayed. Fates are a pure
// function of (seed, round, worker), so the same seed replays the same
// channel trace no matter in what order — or how many times — fates are
// queried. FaultPlan (edge/fault.h) composes this with worker-level faults.
struct ChannelFaultConfig {
  double loss_prob = 0.0;       // update never reaches the PS
  double duplicate_prob = 0.0;  // update delivered twice
  double max_delay_seconds = 0.0;  // uniform extra in-flight delay in [0, max]

  bool any() const {
    return loss_prob > 0.0 || duplicate_prob > 0.0 ||
           max_delay_seconds > 0.0;
  }
};

// What happened to one worker's uploaded update on the wire this round.
struct MessageFate {
  bool delivered = true;
  int copies = 1;              // 2 when the channel duplicated the message
  double delay_seconds = 0.0;  // extra latency on top of the cost model
};

// Deterministic fate of the update `worker` uploads in `round`.
MessageFate TransmitUpdate(const ChannelFaultConfig& config, uint64_t seed,
                           int64_t round, int worker);

}  // namespace fedmp::edge

#endif  // FEDMP_EDGE_NETWORK_H_
