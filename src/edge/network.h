#ifndef FEDMP_EDGE_NETWORK_H_
#define FEDMP_EDGE_NETWORK_H_

#include "edge/device.h"

namespace fedmp::edge {

// Wireless-link model for the paper's location-based communication
// heterogeneity (§V-A: devices placed at different distances from the PS).
// Throughput decays with distance following a simple log-distance path-loss
// inspired rule; the absolute constants put bench-scale model transfers in
// the same per-round ballpark as local computation, as in the paper's
// testbed (WAN ~15x slower than LAN [7]).
struct WirelessLinkConfig {
  double base_uplink_bytes_per_sec = 2.0e5;    // at reference distance
  double base_downlink_bytes_per_sec = 4.0e5;  // PS tx power is higher
  double reference_distance_m = 10.0;
  double path_loss_exponent = 1.5;
};

// Applies the distance-dependent throughput to a device profile.
void AssignLinkByDistance(double distance_m, const WirelessLinkConfig& config,
                          DeviceProfile* profile);

// Throughput multiplier at `distance_m` relative to the reference distance.
double PathLossFactor(double distance_m, const WirelessLinkConfig& config);

}  // namespace fedmp::edge

#endif  // FEDMP_EDGE_NETWORK_H_
