#include "edge/device.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace fedmp::edge {

DeviceProfile JetsonTx2Mode(int mode) {
  // Relative compute capability of Table II's four DVFS modes; absolute
  // scale chosen so that bench-scale models train in tens of simulated
  // seconds per round, matching the paper's hundreds of seconds for the
  // full-size models.
  DeviceProfile p;
  p.name = StrFormat("tx2-mode%d", mode);
  switch (mode) {
    case 0:
      p.flops_per_sec = 5.4e7;  // 2.0GHz Denver2 x2 + 2.0GHz A57 x4 + 1.30GHz GPU
      break;
    case 1:
      p.flops_per_sec = 3.8e7;  // A57-only + 1.12GHz GPU
      break;
    case 2:
      p.flops_per_sec = 2.7e7;  // 1.4GHz clusters + 1.12GHz GPU
      break;
    case 3:
      p.flops_per_sec = 1.6e7;  // 1.2GHz A57-only + 0.85GHz GPU
      break;
    default:
      FEDMP_LOG(Fatal) << "Jetson TX2 mode must be 0..3, got " << mode;
  }
  return p;
}

DeviceRoundSample SampleRound(const DeviceProfile& profile, Rng& rng) {
  DeviceRoundSample s;
  s.flops_per_sec =
      profile.flops_per_sec * rng.LognormalJitter(profile.jitter_sigma);
  s.uplink_bytes_per_sec = profile.uplink_bytes_per_sec *
                           rng.LognormalJitter(profile.jitter_sigma);
  s.downlink_bytes_per_sec = profile.downlink_bytes_per_sec *
                             rng.LognormalJitter(profile.jitter_sigma);
  return s;
}

}  // namespace fedmp::edge
