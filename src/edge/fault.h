#ifndef FEDMP_EDGE_FAULT_H_
#define FEDMP_EDGE_FAULT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "edge/network.h"

namespace fedmp::edge {

// §V-A fault tolerance: the PS records the time d at which a fraction
// (default 85%) of the local models have arrived and sets the round deadline
// to slack*d (default 1.5d). Workers missing the deadline are discarded for
// the round.
struct DeadlinePolicy {
  double quantile = 0.85;
  double slack = 1.5;
  bool enabled = true;
  // How long the PS waits before declaring a round lost when NO update
  // arrives (every worker crashed or every upload was dropped). The round
  // then degrades gracefully: empty survivor set, previous global kept.
  double empty_round_wait = 1.0;
};

struct DeadlineOutcome {
  // Workers (indices into the input vector) whose updates arrive in time.
  // Empty when every worker crashed — the caller must skip aggregation.
  std::vector<int> survivors;
  double deadline = 0.0;
  // The time the PS waits this round: max survivor time, capped by the
  // deadline when stragglers are dropped; `empty_round_wait` when nobody
  // arrives at all.
  double round_time = 0.0;
};

DeadlineOutcome ApplyDeadline(const std::vector<double>& completion_times,
                              const DeadlinePolicy& policy);

// Failure injection for robustness tests: each worker independently crashes
// this round with probability `crash_prob` (its completion time becomes
// +infinity, so the deadline policy drops it).
void InjectCrashes(double crash_prob, Rng& rng,
                   std::vector<double>* completion_times);

// ---- Deterministic fault-injection plan ----------------------------------
//
// A seeded schedule of per-worker, per-round fault events for chaos testing
// the whole FL stack. Every fate is a pure function of
// (seed, round, worker): query order and query count never change the trace,
// so the same seed replays the same failure sequence bit-for-bit in the
// sync engine, the async engine, and at any thread count.
struct FaultPlanOptions {
  // Worker crashes this round; it stays down for `rejoin_after` rounds
  // (its update is lost and it receives no dispatch until it rejoins).
  double crash_prob = 0.0;
  int64_t rejoin_after = 1;  // rounds a crashed worker stays down (>= 1)
  // Worker straggles: completion time multiplied by `straggle_factor`.
  double straggle_prob = 0.0;
  double straggle_factor = 4.0;
  // Payload corruption: the upload arrives but carries NaN/garbage values
  // (the PS must screen and reject it).
  double corrupt_prob = 0.0;
  // Message-level faults on the worker->PS uplink (loss, duplication,
  // delay) — see edge/network.h.
  ChannelFaultConfig channel;
  // Regional (fog) outages: the worker range is split into `fog_groups`
  // contiguous groups by the same canonical slicing the hierarchical
  // aggregator uses (common/range_tree.h), and each group independently
  // goes down with probability `fog_outage_prob` per round — every worker
  // in it crashes for the round, and the `rejoin_after` window applies
  // exactly as for individual crashes. Group draws come from a stream
  // domain of their own, so enabling outages never shifts the per-worker
  // crash/straggle/corrupt draws. fog_groups == 0 disables.
  double fog_outage_prob = 0.0;
  int64_t fog_groups = 0;
  // 0 = derive from the trainer seed; any other value fixes the trace
  // independently of the learning seed.
  uint64_t seed = 0;

  bool any() const {
    return crash_prob > 0.0 || straggle_prob > 0.0 || corrupt_prob > 0.0 ||
           (fog_outage_prob > 0.0 && fog_groups > 0) || channel.any();
  }
};

// Everything that happens to one worker in one round.
struct WorkerRoundFaults {
  bool crashed = false;          // down this round (crash or rejoin window)
  double slowdown = 1.0;         // completion-time multiplier (>= 1)
  bool update_dropped = false;   // upload lost on the wire
  bool update_duplicated = false;  // upload delivered twice
  bool update_corrupted = false;   // upload payload is garbage
  double extra_delay = 0.0;        // channel delay seconds

  // The update reaches the PS at all (it may still be corrupt).
  bool Arrives() const { return !crashed && !update_dropped; }
};

class FaultPlan {
 public:
  // Inactive plan: FaultsFor always reports a clean round.
  FaultPlan() = default;
  FaultPlan(int num_workers, const FaultPlanOptions& options);

  bool active() const { return active_; }
  int num_workers() const { return num_workers_; }
  const FaultPlanOptions& options() const { return options_; }

  // The fate of `worker` in `round`. Pure function of the seed.
  WorkerRoundFaults FaultsFor(int64_t round, int worker) const;

  // True when the worker is down in `round` — either it crashed in `round`
  // or a crash within the previous `rejoin_after - 1` rounds has not healed
  // yet.
  bool IsDown(int64_t round, int worker) const;

  // Number of workers not down in `round` (all of them when inactive).
  int CountAlive(int64_t round) const;

  // The fog group `worker` belongs to; -1 when fog outages are disabled.
  int FogGroupOf(int worker) const;
  // The raw outage draw for `worker`'s group in `round` (ignores the
  // rejoin window); false when fog outages are disabled.
  bool FogOutageAt(int64_t round, int worker) const;

 private:
  // The raw down-draw for (round, worker), ignoring the rejoin window:
  // an individual crash OR an outage of the worker's fog group.
  bool CrashesAt(int64_t round, int worker) const;
  Rng StreamFor(int64_t round, int worker) const;

  int num_workers_ = 0;
  FaultPlanOptions options_;
  bool active_ = false;
  // Canonical worker-range slices when fog outages are enabled.
  std::vector<std::pair<int64_t, int64_t>> fog_slices_;
};

}  // namespace fedmp::edge

#endif  // FEDMP_EDGE_FAULT_H_
