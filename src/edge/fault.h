#ifndef FEDMP_EDGE_FAULT_H_
#define FEDMP_EDGE_FAULT_H_

#include <vector>

#include "common/rng.h"

namespace fedmp::edge {

// §V-A fault tolerance: the PS records the time d at which a fraction
// (default 85%) of the local models have arrived and sets the round deadline
// to slack*d (default 1.5d). Workers missing the deadline are discarded for
// the round.
struct DeadlinePolicy {
  double quantile = 0.85;
  double slack = 1.5;
  bool enabled = true;
};

struct DeadlineOutcome {
  // Workers (indices into the input vector) whose updates arrive in time.
  std::vector<int> survivors;
  double deadline = 0.0;
  // The time the PS waits this round: max survivor time, capped by the
  // deadline when stragglers are dropped.
  double round_time = 0.0;
};

DeadlineOutcome ApplyDeadline(const std::vector<double>& completion_times,
                              const DeadlinePolicy& policy);

// Failure injection for robustness tests: each worker independently crashes
// this round with probability `crash_prob` (its completion time becomes
// +infinity, so the deadline policy drops it).
void InjectCrashes(double crash_prob, Rng& rng,
                   std::vector<double>* completion_times);

}  // namespace fedmp::edge

#endif  // FEDMP_EDGE_FAULT_H_
