#ifndef FEDMP_EDGE_COST_MODEL_H_
#define FEDMP_EDGE_COST_MODEL_H_

#include "edge/device.h"
#include "nn/model_spec.h"

namespace fedmp::edge {

// Maps (model architecture, training configuration, device capability) to
// the simulated wall-clock cost of one FL round on one worker — the
// T_n = T_comp + T_comm decomposition of Eq. (5). Computation scales with
// per-sample FLOPs (so structured pruning directly shrinks it), and
// communication with parameter bytes in both directions.
struct CostModelOptions {
  // Backward pass costs ~2x the forward FLOPs (weight + input gradients).
  double backward_flops_factor = 2.0;
  double bytes_per_param = 4.0;  // float32
  // Fixed per-round protocol overhead (connection setup, serialization).
  double round_overhead_seconds = 0.2;
};

struct RoundCost {
  double comp_seconds = 0.0;
  double comm_seconds = 0.0;
  double total() const { return comp_seconds + comm_seconds; }
};

// Cost of tau local iterations at the given batch size plus a full
// down+up model transfer, under one round's sampled device capability.
RoundCost EstimateRoundCost(const nn::ModelSpec& model, int64_t tau,
                            int64_t batch_size,
                            const DeviceRoundSample& device,
                            const CostModelOptions& options = {});

// Same, from the nominal (un-jittered) profile.
RoundCost EstimateRoundCostNominal(const nn::ModelSpec& model, int64_t tau,
                                   int64_t batch_size,
                                   const DeviceProfile& device,
                                   const CostModelOptions& options = {});

// Computation component only: tau iterations of batch_size samples.
double CompSeconds(const nn::ModelSpec& model, int64_t tau,
                   int64_t batch_size, const DeviceRoundSample& device,
                   const CostModelOptions& options = {});

// Communication component only, from explicit byte counts (lets callers
// account for upload compression separately from the download).
double CommSeconds(double down_bytes, double up_bytes,
                   const DeviceRoundSample& device,
                   const CostModelOptions& options = {});

// Encoded-bytes charging mode (FEDMP_COST_ENCODED=1): when on, the
// trainers pass the ledger's exact encoded payload bytes (pruned sub-model
// + mask encoding down, compressed upload up) to CommSeconds instead of
// the dense float32 parameter-count approximation, so straggler simulation
// reflects what pruning actually shrank (ROADMAP item 3). Default off:
// simulated timing — and everything downstream of it (E-UCB rewards,
// golden traces) — stays bit-identical to prior releases. The environment
// is read once at first use; SetCostEncodedEnabled overrides it (tests).
bool CostEncodedEnabled();
void SetCostEncodedEnabled(bool on);

}  // namespace fedmp::edge

#endif  // FEDMP_EDGE_COST_MODEL_H_
