#ifndef FEDMP_EDGE_EVENT_QUEUE_H_
#define FEDMP_EDGE_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedmp::edge {

// A timestamped worker-completion event in the asynchronous trainer.
struct Event {
  double time = 0.0;
  int worker = 0;
  // Opaque payload; the async trainer stores the dispatch generation so
  // stale duplicate deliveries can be recognized and discarded.
  int64_t tag = 0;
  // Monotonic tiebreaker: events at equal times pop in push order, making
  // the async schedule fully deterministic.
  uint64_t sequence = 0;
};

// Min-heap of events ordered by (time, sequence).
class EventQueue {
 public:
  void Push(double time, int worker, int64_t tag = 0);
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Earliest event (FEDMP_CHECKs non-empty).
  Event Pop();
  const Event& Peek() const;

 private:
  std::vector<Event> heap_;
  uint64_t next_sequence_ = 0;
};

}  // namespace fedmp::edge

#endif  // FEDMP_EDGE_EVENT_QUEUE_H_
