#ifndef FEDMP_EDGE_CLUSTER_H_
#define FEDMP_EDGE_CLUSTER_H_

#include <vector>

#include "edge/device.h"
#include "edge/network.h"

namespace fedmp::edge {

// Fig. 3's device clusters: A (fast modes, near the PS), B (mid), C (slow
// modes, far). Selecting workers from these clusters creates the paper's
// Low / Medium / High heterogeneity scenarios (§V-E).
enum class ClusterId { kA, kB, kC };

const char* ClusterName(ClusterId id);

// `count` devices drawn from the cluster's computing modes and distance
// band. Deterministic in (id, count, seed).
std::vector<DeviceProfile> MakeCluster(ClusterId id, int count,
                                       uint64_t seed);

// The paper's three heterogeneity scenarios over 10 workers:
//   Low    = 10 x A
//   Medium = 5 x A + 5 x B       (also the experiments' default)
//   High   = 3 x A + 3 x B + 4 x C
enum class HeterogeneityLevel { kLow, kMedium, kHigh };

const char* HeterogeneityName(HeterogeneityLevel level);

std::vector<DeviceProfile> MakeHeterogeneousWorkers(HeterogeneityLevel level,
                                                    uint64_t seed);

// §V-G scalability scenario: `count` workers, half from A and half from B.
std::vector<DeviceProfile> MakeHalfAHalfB(int count, uint64_t seed);

}  // namespace fedmp::edge

#endif  // FEDMP_EDGE_CLUSTER_H_
