#include "edge/event_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace fedmp::edge {

namespace {
// std::push_heap builds a max-heap; invert to get earliest-first.
bool Later(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.sequence > b.sequence;
}
}  // namespace

void EventQueue::Push(double time, int worker, int64_t tag) {
  heap_.push_back(Event{time, worker, tag, next_sequence_++});
  std::push_heap(heap_.begin(), heap_.end(), Later);
}

Event EventQueue::Pop() {
  FEDMP_CHECK(!heap_.empty()) << "Pop on empty EventQueue";
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  Event e = heap_.back();
  heap_.pop_back();
  return e;
}

const Event& EventQueue::Peek() const {
  FEDMP_CHECK(!heap_.empty()) << "Peek on empty EventQueue";
  return heap_.front();
}

}  // namespace fedmp::edge
