#ifndef FEDMP_EDGE_DEVICE_H_
#define FEDMP_EDGE_DEVICE_H_

#include <string>

#include "common/rng.h"

namespace fedmp::edge {

// Simulated edge-device capability. Stands in for the paper's Jetson TX2
// boards (Table II computing modes) plus their wireless links (Fig. 3
// locations): the FL algorithms under study see capability only through
// per-round completion times, which this profile generates.
struct DeviceProfile {
  std::string name;
  // Effective training throughput (useful FLOP/s the device sustains on
  // conv/GEMM workloads).
  double flops_per_sec = 1e9;
  // Link throughput to/from the PS in bytes/s.
  double uplink_bytes_per_sec = 1e6;
  double downlink_bytes_per_sec = 2e6;
  // Per-round multiplicative lognormal jitter applied to compute speed and
  // link bandwidth (dynamic capability variation, §I).
  double jitter_sigma = 0.10;
};

// Table II computing modes 0..3 (capability decreasing with mode), scaled
// to this simulator's unit system. Mode 0 ~ full Denver2+A57+1.30GHz GPU.
DeviceProfile JetsonTx2Mode(int mode);

// One sampled round realization of a device: jittered speed and bandwidth.
struct DeviceRoundSample {
  double flops_per_sec = 0.0;
  double uplink_bytes_per_sec = 0.0;
  double downlink_bytes_per_sec = 0.0;
};

DeviceRoundSample SampleRound(const DeviceProfile& profile, Rng& rng);

}  // namespace fedmp::edge

#endif  // FEDMP_EDGE_DEVICE_H_
