#ifndef FEDMP_EDGE_SIM_CLOCK_H_
#define FEDMP_EDGE_SIM_CLOCK_H_

#include "common/logging.h"

namespace fedmp::edge {

// Simulated wall clock. All experiment timelines (accuracy-vs-time curves,
// time budgets, speedups) run on this clock, driven by the cost model —
// never by host time.
class SimClock {
 public:
  double now() const { return now_; }

  void Advance(double seconds) {
    FEDMP_CHECK_GE(seconds, 0.0) << "clock cannot go backwards";
    now_ += seconds;
  }

  void AdvanceTo(double t) {
    FEDMP_CHECK_GE(t, now_) << "clock cannot go backwards";
    now_ = t;
  }

 private:
  double now_ = 0.0;
};

}  // namespace fedmp::edge

#endif  // FEDMP_EDGE_SIM_CLOCK_H_
