#include "edge/cost_model.h"

#include <atomic>
#include <cstdlib>

#include "common/logging.h"

namespace fedmp::edge {

namespace {
// -1 = unresolved, 0 = off, 1 = on.
std::atomic<int> g_cost_encoded{-1};
}  // namespace

bool CostEncodedEnabled() {
  int state = g_cost_encoded.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* env = std::getenv("FEDMP_COST_ENCODED");
    state = (env != nullptr && env[0] == '1') ? 1 : 0;
    g_cost_encoded.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void SetCostEncodedEnabled(bool on) {
  g_cost_encoded.store(on ? 1 : 0, std::memory_order_relaxed);
}

double CompSeconds(const nn::ModelSpec& model, int64_t tau,
                   int64_t batch_size, const DeviceRoundSample& device,
                   const CostModelOptions& options) {
  FEDMP_CHECK_GT(tau, 0);
  FEDMP_CHECK_GT(batch_size, 0);
  FEDMP_CHECK_GT(device.flops_per_sec, 0.0);
  const double fwd = static_cast<double>(model.ForwardFlopsPerSample());
  const double train_flops = static_cast<double>(tau) *
                             static_cast<double>(batch_size) * fwd *
                             (1.0 + options.backward_flops_factor);
  return train_flops / device.flops_per_sec;
}

double CommSeconds(double down_bytes, double up_bytes,
                   const DeviceRoundSample& device,
                   const CostModelOptions& options) {
  FEDMP_CHECK_GT(device.uplink_bytes_per_sec, 0.0);
  FEDMP_CHECK_GT(device.downlink_bytes_per_sec, 0.0);
  return down_bytes / device.downlink_bytes_per_sec +
         up_bytes / device.uplink_bytes_per_sec +
         options.round_overhead_seconds;
}

RoundCost EstimateRoundCost(const nn::ModelSpec& model, int64_t tau,
                            int64_t batch_size,
                            const DeviceRoundSample& device,
                            const CostModelOptions& options) {
  const double bytes =
      static_cast<double>(model.NumParams()) * options.bytes_per_param;
  RoundCost cost;
  cost.comp_seconds = CompSeconds(model, tau, batch_size, device, options);
  cost.comm_seconds = CommSeconds(bytes, bytes, device, options);
  return cost;
}

RoundCost EstimateRoundCostNominal(const nn::ModelSpec& model, int64_t tau,
                                   int64_t batch_size,
                                   const DeviceProfile& device,
                                   const CostModelOptions& options) {
  DeviceRoundSample sample;
  sample.flops_per_sec = device.flops_per_sec;
  sample.uplink_bytes_per_sec = device.uplink_bytes_per_sec;
  sample.downlink_bytes_per_sec = device.downlink_bytes_per_sec;
  return EstimateRoundCost(model, tau, batch_size, sample, options);
}

}  // namespace fedmp::edge
