#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "obs/json_util.h"

namespace fedmp::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

void Counter::Add(double delta) {
  if (!Enabled()) return;
  Registry::Get().AddToSlot(id_, delta, /*bucket=*/-1);
}

void Gauge::Set(double value) {
  if (!Enabled()) return;
  value_.store(value, std::memory_order_relaxed);
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  size_t bucket = bounds_.size();  // overflow bucket
  for (size_t b = 0; b < bounds_.size(); ++b) {
    if (value <= bounds_[b]) {
      bucket = b;
      break;
    }
  }
  Registry::Get().AddToSlot(id_, value, static_cast<int>(bucket));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::Get() {
  static Registry* registry = new Registry();  // leaky: outlives thread exit
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, idx] : by_name_) {
    if (n == name) {
      MetricInfo& info = metrics_[static_cast<size_t>(idx)];
      return info.kind == MetricSnapshot::Kind::kCounter
                 ? static_cast<Counter*>(info.handle)
                 : nullptr;
    }
  }
  const int id = RegisterMetric(name, MetricSnapshot::Kind::kCounter, {});
  counters_.push_back(Counter(id));
  metrics_[static_cast<size_t>(id)].handle = &counters_.back();
  return &counters_.back();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, idx] : by_name_) {
    if (n == name) {
      MetricInfo& info = metrics_[static_cast<size_t>(idx)];
      return info.kind == MetricSnapshot::Kind::kGauge
                 ? static_cast<Gauge*>(info.handle)
                 : nullptr;
    }
  }
  const int id = RegisterMetric(name, MetricSnapshot::Kind::kGauge, {});
  gauges_.emplace_back();
  metrics_[static_cast<size_t>(id)].handle = &gauges_.back();
  return &gauges_.back();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::sort(bounds.begin(), bounds.end());
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, idx] : by_name_) {
    if (n == name) {
      MetricInfo& info = metrics_[static_cast<size_t>(idx)];
      return info.kind == MetricSnapshot::Kind::kHistogram
                 ? static_cast<Histogram*>(info.handle)
                 : nullptr;
    }
  }
  const int id =
      RegisterMetric(name, MetricSnapshot::Kind::kHistogram, bounds);
  histograms_.push_back(Histogram(id, std::move(bounds)));
  metrics_[static_cast<size_t>(id)].handle = &histograms_.back();
  return &histograms_.back();
}

int Registry::RegisterMetric(const std::string& name,
                             MetricSnapshot::Kind kind,
                             std::vector<double> bounds) {
  const int id = static_cast<int>(metrics_.size());
  metrics_.push_back(MetricInfo{name, kind, nullptr, std::move(bounds)});
  by_name_.emplace_back(name, id);
  return id;
}

Registry::Shard* Registry::LocalShard() {
  struct Owner {
    Shard* shard = nullptr;
    ~Owner() {
      if (shard != nullptr) Registry::Get().RetireShard(shard);
    }
  };
  thread_local Owner owner;
  if (owner.shard == nullptr) {
    owner.shard = new Shard();
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(owner.shard);
  }
  return owner.shard;
}

void Registry::AddToSlot(int id, double value, int bucket) {
  Shard* shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard->mu);
  if (shard->slots.size() <= static_cast<size_t>(id)) {
    shard->slots.resize(static_cast<size_t>(id) + 1);
  }
  Slot& slot = shard->slots[static_cast<size_t>(id)];
  slot.sum += value;
  slot.count += 1;
  if (bucket >= 0) {
    if (slot.buckets.size() <= static_cast<size_t>(bucket)) {
      slot.buckets.resize(static_cast<size_t>(bucket) + 1, 0);
    }
    slot.buckets[static_cast<size_t>(bucket)] += 1;
  }
}

void Registry::MergeSlots(std::vector<Slot>* into,
                          const std::vector<Slot>& from) {
  if (into->size() < from.size()) into->resize(from.size());
  for (size_t i = 0; i < from.size(); ++i) {
    Slot& dst = (*into)[i];
    const Slot& src = from[i];
    dst.sum += src.sum;
    dst.count += src.count;
    if (dst.buckets.size() < src.buckets.size()) {
      dst.buckets.resize(src.buckets.size(), 0);
    }
    for (size_t b = 0; b < src.buckets.size(); ++b) {
      dst.buckets[b] += src.buckets[b];
    }
  }
}

void Registry::RetireShard(Shard* shard) {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    MergeSlots(&retired_, shard->slots);
  }
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                shards_.end());
  delete shard;
}

std::vector<MetricSnapshot> Registry::Snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Slot> totals = retired_;
  totals.resize(metrics_.size());
  for (Shard* shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    MergeSlots(&totals, shard->slots);
  }
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (size_t id = 0; id < metrics_.size(); ++id) {
    const MetricInfo& info = metrics_[id];
    MetricSnapshot snap;
    snap.name = info.name;
    snap.kind = info.kind;
    switch (info.kind) {
      case MetricSnapshot::Kind::kCounter:
        snap.value = totals[id].sum;
        break;
      case MetricSnapshot::Kind::kGauge:
        snap.value = static_cast<Gauge*>(info.handle)
                         ->value_.load(std::memory_order_relaxed);
        break;
      case MetricSnapshot::Kind::kHistogram:
        snap.count = totals[id].count;
        snap.sum = totals[id].sum;
        snap.bounds = info.bounds;
        snap.bucket_counts = totals[id].buckets;
        snap.bucket_counts.resize(info.bounds.size() + 1, 0);
        break;
    }
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

double Registry::GaugeValue(const std::string& name, double fallback) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, idx] : by_name_) {
    if (n != name) continue;
    const MetricInfo& info = metrics_[static_cast<size_t>(idx)];
    if (info.kind != MetricSnapshot::Kind::kGauge) return fallback;
    return static_cast<Gauge*>(info.handle)
        ->value_.load(std::memory_order_relaxed);
  }
  return fallback;
}

std::string Registry::ToText() {
  std::string out;
  char buf[160];
  for (const MetricSnapshot& m : Snapshot()) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%s %.6g\n", m.name.c_str(), m.value);
        out += buf;
        break;
      case MetricSnapshot::Kind::kHistogram:
        std::snprintf(buf, sizeof(buf), "%s count=%lld sum=%.6g\n",
                      m.name.c_str(), static_cast<long long>(m.count), m.sum);
        out += buf;
        for (size_t b = 0; b < m.bucket_counts.size(); ++b) {
          if (b < m.bounds.size()) {
            std::snprintf(buf, sizeof(buf), "%s{le=%.6g} %lld\n",
                          m.name.c_str(), m.bounds[b],
                          static_cast<long long>(m.bucket_counts[b]));
          } else {
            std::snprintf(buf, sizeof(buf), "%s{le=+inf} %lld\n",
                          m.name.c_str(),
                          static_cast<long long>(m.bucket_counts[b]));
          }
          out += buf;
        }
        break;
    }
  }
  return out;
}

std::string Registry::ToJson() {
  std::string out = "{";
  bool first = true;
  char buf[96];
  for (const MetricSnapshot& m : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(m.name) + "\":";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        out += JsonNumber(m.value, 6);
        break;
      case MetricSnapshot::Kind::kHistogram:
        std::snprintf(buf, sizeof(buf), "{\"count\":%lld,\"sum\":%s",
                      static_cast<long long>(m.count),
                      JsonNumber(m.sum, 6).c_str());
        out += buf;
        out += ",\"buckets\":[";
        for (size_t b = 0; b < m.bucket_counts.size(); ++b) {
          if (b > 0) out += ",";
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(m.bucket_counts[b]));
          out += buf;
        }
        out += "]}";
        break;
    }
  }
  out += "}";
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.clear();
  for (Shard* shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->slots.clear();
  }
  for (Gauge& g : gauges_) g.value_.store(0.0, std::memory_order_relaxed);
}

Counter* GetCounter(const std::string& name) {
  return Registry::Get().GetCounter(name);
}
Gauge* GetGauge(const std::string& name) {
  return Registry::Get().GetGauge(name);
}
Histogram* GetHistogram(const std::string& name,
                        std::vector<double> bounds) {
  return Registry::Get().GetHistogram(name, std::move(bounds));
}

double HistogramQuantile(const MetricSnapshot& snapshot, double q) {
  if (snapshot.kind != MetricSnapshot::Kind::kHistogram ||
      snapshot.count <= 0 || snapshot.bucket_counts.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::min(1.0, std::max(0.0, q));
  // Target rank among the `count` observations (1-based, Prometheus-style
  // rank = q * count, at least 1 so q=0 maps to the first observation).
  const double rank = std::max(1.0, q * static_cast<double>(snapshot.count));
  int64_t cumulative = 0;
  for (size_t b = 0; b < snapshot.bucket_counts.size(); ++b) {
    const int64_t in_bucket = snapshot.bucket_counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (b >= snapshot.bounds.size()) {
        // Overflow bucket has no upper edge: clamp to the last finite bound
        // (NaN when every observation overflowed an unbounded histogram).
        return snapshot.bounds.empty()
                   ? std::numeric_limits<double>::quiet_NaN()
                   : snapshot.bounds.back();
      }
      const double lo = b == 0 ? 0.0 : snapshot.bounds[b - 1];
      const double hi = snapshot.bounds[b];
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * within;
    }
    cumulative += in_bucket;
  }
  return snapshot.bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                                 : snapshot.bounds.back();
}

}  // namespace fedmp::obs
