#ifndef FEDMP_OBS_METRICS_H_
#define FEDMP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

// Lock-cheap metrics for the FL engines, kernels, and pool: counters,
// gauges, and fixed-bucket histograms. Handles are resolved once by name
// (`GetCounter("pool.tasks")`) and are stable for the process lifetime;
// counter/histogram writes land in a per-thread shard guarded by that
// shard's own mutex (uncontended except while a scrape is merging), so the
// hot path is one relaxed atomic load (the enabled flag) plus an
// uncontended lock. Shards are merged at scrape time; threads that exit
// fold their residue into a retired pool first, so no sample is lost when
// the thread pool is resized.
//
// This module is deliberately dependency-free (std only) so the lowest
// layers (common/thread_pool) can use it without a library cycle.
namespace fedmp::obs {

// Global telemetry switch. Off by default: every recording hook reduces to
// a relaxed atomic load and a branch. Enabled by obs::Enable (trace.h) or
// the FEDMP_TRACE environment variable.
bool Enabled();
void SetEnabled(bool on);

class Registry;

class Counter {
 public:
  // Adds `delta` (default 1). No-op while telemetry is disabled.
  void Add(double delta = 1.0);

 private:
  friend class Registry;
  explicit Counter(int id) : id_(id) {}
  int id_;
};

class Gauge {
 public:
  Gauge() : value_(0.0) {}  // public: deque::emplace_back needs it

  // Last-write-wins. No-op while telemetry is disabled.
  void Set(double value);

 private:
  friend class Registry;
  std::atomic<double> value_;
};

class Histogram {
 public:
  // Records `value` into the first bucket whose upper bound is >= value
  // (the last bucket is the +inf overflow). No-op while disabled.
  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class Registry;
  Histogram(int id, std::vector<double> bounds)
      : id_(id), bounds_(std::move(bounds)) {}
  int id_;
  std::vector<double> bounds_;
};

// One metric's merged state at scrape time.
struct MetricSnapshot {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind = Kind::kCounter;
  double value = 0.0;                  // counter total or gauge value
  int64_t count = 0;                   // histogram: number of observations
  double sum = 0.0;                    // histogram: sum of observations
  std::vector<double> bounds;          // histogram upper bounds
  std::vector<int64_t> bucket_counts;  // size bounds.size() + 1 (overflow)
};

class Registry {
 public:
  // Process-wide registry (leaky singleton: safe from thread exit hooks).
  static Registry& Get();

  // Resolve-once handles. Same name -> same handle; a histogram re-resolved
  // with different bounds keeps the bounds of the first registration.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  // Merges every live thread shard plus retired residue. Sorted by name.
  std::vector<MetricSnapshot> Snapshot();

  // Current value of the named gauge, or `fallback` when no gauge of that
  // name exists. Cheap (one registry lock + one atomic load, no shard
  // merge), so the watchdog can poll per round.
  double GaugeValue(const std::string& name, double fallback = 0.0);

  // "name value" lines (histograms: one line per bucket) for consoles.
  std::string ToText();
  // One JSON object keyed by metric name.
  std::string ToJson();

  // Zeroes every value (handles stay valid). Tests only.
  void Reset();

 private:
  friend class Counter;
  friend class Histogram;

  struct MetricInfo {
    std::string name;
    MetricSnapshot::Kind kind;
    void* handle = nullptr;          // Counter* / Gauge* / Histogram*
    std::vector<double> bounds;      // kHistogram only
  };

  // Per-thread accumulation slots, indexed by metric id.
  struct Slot {
    double sum = 0.0;
    int64_t count = 0;
    std::vector<int64_t> buckets;
  };
  struct Shard {
    std::mutex mu;
    std::vector<Slot> slots;
  };

  Registry() = default;
  int RegisterMetric(const std::string& name, MetricSnapshot::Kind kind,
                     std::vector<double> bounds);
  Shard* LocalShard();
  void RetireShard(Shard* shard);
  void AddToSlot(int id, double value, int bucket);
  static void MergeSlots(std::vector<Slot>* into,
                         const std::vector<Slot>& from);

  std::mutex mu_;  // guards metrics_, by_name_, shards_, retired_
  std::deque<MetricInfo> metrics_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<std::pair<std::string, int>> by_name_;  // name -> handle index
  std::vector<Shard*> shards_;
  std::vector<Slot> retired_;
};

// Shorthands for the resolve-once pattern at call sites.
Counter* GetCounter(const std::string& name);
Gauge* GetGauge(const std::string& name);
Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

// Estimated value at quantile q in [0, 1] from a histogram snapshot, by
// linear interpolation within the bucket that contains the target rank
// (Prometheus histogram_quantile semantics: bucket lower edge is the
// previous bound, 0 for the first). The overflow bucket clamps to the last
// finite bound. Returns NaN for an empty histogram or a non-histogram
// snapshot; q is clamped to [0, 1].
double HistogramQuantile(const MetricSnapshot& snapshot, double q);

}  // namespace fedmp::obs

#endif  // FEDMP_OBS_METRICS_H_
