#include "obs/sampling.h"

#include <atomic>
#include <cstdlib>

namespace fedmp::obs {

namespace {

// One atomic word each: ShouldTraceWorker sits on the trainers' per-worker
// emission path, so the inactive case must stay a relaxed load + branch
// (same budget as the obs enable flag).
std::atomic<int64_t> g_budget{0};
std::atomic<uint64_t> g_seed{0};

// splitmix64 finalizer — the same mix the Rng constructor applies to the
// FaultPlan stream seeds, reproduced here so obs stays dependency-free.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

void EnableTraceSampling(const SamplingOptions& options) {
  g_seed.store(options.seed, std::memory_order_relaxed);
  g_budget.store(options.per_round_budget > 0 ? options.per_round_budget : 0,
                 std::memory_order_relaxed);
}

void DisableTraceSampling() {
  g_budget.store(0, std::memory_order_relaxed);
}

bool TraceSamplingActive() {
  return g_budget.load(std::memory_order_relaxed) > 0;
}

int64_t TraceSampleBudget() {
  return g_budget.load(std::memory_order_relaxed);
}

bool MaybeEnableSamplingFromEnv(uint64_t run_seed) {
  if (TraceSamplingActive()) return true;
  const char* env = std::getenv("FEDMP_TRACE_SAMPLE");
  if (env == nullptr) return false;
  const int64_t budget = std::atoll(env);
  if (budget <= 0) return false;
  SamplingOptions options;
  options.per_round_budget = budget;
  options.seed = run_seed;
  EnableTraceSampling(options);
  return true;
}

bool SampleWorker(uint64_t seed, int64_t round, int worker, int num_workers,
                  int64_t budget) {
  if (budget <= 0 || num_workers <= 0) return true;
  if (budget >= num_workers) return true;
  // Same (round, worker) stream-derivation constants as
  // edge::FaultPlan::StreamFor, with a salt so the sampling stream never
  // aliases a fault stream of the same seed.
  const uint64_t h = Mix64(
      seed ^ 0x0B5E55EDFEEDFACEULL ^
      (static_cast<uint64_t>(round + 1) * 0xD6E8FEB86659FD93ULL) ^
      (static_cast<uint64_t>(worker + 1) * 0x8CB92BA72F3D8DD7ULL));
  return static_cast<int64_t>(h % static_cast<uint64_t>(num_workers)) <
         budget;
}

bool ShouldTraceWorker(int64_t round, int worker, int num_workers) {
  const int64_t budget = g_budget.load(std::memory_order_relaxed);
  if (budget <= 0) return true;
  return SampleWorker(g_seed.load(std::memory_order_relaxed), round, worker,
                      num_workers, budget);
}

void SamplingResetForTest() {
  g_budget.store(0, std::memory_order_relaxed);
  g_seed.store(0, std::memory_order_relaxed);
}

}  // namespace fedmp::obs
