#ifndef FEDMP_OBS_LEDGER_H_
#define FEDMP_OBS_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <vector>

// Deterministic resource-accounting ledger: exact FLOP (multiply-accumulate)
// and payload-byte attribution for every worker round-trip, rolled up
// per-worker -> per-cluster (fog) -> per-round.
//
// Counts are 64-bit integers computed analytically at dispatch time from
// the *pruned* sub-model shapes (nn/flops.h) and payload shape math
// (fl/resource_accounting.h) — a pure function of the mask and round plan,
// never of wall time or thread interleaving. Integer addition is
// associative, so the fold order does not matter and every total is
// bit-identical at any FEDMP_THREADS / shard count. The ledger itself is
// std-only (obs sits below nn/fl) and lock-free: trainers accumulate
// per-worker entries from their serial commit paths (or slot-indexed
// buffers) and Commit() once per round from the driver thread.
//
// The instrumented cross-check: nn/ matmul kernels add their algorithmic
// MAC count (m·n·k) to a thread-local counter when counting is enabled.
// LocalTrain runs entirely on one lane thread, so reading the counter
// delta around the call yields the kernel-truth MACs for that worker —
// compared against the analytic count by tests and, when
// FEDMP_LEDGER_CHECK=1, by the trainers on every dispatch.
namespace fedmp::obs {

// ---------------------------------------------------------------------------
// Instrumented MAC counting (hot path: one relaxed load + one TL add)
// ---------------------------------------------------------------------------

namespace internal {
extern std::atomic<bool> g_mac_counting;
extern thread_local int64_t t_mac_count;
}  // namespace internal

// Globally arms the kernel counters (off by default; the add below is a
// single predictable branch when disarmed, so leaving the hooks compiled
// into the kernels costs nothing measurable).
void SetMacCountingEnabled(bool on);
bool MacCountingEnabled();

// Called by the matmul kernels at entry with the algorithmic MAC count
// (m·n·k) — counted on the calling thread before any panel parallelism,
// so the total lands on the thread that issued the kernel.
inline void CountMacs(int64_t macs) {
  if (internal::g_mac_counting.load(std::memory_order_relaxed)) {
    internal::t_mac_count += macs;
  }
}

// This thread's accumulated MAC count since the last reset.
int64_t ThreadMacCount();
void ResetThreadMacCount();

// ---------------------------------------------------------------------------
// Resource attribution
// ---------------------------------------------------------------------------

// Exact resources attributed to one worker's round-trip.
struct WorkerResources {
  int64_t flops_forward = 0;   // analytic MACs, forward passes of LocalTrain
  int64_t flops_backward = 0;  // analytic MACs, backward passes
  int64_t bytes_down = 0;      // PS -> worker: dense f32 sub weights + mask
  int64_t bytes_up = 0;        // worker -> PS: trained payload (compressed)
  int64_t bytes_residual = 0;  // PS-side residual storage (quantized or f32)
  int64_t dense_flops = 0;     // unpruned baseline MACs for the same rows
  int64_t dense_bytes = 0;     // unpruned dense f32 round-trip bytes
  int64_t rows = 0;            // training examples processed

  int64_t flops() const { return flops_forward + flops_backward; }
  int64_t wire_bytes() const { return bytes_down + bytes_up; }

  WorkerResources& operator+=(const WorkerResources& o);
};

// One round's rollup: fleet total plus per-fog cluster subtotals.
struct RoundResources {
  int64_t round = -1;
  int64_t workers = 0;  // round-trips folded in
  WorkerResources total;
  std::vector<WorkerResources> per_fog;  // empty when no hierarchy rollup

  // Fraction of the dense-baseline wire bytes that pruning/compression
  // saved this round: 1 - wire/dense. 0 when no baseline was recorded.
  double BytesSavedRatio() const;
  // Same for compute: 1 - flops/dense_flops.
  double FlopsSavedRatio() const;
};

// Per-round accumulator. NOT thread-safe by design: all writes must come
// from one thread at a time (the trainers' serial commit paths) or from
// slot-indexed buffers folded by the driver; the determinism contract is
// documented above. Commit() publishes the round to metrics gauges, a
// logical `resource` instant event on the PS track (plus per-fog
// `resource.fog` events while the fog count is small enough to bound the
// O(fleet) telemetry term), and the `fl.ledger.*` Chrome counter track.
class Ledger {
 public:
  // Starts accumulation for `round`. num_fogs > 0 sizes the cluster rollup.
  void BeginRound(int64_t round, int num_fogs = 0);

  // Folds one worker round-trip into the current round (and fog cluster
  // `fog` when the rollup is active; pass -1 for "no cluster").
  void Add(const WorkerResources& w, int fog = -1);

  const RoundResources& current() const { return current_; }

  // Closes the round: emits telemetry (when obs::Enabled()), folds the
  // round into the cumulative totals, and returns the round's rollup.
  RoundResources Commit();

  // Lifetime totals across all committed rounds.
  const WorkerResources& cumulative() const { return cumulative_; }
  int64_t rounds_committed() const { return rounds_committed_; }

 private:
  RoundResources current_;
  WorkerResources cumulative_;
  int64_t rounds_committed_ = 0;
};

// Cap on per-fog `resource.fog` events per round: past this many fogs only
// the fleet total is emitted (the per-fog subtotals stay available in the
// returned RoundResources). Pure function of config, so the gate is
// thread-count invariant.
inline constexpr int kMaxPerFogEvents = 64;

}  // namespace fedmp::obs

#endif  // FEDMP_OBS_LEDGER_H_
