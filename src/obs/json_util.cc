#include "obs/json_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace fedmp::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v, int precision) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

namespace {

// Cursor over the text being validated.
struct Parser {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " at byte %zu", pos);
    error = what + buf;
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Peek(char* c) {
    if (pos >= text.size()) return false;
    *c = text[pos];
    return true;
  }

  bool Literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') {
      if (pos + n >= text.size() || text[pos + n] != lit[n]) {
        return Fail(std::string("expected '") + lit + "'");
      }
      ++n;
    }
    pos += n;
    return true;
  }

  bool String() {
    if (pos >= text.size() || text[pos] != '"') return Fail("expected '\"'");
    ++pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) break;
        const char e = text[pos];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos + static_cast<size_t>(k) >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    text[pos + static_cast<size_t>(k)]))) {
              return Fail("bad \\u escape");
            }
          }
          pos += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape");
        }
      }
      ++pos;
    }
    return Fail("unterminated string");
  }

  bool Number() {
    const size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos == start || (pos == start + 1 && text[start] == '-')) {
      return Fail("expected number");
    }
    return true;
  }

  bool Value(int depth) {
    if (depth > 128) return Fail("nesting too deep");
    SkipWs();
    char c;
    if (!Peek(&c)) return Fail("expected value");
    switch (c) {
      case '{': return Object(depth);
      case '[': return Array(depth);
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object(int depth) {
    ++pos;  // '{'
    SkipWs();
    char c;
    if (Peek(&c) && c == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Literal(":")) return false;
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated object");
      ++pos;
      if (c == '}') return true;
      if (c != ',') return Fail("expected ',' or '}'");
    }
  }

  bool Array(int depth) {
    ++pos;  // '['
    SkipWs();
    char c;
    if (Peek(&c) && c == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated array");
      ++pos;
      if (c == ']') return true;
      if (c != ',') return Fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool JsonSyntaxValid(const std::string& text, std::string* error) {
  Parser p{text, /*pos=*/0, /*error=*/{}};
  if (!p.Value(0)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.SkipWs();
  if (p.pos != text.size()) {
    if (error != nullptr) *error = "trailing garbage";
    return false;
  }
  return true;
}

}  // namespace fedmp::obs
