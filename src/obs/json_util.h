#ifndef FEDMP_OBS_JSON_UTIL_H_
#define FEDMP_OBS_JSON_UTIL_H_

#include <string>

namespace fedmp::obs {

// Escapes `s` for inclusion inside a JSON string literal (quotes not added).
std::string JsonEscape(const std::string& s);

// Renders a double as a JSON value: fixed formatting for determinism,
// "null" for non-finite values (JSON has no NaN/Inf).
std::string JsonNumber(double v, int precision);

// Minimal recursive-descent JSON syntax checker (no DOM). Used by the tests
// and the CI trace-validation step to assert exporter output parses. On
// failure returns false and, when `error` is non-null, a position-tagged
// message.
bool JsonSyntaxValid(const std::string& text, std::string* error = nullptr);

}  // namespace fedmp::obs

#endif  // FEDMP_OBS_JSON_UTIL_H_
