#ifndef FEDMP_OBS_TRACE_H_
#define FEDMP_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

// Scoped spans + exporters. A span records BOTH clocks:
//   * wall time (steady_clock microseconds) — what Perfetto/chrome://tracing
//     draws and what overhead analysis needs;
//   * the deterministic simulated time (edge::SimClock seconds, mirrored in
//     via SetLogicalTime) — a pure function of the run seed, so the logical
//     view of a trace is bit-identical across runs and thread counts.
// Every event lives on a track (PS, one per FL worker, one per pool lane).
// Worker/PS events additionally get a per-track sequence number assigned in
// emission order; since each of those tracks is only ever written by one
// thread at a time, the sequence — and hence EventsJsonl() — is identical
// at any FEDMP_THREADS. Pool-lane events depend on OS scheduling, so they
// appear in the Chrome trace only, never in the logical export.
//
// All hooks are near-no-ops while telemetry is disabled (one relaxed atomic
// load); see obs/metrics.h for the enable flag.
namespace fedmp::obs {

struct TraceOptions {
  // Chrome trace-event JSON written by Flush(); empty = skip.
  std::string chrome_trace_path;
  // Deterministic structured event log (one JSON object per line); empty =
  // skip.
  std::string events_jsonl_path;
  // Metrics snapshot JSON; empty = skip.
  std::string metrics_json_path;
  // Run-manifest JSON (git sha, config, seeds, thread count, toggles —
  // whatever the engines push in via SetRunInfo); empty = skip.
  std::string manifest_path;
  // Pool-lane chunk events shorter than this never reach the buffer (they
  // would swamp the trace: kernels issue thousands of tiny chunks).
  double pool_event_min_us = 200.0;
  // Hard cap on buffered events (FEDMP_TRACE_MAX_EVENTS overrides when
  // enabling from the environment). Past it new events are dropped, counted
  // in the obs.trace.dropped counter and DroppedEventCount(); sequence
  // numbers are still assigned, so the flight recorder keeps recording the
  // tail with correct ordering after the main buffer saturates. A cap of 0
  // is the ring-only mode the flight recorder's env enabling uses: nothing
  // is buffered here (and drops are not counted — by construction every
  // event "drops") while the bounded ring keeps the recent history.
  int64_t max_events = 1000000;
};

// Turns telemetry on (idempotent; replaces the options).
void Enable(const TraceOptions& options = {});
// Turns telemetry off. Buffered events stay until ResetForTest/re-Enable.
void Disable();
// Enables from the environment: FEDMP_TRACE=<chrome.json> and/or
// FEDMP_TRACE_JSONL=<events.jsonl> (FEDMP_TRACE_METRICS=<metrics.json>,
// FEDMP_TRACE_MANIFEST=<manifest.json>).
// Returns whether telemetry ended up enabled. Called by the trainers, so
// `FEDMP_TRACE=trace.json ./examples/quickstart` needs no code changes.
bool MaybeEnableFromEnv();
// Writes the configured export files from the current buffers (no-op when
// disabled or no path is configured). Keeps recording.
void Flush();

// Mirrors the engines' simulated clock into the recorder (atomic).
void SetLogicalTime(double sim_seconds);
double LogicalTime();

// Wall microseconds since the process-wide trace epoch.
double WallNowUs();

// ---------------------------------------------------------------------------
// Tracks
// ---------------------------------------------------------------------------

struct Track {
  enum class Kind : uint8_t { kMain = 0, kPs, kWorker, kPool };
  Kind kind = Kind::kMain;
  int index = 0;
};

inline Track MainTrack() { return Track{Track::Kind::kMain, 0}; }
inline Track PsTrack() { return Track{Track::Kind::kPs, 0}; }
inline Track WorkerTrack(int worker) {
  return Track{Track::Kind::kWorker, worker};
}
inline Track PoolTrack(int lane) { return Track{Track::Kind::kPool, lane}; }

// The thread's default track for spans that don't pass one explicitly
// (e.g. the pruner emitting from inside a worker's lane).
class TrackScope {
 public:
  explicit TrackScope(Track track);
  ~TrackScope();
  TrackScope(const TrackScope&) = delete;
  TrackScope& operator=(const TrackScope&) = delete;

 private:
  Track previous_;
};

// Thread-locally suppresses span/instant emission while in scope (pool
// chunk recording is unaffected — pool tracks are bounded by lane count,
// not fleet size). This is how the trainers extend the trace-sampling plan
// to spans emitted by layers that have no worker context: the pruner's
// "prune" span rides whatever lane called it, so the lane mutes itself for
// sampled-out workers instead of teaching the library about sampling. At
// 100k workers one unsampled library span per worker is an O(fleet)
// telemetry term. A `mute` of false is a no-op scope.
class TraceMuteScope {
 public:
  explicit TraceMuteScope(bool mute);
  ~TraceMuteScope();
  TraceMuteScope(const TraceMuteScope&) = delete;
  TraceMuteScope& operator=(const TraceMuteScope&) = delete;

 private:
  bool previous_;
};

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

// A span/event argument value (int, double, or string).
struct ArgValue {
  enum class Kind : uint8_t { kInt, kDouble, kString } kind;
  int64_t i = 0;
  double d = 0.0;
  std::string s;

  ArgValue(int v) : kind(Kind::kInt), i(v) {}                   // NOLINT
  ArgValue(long v) : kind(Kind::kInt), i(v) {}                  // NOLINT
  ArgValue(long long v) : kind(Kind::kInt), i(v) {}             // NOLINT
  ArgValue(unsigned v) : kind(Kind::kInt), i(v) {}              // NOLINT
  ArgValue(double v) : kind(Kind::kDouble), d(v) {}             // NOLINT
  ArgValue(const char* v) : kind(Kind::kString), s(v) {}        // NOLINT
  ArgValue(std::string v) : kind(Kind::kString), s(std::move(v)) {}  // NOLINT

  // Rendered as a JSON value (strings quoted+escaped, doubles %.17g so
  // audit tooling can reconstruct scores from logged fields exactly).
  std::string ToJson() const;
};

using Args = std::vector<std::pair<std::string, ArgValue>>;

// Records one key/value pair of run metadata for the manifest. obs is the
// lowest layer, so higher layers push identity (git sha, config, seeds,
// toggle states) in rather than obs reading it. Re-setting a key replaces
// its value; insertion order is preserved in the export. No-op while
// telemetry is disabled.
void SetRunInfo(const std::string& key, ArgValue value);

// The manifest as a JSON object (run_info keys in insertion order).
std::string ManifestJson();

// RAII span: records a complete ("X") event over its lifetime. Cheap when
// telemetry is disabled (a relaxed load, no clock reads). Nesting depth is
// tracked per thread; closing out of creation order is tolerated (the depth
// counter saturates at zero and the event is still recorded).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Args args = {});
  ScopedSpan(const char* name, Track track, Args args = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
  const char* name_;
  Track track_;
  double wall_begin_us_ = 0.0;
  double logical_begin_ = 0.0;
  int depth_ = 0;
  Args args_;
};

#define OBS_SPAN_CONCAT_INNER(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT_INNER(a, b)
// Usage: OBS_SPAN("worker_train", {{"worker", k}, {"round", r}});
#define OBS_SPAN(...) \
  ::fedmp::obs::ScopedSpan OBS_SPAN_CONCAT(obs_span_, __COUNTER__)(__VA_ARGS__)

// A zero-duration event (async arrivals, fault detections, round markers).
void InstantEvent(const char* name, Args args = {});
void InstantEvent(const char* name, Track track, Args args = {});

// A zero-duration event EXCLUDED from the deterministic JSONL export, for
// values that depend on the host or thread count (RSS, wall-clock, cache
// hit rates — e.g. the watchdog's environment alerts). Appears in the
// Chrome trace only, like pool-lane events.
void InstantEventEnv(const char* name, Track track, Args args = {});

// A Chrome counter sample (ph "C"): each arg key becomes one series of the
// named counter track (e.g. the ledger's `fl.ledger.bytes` up/down plot).
// Chrome-trace only — the same values already reach the deterministic
// export through logical instant events, so counters stay env-class.
void CounterEvent(const char* name, Track track, Args args);

// Pool instrumentation hook (called by common/thread_pool.cc): records a
// chunk execution on the lane's pool track; chunks shorter than
// pool_event_min_us are dropped.
void RecordPoolChunk(int lane, double wall_begin_us, double wall_end_us,
                     int64_t iterations);

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

// Chrome trace-event JSON (load in Perfetto / chrome://tracing): one thread
// track per worker, the PS, and each pool lane, with both clocks (wall as
// ts/dur, simulated as args.t_sim).
std::string ChromeTraceJson();

// Deterministic structured log: one JSON object per line, worker/PS events
// only, sorted by (track, per-track sequence) with wall time excluded —
// bit-identical across runs of the same seed at any thread count.
std::string EventsJsonl();

// Number of events currently buffered (tests).
int64_t BufferedEventCount();

// Number of events dropped at the TraceOptions::max_events cap since the
// last reset (also exported as the obs.trace.dropped counter, except in
// ring-only mode — see TraceOptions::max_events).
int64_t DroppedEventCount();

// Clears buffered events, sequence counters, logical time, and the metrics
// registry. Tests only.
void ResetForTest();

}  // namespace fedmp::obs

#endif  // FEDMP_OBS_TRACE_H_
