#include "obs/snapshot.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "obs/analysis/report.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::obs {

namespace {

struct SnapshotState {
  std::mutex mu;
  SnapshotOptions options;
  bool active = false;
};

SnapshotState& TheState() {
  static SnapshotState* state = new SnapshotState();  // leaky
  return *state;
}

bool WriteAtomically(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "[obs] cannot write %s\n", tmp.c_str());
      return false;
    }
    out << content;
    if (!out.good()) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "[obs] cannot rename %s -> %s\n", tmp.c_str(),
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace

void EnableHealthSnapshots(const SnapshotOptions& options) {
  SnapshotState& state = TheState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.options = options;
  if (state.options.every_rounds < 1) state.options.every_rounds = 1;
  state.active = !state.options.path.empty();
}

void DisableHealthSnapshots() {
  SnapshotState& state = TheState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.active = false;
}

bool HealthSnapshotsActive() {
  SnapshotState& state = TheState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.active;
}

bool MaybeEnableSnapshotsFromEnv() {
  if (HealthSnapshotsActive()) return true;
  const char* path = std::getenv("FEDMP_HEALTH_SNAPSHOT");
  if (path == nullptr || *path == '\0') return false;
  SnapshotOptions options;
  options.path = path;
  if (const char* every = std::getenv("FEDMP_HEALTH_SNAPSHOT_EVERY")) {
    const int64_t k = std::atoll(every);
    if (k > 0) options.every_rounds = k;
  }
  if (const char* metrics = std::getenv("FEDMP_HEALTH_SNAPSHOT_METRICS")) {
    options.metrics_text_path = metrics;
  }
  EnableHealthSnapshots(options);
  return true;
}

bool HealthSnapshotDue(int64_t round) {
  SnapshotState& state = TheState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.active) return false;
  return round % state.options.every_rounds == 0;
}

bool WriteHealthSnapshot(int64_t round) {
  SnapshotOptions options;
  {
    SnapshotState& state = TheState();
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.active) return false;
    options = state.options;
  }
  analysis::ReportInputs inputs;
  inputs.manifest_json = ManifestJson();
  // Bounded work when the flight recorder is on: the ring holds O(capacity)
  // events. Without it the full buffer serializes — fine for short runs,
  // which is the only configuration that has one.
  inputs.events_jsonl = FlightRecorderEnabled() ? FlightRecorderEventsJsonl()
                                                : EventsJsonl();
  inputs.metrics_json = Registry::Get().ToJson();
  analysis::Report report = analysis::BuildReport(inputs);
  // Stamp the snapshot boundary into the document (the schema tolerates
  // unknown keys; `round` tells a tailing reader how fresh the file is).
  if (!report.json.empty() && report.json.back() == '}') {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"snapshot_round\":%lld}",
                  static_cast<long long>(round));
    report.json.pop_back();
    report.json += buf;
  }
  bool ok = WriteAtomically(options.path, report.json + "\n");
  if (!options.metrics_text_path.empty()) {
    ok = WriteAtomically(options.metrics_text_path,
                         Registry::Get().ToText()) &&
         ok;
  }
  return ok;
}

void SnapshotResetForTest() {
  SnapshotState& state = TheState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.options = SnapshotOptions();
  state.active = false;
}

}  // namespace fedmp::obs
