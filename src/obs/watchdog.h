#ifndef FEDMP_OBS_WATCHDOG_H_
#define FEDMP_OBS_WATCHDOG_H_

#include <cstdint>
#include <string>
#include <vector>

// In-run anomaly watchdog: declarative rules evaluated at round boundaries,
// so a wedged fog region or a straggler blowup in round 400 of a long chaos
// run surfaces the moment it happens instead of after the process ends.
//
// Rules split into two determinism classes:
//   * deterministic rules — straggler gap vs median, fog-region silence,
//     accuracy stall/NaN — read only simulated-time quantities, so their
//     obs.alert events land in the logical export (bit-identical across
//     thread counts) and fedmp_report's Alerts section;
//   * environment rules — peak RSS over budget, model-cache hit-rate
//     collapse — read host-dependent values and emit Chrome-trace-only
//     alerts (InstantEventEnv), keeping the logical export pure.
//
// Every alert increments the obs.alerts counter and triggers a flight-
// recorder dump (reason "alert:<rule>"), so the evidence window around the
// anomaly is preserved even if the run keeps going for hours.
namespace fedmp::obs {

struct WatchdogRules {
  // Straggler blowup: straggler_gap_max > factor x median survivor
  // completion time. <= 0 disables.
  double straggler_gap_factor = 8.0;
  // Fog silence: a fog region contributes zero admitted updates for this
  // many consecutive rounds. <= 0 disables. Fires once when the streak
  // reaches the threshold, then re-arms only after the region recovers.
  int64_t fog_silent_rounds = 3;
  // Accuracy: NaN always alerts (when an evaluation happened this round);
  // a stall alerts after this many consecutive evaluations without an
  // improvement > accuracy_stall_eps. <= 0 disables the stall rule.
  int64_t accuracy_stall_evals = 0;
  double accuracy_stall_eps = 1e-3;
  // Environment rules (Chrome-trace-only alerts). <= 0 disables each.
  int64_t rss_budget_bytes = 0;
  double cache_hit_rate_floor = 0.0;
  // Hit-rate collapse is only judged after the cache had a chance to warm.
  int64_t cache_warmup_rounds = 8;
  // Resource-ledger rules (deterministic: ledger totals are pure functions
  // of the round plan). <= 0 disables each.
  // Comm blowup: a round's wire bytes exceed factor x the smallest round
  // observed so far (pruning regressing to near-dense transfers).
  double comm_bytes_blowup_factor = 0.0;
  // FLOP budget: a round's total MACs exceed this absolute budget.
  int64_t flop_budget = 0;
};

// Everything a round boundary knows, pushed in by the trainer (obs sits
// below common/, so it cannot read RSS or the aggregator itself).
struct WatchdogSignals {
  int64_t round = 0;
  // Deterministic (simulated-time) signals.
  double straggler_gap_max = 0.0;
  double median_completion_s = 0.0;
  int survivors = 0;
  // Admitted updates per fog region this round; empty for flat rounds.
  std::vector<int64_t> fog_participants;
  bool evaluated = false;   // did this round run an evaluation?
  double accuracy = 0.0;    // valid when evaluated (may be NaN)
  // Resource-ledger signals (deterministic; 0 when the ledger is idle).
  int64_t round_wire_bytes = 0;  // bytes_up + bytes_down, fleet total
  int64_t round_flops = 0;       // forward+backward MACs, fleet total
  // Environment signals (thread-count / host dependent).
  int64_t peak_rss_bytes = 0;
  double model_cache_hit_rate = -1.0;  // < 0: unknown this round
};

struct WatchdogAlert {
  std::string rule;    // "straggler_blowup", "fog_silent", "accuracy_nan",
                       // "accuracy_stall", "rss_over_budget",
                       // "cache_hit_rate_collapse", "comm_bytes_blowup",
                       // "flop_budget_regression"
  std::string detail;  // human one-liner
  int64_t round = 0;
  bool deterministic = true;  // logical-export eligible
  double value = 0.0;
  double threshold = 0.0;
  int fog = -1;  // fog_silent only
};

// Pure rule engine (unit-testable without the trace layer). Evaluate keeps
// the cross-round state: per-fog silence streaks and the best-accuracy
// tracker.
class Watchdog {
 public:
  explicit Watchdog(const WatchdogRules& rules) : rules_(rules) {}

  std::vector<WatchdogAlert> Evaluate(const WatchdogSignals& signals);

  const WatchdogRules& rules() const { return rules_; }

 private:
  WatchdogRules rules_;
  std::vector<int64_t> fog_silence_;  // consecutive silent rounds per fog
  bool has_best_accuracy_ = false;
  double best_accuracy_ = 0.0;
  int64_t evals_since_improvement_ = 0;
  int64_t min_round_wire_bytes_ = 0;  // comm-blowup baseline (0: none yet)
};

// Process-global instance the trainers feed. EnableWatchdog installs the
// rules (idempotent; resets streak state).
void EnableWatchdog(const WatchdogRules& rules = {});
void DisableWatchdog();
bool WatchdogActive();

// Enables from FEDMP_WATCHDOG: "1"/"on" for defaults, or a comma list of
// key=value overrides (straggler_factor, fog_rounds, acc_evals, acc_eps,
// rss_mb, cache_floor, cache_warmup, comm_factor, flop_budget), e.g.
//   FEDMP_WATCHDOG=straggler_factor=6,fog_rounds=2,rss_mb=500
// Returns whether the watchdog ended up active.
bool MaybeEnableWatchdogFromEnv();

// Runs the global watchdog over one round's signals: emits obs.alert
// events (logical for deterministic rules, Chrome-only otherwise), bumps
// the obs.alerts counter, and triggers one flight-recorder dump when any
// alert fired. Returns the number of alerts. No-op (0) while the watchdog
// is inactive or telemetry is disabled.
int WatchdogObserveRound(const WatchdogSignals& signals);

void WatchdogResetForTest();

}  // namespace fedmp::obs

#endif  // FEDMP_OBS_WATCHDOG_H_
