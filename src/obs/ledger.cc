#include "obs/ledger.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::obs {

namespace internal {
std::atomic<bool> g_mac_counting{false};
thread_local int64_t t_mac_count = 0;
}  // namespace internal

void SetMacCountingEnabled(bool on) {
  internal::g_mac_counting.store(on, std::memory_order_relaxed);
}

bool MacCountingEnabled() {
  return internal::g_mac_counting.load(std::memory_order_relaxed);
}

int64_t ThreadMacCount() { return internal::t_mac_count; }

void ResetThreadMacCount() { internal::t_mac_count = 0; }

WorkerResources& WorkerResources::operator+=(const WorkerResources& o) {
  flops_forward += o.flops_forward;
  flops_backward += o.flops_backward;
  bytes_down += o.bytes_down;
  bytes_up += o.bytes_up;
  bytes_residual += o.bytes_residual;
  dense_flops += o.dense_flops;
  dense_bytes += o.dense_bytes;
  rows += o.rows;
  return *this;
}

double RoundResources::BytesSavedRatio() const {
  if (total.dense_bytes <= 0) return 0.0;
  return 1.0 - static_cast<double>(total.wire_bytes()) /
                   static_cast<double>(total.dense_bytes);
}

double RoundResources::FlopsSavedRatio() const {
  if (total.dense_flops <= 0) return 0.0;
  return 1.0 - static_cast<double>(total.flops()) /
                   static_cast<double>(total.dense_flops);
}

void Ledger::BeginRound(int64_t round, int num_fogs) {
  current_ = RoundResources{};
  current_.round = round;
  if (num_fogs > 0) {
    current_.per_fog.assign(static_cast<size_t>(num_fogs), WorkerResources{});
  }
}

void Ledger::Add(const WorkerResources& w, int fog) {
  current_.total += w;
  ++current_.workers;
  if (fog >= 0 && static_cast<size_t>(fog) < current_.per_fog.size()) {
    current_.per_fog[static_cast<size_t>(fog)] += w;
  }
}

RoundResources Ledger::Commit() {
  const RoundResources round = current_;
  cumulative_ += round.total;
  ++rounds_committed_;

  if (Enabled()) {
    Registry& reg = Registry::Get();
    reg.GetGauge("fl.ledger.round.flops")
        ->Set(static_cast<double>(round.total.flops()));
    reg.GetGauge("fl.ledger.round.bytes_up")
        ->Set(static_cast<double>(round.total.bytes_up));
    reg.GetGauge("fl.ledger.round.bytes_down")
        ->Set(static_cast<double>(round.total.bytes_down));
    reg.GetGauge("fl.ledger.round.bytes_saved_ratio")
        ->Set(round.BytesSavedRatio());
    reg.GetCounter("fl.ledger.total.flops")
        ->Add(static_cast<double>(round.total.flops()));
    reg.GetCounter("fl.ledger.total.bytes")
        ->Add(static_cast<double>(round.total.wire_bytes()));

    // Deterministic per-round rollup on the PS track (driver thread; never
    // inside a TraceMuteScope, so sampling plans cannot perturb it).
    InstantEvent("resource", PsTrack(),
                 {{"round", round.round},
                  {"workers", round.workers},
                  {"flops_fwd", round.total.flops_forward},
                  {"flops_bwd", round.total.flops_backward},
                  {"bytes_up", round.total.bytes_up},
                  {"bytes_down", round.total.bytes_down},
                  {"bytes_residual", round.total.bytes_residual},
                  {"dense_flops", round.total.dense_flops},
                  {"dense_bytes", round.total.dense_bytes},
                  {"rows", round.total.rows},
                  {"bytes_saved_ratio", round.BytesSavedRatio()},
                  {"flops_saved_ratio", round.FlopsSavedRatio()}});
    if (static_cast<int>(round.per_fog.size()) <= kMaxPerFogEvents) {
      for (size_t f = 0; f < round.per_fog.size(); ++f) {
        const WorkerResources& w = round.per_fog[f];
        if (w.rows == 0 && w.wire_bytes() == 0) continue;
        InstantEvent("resource.fog", PsTrack(),
                     {{"round", round.round},
                      {"fog", static_cast<int64_t>(f)},
                      {"flops", w.flops()},
                      {"bytes_up", w.bytes_up},
                      {"bytes_down", w.bytes_down},
                      {"rows", w.rows}});
      }
    }
    CounterEvent("fl.ledger.flops", PsTrack(),
                 {{"macs", round.total.flops()}});
    CounterEvent("fl.ledger.bytes", PsTrack(),
                 {{"up", round.total.bytes_up},
                  {"down", round.total.bytes_down},
                  {"saved", round.total.dense_bytes -
                                round.total.wire_bytes()}});
  }

  current_ = RoundResources{};
  return round;
}

}  // namespace fedmp::obs
