#include "obs/flight_recorder.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

namespace fedmp::obs {

namespace {

// Logical and non-logical events are bounded separately: a burst of
// scheduling-dependent pool chunks must never evict deterministic history
// (that would make the JSONL half of a dump thread-count-dependent).
struct Ledger {
  // Track key -> that track's recent events (front = oldest). Tracks whose
  // deque drains to empty are erased: at fleet scale every worker has its
  // own track key, and 100k dead (map node + deque chunk) carcasses are a
  // per-worker RSS floor the ring exists to avoid.
  std::map<int, std::deque<internal::TraceEvent>> tracks;
  // (-size, key) for every non-empty track: begin() is the largest deque,
  // ties broken toward the smallest key — the same winner a linear scan
  // would pick, found in O(log tracks) instead of O(tracks) per eviction
  // (the scan made recording O(fleet) per event on 100k-worker rounds).
  std::set<std::pair<int64_t, int>> by_size;
  int64_t total = 0;
};

// Keeps by_size consistent with a track whose deque went old_size ->
// new_size. Zero-size entries are not indexed.
void Reindex(Ledger& ledger, int key, int64_t old_size, int64_t new_size) {
  if (old_size > 0) ledger.by_size.erase({-old_size, key});
  if (new_size > 0) ledger.by_size.insert({-new_size, key});
}

struct Ring {
  std::mutex mu;
  FlightRecorderOptions options;
  Ledger logical;
  Ledger other;
  int64_t evicted = 0;
};

Ring& TheRing() {
  static Ring* ring = new Ring();  // leaky: signal-handler + thread-exit safe
  return *ring;
}

// Fast gate read by the PushEvent hot path (bench_obs_overhead budget).
std::atomic<bool> g_flight_enabled{false};

// Pops the front of the largest deque (ties: smallest track key). The
// policy water-fills capacity across tracks, so the steady state is "each
// track keeps its most recent fair share" — and because the winner depends
// only on deque SIZES, never on wall time, the final logical contents are a
// pure function of the per-track event counts: bit-identical across thread
// counts for a fixed seed.
void EvictLargest(Ring& ring, Ledger& ledger) {
  if (ledger.by_size.empty()) return;
  const int key = ledger.by_size.begin()->second;
  auto it = ledger.tracks.find(key);
  const int64_t old_size = static_cast<int64_t>(it->second.size());
  it->second.pop_front();
  Reindex(ledger, key, old_size, old_size - 1);
  if (it->second.empty()) ledger.tracks.erase(it);
  --ledger.total;
  ++ring.evicted;
}

std::vector<internal::TraceEvent> SnapshotLocked(const Ring& ring,
                                                 bool include_other) {
  std::vector<internal::TraceEvent> events;
  events.reserve(static_cast<size_t>(ring.logical.total) +
                 (include_other ? static_cast<size_t>(ring.other.total) : 0));
  for (const auto& [key, dq] : ring.logical.tracks) {
    events.insert(events.end(), dq.begin(), dq.end());
  }
  if (include_other) {
    for (const auto& [key, dq] : ring.other.tracks) {
      events.insert(events.end(), dq.begin(), dq.end());
    }
  }
  return events;
}

bool WriteAtomically(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "[obs] cannot write %s\n", tmp.c_str());
      return false;
    }
    out << content;
    if (!out.good()) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "[obs] cannot rename %s -> %s\n", tmp.c_str(),
                 path.c_str());
    return false;
  }
  return true;
}

// Fatal-signal path: dump once, restore the default disposition, re-raise.
std::atomic<bool> g_in_signal_dump{false};

void FlightSignalHandler(int sig) {
  if (!g_in_signal_dump.exchange(true)) {
    char reason[32];
    std::snprintf(reason, sizeof(reason), "signal:%d", sig);
    DumpFlightRecorder(reason);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void InstallSignalHandlers() {
  std::signal(SIGTERM, FlightSignalHandler);
  std::signal(SIGINT, FlightSignalHandler);
  std::signal(SIGABRT, FlightSignalHandler);
  std::signal(SIGSEGV, FlightSignalHandler);
}

}  // namespace

void EnableFlightRecorder(const FlightRecorderOptions& options) {
  Ring& ring = TheRing();
  {
    std::lock_guard<std::mutex> lock(ring.mu);
    ring.options = options;
    if (ring.options.total_capacity < 1) ring.options.total_capacity = 1;
    if (ring.options.per_track_capacity < 1) {
      ring.options.per_track_capacity = 1;
    }
  }
  if (options.install_signal_handlers) InstallSignalHandlers();
  g_flight_enabled.store(true, std::memory_order_release);
}

void DisableFlightRecorder() {
  g_flight_enabled.store(false, std::memory_order_release);
}

bool FlightRecorderEnabled() {
  return g_flight_enabled.load(std::memory_order_acquire);
}

bool MaybeEnableFlightRecorderFromEnv() {
  if (FlightRecorderEnabled()) return true;
  const char* env = std::getenv("FEDMP_FLIGHT_RECORDER");
  if (env == nullptr) return false;
  const int64_t total = std::atoll(env);
  if (total <= 0) return false;
  FlightRecorderOptions options;
  options.total_capacity = total;
  if (const char* per_track = std::getenv("FEDMP_FLIGHT_PER_TRACK")) {
    const int64_t n = std::atoll(per_track);
    if (n > 0) options.per_track_capacity = n;
  }
  if (const char* prefix = std::getenv("FEDMP_FLIGHT_DUMP_PREFIX")) {
    options.dump_path_prefix = prefix;
  }
  if (!Enabled()) {
    // Ring-only mode: recording hooks run but the unbounded main buffer is
    // capped at zero, so the ring is the whole memory footprint.
    TraceOptions trace;
    trace.max_events = 0;
    Enable(trace);
  }
  EnableFlightRecorder(options);
  return true;
}

bool DumpFlightRecorder(const char* reason) {
  if (!FlightRecorderEnabled()) return false;
  Ring& ring = TheRing();
  std::vector<internal::TraceEvent> chrome_events;
  std::vector<internal::TraceEvent> logical_events;
  FlightRecorderOptions options;
  int64_t evicted = 0;
  {
    // try_lock, not lock: the fatal-signal handler may fire while another
    // thread holds the ring mutex; deadlocking inside a handler would turn
    // "no dump" into "hung process".
    std::unique_lock<std::mutex> lock(ring.mu, std::try_to_lock);
    if (!lock.owns_lock()) return false;
    chrome_events = SnapshotLocked(ring, /*include_other=*/true);
    logical_events = SnapshotLocked(ring, /*include_other=*/false);
    options = ring.options;
    evicted = ring.evicted;
  }
  // The dump reason rides as a Chrome-only metadata event so the JSONL half
  // stays a pure record of logical history (bit-identical across dumps
  // triggered at the same logical point).
  internal::TraceEvent marker;
  marker.name = "obs.flight_dump";
  marker.track = MainTrack();
  marker.wall_begin_us = marker.wall_end_us = WallNowUs();
  marker.logical_begin = marker.logical_end = LogicalTime();
  marker.instant = true;
  marker.logical = false;
  marker.args = {{"reason", reason},
                 {"events", static_cast<long long>(chrome_events.size())},
                 {"evicted", static_cast<long long>(evicted)}};
  chrome_events.push_back(std::move(marker));

  const std::string prefix = options.dump_path_prefix;
  const bool trace_ok = WriteAtomically(
      prefix + "_dump_trace.json",
      internal::ChromeTraceFromEvents(std::move(chrome_events)));
  const bool jsonl_ok = WriteAtomically(
      prefix + "_dump_events.jsonl",
      internal::EventsJsonlFromEvents(std::move(logical_events)));
  return trace_ok && jsonl_ok;
}

int64_t FlightRecorderEventCount() {
  Ring& ring = TheRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  return ring.logical.total + ring.other.total;
}

int64_t FlightRecorderEvictedCount() {
  Ring& ring = TheRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  return ring.evicted;
}

std::string FlightRecorderEventsJsonl() {
  Ring& ring = TheRing();
  std::vector<internal::TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(ring.mu);
    events = SnapshotLocked(ring, /*include_other=*/false);
  }
  return internal::EventsJsonlFromEvents(std::move(events));
}

void FlightRecorderResetForTest() {
  g_flight_enabled.store(false, std::memory_order_release);
  Ring& ring = TheRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.logical = Ledger();
  ring.other = Ledger();
  ring.evicted = 0;
  ring.options = FlightRecorderOptions();
  g_in_signal_dump.store(false);
}

namespace internal {

void FlightRecord(const TraceEvent& event) {
  Ring& ring = TheRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  Ledger& ledger = event.logical ? ring.logical : ring.other;
  const int key = TrackKey(event.track);
  std::deque<TraceEvent>& track = ledger.tracks[key];
  const int64_t old_size = static_cast<int64_t>(track.size());
  track.push_back(event);
  int64_t new_size = old_size + 1;
  ++ledger.total;
  if (new_size > ring.options.per_track_capacity) {
    // The push above makes new_size >= 1 even after this pop, so the track
    // never drains to empty here — only EvictLargest erases map entries.
    track.pop_front();
    --new_size;
    --ledger.total;
    ++ring.evicted;
  }
  Reindex(ledger, key, old_size, new_size);
  while (ledger.total > ring.options.total_capacity) {
    EvictLargest(ring, ledger);
  }
}

}  // namespace internal

}  // namespace fedmp::obs
