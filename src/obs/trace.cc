#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/json_util.h"
#include "obs/sampling.h"
#include "obs/snapshot.h"
#include "obs/watchdog.h"

namespace fedmp::obs {

using internal::TraceEvent;
using internal::TrackKey;

namespace {

struct Recorder {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::map<int, uint64_t> next_seq;  // track key -> next sequence number
  TraceOptions options;
  int64_t dropped = 0;
  // Run manifest: insertion-ordered key/value metadata pushed by the engines.
  std::vector<std::pair<std::string, ArgValue>> run_info;
};

Recorder& Rec() {
  static Recorder* recorder = new Recorder();  // leaky: thread-exit safe
  return *recorder;
}

std::atomic<double> g_logical_time{0.0};
std::atomic<double> g_pool_min_us{200.0};  // mirror of options (hot path)
thread_local Track t_default_track = MainTrack();
thread_local int t_span_depth = 0;
thread_local bool t_trace_muted = false;

void PushEvent(TraceEvent event) {
  Recorder& rec = Rec();
  std::lock_guard<std::mutex> lock(rec.mu);
  // Sequence numbers are assigned BEFORE the capacity check: the flight
  // recorder keeps recording past the main buffer's cap, and its events
  // must carry the same per-track ordering the unbounded buffer would have.
  if (event.logical) {
    event.track_seq = rec.next_seq[TrackKey(event.track)]++;
  }
  if (FlightRecorderEnabled()) {
    // Strict lock order: rec.mu -> ring.mu (FlightRecord only takes the
    // ring mutex; no ring path ever takes rec.mu).
    internal::FlightRecord(event);
  }
  if (static_cast<int64_t>(rec.events.size()) >= rec.options.max_events) {
    ++rec.dropped;
    if (rec.options.max_events > 0) {
      // Resolve-once outside the registry would race Enable(); a static
      // local is fine — Counter handles are process-stable.
      static Counter* dropped_counter = GetCounter("obs.trace.dropped");
      dropped_counter->Add(1);
    }
    return;
  }
  rec.events.push_back(std::move(event));
}

}  // namespace

std::string ArgValue::ToJson() const {
  char buf[48];
  switch (kind) {
    case Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(i));
      return buf;
    case Kind::kDouble:
      if (!std::isfinite(d)) return "null";  // JSON has no NaN/Inf
      // %.17g round-trips every double exactly: the decision audit
      // reconstructs UCB scores from these fields to 1e-9.
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      return buf;
    case Kind::kString:
      return "\"" + JsonEscape(s) + "\"";
  }
  return "null";
}

void Enable(const TraceOptions& options) {
  Recorder& rec = Rec();
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    rec.options = options;
  }
  g_pool_min_us.store(options.pool_event_min_us, std::memory_order_relaxed);
  SetEnabled(true);
}

void Disable() { SetEnabled(false); }

bool MaybeEnableFromEnv() {
  if (Enabled()) return true;
  const char* chrome = std::getenv("FEDMP_TRACE");
  const char* jsonl = std::getenv("FEDMP_TRACE_JSONL");
  const char* metrics = std::getenv("FEDMP_TRACE_METRICS");
  const char* manifest = std::getenv("FEDMP_TRACE_MANIFEST");
  if (chrome == nullptr && jsonl == nullptr && metrics == nullptr &&
      manifest == nullptr) {
    return false;
  }
  TraceOptions options;
  if (chrome != nullptr) options.chrome_trace_path = chrome;
  if (jsonl != nullptr) options.events_jsonl_path = jsonl;
  if (metrics != nullptr) options.metrics_json_path = metrics;
  if (manifest != nullptr) options.manifest_path = manifest;
  if (const char* cap = std::getenv("FEDMP_TRACE_MAX_EVENTS")) {
    const int64_t n = std::atoll(cap);
    if (n >= 0) options.max_events = n;
  }
  Enable(options);
  return true;
}

namespace {
void WriteFileOrWarn(const std::string& path, const std::string& content) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[obs] cannot write %s\n", path.c_str());
    return;
  }
  out << content;
}
}  // namespace

void Flush() {
  if (!Enabled()) return;
  TraceOptions options;
  {
    Recorder& rec = Rec();
    std::lock_guard<std::mutex> lock(rec.mu);
    options = rec.options;
  }
  WriteFileOrWarn(options.chrome_trace_path, ChromeTraceJson());
  WriteFileOrWarn(options.events_jsonl_path, EventsJsonl());
  if (!options.metrics_json_path.empty()) {
    WriteFileOrWarn(options.metrics_json_path, Registry::Get().ToJson());
  }
  if (!options.manifest_path.empty()) {
    WriteFileOrWarn(options.manifest_path, ManifestJson());
  }
  // A normal end-of-run flush also dumps the ring, so every recorded run
  // leaves the bounded artifacts too (CI validates them the same way it
  // validates the kill-path dumps).
  if (FlightRecorderEnabled()) DumpFlightRecorder("flush");
}

void SetRunInfo(const std::string& key, ArgValue value) {
  if (!Enabled()) return;
  Recorder& rec = Rec();
  std::lock_guard<std::mutex> lock(rec.mu);
  for (auto& [k, v] : rec.run_info) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  rec.run_info.emplace_back(key, std::move(value));
}

std::string ManifestJson() {
  std::vector<std::pair<std::string, ArgValue>> info;
  {
    Recorder& rec = Rec();
    std::lock_guard<std::mutex> lock(rec.mu);
    info = rec.run_info;
  }
  std::string out = "{\"run_info\":";
  out += internal::ArgsToJson(info);
  out += "}\n";
  return out;
}

void SetLogicalTime(double sim_seconds) {
  g_logical_time.store(sim_seconds, std::memory_order_relaxed);
}
double LogicalTime() {
  return g_logical_time.load(std::memory_order_relaxed);
}

double WallNowUs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

TrackScope::TrackScope(Track track) : previous_(t_default_track) {
  t_default_track = track;
}
TrackScope::~TrackScope() { t_default_track = previous_; }

TraceMuteScope::TraceMuteScope(bool mute) : previous_(t_trace_muted) {
  t_trace_muted = t_trace_muted || mute;
}

TraceMuteScope::~TraceMuteScope() { t_trace_muted = previous_; }

ScopedSpan::ScopedSpan(const char* name, Args args)
    : ScopedSpan(name, t_default_track, std::move(args)) {}

ScopedSpan::ScopedSpan(const char* name, Track track, Args args)
    : name_(name), track_(track) {
  if (!Enabled() || t_trace_muted) return;
  active_ = true;
  wall_begin_us_ = WallNowUs();
  logical_begin_ = LogicalTime();
  depth_ = t_span_depth++;
  args_ = std::move(args);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  if (t_span_depth > 0) --t_span_depth;  // tolerate unbalanced closes
  if (!Enabled()) return;  // disabled mid-span: drop the event
  TraceEvent event;
  event.name = name_;
  event.track = track_;
  event.wall_begin_us = wall_begin_us_;
  event.wall_end_us = WallNowUs();
  event.logical_begin = logical_begin_;
  event.logical_end = LogicalTime();
  event.depth = depth_;
  event.logical = track_.kind != Track::Kind::kPool;
  event.args = std::move(args_);
  PushEvent(std::move(event));
}

void InstantEvent(const char* name, Args args) {
  InstantEvent(name, t_default_track, std::move(args));
}

void InstantEvent(const char* name, Track track, Args args) {
  if (!Enabled() || t_trace_muted) return;
  TraceEvent event;
  event.name = name;
  event.track = track;
  event.wall_begin_us = event.wall_end_us = WallNowUs();
  event.logical_begin = event.logical_end = LogicalTime();
  event.depth = t_span_depth;
  event.instant = true;
  event.logical = track.kind != Track::Kind::kPool;
  event.args = std::move(args);
  PushEvent(std::move(event));
}

void InstantEventEnv(const char* name, Track track, Args args) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = name;
  event.track = track;
  event.wall_begin_us = event.wall_end_us = WallNowUs();
  event.logical_begin = event.logical_end = LogicalTime();
  event.depth = t_span_depth;
  event.instant = true;
  event.logical = false;  // Chrome trace only, by contract
  event.args = std::move(args);
  PushEvent(std::move(event));
}
void CounterEvent(const char* name, Track track, Args args) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = name;
  event.track = track;
  event.wall_begin_us = event.wall_end_us = WallNowUs();
  event.logical_begin = event.logical_end = LogicalTime();
  event.instant = true;
  event.logical = false;  // Chrome trace only, by contract
  event.counter = true;
  event.args = std::move(args);
  PushEvent(std::move(event));
}

void RecordPoolChunk(int lane, double wall_begin_us, double wall_end_us,
                     int64_t iterations) {
  if (!Enabled()) return;
  if (wall_end_us - wall_begin_us <
      g_pool_min_us.load(std::memory_order_relaxed)) {
    return;
  }
  TraceEvent event;
  event.name = "pool_chunk";
  event.track = PoolTrack(lane);
  event.wall_begin_us = wall_begin_us;
  event.wall_end_us = wall_end_us;
  event.logical_begin = event.logical_end = LogicalTime();
  event.logical = false;  // pool placement is scheduling-dependent
  event.args = {{"iters", iterations}};
  PushEvent(std::move(event));
}

std::string ChromeTraceJson() {
  std::vector<TraceEvent> events;
  {
    Recorder& rec = Rec();
    std::lock_guard<std::mutex> lock(rec.mu);
    events = rec.events;
  }
  return internal::ChromeTraceFromEvents(std::move(events));
}

std::string EventsJsonl() {
  std::vector<TraceEvent> events;
  {
    Recorder& rec = Rec();
    std::lock_guard<std::mutex> lock(rec.mu);
    events = rec.events;
  }
  return internal::EventsJsonlFromEvents(std::move(events));
}

int64_t BufferedEventCount() {
  Recorder& rec = Rec();
  std::lock_guard<std::mutex> lock(rec.mu);
  return static_cast<int64_t>(rec.events.size());
}

int64_t DroppedEventCount() {
  Recorder& rec = Rec();
  std::lock_guard<std::mutex> lock(rec.mu);
  return rec.dropped;
}

void ResetForTest() {
  Recorder& rec = Rec();
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    rec.events.clear();
    rec.next_seq.clear();
    rec.dropped = 0;
    rec.run_info.clear();
    rec.options = TraceOptions();
  }
  SetLogicalTime(0.0);
  Registry::Get().Reset();
  // One-stop teardown for the live tier, so tests cannot leak a recorder /
  // sampler / watchdog into each other.
  FlightRecorderResetForTest();
  SamplingResetForTest();
  WatchdogResetForTest();
  SnapshotResetForTest();
}

}  // namespace fedmp::obs
