#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "obs/json_util.h"

namespace fedmp::obs {

namespace {

// Stable integer key / chrome tid / display name per track.
int TrackKey(Track t) {
  return static_cast<int>(t.kind) * 1000000 + t.index;
}
int TrackTid(Track t) {
  switch (t.kind) {
    case Track::Kind::kMain: return 0;
    case Track::Kind::kPs: return 1;
    case Track::Kind::kWorker: return 100 + t.index;
    case Track::Kind::kPool: return 10000 + t.index;
  }
  return 0;
}
std::string TrackName(Track t) {
  char buf[32];
  switch (t.kind) {
    case Track::Kind::kMain: return "main";
    case Track::Kind::kPs: return "ps";
    case Track::Kind::kWorker:
      std::snprintf(buf, sizeof(buf), "worker %d", t.index);
      return buf;
    case Track::Kind::kPool:
      std::snprintf(buf, sizeof(buf), "pool lane %d", t.index);
      return buf;
  }
  return "main";
}

struct TraceEvent {
  std::string name;
  Track track;
  double wall_begin_us = 0.0;
  double wall_end_us = 0.0;
  double logical_begin = 0.0;
  double logical_end = 0.0;
  int depth = 0;
  uint64_t track_seq = 0;  // logical events only
  bool instant = false;
  bool logical = true;  // include in the deterministic export
  Args args;
};

struct Recorder {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::map<int, uint64_t> next_seq;  // track key -> next sequence number
  TraceOptions options;
  int64_t dropped = 0;
  // Run manifest: insertion-ordered key/value metadata pushed by the engines.
  std::vector<std::pair<std::string, ArgValue>> run_info;
};

Recorder& Rec() {
  static Recorder* recorder = new Recorder();  // leaky: thread-exit safe
  return *recorder;
}

std::atomic<double> g_logical_time{0.0};
std::atomic<double> g_pool_min_us{200.0};  // mirror of options (hot path)
thread_local Track t_default_track = MainTrack();
thread_local int t_span_depth = 0;

void PushEvent(TraceEvent event) {
  Recorder& rec = Rec();
  std::lock_guard<std::mutex> lock(rec.mu);
  if (static_cast<int64_t>(rec.events.size()) >= rec.options.max_events) {
    ++rec.dropped;
    return;
  }
  if (event.logical) {
    event.track_seq = rec.next_seq[TrackKey(event.track)]++;
  }
  rec.events.push_back(std::move(event));
}

std::string ArgsToJson(const Args& args) {
  std::string out = "{";
  for (size_t a = 0; a < args.size(); ++a) {
    if (a > 0) out += ",";
    out += "\"" + JsonEscape(args[a].first) + "\":" + args[a].second.ToJson();
  }
  out += "}";
  return out;
}

}  // namespace

std::string ArgValue::ToJson() const {
  char buf[48];
  switch (kind) {
    case Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(i));
      return buf;
    case Kind::kDouble:
      if (!std::isfinite(d)) return "null";  // JSON has no NaN/Inf
      // %.17g round-trips every double exactly: the decision audit
      // reconstructs UCB scores from these fields to 1e-9.
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      return buf;
    case Kind::kString:
      return "\"" + JsonEscape(s) + "\"";
  }
  return "null";
}

void Enable(const TraceOptions& options) {
  Recorder& rec = Rec();
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    rec.options = options;
  }
  g_pool_min_us.store(options.pool_event_min_us, std::memory_order_relaxed);
  SetEnabled(true);
}

void Disable() { SetEnabled(false); }

bool MaybeEnableFromEnv() {
  if (Enabled()) return true;
  const char* chrome = std::getenv("FEDMP_TRACE");
  const char* jsonl = std::getenv("FEDMP_TRACE_JSONL");
  const char* metrics = std::getenv("FEDMP_TRACE_METRICS");
  const char* manifest = std::getenv("FEDMP_TRACE_MANIFEST");
  if (chrome == nullptr && jsonl == nullptr && metrics == nullptr &&
      manifest == nullptr) {
    return false;
  }
  TraceOptions options;
  if (chrome != nullptr) options.chrome_trace_path = chrome;
  if (jsonl != nullptr) options.events_jsonl_path = jsonl;
  if (metrics != nullptr) options.metrics_json_path = metrics;
  if (manifest != nullptr) options.manifest_path = manifest;
  Enable(options);
  return true;
}

namespace {
void WriteFileOrWarn(const std::string& path, const std::string& content) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[obs] cannot write %s\n", path.c_str());
    return;
  }
  out << content;
}
}  // namespace

void Flush() {
  if (!Enabled()) return;
  TraceOptions options;
  {
    Recorder& rec = Rec();
    std::lock_guard<std::mutex> lock(rec.mu);
    options = rec.options;
  }
  WriteFileOrWarn(options.chrome_trace_path, ChromeTraceJson());
  WriteFileOrWarn(options.events_jsonl_path, EventsJsonl());
  if (!options.metrics_json_path.empty()) {
    WriteFileOrWarn(options.metrics_json_path, Registry::Get().ToJson());
  }
  if (!options.manifest_path.empty()) {
    WriteFileOrWarn(options.manifest_path, ManifestJson());
  }
}

void SetRunInfo(const std::string& key, ArgValue value) {
  if (!Enabled()) return;
  Recorder& rec = Rec();
  std::lock_guard<std::mutex> lock(rec.mu);
  for (auto& [k, v] : rec.run_info) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  rec.run_info.emplace_back(key, std::move(value));
}

std::string ManifestJson() {
  std::vector<std::pair<std::string, ArgValue>> info;
  {
    Recorder& rec = Rec();
    std::lock_guard<std::mutex> lock(rec.mu);
    info = rec.run_info;
  }
  std::string out = "{\"run_info\":";
  out += ArgsToJson(info);
  out += "}\n";
  return out;
}

void SetLogicalTime(double sim_seconds) {
  g_logical_time.store(sim_seconds, std::memory_order_relaxed);
}
double LogicalTime() {
  return g_logical_time.load(std::memory_order_relaxed);
}

double WallNowUs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

TrackScope::TrackScope(Track track) : previous_(t_default_track) {
  t_default_track = track;
}
TrackScope::~TrackScope() { t_default_track = previous_; }

ScopedSpan::ScopedSpan(const char* name, Args args)
    : ScopedSpan(name, t_default_track, std::move(args)) {}

ScopedSpan::ScopedSpan(const char* name, Track track, Args args)
    : name_(name), track_(track) {
  if (!Enabled()) return;
  active_ = true;
  wall_begin_us_ = WallNowUs();
  logical_begin_ = LogicalTime();
  depth_ = t_span_depth++;
  args_ = std::move(args);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  if (t_span_depth > 0) --t_span_depth;  // tolerate unbalanced closes
  if (!Enabled()) return;  // disabled mid-span: drop the event
  TraceEvent event;
  event.name = name_;
  event.track = track_;
  event.wall_begin_us = wall_begin_us_;
  event.wall_end_us = WallNowUs();
  event.logical_begin = logical_begin_;
  event.logical_end = LogicalTime();
  event.depth = depth_;
  event.logical = track_.kind != Track::Kind::kPool;
  event.args = std::move(args_);
  PushEvent(std::move(event));
}

void InstantEvent(const char* name, Args args) {
  InstantEvent(name, t_default_track, std::move(args));
}

void InstantEvent(const char* name, Track track, Args args) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = name;
  event.track = track;
  event.wall_begin_us = event.wall_end_us = WallNowUs();
  event.logical_begin = event.logical_end = LogicalTime();
  event.depth = t_span_depth;
  event.instant = true;
  event.logical = track.kind != Track::Kind::kPool;
  event.args = std::move(args);
  PushEvent(std::move(event));
}

void RecordPoolChunk(int lane, double wall_begin_us, double wall_end_us,
                     int64_t iterations) {
  if (!Enabled()) return;
  if (wall_end_us - wall_begin_us <
      g_pool_min_us.load(std::memory_order_relaxed)) {
    return;
  }
  TraceEvent event;
  event.name = "pool_chunk";
  event.track = PoolTrack(lane);
  event.wall_begin_us = wall_begin_us;
  event.wall_end_us = wall_end_us;
  event.logical_begin = event.logical_end = LogicalTime();
  event.logical = false;  // pool placement is scheduling-dependent
  event.args = {{"iters", iterations}};
  PushEvent(std::move(event));
}

std::string ChromeTraceJson() {
  std::vector<TraceEvent> events;
  {
    Recorder& rec = Rec();
    std::lock_guard<std::mutex> lock(rec.mu);
    events = rec.events;
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.wall_begin_us != b.wall_begin_us) {
                return a.wall_begin_us < b.wall_begin_us;
              }
              return TrackTid(a.track) < TrackTid(b.track);
            });

  std::string out = "{\"traceEvents\":[";
  out += "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"fedmp\"}}";

  // One named thread track per distinct (worker / PS / pool lane) track.
  std::map<int, Track> tracks;
  for (const TraceEvent& e : events) tracks[TrackTid(e.track)] = e.track;
  char buf[160];
  for (const auto& [tid, track] : tracks) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                  tid, TrackName(track).c_str());
    out += buf;
  }

  for (const TraceEvent& e : events) {
    if (e.instant) {
      std::snprintf(buf, sizeof(buf),
                    ",{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                    "\"s\":\"t\",\"name\":\"%s\",\"args\":",
                    TrackTid(e.track), e.wall_begin_us,
                    JsonEscape(e.name).c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    ",{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                    "\"dur\":%.3f,\"name\":\"%s\",\"args\":",
                    TrackTid(e.track), e.wall_begin_us,
                    e.wall_end_us - e.wall_begin_us,
                    JsonEscape(e.name).c_str());
    }
    out += buf;
    // Fold the deterministic clock into args so both clocks are visible.
    Args args = e.args;
    args.emplace_back("t_sim", e.logical_begin);
    if (!e.instant) args.emplace_back("t_sim_end", e.logical_end);
    out += ArgsToJson(args);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string EventsJsonl() {
  std::vector<TraceEvent> events;
  {
    Recorder& rec = Rec();
    std::lock_guard<std::mutex> lock(rec.mu);
    events = rec.events;
  }
  events.erase(std::remove_if(events.begin(), events.end(),
                              [](const TraceEvent& e) { return !e.logical; }),
               events.end());
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              const int ka = TrackKey(a.track), kb = TrackKey(b.track);
              if (ka != kb) return ka < kb;
              return a.track_seq < b.track_seq;
            });
  std::string out;
  char buf[192];
  for (const TraceEvent& e : events) {
    std::snprintf(
        buf, sizeof(buf),
        "{\"track\":\"%s\",\"seq\":%llu,\"kind\":\"%s\",\"event\":\"%s\","
        "\"t_sim\":%.9g,\"t_sim_end\":%.9g,\"depth\":%d,\"args\":",
        TrackName(e.track).c_str(),
        static_cast<unsigned long long>(e.track_seq),
        e.instant ? "instant" : "span", JsonEscape(e.name).c_str(),
        e.logical_begin, e.logical_end, e.depth);
    out += buf;
    out += ArgsToJson(e.args);
    out += "}\n";
  }
  return out;
}

int64_t BufferedEventCount() {
  Recorder& rec = Rec();
  std::lock_guard<std::mutex> lock(rec.mu);
  return static_cast<int64_t>(rec.events.size());
}

void ResetForTest() {
  Recorder& rec = Rec();
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    rec.events.clear();
    rec.next_seq.clear();
    rec.dropped = 0;
    rec.run_info.clear();
  }
  SetLogicalTime(0.0);
  Registry::Get().Reset();
}

}  // namespace fedmp::obs
