#ifndef FEDMP_OBS_SAMPLING_H_
#define FEDMP_OBS_SAMPLING_H_

#include <cstdint>

// Deterministic trace sampling for fleet-scale runs. Per-worker spans and
// worker_timing events grow linearly with fleet size; at 10k+ workers the
// trainers instead trace only a per-round sample of workers and fold the
// rest into rollup histograms plus one round_rollup event (see
// analysis/round_health.cc, which reconstructs survivors/means from the
// rollup so post-hoc reports stay exact under sampling).
//
// The sample is a pure function of (seed, round, worker) with the same
// hash-seeding discipline as edge::FaultPlan::StreamFor — no RNG state, no
// draw-order coupling — so the sampled set is bit-identical across thread
// counts, engines, and replay, and changing the sample budget never
// perturbs training (sampling gates event EMISSION only; no model code
// consumes these bits).
//
// The pure function cannot know a round's critical path, so the trainers
// additionally force-include the critical worker and the max-gap straggler
// after computing the round summary; round_health attribution therefore
// always names the worker it blames, sampled or not.
namespace fedmp::obs {

struct SamplingOptions {
  // Expected number of workers traced per round; <= 0 disables sampling
  // (every worker traced). The set is pseudo-random per round, so over R
  // rounds every worker appears in roughly R * budget / num_workers rounds.
  int64_t per_round_budget = 0;
  // Stream seed; the trainers pass the run seed so traces replay exactly.
  uint64_t seed = 0;
};

// Installs the process-global sampling configuration (idempotent).
void EnableTraceSampling(const SamplingOptions& options);
void DisableTraceSampling();
bool TraceSamplingActive();
int64_t TraceSampleBudget();

// Enables from FEDMP_TRACE_SAMPLE=<per-round budget> (0/unset = off),
// seeding from `run_seed`. Returns whether sampling ended up active.
bool MaybeEnableSamplingFromEnv(uint64_t run_seed);

// The pure predicate: whether `worker` emits per-worker events in `round`.
// Expected selection size is `budget` of `num_workers` (each worker is
// included independently with probability budget/num_workers).
bool SampleWorker(uint64_t seed, int64_t round, int worker, int num_workers,
                  int64_t budget);

// SampleWorker over the active global options; always true when sampling
// is inactive.
bool ShouldTraceWorker(int64_t round, int worker, int num_workers);

void SamplingResetForTest();

}  // namespace fedmp::obs

#endif  // FEDMP_OBS_SAMPLING_H_
