#ifndef FEDMP_OBS_EVENT_LOG_H_
#define FEDMP_OBS_EVENT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

// Shared in-memory event representation and exporters for the two recording
// tiers: the unbounded-until-cap trace buffer (obs/trace.cc) and the
// fixed-capacity flight recorder (obs/flight_recorder.cc). Both serialize
// through the same two functions, so a flight-recorder dump is
// format-identical to a full trace export — every post-hoc tool
// (fedmp_report, the python CI validators, Perfetto) reads either without
// knowing which tier produced it.
namespace fedmp::obs::internal {

struct TraceEvent {
  std::string name;
  Track track;
  double wall_begin_us = 0.0;
  double wall_end_us = 0.0;
  double logical_begin = 0.0;
  double logical_end = 0.0;
  int depth = 0;
  uint64_t track_seq = 0;  // logical events only
  bool instant = false;
  bool logical = true;  // include in the deterministic export
  bool counter = false;  // Chrome "C" counter sample (never logical)
  Args args;
};

// Stable integer key / chrome tid / display name per track.
int TrackKey(Track t);
int TrackTid(Track t);
std::string TrackName(Track t);

// Args as one JSON object (keys escaped, values via ArgValue::ToJson).
std::string ArgsToJson(const Args& args);

// Chrome trace-event JSON over `events` (sorted internally by wall time;
// takes by value because sorting mutates).
std::string ChromeTraceFromEvents(std::vector<TraceEvent> events);

// Deterministic structured log: logical events only, one JSON object per
// line, sorted by (track key, per-track sequence), wall time excluded.
std::string EventsJsonlFromEvents(std::vector<TraceEvent> events);

}  // namespace fedmp::obs::internal

#endif  // FEDMP_OBS_EVENT_LOG_H_
