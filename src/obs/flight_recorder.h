#ifndef FEDMP_OBS_FLIGHT_RECORDER_H_
#define FEDMP_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>

#include "obs/event_log.h"

// Flight recorder: a fixed-capacity ring behind the span/event API. Every
// event PushEvent records is also offered to the recorder, which keeps the
// last N events per track (and at most `total_capacity` overall), so a
// 10k-worker chaos run holds recent history in bounded memory regardless
// of fleet size or run length.
//
// Dumps — a valid Chrome trace + the deterministic events JSONL, written
// atomically (tmp + rename) — happen on demand (DumpFlightRecorder), on
// every watchdog alert (obs/watchdog.cc), at Flush(), and best-effort from
// a fatal-signal handler (SIGTERM/SIGINT/SIGABRT/SIGSEGV), so crashed or
// killed runs leave evidence instead of nothing.
//
// Determinism: ring events keep the per-track sequence numbers assigned by
// trace.cc, and the eviction policy (per-track cap, then pop from the
// largest track) depends only on per-track event counts — pure functions
// of the logical schedule — so the JSONL view of a dump is bit-identical
// across thread counts for a fixed seed (the test oracle, same as the main
// buffer's EventsJsonl). Non-logical events (pool lanes, environment
// alerts) are bounded in a separate ledger and ride in the Chrome half of
// the dump only.
namespace fedmp::obs {

struct FlightRecorderOptions {
  // Global cap across all tracks; evicting pops the front of the currently
  // largest track (ties: smallest track key), which water-fills capacity so
  // every track keeps its most recent fair share. Applied separately to
  // logical and non-logical events, so scheduling-dependent pool chunks can
  // never displace deterministic history.
  int64_t total_capacity = 4096;
  // Cap per track (a hot PS track cannot starve the worker tracks).
  int64_t per_track_capacity = 256;
  // Dump file prefix: writes <prefix>_dump_trace.json and
  // <prefix>_dump_events.jsonl.
  std::string dump_path_prefix = "flight";
  // Install SIGTERM/SIGINT/SIGABRT/SIGSEGV handlers that dump then re-raise.
  bool install_signal_handlers = true;
};

// Starts mirroring events into the ring (idempotent; replaces options).
// Does NOT toggle the global obs enable flag — callers combine it with
// Enable()/MaybeEnableFromEnv() as needed.
void EnableFlightRecorder(const FlightRecorderOptions& options = {});
void DisableFlightRecorder();
bool FlightRecorderEnabled();

// Enables from FEDMP_FLIGHT_RECORDER=<total events> (0/unset = off), with
// FEDMP_FLIGHT_PER_TRACK and FEDMP_FLIGHT_DUMP_PREFIX overrides. When the
// broader telemetry switch is still off (no FEDMP_TRACE* configured), this
// also enables obs in ring-only mode: recording hooks run, the unbounded
// main buffer is capped at zero, and the ring holds the only history — the
// bounded-memory configuration the scale bench gates. Returns whether the
// recorder ended up enabled.
bool MaybeEnableFlightRecorderFromEnv();

// Writes <prefix>_dump_trace.json + <prefix>_dump_events.jsonl from the
// current ring contents (atomic: tmp + rename). `reason` is stamped into
// the Chrome dump as an obs.flight_dump metadata event. Returns false when
// the recorder is disabled, the ring lock is contended (signal context), or
// the files cannot be written.
bool DumpFlightRecorder(const char* reason);

// Events currently buffered across all tracks / evicted so far (tests).
int64_t FlightRecorderEventCount();
int64_t FlightRecorderEvictedCount();

// The ring's deterministic JSONL view (same format as EventsJsonl()).
std::string FlightRecorderEventsJsonl();

// Clears the ring, counters, and options. Tests only.
void FlightRecorderResetForTest();

namespace internal {
// Called by trace.cc PushEvent with the sequence number already assigned.
// The caller holds the trace-buffer mutex; this only takes the ring mutex
// (strict rec.mu -> ring.mu order, never reversed).
void FlightRecord(const TraceEvent& event);
}  // namespace internal

}  // namespace fedmp::obs

#endif  // FEDMP_OBS_FLIGHT_RECORDER_H_
