#include "obs/event_log.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/json_util.h"

namespace fedmp::obs::internal {

int TrackKey(Track t) {
  return static_cast<int>(t.kind) * 1000000 + t.index;
}

int TrackTid(Track t) {
  switch (t.kind) {
    case Track::Kind::kMain: return 0;
    case Track::Kind::kPs: return 1;
    case Track::Kind::kWorker: return 100 + t.index;
    case Track::Kind::kPool: return 10000 + t.index;
  }
  return 0;
}

std::string TrackName(Track t) {
  char buf[32];
  switch (t.kind) {
    case Track::Kind::kMain: return "main";
    case Track::Kind::kPs: return "ps";
    case Track::Kind::kWorker:
      std::snprintf(buf, sizeof(buf), "worker %d", t.index);
      return buf;
    case Track::Kind::kPool:
      std::snprintf(buf, sizeof(buf), "pool lane %d", t.index);
      return buf;
  }
  return "main";
}

std::string ArgsToJson(const Args& args) {
  std::string out = "{";
  for (size_t a = 0; a < args.size(); ++a) {
    if (a > 0) out += ",";
    out += "\"" + JsonEscape(args[a].first) + "\":" + args[a].second.ToJson();
  }
  out += "}";
  return out;
}

std::string ChromeTraceFromEvents(std::vector<TraceEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.wall_begin_us != b.wall_begin_us) {
                return a.wall_begin_us < b.wall_begin_us;
              }
              return TrackTid(a.track) < TrackTid(b.track);
            });

  std::string out = "{\"traceEvents\":[";
  out += "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"fedmp\"}}";

  // One named thread track per distinct (worker / PS / pool lane) track.
  std::map<int, Track> tracks;
  for (const TraceEvent& e : events) tracks[TrackTid(e.track)] = e.track;
  char buf[160];
  for (const auto& [tid, track] : tracks) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                  tid, TrackName(track).c_str());
    out += buf;
  }

  for (const TraceEvent& e : events) {
    if (e.counter) {
      std::snprintf(buf, sizeof(buf),
                    ",{\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                    "\"name\":\"%s\",\"args\":",
                    TrackTid(e.track), e.wall_begin_us,
                    JsonEscape(e.name).c_str());
      out += buf;
      out += ArgsToJson(e.args);  // each arg key renders as one series
      out += "}";
      continue;
    }
    if (e.instant) {
      std::snprintf(buf, sizeof(buf),
                    ",{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                    "\"s\":\"t\",\"name\":\"%s\",\"args\":",
                    TrackTid(e.track), e.wall_begin_us,
                    JsonEscape(e.name).c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    ",{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                    "\"dur\":%.3f,\"name\":\"%s\",\"args\":",
                    TrackTid(e.track), e.wall_begin_us,
                    e.wall_end_us - e.wall_begin_us,
                    JsonEscape(e.name).c_str());
    }
    out += buf;
    // Fold the deterministic clock into args so both clocks are visible.
    Args args = e.args;
    args.emplace_back("t_sim", e.logical_begin);
    if (!e.instant) args.emplace_back("t_sim_end", e.logical_end);
    out += ArgsToJson(args);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string EventsJsonlFromEvents(std::vector<TraceEvent> events) {
  events.erase(std::remove_if(events.begin(), events.end(),
                              [](const TraceEvent& e) { return !e.logical; }),
               events.end());
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              const int ka = TrackKey(a.track), kb = TrackKey(b.track);
              if (ka != kb) return ka < kb;
              return a.track_seq < b.track_seq;
            });
  std::string out;
  char buf[192];
  for (const TraceEvent& e : events) {
    std::snprintf(
        buf, sizeof(buf),
        "{\"track\":\"%s\",\"seq\":%llu,\"kind\":\"%s\",\"event\":\"%s\","
        "\"t_sim\":%.9g,\"t_sim_end\":%.9g,\"depth\":%d,\"args\":",
        TrackName(e.track).c_str(),
        static_cast<unsigned long long>(e.track_seq),
        e.instant ? "instant" : "span", JsonEscape(e.name).c_str(),
        e.logical_begin, e.logical_end, e.depth);
    out += buf;
    out += ArgsToJson(e.args);
    out += "}\n";
  }
  return out;
}

}  // namespace fedmp::obs::internal
