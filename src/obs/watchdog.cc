#include "obs/watchdog.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedmp::obs {

std::vector<WatchdogAlert> Watchdog::Evaluate(const WatchdogSignals& s) {
  std::vector<WatchdogAlert> alerts;
  char buf[160];

  // --- Straggler blowup (deterministic). ---
  if (rules_.straggler_gap_factor > 0.0 && s.median_completion_s > 0.0) {
    const double threshold =
        rules_.straggler_gap_factor * s.median_completion_s;
    if (s.straggler_gap_max > threshold) {
      WatchdogAlert alert;
      alert.rule = "straggler_blowup";
      alert.round = s.round;
      alert.value = s.straggler_gap_max;
      alert.threshold = threshold;
      std::snprintf(buf, sizeof(buf),
                    "straggler gap %.4fs > %.1fx median %.4fs",
                    s.straggler_gap_max, rules_.straggler_gap_factor,
                    s.median_completion_s);
      alert.detail = buf;
      alerts.push_back(std::move(alert));
    }
  }

  // --- Fog-region silence (deterministic). ---
  if (rules_.fog_silent_rounds > 0 && !s.fog_participants.empty()) {
    if (fog_silence_.size() != s.fog_participants.size()) {
      fog_silence_.assign(s.fog_participants.size(), 0);
    }
    for (size_t f = 0; f < s.fog_participants.size(); ++f) {
      if (s.fog_participants[f] > 0) {
        fog_silence_[f] = 0;
        continue;
      }
      ++fog_silence_[f];
      // Fire exactly once when the streak reaches the threshold; the reset
      // above re-arms the rule when the region recovers.
      if (fog_silence_[f] == rules_.fog_silent_rounds) {
        WatchdogAlert alert;
        alert.rule = "fog_silent";
        alert.round = s.round;
        alert.fog = static_cast<int>(f);
        alert.value = static_cast<double>(fog_silence_[f]);
        alert.threshold = static_cast<double>(rules_.fog_silent_rounds);
        std::snprintf(buf, sizeof(buf),
                      "fog %d silent for %lld consecutive rounds",
                      static_cast<int>(f),
                      static_cast<long long>(fog_silence_[f]));
        alert.detail = buf;
        alerts.push_back(std::move(alert));
      }
    }
  }

  // --- Accuracy NaN / stall (deterministic). ---
  if (s.evaluated) {
    if (std::isnan(s.accuracy)) {
      WatchdogAlert alert;
      alert.rule = "accuracy_nan";
      alert.round = s.round;
      alert.detail = "evaluation returned NaN accuracy";
      alerts.push_back(std::move(alert));
    } else if (rules_.accuracy_stall_evals > 0) {
      if (!has_best_accuracy_ ||
          s.accuracy > best_accuracy_ + rules_.accuracy_stall_eps) {
        best_accuracy_ = has_best_accuracy_
                             ? std::max(best_accuracy_, s.accuracy)
                             : s.accuracy;
        has_best_accuracy_ = true;
        evals_since_improvement_ = 0;
      } else {
        ++evals_since_improvement_;
        if (evals_since_improvement_ == rules_.accuracy_stall_evals) {
          WatchdogAlert alert;
          alert.rule = "accuracy_stall";
          alert.round = s.round;
          alert.value = s.accuracy;
          alert.threshold = best_accuracy_;
          std::snprintf(buf, sizeof(buf),
                        "accuracy %.4f stuck <= best %.4f + %.4f for %lld "
                        "evaluations",
                        s.accuracy, best_accuracy_, rules_.accuracy_stall_eps,
                        static_cast<long long>(evals_since_improvement_));
          alert.detail = buf;
          alerts.push_back(std::move(alert));
        }
      }
    }
  }

  // --- Comm-bytes blowup (deterministic: ledger totals are pure functions
  // of the round plan). Baseline = smallest non-zero round seen so far, so
  // a regression back toward dense transfers fires relative to the best
  // pruning the run achieved. ---
  if (rules_.comm_bytes_blowup_factor > 0.0 && s.round_wire_bytes > 0) {
    if (min_round_wire_bytes_ > 0) {
      const double threshold = rules_.comm_bytes_blowup_factor *
                               static_cast<double>(min_round_wire_bytes_);
      if (static_cast<double>(s.round_wire_bytes) > threshold) {
        WatchdogAlert alert;
        alert.rule = "comm_bytes_blowup";
        alert.round = s.round;
        alert.value = static_cast<double>(s.round_wire_bytes);
        alert.threshold = threshold;
        std::snprintf(buf, sizeof(buf),
                      "round wire bytes %lld > %.2fx best round %lld",
                      static_cast<long long>(s.round_wire_bytes),
                      rules_.comm_bytes_blowup_factor,
                      static_cast<long long>(min_round_wire_bytes_));
        alert.detail = buf;
        alerts.push_back(std::move(alert));
      }
    }
    if (min_round_wire_bytes_ == 0 ||
        s.round_wire_bytes < min_round_wire_bytes_) {
      min_round_wire_bytes_ = s.round_wire_bytes;
    }
  }

  // --- FLOP budget regression (deterministic). ---
  if (rules_.flop_budget > 0 && s.round_flops > rules_.flop_budget) {
    WatchdogAlert alert;
    alert.rule = "flop_budget_regression";
    alert.round = s.round;
    alert.value = static_cast<double>(s.round_flops);
    alert.threshold = static_cast<double>(rules_.flop_budget);
    std::snprintf(buf, sizeof(buf),
                  "round MACs %lld > budget %lld",
                  static_cast<long long>(s.round_flops),
                  static_cast<long long>(rules_.flop_budget));
    alert.detail = buf;
    alerts.push_back(std::move(alert));
  }

  // --- Peak RSS over budget (environment). ---
  if (rules_.rss_budget_bytes > 0 && s.peak_rss_bytes > 0 &&
      s.peak_rss_bytes > rules_.rss_budget_bytes) {
    WatchdogAlert alert;
    alert.rule = "rss_over_budget";
    alert.round = s.round;
    alert.deterministic = false;
    alert.value = static_cast<double>(s.peak_rss_bytes);
    alert.threshold = static_cast<double>(rules_.rss_budget_bytes);
    std::snprintf(buf, sizeof(buf), "peak RSS %.1f MiB > budget %.1f MiB",
                  static_cast<double>(s.peak_rss_bytes) / (1 << 20),
                  static_cast<double>(rules_.rss_budget_bytes) / (1 << 20));
    alert.detail = buf;
    alerts.push_back(std::move(alert));
  }

  // --- Model-cache hit-rate collapse (environment: the lane-shared cache
  // hit pattern depends on thread count). ---
  if (rules_.cache_hit_rate_floor > 0.0 && s.model_cache_hit_rate >= 0.0 &&
      s.round >= rules_.cache_warmup_rounds &&
      s.model_cache_hit_rate < rules_.cache_hit_rate_floor) {
    WatchdogAlert alert;
    alert.rule = "cache_hit_rate_collapse";
    alert.round = s.round;
    alert.deterministic = false;
    alert.value = s.model_cache_hit_rate;
    alert.threshold = rules_.cache_hit_rate_floor;
    std::snprintf(buf, sizeof(buf),
                  "model-cache hit rate %.3f < floor %.3f after warmup",
                  s.model_cache_hit_rate, rules_.cache_hit_rate_floor);
    alert.detail = buf;
    alerts.push_back(std::move(alert));
  }

  return alerts;
}

// ---------------------------------------------------------------------------
// Process-global instance
// ---------------------------------------------------------------------------

namespace {

struct GlobalWatchdog {
  std::mutex mu;
  std::unique_ptr<Watchdog> dog;
};

GlobalWatchdog& TheWatchdog() {
  static GlobalWatchdog* g = new GlobalWatchdog();  // leaky
  return *g;
}

bool ParseRuleOverrides(const char* spec, WatchdogRules* rules) {
  // "key=value,key=value"; unknown keys are reported and skipped.
  const char* p = spec;
  bool ok = true;
  while (*p != '\0') {
    const char* end = std::strchr(p, ',');
    const size_t len = end != nullptr ? static_cast<size_t>(end - p)
                                      : std::strlen(p);
    char item[64];
    if (len < sizeof(item)) {
      std::memcpy(item, p, len);
      item[len] = '\0';
      char* eq = std::strchr(item, '=');
      if (eq != nullptr) {
        *eq = '\0';
        const double v = std::atof(eq + 1);
        if (std::strcmp(item, "straggler_factor") == 0) {
          rules->straggler_gap_factor = v;
        } else if (std::strcmp(item, "fog_rounds") == 0) {
          rules->fog_silent_rounds = static_cast<int64_t>(v);
        } else if (std::strcmp(item, "acc_evals") == 0) {
          rules->accuracy_stall_evals = static_cast<int64_t>(v);
        } else if (std::strcmp(item, "acc_eps") == 0) {
          rules->accuracy_stall_eps = v;
        } else if (std::strcmp(item, "rss_mb") == 0) {
          rules->rss_budget_bytes =
              static_cast<int64_t>(v * (1 << 20));
        } else if (std::strcmp(item, "cache_floor") == 0) {
          rules->cache_hit_rate_floor = v;
        } else if (std::strcmp(item, "cache_warmup") == 0) {
          rules->cache_warmup_rounds = static_cast<int64_t>(v);
        } else if (std::strcmp(item, "comm_factor") == 0) {
          rules->comm_bytes_blowup_factor = v;
        } else if (std::strcmp(item, "flop_budget") == 0) {
          rules->flop_budget = static_cast<int64_t>(v);
        } else {
          std::fprintf(stderr, "[obs] FEDMP_WATCHDOG: unknown rule '%s'\n",
                       item);
          ok = false;
        }
      }
    }
    if (end == nullptr) break;
    p = end + 1;
  }
  return ok;
}

}  // namespace

void EnableWatchdog(const WatchdogRules& rules) {
  GlobalWatchdog& g = TheWatchdog();
  std::lock_guard<std::mutex> lock(g.mu);
  g.dog = std::make_unique<Watchdog>(rules);
}

void DisableWatchdog() {
  GlobalWatchdog& g = TheWatchdog();
  std::lock_guard<std::mutex> lock(g.mu);
  g.dog.reset();
}

bool WatchdogActive() {
  GlobalWatchdog& g = TheWatchdog();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.dog != nullptr;
}

bool MaybeEnableWatchdogFromEnv() {
  if (WatchdogActive()) return true;
  const char* env = std::getenv("FEDMP_WATCHDOG");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "off") == 0) {
    return false;
  }
  WatchdogRules rules;
  if (std::strcmp(env, "1") != 0 && std::strcmp(env, "on") != 0) {
    ParseRuleOverrides(env, &rules);
  }
  EnableWatchdog(rules);
  return true;
}

int WatchdogObserveRound(const WatchdogSignals& signals) {
  if (!Enabled()) return 0;
  std::vector<WatchdogAlert> alerts;
  {
    GlobalWatchdog& g = TheWatchdog();
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.dog == nullptr) return 0;
    alerts = g.dog->Evaluate(signals);
  }
  if (alerts.empty()) return 0;
  static Counter* alert_counter = GetCounter("obs.alerts");
  for (const WatchdogAlert& alert : alerts) {
    alert_counter->Add(1);
    Args args = {{"rule", alert.rule},
                 {"round", alert.round},
                 {"detail", alert.detail},
                 {"value", alert.value},
                 {"threshold", alert.threshold}};
    if (alert.fog >= 0) args.emplace_back("fog", alert.fog);
    if (alert.deterministic) {
      // Deterministic rule: the alert is part of logical history and must
      // appear bit-identically at any thread count, so it rides the PS
      // track of the events JSONL.
      InstantEvent("obs.alert", PsTrack(), std::move(args));
    } else {
      // Environment rule: the triggering value is host/thread-dependent, so
      // the alert is Chrome-trace-only — the logical export stays pure.
      InstantEventEnv("obs.alert", PsTrack(), std::move(args));
    }
    std::fprintf(stderr, "[obs] ALERT round %lld %s: %s\n",
                 static_cast<long long>(alert.round), alert.rule.c_str(),
                 alert.detail.c_str());
  }
  if (FlightRecorderEnabled()) {
    const std::string reason = "alert:" + alerts.front().rule;
    DumpFlightRecorder(reason.c_str());
  }
  return static_cast<int>(alerts.size());
}

void WatchdogResetForTest() {
  GlobalWatchdog& g = TheWatchdog();
  std::lock_guard<std::mutex> lock(g.mu);
  g.dog.reset();
}

}  // namespace fedmp::obs
