#include "obs/analysis/json_value.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace fedmp::obs::analysis {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(double fallback) const {
  return kind == Kind::kNumber ? number : fallback;
}

int64_t JsonValue::IntOr(int64_t fallback) const {
  return kind == Kind::kNumber ? static_cast<int64_t>(number) : fallback;
}

std::string JsonValue::StringOr(const std::string& fallback) const {
  return kind == Kind::kString ? string : fallback;
}

namespace {

struct Parser {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " at byte %zu", pos);
    error = what + buf;
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') {
      if (pos + n >= text.size() || text[pos + n] != lit[n]) {
        return Fail(std::string("expected '") + lit + "'");
      }
      ++n;
    }
    pos += n;
    return true;
  }

  bool String(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') return Fail("expected '\"'");
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) break;
        const char e = text[pos];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int k = 1; k <= 4; ++k) {
              if (pos + static_cast<size_t>(k) >= text.size()) {
                return Fail("bad \\u escape");
              }
              const char h = text[pos + static_cast<size_t>(k)];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return Fail("bad \\u escape");
              }
              const unsigned digit =
                  h <= '9' ? static_cast<unsigned>(h - '0')
                           : static_cast<unsigned>(std::tolower(h) - 'a') + 10;
              code = code * 16 + digit;
            }
            pos += 4;
            // UTF-8 encode the code point (surrogate pairs are passed
            // through as their individual units; the exporters never emit
            // them — JsonEscape only \u-escapes control bytes).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return Fail("bad escape");
        }
        ++pos;
        continue;
      }
      out->push_back(c);
      ++pos;
    }
    return Fail("unterminated string");
  }

  bool Number(double* out) {
    const size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos == start || (pos == start + 1 && text[start] == '-')) {
      return Fail("expected number");
    }
    *out = std::strtod(text.substr(start, pos - start).c_str(), nullptr);
    return true;
  }

  bool Value(JsonValue* out, int depth) {
    if (depth > 128) return Fail("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Fail("expected value");
    switch (text[pos]) {
      case '{': return Object(out, depth);
      case '[': return Array(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return String(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        out->kind = JsonValue::Kind::kNumber;
        return Number(&out->number);
    }
  }

  bool Object(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos;  // '{'
    SkipWs();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!String(&key)) return false;
      SkipWs();
      if (!Literal(":")) return false;
      JsonValue value;
      if (!Value(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos >= text.size()) return Fail("unterminated object");
      const char c = text[pos++];
      if (c == '}') return true;
      if (c != ',') return Fail("expected ',' or '}'");
    }
  }

  bool Array(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos;  // '['
    SkipWs();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!Value(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos >= text.size()) return Fail("unterminated array");
      const char c = text[pos++];
      if (c == ']') return true;
      if (c != ',') return Fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  Parser p{text, /*pos=*/0, /*error=*/{}};
  *out = JsonValue{};
  if (!p.Value(out, 0)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.SkipWs();
  if (p.pos != text.size()) {
    if (error != nullptr) *error = "trailing garbage";
    return false;
  }
  return true;
}

bool ParseJsonLines(const std::string& text, std::vector<JsonValue>* out,
                    std::string* error) {
  out->clear();
  size_t line_start = 0;
  int line_number = 0;
  while (line_start <= text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    ++line_number;
    const std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    JsonValue value;
    std::string line_error;
    if (!ParseJson(line, &value, &line_error)) {
      if (error != nullptr) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "line %d: ", line_number);
        *error = buf + line_error;
      }
      return false;
    }
    out->push_back(std::move(value));
  }
  return true;
}

}  // namespace fedmp::obs::analysis
