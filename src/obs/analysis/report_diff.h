#ifndef FEDMP_OBS_ANALYSIS_REPORT_DIFF_H_
#define FEDMP_OBS_ANALYSIS_REPORT_DIFF_H_

#include <string>
#include <vector>

// Compares two fedmp_report/1 JSON documents (the --json output of
// fedmp_report, or a live health snapshot — same schema) and summarizes
// what moved: round count and critical-path time, straggler gap, final
// round-log metrics (accuracy/loss), cache hit rates, and watchdog alert
// counts by rule. The intended workflow is A/B-ing a baseline run against a
// patched or degraded one:
//
//   fedmp_report --prefix base --json a.json
//   fedmp_report --prefix cand --json b.json
//   fedmp_report --diff a.json b.json
//
// Output ordering is fixed (sorted metric names), so diffs of diffs are
// stable in CI logs.
namespace fedmp::obs::analysis {

struct ReportDiff {
  std::string human;  // aligned "metric  a  b  delta" table
  std::string json;   // one JSON document with the same content
  std::vector<std::string> warnings;  // unparseable inputs
};

ReportDiff DiffReports(const std::string& a_json, const std::string& b_json);

}  // namespace fedmp::obs::analysis

#endif  // FEDMP_OBS_ANALYSIS_REPORT_DIFF_H_
